// Benchmarks regenerating every table and figure of the paper (DESIGN.md
// maps each bench to its artifact). Each iteration executes the full
// experiment at ScaleSmoke so `go test -bench=.` finishes quickly; the
// headline numbers are attached as custom metrics. Paper-scale runs come
// from `go run ./cmd/fedsim -scale full`.
//
// The trailing kernel benchmarks time the substrate primitives (matmul,
// conv, one federated round) at realistic sizes.
package fedfteds_test

import (
	"math/rand"
	"testing"

	"fedfteds"
	"fedfteds/internal/comm"
	"fedfteds/internal/experiments"
	"fedfteds/internal/models"
	"fedfteds/internal/nn"
	"fedfteds/internal/opt"
	"fedfteds/internal/selection"
	"fedfteds/internal/tensor"
)

// benchEnv builds a smoke-scale experiment environment.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.NewEnv(experiments.ScaleSmoke, 1)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func BenchmarkTable1Pretraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunTable1(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Rows[0].AccAlpha01, "nopt_acc01_%")
		b.ReportMetric(100*res.Rows[2].AccAlpha01, "broadpt_acc01_%")
	}
}

func BenchmarkTable2CloseDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunTable2(env)
		if err != nil {
			b.Fatal(err)
		}
		if eds, ok := res.Get("FedFT-EDS (10%)", "synthc10", 0.1); ok {
			b.ReportMetric(100*eds.BestAccuracy, "eds10_acc_%")
		}
		if avg, ok := res.Get("FedAvg", "synthc10", 0.1); ok {
			b.ReportMetric(100*avg.BestAccuracy, "fedavg_acc_%")
		}
	}
}

func BenchmarkFigure5LearningCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunTable2(env)
		if err != nil {
			b.Fatal(err)
		}
		if out := res.RenderFigure5("synthc10", 0.1); out == "" {
			b.Fatal("empty figure 5")
		}
	}
}

func BenchmarkFigure6LearningEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunTable2(env)
		if err != nil {
			b.Fatal(err)
		}
		eds, ok1 := res.Get("FedFT-EDS (10%)", "synthc10", 0.1)
		avg, ok2 := res.Get("FedAvg", "synthc10", 0.1)
		if !ok1 || !ok2 {
			b.Fatal("missing cells")
		}
		if avg.Efficiency > 0 {
			b.ReportMetric(eds.Efficiency/avg.Efficiency, "eds_vs_fedavg_efficiency_x")
		}
	}
}

func BenchmarkTable3Stragglers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunTable3(env)
		if err != nil {
			b.Fatal(err)
		}
		if eds, ok := res.Get("FedFT-EDS (50%)", "synthc10", 0.1); ok {
			b.ReportMetric(100*eds.BestAccuracy, "eds50_acc_%")
		}
		if ten, ok := res.Get("FedAvg 10% c.p.", "synthc10", 0.1); ok {
			b.ReportMetric(100*ten.BestAccuracy, "fedavg10cp_acc_%")
		}
	}
}

func BenchmarkFigure7EfficiencyAt100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunTable3(env)
		if err != nil {
			b.Fatal(err)
		}
		if out := res.RenderFigure7("synthc10", 0.1); out == "" {
			b.Fatal("empty figure 7")
		}
	}
}

func BenchmarkFigure8CurvesParticipation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunTable3(env)
		if err != nil {
			b.Fatal(err)
		}
		if out := res.RenderFigure8("synthc10", 0.1); out == "" {
			b.Fatal("empty figure 8")
		}
	}
}

func BenchmarkFigure9CurvesSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunTable3(env)
		if err != nil {
			b.Fatal(err)
		}
		if out := res.RenderFigure9("synthc10", 0.5); out == "" {
			b.Fatal("empty figure 9")
		}
	}
}

func BenchmarkTable4CrossDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunTable4(env)
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Get("FedFT-EDS (50%)"); ok {
			b.ReportMetric(100*row.Accuracy, "eds50_far_acc_%")
		}
	}
}

func BenchmarkFigure1EntropyDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunFig1(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Medians[0], "median_rho1")
		b.ReportMetric(res.Medians[2], "median_rho01")
	}
}

func BenchmarkFigure2CKAHeatmapsDir01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunCKA(env, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Averages[1][models.GroupUp], "pt_up_cka")
	}
}

func BenchmarkFigure3CKAHeatmapsDir05(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunCKA(env, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Averages[1][models.GroupUp], "pt_up_cka")
	}
}

func BenchmarkFigure4CKAAverages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunCKA(env, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Averages[0][models.GroupUp], "nopt_up_cka")
		b.ReportMetric(res.Averages[1][models.GroupUp], "pt_up_cka")
	}
}

func BenchmarkFigure10aFinetunePart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunFig10a(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.EDS[3], "classifier_eds_acc_%")
		b.ReportMetric(100*res.EDS[0], "full_eds_acc_%")
	}
}

func BenchmarkFigure10bHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunFig10b(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.EDS[0], "eds_alpha001_acc_%")
		b.ReportMetric(100*res.EDS[4], "eds_alpha1_acc_%")
	}
}

func BenchmarkFigure10cTemperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunFig10c(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.EDS[1], "eds_rho01_acc_%")
		b.ReportMetric(100*res.RDSBaseline, "rds_acc_%")
	}
}

func BenchmarkAblationBatchEntropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunAblationBatchEntropy(env)
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Get("sample-level EDS"); ok {
			b.ReportMetric(100*row.BestAccuracy, "sample_eds_acc_%")
		}
	}
}

func BenchmarkAblationAggWeighting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunAblationAggWeighting(env)
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Get("selected"); ok {
			b.ReportMetric(100*row.BestAccuracy, "selected_weighting_acc_%")
		}
	}
}

func BenchmarkAblationAcquisition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		res, err := experiments.RunAblationAcquisition(env)
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Get("entropy (hardened ρ=0.1)"); ok {
			b.ReportMetric(100*row.BestAccuracy, "hardened_entropy_acc_%")
		}
	}
}

// Substrate kernel benchmarks.

func BenchmarkKernelMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(256, 256)
	y := tensor.New(256, 256)
	x.FillNormal(rng, 0, 1)
	y.FillNormal(rng, 0, 1)
	dst := tensor.New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMul(dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelWRNForward(b *testing.B) {
	m, err := models.Build(models.Spec{
		Arch:        models.ArchWRN,
		InputShape:  []int{3, 16, 16},
		NumClasses:  10,
		Depth:       16,
		WidthFactor: 1,
		InitSeed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(8, 3, 16, 16)
	x.FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

func BenchmarkKernelMLPTrainStep(b *testing.B) {
	m, err := models.Build(models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{64},
		NumClasses: 10,
		Hidden:     64,
		InitSeed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(32, 64)
	x.FillNormal(rng, 0, 1)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 10
	}
	sgd, err := opt.NewSGD(opt.SGDConfig{LR: 0.05, Momentum: 0.5}, m.TrainableParams())
	if err != nil {
		b.Fatal(err)
	}
	// The full per-batch hot path of a local round: forward, loss gradient,
	// backward, optimizer step — allocation-free in steady state (guarded by
	// allocs_test.go).
	loss := nn.SoftmaxCrossEntropy{}
	var ls nn.LossScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.Forward(x, true)
		_, dl, err := loss.LossInto(&ls, logits, labels)
		if err != nil {
			b.Fatal(err)
		}
		m.Backward(dl)
		sgd.Step()
	}
}

func BenchmarkKernelEntropySelection(b *testing.B) {
	env := benchEnv(b)
	fed, err := env.BuildFederation(env.Suite.Target10, 2, 0.5, 999)
	if err != nil {
		b.Fatal(err)
	}
	model, err := env.FreshModel(env.Suite.Target10)
	if err != nil {
		b.Fatal(err)
	}
	sel := selection.Entropy{Temperature: 0.1}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(model, fed.Clients[0].Data, 0.5, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelFederatedRound(b *testing.B) {
	env := benchEnv(b)
	fed, err := env.BuildFederation(env.Suite.Target10, 8, 0.5, 998)
	if err != nil {
		b.Fatal(err)
	}
	global, err := env.FreshModel(env.Suite.Target10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := global.Clone()
		if err != nil {
			b.Fatal(err)
		}
		runner, err := fedfteds.NewRunner(fedfteds.Config{
			Rounds:         1,
			LocalEpochs:    2,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   fedfteds.FinetuneModerate,
			Selector:       fedfteds.EntropySelector{Temperature: 0.1},
			SelectFraction: 0.5,
			Seed:           int64(i),
		}, m, fed.Clients, fed.Test)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := runner.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// aggBenchSetup builds the shared fixture of the aggregation benchmarks: a
// WRN model, its full communicated group list and per-tensor layout, the
// encoded full-state blob, and an encoded partial blob holding only the top
// two groups (a low-tier client's wire payload).
func aggBenchSetup(b *testing.B) (groups, layout []string, full []*tensor.Tensor, fullBlob, partBlob []byte) {
	b.Helper()
	m, err := models.Build(models.Spec{
		Arch:        models.ArchWRN,
		InputShape:  []int{3, 16, 16},
		NumClasses:  10,
		Depth:       10,
		WidthFactor: 1,
		InitSeed:    7,
	})
	if err != nil {
		b.Fatal(err)
	}
	groups = models.GroupNames()
	layout, err = m.GroupStateLayout(groups)
	if err != nil {
		b.Fatal(err)
	}
	full, err = m.GroupStateTensors(groups)
	if err != nil {
		b.Fatal(err)
	}
	fullBlob, err = comm.EncodeTensors(full)
	if err != nil {
		b.Fatal(err)
	}
	part, err := m.GroupStateTensors(groups[len(groups)-2:])
	if err != nil {
		b.Fatal(err)
	}
	partBlob, err = comm.EncodeTensors(part)
	if err != nil {
		b.Fatal(err)
	}
	return groups, layout, full, fullBlob, partBlob
}

// BenchmarkKernelStreamAggregation is the legacy server fold: 8 whole-state
// client updates streamed into the selected-size-weighted average.
func BenchmarkKernelStreamAggregation(b *testing.B) {
	_, _, _, fullBlob, _ := aggBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := comm.NewWeightedStreamAggregator(nil)
		for c := 0; c < 8; c++ {
			if err := agg.Add(comm.ClientUpdate{ClientID: c, State: fullBlob, NumSelected: 10 + c}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := agg.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelMaskedAggregation is the tiered server fold over the same 8
// clients: half ship the whole state, half only the top two groups, and each
// tensor is averaged over exactly the clients that covered it. The perf gate
// (BENCH_perf.json) holds this within 2.5x of the legacy fold.
func BenchmarkKernelMaskedAggregation(b *testing.B) {
	groups, layout, full, fullBlob, partBlob := aggBenchSetup(b)
	agg, err := comm.NewMaskedStreamAggregator(nil, groups, layout)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < 8; c++ {
			u := comm.ClientUpdate{ClientID: c, State: fullBlob, Groups: groups, NumSelected: 10 + c}
			if c%2 == 1 {
				u.State, u.Groups = partBlob, groups[len(groups)-2:]
			}
			if err := agg.Add(u); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := agg.Finish(full); err != nil {
			b.Fatal(err)
		}
	}
}
