// Package fedfteds is the public API of the FedFT-EDS library: federated
// learning with client-workload reduction through partial training of client
// models (federated fine-tuning atop a frozen, pretrained feature extractor)
// and entropy-based data selection with a hardened softmax.
//
// The package re-exports the library's building blocks as aliases so
// downstream users program against one import:
//
//	model, _ := fedfteds.BuildModel(fedfteds.ModelSpec{...})
//	runner, _ := fedfteds.NewRunner(cfg, model, clients, test)
//	history, _ := runner.Run()
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the paper-reproduction results.
package fedfteds

import (
	"fedfteds/internal/ckpt"
	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/device"
	"fedfteds/internal/experiments"
	"fedfteds/internal/fleet"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
	"fedfteds/internal/opt"
	"fedfteds/internal/partition"
	"fedfteds/internal/relay"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
)

// Model building.
type (
	// Model is a group-structured network (low / mid / up / classifier).
	Model = models.Model
	// ModelSpec fully determines a model build.
	ModelSpec = models.Spec
	// FinetunePart selects the trainable portion of the model.
	FinetunePart = models.FinetunePart
)

// Model architecture and finetune-part constants.
const (
	ArchMLP = models.ArchMLP
	ArchWRN = models.ArchWRN

	FinetuneFull       = models.FinetuneFull
	FinetuneLarge      = models.FinetuneLarge
	FinetuneModerate   = models.FinetuneModerate
	FinetuneClassifier = models.FinetuneClassifier
)

// BuildModel constructs a model from its spec.
func BuildModel(spec ModelSpec) (*Model, error) { return models.Build(spec) }

// Datasets and synthetic domains.
type (
	// Dataset is an in-memory labeled dataset.
	Dataset = data.Dataset
	// Domain is a sampleable synthetic classification task.
	Domain = data.Domain
	// DomainSpec configures a synthetic domain.
	DomainSpec = data.DomainSpec
	// Universe is the shared generative structure behind a domain family.
	Universe = data.Universe
	// DomainSuite bundles the standard experiment domains.
	DomainSuite = data.StandardSuite
	// BatchIter streams shuffled minibatches into reused buffers; the
	// allocation-free counterpart of Dataset.Batches.
	BatchIter = data.BatchIter
)

// NewDomainSuite builds the standard domain family (source, close targets,
// far target) from one seed.
func NewDomainSuite(seed int64) (*DomainSuite, error) { return data.NewStandardSuite(seed) }

// Non-IID partitioning.

// DirichletPartition splits label indices across clients with Diri(alpha)
// label skew, guaranteeing at least minSize samples per client.
var DirichletPartition = partition.Dirichlet

// IIDPartition splits indices uniformly.
var IIDPartition = partition.IID

// Data selection.
type (
	// Selector picks each client's per-round training subset.
	Selector = selection.Selector
	// EntropySelector is the paper's EDS with hardened softmax.
	EntropySelector = selection.Entropy
	// RandomSelector is the RDS baseline.
	RandomSelector = selection.Random
	// AllSelector uses every local sample.
	AllSelector = selection.All
	// MarginSelector picks the smallest top-2-margin samples.
	MarginSelector = selection.Margin
)

// Federated engine.
type (
	// Config describes one federated run.
	Config = core.Config
	// Client is one federated participant.
	Client = core.Client
	// Runner orchestrates a federated run.
	Runner = core.Runner
	// History is a run's outcome.
	History = core.History
	// CentralConfig configures centralized training / pretraining.
	CentralConfig = core.CentralConfig
	// LocalOutcome is one client-side round result.
	LocalOutcome = core.LocalOutcome
)

// Aggregation weighting constants (paper Eq. 5 uses WeightBySelected).
const (
	WeightBySelected  = core.WeightBySelected
	WeightByLocalSize = core.WeightByLocalSize
	WeightUniform     = core.WeightUniform
)

// Federated-optimization strategies (internal/strategy): a Strategy owns
// the aggregation weighting, the server-side optimizer that applies the
// weighted client average, and an optional client-side objective hook. Set
// Config.Strategy in the simulator, or `-strategy` on fedserver/fedsim.
type (
	// Strategy is the server-side algorithm plugin both engines orchestrate.
	Strategy = strategy.Strategy
	// StatefulStrategy is implemented by strategies with checkpointable
	// server-optimizer state (FedAvgM, FedAdam, FedYogi).
	StatefulStrategy = strategy.Stateful
	// StrategyUpdate describes one client update for aggregation weighting.
	StrategyUpdate = strategy.Update
	// LocalHook is a strategy's client-side objective twist (e.g. FedProx).
	LocalHook = strategy.LocalHook
	// ProxHook is the FedProx proximal local hook.
	ProxHook = strategy.Prox
	// CompositeStrategy composes a weighting, server optimizer and hook;
	// every shipped strategy is one.
	CompositeStrategy = strategy.Composite
	// ServerOptimizer applies a round's weighted client average to the
	// global model (overwrite, momentum, adam, yogi).
	ServerOptimizer = opt.ServerOpt
)

// Strategy constructors and helpers.
var (
	// ParseStrategy maps a CLI spec ("fedadam:lr=0.05,beta1=0.9") to a
	// fresh Strategy; the names are shared by fedsim and fedserver.
	ParseStrategy = strategy.Parse
	// StrategyNames lists the flag-constructible strategy identifiers.
	StrategyNames = strategy.Names
	// NewStrategy composes a custom strategy from its parts.
	NewStrategy = strategy.New
	// FedAvgStrategy is the default: selected-size weighting, overwrite.
	FedAvgStrategy = strategy.FedAvg
	// FedProxStrategy is FedAvg with the proximal local hook.
	FedProxStrategy = strategy.FedProx
	// FedAvgMStrategy applies the aggregate through server momentum.
	FedAvgMStrategy = strategy.FedAvgM
	// FedAdamStrategy and FedYogiStrategy apply it through adaptive moments.
	FedAdamStrategy = strategy.FedAdam
	FedYogiStrategy = strategy.FedYogi
)

// NewRunner validates a configuration and builds a runner.
func NewRunner(cfg Config, global *Model, clients []*Client, test *Dataset) (*Runner, error) {
	return core.NewRunner(cfg, global, clients, test)
}

// Virtual client fleet (internal/fleet): populations that exist as per-client
// seeds plus cheap descriptors, with datasets materialized lazily when a round
// selects a client and returned to a bounded reuse pool afterwards — resident
// memory is O(cohort + pool), not O(population), so million-client simulated
// days fit in one process (see DESIGN.md "Virtual fleet").
type (
	// ClientSource abstracts where a Runner's clients come from; a Fleet is
	// one, and NewRunner's eager slice is adapted to another internally.
	ClientSource = core.ClientSource
	// ClientDesc is the cheap per-client metadata a source exposes without
	// materializing the client's dataset.
	ClientDesc = core.ClientDesc
	// Fleet is a virtual client population with a bounded materialization pool.
	Fleet = fleet.Fleet
	// FleetSpec describes a virtual population (seed, sizes, non-IID alpha,
	// device distribution, similarity clusters, pool capacity).
	FleetSpec = fleet.Spec
	// FleetStats counts the pool's materialization traffic.
	FleetStats = fleet.Stats
	// FleetTrace is a parsed fleettrace v1 availability trace.
	FleetTrace = fleet.Trace
)

// Fleet constructors and helpers.
var (
	// NewFleet registers a virtual population from its spec.
	NewFleet = fleet.New
	// ParseFleetTrace parses fleettrace v1 text; LoadFleetTrace reads a file.
	ParseFleetTrace = fleet.ParseTrace
	LoadFleetTrace  = fleet.LoadTrace
	// EstimateFleetEagerBytes estimates what materializing a population
	// eagerly would cost (the fedsim -clients fail-fast uses it).
	EstimateFleetEagerBytes = fleet.EstimateEagerBytes
)

// NewRunnerWithSource builds a runner whose clients come from a ClientSource
// (e.g. a Fleet) instead of an in-memory slice.
func NewRunnerWithSource(cfg Config, global *Model, src ClientSource, test *Dataset) (*Runner, error) {
	return core.NewRunnerWithSource(cfg, global, src, test)
}

// Checkpoint/resume (internal/ckpt + core run state). A run with
// Config.CheckpointDir set writes a versioned, checksummed checkpoint every
// Config.CheckpointEvery rounds; a fresh Runner restored from it continues
// the run bit-identically (see DESIGN.md "Checkpointing").
type (
	// RunState is the complete resumable state of a federated run at a
	// round boundary.
	RunState = core.RunState
	// CheckpointSection is one named payload inside a checkpoint file.
	CheckpointSection = ckpt.Section
	// StatefulScheduler is implemented by schedulers whose state must ride
	// along in checkpoints (e.g. Availability's churn chain).
	StatefulScheduler = sched.Stateful
)

// Checkpoint error sentinels: ErrCorruptCheckpoint covers every structural
// failure (truncation, bit flips, checksum or version mismatch);
// ErrNoCheckpoint reports an empty checkpoint directory.
var (
	ErrCorruptCheckpoint = ckpt.ErrCorrupt
	ErrNoCheckpoint      = ckpt.ErrNoCheckpoint
)

// Checkpoint file helpers.
var (
	// SaveRunState writes a run state to a path atomically.
	SaveRunState = core.SaveRunState
	// LoadRunState reads and fully validates one checkpoint file.
	LoadRunState = core.LoadRunState
	// LoadLatestRunState loads the newest valid checkpoint in a directory.
	LoadLatestRunState = core.LoadLatestRunState
	// CheckpointPath returns the canonical checkpoint filename for a round.
	CheckpointPath = ckpt.Path
)

// TrainCentralized trains a model centrally (the paper's upper bound).
var TrainCentralized = core.TrainCentralized

// Pretrain trains the full model on a source domain.
var Pretrain = core.Pretrain

// PretrainTransfer pretrains on a source dataset and transfers the feature
// extractor into a fresh model for the target label space.
var PretrainTransfer = core.PretrainTransfer

// LocalUpdate runs one client-side round (used by distributed clients).
var LocalUpdate = core.LocalUpdate

// NewLocalConfig applies defaults and validates a config for standalone
// LocalUpdate use in distributed clients.
var NewLocalConfig = core.NewLocalConfig

// Distributed wire protocol (what cmd/fedserver and cmd/fedclient speak,
// also runnable in-process over pipes).
type (
	// Conn is one message-oriented connection between client and server.
	Conn = comm.Conn
	// Listener accepts federated clients.
	Listener = comm.Listener
	// PipeListener runs the wire protocol in-process.
	PipeListener = comm.PipeListener
	// ServerSession is the server half of the protocol.
	ServerSession = comm.ServerSession
	// ClientSession is the client half of the protocol.
	ClientSession = comm.ClientSession
	// RoundEngine drives deadline-aware, quorum-based federated rounds.
	RoundEngine = comm.RoundEngine
	// EngineConfig tunes the round engine's fault tolerance.
	EngineConfig = comm.EngineConfig
	// RoundOutcome reports one distributed round's participation.
	RoundOutcome = comm.RoundOutcome
	// StreamAggregator folds updates into a weighted sum as they arrive.
	StreamAggregator = comm.StreamAggregator
	// RoundStart instructs a client to run one local round.
	RoundStart = comm.RoundStart
	// ClientUpdate carries a client's trained state to the server.
	ClientUpdate = comm.ClientUpdate
	// Welcome acknowledges a client's registration.
	Welcome = comm.Welcome
)

// Uplink codecs (internal/comm): pluggable wire encodings for client
// updates, negotiated at Hello time (the server advertises, the client
// adopts or pins). The identity codec is bit-identical to legacy frames;
// float16 and int8 quantize stochastically under a deterministic per-
// (round, client) seed; topk sparsifies with client-side error feedback.
type (
	// Codec encodes and decodes tensor payloads for the uplink wire.
	Codec = comm.Codec
	// ResidualCarrier is implemented by codecs with checkpointable
	// client-side state (topk's error-feedback residual).
	ResidualCarrier = comm.ResidualCarrier
)

// CodecIdentity names the lossless legacy-frame codec.
const CodecIdentity = comm.CodecIdentity

// Codec constructors and helpers.
var (
	// ParseCodec maps a CLI spec ("int8", "topk:0.05") to a fresh codec;
	// the names are shared by every binary's -codec flag.
	ParseCodec = comm.ParseCodec
	// CodecNames lists the flag-constructible codec identifiers.
	CodecNames = comm.CodecNames
	// PickCodec resolves a client's codec choice against the server's
	// Welcome advertisement ("auto" adopts, explicit must match).
	PickCodec = comm.PickCodec
	// CodecSeed derives the deterministic quantization seed for one
	// (round, client) encode from the federation seed.
	CodecSeed = comm.CodecSeed
)

// Distributed-mode constructors and helpers.
var (
	// NewPipeListener creates n in-process protocol pipe pairs.
	NewPipeListener = comm.NewPipeListener
	// AcceptClients registers the expected number of clients.
	AcceptClients = comm.AcceptClients
	// JoinFederation registers one client with a server.
	JoinFederation = comm.Join
	// NewRoundEngine wraps a server session in the fault-tolerant engine.
	NewRoundEngine = comm.NewRoundEngine
	// NewStreamAggregator starts an empty O(state) aggregator.
	NewStreamAggregator = comm.NewStreamAggregator
	// EncodeTensors serializes model state for the wire.
	EncodeTensors = comm.EncodeTensors
	// DecodeTensors reverses EncodeTensors.
	DecodeTensors = comm.DecodeTensors
	// ListenTCP starts a federation listener.
	ListenTCP = comm.ListenTCP
	// DialTCP connects to a fedserver.
	DialTCP = comm.DialTCP
	// DialTCPRetry re-dials a refused connection with exponential backoff.
	DialTCPRetry = comm.DialTCPRetry
)

// Hierarchical & buffered-async aggregation (internal/relay, internal/comm):
// fedrelay-style mid-tier region folds and the FedBuff-style AsyncEngine.
type (
	// RegionUpdate carries one relay region's folded delta upstream.
	RegionUpdate = comm.RegionUpdate
	// RelayConfig shapes one relay process.
	RelayConfig = relay.Config
	// AsyncEngine aggregates version-stamped updates FedBuff-style.
	AsyncEngine = comm.AsyncEngine
	// AsyncEngineConfig tunes the buffered-async engine.
	AsyncEngineConfig = comm.AsyncConfig
	// AggOutcome reports one asynchronous aggregation's participation.
	AggOutcome = comm.AggOutcome
	// Admitter re-admits reconnecting peers at round boundaries.
	Admitter = comm.Admitter
	// StalenessWeigher discounts an update by its staleness in versions.
	StalenessWeigher = strategy.StalenessWeigher
)

// Hierarchical/async constructors and helpers.
var (
	// RunRelay drives one relay region to completion.
	RunRelay = relay.Run
	// JoinRelay registers a relay (not a leaf) with the root server.
	JoinRelay = comm.JoinRelay
	// NewAsyncEngine wraps a server session in buffered-async aggregation.
	NewAsyncEngine = comm.NewAsyncEngine
	// NewAdmitter accepts and handshakes reconnecting peers in the background.
	NewAdmitter = comm.NewAdmitter
	// ParseStaleness parses a staleness-weigher spec (e.g. "poly:alpha=1").
	ParseStaleness = strategy.ParseStaleness
	// StalenessNames lists the staleness-weigher vocabulary.
	StalenessNames = strategy.StalenessNames
	// IdentityStaleness keeps every update at full weight.
	IdentityStaleness = strategy.IdentityStaleness
	// InvSqrtStaleness is the canonical FedBuff 1/sqrt(1+s) discount.
	InvSqrtStaleness = strategy.InvSqrtStaleness
)

// Cohort scheduling (internal/sched): per round the server samples K
// clients from the pool; straggler and fault-tolerance policies then apply
// within the cohort. Set Config.Scheduler/Config.CohortSize in the
// simulator, or RoundEngine.RunCohort in the distributed engine.
type (
	// Scheduler samples the per-round client cohort.
	Scheduler = sched.Scheduler
	// Candidate describes one client eligible for a round.
	Candidate = sched.Candidate
	// UniformRandom samples the cohort uniformly (FedAvg-style).
	UniformRandom = sched.UniformRandom
	// SizeWeighted samples clients proportionally to their dataset size.
	SizeWeighted = sched.SizeWeighted
	// EntropyUtility exploits high mean-EDS-entropy clients with ε-greedy
	// exploration.
	EntropyUtility = sched.EntropyUtility
	// PowerOfD samples d·K candidates and keeps the K fastest.
	PowerOfD = sched.PowerOfD
	// Availability composes any inner policy with client churn (Markov
	// on/off process or replayed trace).
	Availability = sched.Availability
	// UtilityTracker stores the per-client utility feedback loop.
	UtilityTracker = sched.Tracker
)

// ParseScheduler maps the shared CLI policy names (uniform, size, entropy,
// powerd, tier, avail:<inner>) to a Scheduler.
var ParseScheduler = sched.Parse

// NewUtilityTracker starts an empty client-utility feedback store.
var NewUtilityTracker = sched.NewTracker

// Devices and stragglers.
type (
	// Device models a client's compute speed.
	Device = simtime.Device
	// StragglerPolicy decides which sampled clients complete a round.
	StragglerPolicy = simtime.StragglerPolicy
	// FractionParticipation keeps a random client fraction per round.
	FractionParticipation = simtime.FractionParticipation
	// DeadlineStraggler drops clients that exceed a round deadline.
	DeadlineStraggler = simtime.DeadlineStraggler
)

// NewHeterogeneousDevices draws a lognormal device population.
var NewHeterogeneousDevices = simtime.NewHeterogeneousDevices

// Device capability tiers (internal/device): per-client partial training.
// A Distribution assigns capability profiles deterministically; each
// profile's layer mask caps how deep that client trains, and the engines
// aggregate per layer. Set Config.TierDist in the simulator, or
// -tiers/-tier-dist on fedserver and fedclient.
type (
	// DeviceProfile is one capability class (compute factor, memory
	// fraction, battery level) and the layer mask it affords.
	DeviceProfile = device.Profile
	// TierDistribution is a weighted mix of tiers with a deterministic
	// per-client assignment.
	TierDistribution = device.Distribution
	// MaskedStreamAggregator folds masked updates per layer: each group is
	// averaged only over the clients that shipped it.
	MaskedStreamAggregator = comm.MaskedStreamAggregator
)

// Tier helpers.
var (
	// ParseDistribution parses "tier:weight,..." specs (e.g. "low:1,full:1").
	ParseDistribution = device.ParseDistribution
	// LookupTier resolves a built-in tier name to its profile.
	LookupTier = device.Lookup
	// TierNames lists the built-in tiers, least to most capable.
	TierNames = device.TierNames
	// JoinTieredFederation registers a client with its capability tier.
	JoinTieredFederation = comm.JoinTiered
	// NewMaskedStreamAggregator starts a per-layer aggregator over the
	// communicated groups.
	NewMaskedStreamAggregator = comm.NewMaskedStreamAggregator
)

// Metrics.

// Accuracy is top-1 accuracy of a model on a dataset.
var Accuracy = metrics.Accuracy

// LinearCKA is the linear Centered Kernel Alignment between representations.
var LinearCKA = metrics.LinearCKA

// Experiments (the paper's tables and figures).
type (
	// ExperimentEnv is the shared experiment environment.
	ExperimentEnv = experiments.Env
	// ExperimentScale sizes experiments (smoke / fast / full).
	ExperimentScale = experiments.Scale
)

// Experiment scales.
const (
	ScaleSmoke = experiments.ScaleSmoke
	ScaleFast  = experiments.ScaleFast
	ScaleFull  = experiments.ScaleFull
)

// CheckpointPolicy turns an experiment environment's checkpoint directory
// into a resumable artifact store (install with Env.SetCheckpointPolicy).
type CheckpointPolicy = experiments.CheckpointPolicy

// NewExperimentEnv builds the experiment environment for a scale and seed.
func NewExperimentEnv(scale ExperimentScale, seed int64) (*ExperimentEnv, error) {
	return experiments.NewEnv(scale, seed)
}
