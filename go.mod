module fedfteds

go 1.24
