package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.relayID != 0 || cfg.leaves != 2 || cfg.rounds != 10 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.quorum != 1 || cfg.deadline != 0 || cfg.dialRetries != 0 {
		t.Fatalf("fault-tolerance knobs must default off: %+v", cfg)
	}
	if cfg.timeout != 10*time.Second {
		t.Fatalf("dial timeout default %v", cfg.timeout)
	}
}

func TestParseFlagsFullSet(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:9000", "-listen", "127.0.0.1:9001",
		"-relay-id", "3", "-leaves", "4", "-rounds", "7", "-round-deadline", "90s",
		"-quorum", "0.5", "-timeout", "5s", "-dial-retries", "6"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:9000" || cfg.listen != "127.0.0.1:9001" {
		t.Fatalf("addresses: %+v", cfg)
	}
	if cfg.relayID != 3 || cfg.leaves != 4 || cfg.rounds != 7 {
		t.Fatalf("topology flags: %+v", cfg)
	}
	if cfg.deadline != 90*time.Second || cfg.quorum != 0.5 || cfg.timeout != 5*time.Second || cfg.dialRetries != 6 {
		t.Fatalf("engine flags: %+v", cfg)
	}
}

func TestParseFlagsFailFast(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"negative relay id", []string{"-relay-id", "-1"}, "-relay-id"},
		{"zero leaves", []string{"-leaves", "0"}, "-leaves"},
		{"negative leaves", []string{"-leaves", "-2"}, "-leaves"},
		{"zero rounds", []string{"-rounds", "0"}, "-rounds"},
		{"zero quorum", []string{"-quorum", "0"}, "-quorum"},
		{"quorum above one", []string{"-quorum", "1.5"}, "-quorum"},
		{"negative deadline", []string{"-round-deadline", "-10s"}, "-round-deadline"},
		{"negative dial retries", []string{"-dial-retries", "-1"}, "-dial-retries"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := parseFlags(tt.args)
			if err == nil {
				t.Fatalf("args %v parsed without error", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}
