// Command fedrelay runs the mid-tier aggregator of a hierarchical
// federation: it accepts a region's fedclient leaves on -listen with the
// same session machinery fedserver uses, joins the root fedserver at -addr
// as one relay (declaring the region's summed dataset size and leaf count),
// and then, for every round the root starts, rebroadcasts it to the region,
// folds the leaf updates into a single weighted delta, and forwards that
// delta upstream as one RegionUpdate frame. The root composes region deltas
// through its strategy exactly as it composes client updates, so stacking
// relays between clients and server changes where aggregation happens — not
// what it computes.
//
// The relay's leaf side exposes the same fault-tolerance knobs as fedserver:
// -round-deadline drops hung leaves at expiry, -quorum lets a region's round
// succeed on partial participation. Leaves connect to the relay exactly as
// they would to a server — an unmodified fedclient works as a leaf.
//
// -relay-id is the relay's identity in the root's ID space; give every relay
// a distinct one, as you would give clients distinct -id values. With
// -dial-retries the relay survives starting before the root is listening.
//
// -codec sets the uplink codec advertised to this region's leaves (identity,
// float16, int8, topk:<fraction>); the upstream hop independently adopts
// whatever codec the root advertises, each hop re-encoding — so a tree can
// compress the many leaf links aggressively and the single root link
// differently, or not at all.
//
// Usage:
//
//	fedrelay -addr 127.0.0.1:7070 -listen 127.0.0.1:7171 \
//	         -relay-id 0 -leaves 4 -rounds 10 -quorum 0.5 -dial-retries 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedfteds/internal/comm"
	"fedfteds/internal/relay"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedrelay:", err)
		os.Exit(1)
	}
}

// relayConfig is the validated flag set of one fedrelay run.
type relayConfig struct {
	addr        string
	listen      string
	relayID     int
	leaves      int
	rounds      int
	deadline    time.Duration
	quorum      float64
	timeout     time.Duration
	dialRetries int
	codecSpec   string
}

// parseFlags parses and fail-fast validates the command line, mirroring the
// validation order of the other binaries.
func parseFlags(args []string) (relayConfig, error) {
	var cfg relayConfig
	fs := flag.NewFlagSet("fedrelay", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7070", "root fedserver address")
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:7171", "listen address for the region's leaf clients")
	fs.IntVar(&cfg.relayID, "relay-id", 0, "this relay's identity in the root's ID space")
	fs.IntVar(&cfg.leaves, "leaves", 2, "leaf clients to wait for before joining the root")
	fs.IntVar(&cfg.rounds, "rounds", 10, "communication rounds, must match the root's -rounds")
	fs.DurationVar(&cfg.deadline, "round-deadline", 0, "per-round deadline for the region's leaves; hung leaves are dropped at expiry (0 = wait forever)")
	fs.Float64Var(&cfg.quorum, "quorum", 1, "leaf updates a region round needs to succeed, as a fraction of the round's leaves in (0, 1]")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "root dial timeout")
	fs.IntVar(&cfg.dialRetries, "dial-retries", 0, "re-dial a refused or timed-out root connection this many times with exponential backoff, so the tree can start in any order")
	fs.StringVar(&cfg.codecSpec, "codec", "identity", "uplink codec advertised to this region's leaves: "+strings.Join(comm.CodecNames(), ", ")+" (the upstream hop adopts the root's advertisement instead)")
	if err := fs.Parse(args); err != nil {
		return relayConfig{}, err
	}
	if _, err := comm.ParseCodec(cfg.codecSpec); err != nil {
		return relayConfig{}, fmt.Errorf("-codec: %w", err)
	}
	if cfg.relayID < 0 {
		return relayConfig{}, fmt.Errorf("-relay-id %d is negative", cfg.relayID)
	}
	if cfg.leaves <= 0 {
		return relayConfig{}, fmt.Errorf("-leaves %d must be positive", cfg.leaves)
	}
	if cfg.rounds <= 0 {
		return relayConfig{}, fmt.Errorf("-rounds %d must be positive", cfg.rounds)
	}
	if cfg.quorum <= 0 || cfg.quorum > 1 {
		return relayConfig{}, fmt.Errorf("-quorum %v outside (0, 1]", cfg.quorum)
	}
	if cfg.deadline < 0 {
		return relayConfig{}, fmt.Errorf("-round-deadline %v is negative", cfg.deadline)
	}
	if cfg.dialRetries < 0 {
		return relayConfig{}, fmt.Errorf("-dial-retries %d is negative", cfg.dialRetries)
	}
	return cfg, nil
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	// Listen for leaves before dialing the root, so leaf processes started in
	// parallel have somewhere to retry against immediately.
	l, err := comm.ListenTCP(cfg.listen)
	if err != nil {
		return err
	}
	defer l.Close()
	root, err := comm.DialTCPRetry(cfg.addr, cfg.timeout, cfg.dialRetries)
	if err != nil {
		return err
	}
	defer root.Close()
	return relay.Run(root, l, relay.Config{
		RelayID:   cfg.relayID,
		Leaves:    cfg.leaves,
		Rounds:    cfg.rounds,
		Engine:    comm.EngineConfig{RoundDeadline: cfg.deadline, Quorum: cfg.quorum},
		LeafCodec: cfg.codecSpec,
	})
}
