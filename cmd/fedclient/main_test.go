package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"fedfteds/internal/comm"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.id != 0 || cfg.numClients != 2 || cfg.temperature != 0.1 || cfg.timeout != 10*time.Second {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.strat == nil || cfg.strat.Name() != "fedavg" || cfg.strat.LocalHook() != nil {
		t.Fatalf("strategy must default to plain fedavg: %+v", cfg.strat)
	}
}

// TestParseFlagsStrategyHook: the client accepts the shared strategy
// vocabulary; fedprox carries the proximal local hook into local updates.
func TestParseFlagsStrategyHook(t *testing.T) {
	cfg, err := parseFlags([]string{"-strategy", "fedprox:mu=0.05"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.strat.LocalHook() == nil {
		t.Fatal("fedprox lost its local hook")
	}
}

func TestParseFlagsFailFast(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"negative id", []string{"-id", "-1"}, "-id"},
		{"id beyond federation", []string{"-id", "2", "-clients", "2"}, "-id"},
		{"zero clients", []string{"-clients", "0"}, "-clients"},
		{"zero temperature", []string{"-temperature", "0"}, "-temperature"},
		{"negative timeout", []string{"-timeout", "-1s"}, "-timeout"},
		{"unknown strategy", []string{"-strategy", "sgd"}, "unknown strategy"},
		{"bad strategy parameter", []string{"-strategy", "fedprox:mu=0"}, "mu"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := parseFlags(tt.args)
			if err == nil {
				t.Fatalf("args %v parsed without error", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestClassifyDropEviction pins the eviction contract: a transport-level
// connection drop becomes errEvicted with an actionable message, while
// every other error passes through untouched.
func TestClassifyDropEviction(t *testing.T) {
	drops := []error{
		fmt.Errorf("comm: read header: %w", io.EOF),
		fmt.Errorf("comm: read body: %w", io.ErrUnexpectedEOF),
		fmt.Errorf("send: %w", net.ErrClosed),
		&net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET},
		// The server dying while a frame was in flight: the desync wrapper
		// hides the cause from errors.Is, but eviction must still see it.
		&comm.DesyncError{Op: "write body", Cause: &net.OpError{Op: "write", Net: "tcp", Err: syscall.EPIPE}},
	}
	for _, cause := range drops {
		err := classifyDrop(4, 2, cause)
		if !errors.Is(err, errEvicted) {
			t.Fatalf("%v must classify as eviction, got %v", cause, err)
		}
		msg := err.Error()
		for _, want := range []string{"round 4", "client 2", "server log"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("eviction message %q missing %q", msg, want)
			}
		}
	}

	local := errors.New("core: client 2: loss: NaN")
	if got := classifyDrop(4, 2, local); got != local {
		t.Fatalf("local error must pass through, got %v", got)
	}
	// Timeout-class network errors are deadlines, not severed peers: the
	// real *net.OpError shape a deadline produces must pass through, bare
	// or desync-wrapped.
	timeout := &net.OpError{Op: "read", Net: "tcp", Err: os.ErrDeadlineExceeded}
	if got := classifyDrop(4, 2, timeout); got != timeout {
		t.Fatalf("timeout must pass through, got %v", got)
	}
	timeoutDesync := &comm.DesyncError{Op: "read body", Cause: timeout}
	if got := classifyDrop(4, 2, timeoutDesync); got != timeoutDesync {
		t.Fatalf("timeout desync must pass through, got %v", got)
	}
}

// TestParseFlagsDialRetries pins the -dial-retries surface: off by default
// (a refused dial fails immediately, matching the pre-flag behavior),
// accepted as a non-negative attempt budget, rejected when negative.
func TestParseFlagsDialRetries(t *testing.T) {
	cfg, err := parseFlags([]string{"-dial-retries", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.dialRetries != 5 {
		t.Fatalf("dialRetries %d", cfg.dialRetries)
	}
	if _, err := parseFlags([]string{"-dial-retries", "-1"}); err == nil {
		t.Fatal("negative -dial-retries accepted")
	} else if !strings.Contains(err.Error(), "-dial-retries") {
		t.Fatalf("error %q does not mention the flag", err)
	}
}

// TestDialRetriesSurvivesLateServer is the client half of the any-order
// startup contract: a fedclient launched before its server listens must
// connect once the listener appears within the backoff schedule, using the
// same retry dialer run() uses.
func TestDialRetriesSurvivesLateServer(t *testing.T) {
	cfg, err := parseFlags([]string{"-dial-retries", "10", "-timeout", "1s"})
	if err != nil {
		t.Fatal(err)
	}

	// Reserve a port, then free it so the first attempts are refused.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	accepted := make(chan error, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		l, err := comm.ListenTCP(addr)
		if err != nil {
			accepted <- err
			return
		}
		defer l.Close()
		conn, err := l.Accept()
		if err == nil {
			_ = conn.Close()
		}
		accepted <- err
	}()

	conn, err := comm.DialTCPRetry(addr, cfg.timeout, cfg.dialRetries)
	if err != nil {
		t.Fatalf("retry dial never connected: %v", err)
	}
	_ = conn.Close()
	if err := <-accepted; err != nil {
		t.Fatalf("late server: %v", err)
	}
}
