// Command fedclient is one federated participant in the distributed mode:
// it regenerates its local non-IID partition deterministically from the
// shared -seed and its -id, connects to a fedserver, and answers each round
// with a FedFT-EDS local update (entropy-selected subset, partial
// fine-tuning, only the upper model part on the wire).
//
// Usage (one process per client):
//
//	fedclient -addr 127.0.0.1:7070 -id 0 -clients 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/experiments"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedclient:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fedclient", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	id := fs.Int("id", 0, "this client's federation index")
	numClients := fs.Int("clients", 2, "federation size (must match the server)")
	seed := fs.Int64("seed", 1, "shared federation seed (must match the server)")
	temperature := fs.Float64("temperature", 0.1, "hardened-softmax temperature ρ")
	timeout := fs.Duration("timeout", 10*time.Second, "dial timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id < 0 || *id >= *numClients {
		return fmt.Errorf("client id %d outside [0,%d)", *id, *numClients)
	}

	// Rebuild the shared world deterministically: same seed ⇒ same domains,
	// same partition, same pretrained model as the server.
	env, err := experiments.NewEnv(experiments.ScaleFast, *seed)
	if err != nil {
		return err
	}
	fed, err := env.BuildFederation(env.Suite.Target10, *numClients, 0.1, 31337)
	if err != nil {
		return err
	}
	me := fed.Clients[*id]
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return err
	}
	log.Printf("client %d: %d local samples", *id, me.Data.Len())

	conn, err := comm.DialTCP(*addr, *timeout)
	if err != nil {
		return err
	}
	sess, welcome, err := comm.Join(conn, *id, me.Data.Len())
	if err != nil {
		return err
	}
	log.Printf("joined federation of %d for %d rounds", welcome.NumClients, welcome.Rounds)

	for {
		rs, ok, err := sess.NextRound()
		if err != nil {
			return err
		}
		if !ok {
			log.Printf("server shut the session down")
			return sess.Close()
		}
		// Install the received global state.
		stateTs, err := comm.DecodeTensors(rs.State)
		if err != nil {
			return err
		}
		dst, err := global.GroupStateTensors(rs.Groups)
		if err != nil {
			return err
		}
		if len(dst) != len(stateTs) {
			return fmt.Errorf("round %d: got %d state tensors, want %d", rs.Round, len(stateTs), len(dst))
		}
		for i := range dst {
			if err := dst[i].CopyFrom(stateTs[i]); err != nil {
				return err
			}
		}

		cfg, err := core.NewLocalConfig(core.Config{
			Rounds:         welcome.Rounds,
			LocalEpochs:    rs.LocalEpochs,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   models.FinetuneModerate,
			Selector:       selection.Entropy{Temperature: *temperature},
			SelectFraction: rs.SelectFraction,
			Seed:           *seed,
		})
		if err != nil {
			return err
		}
		out, err := core.LocalUpdate(cfg, global, me, rs.Round)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(out.State)
		if err != nil {
			return err
		}
		if err := sess.SendUpdate(comm.ClientUpdate{
			ClientID:     *id,
			Round:        rs.Round,
			State:        blob,
			NumSelected:  out.NumSelected,
			TrainSeconds: out.Cost.Total(),
			TrainLoss:    out.TrainLoss,
		}); err != nil {
			return err
		}
		log.Printf("round %d: trained on %d selected samples (loss %.3f)", rs.Round, out.NumSelected, out.TrainLoss)
	}
}
