// Command fedclient is one federated participant in the distributed mode:
// it regenerates its local non-IID partition deterministically from the
// shared -seed and its -id, connects to a fedserver, and answers each round
// with a FedFT-EDS local update (entropy-selected subset, partial
// fine-tuning, only the upper model part on the wire) plus its mean EDS
// entropy, the utility signal the server's cohort scheduler exploits.
//
// When the server schedules cohorts (-cohort on fedserver), rounds this
// client is not part of are invisible here: the client simply blocks until
// a cohort includes it again.
//
// -strategy applies a strategy's client-side hook to the local objective
// (fedprox:mu=0.1 adds the proximal term); server-side optimizers
// (fedavgm/fedadam/fedyogi) run on fedserver and need nothing here. Like
// -seed and -temperature, the hook is client-local configuration the wire
// never carries: keep it consistent across restarts of a checkpointed
// federation, or the resumed rounds train a different local objective.
//
// With -tiers (and the same -tier-dist as the server) the client derives its
// device-capability tier deterministically from the shared seed and its -id:
// it declares the tier at join, trains only the layer groups the tier
// affords, and ships only those groups' tensors — a masked layer costs zero
// uplink bytes. Its simulated compute rate is scaled down accordingly, so
// low-tier clients report realistically longer round times. All fleet
// members and the server must agree on -tiers/-tier-dist, exactly like
// -seed.
//
// -codec selects the uplink codec. The default "auto" adopts whatever the
// server's Welcome advertises (identity when it advertises nothing), so an
// unmodified fleet follows the server's -codec; an explicit name pins the
// expectation and fails fast at join when the server advertises something
// else. Lossy codecs (float16, int8, topk:<fraction>) shrink every update
// payload; topk additionally carries this client's error-feedback residual
// from round to round, so below-threshold coordinates eventually ship.
//
// Exit status distinguishes how the session ended, so scripted fleets can
// detect eviction: 0 after a clean server shutdown, 3 when the connection
// was severed without a shutdown message — the server either removed this
// client (crash-class drop) or died itself; the wire cannot distinguish
// the two, so status 3 means "do not blindly rejoin, inspect the server
// first" — and 1 for local errors.
//
// Usage (one process per client):
//
//	fedclient -addr 127.0.0.1:7070 -id 0 -clients 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/device"
	"fedfteds/internal/experiments"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// defaultTierSpec mirrors fedserver's default -tiers distribution; the two
// binaries must derive identical tier assignments from the shared seed.
const defaultTierSpec = "low:1,mid:2,full:1"

// exitEvicted is the exit status after a crash-class removal by the server,
// distinct from 1 (local failure) so fleet scripts can tell them apart.
const exitEvicted = 3

// errEvicted marks a crash-class drop: the server closed this client's
// connection without a shutdown message.
var errEvicted = errors.New("evicted by server")

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "fedclient:", err)
	if errors.Is(err, errEvicted) {
		os.Exit(exitEvicted)
	}
	os.Exit(1)
}

// clientConfig is the validated flag set of one fedclient run.
type clientConfig struct {
	addr         string
	id           int
	numClients   int
	seed         int64
	temperature  float64
	timeout      time.Duration
	dialRetries  int
	stratSpec    string
	strat        strategy.Strategy
	tiers        bool
	tierDistSpec string
	tierDist     *device.Distribution // nil when untiered
	codecSpec    string
}

// parseFlags parses and fail-fast validates the command line.
func parseFlags(args []string) (clientConfig, error) {
	var cfg clientConfig
	fs := flag.NewFlagSet("fedclient", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7070", "server address")
	fs.IntVar(&cfg.id, "id", 0, "this client's federation index")
	fs.IntVar(&cfg.numClients, "clients", 2, "federation size (must match the server)")
	fs.Int64Var(&cfg.seed, "seed", 1, "shared federation seed (must match the server)")
	fs.Float64Var(&cfg.temperature, "temperature", 0.1, "hardened-softmax temperature ρ")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "dial timeout")
	fs.IntVar(&cfg.dialRetries, "dial-retries", 0, "re-dial a refused or timed-out connection this many times with exponential backoff, so a fleet can start before its server")
	fs.StringVar(&cfg.stratSpec, "strategy", "fedavg", "federated-optimization strategy; only its client-side hook applies here (fedprox:mu=0.1 adds the proximal term), server optimizers run on fedserver")
	fs.BoolVar(&cfg.tiers, "tiers", false, "device-tier mode: derive this client's capability tier from the shared seed, train and ship only the layer groups it affords (must match the server)")
	fs.StringVar(&cfg.tierDistSpec, "tier-dist", "", "tier distribution \"tier:weight,...\" over "+strings.Join(device.TierNames(), "/")+" (implies -tiers; default "+defaultTierSpec+"; must match the server)")
	fs.StringVar(&cfg.codecSpec, "codec", "auto", "uplink codec: auto (adopt the server's advertisement), or pin one of "+strings.Join(comm.CodecNames(), ", ")+" and fail fast on a mismatch")
	if err := fs.Parse(args); err != nil {
		return clientConfig{}, err
	}
	// An explicit codec spec is validated now so a typo fails before dialing;
	// the actual instance is negotiated against the server's Welcome.
	if cfg.codecSpec != "auto" && cfg.codecSpec != "" {
		if _, err := comm.ParseCodec(cfg.codecSpec); err != nil {
			return clientConfig{}, fmt.Errorf("-codec: %w", err)
		}
	}
	strat, err := strategy.Parse(cfg.stratSpec)
	if err != nil {
		return clientConfig{}, err
	}
	cfg.strat = strat
	if cfg.tierDistSpec != "" {
		cfg.tiers = true
	}
	if cfg.tiers {
		spec := cfg.tierDistSpec
		if spec == "" {
			spec = defaultTierSpec
		}
		dist, err := device.ParseDistribution(spec)
		if err != nil {
			return clientConfig{}, fmt.Errorf("-tier-dist: %w", err)
		}
		cfg.tierDist = dist
	}
	if cfg.numClients <= 0 {
		return clientConfig{}, fmt.Errorf("-clients %d must be positive", cfg.numClients)
	}
	if cfg.id < 0 || cfg.id >= cfg.numClients {
		return clientConfig{}, fmt.Errorf("-id %d outside [0, %d)", cfg.id, cfg.numClients)
	}
	if cfg.temperature <= 0 {
		return clientConfig{}, fmt.Errorf("-temperature %v must be positive", cfg.temperature)
	}
	if cfg.timeout <= 0 {
		return clientConfig{}, fmt.Errorf("-timeout %v must be positive", cfg.timeout)
	}
	if cfg.dialRetries < 0 {
		return clientConfig{}, fmt.Errorf("-dial-retries %d is negative", cfg.dialRetries)
	}
	return cfg, nil
}

// classifyDrop distinguishes a severed connection — the server removed
// this client (the engine closes the connection on a crash-class failure)
// or the server itself went down; the two are indistinguishable on the
// wire — from other errors. The message is actionable: it names the round,
// points at the server log, and says how to recover.
func classifyDrop(round int, id int, err error) error {
	if !isConnectionDrop(err) {
		return err
	}
	return fmt.Errorf("%w during round %d: the connection was severed without a shutdown message — "+
		"either this client was evicted (crash-class drop: a previous update failed or violated the "+
		"protocol) or the server went down; this client cannot rejoin the running federation: "+
		"check the server log for \"client %d\" to find the offending round (no mention means the "+
		"server died), then restart the process for the next federation (%v)",
		errEvicted, round, id, err)
}

// isConnectionDrop reports whether err is the transport-level signature of
// a closed peer connection: EOF on the TCP framing, a reset/closed socket,
// or a mid-frame desynchronization whose cause was one of those (the
// server vanishing while a frame was in flight).
func isConnectionDrop(err error) bool {
	var de *comm.DesyncError
	if errors.As(err, &de) {
		return isConnectionDrop(de.Cause)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	// A timeout-class network error is a deadline, not a severed peer —
	// mirror the engine's straggler/crash boundary.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	var op *net.OpError
	return errors.As(err, &op)
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	// Rebuild the shared world deterministically: same seed ⇒ same domains,
	// same partition, same pretrained model as the server.
	env, err := experiments.NewEnv(experiments.ScaleFast, cfg.seed)
	if err != nil {
		return err
	}
	fed, err := env.BuildFederation(env.Suite.Target10, cfg.numClients, 0.1, 31337)
	if err != nil {
		return err
	}
	me := fed.Clients[cfg.id]
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return err
	}
	log.Printf("client %d: %d local samples", cfg.id, me.Data.Len())

	// In tier mode the client's capability tier falls out of the shared seed
	// (same derivation on every fleet member and the server), its layer mask
	// out of the tier's budget over the model's per-group training FLOPs, and
	// its simulated compute rate is scaled by the tier's factor.
	var tier string
	var tierMask []string
	if cfg.tierDist != nil {
		tier = cfg.tierDist.Assign(cfg.numClients, cfg.seed)[cfg.id]
		prof, err := device.Lookup(tier)
		if err != nil {
			return err
		}
		perGroup, _ := global.GroupFLOPs()
		if tierMask, err = prof.MaskFor(models.GroupNames(), perGroup); err != nil {
			return err
		}
		me.Device.FLOPSRate *= prof.FLOPSFactor
		log.Printf("client %d: tier %s, trainable groups %v", cfg.id, tier, tierMask)
	}

	conn, err := comm.DialTCPRetry(cfg.addr, cfg.timeout, cfg.dialRetries)
	if err != nil {
		return err
	}
	sess, welcome, err := comm.JoinTiered(conn, cfg.id, me.Data.Len(), tier)
	if err != nil {
		return err
	}
	// Negotiate the uplink codec against the server's advertisement: "auto"
	// adopts it, an explicit -codec must match it exactly. Identity stays
	// nil so the legacy encode path (and its exact wire bytes) is untouched.
	codec, err := comm.PickCodec(welcome.Codecs, cfg.codecSpec)
	if err != nil {
		return err
	}
	var wireCodec comm.Codec
	codecEcho := ""
	if codec.Name() != comm.CodecIdentity {
		wireCodec, codecEcho = codec, codec.Name()
	}
	log.Printf("joined federation of %d for %d rounds (codec %s)", welcome.NumClients, welcome.Rounds, codec.Name())

	lastRound := 0
	for {
		rs, ok, err := sess.NextRound()
		if err != nil {
			return classifyDrop(lastRound+1, cfg.id, err)
		}
		if !ok {
			log.Printf("server shut the session down")
			return sess.Close()
		}
		lastRound = rs.Round
		// Install the received global state.
		stateTs, err := comm.DecodeTensors(rs.State)
		if err != nil {
			return err
		}
		dst, err := global.GroupStateTensors(rs.Groups)
		if err != nil {
			return err
		}
		if len(dst) != len(stateTs) {
			return fmt.Errorf("round %d: got %d state tensors, want %d", rs.Round, len(stateTs), len(dst))
		}
		for i := range dst {
			if err := dst[i].CopyFrom(stateTs[i]); err != nil {
				return err
			}
		}

		// The wire mask is the tier mask narrowed to the groups the server
		// actually communicates this round: both are top-suffixes of the
		// canonical group order, so the intersection is simply the shorter
		// one, and it always contains the classifier.
		var mask []string
		if cfg.tierDist != nil {
			mask = intersectGroups(tierMask, rs.Groups)
		}

		localCfg, err := core.NewLocalConfig(core.Config{
			Rounds:         welcome.Rounds,
			LocalEpochs:    rs.LocalEpochs,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   models.FinetuneModerate,
			TrainGroups:    mask,
			Selector:       selection.Entropy{Temperature: cfg.temperature},
			SelectFraction: rs.SelectFraction,
			Strategy:       cfg.strat,
			Seed:           cfg.seed,
		})
		if err != nil {
			return err
		}
		out, err := core.LocalUpdate(localCfg, global, me, rs.Round)
		if err != nil {
			return err
		}
		var blob []byte
		if wireCodec == nil {
			blob, err = comm.EncodeTensors(out.State)
		} else {
			// Encode against the broadcast reference this round trained from:
			// stateTs still holds the decoded wire values (training mutated
			// the model, not these copies), narrowed to the shipped tensors in
			// tier mode — the same subset the server's aggregator rebuilds.
			// The seed derivation matches the simulator's, so a distributed
			// client and its simulated twin quantize identically.
			ref := stateTs
			if mask != nil {
				if ref, err = coveredSubset(global, stateTs, rs.Groups, mask); err != nil {
					return err
				}
			}
			seed := comm.CodecSeed(uint64(cfg.seed), rs.Round, cfg.id)
			blob, err = wireCodec.Encode(ref, out.State, seed)
		}
		if err != nil {
			return err
		}
		if err := sess.SendUpdate(comm.ClientUpdate{
			ClientID: cfg.id,
			Round:    rs.Round,
			// Version echoes the model version of an async server's dispatch,
			// letting it measure this update's staleness; synchronous servers
			// send the zero value and ignore the echo.
			Version:      rs.Version,
			State:        blob,
			Codec:        codecEcho,
			Groups:       mask,
			NumSelected:  out.NumSelected,
			TrainSeconds: out.Cost.Total(),
			TrainLoss:    out.TrainLoss,
			MeanEntropy:  out.MeanEntropy,
		}); err != nil {
			return classifyDrop(rs.Round, cfg.id, err)
		}
		log.Printf("round %d: trained on %d selected samples (loss %.3f, mean entropy %.3f)",
			rs.Round, out.NumSelected, out.TrainLoss, out.MeanEntropy)
	}
}

// coveredSubset narrows the decoded broadcast tensors to the ones belonging
// to this client's shipped groups, in broadcast order — the codec reference
// for a tiered update. It mirrors the server aggregator's per-update
// reference reconstruction, so both ends encode and decode against the same
// tensor list.
func coveredSubset(global *models.Model, stateTs []*tensor.Tensor, groups, mask []string) ([]*tensor.Tensor, error) {
	layout, err := global.GroupStateLayout(groups)
	if err != nil {
		return nil, err
	}
	if len(layout) != len(stateTs) {
		return nil, fmt.Errorf("broadcast carries %d tensors for a %d-tensor layout", len(stateTs), len(layout))
	}
	shipped := make(map[string]bool, len(mask))
	for _, g := range mask {
		shipped[g] = true
	}
	out := make([]*tensor.Tensor, 0, len(stateTs))
	for i, g := range layout {
		if shipped[g] {
			out = append(out, stateTs[i])
		}
	}
	return out, nil
}

// intersectGroups keeps the groups of mask that the server communicates,
// preserving mask's (bottom-to-top) order.
func intersectGroups(mask, have []string) []string {
	set := make(map[string]bool, len(have))
	for _, g := range have {
		set[g] = true
	}
	out := make([]string, 0, len(mask))
	for _, g := range mask {
		if set[g] {
			out = append(out, g)
		}
	}
	return out
}
