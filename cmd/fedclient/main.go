// Command fedclient is one federated participant in the distributed mode:
// it regenerates its local non-IID partition deterministically from the
// shared -seed and its -id, connects to a fedserver, and answers each round
// with a FedFT-EDS local update (entropy-selected subset, partial
// fine-tuning, only the upper model part on the wire) plus its mean EDS
// entropy, the utility signal the server's cohort scheduler exploits.
//
// When the server schedules cohorts (-cohort on fedserver), rounds this
// client is not part of are invisible here: the client simply blocks until
// a cohort includes it again.
//
// -strategy applies a strategy's client-side hook to the local objective
// (fedprox:mu=0.1 adds the proximal term); server-side optimizers
// (fedavgm/fedadam/fedyogi) run on fedserver and need nothing here. Like
// -seed and -temperature, the hook is client-local configuration the wire
// never carries: keep it consistent across restarts of a checkpointed
// federation, or the resumed rounds train a different local objective.
//
// Exit status distinguishes how the session ended, so scripted fleets can
// detect eviction: 0 after a clean server shutdown, 3 when the connection
// was severed without a shutdown message — the server either removed this
// client (crash-class drop) or died itself; the wire cannot distinguish
// the two, so status 3 means "do not blindly rejoin, inspect the server
// first" — and 1 for local errors.
//
// Usage (one process per client):
//
//	fedclient -addr 127.0.0.1:7070 -id 0 -clients 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/experiments"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/strategy"
)

// exitEvicted is the exit status after a crash-class removal by the server,
// distinct from 1 (local failure) so fleet scripts can tell them apart.
const exitEvicted = 3

// errEvicted marks a crash-class drop: the server closed this client's
// connection without a shutdown message.
var errEvicted = errors.New("evicted by server")

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "fedclient:", err)
	if errors.Is(err, errEvicted) {
		os.Exit(exitEvicted)
	}
	os.Exit(1)
}

// clientConfig is the validated flag set of one fedclient run.
type clientConfig struct {
	addr        string
	id          int
	numClients  int
	seed        int64
	temperature float64
	timeout     time.Duration
	stratSpec   string
	strat       strategy.Strategy
}

// parseFlags parses and fail-fast validates the command line.
func parseFlags(args []string) (clientConfig, error) {
	var cfg clientConfig
	fs := flag.NewFlagSet("fedclient", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7070", "server address")
	fs.IntVar(&cfg.id, "id", 0, "this client's federation index")
	fs.IntVar(&cfg.numClients, "clients", 2, "federation size (must match the server)")
	fs.Int64Var(&cfg.seed, "seed", 1, "shared federation seed (must match the server)")
	fs.Float64Var(&cfg.temperature, "temperature", 0.1, "hardened-softmax temperature ρ")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "dial timeout")
	fs.StringVar(&cfg.stratSpec, "strategy", "fedavg", "federated-optimization strategy; only its client-side hook applies here (fedprox:mu=0.1 adds the proximal term), server optimizers run on fedserver")
	if err := fs.Parse(args); err != nil {
		return clientConfig{}, err
	}
	strat, err := strategy.Parse(cfg.stratSpec)
	if err != nil {
		return clientConfig{}, err
	}
	cfg.strat = strat
	if cfg.numClients <= 0 {
		return clientConfig{}, fmt.Errorf("-clients %d must be positive", cfg.numClients)
	}
	if cfg.id < 0 || cfg.id >= cfg.numClients {
		return clientConfig{}, fmt.Errorf("-id %d outside [0, %d)", cfg.id, cfg.numClients)
	}
	if cfg.temperature <= 0 {
		return clientConfig{}, fmt.Errorf("-temperature %v must be positive", cfg.temperature)
	}
	if cfg.timeout <= 0 {
		return clientConfig{}, fmt.Errorf("-timeout %v must be positive", cfg.timeout)
	}
	return cfg, nil
}

// classifyDrop distinguishes a severed connection — the server removed
// this client (the engine closes the connection on a crash-class failure)
// or the server itself went down; the two are indistinguishable on the
// wire — from other errors. The message is actionable: it names the round,
// points at the server log, and says how to recover.
func classifyDrop(round int, id int, err error) error {
	if !isConnectionDrop(err) {
		return err
	}
	return fmt.Errorf("%w during round %d: the connection was severed without a shutdown message — "+
		"either this client was evicted (crash-class drop: a previous update failed or violated the "+
		"protocol) or the server went down; this client cannot rejoin the running federation: "+
		"check the server log for \"client %d\" to find the offending round (no mention means the "+
		"server died), then restart the process for the next federation (%v)",
		errEvicted, round, id, err)
}

// isConnectionDrop reports whether err is the transport-level signature of
// a closed peer connection: EOF on the TCP framing, a reset/closed socket,
// or a mid-frame desynchronization whose cause was one of those (the
// server vanishing while a frame was in flight).
func isConnectionDrop(err error) bool {
	var de *comm.DesyncError
	if errors.As(err, &de) {
		return isConnectionDrop(de.Cause)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	// A timeout-class network error is a deadline, not a severed peer —
	// mirror the engine's straggler/crash boundary.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	var op *net.OpError
	return errors.As(err, &op)
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	// Rebuild the shared world deterministically: same seed ⇒ same domains,
	// same partition, same pretrained model as the server.
	env, err := experiments.NewEnv(experiments.ScaleFast, cfg.seed)
	if err != nil {
		return err
	}
	fed, err := env.BuildFederation(env.Suite.Target10, cfg.numClients, 0.1, 31337)
	if err != nil {
		return err
	}
	me := fed.Clients[cfg.id]
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return err
	}
	log.Printf("client %d: %d local samples", cfg.id, me.Data.Len())

	conn, err := comm.DialTCP(cfg.addr, cfg.timeout)
	if err != nil {
		return err
	}
	sess, welcome, err := comm.Join(conn, cfg.id, me.Data.Len())
	if err != nil {
		return err
	}
	log.Printf("joined federation of %d for %d rounds", welcome.NumClients, welcome.Rounds)

	lastRound := 0
	for {
		rs, ok, err := sess.NextRound()
		if err != nil {
			return classifyDrop(lastRound+1, cfg.id, err)
		}
		if !ok {
			log.Printf("server shut the session down")
			return sess.Close()
		}
		lastRound = rs.Round
		// Install the received global state.
		stateTs, err := comm.DecodeTensors(rs.State)
		if err != nil {
			return err
		}
		dst, err := global.GroupStateTensors(rs.Groups)
		if err != nil {
			return err
		}
		if len(dst) != len(stateTs) {
			return fmt.Errorf("round %d: got %d state tensors, want %d", rs.Round, len(stateTs), len(dst))
		}
		for i := range dst {
			if err := dst[i].CopyFrom(stateTs[i]); err != nil {
				return err
			}
		}

		localCfg, err := core.NewLocalConfig(core.Config{
			Rounds:         welcome.Rounds,
			LocalEpochs:    rs.LocalEpochs,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   models.FinetuneModerate,
			Selector:       selection.Entropy{Temperature: cfg.temperature},
			SelectFraction: rs.SelectFraction,
			Strategy:       cfg.strat,
			Seed:           cfg.seed,
		})
		if err != nil {
			return err
		}
		out, err := core.LocalUpdate(localCfg, global, me, rs.Round)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(out.State)
		if err != nil {
			return err
		}
		if err := sess.SendUpdate(comm.ClientUpdate{
			ClientID:     cfg.id,
			Round:        rs.Round,
			State:        blob,
			NumSelected:  out.NumSelected,
			TrainSeconds: out.Cost.Total(),
			TrainLoss:    out.TrainLoss,
			MeanEntropy:  out.MeanEntropy,
		}); err != nil {
			return classifyDrop(rs.Round, cfg.id, err)
		}
		log.Printf("round %d: trained on %d selected samples (loss %.3f, mean entropy %.3f)",
			rs.Round, out.NumSelected, out.TrainLoss, out.MeanEntropy)
	}
}
