package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.numClients != 2 || cfg.rounds != 10 || cfg.quorum != 1 || cfg.roundDeadline != 0 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.cohort != 0 || cfg.scheduler != nil {
		t.Fatalf("scheduling must default off: %+v", cfg)
	}
	if cfg.schedName != "uniform" {
		t.Fatalf("default policy %q", cfg.schedName)
	}
}

func TestParseFlagsSchedulingOn(t *testing.T) {
	cfg, err := parseFlags([]string{"-clients", "8", "-cohort", "3", "-sched", "avail:entropy",
		"-round-deadline", "90s", "-quorum", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.cohort != 3 || cfg.scheduler == nil || cfg.scheduler.Name() != "avail:entropy" {
		t.Fatalf("scheduling config: %+v", cfg)
	}
	if cfg.roundDeadline != 90*time.Second || cfg.quorum != 0.5 {
		t.Fatalf("engine flags: %+v", cfg)
	}
}

func TestParseFlagsFailFast(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"zero quorum", []string{"-quorum", "0"}, "-quorum"},
		{"negative quorum", []string{"-quorum", "-0.1"}, "-quorum"},
		{"quorum above one", []string{"-quorum", "1.5"}, "-quorum"},
		{"negative deadline", []string{"-round-deadline", "-10s"}, "-round-deadline"},
		{"zero clients", []string{"-clients", "0"}, "-clients"},
		{"zero fraction", []string{"-fraction", "0"}, "-fraction"},
		{"fraction above one", []string{"-fraction", "1.5"}, "-fraction"},
		{"zero epochs", []string{"-epochs", "0"}, "-epochs"},
		{"zero rounds", []string{"-rounds", "0"}, "-rounds"},
		{"negative cohort", []string{"-cohort", "-1"}, "-cohort"},
		{"cohort beyond pool", []string{"-clients", "3", "-cohort", "4"}, "-cohort"},
		{"unknown policy", []string{"-sched", "fifo"}, "unknown policy"},
		{"unknown policy with scheduling off", []string{"-cohort", "0", "-sched", "nope"}, "unknown policy"},
		{"unknown inner policy", []string{"-cohort", "2", "-clients", "4", "-sched", "avail:fifo"}, "unknown policy"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := parseFlags(tt.args)
			if err == nil {
				t.Fatalf("args %v parsed without error", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestParseFlagsSchedNamesMatchFedsim pins the shared policy vocabulary:
// every name fedserver accepts must parse, so the fedsim and fedserver
// -sched flags stay interchangeable.
func TestParseFlagsSchedNamesMatchFedsim(t *testing.T) {
	for _, name := range []string{"uniform", "size", "entropy", "powerd", "avail:uniform", "avail:powerd"} {
		if _, err := parseFlags([]string{"-clients", "4", "-cohort", "2", "-sched", name}); err != nil {
			t.Fatalf("policy %q rejected: %v", name, err)
		}
	}
}
