package main

import (
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"fedfteds/internal/ckpt"
	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/device"
	"fedfteds/internal/experiments"
	"fedfteds/internal/models"
	"fedfteds/internal/relay"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/strategy"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.numClients != 2 || cfg.rounds != 10 || cfg.quorum != 1 || cfg.roundDeadline != 0 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.cohort != 0 || cfg.scheduler != nil {
		t.Fatalf("scheduling must default off: %+v", cfg)
	}
	if cfg.schedName != "uniform" {
		t.Fatalf("default policy %q", cfg.schedName)
	}
	if cfg.strat == nil || !strategy.IsDefault(cfg.strat) {
		t.Fatalf("strategy must default to fedavg: %+v", cfg.strat)
	}
	if cfg.taggedStrategy() != nil {
		t.Fatal("default strategy must stay out of the checkpoint tag")
	}
}

// TestParseFlagsStrategy pins the -strategy flag: shared vocabulary with
// fedsim, inline parameters, fail-fast rejection of bad specs.
func TestParseFlagsStrategy(t *testing.T) {
	cfg, err := parseFlags([]string{"-strategy", "fedadam:lr=0.05,beta1=0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.strat.Name() != "fedadam" {
		t.Fatalf("strategy name %q", cfg.strat.Name())
	}
	if cfg.taggedStrategy() == nil {
		t.Fatal("non-default strategy missing from the checkpoint tag")
	}
	// An edited strategy must change the config tag (the resume refusal).
	base, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.configTag() == base.configTag() {
		t.Fatal("fedadam and fedavg share a config tag")
	}

	for _, name := range []string{"fedavg", "fedprox", "fedavgm", "fedadam", "fedyogi", "fedyogi:lr=0.2"} {
		if _, err := parseFlags([]string{"-strategy", name}); err != nil {
			t.Fatalf("strategy %q rejected: %v", name, err)
		}
	}
	for _, bad := range []string{"sgd", "fedadam:lr=0", "fedadam:gamma=2", "fedprox:mu=-1"} {
		if _, err := parseFlags([]string{"-strategy", bad}); err == nil {
			t.Fatalf("strategy %q accepted", bad)
		}
	}
}

func TestParseFlagsSchedulingOn(t *testing.T) {
	cfg, err := parseFlags([]string{"-clients", "8", "-cohort", "3", "-sched", "avail:entropy",
		"-round-deadline", "90s", "-quorum", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.cohort != 3 || cfg.scheduler == nil || cfg.scheduler.Name() != "avail:entropy" {
		t.Fatalf("scheduling config: %+v", cfg)
	}
	if cfg.roundDeadline != 90*time.Second || cfg.quorum != 0.5 {
		t.Fatalf("engine flags: %+v", cfg)
	}
}

func TestParseFlagsFailFast(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"zero quorum", []string{"-quorum", "0"}, "-quorum"},
		{"negative quorum", []string{"-quorum", "-0.1"}, "-quorum"},
		{"quorum above one", []string{"-quorum", "1.5"}, "-quorum"},
		{"negative deadline", []string{"-round-deadline", "-10s"}, "-round-deadline"},
		{"zero clients", []string{"-clients", "0"}, "-clients"},
		{"zero fraction", []string{"-fraction", "0"}, "-fraction"},
		{"fraction above one", []string{"-fraction", "1.5"}, "-fraction"},
		{"zero epochs", []string{"-epochs", "0"}, "-epochs"},
		{"zero rounds", []string{"-rounds", "0"}, "-rounds"},
		{"negative cohort", []string{"-cohort", "-1"}, "-cohort"},
		{"cohort beyond pool", []string{"-clients", "3", "-cohort", "4"}, "-cohort"},
		{"unknown policy", []string{"-sched", "fifo"}, "unknown policy"},
		{"unknown policy with scheduling off", []string{"-cohort", "0", "-sched", "nope"}, "unknown policy"},
		{"unknown inner policy", []string{"-cohort", "2", "-clients", "4", "-sched", "avail:fifo"}, "unknown policy"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := parseFlags(tt.args)
			if err == nil {
				t.Fatalf("args %v parsed without error", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestParseFlagsSchedNamesMatchFedsim pins the shared policy vocabulary:
// every name fedserver accepts must parse, so the fedsim and fedserver
// -sched flags stay interchangeable.
func TestParseFlagsSchedNamesMatchFedsim(t *testing.T) {
	for _, name := range []string{"uniform", "size", "entropy", "powerd", "tier", "avail:uniform", "avail:powerd", "avail:tier"} {
		if _, err := parseFlags([]string{"-clients", "4", "-cohort", "2", "-sched", name}); err != nil {
			t.Fatalf("policy %q rejected: %v", name, err)
		}
	}
}

// TestParseFlagsCheckpointDir covers the new -ckpt-dir flag: accepted and
// created when usable, rejected fail-fast when not.
func TestParseFlagsCheckpointDir(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	cfg, err := parseFlags([]string{"-ckpt-dir", dir})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ckptDir != dir {
		t.Fatalf("ckptDir %q", cfg.ckptDir)
	}
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		t.Fatalf("checkpoint dir not created: %v", err)
	}

	// A path below an existing file cannot be created: fail before serving.
	occupied := t.TempDir() + "/occupied"
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFlags([]string{"-ckpt-dir", occupied + "/sub"}); err == nil {
		t.Fatal("expected error for uncreatable -ckpt-dir")
	}
}

// testClient mirrors fedclient's loop for in-process integration tests: it
// joins the server, answers rounds with real FedFT-EDS local updates, and —
// when dieAfter > 0 — severs its connection after completing that round,
// simulating a client-side crash. A non-nil dist puts the client in tier
// mode, mirroring fedclient's -tiers path: tier derived from the shared
// seed, partial training under the tier's mask, masked state on the wire.
func testClient(t *testing.T, env *experiments.Env, addr string, id, numClients int, seed int64, dieAfter int, dist *device.Distribution) error {
	t.Helper()
	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 31337)
	if err != nil {
		return err
	}
	me := fed.Clients[id]
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return err
	}
	var tier string
	var tierMask []string
	if dist != nil {
		tier = dist.Assign(numClients, seed)[id]
		prof, err := device.Lookup(tier)
		if err != nil {
			return err
		}
		perGroup, _ := global.GroupFLOPs()
		if tierMask, err = prof.MaskFor(models.GroupNames(), perGroup); err != nil {
			return err
		}
	}
	conn, err := comm.DialTCP(addr, 10*time.Second)
	if err != nil {
		return err
	}
	sess, welcome, err := comm.JoinTiered(conn, id, me.Data.Len(), tier)
	if err != nil {
		return err
	}
	for {
		rs, ok, err := sess.NextRound()
		if err != nil {
			return err
		}
		if !ok {
			return sess.Close()
		}
		stateTs, err := comm.DecodeTensors(rs.State)
		if err != nil {
			return err
		}
		dst, err := global.GroupStateTensors(rs.Groups)
		if err != nil {
			return err
		}
		for i := range dst {
			if err := dst[i].CopyFrom(stateTs[i]); err != nil {
				return err
			}
		}
		var mask []string
		if dist != nil {
			mask = intersectGroups(tierMask, rs.Groups)
		}
		localCfg, err := core.NewLocalConfig(core.Config{
			Rounds:         welcome.Rounds,
			LocalEpochs:    rs.LocalEpochs,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   models.FinetuneModerate,
			TrainGroups:    mask,
			Selector:       selection.Entropy{Temperature: 0.1},
			SelectFraction: rs.SelectFraction,
			Seed:           seed,
		})
		if err != nil {
			return err
		}
		out, err := core.LocalUpdate(localCfg, global, me, rs.Round)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(out.State)
		if err != nil {
			return err
		}
		if err := sess.SendUpdate(comm.ClientUpdate{
			ClientID:     id,
			Round:        rs.Round,
			State:        blob,
			Groups:       mask,
			NumSelected:  out.NumSelected,
			TrainSeconds: out.Cost.Total(),
			TrainLoss:    out.TrainLoss,
			MeanEntropy:  out.MeanEntropy,
			Version:      rs.Version,
		}); err != nil {
			return err
		}
		if dieAfter > 0 && rs.Round >= dieAfter {
			return sess.Close() // crash: vanish without a goodbye
		}
	}
}

// TestServerCrashResume is the acceptance demo as a test: a fedserver killed
// mid-federation (here: it errors out when every client vanishes after round
// 2) and restarted with the same -ckpt-dir completes the remaining rounds on
// top of the checkpointed progress instead of starting over.
func TestServerCrashResume(t *testing.T) {
	const (
		numClients = 2
		rounds     = 4
		dieAfter   = 2
		seed       = int64(1)
	)
	ckptDir := t.TempDir()
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		t.Fatal(err)
	}

	phase := func(dieAfterRound int) error {
		l, err := comm.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		cfg, err := parseFlags([]string{
			"-clients", "2", "-rounds", "4", "-epochs", "1", "-seed", "1",
			"-ckpt-dir", ckptDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- serve(cfg, l) }()
		clientErr := make(chan error, numClients)
		for id := 0; id < numClients; id++ {
			go func(id int) {
				clientErr <- testClient(t, env, l.Addr(), id, numClients, seed, dieAfterRound, nil)
			}(id)
		}
		for i := 0; i < numClients; i++ {
			if err := <-clientErr; err != nil && dieAfterRound == 0 {
				t.Fatalf("client: %v", err)
			}
		}
		return <-serveErr
	}

	// Phase 1: every client vanishes after round 2; the federation dies
	// mid-flight with rounds 1–2 checkpointed.
	if err := phase(dieAfter); err == nil {
		t.Fatal("server survived losing every client; expected a mid-federation failure")
	}
	crashed, err := core.LoadLatestRunState(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Round != dieAfter {
		t.Fatalf("crash left checkpoint at round %d, want %d", crashed.Round, dieAfter)
	}

	// Phase 2: a restarted server with the same -ckpt-dir and fresh clients
	// finishes the remaining rounds.
	if err := phase(0); err != nil {
		t.Fatalf("restarted server failed: %v", err)
	}
	final, err := core.LoadLatestRunState(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if final.Round != rounds {
		t.Fatalf("final checkpoint at round %d, want %d", final.Round, rounds)
	}
	if len(final.Hist.Records) != rounds {
		t.Fatalf("final history has %d records, want %d", len(final.Hist.Records), rounds)
	}
	// The restart continued the crashed run: the first rounds' records are
	// the checkpointed ones, and the post-restart rounds follow them.
	if !reflect.DeepEqual(final.Hist.Records[:dieAfter], crashed.Hist.Records) {
		t.Fatalf("restart rewrote pre-crash history:\ncrashed: %+v\nfinal:   %+v",
			crashed.Hist.Records, final.Hist.Records[:dieAfter])
	}
	if final.Hist.Records[dieAfter].Round != dieAfter+1 {
		t.Fatalf("restart did not resume at round %d: %+v", dieAfter+1, final.Hist.Records[dieAfter])
	}
}

// runFederation serves one TCP federation with the given extra server flags
// and numClients in-process clients that (when dieAfter > 0) vanish after
// that round. It returns serve's error.
func runFederation(t *testing.T, env *experiments.Env, extraArgs []string, numClients, dieAfter int) error {
	t.Helper()
	l, err := comm.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cfg, err := parseFlags(extraArgs)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(cfg, l) }()
	clientErr := make(chan error, numClients)
	for id := 0; id < numClients; id++ {
		go func(id int) {
			clientErr <- testClient(t, env, l.Addr(), id, numClients, cfg.seed, dieAfter, cfg.tierDist)
		}(id)
	}
	for i := 0; i < numClients; i++ {
		if err := <-clientErr; err != nil && dieAfter == 0 {
			t.Fatalf("client: %v", err)
		}
	}
	return <-serveErr
}

// TestServerStrategiesTCPResumeBitIdentical is the distributed half of the
// strategy acceptance: FedAvgM, FedAdam and FedYogi each run end-to-end
// over real TCP, and a server crashed mid-federation and restarted from its
// checkpoints finishes with exactly the reference run's history, global
// model and server-optimizer state — the moments survive the restart.
func TestServerStrategiesTCPResumeBitIdentical(t *testing.T) {
	const (
		numClients = 2
		rounds     = 4
		dieAfter   = 2
		seed       = int64(1)
	)
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the env's pretrained-model cache once so per-strategy timings
	// measure federation work, not repeated pretraining.
	if _, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source); err != nil {
		t.Fatal(err)
	}

	for _, spec := range []string{"fedavgm", "fedadam:lr=0.05", "fedyogi:lr=0.05"} {
		t.Run(spec, func(t *testing.T) {
			args := func(dir string) []string {
				return []string{"-clients", "2", "-rounds", "4", "-epochs", "1", "-seed", "1",
					"-strategy", spec, "-ckpt-dir", dir}
			}

			// Reference: an uninterrupted federation.
			refDir := t.TempDir()
			if err := runFederation(t, env, args(refDir), numClients, 0); err != nil {
				t.Fatalf("reference federation: %v", err)
			}
			ref, err := core.LoadLatestRunState(refDir)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Round != rounds || len(ref.Hist.Records) != rounds {
				t.Fatalf("reference checkpoint at round %d with %d records", ref.Round, len(ref.Hist.Records))
			}
			if ref.StratName == "" || len(ref.StratState) == 0 {
				t.Fatalf("reference checkpoint lost the strategy section: %q, %d tensors",
					ref.StratName, len(ref.StratState))
			}
			if ref.Hist.FinalAccuracy <= 0 {
				t.Fatalf("federation produced no accuracy: %+v", ref.Hist)
			}

			// Crash after round 2, then restart from the same directory.
			crashDir := t.TempDir()
			if err := runFederation(t, env, args(crashDir), numClients, dieAfter); err == nil {
				t.Fatal("server survived losing every client")
			}
			if err := runFederation(t, env, args(crashDir), numClients, 0); err != nil {
				t.Fatalf("restarted federation: %v", err)
			}
			resumed, err := core.LoadLatestRunState(crashDir)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(ref.Hist, resumed.Hist) {
				t.Fatalf("resumed history diverged:\nref:     %+v\nresumed: %+v", ref.Hist, resumed.Hist)
			}
			if len(ref.Model) != len(resumed.Model) {
				t.Fatalf("model tensor count %d vs %d", len(ref.Model), len(resumed.Model))
			}
			for i := range ref.Model {
				if !ref.Model[i].Equal(resumed.Model[i]) {
					t.Fatalf("resumed global model diverged at tensor %d", i)
				}
			}
			if len(ref.StratState) != len(resumed.StratState) {
				t.Fatalf("strategy state count %d vs %d", len(ref.StratState), len(resumed.StratState))
			}
			for i := range ref.StratState {
				if !ref.StratState[i].Equal(resumed.StratState[i]) {
					t.Fatalf("resumed server-optimizer state diverged at tensor %d", i)
				}
			}
		})
	}
}

// TestServerStrategyWarmStartRefusesEditedStrategy: a checkpoint written
// under one strategy must not warm-start a server configured with another.
func TestServerStrategyWarmStartRefusesEditedStrategy(t *testing.T) {
	env, err := experiments.NewEnv(experiments.ScaleFast, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	args := []string{"-clients", "2", "-rounds", "2", "-epochs", "1", "-seed", "1",
		"-strategy", "fedadam:lr=0.05", "-ckpt-dir", dir}
	if err := runFederation(t, env, args, 2, 0); err != nil {
		t.Fatalf("federation: %v", err)
	}

	for _, edited := range []string{"fedadam:lr=0.1", "fedavg"} {
		cfg, err := parseFlags([]string{"-clients", "2", "-rounds", "2", "-epochs", "1", "-seed", "1",
			"-strategy", edited, "-ckpt-dir", dir})
		if err != nil {
			t.Fatal(err)
		}
		global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
		if err != nil {
			t.Fatal(err)
		}
		var hist core.History
		var secs float64
		if _, _, err := restoreFederation(cfg, global, &hist, &secs, sched.NewTracker()); err == nil {
			t.Fatalf("warm-start under edited strategy %q accepted", edited)
		}
	}
}

// intersectGroups mirrors fedclient's mask narrowing for the tier-mode test
// client: keep the groups of mask the server communicates, in mask order.
func intersectGroups(mask, have []string) []string {
	set := make(map[string]bool, len(have))
	for _, g := range have {
		set[g] = true
	}
	out := make([]string, 0, len(mask))
	for _, g := range mask {
		if set[g] {
			out = append(out, g)
		}
	}
	return out
}

// TestParseFlagsQuorumAbsolute pins the -quorum dual reading: values in
// (0, 1] stay fractional, integer values above 1 become an absolute update
// count, and an absolute quorum no round could ever meet is rejected at
// startup rather than discovered as an eternal ErrQuorum at round 1.
func TestParseFlagsQuorumAbsolute(t *testing.T) {
	cfg, err := parseFlags([]string{"-clients", "4", "-quorum", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.minUpdates != 3 || cfg.quorum != 0 {
		t.Fatalf("absolute quorum not converted: minUpdates %d, quorum %v", cfg.minUpdates, cfg.quorum)
	}
	// The absolute count enters the config tag, so a checkpoint cannot be
	// silently continued under an edited quorum mode.
	base, err := parseFlags([]string{"-clients", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.configTag() == base.configTag() {
		t.Fatal("absolute quorum does not change the config tag")
	}

	for _, tt := range []struct {
		args []string
		want string
	}{
		{[]string{"-clients", "4", "-quorum", "2.5"}, "integers"},
		{[]string{"-clients", "2", "-quorum", "3"}, "no round could ever succeed"},
		{[]string{"-clients", "8", "-cohort", "2", "-quorum", "3"}, "no round could ever succeed"},
	} {
		if _, err := parseFlags(tt.args); err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Fatalf("args %v: err %v, want mention of %q", tt.args, err, tt.want)
		}
	}
}

// TestParseFlagsTiers pins the tier flags: -tiers alone uses the default
// distribution, -tier-dist implies -tiers, bad specs fail fast, and the
// distribution enters the config tag (the resume refusal).
func TestParseFlagsTiers(t *testing.T) {
	cfg, err := parseFlags([]string{"-tiers"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.tierDist == nil || cfg.tierDist.String() != "full:1,low:1,mid:2" {
		t.Fatalf("default tier distribution: %+v", cfg.tierDist)
	}
	implied, err := parseFlags([]string{"-tier-dist", "low:1,full:1"})
	if err != nil {
		t.Fatal(err)
	}
	if !implied.tiers || implied.tierSpec() != "full:1,low:1" {
		t.Fatalf("-tier-dist did not imply tiers: %+v", implied)
	}
	base, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.tierDist != nil || base.tierSpec() != "" {
		t.Fatalf("tiers must default off: %+v", base)
	}
	if cfg.configTag() == base.configTag() || cfg.configTag() == implied.configTag() {
		t.Fatal("tier distributions do not separate config tags")
	}
	for _, bad := range []string{"low:0", "quantum:1", "low:-1", ","} {
		if _, err := parseFlags([]string{"-tier-dist", bad}); err == nil {
			t.Fatalf("tier distribution %q accepted", bad)
		}
	}
}

// TestServerTieredTCPEndToEnd runs a heterogeneous federation over real TCP:
// a low-tier and a full-tier client train under their masks, the server
// aggregates per layer with the tier scheduling policy available, and the
// checkpoint records the tier spec — which then refuses warm-starts under an
// edited or removed distribution.
func TestServerTieredTCPEndToEnd(t *testing.T) {
	const rounds = 2
	env, err := experiments.NewEnv(experiments.ScaleFast, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	args := []string{"-clients", "2", "-rounds", "2", "-epochs", "1", "-seed", "1",
		"-tier-dist", "low:1,full:1", "-ckpt-dir", dir}
	if err := runFederation(t, env, args, 2, 0); err != nil {
		t.Fatalf("tiered federation: %v", err)
	}
	snap, err := core.LoadLatestRunState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != rounds || len(snap.Hist.Records) != rounds {
		t.Fatalf("checkpoint at round %d with %d records", snap.Round, len(snap.Hist.Records))
	}
	if snap.TierSpec != "full:1,low:1" {
		t.Fatalf("checkpoint tier spec %q, want \"full:1,low:1\"", snap.TierSpec)
	}
	if snap.Hist.FinalAccuracy <= 0 {
		t.Fatalf("federation produced no accuracy: %+v", snap.Hist)
	}

	// Warm-start refusal: an edited or dropped tier distribution must not
	// silently continue this checkpoint.
	for _, edited := range [][]string{
		{"-tier-dist", "full:1"},
		{"-tier-dist", "low:1,full:2"},
		nil,
	} {
		cfg, err := parseFlags(append([]string{"-clients", "2", "-rounds", "4", "-epochs", "1",
			"-seed", "1", "-ckpt-dir", dir}, edited...))
		if err != nil {
			t.Fatal(err)
		}
		global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
		if err != nil {
			t.Fatal(err)
		}
		var hist core.History
		var secs float64
		if _, _, err := restoreFederation(cfg, global, &hist, &secs, sched.NewTracker()); err == nil {
			t.Fatalf("warm-start under edited tier distribution %v accepted", edited)
		}
	}
}

// TestParseFlagsAsyncAndRelays pins the hierarchical and buffered-async flag
// surface: the accepted shapes, the mutual exclusions (each with an
// actionable message), and the config-tag separation that keeps checkpoints
// from crossing the flat/relay or sync/async boundary.
func TestParseFlagsAsyncAndRelays(t *testing.T) {
	async, err := parseFlags([]string{"-clients", "4", "-buffer", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if async.buffer != 2 || async.weigher == nil || async.weigher.Name() != "invsqrt" {
		t.Fatalf("async defaults: buffer %d, weigher %+v", async.buffer, async.weigher)
	}
	if async.maxStaleness != -1 {
		t.Fatalf("max staleness default %d, want -1 (keep all)", async.maxStaleness)
	}
	identity, err := parseFlags([]string{"-clients", "4", "-buffer", "2", "-staleness", "identity"})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := parseFlags([]string{"-clients", "4", "-buffer", "2", "-max-staleness", "3"})
	if err != nil {
		t.Fatal(err)
	}
	relay, err := parseFlags([]string{"-clients", "4", "-relays", "2"})
	if err != nil {
		t.Fatal(err)
	}
	base, err := parseFlags([]string{"-clients", "4"})
	if err != nil {
		t.Fatal(err)
	}
	tags := map[string]uint64{
		"base":     base.configTag(),
		"async":    async.configTag(),
		"identity": identity.configTag(),
		"capped":   capped.configTag(),
		"relay":    relay.configTag(),
	}
	seen := make(map[uint64]string, len(tags))
	for name, tag := range tags {
		if prev, dup := seen[tag]; dup {
			t.Fatalf("configs %q and %q share a config tag", prev, name)
		}
		seen[tag] = name
	}

	for _, tt := range []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"negative buffer", []string{"-buffer", "-1"}, "-buffer"},
		{"negative relays", []string{"-relays", "-1"}, "-relays"},
		{"buffer with relays", []string{"-clients", "4", "-relays", "2", "-buffer", "2"}, "mutually exclusive"},
		{"buffer beyond clients", []string{"-clients", "2", "-buffer", "3"}, "could never fill"},
		{"buffer with cohort", []string{"-clients", "4", "-buffer", "2", "-cohort", "2"}, "drop -cohort or -buffer"},
		{"buffer with tiers", []string{"-clients", "4", "-buffer", "2", "-tiers"}, "-tiers"},
		{"buffer with absolute quorum", []string{"-clients", "4", "-buffer", "2", "-quorum", "3"}, "mutually exclusive"},
		{"buffer with fractional quorum", []string{"-clients", "4", "-buffer", "2", "-quorum", "0.5"}, "drop -quorum or -buffer"},
		{"max-staleness without buffer", []string{"-max-staleness", "2"}, "needs -buffer"},
		{"staleness without buffer", []string{"-staleness", "identity"}, "needs -buffer"},
		{"unknown staleness", []string{"-clients", "4", "-buffer", "2", "-staleness", "bogus"}, "-staleness"},
		{"relays beyond clients", []string{"-clients", "2", "-relays", "5"}, "-relays"},
		{"cohort beyond relays", []string{"-clients", "8", "-relays", "2", "-cohort", "3"}, "-cohort"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			_, err := parseFlags(tt.args)
			if err == nil {
				t.Fatalf("args %v parsed without error", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestServerAsyncTCPFullBufferMatchesSync is the async equivalence gate: a
// buffered run with -buffer equal to the federation size and the identity
// staleness weigher must reproduce the synchronous server byte for byte —
// identical History and identical final global model. The buffered engine is
// the synchronous round loop plus a lambda multiplication by exactly 1.0,
// which is a float no-op; any divergence is an arithmetic leak in the async
// path.
func TestServerAsyncTCPFullBufferMatchesSync(t *testing.T) {
	const numClients = 2
	env, err := experiments.NewEnv(experiments.ScaleFast, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source); err != nil {
		t.Fatal(err)
	}
	base := []string{"-clients", "2", "-rounds", "3", "-epochs", "1", "-seed", "1"}

	refDir := t.TempDir()
	syncArgs := append(append([]string{}, base...), "-ckpt-dir", refDir)
	if err := runFederation(t, env, syncArgs, numClients, 0); err != nil {
		t.Fatalf("sync federation: %v", err)
	}
	asyncDir := t.TempDir()
	asyncArgs := append(append([]string{}, base...),
		"-buffer", "2", "-staleness", "identity", "-ckpt-dir", asyncDir)
	if err := runFederation(t, env, asyncArgs, numClients, 0); err != nil {
		t.Fatalf("async federation: %v", err)
	}

	ref, err := core.LoadLatestRunState(refDir)
	if err != nil {
		t.Fatal(err)
	}
	asy, err := core.LoadLatestRunState(asyncDir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Hist, asy.Hist) {
		t.Fatalf("async history diverged from sync:\nsync:  %+v\nasync: %+v", ref.Hist, asy.Hist)
	}
	if len(ref.Model) != len(asy.Model) {
		t.Fatalf("model tensor count %d vs %d", len(ref.Model), len(asy.Model))
	}
	for i := range ref.Model {
		if !ref.Model[i].Equal(asy.Model[i]) {
			t.Fatalf("async global model diverged from sync at tensor %d", i)
		}
	}
	// The async checkpoint carries the engine state; the sync one must not.
	if ref.Async != nil {
		t.Fatalf("sync checkpoint grew an async section: %+v", ref.Async)
	}
	if asy.Async == nil || asy.Async.Version != 3 || len(asy.Async.Buffer) != 0 {
		t.Fatalf("async checkpoint state: %+v", asy.Async)
	}
}

// startRegion launches one region of a hierarchical federation over real
// TCP: a relay (the in-process twin of cmd/fedrelay) plus its single leaf
// client. The returned stop severs the relay's root connection and leaf
// listener, simulating a relay-process crash.
func startRegion(t *testing.T, env *experiments.Env, rootAddr string, relayID, numClients, rounds int, seed int64) (stop func(), relayDone, leafDone chan error) {
	t.Helper()
	leafL, err := comm.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rootConn, err := comm.DialTCPRetry(rootAddr, 10*time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	relayDone = make(chan error, 1)
	leafDone = make(chan error, 1)
	go func() {
		relayDone <- relay.Run(rootConn, leafL, relay.Config{
			RelayID: relayID, Leaves: 1, Rounds: rounds,
			Engine: comm.EngineConfig{Quorum: 1},
		})
	}()
	go func() {
		leafDone <- testClient(t, env, leafL.Addr(), relayID, numClients, seed, 0, nil)
	}()
	return func() { _ = rootConn.Close(); _ = leafL.Close() }, relayDone, leafDone
}

// TestServerHierarchicalTCPCrashRejoin is the hierarchy's end-to-end
// acceptance: a root fedserver plus two relay regions train over real TCP;
// one relay crashes mid-run, the root finishes the affected rounds on the
// surviving region (-quorum 0.5), the restarted relay re-registers through
// the background admitter and participates again by the final round. The
// checkpoint then refuses a flat warm-start.
func TestServerHierarchicalTCPCrashRejoin(t *testing.T) {
	const (
		numClients = 2 // total leaves, one per region
		relays     = 2
		rounds     = 8 // enough runway for crash, degraded rounds, and rejoin
		seed       = int64(1)
	)
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rootL, err := comm.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootL.Close()
	// Rounds must dwarf the region-restart latency (rebuild the leaf's data
	// partition plus two handshakes, ~100ms) or the federation finishes
	// before the crashed region can rejoin: 10 local epochs stretch each
	// round to a multiple of that, leaving the rejoin several rounds of
	// headroom.
	cfg, err := parseFlags([]string{"-clients", "2", "-relays", "2", "-rounds", "8",
		"-epochs", "10", "-seed", "1", "-quorum", "0.5", "-ckpt-dir", dir})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(cfg, rootL) }()

	_, relay0Done, leaf0Done := startRegion(t, env, rootL.Addr(), 0, numClients, rounds, seed)
	stop1, relay1Done, leaf1Done := startRegion(t, env, rootL.Addr(), 1, numClients, rounds, seed)

	// Let at least one full round land on disk, then crash region 1.
	waitDeadline := time.Now().Add(2 * time.Minute)
	for {
		if snap, err := core.LoadLatestRunState(dir); err == nil && snap.Round >= 1 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("no checkpoint appeared within 2 minutes")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop1()
	if err := <-relay1Done; err == nil {
		t.Fatal("relay 1 survived losing its root connection")
	}
	<-leaf1Done // the relay shut its region down; error class irrelevant

	// Restart the region: same relay ID, fresh connections, fresh leaf. It
	// re-registers through the admitter and rejoins at a round boundary.
	_, relay1Redone, leaf1Redone := startRegion(t, env, rootL.Addr(), 1, numClients, rounds, seed)

	if err := <-serveErr; err != nil {
		t.Fatalf("root failed: %v", err)
	}
	for _, done := range []chan error{relay0Done, relay1Redone} {
		if err := <-done; err != nil {
			t.Fatalf("relay exited with %v", err)
		}
	}
	for _, done := range []chan error{leaf0Done, leaf1Redone} {
		if err := <-done; err != nil {
			t.Fatalf("leaf exited with %v", err)
		}
	}

	final, err := core.LoadLatestRunState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final.Round != rounds || len(final.Hist.Records) != rounds {
		t.Fatalf("final checkpoint at round %d with %d records", final.Round, len(final.Hist.Records))
	}
	degraded := 0
	for _, rec := range final.Hist.Records {
		if rec.Participants < 1 {
			t.Fatalf("round %d completed with %d regions", rec.Round, rec.Participants)
		}
		if rec.Participants < relays {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no round ran degraded; the relay crash never bit")
	}
	if last := final.Hist.Records[rounds-1]; last.Participants != relays {
		t.Fatalf("final round saw %d regions; the crashed relay never rejoined", last.Participants)
	}
	if final.Hist.FinalAccuracy <= 0 {
		t.Fatalf("federation produced no accuracy: %+v", final.Hist)
	}

	// A relay checkpoint must not warm-start a flat server (and vice versa).
	flat, err := parseFlags([]string{"-clients", "2", "-rounds", "8", "-epochs", "10",
		"-seed", "1", "-quorum", "0.5", "-ckpt-dir", dir})
	if err != nil {
		t.Fatal(err)
	}
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		t.Fatal(err)
	}
	var hist core.History
	var secs float64
	if _, _, err := restoreFederation(flat, global, &hist, &secs, sched.NewTracker()); err == nil {
		t.Fatal("flat server warm-started a hierarchical checkpoint")
	}
}

// TestServerAsyncWarmStartMidBuffer covers the async checkpoint round trip
// under the hardest shape: a checkpoint whose buffer holds an update that
// arrived but was never aggregated. The restarted server folds the restored
// update — staleness re-measured against the restored version — before any
// live arrival, finishes the remaining aggregations, and leaves a clean
// final state.
func TestServerAsyncWarmStartMidBuffer(t *testing.T) {
	const (
		numClients = 2
		rounds     = 4
		dieAfter   = 2
		seed       = int64(1)
	)
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	args := []string{"-clients", "2", "-rounds", "4", "-epochs", "1", "-seed", "1",
		"-buffer", "2", "-ckpt-dir", dir}

	// Phase 1: every client vanishes after aggregation 2; the server dies
	// with aggregations 1–2 checkpointed.
	if err := runFederation(t, env, args, numClients, dieAfter); err == nil {
		t.Fatal("async server survived losing every client")
	}
	snap, err := core.LoadLatestRunState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Async == nil || snap.Async.Version != dieAfter {
		t.Fatalf("crashed checkpoint async state: %+v", snap.Async)
	}

	// Graft a mid-buffer update into the checkpoint: a version-1 state that
	// had arrived but was not yet aggregated when the snapshot was taken
	// (the live engine checkpoints at aggregation boundaries, so a non-empty
	// buffer only occurs through the restore path — construct it directly).
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		t.Fatal(err)
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		t.Fatal(err)
	}
	stateTs, err := global.GroupStateTensors(global.TrainableGroupNames())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := comm.EncodeTensors(stateTs)
	if err != nil {
		t.Fatal(err)
	}
	snap.Async.Buffer = []core.BufferedUpdate{{
		ClientID: 0, Round: dieAfter, Version: dieAfter - 1, State: blob,
		NumSelected: 10, TrainSeconds: 0.5, TrainLoss: 1.0, MeanEntropy: math.NaN(),
	}}
	if err := core.SaveRunState(ckpt.Path(dir, snap.Round), snap); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a restarted server restores version 2 plus the buffered
	// update and finishes aggregations 3–4 with fresh clients.
	if err := runFederation(t, env, args, numClients, 0); err != nil {
		t.Fatalf("restarted async server failed: %v", err)
	}
	final, err := core.LoadLatestRunState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final.Round != rounds || len(final.Hist.Records) != rounds {
		t.Fatalf("final checkpoint at aggregation %d with %d records", final.Round, len(final.Hist.Records))
	}
	// Aggregation 3 folded the restored update (staleness 1) plus one live
	// arrival: exactly -buffer participants, none discarded.
	resumed := final.Hist.Records[dieAfter]
	if resumed.Round != dieAfter+1 || resumed.Participants != 2 || resumed.CohortSize != 2 {
		t.Fatalf("resumed aggregation record: %+v", resumed)
	}
	if final.Async == nil || final.Async.Version != rounds || len(final.Async.Buffer) != 0 {
		t.Fatalf("final async state: %+v", final.Async)
	}
}
