package main

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/device"
	"fedfteds/internal/experiments"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/strategy"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.numClients != 2 || cfg.rounds != 10 || cfg.quorum != 1 || cfg.roundDeadline != 0 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.cohort != 0 || cfg.scheduler != nil {
		t.Fatalf("scheduling must default off: %+v", cfg)
	}
	if cfg.schedName != "uniform" {
		t.Fatalf("default policy %q", cfg.schedName)
	}
	if cfg.strat == nil || !strategy.IsDefault(cfg.strat) {
		t.Fatalf("strategy must default to fedavg: %+v", cfg.strat)
	}
	if cfg.taggedStrategy() != nil {
		t.Fatal("default strategy must stay out of the checkpoint tag")
	}
}

// TestParseFlagsStrategy pins the -strategy flag: shared vocabulary with
// fedsim, inline parameters, fail-fast rejection of bad specs.
func TestParseFlagsStrategy(t *testing.T) {
	cfg, err := parseFlags([]string{"-strategy", "fedadam:lr=0.05,beta1=0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.strat.Name() != "fedadam" {
		t.Fatalf("strategy name %q", cfg.strat.Name())
	}
	if cfg.taggedStrategy() == nil {
		t.Fatal("non-default strategy missing from the checkpoint tag")
	}
	// An edited strategy must change the config tag (the resume refusal).
	base, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.configTag() == base.configTag() {
		t.Fatal("fedadam and fedavg share a config tag")
	}

	for _, name := range []string{"fedavg", "fedprox", "fedavgm", "fedadam", "fedyogi", "fedyogi:lr=0.2"} {
		if _, err := parseFlags([]string{"-strategy", name}); err != nil {
			t.Fatalf("strategy %q rejected: %v", name, err)
		}
	}
	for _, bad := range []string{"sgd", "fedadam:lr=0", "fedadam:gamma=2", "fedprox:mu=-1"} {
		if _, err := parseFlags([]string{"-strategy", bad}); err == nil {
			t.Fatalf("strategy %q accepted", bad)
		}
	}
}

func TestParseFlagsSchedulingOn(t *testing.T) {
	cfg, err := parseFlags([]string{"-clients", "8", "-cohort", "3", "-sched", "avail:entropy",
		"-round-deadline", "90s", "-quorum", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.cohort != 3 || cfg.scheduler == nil || cfg.scheduler.Name() != "avail:entropy" {
		t.Fatalf("scheduling config: %+v", cfg)
	}
	if cfg.roundDeadline != 90*time.Second || cfg.quorum != 0.5 {
		t.Fatalf("engine flags: %+v", cfg)
	}
}

func TestParseFlagsFailFast(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"zero quorum", []string{"-quorum", "0"}, "-quorum"},
		{"negative quorum", []string{"-quorum", "-0.1"}, "-quorum"},
		{"quorum above one", []string{"-quorum", "1.5"}, "-quorum"},
		{"negative deadline", []string{"-round-deadline", "-10s"}, "-round-deadline"},
		{"zero clients", []string{"-clients", "0"}, "-clients"},
		{"zero fraction", []string{"-fraction", "0"}, "-fraction"},
		{"fraction above one", []string{"-fraction", "1.5"}, "-fraction"},
		{"zero epochs", []string{"-epochs", "0"}, "-epochs"},
		{"zero rounds", []string{"-rounds", "0"}, "-rounds"},
		{"negative cohort", []string{"-cohort", "-1"}, "-cohort"},
		{"cohort beyond pool", []string{"-clients", "3", "-cohort", "4"}, "-cohort"},
		{"unknown policy", []string{"-sched", "fifo"}, "unknown policy"},
		{"unknown policy with scheduling off", []string{"-cohort", "0", "-sched", "nope"}, "unknown policy"},
		{"unknown inner policy", []string{"-cohort", "2", "-clients", "4", "-sched", "avail:fifo"}, "unknown policy"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := parseFlags(tt.args)
			if err == nil {
				t.Fatalf("args %v parsed without error", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestParseFlagsSchedNamesMatchFedsim pins the shared policy vocabulary:
// every name fedserver accepts must parse, so the fedsim and fedserver
// -sched flags stay interchangeable.
func TestParseFlagsSchedNamesMatchFedsim(t *testing.T) {
	for _, name := range []string{"uniform", "size", "entropy", "powerd", "tier", "avail:uniform", "avail:powerd", "avail:tier"} {
		if _, err := parseFlags([]string{"-clients", "4", "-cohort", "2", "-sched", name}); err != nil {
			t.Fatalf("policy %q rejected: %v", name, err)
		}
	}
}

// TestParseFlagsCheckpointDir covers the new -ckpt-dir flag: accepted and
// created when usable, rejected fail-fast when not.
func TestParseFlagsCheckpointDir(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	cfg, err := parseFlags([]string{"-ckpt-dir", dir})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ckptDir != dir {
		t.Fatalf("ckptDir %q", cfg.ckptDir)
	}
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		t.Fatalf("checkpoint dir not created: %v", err)
	}

	// A path below an existing file cannot be created: fail before serving.
	occupied := t.TempDir() + "/occupied"
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFlags([]string{"-ckpt-dir", occupied + "/sub"}); err == nil {
		t.Fatal("expected error for uncreatable -ckpt-dir")
	}
}

// testClient mirrors fedclient's loop for in-process integration tests: it
// joins the server, answers rounds with real FedFT-EDS local updates, and —
// when dieAfter > 0 — severs its connection after completing that round,
// simulating a client-side crash. A non-nil dist puts the client in tier
// mode, mirroring fedclient's -tiers path: tier derived from the shared
// seed, partial training under the tier's mask, masked state on the wire.
func testClient(t *testing.T, env *experiments.Env, addr string, id, numClients int, seed int64, dieAfter int, dist *device.Distribution) error {
	t.Helper()
	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 31337)
	if err != nil {
		return err
	}
	me := fed.Clients[id]
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return err
	}
	var tier string
	var tierMask []string
	if dist != nil {
		tier = dist.Assign(numClients, seed)[id]
		prof, err := device.Lookup(tier)
		if err != nil {
			return err
		}
		perGroup, _ := global.GroupFLOPs()
		if tierMask, err = prof.MaskFor(models.GroupNames(), perGroup); err != nil {
			return err
		}
	}
	conn, err := comm.DialTCP(addr, 10*time.Second)
	if err != nil {
		return err
	}
	sess, welcome, err := comm.JoinTiered(conn, id, me.Data.Len(), tier)
	if err != nil {
		return err
	}
	for {
		rs, ok, err := sess.NextRound()
		if err != nil {
			return err
		}
		if !ok {
			return sess.Close()
		}
		stateTs, err := comm.DecodeTensors(rs.State)
		if err != nil {
			return err
		}
		dst, err := global.GroupStateTensors(rs.Groups)
		if err != nil {
			return err
		}
		for i := range dst {
			if err := dst[i].CopyFrom(stateTs[i]); err != nil {
				return err
			}
		}
		var mask []string
		if dist != nil {
			mask = intersectGroups(tierMask, rs.Groups)
		}
		localCfg, err := core.NewLocalConfig(core.Config{
			Rounds:         welcome.Rounds,
			LocalEpochs:    rs.LocalEpochs,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   models.FinetuneModerate,
			TrainGroups:    mask,
			Selector:       selection.Entropy{Temperature: 0.1},
			SelectFraction: rs.SelectFraction,
			Seed:           seed,
		})
		if err != nil {
			return err
		}
		out, err := core.LocalUpdate(localCfg, global, me, rs.Round)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(out.State)
		if err != nil {
			return err
		}
		if err := sess.SendUpdate(comm.ClientUpdate{
			ClientID:     id,
			Round:        rs.Round,
			State:        blob,
			Groups:       mask,
			NumSelected:  out.NumSelected,
			TrainSeconds: out.Cost.Total(),
			TrainLoss:    out.TrainLoss,
			MeanEntropy:  out.MeanEntropy,
		}); err != nil {
			return err
		}
		if dieAfter > 0 && rs.Round >= dieAfter {
			return sess.Close() // crash: vanish without a goodbye
		}
	}
}

// TestServerCrashResume is the acceptance demo as a test: a fedserver killed
// mid-federation (here: it errors out when every client vanishes after round
// 2) and restarted with the same -ckpt-dir completes the remaining rounds on
// top of the checkpointed progress instead of starting over.
func TestServerCrashResume(t *testing.T) {
	const (
		numClients = 2
		rounds     = 4
		dieAfter   = 2
		seed       = int64(1)
	)
	ckptDir := t.TempDir()
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		t.Fatal(err)
	}

	phase := func(dieAfterRound int) error {
		l, err := comm.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		cfg, err := parseFlags([]string{
			"-clients", "2", "-rounds", "4", "-epochs", "1", "-seed", "1",
			"-ckpt-dir", ckptDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- serve(cfg, l) }()
		clientErr := make(chan error, numClients)
		for id := 0; id < numClients; id++ {
			go func(id int) {
				clientErr <- testClient(t, env, l.Addr(), id, numClients, seed, dieAfterRound, nil)
			}(id)
		}
		for i := 0; i < numClients; i++ {
			if err := <-clientErr; err != nil && dieAfterRound == 0 {
				t.Fatalf("client: %v", err)
			}
		}
		return <-serveErr
	}

	// Phase 1: every client vanishes after round 2; the federation dies
	// mid-flight with rounds 1–2 checkpointed.
	if err := phase(dieAfter); err == nil {
		t.Fatal("server survived losing every client; expected a mid-federation failure")
	}
	crashed, err := core.LoadLatestRunState(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Round != dieAfter {
		t.Fatalf("crash left checkpoint at round %d, want %d", crashed.Round, dieAfter)
	}

	// Phase 2: a restarted server with the same -ckpt-dir and fresh clients
	// finishes the remaining rounds.
	if err := phase(0); err != nil {
		t.Fatalf("restarted server failed: %v", err)
	}
	final, err := core.LoadLatestRunState(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if final.Round != rounds {
		t.Fatalf("final checkpoint at round %d, want %d", final.Round, rounds)
	}
	if len(final.Hist.Records) != rounds {
		t.Fatalf("final history has %d records, want %d", len(final.Hist.Records), rounds)
	}
	// The restart continued the crashed run: the first rounds' records are
	// the checkpointed ones, and the post-restart rounds follow them.
	if !reflect.DeepEqual(final.Hist.Records[:dieAfter], crashed.Hist.Records) {
		t.Fatalf("restart rewrote pre-crash history:\ncrashed: %+v\nfinal:   %+v",
			crashed.Hist.Records, final.Hist.Records[:dieAfter])
	}
	if final.Hist.Records[dieAfter].Round != dieAfter+1 {
		t.Fatalf("restart did not resume at round %d: %+v", dieAfter+1, final.Hist.Records[dieAfter])
	}
}

// runFederation serves one TCP federation with the given extra server flags
// and numClients in-process clients that (when dieAfter > 0) vanish after
// that round. It returns serve's error.
func runFederation(t *testing.T, env *experiments.Env, extraArgs []string, numClients, dieAfter int) error {
	t.Helper()
	l, err := comm.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cfg, err := parseFlags(extraArgs)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(cfg, l) }()
	clientErr := make(chan error, numClients)
	for id := 0; id < numClients; id++ {
		go func(id int) {
			clientErr <- testClient(t, env, l.Addr(), id, numClients, cfg.seed, dieAfter, cfg.tierDist)
		}(id)
	}
	for i := 0; i < numClients; i++ {
		if err := <-clientErr; err != nil && dieAfter == 0 {
			t.Fatalf("client: %v", err)
		}
	}
	return <-serveErr
}

// TestServerStrategiesTCPResumeBitIdentical is the distributed half of the
// strategy acceptance: FedAvgM, FedAdam and FedYogi each run end-to-end
// over real TCP, and a server crashed mid-federation and restarted from its
// checkpoints finishes with exactly the reference run's history, global
// model and server-optimizer state — the moments survive the restart.
func TestServerStrategiesTCPResumeBitIdentical(t *testing.T) {
	const (
		numClients = 2
		rounds     = 4
		dieAfter   = 2
		seed       = int64(1)
	)
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the env's pretrained-model cache once so per-strategy timings
	// measure federation work, not repeated pretraining.
	if _, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source); err != nil {
		t.Fatal(err)
	}

	for _, spec := range []string{"fedavgm", "fedadam:lr=0.05", "fedyogi:lr=0.05"} {
		t.Run(spec, func(t *testing.T) {
			args := func(dir string) []string {
				return []string{"-clients", "2", "-rounds", "4", "-epochs", "1", "-seed", "1",
					"-strategy", spec, "-ckpt-dir", dir}
			}

			// Reference: an uninterrupted federation.
			refDir := t.TempDir()
			if err := runFederation(t, env, args(refDir), numClients, 0); err != nil {
				t.Fatalf("reference federation: %v", err)
			}
			ref, err := core.LoadLatestRunState(refDir)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Round != rounds || len(ref.Hist.Records) != rounds {
				t.Fatalf("reference checkpoint at round %d with %d records", ref.Round, len(ref.Hist.Records))
			}
			if ref.StratName == "" || len(ref.StratState) == 0 {
				t.Fatalf("reference checkpoint lost the strategy section: %q, %d tensors",
					ref.StratName, len(ref.StratState))
			}
			if ref.Hist.FinalAccuracy <= 0 {
				t.Fatalf("federation produced no accuracy: %+v", ref.Hist)
			}

			// Crash after round 2, then restart from the same directory.
			crashDir := t.TempDir()
			if err := runFederation(t, env, args(crashDir), numClients, dieAfter); err == nil {
				t.Fatal("server survived losing every client")
			}
			if err := runFederation(t, env, args(crashDir), numClients, 0); err != nil {
				t.Fatalf("restarted federation: %v", err)
			}
			resumed, err := core.LoadLatestRunState(crashDir)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(ref.Hist, resumed.Hist) {
				t.Fatalf("resumed history diverged:\nref:     %+v\nresumed: %+v", ref.Hist, resumed.Hist)
			}
			if len(ref.Model) != len(resumed.Model) {
				t.Fatalf("model tensor count %d vs %d", len(ref.Model), len(resumed.Model))
			}
			for i := range ref.Model {
				if !ref.Model[i].Equal(resumed.Model[i]) {
					t.Fatalf("resumed global model diverged at tensor %d", i)
				}
			}
			if len(ref.StratState) != len(resumed.StratState) {
				t.Fatalf("strategy state count %d vs %d", len(ref.StratState), len(resumed.StratState))
			}
			for i := range ref.StratState {
				if !ref.StratState[i].Equal(resumed.StratState[i]) {
					t.Fatalf("resumed server-optimizer state diverged at tensor %d", i)
				}
			}
		})
	}
}

// TestServerStrategyWarmStartRefusesEditedStrategy: a checkpoint written
// under one strategy must not warm-start a server configured with another.
func TestServerStrategyWarmStartRefusesEditedStrategy(t *testing.T) {
	env, err := experiments.NewEnv(experiments.ScaleFast, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	args := []string{"-clients", "2", "-rounds", "2", "-epochs", "1", "-seed", "1",
		"-strategy", "fedadam:lr=0.05", "-ckpt-dir", dir}
	if err := runFederation(t, env, args, 2, 0); err != nil {
		t.Fatalf("federation: %v", err)
	}

	for _, edited := range []string{"fedadam:lr=0.1", "fedavg"} {
		cfg, err := parseFlags([]string{"-clients", "2", "-rounds", "2", "-epochs", "1", "-seed", "1",
			"-strategy", edited, "-ckpt-dir", dir})
		if err != nil {
			t.Fatal(err)
		}
		global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
		if err != nil {
			t.Fatal(err)
		}
		var hist core.History
		var secs float64
		if _, err := restoreFederation(cfg, global, &hist, &secs, sched.NewTracker()); err == nil {
			t.Fatalf("warm-start under edited strategy %q accepted", edited)
		}
	}
}

// intersectGroups mirrors fedclient's mask narrowing for the tier-mode test
// client: keep the groups of mask the server communicates, in mask order.
func intersectGroups(mask, have []string) []string {
	set := make(map[string]bool, len(have))
	for _, g := range have {
		set[g] = true
	}
	out := make([]string, 0, len(mask))
	for _, g := range mask {
		if set[g] {
			out = append(out, g)
		}
	}
	return out
}

// TestParseFlagsQuorumAbsolute pins the -quorum dual reading: values in
// (0, 1] stay fractional, integer values above 1 become an absolute update
// count, and an absolute quorum no round could ever meet is rejected at
// startup rather than discovered as an eternal ErrQuorum at round 1.
func TestParseFlagsQuorumAbsolute(t *testing.T) {
	cfg, err := parseFlags([]string{"-clients", "4", "-quorum", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.minUpdates != 3 || cfg.quorum != 0 {
		t.Fatalf("absolute quorum not converted: minUpdates %d, quorum %v", cfg.minUpdates, cfg.quorum)
	}
	// The absolute count enters the config tag, so a checkpoint cannot be
	// silently continued under an edited quorum mode.
	base, err := parseFlags([]string{"-clients", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.configTag() == base.configTag() {
		t.Fatal("absolute quorum does not change the config tag")
	}

	for _, tt := range []struct {
		args []string
		want string
	}{
		{[]string{"-clients", "4", "-quorum", "2.5"}, "integers"},
		{[]string{"-clients", "2", "-quorum", "3"}, "no round could ever succeed"},
		{[]string{"-clients", "8", "-cohort", "2", "-quorum", "3"}, "no round could ever succeed"},
	} {
		if _, err := parseFlags(tt.args); err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Fatalf("args %v: err %v, want mention of %q", tt.args, err, tt.want)
		}
	}
}

// TestParseFlagsTiers pins the tier flags: -tiers alone uses the default
// distribution, -tier-dist implies -tiers, bad specs fail fast, and the
// distribution enters the config tag (the resume refusal).
func TestParseFlagsTiers(t *testing.T) {
	cfg, err := parseFlags([]string{"-tiers"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.tierDist == nil || cfg.tierDist.String() != "full:1,low:1,mid:2" {
		t.Fatalf("default tier distribution: %+v", cfg.tierDist)
	}
	implied, err := parseFlags([]string{"-tier-dist", "low:1,full:1"})
	if err != nil {
		t.Fatal(err)
	}
	if !implied.tiers || implied.tierSpec() != "full:1,low:1" {
		t.Fatalf("-tier-dist did not imply tiers: %+v", implied)
	}
	base, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.tierDist != nil || base.tierSpec() != "" {
		t.Fatalf("tiers must default off: %+v", base)
	}
	if cfg.configTag() == base.configTag() || cfg.configTag() == implied.configTag() {
		t.Fatal("tier distributions do not separate config tags")
	}
	for _, bad := range []string{"low:0", "quantum:1", "low:-1", ","} {
		if _, err := parseFlags([]string{"-tier-dist", bad}); err == nil {
			t.Fatalf("tier distribution %q accepted", bad)
		}
	}
}

// TestServerTieredTCPEndToEnd runs a heterogeneous federation over real TCP:
// a low-tier and a full-tier client train under their masks, the server
// aggregates per layer with the tier scheduling policy available, and the
// checkpoint records the tier spec — which then refuses warm-starts under an
// edited or removed distribution.
func TestServerTieredTCPEndToEnd(t *testing.T) {
	const rounds = 2
	env, err := experiments.NewEnv(experiments.ScaleFast, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	args := []string{"-clients", "2", "-rounds", "2", "-epochs", "1", "-seed", "1",
		"-tier-dist", "low:1,full:1", "-ckpt-dir", dir}
	if err := runFederation(t, env, args, 2, 0); err != nil {
		t.Fatalf("tiered federation: %v", err)
	}
	snap, err := core.LoadLatestRunState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != rounds || len(snap.Hist.Records) != rounds {
		t.Fatalf("checkpoint at round %d with %d records", snap.Round, len(snap.Hist.Records))
	}
	if snap.TierSpec != "full:1,low:1" {
		t.Fatalf("checkpoint tier spec %q, want \"full:1,low:1\"", snap.TierSpec)
	}
	if snap.Hist.FinalAccuracy <= 0 {
		t.Fatalf("federation produced no accuracy: %+v", snap.Hist)
	}

	// Warm-start refusal: an edited or dropped tier distribution must not
	// silently continue this checkpoint.
	for _, edited := range [][]string{
		{"-tier-dist", "full:1"},
		{"-tier-dist", "low:1,full:2"},
		nil,
	} {
		cfg, err := parseFlags(append([]string{"-clients", "2", "-rounds", "4", "-epochs", "1",
			"-seed", "1", "-ckpt-dir", dir}, edited...))
		if err != nil {
			t.Fatal(err)
		}
		global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
		if err != nil {
			t.Fatal(err)
		}
		var hist core.History
		var secs float64
		if _, err := restoreFederation(cfg, global, &hist, &secs, sched.NewTracker()); err == nil {
			t.Fatalf("warm-start under edited tier distribution %v accepted", edited)
		}
	}
}
