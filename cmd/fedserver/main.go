// Command fedserver runs a real distributed FedFT-EDS server over TCP: it
// waits for the expected number of fedclient processes to register, then
// drives the configured number of communication rounds through the
// fault-tolerant round engine, streaming each client's update into the
// selected-size-weighted aggregate as it arrives, and evaluates the global
// model after every round.
//
// The engine makes the federation survive real-world client behavior: a
// crashed client is dropped and the round completes as long as -quorum of
// the live clients report, and a hung client is cut off at -round-deadline
// instead of blocking the server forever (it may rejoin at the next round).
//
// Clients regenerate their local partitions deterministically from the
// shared -seed, so server and clients agree on data without moving it —
// the whole point of federated learning.
//
// Usage:
//
//	fedserver -addr 127.0.0.1:7070 -clients 4 -rounds 10 -fraction 0.5 \
//	          -round-deadline 2m -quorum 0.6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/experiments"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fedserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	numClients := fs.Int("clients", 2, "number of clients to wait for")
	rounds := fs.Int("rounds", 10, "communication rounds")
	fraction := fs.Float64("fraction", 0.5, "selection fraction P_ds")
	epochs := fs.Int("epochs", 5, "local epochs E")
	seed := fs.Int64("seed", 1, "shared federation seed")
	roundDeadline := fs.Duration("round-deadline", 0, "per-round deadline; hung clients are dropped at expiry (0 = wait forever)")
	quorum := fs.Float64("quorum", 1, "fraction of live clients whose updates a round needs to succeed, in (0, 1]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail on bad engine flags now, not after all clients have joined.
	engineCfg := comm.EngineConfig{RoundDeadline: *roundDeadline, Quorum: *quorum}
	if err := engineCfg.Validate(); err != nil {
		return err
	}

	// Build the shared world: domains, pretrained global model, test set.
	world, err := NewWorld(*seed, *numClients)
	if err != nil {
		return err
	}
	global := world.Global
	commGroups := global.TrainableGroupNames()

	l, err := comm.ListenTCP(*addr)
	if err != nil {
		return err
	}
	defer l.Close()
	log.Printf("listening on %s, waiting for %d clients", l.Addr(), *numClients)

	sess, err := comm.AcceptClients(l, *numClients, *rounds)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Shutdown("done"); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	log.Printf("federation ready: clients %v", sess.ClientIDs())

	engine, err := comm.NewRoundEngine(sess, engineCfg)
	if err != nil {
		return err
	}

	// Report rounds through the same History the in-process simulator
	// produces, so distributed and simulated runs are directly comparable.
	var hist core.History
	var cumTrainSeconds float64
	for round := 1; round <= *rounds; round++ {
		stateTs, err := global.GroupStateTensors(commGroups)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(stateTs)
		if err != nil {
			return err
		}
		// Stream each update into the weighted sum as it arrives: the
		// server holds one decoded state at a time, O(state) not O(N·state).
		agg := comm.NewStreamAggregator()
		var roundTrainSeconds, lossSum float64
		out, err := engine.RunRound(comm.RoundStart{
			Round:          round,
			State:          blob,
			Groups:         commGroups,
			SelectFraction: *fraction,
			LocalEpochs:    *epochs,
		}, func(u comm.ClientUpdate) error {
			if err := agg.Add(u); err != nil {
				return err
			}
			roundTrainSeconds += u.TrainSeconds
			lossSum += u.TrainLoss
			return nil
		})
		logFailures(out)
		if err != nil {
			return err
		}
		fused, err := agg.Finish()
		if err != nil {
			return err
		}
		// stateTs are live views of the global model's groups — copy the
		// aggregate straight back into them.
		for i := range stateTs {
			if err := stateTs[i].CopyFrom(fused[i]); err != nil {
				return err
			}
		}

		acc, err := metrics.Accuracy(global, world.Test)
		if err != nil {
			return err
		}
		cumTrainSeconds += roundTrainSeconds
		hist.Records = append(hist.Records, core.RoundRecord{
			Round:           round,
			Participants:    len(out.Reported),
			TestAccuracy:    acc,
			MeanTrainLoss:   lossSum / float64(len(out.Reported)),
			CumTrainSeconds: cumTrainSeconds,
		})
		if acc > hist.BestAccuracy {
			hist.BestAccuracy = acc
		}
		hist.FinalAccuracy = acc
		log.Printf("round %d/%d: %d/%d clients reported (%d timed out, %d dropped, %d late), test accuracy %.2f%%",
			round, *rounds, len(out.Reported), len(out.Reported)+len(out.TimedOut)+len(out.Dropped),
			len(out.TimedOut), len(out.Dropped), out.LateDiscarded, 100*acc)
	}
	hist.TotalTrainSeconds = cumTrainSeconds
	if eff, err := hist.LearningEfficiency(); err == nil {
		log.Printf("run complete: best accuracy %.2f%%, total client time %.1fs, learning efficiency %.2f %%/s",
			100*hist.BestAccuracy, hist.TotalTrainSeconds, eff)
	} else {
		log.Printf("run complete: best accuracy %.2f%%", 100*hist.BestAccuracy)
	}
	return nil
}

// logFailures reports a round's failed clients in deterministic order.
func logFailures(out comm.RoundOutcome) {
	ids := make([]int, 0, len(out.Failures))
	for id := range out.Failures {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		log.Printf("round %d: client %d: %v", out.Round, id, out.Failures[id])
	}
}

// World is the deterministic shared setup both binaries derive from -seed.
type World struct {
	// Global is the pretrained global model with the paper's moderate
	// finetune part set.
	Global *models.Model
	// Test is the held-out evaluation set.
	Test *data.Dataset
}

// NewWorld builds the shared federation world for the distributed demo:
// standard domain suite, a source-pretrained model, and the test set.
func NewWorld(seed int64, numClients int) (*World, error) {
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		return nil, err
	}
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return nil, err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return nil, err
	}
	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 31337)
	if err != nil {
		return nil, err
	}
	return &World{Global: global, Test: fed.Test}, nil
}
