// Command fedserver runs a real distributed FedFT-EDS server over TCP: it
// waits for the expected number of fedclient processes to register, then
// drives the configured number of communication rounds through the
// fault-tolerant round engine, streaming each client's update into the
// selected-size-weighted aggregate as it arrives, and evaluates the global
// model after every round.
//
// The engine makes the federation survive real-world client behavior: a
// crashed client is dropped and the round completes as long as -quorum of
// the round's clients report, and a hung client is cut off at
// -round-deadline instead of blocking the server forever (it may rejoin at
// the next round).
//
// With -cohort K the server additionally schedules: each round only K of
// the live clients are contacted (policy chosen by -sched — uniform, size,
// entropy, powerd, or avail:<inner>; the same names fedsim accepts), the
// rest idle on their open connections until a later cohort includes them.
// The entropy policy closes a feedback loop over the wire: clients report
// their mean EDS entropy with every update, and the scheduler exploits the
// most uncertain clients with ε-greedy exploration.
//
// With -strategy the server swaps the federated-optimization strategy: how
// streamed updates are weighted and how their weighted average moves the
// global model — fedavg (overwrite, the default), fedavgm (server
// momentum), fedadam or fedyogi (adaptive server optimizers), with
// parameters inline ("fedadam:lr=0.05,beta1=0.9"). Server optimizers are
// server-only: nothing changes on the wire, and unmodified fedclients
// participate in any strategy.
//
// With -tiers (optionally -tier-dist "low:1,mid:2,full:1") the federation is
// heterogeneous: every client belongs to a device-capability tier derived
// deterministically from the shared seed, trains only the layer groups its
// tier can afford, and ships only those groups' tensors (masked layers cost
// zero wire bytes). The server aggregates per layer — each group is averaged
// over exactly the clients that covered it — and the "tier" scheduling
// policy keeps cohorts proportionally balanced across tiers.
//
// -quorum accepts either a fraction of the round's clients in (0, 1] or,
// when given a value above 1, an absolute number of updates; an absolute
// quorum larger than the clients a round can contact (-cohort, or -clients)
// is rejected at startup, since no round could ever succeed.
//
// With -relays R the federation is hierarchical: R fedrelay processes join
// in place of leaf clients, each folding its own region's updates into one
// weighted delta per round, and the server composes region deltas through
// the same strategy machinery — the flat federation's weighted average is
// reproduced exactly because every region reports its weight mass. A crashed
// relay may re-register and rejoins at the next round boundary.
//
// With -codec the server negotiates a lossy uplink codec at the handshake
// (float16, int8, or topk:<fraction> sparsification with client-side error
// feedback): the Welcome advertises it, every client encodes its update
// under it, and the server decodes against the round's broadcast state
// before folding. The default identity codec advertises nothing and keeps
// every frame byte-identical to pre-codec servers. topk needs the broadcast
// reference on both sides and therefore cannot combine with -buffer (a
// buffered client may encode against a model version the server has already
// replaced).
//
// With -buffer M the server switches from synchronous rounds to buffered
// asynchronous (FedBuff-style) aggregation: clients train continuously
// against the newest model they have seen, and the server aggregates as soon
// as M version-tagged updates arrive, discounting each by the -staleness
// weigher (default invsqrt, λ(s) = 1/sqrt(1+s)) and discarding updates
// staler than -max-staleness. -rounds then counts aggregations, and
// -round-deadline bounds each aggregation's wait. -buffer equal to -clients
// with -staleness identity reproduces the synchronous server exactly.
//
// Clients regenerate their local partitions deterministically from the
// shared -seed, so server and clients agree on data without moving it —
// the whole point of federated learning.
//
// Usage:
//
//	fedserver -addr 127.0.0.1:7070 -clients 4 -rounds 10 -fraction 0.5 \
//	          -round-deadline 2m -quorum 0.6 -cohort 2 -sched entropy \
//	          -strategy fedadam:lr=0.05 -tiers -tier-dist low:1,mid:2,full:1
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"fedfteds/internal/ckpt"
	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/device"
	"fedfteds/internal/experiments"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
}

// defaultTierSpec is the tier distribution -tiers uses when -tier-dist is
// not given: a paper-style mix of constrained, moderate and full devices.
const defaultTierSpec = "low:1,mid:2,full:1"

// serverConfig is the validated flag set of one fedserver run.
type serverConfig struct {
	addr          string
	numClients    int
	rounds        int
	fraction      float64
	epochs        int
	seed          int64
	roundDeadline time.Duration
	quorum        float64
	minUpdates    int // absolute quorum (-quorum above 1); 0 in fractional mode
	cohort        int
	scheduler     sched.Scheduler // nil when -cohort is 0 (full pool)
	schedName     string
	ckptDir       string
	strat         strategy.Strategy
	stratSpec     string
	tiers         bool
	tierDistSpec  string
	tierDist      *device.Distribution // nil when untiered
	relays        int                  // hierarchical mode: regions to accept; 0 = flat
	buffer        int                  // async mode: aggregation buffer M; 0 = synchronous
	maxStaleness  int
	stalenessSpec string
	weigher       strategy.StalenessWeigher // nil outside async mode
	codecSpec     string
	codecName     string     // canonical codec spec; "" for identity (legacy frames)
	codec         comm.Codec // decode instance; nil for identity
	cpuProfile    string
	memProfile    string
}

// tierSpec is the canonical tier-distribution rendering checkpoints record
// (empty when untiered).
func (c serverConfig) tierSpec() string {
	if c.tierDist == nil {
		return ""
	}
	return c.tierDist.String()
}

// taggedStrategy returns the strategy as checkpoints see it: nil for the
// default fedavg composition (whose checkpoints stay interchangeable with
// pre-strategy servers), the configured strategy otherwise.
func (c serverConfig) taggedStrategy() strategy.Strategy {
	if strategy.IsDefault(c.strat) {
		return nil
	}
	return c.strat
}

// parseFlags parses and fail-fast validates the command line: bad -quorum,
// -round-deadline, -cohort or -sched values are rejected here, before any
// client has a chance to join a doomed federation.
func parseFlags(args []string) (serverConfig, error) {
	var cfg serverConfig
	fs := flag.NewFlagSet("fedserver", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7070", "listen address")
	fs.IntVar(&cfg.numClients, "clients", 2, "number of clients to wait for")
	fs.IntVar(&cfg.rounds, "rounds", 10, "communication rounds")
	fs.Float64Var(&cfg.fraction, "fraction", 0.5, "selection fraction P_ds")
	fs.IntVar(&cfg.epochs, "epochs", 5, "local epochs E")
	fs.Int64Var(&cfg.seed, "seed", 1, "shared federation seed")
	fs.DurationVar(&cfg.roundDeadline, "round-deadline", 0, "per-round deadline; hung clients are dropped at expiry (0 = wait forever)")
	fs.Float64Var(&cfg.quorum, "quorum", 1, "updates a round needs to succeed: a fraction of the round's clients in (0, 1], or an absolute count when above 1")
	fs.IntVar(&cfg.cohort, "cohort", 0, "clients scheduled per round, 0 = the whole federation")
	fs.StringVar(&cfg.schedName, "sched", "uniform", "cohort scheduling policy: uniform, size, entropy, powerd, tier, avail:<inner>")
	fs.StringVar(&cfg.ckptDir, "ckpt-dir", "", "snapshot the federation after every round and warm-start from this directory's latest checkpoint")
	fs.StringVar(&cfg.stratSpec, "strategy", "fedavg", "federated-optimization strategy: fedavg, fedprox, fedavgm, fedadam, fedyogi, with optional parameters (fedadam:lr=0.05,beta1=0.9)")
	fs.BoolVar(&cfg.tiers, "tiers", false, "device-tier mode: clients train and ship only the layer groups their capability tier affords, aggregated per layer")
	fs.StringVar(&cfg.tierDistSpec, "tier-dist", "", "tier distribution \"tier:weight,...\" over "+strings.Join(device.TierNames(), "/")+" (implies -tiers; default "+defaultTierSpec+")")
	fs.IntVar(&cfg.relays, "relays", 0, "hierarchical mode: this many fedrelay regions join instead of leaf clients (-clients still names the total leaf count the regions cover)")
	fs.IntVar(&cfg.buffer, "buffer", 0, "buffered-async (FedBuff) mode: aggregate as soon as this many updates arrive instead of running synchronous rounds")
	fs.IntVar(&cfg.maxStaleness, "max-staleness", -1, "async mode: discard updates staler than this many model versions (negative keeps all; needs -buffer)")
	fs.StringVar(&cfg.stalenessSpec, "staleness", "", "async mode: staleness discount "+strings.Join(strategy.StalenessNames(), "/")+" with optional parameters, e.g. poly:alpha=1 (default invsqrt; needs -buffer)")
	fs.StringVar(&cfg.codecSpec, "codec", "identity", "uplink codec advertised to clients: "+strings.Join(comm.CodecNames(), ", ")+" (identity ships legacy bit-identical frames)")
	fs.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return serverConfig{}, err
	}
	strat, err := strategy.Parse(cfg.stratSpec)
	if err != nil {
		return serverConfig{}, err
	}
	cfg.strat = strat
	if cfg.ckptDir != "" {
		// Fail fast on an unusable checkpoint directory: a server that can
		// train but not checkpoint would lose the federation it promised to
		// preserve.
		if err := os.MkdirAll(cfg.ckptDir, 0o755); err != nil {
			return serverConfig{}, fmt.Errorf("-ckpt-dir: %w", err)
		}
	}
	if cfg.quorum <= 0 {
		return serverConfig{}, fmt.Errorf("-quorum %v must be positive", cfg.quorum)
	}
	if cfg.roundDeadline < 0 {
		return serverConfig{}, fmt.Errorf("-round-deadline %v is negative", cfg.roundDeadline)
	}
	if cfg.numClients <= 0 {
		return serverConfig{}, fmt.Errorf("-clients %d must be positive", cfg.numClients)
	}
	if cfg.fraction <= 0 || cfg.fraction > 1 {
		return serverConfig{}, fmt.Errorf("-fraction %v outside (0, 1]", cfg.fraction)
	}
	if cfg.epochs <= 0 {
		return serverConfig{}, fmt.Errorf("-epochs %d must be positive", cfg.epochs)
	}
	if cfg.rounds <= 0 {
		return serverConfig{}, fmt.Errorf("-rounds %d must be positive", cfg.rounds)
	}
	if cfg.cohort < 0 {
		return serverConfig{}, fmt.Errorf("-cohort %d is negative", cfg.cohort)
	}
	if cfg.cohort > cfg.numClients {
		return serverConfig{}, fmt.Errorf("-cohort %d exceeds the federation size %d", cfg.cohort, cfg.numClients)
	}
	if cfg.relays < 0 {
		return serverConfig{}, fmt.Errorf("-relays %d is negative", cfg.relays)
	}
	if cfg.buffer < 0 {
		return serverConfig{}, fmt.Errorf("-buffer %d is negative", cfg.buffer)
	}
	if cfg.relays > 0 && cfg.buffer > 0 {
		return serverConfig{}, fmt.Errorf("-relays %d and -buffer %d are mutually exclusive: "+
			"a relay tree runs synchronous region rounds; run the buffered-async server flat", cfg.relays, cfg.buffer)
	}
	if cfg.relays > 0 {
		if cfg.relays > cfg.numClients {
			return serverConfig{}, fmt.Errorf("-relays %d exceeds -clients %d: every region needs at least one leaf client",
				cfg.relays, cfg.numClients)
		}
		if cfg.cohort > cfg.relays {
			return serverConfig{}, fmt.Errorf("-cohort %d exceeds the %d relay regions a round can contact", cfg.cohort, cfg.relays)
		}
	}
	if cfg.buffer > 0 {
		if cfg.buffer > cfg.numClients {
			return serverConfig{}, fmt.Errorf("-buffer %d exceeds -clients %d: each client holds at most one "+
				"outstanding update, so the buffer could never fill", cfg.buffer, cfg.numClients)
		}
		if cfg.cohort > 0 {
			return serverConfig{}, fmt.Errorf("-cohort %d schedules synchronous rounds and cannot combine with -buffer %d: "+
				"the async engine dispatches to every idle client at each aggregation; drop -cohort or -buffer", cfg.cohort, cfg.buffer)
		}
		if cfg.tiers || cfg.tierDistSpec != "" {
			return serverConfig{}, fmt.Errorf("-tiers cannot combine with -buffer: masked per-layer aggregation assumes synchronous rounds")
		}
	}
	if cfg.maxStaleness >= 0 && cfg.buffer == 0 {
		return serverConfig{}, fmt.Errorf("-max-staleness %d needs -buffer: staleness only exists in buffered-async mode", cfg.maxStaleness)
	}
	if cfg.stalenessSpec != "" && cfg.buffer == 0 {
		return serverConfig{}, fmt.Errorf("-staleness %q needs -buffer: staleness only exists in buffered-async mode", cfg.stalenessSpec)
	}
	if cfg.buffer > 0 {
		weigher, err := strategy.ParseStaleness(cfg.stalenessSpec)
		if err != nil {
			return serverConfig{}, fmt.Errorf("-staleness: %w", err)
		}
		cfg.weigher = weigher
	}
	// The codec spec is validated here so a typo surfaces before any client
	// joins; identity (the default) stays nil and keeps the legacy wire
	// paths untouched. Reference-needing codecs (int8, topk) are refused in
	// async mode: a buffered client may encode against a model version the
	// server has already replaced, so the two sides would decode against
	// different references.
	codec, err := comm.ParseCodec(cfg.codecSpec)
	if err != nil {
		return serverConfig{}, fmt.Errorf("-codec: %w", err)
	}
	if codec.Name() != comm.CodecIdentity {
		cfg.codec, cfg.codecName = codec, codec.Name()
	}
	if cfg.codec != nil && cfg.codec.NeedsReference() && cfg.buffer > 0 {
		return serverConfig{}, fmt.Errorf("-codec %s cannot combine with -buffer: the codec decodes against "+
			"the round's broadcast reference, which buffered-async clients no longer share; use float16", cfg.codecName)
	}
	// A -quorum above 1 is an absolute update count. It must be an integer,
	// and it must be reachable: a quorum no round can ever meet — more
	// updates than the clients a round contacts — is rejected now, not
	// discovered as an eternal ErrQuorum at round 1.
	if cfg.quorum > 1 {
		if cfg.quorum != math.Trunc(cfg.quorum) {
			return serverConfig{}, fmt.Errorf("-quorum %v: values above 1 are absolute update counts and must be integers", cfg.quorum)
		}
		cfg.minUpdates, cfg.quorum = int(cfg.quorum), 0
		roundSize := cfg.numClients
		if cfg.relays > 0 {
			roundSize = cfg.relays
		}
		if cfg.cohort > 0 {
			roundSize = cfg.cohort
		}
		if cfg.minUpdates > roundSize {
			return serverConfig{}, fmt.Errorf("-quorum %d exceeds the %d participants a round can contact "+
				"(-cohort %d, -relays %d, -clients %d): no round could ever succeed",
				cfg.minUpdates, roundSize, cfg.cohort, cfg.relays, cfg.numClients)
		}
	}
	// In async mode there is no round for a quorum to gate: admission is the
	// buffer itself. Any explicit quorum alongside -buffer is a configuration
	// contradiction, named as such.
	if cfg.buffer > 0 && (cfg.minUpdates > 0 || cfg.quorum != 1) {
		if cfg.minUpdates > 0 {
			return serverConfig{}, fmt.Errorf("-quorum %d is an absolute synchronous-round update count and -buffer %d "+
				"is the async aggregation trigger: the two admission rules are mutually exclusive; drop -quorum "+
				"(async aggregates whenever -buffer updates arrive) or -buffer (synchronous rounds gate on -quorum)",
				cfg.minUpdates, cfg.buffer)
		}
		return serverConfig{}, fmt.Errorf("-quorum %v gates synchronous rounds and cannot combine with -buffer %d: "+
			"async aggregation triggers on the buffer itself; drop -quorum or -buffer", cfg.quorum, cfg.buffer)
	}
	if cfg.tierDistSpec != "" {
		cfg.tiers = true
	}
	if cfg.tiers {
		spec := cfg.tierDistSpec
		if spec == "" {
			spec = defaultTierSpec
		}
		dist, err := device.ParseDistribution(spec)
		if err != nil {
			return serverConfig{}, fmt.Errorf("-tier-dist: %w", err)
		}
		cfg.tierDist = dist
	}
	// The policy name is validated even with -cohort 0, so a typo surfaces
	// now and not on the day scheduling is switched on.
	scheduler, err := sched.Parse(cfg.schedName)
	if err != nil {
		return serverConfig{}, err
	}
	if cfg.cohort > 0 {
		cfg.scheduler = scheduler
	}
	return cfg, nil
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	// Profiling mirrors fedsim: CPU profile over the whole serve, heap
	// profile of the steady state at exit.
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.memProfile != "" {
		f, err := os.Create(cfg.memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fedserver: memprofile:", err)
			}
			f.Close()
		}()
	}
	l, err := comm.ListenTCP(cfg.addr)
	if err != nil {
		return err
	}
	defer l.Close()
	return serve(cfg, l)
}

// configTag fingerprints the server flags that shape the federation's
// training trajectory, so a checkpoint written under one configuration is
// never silently continued under another (the same refusal Runner applies).
// Quorum and deadline are included: they decide which client updates enter
// each aggregate; a non-default strategy contributes its Fingerprint (the
// default fedavg contributes nothing, keeping pre-strategy checkpoints
// resumable). Only -addr and -ckpt-dir stay out — where the federation
// listens and stores cannot change what it computes.
func (c serverConfig) configTag() uint64 {
	parts := []any{c.numClients, c.fraction, c.epochs, c.cohort, c.schedName,
		c.quorum, c.roundDeadline}
	if s := c.taggedStrategy(); s != nil {
		parts = append(parts, s.Fingerprint())
	}
	// Absolute quorum and tier distribution are appended only when set, so
	// untiered fractional-quorum servers keep their pre-tier tags — and
	// their committed checkpoints — unchanged.
	if c.minUpdates > 0 {
		parts = append(parts, fmt.Sprintf("minupdates:%d", c.minUpdates))
	}
	if c.tierDist != nil {
		parts = append(parts, "tiers:"+c.tierDist.String())
	}
	// Hierarchical and async parts follow the same append-only rule: a relay
	// tree changes which peers the round contacts, and buffer/staleness decide
	// which updates enter each aggregate at what weight, so a checkpoint never
	// silently crosses the flat/relay or sync/async boundary.
	if c.relays > 0 {
		parts = append(parts, fmt.Sprintf("relays:%d", c.relays))
	}
	if c.buffer > 0 {
		parts = append(parts, fmt.Sprintf("buffer:%d", c.buffer), "staleness:"+c.weigher.Name())
		if c.maxStaleness >= 0 {
			parts = append(parts, fmt.Sprintf("maxstale:%d", c.maxStaleness))
		}
	}
	// A lossy codec changes every update that enters the aggregate; identity
	// contributes nothing, so pre-codec checkpoints stay resumable.
	if c.codecName != "" {
		parts = append(parts, "codec:"+c.codecName)
	}
	return core.TagConfig(parts...)
}

// restoreFederation warm-starts the server from the newest checkpoint in
// cfg.ckptDir, installing the saved global model, history, accounting and
// scheduler feedback. It returns the last completed round plus the saved
// async engine state (nil outside buffered mode), or 0 (and no changes) when
// the directory holds no checkpoint yet. Validation is the shared
// core.RunState rule set, so the server refuses exactly what the simulator
// refuses: wrong seed, different configuration, a round beyond -rounds, an
// inconsistent history, or a mismatched scheduler.
func restoreFederation(cfg serverConfig, global *models.Model, hist *core.History,
	cumTrainSeconds *float64, tracker *sched.Tracker) (int, *core.AsyncState, error) {
	snap, err := core.LoadLatestRunState(cfg.ckptDir)
	if errors.Is(err, ckpt.ErrNoCheckpoint) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	if err := snap.ValidateFor(cfg.seed, cfg.rounds, cfg.configTag(), cfg.scheduler, cfg.taggedStrategy(), cfg.tierSpec(), cfg.codecName, ""); err != nil {
		return 0, nil, err
	}
	if err := snap.RestoreScheduler(cfg.scheduler); err != nil {
		return 0, nil, err
	}
	if err := snap.RestoreStrategy(cfg.taggedStrategy()); err != nil {
		return 0, nil, err
	}
	if err := core.RestoreModelState(global, snap.Model); err != nil {
		return 0, nil, err
	}
	*hist = snap.Hist
	*cumTrainSeconds = snap.Acct.TrainSeconds
	tracker.Restore(snap.TrackerUtil, snap.TrackerSeconds)
	return snap.Round, snap.Async, nil
}

// snapshotFederation writes the post-aggregation state of one round into
// cfg.ckptDir, so a crashed server warm-starts from here instead of
// discarding the federation's progress. async carries the buffered-mode
// engine state (version counter plus not-yet-aggregated updates); nil in
// synchronous mode keeps the checkpoint bytes identical to pre-async
// servers.
func snapshotFederation(cfg serverConfig, round int, global *models.Model, hist core.History,
	cumTrainSeconds float64, tracker *sched.Tracker, async *core.AsyncState) error {
	snap := &core.RunState{
		Seed:      cfg.seed,
		ConfigTag: cfg.configTag(),
		Round:     round,
		Model:     core.SnapshotModelState(global),
		Hist:      hist,
		Acct:      simtime.AccountantState{TrainSeconds: cumTrainSeconds},
		Async:     async,
	}
	snap.TrackerUtil, snap.TrackerSeconds = tracker.Export()
	if err := snap.CaptureScheduler(cfg.scheduler); err != nil {
		return err
	}
	snap.CaptureStrategy(cfg.taggedStrategy())
	snap.TierSpec = cfg.tierSpec()
	// The server never holds error-feedback residuals (they live client-side),
	// so the codec section carries only the spec.
	snap.CodecName = cfg.codecName
	return core.SaveRunState(ckpt.Path(cfg.ckptDir, round), snap)
}

// coreBuffered converts the async engine's pending wire updates into their
// checkpoint representation, field for field.
func coreBuffered(ups []comm.ClientUpdate) []core.BufferedUpdate {
	out := make([]core.BufferedUpdate, len(ups))
	for i, u := range ups {
		out[i] = core.BufferedUpdate{
			ClientID: u.ClientID, Round: u.Round, Version: u.Version,
			State: u.State, Groups: u.Groups, NumSelected: u.NumSelected,
			TrainSeconds: u.TrainSeconds, TrainLoss: u.TrainLoss, MeanEntropy: u.MeanEntropy,
		}
	}
	return out
}

// wireBuffered is the inverse of coreBuffered, for warm-starting the engine.
func wireBuffered(ups []core.BufferedUpdate) []comm.ClientUpdate {
	out := make([]comm.ClientUpdate, len(ups))
	for i, u := range ups {
		out[i] = comm.ClientUpdate{
			ClientID: u.ClientID, Round: u.Round, Version: u.Version,
			State: u.State, Groups: u.Groups, NumSelected: u.NumSelected,
			TrainSeconds: u.TrainSeconds, TrainLoss: u.TrainLoss, MeanEntropy: u.MeanEntropy,
		}
	}
	return out
}

// regionAsUpdate reshapes a relay's folded delta into the ClientUpdate the
// aggregation and strategy layers already understand: the region is one
// heavyweight participant whose selected-sample mass is the sum over its
// reporting leaves, which reproduces the flat federation's weighted average
// exactly under the default selected-size weighting.
func regionAsUpdate(ru comm.RegionUpdate) comm.ClientUpdate {
	return comm.ClientUpdate{
		ClientID:     ru.RelayID,
		Round:        ru.Round,
		Version:      ru.Version,
		State:        ru.State,
		Codec:        ru.Codec,
		NumSelected:  ru.NumSelected,
		TrainSeconds: ru.TrainSeconds,
		TrainLoss:    ru.TrainLoss,
		MeanEntropy:  ru.MeanEntropy,
	}
}

// serve drives one federation on an established listener. With -ckpt-dir it
// snapshots after every aggregated round and warm-starts from the latest
// checkpoint, so a crashed-and-restarted server resumes the federation where
// it stopped (clients reconnect and follow the server's round numbering).
// With -relays the round's participants are fedrelay regions instead of leaf
// clients; with -buffer the synchronous round loop is replaced by buffered
// asynchronous aggregation (serveAsync).
func serve(cfg serverConfig, l comm.Listener) error {
	if cfg.buffer > 0 {
		return serveAsync(cfg, l)
	}
	engineCfg := comm.EngineConfig{RoundDeadline: cfg.roundDeadline, Quorum: cfg.quorum,
		MinUpdates: cfg.minUpdates}
	if err := engineCfg.Validate(); err != nil {
		return err
	}

	// Build the shared world: domains, pretrained global model, test set.
	world, err := NewWorld(cfg.seed, cfg.numClients)
	if err != nil {
		return err
	}
	global := world.Global
	commGroups := global.TrainableGroupNames()

	// Report rounds through the same History the in-process simulator
	// produces, so distributed and simulated runs are directly comparable.
	var hist core.History
	var cumTrainSeconds float64
	tracker := sched.NewTracker()
	startRound := 0
	if cfg.ckptDir != "" {
		startRound, _, err = restoreFederation(cfg, global, &hist, &cumTrainSeconds, tracker)
		if err != nil {
			return fmt.Errorf("warm-start from %s: %w", cfg.ckptDir, err)
		}
		if startRound > 0 {
			log.Printf("warm-start: resuming after round %d from %s", startRound, cfg.ckptDir)
		}
	}

	// In hierarchical mode the direct participants are the relay regions, not
	// the leaf clients they cover.
	participants := cfg.numClients
	if cfg.relays > 0 {
		participants = cfg.relays
		log.Printf("listening on %s, waiting for %d relay regions covering %d clients", l.Addr(), cfg.relays, cfg.numClients)
	} else {
		log.Printf("listening on %s, waiting for %d clients", l.Addr(), cfg.numClients)
	}
	sess, err := comm.AcceptClientsCodec(l, participants, cfg.rounds, cfg.codecName)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Shutdown("done"); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	log.Printf("federation ready: clients %v, strategy %s, codec %s",
		sess.ClientIDs(), cfg.strat.Fingerprint(), cfg.codecSpec)

	engine, err := comm.NewRoundEngine(sess, engineCfg)
	if err != nil {
		return err
	}

	// A relay region is a process worth restarting: keep the listener
	// admitting behind the round loop so a crashed relay re-registers and
	// rejoins at the next round boundary instead of shrinking the tree for
	// good.
	var admitter *comm.Admitter
	if cfg.relays > 0 {
		if admitter, err = comm.NewAdmitterCodec(l, participants, cfg.rounds, cfg.codecName); err != nil {
			return err
		}
	}

	// The strategy weighs each streamed update (absorbing the fixed
	// selected-size weighting) and later applies the weighted average to
	// the global model through its server optimizer. The one-element
	// scratch keeps the streaming path allocation-light.
	var (
		upScratch [1]strategy.Update
		wScratch  [1]float64
	)
	weigh := func(u comm.ClientUpdate) (float64, error) {
		upScratch[0] = strategy.Update{
			ClientID:    u.ClientID,
			NumSelected: u.NumSelected,
			LocalSize:   sess.LocalSize(u.ClientID),
		}
		if err := cfg.strat.WeighUpdates(upScratch[:], wScratch[:]); err != nil {
			return 0, err
		}
		return wScratch[0], nil
	}

	// In tier mode clients ship only the groups their capability affords, so
	// aggregation goes per layer: each tensor is averaged over exactly the
	// clients that covered it, and uncovered tensors fall back to the current
	// global state. Finish resets the aggregator, so one instance serves every
	// round. Untiered federations keep the legacy whole-state aggregator and
	// its exact semantics.
	// In relay mode the per-layer work happens one tier down: each relay
	// resolves its region's masks against the broadcast Layout and forwards a
	// full-layout delta, so the root composes whole states even when the
	// leaves are tiered.
	var maskedAgg *comm.MaskedStreamAggregator
	var bcastLayout []string
	if cfg.tierDist != nil {
		layout, err := global.GroupStateLayout(commGroups)
		if err != nil {
			return err
		}
		if cfg.relays > 0 {
			bcastLayout = layout
		} else if maskedAgg, err = comm.NewMaskedStreamAggregator(weigh, commGroups, layout); err != nil {
			return err
		}
	}

	for round := startRound + 1; round <= cfg.rounds; round++ {
		// Fold in crashed-and-restarted relays at the round boundary, never
		// mid-round: the session map stays single-writer.
		if admitter != nil {
			if ids := admitter.Drain(sess); len(ids) > 0 {
				log.Printf("round %d: re-admitted relays %v", round, ids)
			}
		}
		stateTs, err := global.GroupStateTensors(commGroups)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(stateTs)
		if err != nil {
			return err
		}

		// Schedule the round's cohort from the live clients; with -cohort 0
		// the whole federation trains, as it always did.
		live := sess.ClientIDs()
		cohort, policy := live, ""
		if cfg.scheduler != nil {
			cohort = scheduleCohort(cfg, tracker, sess, round, live)
			policy = cfg.scheduler.Name()
		}

		// Stream each update into the weighted sum as it arrives: the
		// server holds one decoded state at a time, O(state) not O(N·state).
		// With a lossy codec the aggregator decodes each payload against the
		// round's broadcast tensors (stateTs, still holding the broadcast
		// values until ApplyAggregate below); identity keeps the legacy
		// decode path untouched.
		agg := comm.NewWeightedStreamAggregator(weigh)
		if cfg.codec != nil {
			if maskedAgg != nil {
				if err := maskedAgg.SetCodec(cfg.codec, stateTs); err != nil {
					return err
				}
			} else {
				agg.SetCodec(cfg.codec, stateTs)
			}
		}
		fold := agg.Add
		if maskedAgg != nil {
			fold = maskedAgg.Add
		}
		var roundTrainSeconds, lossSum float64
		foldOne := func(u comm.ClientUpdate) error {
			if err := fold(u); err != nil {
				return err
			}
			roundTrainSeconds += u.TrainSeconds
			lossSum += u.TrainLoss
			tracker.ObserveUpdate(u.ClientID, u.MeanEntropy, u.TrainLoss, u.TrainSeconds)
			return nil
		}
		rs := comm.RoundStart{
			Round:          round,
			State:          blob,
			Groups:         commGroups,
			SelectFraction: cfg.fraction,
			LocalEpochs:    cfg.epochs,
			Layout:         bcastLayout,
		}
		var out comm.RoundOutcome
		if cfg.relays > 0 {
			out, err = engine.RunRegionRound(rs, cohort, func(ru comm.RegionUpdate) error {
				return foldOne(regionAsUpdate(ru))
			})
		} else {
			out, err = engine.RunCohort(rs, cohort, foldOne)
		}
		logFailures(out)
		if err != nil {
			return err
		}
		// A timed-out client took at least the whole deadline; record that so
		// time-driven policies stop treating a hung client as instant.
		for _, id := range out.TimedOut {
			tracker.ObserveTimeout(id, cfg.roundDeadline.Seconds())
		}
		var fused []*tensor.Tensor
		if maskedAgg != nil {
			fused, err = maskedAgg.Finish(stateTs)
		} else {
			fused, err = agg.Finish()
		}
		if err != nil {
			return err
		}
		// stateTs are live views of the global model's groups — the
		// strategy's server optimizer folds the weighted average into them
		// (fedavg overwrites, exactly the pre-strategy behavior).
		if err := cfg.strat.ApplyAggregate(stateTs, fused); err != nil {
			return fmt.Errorf("strategy %s: round %d: %w", cfg.strat.Name(), round, err)
		}

		acc, err := metrics.Accuracy(global, world.Test)
		if err != nil {
			return err
		}
		cumTrainSeconds += roundTrainSeconds
		hist.Records = append(hist.Records, core.RoundRecord{
			Round:           round,
			CohortSize:      len(cohort),
			SchedPolicy:     policy,
			Participants:    len(out.Reported),
			TestAccuracy:    acc,
			MeanTrainLoss:   lossSum / float64(len(out.Reported)),
			CumTrainSeconds: cumTrainSeconds,
		})
		if acc > hist.BestAccuracy {
			hist.BestAccuracy = acc
		}
		hist.FinalAccuracy = acc
		log.Printf("round %d/%d: cohort %d/%d, %d reported (%d timed out, %d dropped, %d late), test accuracy %.2f%%",
			round, cfg.rounds, len(cohort), len(live),
			len(out.Reported), len(out.TimedOut), len(out.Dropped), out.LateDiscarded, 100*acc)

		if cfg.ckptDir != "" {
			if err := snapshotFederation(cfg, round, global, hist, cumTrainSeconds, tracker, nil); err != nil {
				return fmt.Errorf("checkpoint round %d: %w", round, err)
			}
		}
	}
	hist.TotalTrainSeconds = cumTrainSeconds
	if eff, err := hist.LearningEfficiency(); err == nil {
		log.Printf("run complete: best accuracy %.2f%%, total client time %.1fs, learning efficiency %.2f %%/s",
			100*hist.BestAccuracy, hist.TotalTrainSeconds, eff)
	} else {
		log.Printf("run complete: best accuracy %.2f%%", 100*hist.BestAccuracy)
	}
	return nil
}

// serveAsync drives buffered asynchronous (FedBuff-style) aggregation: every
// client trains continuously against the newest model it has seen, the
// server aggregates whenever -buffer updates accumulated, and stale
// contributions are discounted by the -staleness weigher (or discarded past
// -max-staleness). -rounds counts aggregations. With -buffer equal to
// -clients and the identity weigher the loop reproduces the synchronous
// serve arithmetic exactly; checkpoints additionally carry the engine's
// version counter and mid-buffer updates, so a restarted server resumes
// without losing work that had already arrived.
func serveAsync(cfg serverConfig, l comm.Listener) error {
	world, err := NewWorld(cfg.seed, cfg.numClients)
	if err != nil {
		return err
	}
	global := world.Global
	commGroups := global.TrainableGroupNames()

	var hist core.History
	var cumTrainSeconds float64
	tracker := sched.NewTracker()
	startAgg := 0
	var restored *core.AsyncState
	if cfg.ckptDir != "" {
		startAgg, restored, err = restoreFederation(cfg, global, &hist, &cumTrainSeconds, tracker)
		if err != nil {
			return fmt.Errorf("warm-start from %s: %w", cfg.ckptDir, err)
		}
		if startAgg > 0 {
			buffered := 0
			if restored != nil {
				buffered = len(restored.Buffer)
			}
			log.Printf("warm-start: resuming after aggregation %d (%d buffered updates) from %s",
				startAgg, buffered, cfg.ckptDir)
		}
	}

	log.Printf("listening on %s, waiting for %d clients (async, buffer %d)", l.Addr(), cfg.numClients, cfg.buffer)
	sess, err := comm.AcceptClientsCodec(l, cfg.numClients, cfg.rounds, cfg.codecName)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Shutdown("done"); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	log.Printf("federation ready: clients %v, strategy %s, staleness %s",
		sess.ClientIDs(), cfg.strat.Fingerprint(), cfg.weigher.Name())

	engine, err := comm.NewAsyncEngine(sess, comm.AsyncConfig{
		Buffer:       cfg.buffer,
		MaxStaleness: cfg.maxStaleness,
		Weigh:        cfg.weigher.Weight,
		AggDeadline:  cfg.roundDeadline,
	})
	if err != nil {
		return err
	}
	if restored != nil {
		if err := engine.Restore(restored.Version, wireBuffered(restored.Buffer)); err != nil {
			return err
		}
	}

	// The strategy weighs each update as in the synchronous path; the async
	// engine's staleness discount multiplies on top. curLambda is set by the
	// fold immediately before the aggregator calls weigh (both run on this
	// goroutine, never concurrently). A fresh update's lambda is exactly 1.0,
	// so the multiplication is a float no-op and the synchronous special case
	// stays bit-identical.
	curLambda := 1.0
	var (
		upScratch [1]strategy.Update
		wScratch  [1]float64
	)
	weigh := func(u comm.ClientUpdate) (float64, error) {
		upScratch[0] = strategy.Update{
			ClientID:    u.ClientID,
			NumSelected: u.NumSelected,
			LocalSize:   sess.LocalSize(u.ClientID),
		}
		if err := cfg.strat.WeighUpdates(upScratch[:], wScratch[:]); err != nil {
			return 0, err
		}
		return wScratch[0] * curLambda, nil
	}

	for agg := startAgg + 1; agg <= cfg.rounds; agg++ {
		stateTs, err := global.GroupStateTensors(commGroups)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(stateTs)
		if err != nil {
			return err
		}
		aggStream := comm.NewWeightedStreamAggregator(weigh)
		if cfg.codec != nil {
			// Only reference-free codecs reach async mode (parseFlags refused
			// the rest), so no broadcast reference is needed for decoding.
			aggStream.SetCodec(cfg.codec, nil)
		}
		var roundTrainSeconds, lossSum float64
		out, err := engine.RunAggregation(agg, comm.RoundStart{
			State:          blob,
			Groups:         commGroups,
			SelectFraction: cfg.fraction,
			LocalEpochs:    cfg.epochs,
		}, func(u comm.ClientUpdate, lambda float64) error {
			curLambda = lambda
			if err := aggStream.Add(u); err != nil {
				return err
			}
			roundTrainSeconds += u.TrainSeconds
			lossSum += u.TrainLoss
			tracker.ObserveUpdate(u.ClientID, u.MeanEntropy, u.TrainLoss, u.TrainSeconds)
			return nil
		})
		logAggFailures(out)
		if err != nil {
			return err
		}
		fused, err := aggStream.Finish()
		if err != nil {
			return err
		}
		if err := cfg.strat.ApplyAggregate(stateTs, fused); err != nil {
			return fmt.Errorf("strategy %s: aggregation %d: %w", cfg.strat.Name(), agg, err)
		}

		acc, err := metrics.Accuracy(global, world.Test)
		if err != nil {
			return err
		}
		cumTrainSeconds += roundTrainSeconds
		hist.Records = append(hist.Records, core.RoundRecord{
			Round:           agg,
			CohortSize:      len(out.Reported) + out.Discarded,
			Participants:    len(out.Reported),
			TestAccuracy:    acc,
			MeanTrainLoss:   lossSum / float64(len(out.Reported)),
			CumTrainSeconds: cumTrainSeconds,
		})
		if acc > hist.BestAccuracy {
			hist.BestAccuracy = acc
		}
		hist.FinalAccuracy = acc
		log.Printf("aggregation %d/%d: model v%d, %d folded (%d stale discarded, %d dropped), test accuracy %.2f%%",
			agg, cfg.rounds, out.Version, len(out.Reported), out.Discarded, len(out.Dropped), 100*acc)

		if cfg.ckptDir != "" {
			async := &core.AsyncState{Version: engine.Version(), Buffer: coreBuffered(engine.Buffered())}
			if err := snapshotFederation(cfg, agg, global, hist, cumTrainSeconds, tracker, async); err != nil {
				return fmt.Errorf("checkpoint aggregation %d: %w", agg, err)
			}
		}
	}
	hist.TotalTrainSeconds = cumTrainSeconds
	if eff, err := hist.LearningEfficiency(); err == nil {
		log.Printf("run complete: best accuracy %.2f%%, total client time %.1fs, learning efficiency %.2f %%/s",
			100*hist.BestAccuracy, hist.TotalTrainSeconds, eff)
	} else {
		log.Printf("run complete: best accuracy %.2f%%", 100*hist.BestAccuracy)
	}
	return nil
}

// logAggFailures reports an aggregation's dropped clients in deterministic
// order, the async counterpart of logFailures.
func logAggFailures(out comm.AggOutcome) {
	ids := make([]int, 0, len(out.Failures))
	for id := range out.Failures {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		log.Printf("aggregation %d: client %d: %v", out.Agg, id, out.Failures[id])
	}
}

// scheduleCohort builds the candidate descriptors for the live clients and
// asks the policy for this round's cohort. The candidate's projected time is
// the client's last reported round seconds (zero before first contact), its
// size the Hello-reported |D_i|, and its utility the tracker's latest value.
func scheduleCohort(cfg serverConfig, tracker *sched.Tracker, sess *comm.ServerSession, round int, live []int) []int {
	cands := make([]sched.Candidate, len(live))
	for i, id := range live {
		cands[i] = sched.Candidate{
			ClientID:         id,
			DataSize:         sess.LocalSize(id),
			ProjectedSeconds: tracker.Seconds(id),
			Available:        true,
			Tier:             sess.Tier(id),
			Clients:          sess.DownstreamClients(id),
		}
	}
	tracker.Stamp(cands)
	k := cfg.cohort
	if k > len(live) {
		k = len(live)
	}
	rng := tensor.NewRand(uint64(cfg.seed), uint64(round), sched.StreamTag)
	return cfg.scheduler.Schedule(round, cands, k, rng)
}

// logFailures reports a round's failed clients in deterministic order.
func logFailures(out comm.RoundOutcome) {
	ids := make([]int, 0, len(out.Failures))
	for id := range out.Failures {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		log.Printf("round %d: client %d: %v", out.Round, id, out.Failures[id])
	}
}

// World is the deterministic shared setup both binaries derive from -seed.
type World struct {
	// Global is the pretrained global model with the paper's moderate
	// finetune part set.
	Global *models.Model
	// Test is the held-out evaluation set.
	Test *data.Dataset
}

// NewWorld builds the shared federation world for the distributed demo:
// standard domain suite, a source-pretrained model, and the test set.
func NewWorld(seed int64, numClients int) (*World, error) {
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		return nil, err
	}
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return nil, err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return nil, err
	}
	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 31337)
	if err != nil {
		return nil, err
	}
	return &World{Global: global, Test: fed.Test}, nil
}
