// Command fedserver runs a real distributed FedFT-EDS server over TCP: it
// waits for the expected number of fedclient processes to register, then
// drives the configured number of communication rounds through the
// fault-tolerant round engine, streaming each client's update into the
// selected-size-weighted aggregate as it arrives, and evaluates the global
// model after every round.
//
// The engine makes the federation survive real-world client behavior: a
// crashed client is dropped and the round completes as long as -quorum of
// the round's clients report, and a hung client is cut off at
// -round-deadline instead of blocking the server forever (it may rejoin at
// the next round).
//
// With -cohort K the server additionally schedules: each round only K of
// the live clients are contacted (policy chosen by -sched — uniform, size,
// entropy, powerd, or avail:<inner>; the same names fedsim accepts), the
// rest idle on their open connections until a later cohort includes them.
// The entropy policy closes a feedback loop over the wire: clients report
// their mean EDS entropy with every update, and the scheduler exploits the
// most uncertain clients with ε-greedy exploration.
//
// Clients regenerate their local partitions deterministically from the
// shared -seed, so server and clients agree on data without moving it —
// the whole point of federated learning.
//
// Usage:
//
//	fedserver -addr 127.0.0.1:7070 -clients 4 -rounds 10 -fraction 0.5 \
//	          -round-deadline 2m -quorum 0.6 -cohort 2 -sched entropy
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/experiments"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
}

// serverConfig is the validated flag set of one fedserver run.
type serverConfig struct {
	addr          string
	numClients    int
	rounds        int
	fraction      float64
	epochs        int
	seed          int64
	roundDeadline time.Duration
	quorum        float64
	cohort        int
	scheduler     sched.Scheduler // nil when -cohort is 0 (full pool)
	schedName     string
}

// parseFlags parses and fail-fast validates the command line: bad -quorum,
// -round-deadline, -cohort or -sched values are rejected here, before any
// client has a chance to join a doomed federation.
func parseFlags(args []string) (serverConfig, error) {
	var cfg serverConfig
	fs := flag.NewFlagSet("fedserver", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7070", "listen address")
	fs.IntVar(&cfg.numClients, "clients", 2, "number of clients to wait for")
	fs.IntVar(&cfg.rounds, "rounds", 10, "communication rounds")
	fs.Float64Var(&cfg.fraction, "fraction", 0.5, "selection fraction P_ds")
	fs.IntVar(&cfg.epochs, "epochs", 5, "local epochs E")
	fs.Int64Var(&cfg.seed, "seed", 1, "shared federation seed")
	fs.DurationVar(&cfg.roundDeadline, "round-deadline", 0, "per-round deadline; hung clients are dropped at expiry (0 = wait forever)")
	fs.Float64Var(&cfg.quorum, "quorum", 1, "fraction of the round's clients whose updates it needs to succeed, in (0, 1]")
	fs.IntVar(&cfg.cohort, "cohort", 0, "clients scheduled per round, 0 = the whole federation")
	fs.StringVar(&cfg.schedName, "sched", "uniform", "cohort scheduling policy: uniform, size, entropy, powerd, avail:<inner>")
	if err := fs.Parse(args); err != nil {
		return serverConfig{}, err
	}
	if cfg.quorum <= 0 || cfg.quorum > 1 {
		return serverConfig{}, fmt.Errorf("-quorum %v outside (0, 1]", cfg.quorum)
	}
	if cfg.roundDeadline < 0 {
		return serverConfig{}, fmt.Errorf("-round-deadline %v is negative", cfg.roundDeadline)
	}
	if cfg.numClients <= 0 {
		return serverConfig{}, fmt.Errorf("-clients %d must be positive", cfg.numClients)
	}
	if cfg.fraction <= 0 || cfg.fraction > 1 {
		return serverConfig{}, fmt.Errorf("-fraction %v outside (0, 1]", cfg.fraction)
	}
	if cfg.epochs <= 0 {
		return serverConfig{}, fmt.Errorf("-epochs %d must be positive", cfg.epochs)
	}
	if cfg.rounds <= 0 {
		return serverConfig{}, fmt.Errorf("-rounds %d must be positive", cfg.rounds)
	}
	if cfg.cohort < 0 {
		return serverConfig{}, fmt.Errorf("-cohort %d is negative", cfg.cohort)
	}
	if cfg.cohort > cfg.numClients {
		return serverConfig{}, fmt.Errorf("-cohort %d exceeds the federation size %d", cfg.cohort, cfg.numClients)
	}
	// The policy name is validated even with -cohort 0, so a typo surfaces
	// now and not on the day scheduling is switched on.
	scheduler, err := sched.Parse(cfg.schedName)
	if err != nil {
		return serverConfig{}, err
	}
	if cfg.cohort > 0 {
		cfg.scheduler = scheduler
	}
	return cfg, nil
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	engineCfg := comm.EngineConfig{RoundDeadline: cfg.roundDeadline, Quorum: cfg.quorum}
	if err := engineCfg.Validate(); err != nil {
		return err
	}

	// Build the shared world: domains, pretrained global model, test set.
	world, err := NewWorld(cfg.seed, cfg.numClients)
	if err != nil {
		return err
	}
	global := world.Global
	commGroups := global.TrainableGroupNames()

	l, err := comm.ListenTCP(cfg.addr)
	if err != nil {
		return err
	}
	defer l.Close()
	log.Printf("listening on %s, waiting for %d clients", l.Addr(), cfg.numClients)

	sess, err := comm.AcceptClients(l, cfg.numClients, cfg.rounds)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Shutdown("done"); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	log.Printf("federation ready: clients %v", sess.ClientIDs())

	engine, err := comm.NewRoundEngine(sess, engineCfg)
	if err != nil {
		return err
	}

	// Report rounds through the same History the in-process simulator
	// produces, so distributed and simulated runs are directly comparable.
	var hist core.History
	var cumTrainSeconds float64
	tracker := sched.NewTracker()
	for round := 1; round <= cfg.rounds; round++ {
		stateTs, err := global.GroupStateTensors(commGroups)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(stateTs)
		if err != nil {
			return err
		}

		// Schedule the round's cohort from the live clients; with -cohort 0
		// the whole federation trains, as it always did.
		live := sess.ClientIDs()
		cohort, policy := live, ""
		if cfg.scheduler != nil {
			cohort = scheduleCohort(cfg, tracker, sess, round, live)
			policy = cfg.scheduler.Name()
		}

		// Stream each update into the weighted sum as it arrives: the
		// server holds one decoded state at a time, O(state) not O(N·state).
		agg := comm.NewStreamAggregator()
		var roundTrainSeconds, lossSum float64
		out, err := engine.RunCohort(comm.RoundStart{
			Round:          round,
			State:          blob,
			Groups:         commGroups,
			SelectFraction: cfg.fraction,
			LocalEpochs:    cfg.epochs,
		}, cohort, func(u comm.ClientUpdate) error {
			if err := agg.Add(u); err != nil {
				return err
			}
			roundTrainSeconds += u.TrainSeconds
			lossSum += u.TrainLoss
			tracker.ObserveUpdate(u.ClientID, u.MeanEntropy, u.TrainLoss, u.TrainSeconds)
			return nil
		})
		logFailures(out)
		if err != nil {
			return err
		}
		// A timed-out client took at least the whole deadline; record that so
		// time-driven policies stop treating a hung client as instant.
		for _, id := range out.TimedOut {
			tracker.ObserveTimeout(id, cfg.roundDeadline.Seconds())
		}
		fused, err := agg.Finish()
		if err != nil {
			return err
		}
		// stateTs are live views of the global model's groups — copy the
		// aggregate straight back into them.
		for i := range stateTs {
			if err := stateTs[i].CopyFrom(fused[i]); err != nil {
				return err
			}
		}

		acc, err := metrics.Accuracy(global, world.Test)
		if err != nil {
			return err
		}
		cumTrainSeconds += roundTrainSeconds
		hist.Records = append(hist.Records, core.RoundRecord{
			Round:           round,
			CohortSize:      len(cohort),
			SchedPolicy:     policy,
			Participants:    len(out.Reported),
			TestAccuracy:    acc,
			MeanTrainLoss:   lossSum / float64(len(out.Reported)),
			CumTrainSeconds: cumTrainSeconds,
		})
		if acc > hist.BestAccuracy {
			hist.BestAccuracy = acc
		}
		hist.FinalAccuracy = acc
		log.Printf("round %d/%d: cohort %d/%d, %d reported (%d timed out, %d dropped, %d late), test accuracy %.2f%%",
			round, cfg.rounds, len(cohort), len(live),
			len(out.Reported), len(out.TimedOut), len(out.Dropped), out.LateDiscarded, 100*acc)
	}
	hist.TotalTrainSeconds = cumTrainSeconds
	if eff, err := hist.LearningEfficiency(); err == nil {
		log.Printf("run complete: best accuracy %.2f%%, total client time %.1fs, learning efficiency %.2f %%/s",
			100*hist.BestAccuracy, hist.TotalTrainSeconds, eff)
	} else {
		log.Printf("run complete: best accuracy %.2f%%", 100*hist.BestAccuracy)
	}
	return nil
}

// scheduleCohort builds the candidate descriptors for the live clients and
// asks the policy for this round's cohort. The candidate's projected time is
// the client's last reported round seconds (zero before first contact), its
// size the Hello-reported |D_i|, and its utility the tracker's latest value.
func scheduleCohort(cfg serverConfig, tracker *sched.Tracker, sess *comm.ServerSession, round int, live []int) []int {
	cands := make([]sched.Candidate, len(live))
	for i, id := range live {
		cands[i] = sched.Candidate{
			ClientID:         id,
			DataSize:         sess.LocalSize(id),
			ProjectedSeconds: tracker.Seconds(id),
			Available:        true,
		}
	}
	tracker.Stamp(cands)
	k := cfg.cohort
	if k > len(live) {
		k = len(live)
	}
	rng := tensor.NewRand(uint64(cfg.seed), uint64(round), sched.StreamTag)
	return cfg.scheduler.Schedule(round, cands, k, rng)
}

// logFailures reports a round's failed clients in deterministic order.
func logFailures(out comm.RoundOutcome) {
	ids := make([]int, 0, len(out.Failures))
	for id := range out.Failures {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		log.Printf("round %d: client %d: %v", out.Round, id, out.Failures[id])
	}
}

// World is the deterministic shared setup both binaries derive from -seed.
type World struct {
	// Global is the pretrained global model with the paper's moderate
	// finetune part set.
	Global *models.Model
	// Test is the held-out evaluation set.
	Test *data.Dataset
}

// NewWorld builds the shared federation world for the distributed demo:
// standard domain suite, a source-pretrained model, and the test set.
func NewWorld(seed int64, numClients int) (*World, error) {
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		return nil, err
	}
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return nil, err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return nil, err
	}
	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 31337)
	if err != nil {
		return nil, err
	}
	return &World{Global: global, Test: fed.Test}, nil
}
