// Command fedserver runs a real distributed FedFT-EDS server over TCP: it
// waits for the expected number of fedclient processes to register, then
// drives the configured number of communication rounds, aggregating the
// trainable upper part of the model weighted by each client's selected-set
// size, and evaluates the global model after every round.
//
// Clients regenerate their local partitions deterministically from the
// shared -seed, so server and clients agree on data without moving it —
// the whole point of federated learning.
//
// Usage:
//
//	fedserver -addr 127.0.0.1:7070 -clients 4 -rounds 10 -fraction 0.5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fedfteds/internal/comm"
	"fedfteds/internal/data"
	"fedfteds/internal/experiments"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
	"fedfteds/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fedserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	numClients := fs.Int("clients", 2, "number of clients to wait for")
	rounds := fs.Int("rounds", 10, "communication rounds")
	fraction := fs.Float64("fraction", 0.5, "selection fraction P_ds")
	epochs := fs.Int("epochs", 5, "local epochs E")
	seed := fs.Int64("seed", 1, "shared federation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Build the shared world: domains, pretrained global model, test set.
	world, err := NewWorld(*seed, *numClients)
	if err != nil {
		return err
	}
	global := world.Global
	commGroups := global.TrainableGroupNames()

	l, err := comm.ListenTCP(*addr)
	if err != nil {
		return err
	}
	defer l.Close()
	log.Printf("listening on %s, waiting for %d clients", l.Addr(), *numClients)

	sess, err := comm.AcceptClients(l, *numClients, *rounds)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Shutdown("done"); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	ids := sess.ClientIDs()
	log.Printf("federation ready: clients %v", ids)

	for round := 1; round <= *rounds; round++ {
		stateTs, err := global.GroupStateTensors(commGroups)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(stateTs)
		if err != nil {
			return err
		}
		updates, err := sess.RunRound(comm.RoundStart{
			Round:          round,
			State:          blob,
			Groups:         commGroups,
			SelectFraction: *fraction,
			LocalEpochs:    *epochs,
		}, ids)
		if err != nil {
			return err
		}
		if err := aggregate(global, commGroups, updates); err != nil {
			return err
		}
		acc, err := metrics.Accuracy(global, world.Test)
		if err != nil {
			return err
		}
		log.Printf("round %d/%d: %d updates, test accuracy %.2f%%", round, *rounds, len(updates), 100*acc)
	}
	return nil
}

// aggregate fuses client updates into the global model weighted by selected
// sizes (paper Eq. 5).
func aggregate(global *models.Model, groups []string, updates []comm.ClientUpdate) error {
	var total float64
	states := make([][]*tensor.Tensor, len(updates))
	for i, u := range updates {
		ts, err := comm.DecodeTensors(u.State)
		if err != nil {
			return fmt.Errorf("decode update from client %d: %w", u.ClientID, err)
		}
		states[i] = ts
		total += float64(u.NumSelected)
	}
	if total <= 0 {
		return fmt.Errorf("aggregate: no selected samples reported")
	}
	dst, err := global.GroupStateTensors(groups)
	if err != nil {
		return err
	}
	for ti := range dst {
		dst[ti].Zero()
		for i, ts := range states {
			if ti >= len(ts) {
				return fmt.Errorf("client %d sent %d tensors, want %d", updates[i].ClientID, len(ts), len(dst))
			}
			w := float32(float64(updates[i].NumSelected) / total)
			if err := dst[ti].Axpy(w, ts[ti]); err != nil {
				return err
			}
		}
	}
	return nil
}

// World is the deterministic shared setup both binaries derive from -seed.
type World struct {
	// Global is the pretrained global model with the paper's moderate
	// finetune part set.
	Global *models.Model
	// Test is the held-out evaluation set.
	Test *data.Dataset
}

// NewWorld builds the shared federation world for the distributed demo:
// standard domain suite, a source-pretrained model, and the test set.
func NewWorld(seed int64, numClients int) (*World, error) {
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		return nil, err
	}
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return nil, err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return nil, err
	}
	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 31337)
	if err != nil {
		return nil, err
	}
	return &World{Global: global, Test: fed.Test}, nil
}
