// Command fedserver runs a real distributed FedFT-EDS server over TCP: it
// waits for the expected number of fedclient processes to register, then
// drives the configured number of communication rounds through the
// fault-tolerant round engine, streaming each client's update into the
// selected-size-weighted aggregate as it arrives, and evaluates the global
// model after every round.
//
// The engine makes the federation survive real-world client behavior: a
// crashed client is dropped and the round completes as long as -quorum of
// the round's clients report, and a hung client is cut off at
// -round-deadline instead of blocking the server forever (it may rejoin at
// the next round).
//
// With -cohort K the server additionally schedules: each round only K of
// the live clients are contacted (policy chosen by -sched — uniform, size,
// entropy, powerd, or avail:<inner>; the same names fedsim accepts), the
// rest idle on their open connections until a later cohort includes them.
// The entropy policy closes a feedback loop over the wire: clients report
// their mean EDS entropy with every update, and the scheduler exploits the
// most uncertain clients with ε-greedy exploration.
//
// With -strategy the server swaps the federated-optimization strategy: how
// streamed updates are weighted and how their weighted average moves the
// global model — fedavg (overwrite, the default), fedavgm (server
// momentum), fedadam or fedyogi (adaptive server optimizers), with
// parameters inline ("fedadam:lr=0.05,beta1=0.9"). Server optimizers are
// server-only: nothing changes on the wire, and unmodified fedclients
// participate in any strategy.
//
// With -tiers (optionally -tier-dist "low:1,mid:2,full:1") the federation is
// heterogeneous: every client belongs to a device-capability tier derived
// deterministically from the shared seed, trains only the layer groups its
// tier can afford, and ships only those groups' tensors (masked layers cost
// zero wire bytes). The server aggregates per layer — each group is averaged
// over exactly the clients that covered it — and the "tier" scheduling
// policy keeps cohorts proportionally balanced across tiers.
//
// -quorum accepts either a fraction of the round's clients in (0, 1] or,
// when given a value above 1, an absolute number of updates; an absolute
// quorum larger than the clients a round can contact (-cohort, or -clients)
// is rejected at startup, since no round could ever succeed.
//
// Clients regenerate their local partitions deterministically from the
// shared -seed, so server and clients agree on data without moving it —
// the whole point of federated learning.
//
// Usage:
//
//	fedserver -addr 127.0.0.1:7070 -clients 4 -rounds 10 -fraction 0.5 \
//	          -round-deadline 2m -quorum 0.6 -cohort 2 -sched entropy \
//	          -strategy fedadam:lr=0.05 -tiers -tier-dist low:1,mid:2,full:1
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"fedfteds/internal/ckpt"
	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/device"
	"fedfteds/internal/experiments"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
}

// defaultTierSpec is the tier distribution -tiers uses when -tier-dist is
// not given: a paper-style mix of constrained, moderate and full devices.
const defaultTierSpec = "low:1,mid:2,full:1"

// serverConfig is the validated flag set of one fedserver run.
type serverConfig struct {
	addr          string
	numClients    int
	rounds        int
	fraction      float64
	epochs        int
	seed          int64
	roundDeadline time.Duration
	quorum        float64
	minUpdates    int // absolute quorum (-quorum above 1); 0 in fractional mode
	cohort        int
	scheduler     sched.Scheduler // nil when -cohort is 0 (full pool)
	schedName     string
	ckptDir       string
	strat         strategy.Strategy
	stratSpec     string
	tiers         bool
	tierDistSpec  string
	tierDist      *device.Distribution // nil when untiered
}

// tierSpec is the canonical tier-distribution rendering checkpoints record
// (empty when untiered).
func (c serverConfig) tierSpec() string {
	if c.tierDist == nil {
		return ""
	}
	return c.tierDist.String()
}

// taggedStrategy returns the strategy as checkpoints see it: nil for the
// default fedavg composition (whose checkpoints stay interchangeable with
// pre-strategy servers), the configured strategy otherwise.
func (c serverConfig) taggedStrategy() strategy.Strategy {
	if strategy.IsDefault(c.strat) {
		return nil
	}
	return c.strat
}

// parseFlags parses and fail-fast validates the command line: bad -quorum,
// -round-deadline, -cohort or -sched values are rejected here, before any
// client has a chance to join a doomed federation.
func parseFlags(args []string) (serverConfig, error) {
	var cfg serverConfig
	fs := flag.NewFlagSet("fedserver", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7070", "listen address")
	fs.IntVar(&cfg.numClients, "clients", 2, "number of clients to wait for")
	fs.IntVar(&cfg.rounds, "rounds", 10, "communication rounds")
	fs.Float64Var(&cfg.fraction, "fraction", 0.5, "selection fraction P_ds")
	fs.IntVar(&cfg.epochs, "epochs", 5, "local epochs E")
	fs.Int64Var(&cfg.seed, "seed", 1, "shared federation seed")
	fs.DurationVar(&cfg.roundDeadline, "round-deadline", 0, "per-round deadline; hung clients are dropped at expiry (0 = wait forever)")
	fs.Float64Var(&cfg.quorum, "quorum", 1, "updates a round needs to succeed: a fraction of the round's clients in (0, 1], or an absolute count when above 1")
	fs.IntVar(&cfg.cohort, "cohort", 0, "clients scheduled per round, 0 = the whole federation")
	fs.StringVar(&cfg.schedName, "sched", "uniform", "cohort scheduling policy: uniform, size, entropy, powerd, tier, avail:<inner>")
	fs.StringVar(&cfg.ckptDir, "ckpt-dir", "", "snapshot the federation after every round and warm-start from this directory's latest checkpoint")
	fs.StringVar(&cfg.stratSpec, "strategy", "fedavg", "federated-optimization strategy: fedavg, fedprox, fedavgm, fedadam, fedyogi, with optional parameters (fedadam:lr=0.05,beta1=0.9)")
	fs.BoolVar(&cfg.tiers, "tiers", false, "device-tier mode: clients train and ship only the layer groups their capability tier affords, aggregated per layer")
	fs.StringVar(&cfg.tierDistSpec, "tier-dist", "", "tier distribution \"tier:weight,...\" over "+strings.Join(device.TierNames(), "/")+" (implies -tiers; default "+defaultTierSpec+")")
	if err := fs.Parse(args); err != nil {
		return serverConfig{}, err
	}
	strat, err := strategy.Parse(cfg.stratSpec)
	if err != nil {
		return serverConfig{}, err
	}
	cfg.strat = strat
	if cfg.ckptDir != "" {
		// Fail fast on an unusable checkpoint directory: a server that can
		// train but not checkpoint would lose the federation it promised to
		// preserve.
		if err := os.MkdirAll(cfg.ckptDir, 0o755); err != nil {
			return serverConfig{}, fmt.Errorf("-ckpt-dir: %w", err)
		}
	}
	if cfg.quorum <= 0 {
		return serverConfig{}, fmt.Errorf("-quorum %v must be positive", cfg.quorum)
	}
	if cfg.roundDeadline < 0 {
		return serverConfig{}, fmt.Errorf("-round-deadline %v is negative", cfg.roundDeadline)
	}
	if cfg.numClients <= 0 {
		return serverConfig{}, fmt.Errorf("-clients %d must be positive", cfg.numClients)
	}
	if cfg.fraction <= 0 || cfg.fraction > 1 {
		return serverConfig{}, fmt.Errorf("-fraction %v outside (0, 1]", cfg.fraction)
	}
	if cfg.epochs <= 0 {
		return serverConfig{}, fmt.Errorf("-epochs %d must be positive", cfg.epochs)
	}
	if cfg.rounds <= 0 {
		return serverConfig{}, fmt.Errorf("-rounds %d must be positive", cfg.rounds)
	}
	if cfg.cohort < 0 {
		return serverConfig{}, fmt.Errorf("-cohort %d is negative", cfg.cohort)
	}
	if cfg.cohort > cfg.numClients {
		return serverConfig{}, fmt.Errorf("-cohort %d exceeds the federation size %d", cfg.cohort, cfg.numClients)
	}
	// A -quorum above 1 is an absolute update count. It must be an integer,
	// and it must be reachable: a quorum no round can ever meet — more
	// updates than the clients a round contacts — is rejected now, not
	// discovered as an eternal ErrQuorum at round 1.
	if cfg.quorum > 1 {
		if cfg.quorum != math.Trunc(cfg.quorum) {
			return serverConfig{}, fmt.Errorf("-quorum %v: values above 1 are absolute update counts and must be integers", cfg.quorum)
		}
		cfg.minUpdates, cfg.quorum = int(cfg.quorum), 0
		roundSize := cfg.numClients
		if cfg.cohort > 0 {
			roundSize = cfg.cohort
		}
		if cfg.minUpdates > roundSize {
			return serverConfig{}, fmt.Errorf("-quorum %d exceeds the %d clients a round can contact "+
				"(-cohort %d, -clients %d): no round could ever succeed",
				cfg.minUpdates, roundSize, cfg.cohort, cfg.numClients)
		}
	}
	if cfg.tierDistSpec != "" {
		cfg.tiers = true
	}
	if cfg.tiers {
		spec := cfg.tierDistSpec
		if spec == "" {
			spec = defaultTierSpec
		}
		dist, err := device.ParseDistribution(spec)
		if err != nil {
			return serverConfig{}, fmt.Errorf("-tier-dist: %w", err)
		}
		cfg.tierDist = dist
	}
	// The policy name is validated even with -cohort 0, so a typo surfaces
	// now and not on the day scheduling is switched on.
	scheduler, err := sched.Parse(cfg.schedName)
	if err != nil {
		return serverConfig{}, err
	}
	if cfg.cohort > 0 {
		cfg.scheduler = scheduler
	}
	return cfg, nil
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	l, err := comm.ListenTCP(cfg.addr)
	if err != nil {
		return err
	}
	defer l.Close()
	return serve(cfg, l)
}

// configTag fingerprints the server flags that shape the federation's
// training trajectory, so a checkpoint written under one configuration is
// never silently continued under another (the same refusal Runner applies).
// Quorum and deadline are included: they decide which client updates enter
// each aggregate; a non-default strategy contributes its Fingerprint (the
// default fedavg contributes nothing, keeping pre-strategy checkpoints
// resumable). Only -addr and -ckpt-dir stay out — where the federation
// listens and stores cannot change what it computes.
func (c serverConfig) configTag() uint64 {
	parts := []any{c.numClients, c.fraction, c.epochs, c.cohort, c.schedName,
		c.quorum, c.roundDeadline}
	if s := c.taggedStrategy(); s != nil {
		parts = append(parts, s.Fingerprint())
	}
	// Absolute quorum and tier distribution are appended only when set, so
	// untiered fractional-quorum servers keep their pre-tier tags — and
	// their committed checkpoints — unchanged.
	if c.minUpdates > 0 {
		parts = append(parts, fmt.Sprintf("minupdates:%d", c.minUpdates))
	}
	if c.tierDist != nil {
		parts = append(parts, "tiers:"+c.tierDist.String())
	}
	return core.TagConfig(parts...)
}

// restoreFederation warm-starts the server from the newest checkpoint in
// cfg.ckptDir, installing the saved global model, history, accounting and
// scheduler feedback. It returns the last completed round, or 0 (and no
// changes) when the directory holds no checkpoint yet. Validation is the
// shared core.RunState rule set, so the server refuses exactly what the
// simulator refuses: wrong seed, different configuration, a round beyond
// -rounds, an inconsistent history, or a mismatched scheduler.
func restoreFederation(cfg serverConfig, global *models.Model, hist *core.History,
	cumTrainSeconds *float64, tracker *sched.Tracker) (int, error) {
	snap, err := core.LoadLatestRunState(cfg.ckptDir)
	if errors.Is(err, ckpt.ErrNoCheckpoint) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if err := snap.ValidateFor(cfg.seed, cfg.rounds, cfg.configTag(), cfg.scheduler, cfg.taggedStrategy(), cfg.tierSpec()); err != nil {
		return 0, err
	}
	if err := snap.RestoreScheduler(cfg.scheduler); err != nil {
		return 0, err
	}
	if err := snap.RestoreStrategy(cfg.taggedStrategy()); err != nil {
		return 0, err
	}
	if err := core.RestoreModelState(global, snap.Model); err != nil {
		return 0, err
	}
	*hist = snap.Hist
	*cumTrainSeconds = snap.Acct.TrainSeconds
	tracker.Restore(snap.TrackerUtil, snap.TrackerSeconds)
	return snap.Round, nil
}

// snapshotFederation writes the post-aggregation state of one round into
// cfg.ckptDir, so a crashed server warm-starts from here instead of
// discarding the federation's progress.
func snapshotFederation(cfg serverConfig, round int, global *models.Model, hist core.History,
	cumTrainSeconds float64, tracker *sched.Tracker) error {
	snap := &core.RunState{
		Seed:      cfg.seed,
		ConfigTag: cfg.configTag(),
		Round:     round,
		Model:     core.SnapshotModelState(global),
		Hist:      hist,
		Acct:      simtime.AccountantState{TrainSeconds: cumTrainSeconds},
	}
	snap.TrackerUtil, snap.TrackerSeconds = tracker.Export()
	if err := snap.CaptureScheduler(cfg.scheduler); err != nil {
		return err
	}
	snap.CaptureStrategy(cfg.taggedStrategy())
	snap.TierSpec = cfg.tierSpec()
	return core.SaveRunState(ckpt.Path(cfg.ckptDir, round), snap)
}

// serve drives one federation on an established listener. With -ckpt-dir it
// snapshots after every aggregated round and warm-starts from the latest
// checkpoint, so a crashed-and-restarted server resumes the federation where
// it stopped (clients reconnect and follow the server's round numbering).
func serve(cfg serverConfig, l comm.Listener) error {
	engineCfg := comm.EngineConfig{RoundDeadline: cfg.roundDeadline, Quorum: cfg.quorum,
		MinUpdates: cfg.minUpdates}
	if err := engineCfg.Validate(); err != nil {
		return err
	}

	// Build the shared world: domains, pretrained global model, test set.
	world, err := NewWorld(cfg.seed, cfg.numClients)
	if err != nil {
		return err
	}
	global := world.Global
	commGroups := global.TrainableGroupNames()

	// Report rounds through the same History the in-process simulator
	// produces, so distributed and simulated runs are directly comparable.
	var hist core.History
	var cumTrainSeconds float64
	tracker := sched.NewTracker()
	startRound := 0
	if cfg.ckptDir != "" {
		startRound, err = restoreFederation(cfg, global, &hist, &cumTrainSeconds, tracker)
		if err != nil {
			return fmt.Errorf("warm-start from %s: %w", cfg.ckptDir, err)
		}
		if startRound > 0 {
			log.Printf("warm-start: resuming after round %d from %s", startRound, cfg.ckptDir)
		}
	}

	log.Printf("listening on %s, waiting for %d clients", l.Addr(), cfg.numClients)
	sess, err := comm.AcceptClients(l, cfg.numClients, cfg.rounds)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Shutdown("done"); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	log.Printf("federation ready: clients %v, strategy %s", sess.ClientIDs(), cfg.strat.Fingerprint())

	engine, err := comm.NewRoundEngine(sess, engineCfg)
	if err != nil {
		return err
	}

	// The strategy weighs each streamed update (absorbing the fixed
	// selected-size weighting) and later applies the weighted average to
	// the global model through its server optimizer. The one-element
	// scratch keeps the streaming path allocation-light.
	var (
		upScratch [1]strategy.Update
		wScratch  [1]float64
	)
	weigh := func(u comm.ClientUpdate) (float64, error) {
		upScratch[0] = strategy.Update{
			ClientID:    u.ClientID,
			NumSelected: u.NumSelected,
			LocalSize:   sess.LocalSize(u.ClientID),
		}
		if err := cfg.strat.WeighUpdates(upScratch[:], wScratch[:]); err != nil {
			return 0, err
		}
		return wScratch[0], nil
	}

	// In tier mode clients ship only the groups their capability affords, so
	// aggregation goes per layer: each tensor is averaged over exactly the
	// clients that covered it, and uncovered tensors fall back to the current
	// global state. Finish resets the aggregator, so one instance serves every
	// round. Untiered federations keep the legacy whole-state aggregator and
	// its exact semantics.
	var maskedAgg *comm.MaskedStreamAggregator
	if cfg.tierDist != nil {
		layout, err := global.GroupStateLayout(commGroups)
		if err != nil {
			return err
		}
		if maskedAgg, err = comm.NewMaskedStreamAggregator(weigh, commGroups, layout); err != nil {
			return err
		}
	}

	for round := startRound + 1; round <= cfg.rounds; round++ {
		stateTs, err := global.GroupStateTensors(commGroups)
		if err != nil {
			return err
		}
		blob, err := comm.EncodeTensors(stateTs)
		if err != nil {
			return err
		}

		// Schedule the round's cohort from the live clients; with -cohort 0
		// the whole federation trains, as it always did.
		live := sess.ClientIDs()
		cohort, policy := live, ""
		if cfg.scheduler != nil {
			cohort = scheduleCohort(cfg, tracker, sess, round, live)
			policy = cfg.scheduler.Name()
		}

		// Stream each update into the weighted sum as it arrives: the
		// server holds one decoded state at a time, O(state) not O(N·state).
		agg := comm.NewWeightedStreamAggregator(weigh)
		fold := agg.Add
		if maskedAgg != nil {
			fold = maskedAgg.Add
		}
		var roundTrainSeconds, lossSum float64
		out, err := engine.RunCohort(comm.RoundStart{
			Round:          round,
			State:          blob,
			Groups:         commGroups,
			SelectFraction: cfg.fraction,
			LocalEpochs:    cfg.epochs,
		}, cohort, func(u comm.ClientUpdate) error {
			if err := fold(u); err != nil {
				return err
			}
			roundTrainSeconds += u.TrainSeconds
			lossSum += u.TrainLoss
			tracker.ObserveUpdate(u.ClientID, u.MeanEntropy, u.TrainLoss, u.TrainSeconds)
			return nil
		})
		logFailures(out)
		if err != nil {
			return err
		}
		// A timed-out client took at least the whole deadline; record that so
		// time-driven policies stop treating a hung client as instant.
		for _, id := range out.TimedOut {
			tracker.ObserveTimeout(id, cfg.roundDeadline.Seconds())
		}
		var fused []*tensor.Tensor
		if maskedAgg != nil {
			fused, err = maskedAgg.Finish(stateTs)
		} else {
			fused, err = agg.Finish()
		}
		if err != nil {
			return err
		}
		// stateTs are live views of the global model's groups — the
		// strategy's server optimizer folds the weighted average into them
		// (fedavg overwrites, exactly the pre-strategy behavior).
		if err := cfg.strat.ApplyAggregate(stateTs, fused); err != nil {
			return fmt.Errorf("strategy %s: round %d: %w", cfg.strat.Name(), round, err)
		}

		acc, err := metrics.Accuracy(global, world.Test)
		if err != nil {
			return err
		}
		cumTrainSeconds += roundTrainSeconds
		hist.Records = append(hist.Records, core.RoundRecord{
			Round:           round,
			CohortSize:      len(cohort),
			SchedPolicy:     policy,
			Participants:    len(out.Reported),
			TestAccuracy:    acc,
			MeanTrainLoss:   lossSum / float64(len(out.Reported)),
			CumTrainSeconds: cumTrainSeconds,
		})
		if acc > hist.BestAccuracy {
			hist.BestAccuracy = acc
		}
		hist.FinalAccuracy = acc
		log.Printf("round %d/%d: cohort %d/%d, %d reported (%d timed out, %d dropped, %d late), test accuracy %.2f%%",
			round, cfg.rounds, len(cohort), len(live),
			len(out.Reported), len(out.TimedOut), len(out.Dropped), out.LateDiscarded, 100*acc)

		if cfg.ckptDir != "" {
			if err := snapshotFederation(cfg, round, global, hist, cumTrainSeconds, tracker); err != nil {
				return fmt.Errorf("checkpoint round %d: %w", round, err)
			}
		}
	}
	hist.TotalTrainSeconds = cumTrainSeconds
	if eff, err := hist.LearningEfficiency(); err == nil {
		log.Printf("run complete: best accuracy %.2f%%, total client time %.1fs, learning efficiency %.2f %%/s",
			100*hist.BestAccuracy, hist.TotalTrainSeconds, eff)
	} else {
		log.Printf("run complete: best accuracy %.2f%%", 100*hist.BestAccuracy)
	}
	return nil
}

// scheduleCohort builds the candidate descriptors for the live clients and
// asks the policy for this round's cohort. The candidate's projected time is
// the client's last reported round seconds (zero before first contact), its
// size the Hello-reported |D_i|, and its utility the tracker's latest value.
func scheduleCohort(cfg serverConfig, tracker *sched.Tracker, sess *comm.ServerSession, round int, live []int) []int {
	cands := make([]sched.Candidate, len(live))
	for i, id := range live {
		cands[i] = sched.Candidate{
			ClientID:         id,
			DataSize:         sess.LocalSize(id),
			ProjectedSeconds: tracker.Seconds(id),
			Available:        true,
			Tier:             sess.Tier(id),
		}
	}
	tracker.Stamp(cands)
	k := cfg.cohort
	if k > len(live) {
		k = len(live)
	}
	rng := tensor.NewRand(uint64(cfg.seed), uint64(round), sched.StreamTag)
	return cfg.scheduler.Schedule(round, cands, k, rng)
}

// logFailures reports a round's failed clients in deterministic order.
func logFailures(out comm.RoundOutcome) {
	ids := make([]int, 0, len(out.Failures))
	for id := range out.Failures {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		log.Printf("round %d: client %d: %v", out.Round, id, out.Failures[id])
	}
}

// World is the deterministic shared setup both binaries derive from -seed.
type World struct {
	// Global is the pretrained global model with the paper's moderate
	// finetune part set.
	Global *models.Model
	// Test is the held-out evaluation set.
	Test *data.Dataset
}

// NewWorld builds the shared federation world for the distributed demo:
// standard domain suite, a source-pretrained model, and the test set.
func NewWorld(seed int64, numClients int) (*World, error) {
	env, err := experiments.NewEnv(experiments.ScaleFast, seed)
	if err != nil {
		return nil, err
	}
	global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		return nil, err
	}
	if err := global.SetFinetunePart(models.FinetuneModerate); err != nil {
		return nil, err
	}
	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 31337)
	if err != nil {
		return nil, err
	}
	return &World{Global: global, Test: fed.Test}, nil
}
