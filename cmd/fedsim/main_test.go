package main

import (
	"os"
	"strings"
	"testing"

	"fedfteds/internal/experiments"
)

func testEnv(t *testing.T) *experiments.Env {
	t.Helper()
	env, err := experiments.NewEnv(experiments.ScaleSmoke, 2)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestRunExperimentDispatch(t *testing.T) {
	env := testEnv(t)
	// The cheap experiments exercise the full dispatch surface; table2/3
	// variants are covered by the experiments package tests.
	for _, tt := range []struct {
		id   string
		want string
	}{
		{id: "fig1", want: "entropy distribution"},
		{id: "table1", want: "Diri(0.1)"},
		{id: "fig2", want: "CKA"},
		{id: "fig3", want: "CKA"},
		{id: "table4", want: "cross-domain"},
		{id: "fig10a", want: "fine-tuned"},
		{id: "sched", want: "Scheduler comparison"},
		{id: "strategies", want: "Strategy comparison"},
	} {
		t.Run(tt.id, func(t *testing.T) {
			out, err := runExperiment(env, tt.id, schedOptions{}, asyncOptions{}, nil, nil, nil, experiments.FleetOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, tt.want) {
				t.Fatalf("output of %s missing %q:\n%s", tt.id, tt.want, out)
			}
		})
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	env := testEnv(t)
	if _, err := runExperiment(env, "table99", schedOptions{}, asyncOptions{}, nil, nil, nil, experiments.FleetOptions{}); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "enormous"}); err == nil {
		t.Fatal("expected error for unknown scale")
	}
	if err := run([]string{"-exp", "nope", "-scale", "smoke"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	// Scheduler flags fail fast, before any experiment runs.
	if err := run([]string{"-exp", "sched", "-scale", "smoke", "-sched", "fifo"}); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if err := run([]string{"-exp", "sched", "-scale", "smoke", "-cohort", "-2"}); err == nil {
		t.Fatal("expected error for negative cohort")
	}
	// Strategy specs fail fast too, whatever experiments run.
	if err := run([]string{"-exp", "strategies", "-scale", "smoke", "-strategy", "sgd"}); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
	if err := run([]string{"-exp", "strategies", "-scale", "smoke", "-strategy", "fedadam:lr=0"}); err == nil {
		t.Fatal("expected error for invalid strategy parameter")
	}
	// Unwritable profile paths fail fast too.
	if err := run([]string{"-exp", "fig1", "-scale", "smoke", "-cpuprofile", "/nonexistent-dir/cpu.out"}); err == nil {
		t.Fatal("expected error for unwritable cpuprofile path")
	}
	if err := run([]string{"-exp", "fig1", "-scale", "smoke", "-memprofile", "/nonexistent-dir/mem.out"}); err == nil {
		t.Fatal("expected error for unwritable memprofile path")
	}
}

// TestRunFleetFlags pins the virtual-fleet CLI surface: the eager capacity
// fail-fast, trace validation, and the -fleet day run end to end.
func TestRunFleetFlags(t *testing.T) {
	// A million clients without -fleet must be refused with the actionable
	// hint, before anything trains.
	err := run([]string{"-scale", "smoke", "-clients", "1000000"})
	if err == nil || !strings.Contains(err.Error(), "-fleet") {
		t.Fatalf("oversized eager population: err %v, want a -fleet hint", err)
	}
	// Negative populations and malformed traces fail fast too.
	if err := run([]string{"-scale", "smoke", "-clients", "-5"}); err == nil {
		t.Fatal("expected error for negative -clients")
	}
	bad := t.TempDir() + "/bad.trace"
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fleet", "-scale", "smoke", "-clients", "64", "-trace", bad}); err == nil {
		t.Fatal("expected error for malformed -trace")
	}
	// The real thing: -fleet selects the simulated day by default.
	if err := run([]string{"-fleet", "-scale", "smoke", "-clients", "64", "-cohort", "4"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFleetAsyncDay drives the buffered-async day through the CLI.
func TestRunFleetAsyncDay(t *testing.T) {
	if err := run([]string{"-fleet", "-scale", "smoke", "-clients", "64", "-cohort", "6", "-buffer", "3"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFleetCompareExperiment runs the -exp fleet sweep through the CLI.
func TestRunFleetCompareExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fleet", "-scale", "smoke", "-clients", "48", "-cohort", "4"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunWritesProfiles exercises the -cpuprofile/-memprofile plumbing end to
// end on a tiny experiment so future perf PRs can be diagnosed without code
// edits.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.out", dir+"/mem.out"
	if err := run([]string{"-exp", "fig1", "-scale", "smoke", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRunSchedSinglePolicy runs the sched experiment narrowed to one policy
// through the real CLI path, sharing the policy vocabulary with fedserver.
func TestRunSchedSinglePolicy(t *testing.T) {
	if err := run([]string{"-exp", "sched", "-scale", "smoke", "-sched", "powerd", "-cohort", "2"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunStrategiesSingleSpec runs the strategies experiment narrowed to one
// parameterized spec through the real CLI path, sharing the strategy
// vocabulary with fedserver.
func TestRunStrategiesSingleSpec(t *testing.T) {
	if err := run([]string{"-exp", "strategies", "-scale", "smoke", "-strategy", "fedadam:lr=0.05"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsBadCheckpointFlags pins the fail-fast validation of the
// -ckpt-*/-resume flags: inconsistent combinations and unusable directories
// must fail before any experiment trains.
func TestRunRejectsBadCheckpointFlags(t *testing.T) {
	if err := run([]string{"-exp", "fig1", "-scale", "smoke", "-ckpt-every", "-1"}); err == nil {
		t.Fatal("expected error for negative -ckpt-every")
	}
	if err := run([]string{"-exp", "fig1", "-scale", "smoke", "-ckpt-every", "2"}); err == nil {
		t.Fatal("expected error for -ckpt-every without -ckpt-dir")
	}
	if err := run([]string{"-exp", "fig1", "-scale", "smoke", "-resume"}); err == nil {
		t.Fatal("expected error for -resume without -ckpt-dir")
	}
	// A directory path below an existing file cannot be created.
	bad := t.TempDir() + "/occupied"
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig1", "-scale", "smoke", "-ckpt-dir", bad + "/sub"}); err == nil {
		t.Fatal("expected error for uncreatable -ckpt-dir")
	}
}

// TestRunWithCheckpointResume drives the full CLI path twice on a tiny
// experiment sharing one artifact store: the second invocation resumes the
// first's stored runs and must succeed.
func TestRunWithCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "sched", "-scale", "smoke", "-sched", "uniform", "-cohort", "2", "-ckpt-dir", dir}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no artifacts stored")
	}
	if err := run(append(args, "-resume")); err != nil {
		t.Fatal(err)
	}
}
