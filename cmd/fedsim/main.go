// Command fedsim runs the paper-reproduction experiments and prints each
// table or figure as text.
//
// Usage:
//
//	fedsim -exp table2 -scale fast -seed 1
//	fedsim -exp all -scale full
//	fedsim -exp sched -scale fast -cohort 6 -sched entropy
//	fedsim -exp all -scale full -ckpt-dir runs/ -resume
//
// With -ckpt-dir every federated run checkpoints into its own subdirectory
// (every -ckpt-every rounds, default 1); -resume makes an interrupted sweep
// pick up where it stopped — finished runs reload instantly and partial
// runs continue mid-run, bit-identical to an uninterrupted sweep.
//
// Experiment ids: table1 table2 table3 table4 fig1 fig2 fig3 fig4 fig5 fig6
// fig7 fig8 fig9 fig10a fig10b fig10c ablations sched strategies tiers async
// codecs fleet fleetday all. See DESIGN.md for the experiment index.
//
// The sched experiment compares cohort-scheduling policies (accuracy vs
// cumulative client-seconds at a fixed cohort size K). -sched narrows it to
// one policy — the names are the same ones fedserver accepts (uniform,
// size, entropy, powerd, avail:<inner>) — and -cohort sets K (0 picks a
// scale-appropriate default).
//
// The strategies experiment compares federated-optimization strategies
// (fedavg, fedprox, fedavgm, fedadam, fedyogi) on one federation; -strategy
// narrows it to one spec, parameters included ("fedadam:lr=0.05"), using
// the same names fedserver accepts.
//
// The tiers experiment sweeps device-tier distributions on one federation —
// homogeneous capability classes and a heterogeneous mix — reporting each
// row's accuracy, simulated client-seconds, and the uplink bytes per-client
// partial training saves. -tier-dist narrows it to one distribution spec
// ("low:1,mid:2,full:1"), the same format fedserver and fedclient accept.
//
// The codecs experiment sweeps uplink codecs (identity, float16, int8,
// topk:0.05) on one federation, round-tripping every client update through
// the codec exactly as the distributed wire path would, and reports each
// row's compression ratio, uplink traffic and accuracy against the identity
// baseline. -codec narrows it to one spec, the same names fedserver and
// fedclient accept.
//
// The async experiment compares the synchronous engine against buffered
// asynchronous (FedBuff-style) aggregation over a simulated-time event
// queue: the server aggregates as soon as -buffer updates arrive, stale
// updates are discounted by the -staleness weigher (identity, invsqrt,
// poly:alpha=A — the same specs fedserver accepts) and optionally discarded
// past -max-staleness versions.
//
// The fleet experiments simulate populations far beyond what fits in memory
// by keeping clients virtual — per-client seeds plus descriptors — and
// materializing datasets only while a client is in the cohort:
//
//	fedsim -exp fleet -scale fast                 policy sweep over a virtual fleet
//	fedsim -fleet -clients 1000000                a 24-round simulated day, 1M clients
//	fedsim -fleet -clients 1000000 -buffer 32     the same day, overlapping rounds
//	fedsim -fleet -clients 50000 -trace day.trace replayed availability
//
// -clients sets the population (0 = scale default), -trace replays a
// "fleettrace v1" availability file (default: a built-in diurnal day/night
// pattern), and -sched sets the cohort policy (default cluster:uniform, the
// similarity-aware scheduler). Without -fleet, a large -clients value that
// would not fit in memory eagerly is refused up front with an estimate.
// The synchronous day run honors -ckpt-dir/-resume like every experiment, so
// a 1M-client day can be killed and resumed mid-day bit-identically.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fedfteds/internal/comm"
	"fedfteds/internal/device"
	"fedfteds/internal/experiments"
	"fedfteds/internal/fleet"
	"fedfteds/internal/sched"
	"fedfteds/internal/strategy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fedsim", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "experiment id (table1..table4, fig1..fig10c, ablations, sched, strategies, tiers, async, codecs, fleet, fleetday, all)")
	scaleFlag := fs.String("scale", "fast", "experiment scale: smoke, fast or full")
	seedFlag := fs.Int64("seed", 1, "run seed")
	schedFlag := fs.String("sched", "all", "sched experiment: one policy (uniform, size, entropy, powerd, avail:<inner>, cluster:<inner>) or all; also the fleetday cohort policy")
	cohortFlag := fs.Int("cohort", 0, "sched experiment: cohort size K, 0 = scale default")
	bufferFlag := fs.Int("buffer", 0, "async experiment: aggregation buffer M, 0 = scale default (about a third of the pool)")
	maxStaleFlag := fs.Int("max-staleness", -1, "async experiment: discard updates staler than this many versions (negative keeps all)")
	stalenessFlag := fs.String("staleness", "all", "async experiment: one staleness weigher ("+strings.Join(strategy.StalenessNames(), ", ")+", with optional parameters) or all")
	strategyFlag := fs.String("strategy", "all", "strategies experiment: one strategy spec (fedavg, fedprox, fedavgm, fedadam, fedyogi, with optional parameters) or all")
	tierDistFlag := fs.String("tier-dist", "all", "tiers experiment: one tier distribution spec (\"tier:weight,...\" over "+strings.Join(device.TierNames(), "/")+") or all")
	codecFlag := fs.String("codec", "all", "codecs experiment: one uplink codec spec ("+strings.Join(comm.CodecNames(), ", ")+") or all")
	clientsFlag := fs.Int("clients", 0, "fleet experiments: virtual fleet population (0 = scale default)")
	fleetFlag := fs.Bool("fleet", false, "run the virtual-fleet simulated day (O(cohort) memory; default experiment becomes fleetday)")
	traceFlag := fs.String("trace", "", "fleet experiments: replay availability from a fleettrace v1 file (default: built-in diurnal trace)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	ckptDir := fs.String("ckpt-dir", "", "checkpoint artifact store: every federated run checkpoints into its own subdirectory")
	ckptEvery := fs.Int("ckpt-every", 0, "rounds between checkpoints (default 1; needs -ckpt-dir)")
	resume := fs.Bool("resume", false, "resume each run from its latest stored checkpoint (needs -ckpt-dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Checkpoint flags fail fast, before any experiment trains: a bad
	// directory or an inconsistent combination must not surface an hour in.
	if *ckptEvery < 0 {
		return fmt.Errorf("-ckpt-every %d is negative", *ckptEvery)
	}
	if *ckptEvery > 0 && *ckptDir == "" {
		return fmt.Errorf("-ckpt-every %d without -ckpt-dir", *ckptEvery)
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume without -ckpt-dir")
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("-ckpt-dir: %w", err)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fedsim: memprofile:", err)
			}
			f.Close()
		}()
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	// Fail on a bad policy name, cohort or strategy spec now, whatever
	// experiments run.
	schedOpts := schedOptions{cohort: *cohortFlag}
	if *schedFlag != "all" {
		if _, err := sched.Parse(*schedFlag); err != nil {
			return err
		}
		schedOpts.policies = []string{*schedFlag}
	}
	if *cohortFlag < 0 {
		return fmt.Errorf("-cohort %d is negative", *cohortFlag)
	}
	asyncOpts := asyncOptions{buffer: *bufferFlag, maxStaleness: *maxStaleFlag}
	if *bufferFlag < 0 {
		return fmt.Errorf("-buffer %d is negative", *bufferFlag)
	}
	if *stalenessFlag != "all" {
		if _, err := strategy.ParseStaleness(*stalenessFlag); err != nil {
			return err
		}
		asyncOpts.weighers = []string{*stalenessFlag}
	}
	var strategySpecs []string
	if *strategyFlag != "all" {
		if _, err := strategy.Parse(*strategyFlag); err != nil {
			return err
		}
		strategySpecs = []string{*strategyFlag}
	}
	var tierSpecs []string
	if *tierDistFlag != "all" {
		if _, err := device.ParseDistribution(*tierDistFlag); err != nil {
			return err
		}
		tierSpecs = []string{*tierDistFlag}
	}
	var codecSpecs []string
	if *codecFlag != "all" {
		if _, err := comm.ParseCodec(*codecFlag); err != nil {
			return err
		}
		codecSpecs = []string{*codecFlag}
	}
	if *clientsFlag < 0 {
		return fmt.Errorf("-clients %d is negative", *clientsFlag)
	}
	if *traceFlag != "" {
		// Parse failures surface now, not after an hour of other experiments.
		if _, err := fleet.LoadTrace(*traceFlag); err != nil {
			return err
		}
	}
	// Without -fleet the day run materializes every client eagerly; refuse
	// populations that cannot fit instead of letting the OOM killer explain.
	const eagerClientBudget = 2 << 30
	if !*fleetFlag && *clientsFlag > 0 {
		if est := experiments.FleetEagerBytes(*clientsFlag); est > eagerClientBudget {
			return fmt.Errorf("materializing %d clients eagerly needs ~%.1f GiB of client data "+
				"(budget %d GiB); pass -fleet to keep them virtual with O(cohort) residency",
				*clientsFlag, float64(est)/(1<<30), eagerClientBudget>>30)
		}
	}
	fleetOpts := experiments.FleetOptions{
		Clients: *clientsFlag, Cohort: *cohortFlag, TracePath: *traceFlag,
		Buffer: *bufferFlag, MaxStaleness: *maxStaleFlag, Eager: !*fleetFlag,
	}
	if *schedFlag != "all" {
		fleetOpts.Policy = *schedFlag
	}
	env, err := experiments.NewEnv(scale, *seedFlag)
	if err != nil {
		return err
	}
	if err := env.SetCheckpointPolicy(experiments.CheckpointPolicy{
		Dir: *ckptDir, Every: *ckptEvery, Resume: *resume,
	}); err != nil {
		return err
	}

	ids := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		// table2+figs and table3+figs are composite ids that run the
		// underlying experiment once and render every artifact from it.
		ids = []string{"fig1", "table1", "fig2", "fig3", "table2+figs",
			"table3+figs", "table4", "fig10a", "fig10b", "fig10c", "ablations",
			"sched", "strategies", "tiers", "async", "codecs", "fleet"}
		if *fleetFlag || *clientsFlag > 0 {
			// -fleet (or an explicit population) asks for the simulated day,
			// not the whole paper sweep.
			ids = []string{"fleetday"}
		}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := runExperiment(env, strings.TrimSpace(id), schedOpts, asyncOpts, strategySpecs, tierSpecs, codecSpecs, fleetOpts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v at scale %s]\n\n", id, time.Since(start).Round(time.Millisecond), scale)
	}
	return nil
}

// schedOptions parameterizes the scheduler-comparison experiment.
type schedOptions struct {
	// policies narrows the comparison; nil runs the standard lineup.
	policies []string
	// cohort is K; 0 picks the scale default.
	cohort int
}

// asyncOptions parameterizes the buffered-async comparison experiment.
type asyncOptions struct {
	// buffer is the aggregation trigger M; 0 picks the scale default.
	buffer int
	// maxStaleness is the discard cap; negative keeps every update.
	maxStaleness int
	// weighers narrows the comparison; nil runs the standard lineup.
	weighers []string
}

// runExperiment dispatches one experiment id. Figure ids that share a run
// with a table (fig5..fig9) re-run the underlying table at this scale.
func runExperiment(env *experiments.Env, id string, schedOpts schedOptions, asyncOpts asyncOptions, strategySpecs, tierSpecs, codecSpecs []string, fleetOpts experiments.FleetOptions) (string, error) {
	switch id {
	case "fleet":
		// The policy sweep is always fleet-backed (the eager baseline is
		// fleetday's job) and sized by scale unless -clients overrides.
		opts := fleetOpts
		opts.Eager = false
		res, err := experiments.RunFleetCompare(env, opts)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fleetday":
		res, err := experiments.RunFleetDay(env, fleetOpts)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "codecs":
		res, err := experiments.RunCodecs(env, codecSpecs)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "sched":
		res, err := experiments.RunSchedCompare(env, schedOpts.policies, schedOpts.cohort)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "async":
		res, err := experiments.RunAsyncCompare(env, asyncOpts.buffer, asyncOpts.maxStaleness, asyncOpts.weighers)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "strategies":
		res, err := experiments.RunStrategyCompare(env, strategySpecs)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "tiers":
		res, err := experiments.RunTiers(env, tierSpecs)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "table2+figs":
		res, err := experiments.RunTable2(env)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString(res.Render())
		b.WriteByte('\n')
		for _, ds := range resultDatasets(env) {
			for _, alpha := range []float64{0.1, 0.5} {
				b.WriteString(res.RenderFigure5(ds, alpha))
				b.WriteByte('\n')
				b.WriteString(res.RenderFigure6(ds, alpha))
				b.WriteByte('\n')
			}
		}
		return b.String(), nil
	case "table3+figs":
		res, err := experiments.RunTable3(env)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString(res.Render())
		b.WriteByte('\n')
		for _, ds := range resultDatasets(env) {
			for _, alpha := range []float64{0.1, 0.5} {
				b.WriteString(res.RenderFigure7(ds, alpha))
				b.WriteByte('\n')
				b.WriteString(res.RenderFigure8(ds, alpha))
				b.WriteByte('\n')
				b.WriteString(res.RenderFigure9(ds, alpha))
				b.WriteByte('\n')
			}
		}
		return b.String(), nil
	case "table1":
		res, err := experiments.RunTable1(env)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "table2":
		res, err := experiments.RunTable2(env)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig5", "fig6":
		res, err := experiments.RunTable2(env)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, ds := range []string{"synthc10", env.Suite.Target100.Spec.Name} {
			for _, alpha := range []float64{0.1, 0.5} {
				if id == "fig5" {
					b.WriteString(res.RenderFigure5(dsName(env, ds), alpha))
				} else {
					b.WriteString(res.RenderFigure6(dsName(env, ds), alpha))
				}
				b.WriteByte('\n')
			}
		}
		return b.String(), nil
	case "table3":
		res, err := experiments.RunTable3(env)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig7", "fig8", "fig9":
		res, err := experiments.RunTable3(env)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, ds := range []string{"synthc10", env.Suite.Target100.Spec.Name} {
			for _, alpha := range []float64{0.1, 0.5} {
				switch id {
				case "fig7":
					b.WriteString(res.RenderFigure7(dsName(env, ds), alpha))
				case "fig8":
					b.WriteString(res.RenderFigure8(dsName(env, ds), alpha))
				case "fig9":
					b.WriteString(res.RenderFigure9(dsName(env, ds), alpha))
				}
				b.WriteByte('\n')
			}
		}
		return b.String(), nil
	case "table4":
		res, err := experiments.RunTable4(env)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig1":
		res, err := experiments.RunFig1(env)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig2", "fig4":
		res, err := experiments.RunCKA(env, 0.1)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig3":
		res, err := experiments.RunCKA(env, 0.5)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig10a":
		res, err := experiments.RunFig10a(env)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig10a-indomain":
		res, err := experiments.RunFig10aInDomain(env)
		if err != nil {
			return "", err
		}
		return "[in-domain pretraining variant]\n" + res.Render(), nil
	case "fig10b":
		res, err := experiments.RunFig10b(env)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig10c":
		res, err := experiments.RunFig10c(env)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "ablations":
		var b strings.Builder
		for _, fn := range []func(*experiments.Env) (*experiments.AblationResult, error){
			experiments.RunAblationBatchEntropy,
			experiments.RunAblationAggWeighting,
			experiments.RunAblationAcquisition,
		} {
			res, err := fn(env)
			if err != nil {
				return "", err
			}
			b.WriteString(res.Render())
			b.WriteByte('\n')
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("unknown experiment id %q", id)
	}
}

// dsName maps the canonical id to the scale-specific target-100 name.
func dsName(env *experiments.Env, id string) string {
	if id == "synthc10" {
		return "synthc10"
	}
	t100, err := env.Target100()
	if err != nil {
		return id
	}
	return t100.Spec.Name
}

// resultDatasets lists the two close-domain dataset names at this scale.
func resultDatasets(env *experiments.Env) []string {
	return []string{"synthc10", dsName(env, "synthc100")}
}
