// Allocation regression guards for the zero-allocation training hot path:
// once the layer workspaces, loss scratch and optimizer buffers are warm, a
// full train step (forward, loss+grad, backward, SGD step) must not allocate.
package fedfteds_test

import (
	"math/rand"
	"runtime"
	"testing"

	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/device"
	"fedfteds/internal/fleet"
	"fedfteds/internal/models"
	"fedfteds/internal/nn"
	"fedfteds/internal/opt"
	"fedfteds/internal/partition"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
	"fedfteds/internal/tensor"
)

// trainStepAllocs builds a model from spec, warms its workspaces, and returns
// the steady-state allocations of one train step.
func trainStepAllocs(t *testing.T, spec models.Spec, batchShape []int) float64 {
	t.Helper()
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	x := tensor.New(batchShape...)
	x.FillNormal(rng, 0, 1)
	labels := make([]int, batchShape[0])
	for i := range labels {
		labels[i] = i % spec.NumClasses
	}
	sgd, err := opt.NewSGD(opt.SGDConfig{LR: 0.05, Momentum: 0.5}, m.TrainableParams())
	if err != nil {
		t.Fatal(err)
	}
	loss := nn.SoftmaxCrossEntropy{}
	var ls nn.LossScratch
	step := func() {
		logits := m.Forward(x, true)
		_, dl, err := loss.LossInto(&ls, logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		m.Backward(dl)
		sgd.Step()
	}
	// Warm the workspace caches before measuring (AllocsPerRun adds one more
	// warmup run of its own).
	for i := 0; i < 3; i++ {
		step()
	}
	return testing.AllocsPerRun(20, step)
}

func TestMLPTrainStepZeroAllocs(t *testing.T) {
	spec := models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{64},
		NumClasses: 10,
		Hidden:     64,
		InitSeed:   1,
	}
	if allocs := trainStepAllocs(t, spec, []int{32, 64}); allocs > 0 {
		t.Fatalf("MLP train step allocates %v times in steady state, want 0", allocs)
	}
}

func TestWRNTrainStepZeroAllocs(t *testing.T) {
	spec := models.Spec{
		Arch:        models.ArchWRN,
		InputShape:  []int{3, 16, 16},
		NumClasses:  10,
		Depth:       10,
		WidthFactor: 1,
		InitSeed:    1,
	}
	if allocs := trainStepAllocs(t, spec, []int{4, 3, 16, 16}); allocs > 0 {
		t.Fatalf("WRN train step allocates %v times in steady state, want 0", allocs)
	}
}

func TestBatchIterSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(100, 8)
	x.FillNormal(rng, 0, 1)
	y := make([]int, 100)
	for i := range y {
		y[i] = i % 4
	}
	ds, err := data.NewDataset(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	it, err := data.NewBatchIter(ds, []int{3, 7, 11, 12, 20, 33, 41, 59, 60, 61, 77, 90}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up one epoch.
	it.Reset(rng)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		it.Reset(rng)
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("BatchIter epoch allocates %v times in steady state, want 0", allocs)
	}
}

// TestScheduledRoundAllocBudget guards the per-round allocation budget of a
// fully scheduled federated round at the Runner level: candidate, weight,
// participant and aggregate buffers are runner scratch, so the marginal
// cost of one more round is a small, pool-size-independent handful of
// allocations (per-round rng derivations, the policy's cohort slices, the
// history record). It is measured differentially — a 6-round run versus a
// 2-round run over identical federations — so one-time warm-up (replicas,
// layer workspaces) cancels out.
func TestScheduledRoundAllocBudget(t *testing.T) {
	const clients = 8
	buildFederation := func() ([]*core.Client, *data.Dataset) {
		suite, err := data.NewStandardSuite(11)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(12))
		pool, err := suite.Target10.GenerateBalanced(clients*40, rng)
		if err != nil {
			t.Fatal(err)
		}
		test, err := suite.Target10.GenerateBalanced(100, rng)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := partition.Dirichlet(pool.Y, clients, 0.5, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]*core.Client, clients)
		for i, idxs := range parts {
			ds, err := pool.Subset(idxs)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = &core.Client{ID: i, Data: ds, Device: simtime.Device{FLOPSRate: 1e9}}
		}
		return out, test
	}
	runAllocs := func(rounds int) float64 {
		cl, test := buildFederation()
		m, err := models.Build(models.Spec{
			Arch:       models.ArchMLP,
			InputShape: []int{64},
			NumClasses: 10,
			Hidden:     32,
			InitSeed:   13,
		})
		if err != nil {
			t.Fatal(err)
		}
		runner, err := core.NewRunner(core.Config{
			Rounds: rounds, LocalEpochs: 1, BatchSize: 16, LR: 0.1,
			Selector: selection.Entropy{Temperature: 0.1}, SelectFraction: 0.5,
			CohortSize: 3, EvalEvery: rounds, Parallelism: 1, Seed: 9,
		}, m, cl, test)
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			if _, err := runner.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := runAllocs(2), runAllocs(6)
	perRound := (long - short) / 4
	// The measured steady state is ~650 per round, dominated by the entropy
	// selector's per-client scoring buffers (3 cohort clients × ~200); the
	// scheduling and aggregation plumbing itself is pinned to single digits
	// by the internal/core alloc tests. The budget has headroom for noise
	// but trips on any regression to per-round rebuilding of state-sized
	// buffers (one client state is ~20 tensors × 3 clients × 4 rounds).
	if perRound > 800 {
		t.Fatalf("scheduled round allocates %.1f times per round in steady state (short %v, long %v), want <= 800",
			perRound, short, long)
	}
}

// TestFleetRoundMemoryBounded guards the virtual fleet's headline property at
// the whole-process level: running scheduled rounds over a 100k-client fleet
// keeps resident heap bounded by the cohort and the reuse pool, a small
// fraction of what materializing the population eagerly would cost. The
// descriptors (per-client sketch, size, rate, cluster) are the only O(N)
// state and weigh a few hundred bytes per client; the datasets themselves
// only ever exist for the pool's residents.
func TestFleetRoundMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 100k-client fleet")
	}
	const (
		clients  = 100_000
		cohort   = 32
		poolSize = 64
	)
	suite, err := data.NewStandardSuite(11)
	if err != nil {
		t.Fatal(err)
	}
	test, err := suite.Target10.GenerateBalanced(200, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	f, err := fleet.New(fleet.Spec{
		Clients: clients, Seed: 42, Domain: suite.Target10,
		MinSamples: 10, MaxSamples: 30, Alpha: 0.3,
		Clusters: 8, PoolSize: poolSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.Build(models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{64},
		NumClasses: 10,
		Hidden:     32,
		InitSeed:   13,
	})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := core.NewRunnerWithSource(core.Config{
		Rounds: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.5,
		Selector: selection.All{}, Scheduler: sched.UniformRandom{},
		CohortSize: cohort, EvalEvery: 2, Parallelism: 1, Seed: 9,
	}, m, f, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(); err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	// Heap growth attributable to the fleet plus two full rounds. The eager
	// estimate for this population is ~580 MB; the budget is under a sixth
	// of that, so the guard trips long before anyone reintroduces O(N)
	// dataset residency.
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	eager := fleet.EstimateEagerBytes(clients, 10, 30, 64)
	const budget = 96 << 20
	if budget*4 >= eager {
		t.Fatalf("budget %d no longer meaningfully below eager estimate %d", int64(budget), eager)
	}
	if delta > budget {
		t.Fatalf("fleet round retained %d heap bytes (budget %d, eager estimate %d)",
			delta, int64(budget), eager)
	}
	if st := f.Stats(); st.PeakResident > poolSize+cohort {
		t.Fatalf("peak residency %d exceeds pool %d + cohort %d", st.PeakResident, poolSize, cohort)
	}
}

// TestTieredRoundAllocBudget is TestScheduledRoundAllocBudget's tier-mode
// twin: with a mixed tier distribution the per-round masked-aggregation
// plumbing (tier masks, cover maps, per-tensor weight totals) is runner
// scratch too, so the marginal cost of one more tiered round stays within
// the same order as the untiered budget. Measured differentially so one-time
// warm-up (replicas, per-mask optimizers, cover caches) cancels out.
func TestTieredRoundAllocBudget(t *testing.T) {
	const clients = 8
	dist, err := device.ParseDistribution("low:1,mid:1,full:2")
	if err != nil {
		t.Fatal(err)
	}
	buildFederation := func() ([]*core.Client, *data.Dataset) {
		suite, err := data.NewStandardSuite(11)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(12))
		pool, err := suite.Target10.GenerateBalanced(clients*40, rng)
		if err != nil {
			t.Fatal(err)
		}
		test, err := suite.Target10.GenerateBalanced(100, rng)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := partition.Dirichlet(pool.Y, clients, 0.5, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]*core.Client, clients)
		for i, idxs := range parts {
			ds, err := pool.Subset(idxs)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = &core.Client{ID: i, Data: ds, Device: simtime.Device{FLOPSRate: 1e9}}
		}
		return out, test
	}
	runAllocs := func(rounds int) float64 {
		cl, test := buildFederation()
		m, err := models.Build(models.Spec{
			Arch:       models.ArchMLP,
			InputShape: []int{64},
			NumClasses: 10,
			Hidden:     32,
			InitSeed:   13,
		})
		if err != nil {
			t.Fatal(err)
		}
		runner, err := core.NewRunner(core.Config{
			Rounds: rounds, LocalEpochs: 1, BatchSize: 16, LR: 0.1,
			Selector: selection.Entropy{Temperature: 0.1}, SelectFraction: 0.5,
			CohortSize: 3, TierDist: dist, EvalEvery: rounds, Parallelism: 1, Seed: 9,
		}, m, cl, test)
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			if _, err := runner.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := runAllocs(2), runAllocs(6)
	perRound := (long - short) / 4
	if perRound > 800 {
		t.Fatalf("tiered round allocates %.1f times per round in steady state (short %v, long %v), want <= 800",
			perRound, short, long)
	}
}
