// Allocation regression guards for the zero-allocation training hot path:
// once the layer workspaces, loss scratch and optimizer buffers are warm, a
// full train step (forward, loss+grad, backward, SGD step) must not allocate.
package fedfteds_test

import (
	"math/rand"
	"testing"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/nn"
	"fedfteds/internal/opt"
	"fedfteds/internal/tensor"
)

// trainStepAllocs builds a model from spec, warms its workspaces, and returns
// the steady-state allocations of one train step.
func trainStepAllocs(t *testing.T, spec models.Spec, batchShape []int) float64 {
	t.Helper()
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	x := tensor.New(batchShape...)
	x.FillNormal(rng, 0, 1)
	labels := make([]int, batchShape[0])
	for i := range labels {
		labels[i] = i % spec.NumClasses
	}
	sgd, err := opt.NewSGD(opt.SGDConfig{LR: 0.05, Momentum: 0.5}, m.TrainableParams())
	if err != nil {
		t.Fatal(err)
	}
	loss := nn.SoftmaxCrossEntropy{}
	var ls nn.LossScratch
	step := func() {
		logits := m.Forward(x, true)
		_, dl, err := loss.LossInto(&ls, logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		m.Backward(dl)
		sgd.Step()
	}
	// Warm the workspace caches before measuring (AllocsPerRun adds one more
	// warmup run of its own).
	for i := 0; i < 3; i++ {
		step()
	}
	return testing.AllocsPerRun(20, step)
}

func TestMLPTrainStepZeroAllocs(t *testing.T) {
	spec := models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{64},
		NumClasses: 10,
		Hidden:     64,
		InitSeed:   1,
	}
	if allocs := trainStepAllocs(t, spec, []int{32, 64}); allocs > 0 {
		t.Fatalf("MLP train step allocates %v times in steady state, want 0", allocs)
	}
}

func TestWRNTrainStepZeroAllocs(t *testing.T) {
	spec := models.Spec{
		Arch:        models.ArchWRN,
		InputShape:  []int{3, 16, 16},
		NumClasses:  10,
		Depth:       10,
		WidthFactor: 1,
		InitSeed:    1,
	}
	if allocs := trainStepAllocs(t, spec, []int{4, 3, 16, 16}); allocs > 0 {
		t.Fatalf("WRN train step allocates %v times in steady state, want 0", allocs)
	}
}

func TestBatchIterSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(100, 8)
	x.FillNormal(rng, 0, 1)
	y := make([]int, 100)
	for i := range y {
		y[i] = i % 4
	}
	ds, err := data.NewDataset(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	it, err := data.NewBatchIter(ds, []int{3, 7, 11, 12, 20, 33, 41, 59, 60, 61, 77, 90}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up one epoch.
	it.Reset(rng)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		it.Reset(rng)
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("BatchIter epoch allocates %v times in steady state, want 0", allocs)
	}
}
