package core

import (
	"fmt"

	"fedfteds/internal/comm"
	"fedfteds/internal/tensor"
)

// The simulator's codec wire simulation: when Config.Codec is set, every
// participant's trained state makes the same journey it would in the
// distributed deployment — encoded under the session codec (against the
// broadcast reference the client trained from), then decoded server-side —
// before aggregation sees it. Quantization noise, topk's error-feedback
// residuals and the real payload byte counts all land in the run exactly
// as fedclient/fedserver would produce them, with per-client codec
// instances keyed by client ID so residual state follows the client across
// cohorts and checkpoints.

// codecActive reports whether the codec wire simulation is on. An empty
// Config.Codec keeps the legacy lossless path bit-identical to runs
// predating codecs; "identity" runs the (lossless) round-trip and charges
// honest wire bytes.
func (r *Runner) codecActive() bool { return r.cfg.Codec != "" }

// codecFor returns the client's codec instance, creating it on first use.
// Instances are per client ID, never shared: topk carries error-feedback
// residuals across rounds and those belong to one client.
func (r *Runner) codecFor(clientID int) (comm.Codec, error) {
	if r.codecs == nil {
		r.codecs = make(map[int]comm.Codec)
	}
	if c, ok := r.codecs[clientID]; ok {
		return c, nil
	}
	c, err := comm.ParseCodec(r.cfg.Codec)
	if err != nil {
		return nil, fmt.Errorf("%w: codec %q: %v", ErrConfig, r.cfg.Codec, err)
	}
	r.codecs[clientID] = c
	return c, nil
}

// codecRoundTrip encodes and decodes every result's state through the
// session codec, replacing res.state with what the server would decode and
// recording the encoded payload size for the uplink accounting. The
// reference is the live broadcast state (commState) — still holding the
// broadcast values, because aggregation has not run yet — filtered to the
// participant's covered tensors on masked rounds, exactly the subset the
// client encoded against. The stochastic-rounding seed derives from (run
// seed, round, client ID), the same derivation fedclient uses, so
// simulated and distributed runs quantize identically.
func (r *Runner) codecRoundTrip(results []clientResult, round int) error {
	if !r.codecActive() {
		return nil
	}
	n := len(results)
	if cap(r.codecUplink) < n {
		r.codecUplink = make([]int64, n)
	}
	r.codecUplink = r.codecUplink[:n]
	if cap(r.codecDec) < n {
		r.codecDec = append(r.codecDec[:len(r.codecDec)], make([][]*tensor.Tensor, n-len(r.codecDec))...)
	}
	dec := r.codecDec[:n]
	for i := range results {
		res := &results[i]
		c, err := r.codecFor(res.clientID)
		if err != nil {
			return err
		}
		ref := r.commState
		if r.maskActive {
			ref = r.coveredState(r.coverScratch[i])
		}
		seed := comm.CodecSeed(uint64(r.cfg.Seed), round, res.clientID)
		blob, err := c.Encode(ref, res.state, seed)
		if err != nil {
			return fmt.Errorf("core: round %d: encoding client %d under %s: %w",
				round, res.clientID, c.Name(), err)
		}
		out, err := c.Decode(ref, dec[i], blob)
		if err != nil {
			return fmt.Errorf("core: round %d: decoding client %d under %s: %w",
				round, res.clientID, c.Name(), err)
		}
		dec[i] = out[:cap(out)]
		res.state = out
		r.codecUplink[i] = int64(len(blob))
	}
	return nil
}

// coveredState filters the live broadcast tensors down to the ones a
// participant's cover map ships, in shipped order — the masked codec
// reference. The slice is runner scratch, valid until the next call.
func (r *Runner) coveredState(cover []int) []*tensor.Tensor {
	if cap(r.codecRefScratch) < len(r.commState) {
		r.codecRefScratch = make([]*tensor.Tensor, 0, len(r.commState))
	}
	ref := r.codecRefScratch[:0]
	for ti, ci := range cover {
		if ci >= 0 {
			ref = append(ref, r.commState[ti])
		}
	}
	r.codecRefScratch = ref
	return ref
}

// codecResiduals exports every client's carried error-feedback residuals
// for checkpointing (nil when no client carries any). The returned tensors
// are clones, safe to serialize while the run continues.
func (r *Runner) codecResiduals() map[int][]*tensor.Tensor {
	var out map[int][]*tensor.Tensor
	for id, c := range r.codecs {
		rc, ok := c.(comm.ResidualCarrier)
		if !ok {
			continue
		}
		res := rc.ResidualState()
		if res == nil {
			continue
		}
		cloned := make([]*tensor.Tensor, len(res))
		for i, t := range res {
			cloned[i] = t.Clone()
		}
		if out == nil {
			out = make(map[int][]*tensor.Tensor)
		}
		out[id] = cloned
	}
	return out
}

// restoreCodecResiduals reinstalls checkpointed residual state: one codec
// instance per client ID, each carrying its saved residuals, so the
// resumed run's next Encode continues the error-feedback chain bit for
// bit.
func (r *Runner) restoreCodecResiduals(residuals map[int][]*tensor.Tensor) error {
	for id, res := range residuals {
		c, err := r.codecFor(id)
		if err != nil {
			return err
		}
		rc, ok := c.(comm.ResidualCarrier)
		if !ok {
			return fmt.Errorf("%w: checkpoint carries residuals for client %d but codec %q has none",
				ErrConfig, id, r.cfg.Codec)
		}
		if err := rc.RestoreResidualState(res); err != nil {
			return err
		}
	}
	return nil
}
