package core

import (
	"os"
	"path/filepath"
	"testing"

	"fedfteds/internal/ckpt"
	"fedfteds/internal/models"
)

const goldenAsyncCkptFile = "testdata/golden-async-round2.fedckpt"

// goldenAsyncState is the fixed async section behind the committed fixture:
// a server two updates into its buffer, one of them already a version stale.
// The values are arbitrary but frozen — the test pins them field by field.
func goldenAsyncState() *AsyncState {
	return &AsyncState{
		Version: 7,
		Buffer: []BufferedUpdate{
			{
				ClientID: 3, Round: 8, Version: 7,
				State:       []byte("golden-async-update-a"),
				Groups:      []string{"fc2", "classifier"},
				NumSelected: 12, TrainSeconds: 3.5, TrainLoss: 1.25, MeanEntropy: 0.75,
			},
			{
				ClientID: 1, Round: 8, Version: 6,
				State:       []byte("golden-async-update-b"),
				NumSelected: 7, TrainSeconds: 2.25, TrainLoss: 0.875, MeanEntropy: 0.5,
			},
		},
	}
}

// goldenAsyncConfig keeps the fixture cheap: a plain two-round FedAvg run
// whose snapshot the async section is grafted onto.
func goldenAsyncConfig() Config {
	return Config{
		Rounds:      2,
		LocalEpochs: 1,
		BatchSize:   16,
		LR:          0.1,
		Momentum:    0.5,
		EvalEvery:   1,
		Parallelism: 2,
		Seed:        77,
	}
}

// TestGoldenCheckpointAsync pins the optional "async" checkpoint section the
// distributed server's buffered mode persists: the committed fixture must
// decode, surface the exact buffered-update fields, and re-encode byte for
// byte. It fails on silent drift in the async section's format. Regenerate
// with -update-golden after an *intentional* format change.
func TestGoldenCheckpointAsync(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	if *updateGolden {
		runner, err := NewRunner(goldenAsyncConfig(), m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runner.Run(); err != nil {
			t.Fatal(err)
		}
		state, err := runner.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		state.Async = goldenAsyncState()
		sections, err := state.Sections()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := ckpt.Marshal(sections)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenAsyncCkptFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenAsyncCkptFile, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenAsyncCkptFile)
		return
	}

	blob, err := os.ReadFile(goldenAsyncCkptFile)
	if err != nil {
		t.Fatalf("missing golden async checkpoint (regenerate with -update-golden): %v", err)
	}
	sections, err := ckpt.Unmarshal(blob)
	if err != nil {
		t.Fatalf("golden async checkpoint no longer decodes: %v", err)
	}
	state, err := RunStateFromSections(sections)
	if err != nil {
		t.Fatalf("golden async run state no longer decodes: %v", err)
	}
	want := goldenAsyncState()
	got := state.Async
	if got == nil {
		t.Fatal("golden async checkpoint lost its async section")
	}
	if got.Version != want.Version {
		t.Fatalf("async version %d, want %d", got.Version, want.Version)
	}
	if len(got.Buffer) != len(want.Buffer) {
		t.Fatalf("%d buffered updates, want %d", len(got.Buffer), len(want.Buffer))
	}
	for i, w := range want.Buffer {
		g := got.Buffer[i]
		if g.ClientID != w.ClientID || g.Round != w.Round || g.Version != w.Version ||
			string(g.State) != string(w.State) || g.NumSelected != w.NumSelected ||
			g.TrainSeconds != w.TrainSeconds || g.TrainLoss != w.TrainLoss ||
			g.MeanEntropy != w.MeanEntropy {
			t.Fatalf("buffered update %d drifted:\nwant %+v\ngot  %+v", i, w, g)
		}
		if len(g.Groups) != len(w.Groups) {
			t.Fatalf("buffered update %d has %d groups, want %d", i, len(g.Groups), len(w.Groups))
		}
		for k := range w.Groups {
			if g.Groups[k] != w.Groups[k] {
				t.Fatalf("buffered update %d group %d: %q, want %q", i, k, g.Groups[k], w.Groups[k])
			}
		}
	}

	reSections, err := state.Sections()
	if err != nil {
		t.Fatal(err)
	}
	reBlob, err := ckpt.Marshal(reSections)
	if err != nil {
		t.Fatal(err)
	}
	if string(reBlob) != string(blob) {
		t.Fatalf("re-encoding the golden async state changed its bytes (%d vs %d): the async "+
			"section format drifted without a fixture update", len(reBlob), len(blob))
	}
}
