package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fedfteds/internal/ckpt"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// resumeStrategies are the paper's three local-update strategies (plus the
// stateful churn wrapper) under checkpoint/resume test. Scheduler instances
// are built per run by newCfg so stateful policies never share state across
// the baseline and resumed runs.
var resumeStrategies = []struct {
	name    string
	rounds  int
	dropout float64
	newCfg  func(rounds int) Config
}{
	{
		name:   "fedavg",
		rounds: 5,
		newCfg: func(rounds int) Config {
			return Config{
				Rounds: rounds, LocalEpochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.5,
				FinetunePart: models.FinetuneFull, Selector: selection.All{},
				Parallelism: 2, Seed: 42,
			}
		},
	},
	{
		name:    "fedprox",
		rounds:  5,
		dropout: 0.2,
		newCfg: func(rounds int) Config {
			return Config{
				Rounds: rounds, LocalEpochs: 2, BatchSize: 8, LR: 0.05, Momentum: 0.9,
				ProxMu: 0.01, WeightDecay: 1e-4,
				FinetunePart: models.FinetuneFull, Selector: selection.Random{}, SelectFraction: 0.7,
				Straggler:   simtime.FractionParticipation{Fraction: 0.8},
				Parallelism: 3, Seed: 7,
			}
		},
	},
	{
		name:   "fedft-eds-sched",
		rounds: 5,
		newCfg: func(rounds int) Config {
			return Config{
				Rounds: rounds, LocalEpochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.5,
				FinetunePart: models.FinetuneModerate,
				Selector:     selection.Entropy{Temperature: 0.1}, SelectFraction: 0.5,
				Scheduler: sched.EntropyUtility{}, CohortSize: 3,
				EvalEvery:   2, // leaves NaN records, exercising the NaN-exact comparison
				Parallelism: 2, Seed: 99,
			}
		},
	},
	{
		name:   "avail-churn",
		rounds: 5,
		newCfg: func(rounds int) Config {
			return Config{
				Rounds: rounds, LocalEpochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.5,
				FinetunePart: models.FinetuneModerate,
				Selector:     selection.Entropy{Temperature: 0.1}, SelectFraction: 0.5,
				Scheduler:   &sched.Availability{Inner: sched.EntropyUtility{}, DownProb: 0.4, UpProb: 0.5},
				CohortSize:  3,
				Parallelism: 2, Seed: 21,
			}
		},
	},
	{
		// The stateful-strategy case: resuming mid-run must restore the
		// server optimizer's moments, or the post-resume aggregates diverge.
		// The strategy is constructed per run (never shared), like the
		// stateful schedulers above.
		name:   "fedadam-midrun",
		rounds: 5,
		newCfg: func(rounds int) Config {
			strat, err := strategy.Parse("fedadam:lr=0.2")
			if err != nil {
				panic(err)
			}
			return Config{
				Rounds: rounds, LocalEpochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.5,
				FinetunePart: models.FinetuneModerate,
				Selector:     selection.Entropy{Temperature: 0.1}, SelectFraction: 0.5,
				Strategy:    strat,
				Parallelism: 2, Seed: 63,
			}
		},
	},
}

// histEqual compares histories with bitwise float semantics, so NaN records
// (unevaluated rounds) compare equal when both runs left them NaN.
func histEqual(a, b History) bool {
	f64 := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if len(a.Records) != len(b.Records) ||
		!f64(a.BestAccuracy, b.BestAccuracy) || !f64(a.FinalAccuracy, b.FinalAccuracy) ||
		!f64(a.TotalTrainSeconds, b.TotalTrainSeconds) ||
		a.TotalUplinkBytes != b.TotalUplinkBytes || a.TotalDownlinkBytes != b.TotalDownlinkBytes {
		return false
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Round != rb.Round || ra.CohortSize != rb.CohortSize || ra.SchedPolicy != rb.SchedPolicy ||
			ra.Participants != rb.Participants || ra.CumUplinkBytes != rb.CumUplinkBytes ||
			!f64(ra.TestAccuracy, rb.TestAccuracy) || !f64(ra.MeanTrainLoss, rb.MeanTrainLoss) ||
			!f64(ra.CumTrainSeconds, rb.CumTrainSeconds) {
			return false
		}
	}
	return true
}

// requireSameState asserts two models' full states are byte-identical.
func requireSameState(t *testing.T, a, b *models.Model) {
	t.Helper()
	as, bs := a.StateTensors(), b.StateTensors()
	if len(as) != len(bs) {
		t.Fatalf("state tensor count differs: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if !as[i].Equal(bs[i]) {
			t.Fatalf("global state tensor %d differs", i)
		}
	}
}

// TestResumeBitIdentical is the tentpole acceptance test: for each strategy,
// a run checkpointed every round and resumed at R ∈ {1, mid, T−1} must
// reproduce the uninterrupted run's History and final global state byte for
// byte — and writing checkpoints must not perturb the run at all.
func TestResumeBitIdentical(t *testing.T) {
	clients, _, test, spec := testFederation(t, 6, 0.5)

	for _, st := range resumeStrategies {
		t.Run(st.name, func(t *testing.T) {
			mspec := spec
			mspec.DropoutRate = st.dropout
			build := func() *models.Model {
				m, err := models.Build(mspec)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			dir := t.TempDir()

			// Reference: no checkpointing at all.
			refModel := build()
			refRunner, err := NewRunner(st.newCfg(st.rounds), refModel, clients, test)
			if err != nil {
				t.Fatal(err)
			}
			refHist, err := refRunner.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Baseline: same run, checkpointing every round.
			baseCfg := st.newCfg(st.rounds)
			baseCfg.CheckpointDir = dir
			baseCfg.CheckpointEvery = 1
			baseModel := build()
			baseRunner, err := NewRunner(baseCfg, baseModel, clients, test)
			if err != nil {
				t.Fatal(err)
			}
			baseHist, err := baseRunner.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !histEqual(refHist, baseHist) {
				t.Fatalf("checkpointing perturbed the run:\nref:  %+v\nbase: %+v", refHist, baseHist)
			}
			requireSameState(t, refModel, baseModel)

			for _, r := range []int{1, st.rounds / 2, st.rounds - 1} {
				state, err := LoadRunState(ckpt.Path(dir, r))
				if err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
				m := build()
				runner, err := NewRunner(st.newCfg(st.rounds), m, clients, test)
				if err != nil {
					t.Fatal(err)
				}
				if err := state.RestoreInto(runner); err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
				hist, err := runner.Run()
				if err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
				if !histEqual(baseHist, hist) {
					t.Fatalf("resume at round %d diverged:\nfull:    %+v\nresumed: %+v", r, baseHist, hist)
				}
				requireSameState(t, baseModel, m)
			}
		})
	}
}

// TestResumeAfterInterruption covers the kill-and-restart shape directly: a
// run that stops after R rounds (its process dies), then a new process
// resumes from the latest checkpoint with the full round budget.
func TestResumeAfterInterruption(t *testing.T) {
	clients, _, test, spec := testFederation(t, 5, 0.5)
	const total, killAt = 5, 2
	newCfg := resumeStrategies[2].newCfg // FedFT+EDS+scheduler

	build := func() *models.Model {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	fullModel := build()
	fullRunner, err := NewRunner(newCfg(total), fullModel, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	fullHist, err := fullRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	// "Process one": dies after killAt rounds, leaving checkpoints behind.
	dir := t.TempDir()
	killedCfg := newCfg(killAt)
	killedCfg.CheckpointDir = dir
	killedRunner, err := NewRunner(killedCfg, build(), clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := killedRunner.Run(); err != nil {
		t.Fatal(err)
	}

	// "Process two": fresh everything, resumes from the directory.
	resumedCfg := newCfg(total)
	resumedCfg.CheckpointDir = dir
	resumedModel := build()
	resumedRunner, err := NewRunner(resumedCfg, resumedModel, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	round, err := resumedRunner.ResumeLatest()
	if err != nil {
		t.Fatal(err)
	}
	if round != killAt {
		t.Fatalf("resumed from round %d, want %d", round, killAt)
	}
	resumedHist, err := resumedRunner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !histEqual(fullHist, resumedHist) {
		t.Fatalf("interrupted run diverged:\nfull:    %+v\nresumed: %+v", fullHist, resumedHist)
	}
	requireSameState(t, fullModel, resumedModel)
}

// TestExtendFinishedRun pins the artifact-store property the experiments
// layer relies on: a finished T-round run can be extended to T' > T rounds
// from its final checkpoint, bit-identical to having run T' rounds from the
// start — and re-running a finished run resumes instantly as a no-op with
// the same History.
func TestExtendFinishedRun(t *testing.T) {
	clients, _, test, spec := testFederation(t, 5, 0.5)
	const short, long = 3, 5
	newCfg := resumeStrategies[0].newCfg // FedAvg

	build := func() *models.Model {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	dir := t.TempDir()
	shortCfg := newCfg(short)
	shortCfg.CheckpointDir = dir
	shortRunner, err := NewRunner(shortCfg, build(), clients, test)
	if err != nil {
		t.Fatal(err)
	}
	shortHist, err := shortRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Re-running the finished run is a pure reload: no new rounds, same
	// History, checkpoint files untouched.
	reloadCfg := newCfg(short)
	reloadCfg.CheckpointDir = dir
	reloadRunner, err := NewRunner(reloadCfg, build(), clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reloadRunner.ResumeLatest(); err != nil {
		t.Fatal(err)
	}
	reloadHist, err := reloadRunner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !histEqual(shortHist, reloadHist) {
		t.Fatalf("reloaded run differs:\nfirst:  %+v\nreload: %+v", shortHist, reloadHist)
	}

	// Extending to `long` rounds from the final checkpoint.
	extCfg := newCfg(long)
	extCfg.CheckpointDir = dir
	extModel := build()
	extRunner, err := NewRunner(extCfg, extModel, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if round, err := extRunner.ResumeLatest(); err != nil || round != short {
		t.Fatalf("resumed round %d, err %v", round, err)
	}
	extHist, err := extRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	uninterruptedModel := build()
	uninterruptedRunner, err := NewRunner(newCfg(long), uninterruptedModel, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	uninterruptedHist, err := uninterruptedRunner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !histEqual(uninterruptedHist, extHist) {
		t.Fatalf("extension diverged:\nfresh:    %+v\nextended: %+v", uninterruptedHist, extHist)
	}
	requireSameState(t, uninterruptedModel, extModel)
}

// TestExtendFinishedRunSparseEval covers the subtle extension case: the
// short run force-evaluated its final round (Run always evaluates
// round == Rounds), which the longer run's EvalEvery cadence would skip.
// RestoreInto must un-evaluate that record so the extension stays
// bit-identical to a from-scratch longer run.
func TestExtendFinishedRunSparseEval(t *testing.T) {
	clients, _, test, spec := testFederation(t, 5, 0.5)
	const short, long = 3, 5 // 3 % 2 != 0: the short run's final eval is off-cadence
	newCfg := func(rounds int) Config {
		cfg := resumeStrategies[0].newCfg(rounds)
		cfg.EvalEvery = 2
		return cfg
	}
	build := func() *models.Model {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	dir := t.TempDir()
	shortCfg := newCfg(short)
	shortCfg.CheckpointDir = dir
	shortRunner, err := NewRunner(shortCfg, build(), clients, test)
	if err != nil {
		t.Fatal(err)
	}
	shortHist, err := shortRunner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(shortHist.Records[short-1].TestAccuracy) {
		t.Fatal("short run must have force-evaluated its final round")
	}

	extCfg := newCfg(long)
	extCfg.CheckpointDir = dir
	extModel := build()
	extRunner, err := NewRunner(extCfg, extModel, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if round, err := extRunner.ResumeLatest(); err != nil || round != short {
		t.Fatalf("resumed round %d, err %v", round, err)
	}
	extHist, err := extRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	freshModel := build()
	freshRunner, err := NewRunner(newCfg(long), freshModel, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	freshHist, err := freshRunner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(freshHist.Records[short-1].TestAccuracy) {
		t.Fatalf("premise broken: fresh run evaluated round %d", short)
	}
	if !histEqual(freshHist, extHist) {
		t.Fatalf("sparse-eval extension diverged:\nfresh:    %+v\nextended: %+v", freshHist, extHist)
	}
	requireSameState(t, freshModel, extModel)
}

// TestRunStateRoundTrip: a real run's snapshot survives
// encode→container→decode with every field intact, bit for bit.
func TestRunStateRoundTrip(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)
	cfg := resumeStrategies[3].newCfg(3) // stateful scheduler: exercises SchedState
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(); err != nil {
		t.Fatal(err)
	}
	want, err := runner.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if want.Round != 3 || want.SchedName != "avail:entropy" || len(want.SchedState) == 0 {
		t.Fatalf("unexpected snapshot meta: %+v", want)
	}

	sections, err := want.Sections()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ckpt.Marshal(sections)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ckpt.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStateFromSections(rt)
	if err != nil {
		t.Fatal(err)
	}

	if got.Seed != want.Seed || got.Round != want.Round || got.SchedName != want.SchedName {
		t.Fatalf("meta differs: %+v vs %+v", got, want)
	}
	if !reflect.DeepEqual(got.SchedState, want.SchedState) {
		t.Fatal("scheduler state differs")
	}
	if got.Acct != want.Acct {
		t.Fatalf("accountant differs: %+v vs %+v", got.Acct, want.Acct)
	}
	if !histEqual(got.Hist, want.Hist) {
		t.Fatal("history differs")
	}
	if !reflect.DeepEqual(got.TrackerUtil, want.TrackerUtil) ||
		!reflect.DeepEqual(got.TrackerSeconds, want.TrackerSeconds) {
		t.Fatal("tracker maps differ")
	}
	if len(got.Model) != len(want.Model) {
		t.Fatalf("model tensor count %d vs %d", len(got.Model), len(want.Model))
	}
	for i := range want.Model {
		if !got.Model[i].Equal(want.Model[i]) {
			t.Fatalf("model tensor %d differs", i)
		}
	}
	if len(got.Opt) != 0 {
		t.Fatalf("round-boundary snapshot carries optimizer state: %d clients", len(got.Opt))
	}
}

// TestRestoreIntoRejectsMismatches: a checkpoint must never be silently
// applied to a run it does not belong to.
func TestRestoreIntoRejectsMismatches(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)
	newRunner := func(cfg Config) *Runner {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(cfg, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cfg := resumeStrategies[0].newCfg(3)
	cfg.CheckpointDir = t.TempDir()
	runner := newRunner(cfg)
	if _, err := runner.Run(); err != nil {
		t.Fatal(err)
	}
	state, err := LoadLatestRunState(cfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name   string
		mutate func(*RunState, *Config)
	}{
		{"wrong seed", func(s *RunState, c *Config) { c.Seed++ }},
		{"changed hyperparameters", func(s *RunState, c *Config) { c.LocalEpochs++ }},
		{"changed selector", func(s *RunState, c *Config) { c.Selector = selection.Random{}; c.SelectFraction = 0.5 }},
		{"round beyond budget", func(s *RunState, c *Config) { c.Rounds = s.Round - 1 }},
		{"scheduler mismatch", func(s *RunState, c *Config) {
			c.Scheduler = sched.UniformRandom{}
			c.CohortSize = 2
		}},
		{"unexpected scheduler state", func(s *RunState, c *Config) { s.SchedState = []byte{0, 0, 0, 0, 0, 0, 0, 0} }},
		{"history desync", func(s *RunState, c *Config) { s.Hist.Records = s.Hist.Records[:1] }},
		{"model shape mismatch", func(s *RunState, c *Config) { s.Model = s.Model[:len(s.Model)-1] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := resumeStrategies[0].newCfg(3)
			s := *state
			s.Hist = copyHistory(state.Hist)
			s.Model = append([]*tensor.Tensor(nil), state.Model...)
			tt.mutate(&s, &c)
			if err := s.RestoreInto(newRunner(c)); err == nil {
				t.Fatal("mismatched restore accepted")
			}
		})
	}

	// A different federation — same config, same seed, fewer clients — is
	// refused too: the ConfigTag covers the client pool's identity.
	t.Run("different federation", func(t *testing.T) {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		shrunk, err := NewRunner(resumeStrategies[0].newCfg(3), m, clients[:3], test)
		if err != nil {
			t.Fatal(err)
		}
		if err := state.RestoreInto(shrunk); err == nil {
			t.Fatal("restore into a different client pool accepted")
		}
	})
}

// TestRunAfterResumeStartsFresh pins the re-run semantics: a restored
// runner's first Run consumes the restore; a second Run starts a fresh,
// self-consistent history (the legacy behavior) instead of appending
// duplicate rounds on top of the finished one.
func TestRunAfterResumeStartsFresh(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)
	cfg := resumeStrategies[0].newCfg(3)
	cfg.CheckpointDir = t.TempDir()
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := NewRunner(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}

	m2, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewRunner(cfg, m2, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.ResumeLatest(); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	again, err := resumed.Run() // must start fresh, not append rounds 4..6
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Records) != cfg.Rounds {
		t.Fatalf("second Run produced %d records, want %d", len(again.Records), cfg.Rounds)
	}
	for i, rec := range again.Records {
		if rec.Round != i+1 {
			t.Fatalf("second Run record %d has round %d", i, rec.Round)
		}
	}
}

// TestResumeLatestNoCheckpoint: an empty directory is the typed sentinel,
// so "resume if possible" callers can fall back to a fresh start.
func TestResumeLatestNoCheckpoint(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeStrategies[0].newCfg(2)
	cfg.CheckpointDir = t.TempDir()
	runner, err := NewRunner(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ResumeLatest(); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("got %v, want ErrNoCheckpoint", err)
	}
	// A corrupt lone checkpoint is ErrCorrupt, never silently ignored.
	if err := os.WriteFile(filepath.Join(cfg.CheckpointDir, "round-000000001.fedckpt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ResumeLatest(); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestCheckpointConfigValidation pins the fail-fast rules for the new pair.
func TestCheckpointConfigValidation(t *testing.T) {
	clients, _, test, spec := testFederation(t, 3, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Rounds: 1, LocalEpochs: 1, LR: 0.1, Seed: 1}

	bad := base
	bad.CheckpointEvery = -1
	if _, err := NewRunner(bad, m, clients, test); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative interval: %v", err)
	}
	bad = base
	bad.CheckpointEvery = 2 // interval without a directory
	if _, err := NewRunner(bad, m, clients, test); !errors.Is(err, ErrConfig) {
		t.Fatalf("interval without dir: %v", err)
	}
	ok := base
	ok.CheckpointDir = t.TempDir() // dir alone defaults the interval to 1
	runner, err := NewRunner(ok, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if runner.cfg.CheckpointEvery != 1 {
		t.Fatalf("CheckpointEvery defaulted to %d, want 1", runner.cfg.CheckpointEvery)
	}
}
