package core

import (
	"math"
	"reflect"
	"testing"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
)

// runHistory executes one short federated run and returns its history.
func runHistory(t *testing.T, cfg Config, clients []*Client, spec models.Spec, test *data.Dataset) History {
	t.Helper()
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	return hist
}

// TestSchedulerUnsetMatchesUniformFullCohort pins the equivalence the
// subsystem promises: with no Scheduler the legacy full-pool path runs, and
// UniformRandom with K = N must reproduce it bit-identically — same
// accuracies, same losses, same accounting — because a full-pool uniform
// cohort is the whole pool and the straggler rng stream is untouched.
func TestSchedulerUnsetMatchesUniformFullCohort(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)
	base := Config{
		Rounds:         3,
		LocalEpochs:    1,
		LR:             0.1,
		Selector:       selection.Entropy{Temperature: 0.1},
		SelectFraction: 0.5,
		Seed:           99,
	}

	legacy := runHistory(t, base, clients, spec, test)

	scheduled := base
	scheduled.Scheduler = sched.UniformRandom{}
	scheduled.CohortSize = len(clients)
	got := runHistory(t, scheduled, clients, spec, test)

	if len(got.Records) != len(legacy.Records) {
		t.Fatalf("round counts differ: %d vs %d", len(got.Records), len(legacy.Records))
	}
	for i := range got.Records {
		a, b := got.Records[i], legacy.Records[i]
		// The scheduler records its policy name; everything the run computes
		// must be bit-identical.
		if a.SchedPolicy != "uniform" || b.SchedPolicy != "" {
			t.Fatalf("round %d: policies %q / %q", i+1, a.SchedPolicy, b.SchedPolicy)
		}
		a.SchedPolicy, b.SchedPolicy = "", ""
		if a.CohortSize != len(clients) {
			t.Fatalf("round %d: cohort size %d, want %d", i+1, a.CohortSize, len(clients))
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round %d diverges:\n%+v\n%+v", i+1, a, b)
		}
	}
	if got.BestAccuracy != legacy.BestAccuracy || got.FinalAccuracy != legacy.FinalAccuracy ||
		got.TotalTrainSeconds != legacy.TotalTrainSeconds || got.TotalUplinkBytes != legacy.TotalUplinkBytes {
		t.Fatalf("totals diverge:\n%+v\n%+v", got, legacy)
	}
}

// TestCohortSmallerThanPoolLimitsParticipants checks the scheduling path
// proper: K=2 of 5 clients means at most 2 participants per round, the
// record carries the cohort size and policy, and time accounting only
// charges the scheduled clients.
func TestCohortSmallerThanPoolLimitsParticipants(t *testing.T) {
	clients, _, test, spec := testFederation(t, 5, 0.5)
	cfg := Config{
		Rounds:         3,
		LocalEpochs:    1,
		LR:             0.1,
		Selector:       selection.Entropy{Temperature: 0.1},
		SelectFraction: 0.5,
		CohortSize:     2, // Scheduler defaults to UniformRandom
		Seed:           7,
	}
	hist := runHistory(t, cfg, clients, spec, test)
	for _, rec := range hist.Records {
		if rec.CohortSize != 2 {
			t.Fatalf("round %d: cohort size %d, want 2", rec.Round, rec.CohortSize)
		}
		if rec.SchedPolicy != "uniform" {
			t.Fatalf("round %d: policy %q, want uniform (CohortSize default)", rec.Round, rec.SchedPolicy)
		}
		if rec.Participants > 2 {
			t.Fatalf("round %d: %d participants exceed the cohort", rec.Round, rec.Participants)
		}
	}

	// A 2-of-5 cohort must cost well under the full-pool run.
	full := cfg
	full.CohortSize = 0
	full.Scheduler = nil
	fullHist := runHistory(t, full, clients, spec, test)
	if hist.TotalTrainSeconds >= fullHist.TotalTrainSeconds {
		t.Fatalf("cohort run cost %v >= full-pool cost %v",
			hist.TotalTrainSeconds, fullHist.TotalTrainSeconds)
	}
}

// TestEntropyUtilityFeedbackLoop runs the utility-driven policy end to end:
// after round 1 every scheduled client has reported a mean entropy, so the
// tracker must hold finite utilities for them and later cohorts must still
// fill to K.
func TestEntropyUtilityFeedbackLoop(t *testing.T) {
	clients, _, test, spec := testFederation(t, 6, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Rounds:         4,
		LocalEpochs:    1,
		LR:             0.1,
		Selector:       selection.Entropy{Temperature: 0.1},
		SelectFraction: 0.5,
		Scheduler:      sched.EntropyUtility{Epsilon: 0.25},
		CohortSize:     3,
		Seed:           21,
	}
	runner, err := NewRunner(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range hist.Records {
		if rec.CohortSize != 3 || rec.SchedPolicy != "entropy" {
			t.Fatalf("record %+v", rec)
		}
	}
	scored := 0
	for i := range clients {
		if u, ok := runner.utility.Utility(i); ok {
			if math.IsNaN(u) || math.IsInf(u, 0) {
				t.Fatalf("client %d: utility %v", i, u)
			}
			scored++
		}
	}
	if scored < 3 {
		t.Fatalf("only %d clients ever reported utility, want >= one full cohort", scored)
	}
}
