package core

import (
	"errors"
	"math/rand"
	"testing"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
)

// failingSelector always errors, simulating a broken client-side component.
type failingSelector struct{}

var _ selection.Selector = failingSelector{}

var errInjected = errors.New("injected selector failure")

func (failingSelector) Name() string       { return "failing" }
func (failingSelector) ScoringPasses() int { return 0 }
func (failingSelector) Select(*models.Model, *data.Dataset, float64, *rand.Rand) ([]int, error) {
	return nil, errInjected
}

// emptyStraggler drops every client, simulating a pathological policy.
type emptyStraggler struct{}

var _ simtime.StragglerPolicy = emptyStraggler{}

func (emptyStraggler) Complete([]int, []float64, *rand.Rand) []int { return nil }

func TestRunPropagatesSelectorFailure(t *testing.T) {
	clients, _, test, spec := testFederation(t, 3, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 2, LocalEpochs: 1, LR: 0.1,
		Selector: failingSelector{}, SelectFraction: 0.5, Seed: 1,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error to propagate, got %v", err)
	}
}

func TestRunFailsWhenNoParticipants(t *testing.T) {
	clients, _, test, spec := testFederation(t, 3, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 1, LocalEpochs: 1, LR: 0.1,
		Straggler: emptyStraggler{}, Seed: 1,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("expected error when the straggler policy drops everyone")
	}
}

func TestRunnerRejectsClientWithoutDevice(t *testing.T) {
	clients, _, test, spec := testFederation(t, 2, 0.5)
	clients[1].Device = simtime.Device{}
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(Config{Rounds: 1, LocalEpochs: 1, LR: 0.1}, m, clients, test); !errors.Is(err, ErrConfig) {
		t.Fatalf("expected ErrConfig, got %v", err)
	}
}

func TestRunnerRejectsClientWithEmptyData(t *testing.T) {
	clients, _, test, spec := testFederation(t, 2, 0.5)
	clients[0].Data = nil
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(Config{Rounds: 1, LocalEpochs: 1, LR: 0.1}, m, clients, test); !errors.Is(err, ErrConfig) {
		t.Fatalf("expected ErrConfig, got %v", err)
	}
}

func TestAggregateRejectsShortClientState(t *testing.T) {
	clients, _, test, spec := testFederation(t, 2, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{Rounds: 1, LocalEpochs: 1, LR: 0.1, Seed: 1}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	live, err := m.GroupStateTensors(models.GroupNames())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.aggregate([]clientResult{{state: nil, numSelected: 1}}, live, nil); err == nil {
		t.Fatal("expected error for truncated client state")
	}
}

func TestAggregateRejectsZeroWeights(t *testing.T) {
	clients, _, test, spec := testFederation(t, 2, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{Rounds: 1, LocalEpochs: 1, LR: 0.1, Seed: 1}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	live, err := m.GroupStateTensors(models.GroupNames())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.aggregate([]clientResult{{numSelected: 0}}, live, nil); err == nil {
		t.Fatal("expected error for zero total weight")
	}
}

func TestLocalUpdateStandaloneConfig(t *testing.T) {
	clients, _, _, spec := testFederation(t, 2, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := NewLocalConfig(Config{
		LocalEpochs: 1, LR: 0.1,
		FinetunePart: models.FinetuneModerate,
		Selector:     selection.Random{}, SelectFraction: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := LocalUpdate(cfg, m, clients[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumSelected != (clients[0].Data.Len()+1)/2 {
		t.Fatalf("selected %d of %d", out.NumSelected, clients[0].Data.Len())
	}
	if len(out.State) == 0 {
		t.Fatal("no state returned")
	}
	if out.Cost.Total() <= 0 {
		t.Fatal("no cost accounted")
	}
	// The global model must be untouched by the client's local update.
	m2, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, ts := range m.StateTensors() {
		if !ts.Equal(m2.StateTensors()[i]) {
			t.Fatal("LocalUpdate mutated the global model")
		}
	}
}

func TestNewLocalConfigRejectsInvalid(t *testing.T) {
	if _, err := NewLocalConfig(Config{LocalEpochs: 0, LR: 0.1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("expected ErrConfig, got %v", err)
	}
}

func TestRunSameSeedIdentical(t *testing.T) {
	run := func() []float64 {
		clients, _, test, spec := testFederation(t, 3, 0.1)
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(Config{
			Rounds: 3, LocalEpochs: 2, LR: 0.1, Momentum: 0.5,
			Selector: selection.Random{}, SelectFraction: 0.5, Seed: 77,
		}, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		h, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return h.Curve()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d: %v vs %v with identical seeds", i+1, a[i], b[i])
		}
	}
}

func TestDeadlineStragglerInRun(t *testing.T) {
	// Give one client a pathologically slow device; a deadline policy must
	// exclude it while the rest train.
	clients, _, test, spec := testFederation(t, 4, 0.5)
	clients[2].Device = simtime.Device{FLOPSRate: 1} // ~10⁹× slower
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 1, LocalEpochs: 1, LR: 0.1,
		Straggler: simtime.DeadlineStraggler{DeadlineSeconds: 1e6},
		Seed:      5,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.Records[0].Participants != 3 {
		t.Fatalf("%d participants, want 3 (slow client dropped)", hist.Records[0].Participants)
	}
}
