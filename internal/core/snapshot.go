package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"

	"fedfteds/internal/ckpt"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// schemaVersion is the run-state schema version carried inside the "meta"
// section, independent of the ckpt container version: the container framing
// can stay stable while the section layout evolves.
const schemaVersion = 1

// Checkpoint section names. The sections and their layouts are specified in
// DESIGN.md ("Checkpoint file format").
const (
	sectionMeta    = "meta"
	sectionModel   = "model"
	sectionHistory = "history"
	sectionTracker = "tracker"
	sectionSched   = "sched"
	sectionOpt     = "opt"
	// sectionStrategy is optional: it is written only when the run was
	// configured with an explicit strategy, so checkpoints of legacy
	// (nil-Strategy) runs keep their exact pre-strategy byte layout.
	sectionStrategy = "strategy"
	// sectionTiers is optional: it is written only for tiered runs
	// (Config.TierDist set), so untiered checkpoints keep their exact
	// pre-tier byte layout.
	sectionTiers = "tiers"
	// sectionAsync is optional: it is written only by buffered-asynchronous
	// (FedBuff) servers, carrying the model version counter and the updates
	// buffered but not yet aggregated, so a warm start resumes mid-buffer.
	// Synchronous checkpoints keep their exact pre-async byte layout.
	sectionAsync = "async"
	// sectionCodec is optional: it is written only for runs with an uplink
	// codec configured (Config.Codec / fedserver -codec), carrying the codec
	// spec and any per-client error-feedback residuals (topk), so a resumed
	// run continues the error-feedback chain bit for bit. Codec-free
	// checkpoints keep their exact pre-codec byte layout.
	sectionCodec = "codec"
	// sectionFleet is optional: it is written only for fleet-backed runs
	// (NewRunnerWithSource over a source with a non-empty Fingerprint),
	// carrying the fleet's population fingerprint — seeds, sizes, device
	// distribution, clustering — so a restore under an edited fleet (or under
	// the eager path) is refused. Eager checkpoints keep their exact
	// pre-fleet byte layout.
	sectionFleet = "fleet"
)

// BufferedUpdate is one received-but-not-yet-aggregated client update of a
// buffered-asynchronous server, the checkpoint rendering of the wire-level
// ClientUpdate (the encoded state blob is carried opaquely).
type BufferedUpdate struct {
	// ClientID identifies the sender.
	ClientID int
	// Round is the aggregation index the update was dispatched under.
	Round int
	// Version is the model version the update was trained against; its
	// staleness is re-measured against the restored version at fold time.
	Version int
	// State is the encoded updated state for the communicated groups.
	State []byte
	// Groups names the model groups State covers (empty for whole-state
	// updates, mirroring the wire contract).
	Groups []string
	// NumSelected, TrainSeconds, TrainLoss and MeanEntropy mirror the wire
	// update's reporting fields.
	NumSelected  int
	TrainSeconds float64
	TrainLoss    float64
	MeanEntropy  float64
}

// AsyncState is a buffered-asynchronous (FedBuff) server's resumable state
// at a checkpoint boundary: the model version counter and the buffer of
// updates that arrived but were not yet aggregated. Nil on synchronous
// runs, whose checkpoints keep their exact legacy byte layout.
type AsyncState struct {
	// Version is the number of aggregations applied since run start.
	Version int
	// Buffer holds the pending updates in arrival order.
	Buffer []BufferedUpdate
}

// RunState is the complete resumable state of a federated run at a round
// boundary: everything that survives from one round to the next. Per-round
// randomness needs no cursors here — every RNG stream is derived statelessly
// from (Seed, round, tag), so recording Seed and Round pins them all; the
// only persistent RNG-bearing objects (dropout layers) are rewound on every
// replica rebind by construction.
type RunState struct {
	// Seed is the run seed the state was produced under. Restoring into a
	// runner with a different seed is refused: the resumed rounds would
	// silently draw from different RNG streams.
	Seed int64
	// ConfigTag fingerprints the run the state was produced under: the
	// training hyperparameters and the federation's identity (client
	// count, per-client data sizes and device rates). Restoring under a
	// different configuration or client pool is refused: the resumed
	// rounds would silently blend two training regimes.
	ConfigTag uint64
	// Round is the last completed round.
	Round int
	// Model holds snapshots of the full global model state (every parameter
	// and buffer of every group, trainable or frozen), so a restore does not
	// depend on how the caller initialized its model.
	Model []*tensor.Tensor
	// Hist is the run history up to and including Round.
	Hist History
	// Acct is the simulated cost accounting at the boundary.
	Acct simtime.AccountantState
	// TrackerUtil and TrackerSeconds are the scheduler feedback store.
	TrackerUtil, TrackerSeconds map[int]float64
	// SchedName names the scheduling policy the state was produced under
	// (empty without a scheduler); restore refuses a mismatch.
	SchedName string
	// SchedState is the policy's internal state for stateful policies
	// (sched.Stateful, e.g. the Availability churn chain); empty otherwise.
	SchedState []byte
	// Opt holds live per-client optimizer state (opt.SGD.StateTensors),
	// keyed by client ID. Both engines reset client optimizers at round
	// boundaries, so this is empty in every checkpoint the Runner writes;
	// the section exists so the format can carry mid-round optimizer state
	// without a version bump.
	Opt map[int][]*tensor.Tensor
	// StratName is the Fingerprint of the explicitly configured strategy
	// the state was produced under (empty for the legacy default path).
	// Restore refuses a mismatch, so state trained under one strategy —
	// or one setting of its parameters — is never continued under another.
	StratName string
	// StratState holds the strategy's server-optimizer state tensors
	// (strategy.Stateful.StateTensors): FedAvgM's velocity, FedAdam's
	// moments. Empty for stateless strategies.
	StratState []*tensor.Tensor
	// TierSpec is the canonical rendering of the device-tier distribution
	// the state was produced under (device.Distribution.String; empty for
	// untiered runs). Restore refuses a mismatch, so state trained under one
	// tier mix — one set of per-client layer masks — is never continued
	// under an edited one.
	TierSpec string
	// Async is the buffered-asynchronous server state (nil for synchronous
	// runs). The async mode contributes its buffer/staleness flags to the
	// config tag, so ValidateFor already refuses crossing a checkpoint
	// between the two modes.
	Async *AsyncState
	// CodecName is the uplink-codec spec the state was produced under
	// (comm.ParseCodec form; empty for codec-free runs). Restore refuses a
	// mismatch: resuming under an edited codec would silently change every
	// subsequent update's quantization — and for topk, orphan the carried
	// residuals.
	CodecName string
	// CodecResiduals holds each client's carried error-feedback residual
	// tensors (topk), keyed by client ID; nil when no client carries any.
	CodecResiduals map[int][]*tensor.Tensor
	// FleetSpec is the client source's population fingerprint (empty for the
	// legacy eager pool). Restore refuses a mismatch: resuming under an
	// edited fleet — different seeds, sizes, availability clustering — would
	// silently re-derive every virtual client differently.
	FleetSpec string
}

// SnapshotModelState clones a model's full state tensors (params and buffers
// of every group) in their canonical order.
func SnapshotModelState(m *models.Model) []*tensor.Tensor {
	live := m.StateTensors()
	out := make([]*tensor.Tensor, len(live))
	for i, t := range live {
		out[i] = t.Clone()
	}
	return out
}

// RestoreModelState copies a SnapshotModelState snapshot back into a model.
func RestoreModelState(m *models.Model, ts []*tensor.Tensor) error {
	dst := m.StateTensors()
	if len(dst) != len(ts) {
		return fmt.Errorf("core: restore: %d state tensors for a model with %d", len(ts), len(dst))
	}
	for i := range dst {
		if err := dst[i].CopyFrom(ts[i]); err != nil {
			return fmt.Errorf("core: restore: state tensor %d: %w", i, err)
		}
	}
	return nil
}

// copyHistory deep-copies a history so a snapshot cannot alias the runner's
// still-growing record slice.
func copyHistory(h History) History {
	out := h
	out.Records = append([]RoundRecord(nil), h.Records...)
	return out
}

// TagConfig hashes a deterministic rendering of the given values into a
// run-configuration fingerprint: checkpoint writers record it and restores
// compare it, so state trained under one configuration is never silently
// continued under another. Values must render deterministically under
// fmt's %+v (plain structs and scalars do).
func TagConfig(parts ...any) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%T:%+v;", p, p)
	}
	return h.Sum64()
}

// trainingTag fingerprints every configuration field that shapes the
// training trajectory or the history's shape. Rounds is deliberately
// excluded (extending a finished run is supported), as are the scheduler
// (validated by name, with its own serialized state) and the
// checkpoint/parallelism knobs (they must not affect results at all). An
// explicit strategy contributes its Fingerprint; a nil Strategy contributes
// nothing, keeping legacy configs' tags — and therefore their committed
// checkpoints — stable across the strategy redesign.
func (c Config) trainingTag() uint64 {
	parts := []any{c.LocalEpochs, c.BatchSize, c.LR, c.Momentum, c.WeightDecay,
		c.ProxMu, c.FinetunePart, c.Selector, c.SelectFraction, c.CohortSize,
		c.Straggler, c.AggWeighting, c.EvalEvery}
	if c.Strategy != nil {
		parts = append(parts, c.Strategy.Fingerprint())
	}
	// The tier distribution and a standalone layer mask are appended only
	// when configured, keeping untiered configs' tags — and their committed
	// checkpoints — stable across the partial-training refactor.
	if c.TierDist != nil {
		parts = append(parts, "tiers:"+c.TierDist.String())
	}
	if len(c.TrainGroups) > 0 {
		parts = append(parts, fmt.Sprintf("mask:%v", c.TrainGroups))
	}
	// The codec is appended only when configured, keeping codec-free
	// configs' tags — and their committed checkpoints — stable. "identity"
	// contributes too: its accounting differs from the legacy lossless
	// path (honest wire headers), so the two must not share checkpoints.
	if c.Codec != "" {
		parts = append(parts, "codec:"+c.Codec)
	}
	return TagConfig(parts...)
}

// tierSpec is the config's canonical tier-distribution rendering (empty when
// untiered) — what checkpoints record and restores compare.
func (c Config) tierSpec() string {
	if c.TierDist == nil {
		return ""
	}
	return c.TierDist.String()
}

// runTag extends trainingTag with the federation's identity — client count
// and every client's ID, local data size and device rate — so a checkpoint
// is also refused when the client pool it was trained over changed, not
// just the hyperparameters. A source with a non-empty Fingerprint (a virtual
// fleet) already pins the whole population's construction, so its tag hashes
// the fingerprint instead of walking millions of descriptors per checkpoint;
// the legacy eager source (empty fingerprint) keeps the per-client hash and
// therefore its committed checkpoint tags.
func (r *Runner) runTag() uint64 {
	if fp := r.src.Fingerprint(); fp != "" {
		return TagConfig(r.cfg.trainingTag(), r.src.NumClients(), "src:"+fp)
	}
	parts := make([]any, 0, 2+3*len(r.clients))
	parts = append(parts, r.cfg.trainingTag(), len(r.clients))
	for _, cl := range r.clients {
		parts = append(parts, cl.ID, cl.Data.Len(), cl.Device.FLOPSRate)
	}
	return TagConfig(parts...)
}

// CaptureScheduler fills the state's SchedName/SchedState from a scheduler
// (clearing both for nil). It is the single serialization point for
// scheduler state, shared by Runner.Snapshot and fedserver's per-round
// snapshot so the two engines' checkpoints cannot drift apart.
func (s *RunState) CaptureScheduler(scheduler sched.Scheduler) error {
	s.SchedName, s.SchedState = "", nil
	if scheduler == nil {
		return nil
	}
	s.SchedName = scheduler.Name()
	if st, ok := scheduler.(sched.Stateful); ok {
		blob, err := st.SnapshotState()
		if err != nil {
			return fmt.Errorf("core: snapshot scheduler %s: %w", s.SchedName, err)
		}
		s.SchedState = blob
	}
	return nil
}

// CaptureStrategy fills the state's StratName/StratState from an explicitly
// configured strategy (clearing both for nil, the legacy default path). It
// is the single serialization point for strategy state, shared by
// Runner.Snapshot and fedserver's per-round snapshot.
func (s *RunState) CaptureStrategy(strat strategy.Strategy) {
	s.StratName, s.StratState = "", nil
	if strat == nil {
		return
	}
	s.StratName = strat.Fingerprint()
	if st, ok := strat.(strategy.Stateful); ok {
		for _, t := range st.StateTensors() {
			s.StratState = append(s.StratState, t.Clone())
		}
	}
}

// Snapshot captures the runner's complete resumable state after the last
// completed round. The returned state is independent of the runner: tensors
// are cloned and maps copied.
func (r *Runner) Snapshot() (*RunState, error) {
	util, seconds := r.utility.Export()
	s := &RunState{
		Seed:           r.cfg.Seed,
		ConfigTag:      r.runTag(),
		Round:          r.doneRound,
		Model:          SnapshotModelState(r.global),
		Hist:           copyHistory(r.hist),
		Acct:           r.acct.State(),
		TrackerUtil:    util,
		TrackerSeconds: seconds,
	}
	if err := s.CaptureScheduler(r.cfg.Scheduler); err != nil {
		return nil, err
	}
	s.CaptureStrategy(r.cfg.Strategy)
	s.TierSpec = r.cfg.tierSpec()
	s.CodecName = r.cfg.Codec
	s.CodecResiduals = r.codecResiduals()
	s.FleetSpec = r.src.Fingerprint()
	return s, nil
}

// ValidateFor checks that the state belongs to the run described by the
// given parameters — same seed, same training configuration (TagConfig
// fingerprint), a round within the budget, a self-consistent history, a
// matching scheduler, a matching strategy (nil strat means the legacy
// default path; pass the explicitly configured strategy otherwise), and a
// matching device-tier distribution (tierSpec is the configured
// distribution's canonical String, empty for untiered runs), a matching
// uplink codec (codecName is the configured comm.ParseCodec spec, empty for
// codec-free runs), and a matching fleet fingerprint (fleetSpec is the client
// source's Fingerprint, empty for the legacy eager pool). Both engines
// (Runner.RestoreInto and fedserver's warm-start) share this check so their
// refusal rules cannot drift.
func (s *RunState) ValidateFor(seed int64, rounds int, configTag uint64, scheduler sched.Scheduler, strat strategy.Strategy, tierSpec, codecName, fleetSpec string) error {
	if s.Seed != seed {
		return fmt.Errorf("%w: checkpoint seed %d does not match configured seed %d",
			ErrConfig, s.Seed, seed)
	}
	if s.ConfigTag != configTag {
		return fmt.Errorf("%w: checkpoint was written under a different training configuration "+
			"(tag %#x vs %#x); resuming would silently blend two regimes",
			ErrConfig, s.ConfigTag, configTag)
	}
	if s.Round < 0 || s.Round > rounds {
		return fmt.Errorf("%w: checkpoint round %d outside configured run of %d rounds",
			ErrConfig, s.Round, rounds)
	}
	if len(s.Hist.Records) != s.Round {
		return fmt.Errorf("%w: checkpoint has %d history records for round %d",
			ErrConfig, len(s.Hist.Records), s.Round)
	}
	cfgSched := ""
	if scheduler != nil {
		cfgSched = scheduler.Name()
	}
	if s.SchedName != cfgSched {
		return fmt.Errorf("%w: checkpoint scheduler %q does not match configured %q",
			ErrConfig, s.SchedName, cfgSched)
	}
	if _, ok := scheduler.(sched.Stateful); ok {
		if len(s.SchedState) == 0 {
			return fmt.Errorf("%w: stateful scheduler %s but checkpoint carries no scheduler state",
				ErrConfig, cfgSched)
		}
	} else if len(s.SchedState) > 0 {
		return fmt.Errorf("%w: checkpoint carries scheduler state but %q is stateless",
			ErrConfig, cfgSched)
	}
	cfgStrat := ""
	if strat != nil {
		cfgStrat = strat.Fingerprint()
	}
	if s.StratName != cfgStrat {
		return fmt.Errorf("%w: checkpoint strategy %q does not match configured %q; resuming under "+
			"an edited strategy would silently blend two optimization regimes",
			ErrConfig, s.StratName, cfgStrat)
	}
	if len(s.StratState) > 0 {
		if _, ok := strat.(strategy.Stateful); !ok {
			return fmt.Errorf("%w: checkpoint carries strategy state but %q cannot hold it",
				ErrConfig, cfgStrat)
		}
	}
	if s.TierSpec != tierSpec {
		return fmt.Errorf("%w: checkpoint tier distribution %q does not match configured %q; resuming "+
			"under an edited tier mix would silently change every client's layer mask",
			ErrConfig, s.TierSpec, tierSpec)
	}
	if s.CodecName != codecName {
		return fmt.Errorf("%w: checkpoint codec %q does not match configured %q; resuming under an "+
			"edited codec would silently change every subsequent update's wire encoding",
			ErrConfig, s.CodecName, codecName)
	}
	if len(s.CodecResiduals) > 0 && codecName == "" {
		return fmt.Errorf("%w: checkpoint carries codec residuals but no codec is configured", ErrConfig)
	}
	if s.FleetSpec != fleetSpec {
		return fmt.Errorf("%w: checkpoint fleet fingerprint %q does not match configured %q; resuming "+
			"under an edited fleet would silently re-derive every virtual client",
			ErrConfig, s.FleetSpec, fleetSpec)
	}
	return nil
}

// RestoreScheduler installs the state's serialized scheduler state into a
// stateful scheduler (no-op for stateless ones). Call after ValidateFor.
func (s *RunState) RestoreScheduler(scheduler sched.Scheduler) error {
	st, ok := scheduler.(sched.Stateful)
	if !ok {
		return nil
	}
	if err := st.RestoreState(s.SchedState); err != nil {
		return fmt.Errorf("core: restore scheduler %s: %w", scheduler.Name(), err)
	}
	return nil
}

// RestoreStrategy installs the state's server-optimizer tensors into a
// stateful strategy (no-op for nil or stateless ones, which ValidateFor has
// already confirmed carry no state). Call after ValidateFor.
func (s *RunState) RestoreStrategy(strat strategy.Strategy) error {
	st, ok := strat.(strategy.Stateful)
	if !ok {
		return nil
	}
	if err := st.RestoreStateTensors(s.StratState); err != nil {
		return fmt.Errorf("core: restore strategy %s: %w", strat.Name(), err)
	}
	return nil
}

// RestoreInto installs the state into a freshly constructed runner, which
// must have been built with the same configuration (seed, strategy,
// scheduler, clients) as the run that produced the state. The runner's next
// Run continues after s.Round and reproduces the uninterrupted run bit for
// bit. Call before Run.
func (s *RunState) RestoreInto(r *Runner) error {
	if err := s.ValidateFor(r.cfg.Seed, r.cfg.Rounds, r.runTag(), r.cfg.Scheduler, r.cfg.Strategy, r.cfg.tierSpec(), r.cfg.Codec, r.src.Fingerprint()); err != nil {
		return err
	}
	if err := s.RestoreScheduler(r.cfg.Scheduler); err != nil {
		return err
	}
	if err := s.RestoreStrategy(r.cfg.Strategy); err != nil {
		return err
	}
	if err := r.restoreCodecResiduals(s.CodecResiduals); err != nil {
		return err
	}
	if err := RestoreModelState(r.global, s.Model); err != nil {
		return err
	}
	r.utility.Restore(s.TrackerUtil, s.TrackerSeconds)
	r.acct.Restore(s.Acct)
	r.hist = copyHistory(s.Hist)

	// Extending a finished run: that run force-evaluated its final round
	// (Run always evaluates round == Rounds), which a longer run would skip
	// when the round misses the EvalEvery cadence. Evaluation never mutates
	// training state, so only the history needs repair: un-evaluate the
	// record and recompute the accuracy aggregates, keeping the extension
	// bit-identical to a from-scratch longer run.
	if s.Round > 0 && s.Round < r.cfg.Rounds && s.Round%r.cfg.EvalEvery != 0 {
		rec := &r.hist.Records[s.Round-1]
		if !math.IsNaN(rec.TestAccuracy) {
			rec.TestAccuracy = math.NaN()
			var best, final float64
			for _, rr := range r.hist.Records {
				if !math.IsNaN(rr.TestAccuracy) {
					if rr.TestAccuracy > best {
						best = rr.TestAccuracy
					}
					final = rr.TestAccuracy
				}
			}
			r.hist.BestAccuracy, r.hist.FinalAccuracy = best, final
		}
	}

	r.startRound = s.Round
	r.doneRound = s.Round
	r.restored = true
	return nil
}

// Sections encodes the state into checkpoint sections (see DESIGN.md for the
// layout). Encoding is deterministic: identical state yields identical bytes.
func (s *RunState) Sections() ([]ckpt.Section, error) {
	var meta ckpt.Encoder
	meta.PutUint64(schemaVersion)
	meta.PutInt64(s.Seed)
	meta.PutUint64(s.ConfigTag)
	meta.PutInt(s.Round)
	meta.PutFloat64(s.Acct.SelectionSeconds)
	meta.PutFloat64(s.Acct.TrainSeconds)
	meta.PutInt64(s.Acct.UplinkBytes)
	meta.PutInt64(s.Acct.DownlinkBytes)

	var model ckpt.Encoder
	if err := model.PutTensors(s.Model); err != nil {
		return nil, err
	}

	var hist ckpt.Encoder
	hist.PutUint64(uint64(len(s.Hist.Records)))
	for _, rec := range s.Hist.Records {
		hist.PutInt(rec.Round)
		hist.PutInt(rec.CohortSize)
		hist.PutString(rec.SchedPolicy)
		hist.PutInt(rec.Participants)
		hist.PutFloat64(rec.TestAccuracy)
		hist.PutFloat64(rec.MeanTrainLoss)
		hist.PutFloat64(rec.CumTrainSeconds)
		hist.PutInt64(rec.CumUplinkBytes)
	}
	hist.PutFloat64(s.Hist.BestAccuracy)
	hist.PutFloat64(s.Hist.FinalAccuracy)
	hist.PutFloat64(s.Hist.TotalTrainSeconds)
	hist.PutInt64(s.Hist.TotalUplinkBytes)
	hist.PutInt64(s.Hist.TotalDownlinkBytes)

	var tracker ckpt.Encoder
	tracker.PutFloat64Map(s.TrackerUtil)
	tracker.PutFloat64Map(s.TrackerSeconds)

	var schedEnc ckpt.Encoder
	schedEnc.PutString(s.SchedName)
	schedEnc.PutBytes(s.SchedState)

	var opt ckpt.Encoder
	ids := make([]int, 0, len(s.Opt))
	for id := range s.Opt {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	opt.PutUint64(uint64(len(ids)))
	for _, id := range ids {
		opt.PutInt(id)
		if err := opt.PutTensors(s.Opt[id]); err != nil {
			return nil, err
		}
	}

	sections := []ckpt.Section{
		{Name: sectionMeta, Body: meta.Bytes()},
		{Name: sectionModel, Body: model.Bytes()},
		{Name: sectionHistory, Body: hist.Bytes()},
		{Name: sectionTracker, Body: tracker.Bytes()},
		{Name: sectionSched, Body: schedEnc.Bytes()},
		{Name: sectionOpt, Body: opt.Bytes()},
	}
	// The strategy section is written only for explicitly configured
	// strategies: legacy runs keep their exact pre-strategy byte layout, so
	// committed fixtures and old checkpoints stay valid.
	if s.StratName != "" || len(s.StratState) > 0 {
		var strat ckpt.Encoder
		strat.PutString(s.StratName)
		if err := strat.PutTensors(s.StratState); err != nil {
			return nil, err
		}
		sections = append(sections, ckpt.Section{Name: sectionStrategy, Body: strat.Bytes()})
	}
	// The tiers section is written only for tiered runs: untiered
	// checkpoints keep their exact pre-tier byte layout.
	if s.TierSpec != "" {
		var tiers ckpt.Encoder
		tiers.PutString(s.TierSpec)
		sections = append(sections, ckpt.Section{Name: sectionTiers, Body: tiers.Bytes()})
	}
	// The async section is written only for buffered-asynchronous runs:
	// synchronous checkpoints keep their exact pre-async byte layout.
	if s.Async != nil {
		var async ckpt.Encoder
		async.PutInt(s.Async.Version)
		async.PutUint64(uint64(len(s.Async.Buffer)))
		for _, u := range s.Async.Buffer {
			async.PutInt(u.ClientID)
			async.PutInt(u.Round)
			async.PutInt(u.Version)
			async.PutBytes(u.State)
			async.PutUint64(uint64(len(u.Groups)))
			for _, g := range u.Groups {
				async.PutString(g)
			}
			async.PutInt(u.NumSelected)
			async.PutFloat64(u.TrainSeconds)
			async.PutFloat64(u.TrainLoss)
			async.PutFloat64(u.MeanEntropy)
		}
		sections = append(sections, ckpt.Section{Name: sectionAsync, Body: async.Bytes()})
	}
	// The codec section is written only for codec-configured runs:
	// codec-free checkpoints keep their exact pre-codec byte layout.
	// Residual clients are encoded in sorted ID order for determinism.
	if s.CodecName != "" || len(s.CodecResiduals) > 0 {
		var codec ckpt.Encoder
		codec.PutString(s.CodecName)
		resIDs := make([]int, 0, len(s.CodecResiduals))
		for id := range s.CodecResiduals {
			resIDs = append(resIDs, id)
		}
		sort.Ints(resIDs)
		codec.PutUint64(uint64(len(resIDs)))
		for _, id := range resIDs {
			codec.PutInt(id)
			if err := codec.PutTensors(s.CodecResiduals[id]); err != nil {
				return nil, err
			}
		}
		sections = append(sections, ckpt.Section{Name: sectionCodec, Body: codec.Bytes()})
	}
	// The fleet section is written only for fleet-backed runs: eager
	// checkpoints keep their exact pre-fleet byte layout.
	if s.FleetSpec != "" {
		var fleet ckpt.Encoder
		fleet.PutString(s.FleetSpec)
		sections = append(sections, ckpt.Section{Name: sectionFleet, Body: fleet.Bytes()})
	}
	return sections, nil
}

// RunStateFromSections decodes checkpoint sections, reversing Sections.
// Structural problems (missing sections, truncated bodies) report
// ckpt.ErrCorrupt.
func RunStateFromSections(sections []ckpt.Section) (*RunState, error) {
	bodies := make(map[string][]byte, len(sections))
	for _, sec := range sections {
		bodies[sec.Name] = sec.Body
	}
	for _, name := range []string{sectionMeta, sectionModel, sectionHistory, sectionTracker, sectionSched, sectionOpt} {
		if _, ok := bodies[name]; !ok {
			return nil, fmt.Errorf("%w: missing %q section", ckpt.ErrCorrupt, name)
		}
	}
	s := &RunState{}

	meta := ckpt.NewDecoder(bodies[sectionMeta])
	if v := meta.Uint64(); v != schemaVersion && meta.Err() == nil {
		return nil, fmt.Errorf("%w: run-state schema %d (supported: %d)", ckpt.ErrVersion, v, schemaVersion)
	}
	s.Seed = meta.Int64()
	s.ConfigTag = meta.Uint64()
	s.Round = meta.Int()
	s.Acct.SelectionSeconds = meta.Float64()
	s.Acct.TrainSeconds = meta.Float64()
	s.Acct.UplinkBytes = meta.Int64()
	s.Acct.DownlinkBytes = meta.Int64()
	if err := meta.Done(); err != nil {
		return nil, fmt.Errorf("meta section: %w", err)
	}

	model := ckpt.NewDecoder(bodies[sectionModel])
	s.Model = model.Tensors()
	if err := model.Done(); err != nil {
		return nil, fmt.Errorf("model section: %w", err)
	}

	hist := ckpt.NewDecoder(bodies[sectionHistory])
	n := hist.Uint64()
	if n > uint64(len(bodies[sectionHistory])) {
		return nil, fmt.Errorf("%w: history claims %d records", ckpt.ErrCorrupt, n)
	}
	if n > 0 {
		s.Hist.Records = make([]RoundRecord, 0, n)
	}
	for i := uint64(0); i < n && hist.Err() == nil; i++ {
		s.Hist.Records = append(s.Hist.Records, RoundRecord{
			Round:           hist.Int(),
			CohortSize:      hist.Int(),
			SchedPolicy:     hist.String(),
			Participants:    hist.Int(),
			TestAccuracy:    hist.Float64(),
			MeanTrainLoss:   hist.Float64(),
			CumTrainSeconds: hist.Float64(),
			CumUplinkBytes:  hist.Int64(),
		})
	}
	s.Hist.BestAccuracy = hist.Float64()
	s.Hist.FinalAccuracy = hist.Float64()
	s.Hist.TotalTrainSeconds = hist.Float64()
	s.Hist.TotalUplinkBytes = hist.Int64()
	s.Hist.TotalDownlinkBytes = hist.Int64()
	if err := hist.Done(); err != nil {
		return nil, fmt.Errorf("history section: %w", err)
	}

	tracker := ckpt.NewDecoder(bodies[sectionTracker])
	s.TrackerUtil = tracker.Float64Map()
	s.TrackerSeconds = tracker.Float64Map()
	if err := tracker.Done(); err != nil {
		return nil, fmt.Errorf("tracker section: %w", err)
	}

	schedDec := ckpt.NewDecoder(bodies[sectionSched])
	s.SchedName = schedDec.String()
	s.SchedState = schedDec.Bytes()
	if err := schedDec.Done(); err != nil {
		return nil, fmt.Errorf("sched section: %w", err)
	}

	opt := ckpt.NewDecoder(bodies[sectionOpt])
	optN := opt.Uint64()
	if optN > uint64(len(bodies[sectionOpt])) {
		return nil, fmt.Errorf("%w: opt section claims %d clients", ckpt.ErrCorrupt, optN)
	}
	if optN > 0 {
		s.Opt = make(map[int][]*tensor.Tensor, optN)
	}
	for i := uint64(0); i < optN && opt.Err() == nil; i++ {
		id := opt.Int()
		s.Opt[id] = opt.Tensors()
	}
	if err := opt.Done(); err != nil {
		return nil, fmt.Errorf("opt section: %w", err)
	}

	// The strategy section is optional (absent for legacy runs).
	if body, ok := bodies[sectionStrategy]; ok {
		strat := ckpt.NewDecoder(body)
		s.StratName = strat.String()
		s.StratState = strat.Tensors()
		if err := strat.Done(); err != nil {
			return nil, fmt.Errorf("strategy section: %w", err)
		}
	}

	// The tiers section is optional (absent for untiered runs).
	if body, ok := bodies[sectionTiers]; ok {
		tiers := ckpt.NewDecoder(body)
		s.TierSpec = tiers.String()
		if err := tiers.Done(); err != nil {
			return nil, fmt.Errorf("tiers section: %w", err)
		}
	}

	// The async section is optional (absent for synchronous runs).
	if body, ok := bodies[sectionAsync]; ok {
		async := ckpt.NewDecoder(body)
		st := &AsyncState{Version: async.Int()}
		n := async.Uint64()
		if n > uint64(len(body)) {
			return nil, fmt.Errorf("%w: async section claims %d buffered updates", ckpt.ErrCorrupt, n)
		}
		for i := uint64(0); i < n && async.Err() == nil; i++ {
			u := BufferedUpdate{
				ClientID: async.Int(),
				Round:    async.Int(),
				Version:  async.Int(),
				State:    async.Bytes(),
			}
			gn := async.Uint64()
			if gn > uint64(len(body)) {
				return nil, fmt.Errorf("%w: buffered update claims %d groups", ckpt.ErrCorrupt, gn)
			}
			for g := uint64(0); g < gn && async.Err() == nil; g++ {
				u.Groups = append(u.Groups, async.String())
			}
			u.NumSelected = async.Int()
			u.TrainSeconds = async.Float64()
			u.TrainLoss = async.Float64()
			u.MeanEntropy = async.Float64()
			st.Buffer = append(st.Buffer, u)
		}
		if err := async.Done(); err != nil {
			return nil, fmt.Errorf("async section: %w", err)
		}
		s.Async = st
	}

	// The codec section is optional (absent for codec-free runs).
	if body, ok := bodies[sectionCodec]; ok {
		codec := ckpt.NewDecoder(body)
		s.CodecName = codec.String()
		n := codec.Uint64()
		if n > uint64(len(body)) {
			return nil, fmt.Errorf("%w: codec section claims %d residual clients", ckpt.ErrCorrupt, n)
		}
		if n > 0 {
			s.CodecResiduals = make(map[int][]*tensor.Tensor, n)
		}
		for i := uint64(0); i < n && codec.Err() == nil; i++ {
			id := codec.Int()
			s.CodecResiduals[id] = codec.Tensors()
		}
		if err := codec.Done(); err != nil {
			return nil, fmt.Errorf("codec section: %w", err)
		}
	}

	// The fleet section is optional (absent for eager runs).
	if body, ok := bodies[sectionFleet]; ok {
		fleet := ckpt.NewDecoder(body)
		s.FleetSpec = fleet.String()
		if err := fleet.Done(); err != nil {
			return nil, fmt.Errorf("fleet section: %w", err)
		}
	}

	return s, nil
}

// SaveRunState writes the state to path atomically.
func SaveRunState(path string, s *RunState) error {
	sections, err := s.Sections()
	if err != nil {
		return err
	}
	return ckpt.Save(path, sections)
}

// LoadRunState reads and decodes one checkpoint file.
func LoadRunState(path string) (*RunState, error) {
	sections, err := ckpt.Load(path)
	if err != nil {
		return nil, err
	}
	return RunStateFromSections(sections)
}

// LoadLatestRunState loads the newest valid checkpoint in dir
// (ckpt.ErrNoCheckpoint when there is none).
func LoadLatestRunState(dir string) (*RunState, error) {
	_, sections, err := ckpt.LoadLatest(dir)
	if err != nil {
		return nil, err
	}
	return RunStateFromSections(sections)
}

// SaveCheckpoint snapshots the runner and writes the checkpoint for the last
// completed round into dir (created if missing), returning the file path.
// Run calls this automatically when Config.CheckpointDir is set; it is
// exported for callers that manage checkpoint cadence themselves.
func (r *Runner) SaveCheckpoint(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("core: checkpoint dir: %w", err)
	}
	s, err := r.Snapshot()
	if err != nil {
		return "", err
	}
	path := ckpt.Path(dir, s.Round)
	if err := SaveRunState(path, s); err != nil {
		return "", err
	}
	return path, nil
}

// ResumeLatest restores the runner from the newest valid checkpoint in
// Config.CheckpointDir and returns the restored round. It returns
// ckpt.ErrNoCheckpoint when the directory has none — callers treating a
// missing checkpoint as "start fresh" check for that sentinel.
func (r *Runner) ResumeLatest() (int, error) {
	if r.cfg.CheckpointDir == "" {
		return 0, fmt.Errorf("%w: ResumeLatest without a CheckpointDir", ErrConfig)
	}
	s, err := LoadLatestRunState(r.cfg.CheckpointDir)
	if err != nil {
		return 0, err
	}
	if err := s.RestoreInto(r); err != nil {
		return 0, err
	}
	return s.Round, nil
}
