package core

import (
	"reflect"
	"testing"

	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
)

// TestReplicaPathBitIdenticalToLegacy pins the tentpole invariant: the pooled
// replica engine (reused model, optimizer, batch iterator, state buffers)
// produces byte-for-byte the same History and final global model as the
// legacy clone-per-client path, across selectors, momentum, FedProx and
// dropout, and with more clients than workers so replicas are rebound
// mid-round.
func TestReplicaPathBitIdenticalToLegacy(t *testing.T) {
	clients, _, test, spec := testFederation(t, 6, 0.5)

	cases := []struct {
		name string
		cfg  Config
		spec models.Spec
	}{
		{
			name: "eds-momentum-partial",
			cfg: Config{
				Rounds:         3,
				LocalEpochs:    2,
				BatchSize:      16,
				LR:             0.1,
				Momentum:       0.5,
				FinetunePart:   models.FinetuneModerate,
				Selector:       selection.Entropy{Temperature: 0.1},
				SelectFraction: 0.5,
				Parallelism:    3,
				Seed:           42,
			},
			spec: spec,
		},
		{
			name: "prox-dropout-full",
			cfg: Config{
				Rounds:         2,
				LocalEpochs:    2,
				BatchSize:      8,
				LR:             0.05,
				Momentum:       0.9,
				ProxMu:         0.01,
				WeightDecay:    1e-4,
				FinetunePart:   models.FinetuneFull,
				Selector:       selection.Random{},
				SelectFraction: 0.7,
				Parallelism:    2,
				Seed:           7,
			},
			spec: func() models.Spec {
				s := spec
				s.DropoutRate = 0.2
				return s
			}(),
		},
		{
			name: "all-straggler-serial",
			cfg: Config{
				Rounds:      2,
				LocalEpochs: 1,
				BatchSize:   32,
				LR:          0.1,
				Straggler:   simtime.FractionParticipation{Fraction: 0.6},
				Parallelism: 1,
				Seed:        3,
			},
			spec: spec,
		},
	}

	run := func(t *testing.T, fast bool, cfg Config, spec models.Spec) (History, *models.Model) {
		t.Helper()
		prev := useReplicaPath
		useReplicaPath = fast
		defer func() { useReplicaPath = prev }()
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		runner, err := NewRunner(cfg, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		return hist, m
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			histLegacy, mLegacy := run(t, false, tc.cfg, tc.spec)
			histFast, mFast := run(t, true, tc.cfg, tc.spec)

			if !reflect.DeepEqual(histLegacy, histFast) {
				t.Fatalf("histories differ:\nlegacy: %+v\nfast:   %+v", histLegacy, histFast)
			}
			legacyState := mLegacy.StateTensors()
			fastState := mFast.StateTensors()
			if len(legacyState) != len(fastState) {
				t.Fatalf("state tensor count differs: %d vs %d", len(legacyState), len(fastState))
			}
			for i := range legacyState {
				if !legacyState[i].Equal(fastState[i]) {
					t.Fatalf("global state tensor %d differs between paths", i)
				}
			}
		})
	}
}
