package core

import (
	"fmt"
	"math"
	"sort"

	"fedfteds/internal/metrics"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// AsyncConfig shapes the buffered-asynchronous (FedBuff-style) simulator:
// every client trains continuously against the model version it last
// received, the server buffers finished updates as they arrive in simulated
// time, and aggregates as soon as Buffer of them are in hand — discounting
// each update by its staleness (how many aggregations the global model has
// advanced since the update's base version was dispatched).
type AsyncConfig struct {
	// Buffer is M, the number of buffered updates that triggers an
	// aggregation. Buffer = pool size with the identity weigher degenerates
	// to the synchronous engine (bit for bit — see RunAsync).
	Buffer int
	// MaxStaleness discards updates staler than this many versions instead
	// of folding them; the discarded client immediately receives the current
	// model. Negative means unlimited (nothing is discarded).
	MaxStaleness int
	// Weigher maps staleness to the discount multiplied into the strategy's
	// aggregation weight. Nil means identity (no discount).
	Weigher strategy.StalenessWeigher
}

func (c AsyncConfig) validate(numClients int) error {
	if c.Buffer < 1 {
		return fmt.Errorf("%w: async buffer %d, need at least 1", ErrConfig, c.Buffer)
	}
	if c.Buffer > numClients {
		return fmt.Errorf("%w: async buffer %d exceeds the %d-client pool — it could never fill",
			ErrConfig, c.Buffer, numClients)
	}
	return nil
}

// RunAsync executes Config.Rounds buffered-asynchronous aggregations over a
// simulated-time event queue and returns the history (one record per
// aggregation). Clients overlap: each trains for its projected round cost in
// simulated seconds, reports, and is handed the then-current model at the
// next aggregation boundary (or immediately, when its update was discarded
// as too stale). Updates fold in ascending client order within each buffer,
// the synchronous engine's participant order, so Buffer = pool size with the
// identity weigher replays Run bit for bit: every client then trains each
// version exactly once and the buffer fills exactly when the round would
// have ended.
//
// Async mode replaces the admission machinery wholesale, so RunAsync rejects
// cohort scheduling, straggler policies, tiered partial training and
// in-simulator checkpointing (warm restarts of async state live in the
// distributed server).
func (r *Runner) RunAsync(acfg AsyncConfig) (History, error) {
	if r.clients == nil {
		return History{}, fmt.Errorf("%w: RunAsync keeps every client's update in flight, which is "+
			"O(pool) memory; fleet-backed runners overlap rounds with RunFleetAsync instead", ErrConfig)
	}
	if err := acfg.validate(len(r.clients)); err != nil {
		return History{}, err
	}
	switch {
	case r.restored:
		return History{}, fmt.Errorf("%w: the async simulator does not resume from checkpoints; "+
			"warm restarts of async state live in the distributed server", ErrConfig)
	case r.cfg.Scheduler != nil || r.cfg.CohortSize > 0:
		return History{}, fmt.Errorf("%w: cohort scheduling and buffered-async dispatch are mutually "+
			"exclusive — the buffer is the admission policy", ErrConfig)
	case r.cfg.TierDist != nil:
		return History{}, fmt.Errorf("%w: tiered partial training is synchronous-only; drop TierDist "+
			"for async runs", ErrConfig)
	case r.cfg.CheckpointEvery > 0:
		return History{}, fmt.Errorf("%w: the async simulator does not checkpoint; use the distributed "+
			"server for resumable async runs", ErrConfig)
	case r.cfg.Codec != "":
		return History{}, fmt.Errorf("%w: the async simulator does not simulate uplink codecs; drop "+
			"Codec for async runs (the distributed server supports reference-free codecs with -buffer)", ErrConfig)
	}
	if _, ok := r.cfg.Straggler.(simtime.FullParticipation); !ok {
		return History{}, fmt.Errorf("%w: straggler policies do not apply in async mode — slow clients "+
			"go stale instead of dropping out", ErrConfig)
	}
	if r.maskProvider() != nil {
		return History{}, fmt.Errorf("%w: strategy %s provides per-client masks, which are "+
			"synchronous-only", ErrConfig, r.strat.Name())
	}
	weigher := acfg.Weigher
	if weigher == nil {
		weigher = strategy.IdentityStaleness()
	}

	r.hist = History{}
	r.acct = simtime.Accountant{}
	r.startRound, r.doneRound = 0, 0

	// Same preamble as Run: freeze the non-finetuned part, resolve the
	// communicated groups/tensors once, project every client's round cost.
	if err := r.global.SetFinetunePart(r.cfg.FinetunePart); err != nil {
		return r.hist, err
	}
	commGroups := r.global.TrainableGroupNames()
	commState, err := r.global.GroupStateTensors(commGroups)
	if err != nil {
		return r.hist, err
	}
	stateSize, err := r.stateBytes(commGroups)
	if err != nil {
		return r.hist, err
	}
	r.commGroups, r.commState = commGroups, commState
	if err := r.setupTiers(); err != nil {
		return r.hist, err
	}
	if err := r.cacheProjectedCosts(); err != nil {
		return r.hist, err
	}
	r.maskActive = false

	n := len(r.clients)
	// Per-pool-position in-flight state: the finished update waiting in the
	// event queue (each client has at most one), the version it trained
	// against, and the owned state buffers the scratch results are copied
	// into (trainParticipants reuses its buffers across calls).
	pend := make([]clientResult, n)
	pendVersion := make([]int, n)
	pendBufs := make([][]*tensor.Tensor, n)
	var q simtime.EventQueue
	now := 0.0
	version := 0

	dispatch := func(positions []int, round int, at float64) error {
		if len(positions) == 0 {
			return nil
		}
		sort.Ints(positions)
		if cap(r.partScratch) < len(positions) {
			r.partScratch = make([]*Client, len(positions))
		}
		parts := r.partScratch[:len(positions)]
		for i, pos := range positions {
			parts[i] = r.clients[pos]
		}
		results, err := r.trainParticipants(parts, round)
		if err != nil {
			return err
		}
		for i, pos := range positions {
			res := results[i]
			bufs := pendBufs[pos]
			if cap(bufs) < len(res.state) {
				bufs = append(bufs[:len(bufs)], make([]*tensor.Tensor, len(res.state)-len(bufs))...)
			}
			bufs = bufs[:len(res.state)]
			for ti, src := range res.state {
				if bufs[ti] == nil || !bufs[ti].SameShape(src) {
					bufs[ti] = tensor.Ensure(bufs[ti], src.Shape()...)
				}
				if err := bufs[ti].CopyFrom(src); err != nil {
					return fmt.Errorf("core: buffering update from client %d: %w", res.clientID, err)
				}
			}
			pendBufs[pos] = bufs
			res.state = bufs
			pend[pos] = res
			pendVersion[pos] = version
			q.Push(simtime.Event{Time: at + r.projCost[pos], ID: pos})
		}
		return nil
	}

	initial := make([]int, n)
	copy(initial, r.allIDs)
	if err := dispatch(initial, 1, now); err != nil {
		return r.hist, err
	}

	var (
		folded    []clientResult
		foldedPos []int
		lambdas   []float64
		order     []int
		aggRes    []clientResult
		aggPos    []int
		aggLam    []float64
	)
	for agg := 1; agg <= r.cfg.Rounds; agg++ {
		folded, foldedPos, lambdas = folded[:0], foldedPos[:0], lambdas[:0]
		discarded := 0
		for len(folded) < acfg.Buffer {
			ev, ok := q.Pop()
			if !ok {
				return r.hist, fmt.Errorf("core: async aggregation %d starved with %d/%d updates buffered",
					agg, len(folded), acfg.Buffer)
			}
			now = ev.Time
			s := version - pendVersion[ev.ID]
			if acfg.MaxStaleness >= 0 && s > acfg.MaxStaleness {
				// The client computed and uplinked regardless; count the work,
				// drop the update, and hand it the current model right away.
				r.acct.AddRound(pend[ev.ID].cost)
				r.acct.AddCommunication(stateSize, stateSize)
				discarded++
				if err := dispatch([]int{ev.ID}, agg, now); err != nil {
					return r.hist, err
				}
				continue
			}
			lam := weigher.Weight(s)
			if lam <= 0 || math.IsNaN(lam) || math.IsInf(lam, 0) {
				return r.hist, fmt.Errorf("core: staleness weigher %s returned %v for staleness %d",
					weigher.Name(), lam, s)
			}
			folded = append(folded, pend[ev.ID])
			foldedPos = append(foldedPos, ev.ID)
			lambdas = append(lambdas, lam)
		}

		// Fold in ascending client order — the synchronous engine's
		// participant order — not arrival order, so the degenerate full-buffer
		// configuration reproduces Run's arithmetic exactly.
		order = order[:0]
		for i := range foldedPos {
			order = append(order, i)
		}
		sort.Slice(order, func(a, b int) bool { return foldedPos[order[a]] < foldedPos[order[b]] })
		aggRes, aggPos, aggLam = aggRes[:0], aggPos[:0], aggLam[:0]
		for _, i := range order {
			aggRes = append(aggRes, folded[i])
			aggPos = append(aggPos, foldedPos[i])
			aggLam = append(aggLam, lambdas[i])
		}
		if err := r.aggregate(aggRes, commState, aggLam); err != nil {
			return r.hist, err
		}
		version++

		var lossSum float64
		for i, res := range aggRes {
			r.acct.AddRound(res.cost)
			r.acct.AddCommunication(stateSize, stateSize)
			lossSum += res.trainLoss
			r.utility.ObserveUpdate(aggPos[i], res.meanEntropy, res.trainLoss, res.cost.Total())
		}

		rec := RoundRecord{
			Round:           agg,
			CohortSize:      len(aggRes) + discarded,
			Participants:    len(aggRes),
			TestAccuracy:    math.NaN(),
			MeanTrainLoss:   lossSum / float64(len(aggRes)),
			CumTrainSeconds: r.acct.TotalSeconds(),
			CumUplinkBytes:  r.acct.UplinkBytes(),
		}
		if r.cfg.EvalEvery > 0 && (agg%r.cfg.EvalEvery == 0 || agg == r.cfg.Rounds) {
			acc, err := metrics.Accuracy(r.global, r.test)
			if err != nil {
				return r.hist, fmt.Errorf("core: eval aggregation %d: %w", agg, err)
			}
			rec.TestAccuracy = acc
			if acc > r.hist.BestAccuracy {
				r.hist.BestAccuracy = acc
			}
			r.hist.FinalAccuracy = acc
		}
		r.hist.Records = append(r.hist.Records, rec)
		r.doneRound = agg

		// The consumed clients receive the freshly aggregated model and start
		// training it; after the final aggregation there is nothing left to
		// train for.
		if agg < r.cfg.Rounds {
			if err := dispatch(aggPos, agg+1, now); err != nil {
				return r.hist, err
			}
			// dispatch sorts its argument in place; aggPos is already sorted,
			// aggRes/aggLam stay aligned.
		}
	}
	r.hist.TotalTrainSeconds = r.acct.TotalSeconds()
	r.hist.TotalUplinkBytes = r.acct.UplinkBytes()
	r.hist.TotalDownlinkBytes = r.acct.DownlinkBytes()
	return r.hist, nil
}
