package core

import (
	"errors"
	"math"
	"testing"

	"fedfteds/internal/models"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
)

// sameRecord compares two round records field by field, treating NaN
// accuracies as equal.
func sameRecord(a, b RoundRecord) bool {
	accEq := a.TestAccuracy == b.TestAccuracy ||
		(math.IsNaN(a.TestAccuracy) && math.IsNaN(b.TestAccuracy))
	return a.Round == b.Round && a.CohortSize == b.CohortSize &&
		a.SchedPolicy == b.SchedPolicy && a.Participants == b.Participants &&
		accEq && a.MeanTrainLoss == b.MeanTrainLoss &&
		a.CumTrainSeconds == b.CumTrainSeconds && a.CumUplinkBytes == b.CumUplinkBytes
}

// TestAsyncFullBufferBitIdenticalToSync is the simulator half of the issue's
// sync/async equivalence gate: a buffer the size of the pool with the
// identity staleness weigher must replay the synchronous engine bit for bit —
// every history field and every final model parameter.
func TestAsyncFullBufferBitIdenticalToSync(t *testing.T) {
	cfg := Config{Rounds: 4, LocalEpochs: 1, LR: 0.1, Momentum: 0.5, Seed: 33}
	build := func() (*Runner, *models.Model) {
		clients, _, test, spec := testFederation(t, 5, 0.5)
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(cfg, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return r, m
	}

	rs, ms := build()
	syncHist, err := rs.Run()
	if err != nil {
		t.Fatal(err)
	}
	ra, ma := build()
	asyncHist, err := ra.RunAsync(AsyncConfig{
		Buffer:       5,
		MaxStaleness: -1,
		Weigher:      strategy.IdentityStaleness(),
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(asyncHist.Records) != len(syncHist.Records) {
		t.Fatalf("%d async records, %d sync", len(asyncHist.Records), len(syncHist.Records))
	}
	for i := range syncHist.Records {
		if !sameRecord(syncHist.Records[i], asyncHist.Records[i]) {
			t.Fatalf("record %d diverged:\nsync  %+v\nasync %+v",
				i+1, syncHist.Records[i], asyncHist.Records[i])
		}
	}
	if syncHist.BestAccuracy != asyncHist.BestAccuracy ||
		syncHist.FinalAccuracy != asyncHist.FinalAccuracy ||
		syncHist.TotalTrainSeconds != asyncHist.TotalTrainSeconds ||
		syncHist.TotalUplinkBytes != asyncHist.TotalUplinkBytes ||
		syncHist.TotalDownlinkBytes != asyncHist.TotalDownlinkBytes {
		t.Fatalf("history totals diverged:\nsync  %+v\nasync %+v", syncHist, asyncHist)
	}

	st, at := ms.StateTensors(), ma.StateTensors()
	if len(st) != len(at) {
		t.Fatalf("%d sync state tensors, %d async", len(st), len(at))
	}
	for ti := range st {
		sd, ad := st[ti].Data(), at[ti].Data()
		for k := range sd {
			if sd[k] != ad[k] {
				t.Fatalf("state tensor %d diverged at element %d: sync %v async %v",
					ti, k, sd[k], ad[k])
			}
		}
	}
}

// TestAsyncPartialBufferAggregatesStale exercises the genuinely asynchronous
// regime: a pool with a 4x device-speed spread and a buffer smaller than the
// pool. Fast clients lap slow ones, so some folded updates must be stale,
// every aggregation must still fold exactly Buffer updates, and the run must
// still learn.
func TestAsyncPartialBufferAggregatesStale(t *testing.T) {
	clients, _, test, spec := testFederation(t, 6, 0.5)
	for i, cl := range clients {
		// Spread: clients 0-2 fast, 3-5 progressively slower.
		cl.Device = simtime.Device{FLOPSRate: 1e9 / float64(1+i/3*3)}
	}
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{Rounds: 8, LocalEpochs: 1, LR: 0.1, Momentum: 0.5, Seed: 7}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.RunAsync(AsyncConfig{Buffer: 3, MaxStaleness: -1, Weigher: strategy.InvSqrtStaleness()})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Records) != 8 {
		t.Fatalf("%d records, want 8", len(hist.Records))
	}
	for i, rec := range hist.Records {
		if rec.Participants != 3 {
			t.Fatalf("aggregation %d folded %d updates, want buffer size 3", i+1, rec.Participants)
		}
	}
	if hist.FinalAccuracy <= 0.2 {
		t.Fatalf("async run did not learn: final accuracy %v", hist.FinalAccuracy)
	}
}

// TestAsyncMaxStalenessDiscards pins the discard path: with a strict
// staleness cap and a slow minority, some updates must be dropped (visible as
// CohortSize > Participants) while every aggregation still folds a full
// buffer.
func TestAsyncMaxStalenessDiscards(t *testing.T) {
	clients, _, test, spec := testFederation(t, 5, 0.5)
	clients[4].Device = simtime.Device{FLOPSRate: 1e8} // 10x slower straggler
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{Rounds: 10, LocalEpochs: 1, LR: 0.1, Momentum: 0.5, Seed: 9}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.RunAsync(AsyncConfig{Buffer: 2, MaxStaleness: 0, Weigher: strategy.IdentityStaleness()})
	if err != nil {
		t.Fatal(err)
	}
	discards := 0
	for i, rec := range hist.Records {
		if rec.Participants != 2 {
			t.Fatalf("aggregation %d folded %d updates, want 2", i+1, rec.Participants)
		}
		discards += rec.CohortSize - rec.Participants
	}
	if discards == 0 {
		t.Fatal("staleness cap 0 with a 10x straggler discarded nothing")
	}
}

// TestAsyncDeterministicAcrossParallelism: the event-queue schedule and the
// fold order are independent of the training worker pool size.
func TestAsyncDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) History {
		clients, _, test, spec := testFederation(t, 4, 0.5)
		clients[0].Device = simtime.Device{FLOPSRate: 5e8}
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(Config{
			Rounds: 4, LocalEpochs: 1, LR: 0.1, Momentum: 0.5, Seed: 42, Parallelism: par,
		}, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		h, err := r.RunAsync(AsyncConfig{Buffer: 2, MaxStaleness: -1, Weigher: strategy.InvSqrtStaleness()})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h4 := run(1), run(4)
	if len(h1.Records) != len(h4.Records) {
		t.Fatalf("%d vs %d records", len(h1.Records), len(h4.Records))
	}
	for i := range h1.Records {
		if !sameRecord(h1.Records[i], h4.Records[i]) {
			t.Fatalf("aggregation %d diverged across parallelism:\nserial   %+v\nparallel %+v",
				i+1, h1.Records[i], h4.Records[i])
		}
	}
}

func TestAsyncConfigRejections(t *testing.T) {
	clients, _, test, spec := testFederation(t, 3, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Rounds: 2, LocalEpochs: 1, LR: 0.1, Seed: 1}
	ok := AsyncConfig{Buffer: 2, MaxStaleness: -1}

	tests := []struct {
		name   string
		mutate func(*Config)
		acfg   AsyncConfig
	}{
		{name: "zero buffer", mutate: func(c *Config) {}, acfg: AsyncConfig{Buffer: 0}},
		{name: "buffer exceeds pool", mutate: func(c *Config) {}, acfg: AsyncConfig{Buffer: 4}},
		{name: "cohort scheduling", mutate: func(c *Config) { c.CohortSize = 2 }, acfg: ok},
		{name: "straggler policy", mutate: func(c *Config) {
			c.Straggler = simtime.DeadlineStraggler{DeadlineSeconds: 1}
		}, acfg: ok},
		{name: "checkpointing", mutate: func(c *Config) {
			c.CheckpointDir = t.TempDir()
			c.CheckpointEvery = 1
		}, acfg: ok},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			r, err := NewRunner(cfg, m, clients, test)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.RunAsync(tt.acfg); !errors.Is(err, ErrConfig) {
				t.Fatalf("expected ErrConfig, got %v", err)
			}
		})
	}
}
