// Package core implements the paper's contribution: the federated-learning
// engine with pluggable optimization strategies (internal/strategy: FedAvg,
// FedProx, and the FedOpt server optimizers FedAvgM/FedAdam/FedYogi),
// entropy-based (and other) data selection, strategy-owned aggregation
// weighting, straggler policies, and full time/communication accounting.
// Clients train concurrently on a bounded worker pool with per-(round,
// client) derived seeds, so results are bit-identical regardless of
// parallelism.
package core

import (
	"errors"
	"fmt"
	"runtime"

	"fedfteds/internal/comm"
	"fedfteds/internal/device"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
)

// ErrConfig reports an invalid federated-learning configuration.
var ErrConfig = errors.New("core: invalid configuration")

// AggWeighting selects the aggregation weights p_k.
type AggWeighting int

const (
	// WeightBySelected weights each client by |D_select| (paper Eq. 5).
	WeightBySelected AggWeighting = iota + 1
	// WeightByLocalSize weights each client by its full |D_k| regardless of
	// how many samples it trained on (ablation).
	WeightByLocalSize
	// WeightUniform gives every participating client equal weight (ablation).
	WeightUniform
)

// String implements fmt.Stringer.
func (w AggWeighting) String() string {
	switch w {
	case WeightBySelected:
		return "selected"
	case WeightByLocalSize:
		return "local-size"
	case WeightUniform:
		return "uniform"
	default:
		return fmt.Sprintf("AggWeighting(%d)", int(w))
	}
}

// Config describes one federated-learning run.
type Config struct {
	// Rounds is the number of communication rounds T.
	Rounds int
	// LocalEpochs is E, the client update epochs per round (paper: 5).
	LocalEpochs int
	// BatchSize for local updates (and centralized training).
	BatchSize int
	// LR is the client learning rate (paper: 0.1).
	LR float64
	// Momentum for client SGD (paper: 0.5).
	Momentum float64
	// WeightDecay for client SGD (paper: none; available for extensions).
	WeightDecay float64
	// ProxMu enables FedProx when positive: the proximal coefficient μ. It
	// configures the default strategy's prox hook and must not be combined
	// with an explicit Strategy (set the hook through the strategy instead).
	ProxMu float64
	// Strategy selects the federated-optimization strategy: the aggregation
	// weighting, the server-side optimizer applied to the weighted client
	// average, and an optional client-side objective hook. Nil composes the
	// legacy behavior from AggWeighting and ProxMu (FedAvg overwrite, pinned
	// bit-identical to runs predating the strategy layer). Stateful
	// strategies must not be shared across runs — construct one per Runner
	// (strategy.Parse always returns a fresh instance).
	Strategy strategy.Strategy
	// FinetunePart controls partial training: FinetuneFull is FedAvg-style
	// whole-model training; FinetuneModerate is the paper's FedFT default.
	FinetunePart models.FinetunePart
	// TierDist, when set, assigns every client a device-capability tier
	// (device.Distribution over the built-in profiles) and switches the run
	// to per-client partial training: each client trains and ships only the
	// layer-group mask its tier can afford, and the server averages each
	// group over the clients that covered it. Nil keeps the uniform
	// FinetunePart behavior, bit-identical to untiered runs.
	TierDist *device.Distribution
	// TrainGroups narrows the trainable groups below what FinetunePart
	// allows — the per-client layer mask of the standalone fedclient path
	// (LocalUpdate applies it after the finetune part). In-process runs
	// configure masks through TierDist instead; NewRunner refuses the field.
	TrainGroups []string
	// Selector picks each client's training subset per round.
	Selector selection.Selector
	// SelectFraction is P_ds, the share of local data selected (0, 1].
	SelectFraction float64
	// Scheduler samples the per-round cohort from the full client pool
	// before any training happens; the Straggler policy then applies within
	// the cohort. Nil trains the whole pool every round (the legacy
	// behavior, bit-identical to runs predating the scheduler).
	Scheduler sched.Scheduler
	// CohortSize is K, the number of clients the Scheduler may pick per
	// round; 0 (or any value >= the pool) means the whole pool. Setting
	// CohortSize without a Scheduler defaults to UniformRandom sampling.
	CohortSize int
	// Straggler decides which clients complete each round.
	Straggler simtime.StragglerPolicy
	// Codec, when set, simulates the distributed deployment's uplink codec
	// (comm.ParseCodec spec, e.g. "int8" or "topk:0.05"): every client's
	// trained state is encoded and decoded through the codec before
	// aggregation — quantization noise, error-feedback residuals and all —
	// and the communication accounting charges the real payload bytes.
	// Empty keeps the legacy lossless path bit-identical to runs predating
	// codecs. "identity" runs the full round-trip too (losslessly), so
	// accounting then includes the blob's 4-byte count header that the
	// legacy path's per-tensor sum omits.
	Codec string
	// AggWeighting selects the aggregation weights (default WeightBySelected).
	AggWeighting AggWeighting
	// EvalEvery evaluates the global model on the test set every this many
	// rounds (default 1); the final round is always evaluated.
	EvalEvery int
	// Parallelism bounds concurrent client updates (default GOMAXPROCS).
	Parallelism int
	// Seed drives all run randomness (client sampling, selection, batching).
	Seed int64
	// CheckpointDir, when set, makes Run write a resumable checkpoint into
	// this directory every CheckpointEvery rounds (and always after the
	// final round, so finished runs can later be extended). A run resumed
	// from such a checkpoint reproduces the uninterrupted run bit for bit.
	CheckpointDir string
	// CheckpointEvery is the round interval between checkpoints; it defaults
	// to 1 when CheckpointDir is set and must not be set without a
	// CheckpointDir.
	CheckpointEvery int
}

// withDefaults returns cfg with unset optional fields filled in.
func (c Config) withDefaults() Config {
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Straggler == nil {
		c.Straggler = simtime.FullParticipation{}
	}
	if c.CohortSize > 0 && c.Scheduler == nil {
		c.Scheduler = sched.UniformRandom{}
	}
	if c.AggWeighting == 0 && c.Strategy == nil {
		// With an explicit Strategy the weighting lives in the strategy; the
		// field is left untouched so validate can refuse a conflicting set.
		c.AggWeighting = WeightBySelected
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 1
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.FinetunePart == 0 {
		c.FinetunePart = models.FinetuneFull
	}
	if c.Selector == nil {
		c.Selector = selection.All{}
	}
	if c.SelectFraction == 0 {
		c.SelectFraction = 1
	}
	if c.CheckpointDir != "" && c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	return c
}

// validate checks a defaulted config.
func (c Config) validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("%w: rounds %d", ErrConfig, c.Rounds)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("%w: local epochs %d", ErrConfig, c.LocalEpochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("%w: batch size %d", ErrConfig, c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("%w: learning rate %v", ErrConfig, c.LR)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("%w: momentum %v", ErrConfig, c.Momentum)
	case c.WeightDecay < 0:
		return fmt.Errorf("%w: weight decay %v", ErrConfig, c.WeightDecay)
	case c.ProxMu < 0:
		return fmt.Errorf("%w: proximal mu %v", ErrConfig, c.ProxMu)
	case c.SelectFraction <= 0 || c.SelectFraction > 1:
		return fmt.Errorf("%w: select fraction %v", ErrConfig, c.SelectFraction)
	case c.CohortSize < 0:
		return fmt.Errorf("%w: cohort size %d", ErrConfig, c.CohortSize)
	case c.EvalEvery < 0:
		return fmt.Errorf("%w: eval every %d", ErrConfig, c.EvalEvery)
	case c.Parallelism < 1:
		return fmt.Errorf("%w: parallelism %d", ErrConfig, c.Parallelism)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("%w: checkpoint every %d", ErrConfig, c.CheckpointEvery)
	case c.CheckpointEvery > 0 && c.CheckpointDir == "":
		return fmt.Errorf("%w: checkpoint interval without a checkpoint directory", ErrConfig)
	case c.Strategy != nil && c.ProxMu > 0:
		return fmt.Errorf("%w: ProxMu together with an explicit Strategy — configure the proximal "+
			"term through the strategy's local hook instead", ErrConfig)
	case c.Strategy != nil && c.AggWeighting != 0:
		return fmt.Errorf("%w: AggWeighting together with an explicit Strategy — the strategy owns "+
			"the aggregation weighting", ErrConfig)
	case c.TierDist != nil && len(c.TrainGroups) > 0:
		return fmt.Errorf("%w: TrainGroups together with TierDist — tiered runs derive each "+
			"client's mask from its tier", ErrConfig)
	}
	if c.Codec != "" {
		if _, err := comm.ParseCodec(c.Codec); err != nil {
			return fmt.Errorf("%w: codec %q: %v", ErrConfig, c.Codec, err)
		}
	}
	return nil
}

// resolveStrategy returns the effective strategy of a defaulted config:
// cfg.Strategy when set, otherwise the legacy composition of AggWeighting
// and ProxMu over the default FedAvg overwrite.
func (c Config) resolveStrategy() (strategy.Strategy, error) {
	if c.Strategy != nil {
		return c.Strategy, nil
	}
	var w strategy.Weighting
	switch c.AggWeighting {
	case WeightBySelected:
		w = strategy.WeightBySelected
	case WeightByLocalSize:
		w = strategy.WeightByLocalSize
	case WeightUniform:
		w = strategy.WeightUniform
	default:
		return nil, fmt.Errorf("%w: aggregation weighting %v", ErrConfig, c.AggWeighting)
	}
	s, err := strategy.FedAvgWith(w, c.localHook())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return s, nil
}

// localHook returns the client-side hook of the effective strategy: the
// explicit strategy's hook, or the legacy ProxMu mapping.
func (c Config) localHook() strategy.LocalHook {
	if c.Strategy != nil {
		return c.Strategy.LocalHook()
	}
	if c.ProxMu > 0 {
		return strategy.Prox{Mu: c.ProxMu}
	}
	return nil
}
