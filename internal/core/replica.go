package core

import (
	"fmt"
	"math"
	"strings"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/nn"
	"fedfteds/internal/opt"
	"fedfteds/internal/seeds"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// useReplicaPath gates the Runner's pooled client-replica fast path. The
// legacy clone-per-client path (LocalUpdate) is kept so the equivalence tests
// can pin the fast path bit-identical to it; production runs never disable
// this.
var useReplicaPath = true

// replica is one worker's reusable client-training context: a model replica
// that is re-filled from the global model per client (instead of a full
// Clone per client-round), a reusable SGD whose momentum buffers are zeroed
// per round, a streaming batch iterator, and the loss scratch. Together with
// the per-layer workspace caches this makes the steady-state training loop
// allocation-free.
//
// A replica belongs to exactly one worker goroutine at a time. Rebinding is
// bit-identical to cloning: the full model state (params and buffers) is
// copied from the global model, dropout RNGs rewind to their build-time
// streams, and the optimizer resets its velocity and proximal anchor.
type replica struct {
	model *models.Model
	sgd   *opt.SGD
	iter  *data.BatchIter
	loss  nn.LossScratch
	// hook is the strategy's client-side objective twist, bound per round.
	hook strategy.LocalHook
	// maskKey names the layer mask the model is currently set to, and sgds
	// caches one optimizer per distinct mask (each mask has its own
	// trainable-parameter set): tiered runs rebind masks per client without
	// re-allocating velocity buffers. sgdCfg rebuilds optimizers for masks
	// first seen mid-run. The untiered path never leaves the initial mask,
	// so it keeps using the construction-time sgd untouched.
	maskKey string
	sgds    map[string]*opt.SGD
	sgdCfg  opt.SGDConfig
}

// newReplica builds a worker replica for the runner's global model.
func newReplica(global *models.Model, cfg Config) (*replica, error) {
	m, err := global.Clone()
	if err != nil {
		return nil, fmt.Errorf("core: replica clone: %w", err)
	}
	if err := m.SetFinetunePart(cfg.FinetunePart); err != nil {
		return nil, fmt.Errorf("core: replica: %w", err)
	}
	hook := cfg.localHook()
	sgdCfg := opt.SGDConfig{
		LR:          cfg.LR,
		Momentum:    cfg.Momentum,
		WeightDecay: cfg.WeightDecay,
	}
	if hook != nil {
		hook.TuneSGD(&sgdCfg)
	}
	sgd, err := opt.NewSGD(sgdCfg, m.TrainableParams())
	if err != nil {
		return nil, fmt.Errorf("core: replica: %w", err)
	}
	key := strings.Join(m.TrainableGroupNames(), ",")
	return &replica{model: m, sgd: sgd, iter: &data.BatchIter{}, hook: hook,
		maskKey: key, sgds: map[string]*opt.SGD{key: sgd}, sgdCfg: sgdCfg}, nil
}

// bindMask applies a client's layer mask to the replica, swapping in the
// mask's cached optimizer (or building one on first sight). A nil mask — the
// untiered path — and a mask equal to the current one are no-ops, so legacy
// runs and full-tier clients keep the construction-time model/optimizer pair
// bit for bit.
func (rep *replica) bindMask(mask []string) error {
	if mask == nil {
		return nil
	}
	key := strings.Join(mask, ",")
	if key == rep.maskKey {
		return nil
	}
	if err := rep.model.SetTrainableGroups(mask); err != nil {
		return err
	}
	sgd, ok := rep.sgds[key]
	if !ok {
		var err error
		if sgd, err = opt.NewSGD(rep.sgdCfg, rep.model.TrainableParams()); err != nil {
			return err
		}
		rep.sgds[key] = sgd
	}
	rep.sgd, rep.maskKey = sgd, key
	return nil
}

// runReplicaRound executes one client's local round on a pooled replica,
// mirroring LocalUpdate operation for operation (same RNG streams, same
// batch composition, same update order) so the two paths produce bit-identical
// histories. The trained state is copied into stateBuf's reused tensors,
// which the caller owns per result slot.
func runReplicaRound(cfg Config, global *models.Model, rep *replica, cl *Client, round int, mask []string, stateBuf *[]*tensor.Tensor) (clientResult, error) {
	if err := rep.model.CopyStateFrom(global); err != nil {
		return clientResult{}, fmt.Errorf("core: client %d: rebind replica: %w", cl.ID, err)
	}
	if err := rep.bindMask(mask); err != nil {
		return clientResult{}, fmt.Errorf("core: client %d: mask: %w", cl.ID, err)
	}
	rep.model.ResetTransientRNGs()
	rng := seeds.ClientRound(cfg.Seed, round, cl.ID)

	var (
		selIdx      []int
		meanEntropy = math.NaN()
		err         error
	)
	if us, ok := cfg.Selector.(selection.UtilityScorer); ok {
		selIdx, meanEntropy, err = us.SelectWithUtility(rep.model, cl.Data, cfg.SelectFraction, rng)
	} else {
		selIdx, err = cfg.Selector.Select(rep.model, cl.Data, cfg.SelectFraction, rng)
	}
	if err != nil {
		return clientResult{}, fmt.Errorf("core: client %d: selection: %w", cl.ID, err)
	}
	if err := rep.iter.Bind(cl.Data, selIdx, cfg.BatchSize); err != nil {
		return clientResult{}, fmt.Errorf("core: client %d: batches: %w", cl.ID, err)
	}

	rep.sgd.Reset()
	if rep.hook != nil {
		if err := rep.hook.OnBind(rep.sgd); err != nil {
			return clientResult{}, fmt.Errorf("core: client %d: hook %s: %w", cl.ID, rep.hook.Name(), err)
		}
	}

	loss := nn.SoftmaxCrossEntropy{}
	numSelected := rep.iter.Len()
	var lastLoss float64
	for epoch := 0; epoch < cfg.LocalEpochs; epoch++ {
		rep.iter.Reset(rng)
		var epochLoss float64
		for {
			b, ok := rep.iter.Next()
			if !ok {
				break
			}
			logits := rep.model.Forward(b.X, true)
			v, dl, err := loss.LossInto(&rep.loss, logits, b.Y)
			if err != nil {
				return clientResult{}, fmt.Errorf("core: client %d: loss: %w", cl.ID, err)
			}
			rep.model.Backward(dl)
			rep.sgd.Step()
			epochLoss += v * float64(len(b.Y))
		}
		lastLoss = epochLoss / float64(numSelected)
	}

	cost, err := simtime.ClientRoundCost(rep.model, cl.Device,
		cl.Data.Len(), numSelected, cfg.LocalEpochs, cfg.Selector.ScoringPasses())
	if err != nil {
		return clientResult{}, fmt.Errorf("core: client %d: cost: %w", cl.ID, err)
	}

	live, err := rep.model.GroupStateTensors(rep.model.TrainableGroupNames())
	if err != nil {
		return clientResult{}, fmt.Errorf("core: client %d: state: %w", cl.ID, err)
	}
	if len(*stateBuf) < len(live) {
		*stateBuf = append(*stateBuf, make([]*tensor.Tensor, len(live)-len(*stateBuf))...)
	}
	state := (*stateBuf)[:len(live)]
	for i, ts := range live {
		state[i] = tensor.Ensure(state[i], ts.Shape()...)
		if err := state[i].CopyFrom(ts); err != nil {
			return clientResult{}, fmt.Errorf("core: client %d: state tensor %d: %w", cl.ID, i, err)
		}
	}
	*stateBuf = state
	return clientResult{
		clientID:    cl.ID,
		state:       state,
		numSelected: numSelected,
		localSize:   cl.Data.Len(),
		cost:        cost,
		trainLoss:   lastLoss,
		meanEntropy: meanEntropy,
	}, nil
}
