package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fedfteds/internal/data"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
	"fedfteds/internal/partition"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
	"fedfteds/internal/tensor"
)

// testFederation builds a small synthetic federation: numClients clients with
// Dirichlet-partitioned data, one test set, and a fresh MLP.
func testFederation(t *testing.T, numClients int, alpha float64) ([]*Client, *data.Dataset, *data.Dataset, models.Spec) {
	t.Helper()
	suite, err := data.NewStandardSuite(11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	pool, err := suite.Target10.GenerateBalanced(numClients*60, rng)
	if err != nil {
		t.Fatal(err)
	}
	test, err := suite.Target10.GenerateBalanced(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.Dirichlet(pool.Y, numClients, alpha, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, numClients)
	for i, idxs := range parts {
		ds, err := pool.Subset(idxs)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = &Client{ID: i, Data: ds, Device: simtime.Device{FLOPSRate: 1e9}}
	}
	spec := models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{64},
		NumClasses: 10,
		Hidden:     32,
		InitSeed:   13,
	}
	return clients, pool, test, spec
}

func TestNewRunnerValidation(t *testing.T) {
	clients, _, test, spec := testFederation(t, 3, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	valid := Config{Rounds: 1, LocalEpochs: 1, LR: 0.1, Seed: 1}

	tests := []struct {
		name    string
		mutate  func(*Config)
		global  *models.Model
		clients []*Client
		test    *data.Dataset
	}{
		{name: "zero rounds", mutate: func(c *Config) { c.Rounds = 0 }, global: m, clients: clients, test: test},
		{name: "zero epochs", mutate: func(c *Config) { c.LocalEpochs = 0 }, global: m, clients: clients, test: test},
		{name: "zero lr", mutate: func(c *Config) { c.LR = 0 }, global: m, clients: clients, test: test},
		{name: "bad momentum", mutate: func(c *Config) { c.Momentum = 1 }, global: m, clients: clients, test: test},
		{name: "bad fraction", mutate: func(c *Config) { c.SelectFraction = 2 }, global: m, clients: clients, test: test},
		{name: "negative mu", mutate: func(c *Config) { c.ProxMu = -1 }, global: m, clients: clients, test: test},
		{name: "nil model", mutate: func(c *Config) {}, global: nil, clients: clients, test: test},
		{name: "no clients", mutate: func(c *Config) {}, global: m, clients: nil, test: test},
		{name: "nil test", mutate: func(c *Config) {}, global: m, clients: clients, test: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			if _, err := NewRunner(cfg, tt.global, tt.clients, tt.test); !errors.Is(err, ErrConfig) {
				t.Fatalf("expected ErrConfig, got %v", err)
			}
		})
	}
}

func TestFedAvgLearns(t *testing.T) {
	clients, _, test, spec := testFederation(t, 5, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	initialAcc, err := metrics.Accuracy(m, test)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 8, LocalEpochs: 2, LR: 0.1, Momentum: 0.5, Seed: 21,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Records) != 8 {
		t.Fatalf("%d records, want 8", len(hist.Records))
	}
	if hist.FinalAccuracy <= initialAcc+0.1 {
		t.Fatalf("FedAvg did not learn: %v -> %v", initialAcc, hist.FinalAccuracy)
	}
	if hist.TotalTrainSeconds <= 0 || hist.TotalUplinkBytes <= 0 {
		t.Fatal("accounting not populated")
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) History {
		clients, _, test, spec := testFederation(t, 4, 0.5)
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(Config{
			Rounds: 3, LocalEpochs: 1, LR: 0.1, Momentum: 0.5,
			Seed: 42, Parallelism: par,
		}, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		h, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1 := run(1)
	h4 := run(4)
	for i := range h1.Records {
		a, b := h1.Records[i].TestAccuracy, h4.Records[i].TestAccuracy
		if a != b {
			t.Fatalf("round %d: accuracy %v (serial) vs %v (parallel)", i+1, a, b)
		}
	}
}

func TestFedFTCommunicatesLessAndKeepsLowerFrozen(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)

	runWith := func(part models.FinetunePart) (History, *models.Model) {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(Config{
			Rounds: 2, LocalEpochs: 1, LR: 0.1, Momentum: 0.5,
			FinetunePart: part, Seed: 5,
		}, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		h, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return h, m
	}

	full, _ := runWith(models.FinetuneFull)
	mBefore, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ft, mAfter := runWith(models.FinetuneModerate)

	if ft.TotalUplinkBytes >= full.TotalUplinkBytes {
		t.Fatalf("FedFT uplink %d >= FedAvg uplink %d", ft.TotalUplinkBytes, full.TotalUplinkBytes)
	}
	if ft.TotalTrainSeconds >= full.TotalTrainSeconds {
		t.Fatalf("FedFT train time %v >= FedAvg %v", ft.TotalTrainSeconds, full.TotalTrainSeconds)
	}
	// Frozen groups must be bit-identical to initialization.
	for _, g := range []string{models.GroupLow, models.GroupMid} {
		want, err := mBefore.GroupStateTensors([]string{g})
		if err != nil {
			t.Fatal(err)
		}
		got, err := mAfter.GroupStateTensors([]string{g})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("frozen group %q tensor %d changed during FedFT", g, i)
			}
		}
	}
}

func TestFedProxRunsAndStaysCloserToGlobal(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.1)

	drift := func(mu float64) float64 {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		before := make([]*tensor.Tensor, 0)
		for _, p := range m.Params() {
			before = append(before, p.W.Clone())
		}
		r, err := NewRunner(Config{
			Rounds: 2, LocalEpochs: 3, LR: 0.1, Momentum: 0.5,
			ProxMu: mu, Seed: 7,
		}, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		var d float64
		for i, p := range m.Params() {
			diff := p.W.Clone()
			if err := diff.Sub(before[i]); err != nil {
				t.Fatal(err)
			}
			d += diff.Norm2()
		}
		return d
	}
	plain := drift(0)
	prox := drift(1.0)
	if prox >= plain {
		t.Fatalf("FedProx drift %v >= FedAvg drift %v", prox, plain)
	}
}

func TestEDSSelectionRuns(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.1)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 3, LocalEpochs: 2, LR: 0.1, Momentum: 0.5,
		FinetunePart:   models.FinetuneModerate,
		Selector:       selection.Entropy{Temperature: 0.1},
		SelectFraction: 0.2,
		Seed:           8,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The selection pass must be charged in the accounting.
	if hist.TotalTrainSeconds <= 0 {
		t.Fatal("no time accounted")
	}
	eff, err := hist.LearningEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	if eff <= 0 {
		t.Fatalf("learning efficiency %v", eff)
	}
}

func TestStragglerFractionReducesParticipants(t *testing.T) {
	clients, _, test, spec := testFederation(t, 10, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 2, LocalEpochs: 1, LR: 0.1,
		Straggler: simtime.FractionParticipation{Fraction: 0.3},
		Seed:      9,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range hist.Records {
		if rec.Participants != 3 {
			t.Fatalf("round %d: %d participants, want 3", rec.Round, rec.Participants)
		}
	}
}

func TestAggregateWeighting(t *testing.T) {
	// White-box test of the weighted fusion: two clients with states 0 and 1
	// and selected sizes 1 and 3 must fuse to 0.75.
	clients, _, test, spec := testFederation(t, 2, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{Rounds: 1, LocalEpochs: 1, LR: 0.1, Seed: 3}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	groups := models.GroupNames()
	mk := func(fill float32, nsel int) clientResult {
		st, err := m.GroupStateTensors(groups)
		if err != nil {
			t.Fatal(err)
		}
		cloned := make([]*tensor.Tensor, len(st))
		for i, ts := range st {
			c := tensor.New(ts.Shape()...)
			c.Fill(fill)
			cloned[i] = c
		}
		return clientResult{state: cloned, numSelected: nsel, localSize: nsel * 2}
	}
	live, err := m.GroupStateTensors(groups)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.aggregate([]clientResult{mk(0, 1), mk(1, 3)}, live, nil); err != nil {
		t.Fatal(err)
	}
	for _, ts := range live {
		for _, v := range ts.Data() {
			if math.Abs(float64(v)-0.75) > 1e-6 {
				t.Fatalf("aggregated value %v, want 0.75", v)
			}
		}
	}
}

func TestAggregateUniformWeighting(t *testing.T) {
	clients, _, test, spec := testFederation(t, 2, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 1, LocalEpochs: 1, LR: 0.1, Seed: 3,
		AggWeighting: WeightUniform,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	groups := models.GroupNames()
	mk := func(fill float32, nsel int) clientResult {
		st, err := m.GroupStateTensors(groups)
		if err != nil {
			t.Fatal(err)
		}
		cloned := make([]*tensor.Tensor, len(st))
		for i, ts := range st {
			c := tensor.New(ts.Shape()...)
			c.Fill(fill)
			cloned[i] = c
		}
		return clientResult{state: cloned, numSelected: nsel}
	}
	live, err := m.GroupStateTensors(groups)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.aggregate([]clientResult{mk(0, 1), mk(1, 3)}, live, nil); err != nil {
		t.Fatal(err)
	}
	for _, ts := range live {
		for _, v := range ts.Data() {
			if math.Abs(float64(v)-0.5) > 1e-6 {
				t.Fatalf("uniform aggregated value %v, want 0.5", v)
			}
		}
	}
}

func TestTrainCentralizedLearns(t *testing.T) {
	_, pool, test, spec := testFederation(t, 5, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := TrainCentralized(m, pool, test, CentralConfig{
		Epochs: 6, LR: 0.1, Momentum: 0.5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.BestAccuracy < 0.5 {
		t.Fatalf("centralized accuracy %v, want > 0.5", hist.BestAccuracy)
	}
	if len(hist.EpochLosses) != 6 {
		t.Fatalf("%d epoch losses", len(hist.EpochLosses))
	}
	if hist.EpochLosses[5] >= hist.EpochLosses[0] {
		t.Fatalf("loss did not decrease: %v", hist.EpochLosses)
	}
}

func TestPretrainTransferHelpsInitialAccuracy(t *testing.T) {
	suite, err := data.NewStandardSuite(11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	source, err := suite.Source.GenerateBalanced(1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	test, err := suite.Target10.GenerateBalanced(400, rng)
	if err != nil {
		t.Fatal(err)
	}
	train, err := suite.Target10.GenerateBalanced(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	spec := models.Spec{
		Arch: models.ArchMLP, InputShape: []int{64}, NumClasses: 10,
		Hidden: 32, InitSeed: 16,
	}
	pre, err := PretrainTransfer(spec, source, CentralConfig{
		Epochs: 8, LR: 0.1, Momentum: 0.5, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Fine-tune only the classifier for a few epochs on little data: the
	// pretrained extractor should make this far more effective.
	tune := func(m *models.Model) float64 {
		if err := m.SetFinetunePart(models.FinetuneClassifier); err != nil {
			t.Fatal(err)
		}
		h, err := TrainCentralized(m, train, test, CentralConfig{
			Epochs: 5, LR: 0.1, Momentum: 0.5, Seed: 18,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h.BestAccuracy
	}
	preAcc := tune(pre)
	freshAcc := tune(fresh)
	if preAcc <= freshAcc {
		t.Fatalf("pretrained classifier tuning %.3f <= fresh %.3f", preAcc, freshAcc)
	}
}

func TestHistoryCurveNaNForSkippedRounds(t *testing.T) {
	clients, _, test, spec := testFederation(t, 3, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 4, LocalEpochs: 1, LR: 0.1, EvalEvery: 2, Seed: 10,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	curve := hist.Curve()
	if !math.IsNaN(curve[0]) || math.IsNaN(curve[1]) || !math.IsNaN(curve[2]) || math.IsNaN(curve[3]) {
		t.Fatalf("eval-every-2 curve pattern wrong: %v", curve)
	}
}
