package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"fedfteds/internal/comm"
	"fedfteds/internal/data"
	"fedfteds/internal/device"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// RoundRecord captures the state of the run after one communication round.
type RoundRecord struct {
	// Round is the 1-based round index.
	Round int
	// CohortSize is how many clients the scheduler admitted to this round
	// (the straggler policy then applies within the cohort). It equals the
	// pool size when no scheduler is configured.
	CohortSize int
	// SchedPolicy names the cohort-scheduling policy that produced this
	// round's cohort; empty when no scheduler is configured.
	SchedPolicy string
	// Participants is the number of clients whose updates were aggregated.
	Participants int
	// TestAccuracy is the global model's test accuracy after this round, or
	// NaN when the round was not evaluated.
	TestAccuracy float64
	// MeanTrainLoss averages the participants' final local losses.
	MeanTrainLoss float64
	// CumTrainSeconds is the cumulative simulated client compute time
	// (training + selection scoring) up to and including this round.
	CumTrainSeconds float64
	// CumUplinkBytes is the cumulative client→server traffic.
	CumUplinkBytes int64
}

// History is the outcome of a federated run.
type History struct {
	// Records holds one entry per round.
	Records []RoundRecord
	// BestAccuracy is the best observed test accuracy.
	BestAccuracy float64
	// FinalAccuracy is the test accuracy after the last round.
	FinalAccuracy float64
	// TotalTrainSeconds is the total simulated client compute time.
	TotalTrainSeconds float64
	// TotalUplinkBytes and TotalDownlinkBytes are the run's traffic volumes.
	TotalUplinkBytes   int64
	TotalDownlinkBytes int64
}

// Curve returns the per-round test accuracies (NaN for unevaluated rounds).
func (h History) Curve() []float64 {
	out := make([]float64, len(h.Records))
	for i, r := range h.Records {
		out[i] = r.TestAccuracy
	}
	return out
}

// LearningEfficiency returns the paper's efficiency metric for this run.
func (h History) LearningEfficiency() (float64, error) {
	return metrics.LearningEfficiency(h.BestAccuracy, h.TotalTrainSeconds)
}

// Runner orchestrates a federated-learning run.
type Runner struct {
	cfg    Config
	global *models.Model
	// clients is the legacy eager pool; nil on fleet-backed runners
	// (NewRunnerWithSource), whose clients come from src on demand. src is
	// always set: NewRunner wraps the eager pool in an eagerSource so the
	// synchronous round loop has exactly one client-access path.
	clients []*Client
	src     ClientSource
	test    *data.Dataset
	// utility feeds client-level feedback (mean EDS entropy, or train loss
	// as a fallback) from each round back into the cohort scheduler.
	utility *sched.Tracker
	// strat is the resolved federated-optimization strategy (cfg.Strategy,
	// or the legacy FedAvg composition when none is set). It owns the
	// aggregation weighting and how the weighted client average moves the
	// global model.
	strat strategy.Strategy

	// projCost caches each client's projected round cost. Model shape,
	// device rate and dataset size never change during a run, so the costs
	// are computed once (in Run, after the finetune part is applied) instead
	// of once per client per round. timesScratch is the reused per-round
	// copy handed to the straggler policy, which must not be able to mutate
	// the cache.
	projCost     []float64
	timesScratch []float64
	// allIDs is the cached identity cohort [0..N), built alongside projCost;
	// idsScratch is its reused per-round copy (see timesScratch).
	allIDs     []int
	idsScratch []int
	// candScratch is the reused per-round candidate slice handed to the
	// scheduler, and partScratch the reused participant list — both rebuilt
	// in place every round so steady-state scheduling allocates nothing
	// beyond what the policy itself draws.
	candScratch []sched.Candidate
	partScratch []*Client
	// updScratch/weightScratch/avgScratch are the aggregation scratch: the
	// per-update weighting descriptors, their weights, and the weighted
	// client average handed to the strategy's server optimizer.
	updScratch    []strategy.Update
	weightScratch []float64
	avgScratch    []*tensor.Tensor
	// replicas are the per-worker reusable client-training contexts of the
	// fast path, created lazily on first use and kept across rounds.
	replicas []*replica
	// stateBufs holds per-result-slot reused state snapshot tensors, and
	// results/errs are the per-round result buffers — reused across rounds
	// so the orchestrator's per-round allocations shrink to a handful of
	// small slices (cohort/participant lists).
	stateBufs [][]*tensor.Tensor
	results   []clientResult
	errs      []error

	// Partial-training state (nil/false on untiered runs, whose code paths
	// stay byte-for-byte identical to the pre-tier engine). tiers assigns a
	// device tier to every pool position, drawn once per federation;
	// tierMasks maps each tier to its layer-group mask (the profile's
	// affordable top suffix intersected with the communicated groups).
	// commGroups/commLayout/commState describe the communicated state,
	// resolved once per Run. maskActive marks that the current round's
	// participants carry per-client masks: maskScratch[i] is participant i's
	// group mask, coverScratch[i] maps every communicated tensor to its index
	// in that participant's shipped state (-1 when masked out), and
	// bytesScratch[i] is the participant's masked uplink size. coverCache and
	// bytesCache memoize cover maps per distinct mask.
	tiers        []string
	tierMasks    map[string][]string
	commGroups   []string
	commIndex    map[string]int
	commLayout   []string
	commState    []*tensor.Tensor
	maskActive   bool
	maskScratch  [][]string
	coverScratch [][]int
	bytesScratch []int64
	coverCache   map[string][]int
	bytesCache   map[string]int64

	// Uplink-codec wire simulation (cfg.Codec non-empty; see codec.go).
	// codecs holds one codec instance per client ID so topk's error-feedback
	// residuals stay per-client; codecDec is per-result-slot decode scratch,
	// codecRefScratch the reused masked-reference subset, and codecUplink the
	// per-slot encoded payload sizes the accountant charges.
	codecs          map[int]comm.Codec
	codecDec        [][]*tensor.Tensor
	codecRefScratch []*tensor.Tensor
	codecUplink     []int64

	// hist and acct live on the runner (not in Run) so that a checkpoint
	// taken mid-run captures them and a restored runner continues them.
	hist History
	acct simtime.Accountant
	// startRound is the last completed round a restored runner resumes
	// after; 0 for a fresh run. doneRound tracks the last completed round
	// while Run executes (what Snapshot reports). restored marks that
	// RestoreInto installed run state which Run must continue, not reset.
	startRound int
	doneRound  int
	restored   bool
}

// NewRunner validates the configuration and constructs a runner. The global
// model is used in place (its state after Run is the trained model).
func NewRunner(cfg Config, global *models.Model, clients []*Client, test *data.Dataset) (*Runner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if global == nil {
		return nil, fmt.Errorf("%w: nil global model", ErrConfig)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("%w: no clients", ErrConfig)
	}
	for _, cl := range clients {
		if cl.Data == nil || cl.Data.Len() == 0 {
			return nil, fmt.Errorf("%w: client %d has no data", ErrConfig, cl.ID)
		}
		if cl.Device.FLOPSRate <= 0 {
			return nil, fmt.Errorf("%w: client %d device rate %v", ErrConfig, cl.ID, cl.Device.FLOPSRate)
		}
	}
	if test == nil || test.Len() == 0 {
		return nil, fmt.Errorf("%w: empty test set", ErrConfig)
	}
	if len(cfg.TrainGroups) > 0 {
		return nil, fmt.Errorf("%w: TrainGroups is a standalone-client setting; in-process runs "+
			"derive per-client masks from TierDist", ErrConfig)
	}
	strat, err := cfg.resolveStrategy()
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, global: global, clients: clients, src: eagerSource{clients: clients},
		test: test, utility: sched.NewTracker(), strat: strat}, nil
}

// GlobalModel returns the (live) global model.
func (r *Runner) GlobalModel() *models.Model { return r.global }

// Run executes the configured number of rounds and returns the history. On a
// runner restored from a checkpoint (RestoreInto), Run continues after the
// checkpointed round instead of starting over; the resulting History and
// final global state are bit-identical to an uninterrupted run's. When
// Config.CheckpointDir is set, a checkpoint is written every
// Config.CheckpointEvery rounds and always after the final round.
func (r *Runner) Run() (History, error) {
	if r.restored {
		// RestoreInto armed this run to continue after startRound; consume
		// the arming so any later Run on the same runner starts fresh (the
		// legacy re-run semantics) instead of appending duplicate rounds.
		r.restored = false
	} else {
		r.hist = History{}
		r.acct = simtime.Accountant{}
		r.startRound = 0
		r.doneRound = 0
	}

	// The paper's FedFT freezes the lower part on the *server's* model too:
	// group states that never train are never communicated.
	if err := r.global.SetFinetunePart(r.cfg.FinetunePart); err != nil {
		return r.hist, err
	}
	commGroups := r.global.TrainableGroupNames()
	// The communicated tensors are live views into the global model and the
	// groups never change during a run, so they are resolved once here
	// instead of once per round in aggregate.
	commState, err := r.global.GroupStateTensors(commGroups)
	if err != nil {
		return r.hist, err
	}
	stateSize, err := r.stateBytes(commGroups)
	if err != nil {
		return r.hist, err
	}
	r.commGroups, r.commState = commGroups, commState
	if err := r.setupTiers(); err != nil {
		return r.hist, err
	}
	if err := r.cacheProjectedCosts(); err != nil {
		return r.hist, err
	}

	for round := r.startRound + 1; round <= r.cfg.Rounds; round++ {
		participants, positions, cohortSize, err := r.sampleParticipants(round)
		if err != nil {
			return r.hist, err
		}
		if err := r.prepareRoundMasks(participants, positions, round); err != nil {
			return r.hist, err
		}
		results, err := r.trainParticipants(participants, round)
		if err != nil {
			return r.hist, err
		}
		if err := r.codecRoundTrip(results, round); err != nil {
			return r.hist, err
		}
		if err := r.aggregate(results, commState, nil); err != nil {
			return r.hist, err
		}

		var lossSum float64
		for i, res := range results {
			uplink := stateSize
			if r.maskActive {
				uplink = r.bytesScratch[i]
			}
			if r.codecActive() {
				uplink = r.codecUplink[i]
			}
			r.acct.AddRound(res.cost)
			r.acct.AddCommunication(uplink, stateSize)
			lossSum += res.trainLoss
			r.utility.ObserveUpdate(positions[i], res.meanEntropy, res.trainLoss, res.cost.Total())
		}
		// Training is done and results hold runner-owned state copies: the
		// participants' datasets are no longer needed, so a lazy source can
		// reclaim them — this is what keeps fleet runs O(cohort) resident.
		r.src.Release(participants)

		rec := RoundRecord{
			Round:           round,
			CohortSize:      cohortSize,
			Participants:    len(results),
			TestAccuracy:    math.NaN(),
			MeanTrainLoss:   lossSum / float64(len(results)),
			CumTrainSeconds: r.acct.TotalSeconds(),
			CumUplinkBytes:  r.acct.UplinkBytes(),
		}
		if r.cfg.Scheduler != nil {
			rec.SchedPolicy = r.cfg.Scheduler.Name()
		}
		if r.cfg.EvalEvery > 0 && (round%r.cfg.EvalEvery == 0 || round == r.cfg.Rounds) {
			acc, err := metrics.Accuracy(r.global, r.test)
			if err != nil {
				return r.hist, fmt.Errorf("core: eval round %d: %w", round, err)
			}
			rec.TestAccuracy = acc
			if acc > r.hist.BestAccuracy {
				r.hist.BestAccuracy = acc
			}
			r.hist.FinalAccuracy = acc
		}
		r.hist.Records = append(r.hist.Records, rec)
		r.doneRound = round

		if r.cfg.CheckpointEvery > 0 && (round%r.cfg.CheckpointEvery == 0 || round == r.cfg.Rounds) {
			if _, err := r.SaveCheckpoint(r.cfg.CheckpointDir); err != nil {
				return r.hist, fmt.Errorf("core: checkpoint round %d: %w", round, err)
			}
		}
	}
	r.hist.TotalTrainSeconds = r.acct.TotalSeconds()
	r.hist.TotalUplinkBytes = r.acct.UplinkBytes()
	r.hist.TotalDownlinkBytes = r.acct.DownlinkBytes()
	return r.hist, nil
}

// maskProvider returns the strategy's per-client mask hook when one is
// actually configured (strategy.Composite always implements the interface but
// reports an empty MaskName when no provider is attached).
func (r *Runner) maskProvider() strategy.MaskProvider {
	mp, ok := r.strat.(strategy.MaskProvider)
	if !ok || mp.MaskName() == "" {
		return nil
	}
	return mp
}

// setupTiers resolves the run's partial-training state: the per-pool-position
// tier assignment, each tier's layer mask (the profile's affordable top
// suffix, by per-group FLOP cost, intersected with the communicated groups),
// and the tensor→group layout the per-layer aggregation filters by. Untiered
// runs without a mask provider clear everything, keeping the legacy paths.
// Called once per Run, after the finetune part is applied.
func (r *Runner) setupTiers() error {
	r.tiers, r.tierMasks, r.commLayout, r.commIndex = nil, nil, nil, nil
	r.coverCache, r.bytesCache = nil, nil
	r.maskActive = false
	mp := r.maskProvider()
	if r.cfg.TierDist == nil && mp == nil {
		return nil
	}
	layout, err := r.global.GroupStateLayout(r.commGroups)
	if err != nil {
		return err
	}
	r.commLayout = layout
	r.commIndex = make(map[string]int, len(r.commGroups))
	for i, g := range r.commGroups {
		r.commIndex[g] = i
	}
	r.coverCache = make(map[string][]int)
	r.bytesCache = make(map[string]int64)
	if r.cfg.TierDist == nil {
		return nil
	}
	r.tiers = r.cfg.TierDist.Assign(r.src.NumClients(), r.cfg.Seed)
	perGroup, _ := r.global.GroupFLOPs()
	names := models.GroupNames()
	r.tierMasks = make(map[string][]string, len(r.cfg.TierDist.Tiers()))
	for _, tier := range r.cfg.TierDist.Tiers() {
		prof, err := device.Lookup(tier)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrConfig, err)
		}
		mask, err := prof.MaskFor(names, perGroup)
		if err != nil {
			return fmt.Errorf("core: tier %s: %w", tier, err)
		}
		// Both the profile mask and the communicated groups are top suffixes
		// of the canonical group list, so the intersection is the shorter
		// suffix — never empty (both always contain the classifier).
		mask = intersectGroups(mask, r.commGroups)
		if len(mask) == 0 {
			return fmt.Errorf("%w: tier %s affords none of the communicated groups %v",
				ErrConfig, tier, r.commGroups)
		}
		r.tierMasks[tier] = mask
	}
	return nil
}

// intersectGroups filters want down to the members of have, preserving
// want's order.
func intersectGroups(want, have []string) []string {
	set := make(map[string]bool, len(have))
	for _, g := range have {
		set[g] = true
	}
	out := make([]string, 0, len(want))
	for _, g := range want {
		if set[g] {
			out = append(out, g)
		}
	}
	return out
}

// coverFor validates a mask against the communicated groups (known names, no
// duplicates, canonical order) and returns its cover map — per communicated
// tensor, the index into the masked state a client ships, or -1 when the
// tensor's group is outside the mask — plus the masked uplink size. Results
// are memoized per distinct mask.
func (r *Runner) coverFor(mask []string) ([]int, int64, error) {
	key := strings.Join(mask, ",")
	if cover, ok := r.coverCache[key]; ok {
		return cover, r.bytesCache[key], nil
	}
	set := make(map[string]bool, len(mask))
	prev := -1
	for _, g := range mask {
		gi, ok := r.commIndex[g]
		if !ok {
			return nil, 0, fmt.Errorf("%w: mask group %q is not communicated (groups %v)",
				ErrConfig, g, r.commGroups)
		}
		if set[g] {
			return nil, 0, fmt.Errorf("%w: mask declares group %q twice", ErrConfig, g)
		}
		if gi <= prev {
			return nil, 0, fmt.Errorf("%w: mask %v not in canonical group order", ErrConfig, mask)
		}
		prev, set[g] = gi, true
	}
	cover := make([]int, len(r.commLayout))
	ci, bytes := 0, int64(0)
	for ti, g := range r.commLayout {
		if set[g] {
			cover[ti] = ci
			ci++
			bytes += int64(r.commState[ti].EncodedSize())
		} else {
			cover[ti] = -1
		}
	}
	if ci == 0 {
		return nil, 0, fmt.Errorf("%w: mask %v covers no communicated tensors", ErrConfig, mask)
	}
	r.coverCache[key], r.bytesCache[key] = cover, bytes
	return cover, bytes, nil
}

// prepareRoundMasks resolves each participant's layer mask for the round: the
// tier's mask by default, optionally overridden per client by the strategy's
// MaskProvider hook. On untiered runs without a provider it deactivates the
// masked paths, so the legacy whole-state round is untouched.
func (r *Runner) prepareRoundMasks(participants []*Client, positions []int, round int) error {
	if r.commLayout == nil {
		r.maskActive = false
		return nil
	}
	n := len(participants)
	if cap(r.maskScratch) < n {
		r.maskScratch = make([][]string, n)
		r.coverScratch = make([][]int, n)
		r.bytesScratch = make([]int64, n)
	}
	r.maskScratch = r.maskScratch[:n]
	r.coverScratch = r.coverScratch[:n]
	r.bytesScratch = r.bytesScratch[:n]
	mp := r.maskProvider()
	for i, cl := range participants {
		mask := r.commGroups
		if r.tiers != nil {
			mask = r.tierMasks[r.tiers[positions[i]]]
		}
		if mp != nil {
			if custom := mp.MaskFor(round, cl.ID, mask); custom != nil {
				mask = custom
			}
		}
		cover, bytes, err := r.coverFor(mask)
		if err != nil {
			return fmt.Errorf("core: round %d client %d: %w", round, cl.ID, err)
		}
		r.maskScratch[i], r.coverScratch[i], r.bytesScratch[i] = mask, cover, bytes
	}
	r.maskActive = true
	return nil
}

// cacheProjectedCosts fills projCost with each client's projected round
// cost. Called once per Run, after SetFinetunePart and setupTiers (the cost
// depends on which groups the client's mask lets train). Costs are computed
// from descriptors alone — the source contract pins Describe to what Acquire
// materializes, so the eager and fleet paths project identical costs.
func (r *Runner) cacheProjectedCosts() error {
	n := r.src.NumClients()
	r.projCost = make([]float64, n)
	r.allIDs = make([]int, n)
	for i := range r.allIDs {
		r.allIDs[i] = i
	}
	for i := 0; i < n; i++ {
		d := r.src.Describe(i)
		var (
			cost simtime.RoundCost
			err  error
		)
		if r.tiers != nil {
			cost, err = simtime.ClientRoundCostFor(r.global, r.tierMasks[r.tiers[i]], d.Device,
				d.DataSize, projectedSelected(d.DataSize, r.cfg.SelectFraction),
				r.cfg.LocalEpochs, r.cfg.Selector.ScoringPasses())
		} else {
			cost, err = simtime.ClientRoundCost(r.global, d.Device,
				d.DataSize, projectedSelected(d.DataSize, r.cfg.SelectFraction),
				r.cfg.LocalEpochs, r.cfg.Selector.ScoringPasses())
		}
		if err != nil {
			return fmt.Errorf("core: projecting cost for client %d: %w", i, err)
		}
		r.projCost[i] = cost.Total()
	}
	return nil
}

// sampleParticipants picks the round's cohort with the configured scheduler
// (the whole pool when none is set) and then applies the straggler policy
// within it. It returns the participants, their pool positions (parallel),
// and the cohort size the scheduler admitted.
func (r *Runner) sampleParticipants(round int) ([]*Client, []int, int, error) {
	ids := r.allIDs
	times := r.projCost

	cohort, cohortTimes := ids, times
	if r.cfg.Scheduler != nil {
		// Candidates are keyed by pool position, the same key the straggler
		// policy and the utility tracker use. The slice is runner scratch,
		// rebuilt in place every round (every field is overwritten, so no
		// stale state survives reuse).
		n := r.src.NumClients()
		if cap(r.candScratch) < n {
			r.candScratch = make([]sched.Candidate, n)
		}
		cands := r.candScratch[:n]
		for i := 0; i < n; i++ {
			d := r.src.Describe(i)
			cands[i] = sched.Candidate{
				ClientID:         i,
				DataSize:         d.DataSize,
				ProjectedSeconds: times[i],
				Available:        true,
				Cluster:          d.Cluster,
			}
			if r.tiers != nil {
				cands[i].Tier = r.tiers[i]
			}
		}
		r.utility.Stamp(cands)
		srng := tensor.NewRand(uint64(r.cfg.Seed), uint64(round), sched.StreamTag)
		cohort = r.cfg.Scheduler.Schedule(round, cands, r.cfg.CohortSize, srng)
		if len(cohort) == 0 {
			return nil, nil, 0, fmt.Errorf("core: scheduler %s returned an empty cohort in round %d",
				r.cfg.Scheduler.Name(), round)
		}
		if cap(r.timesScratch) < len(cohort) {
			r.timesScratch = make([]float64, len(cohort))
		}
		cohortTimes = r.timesScratch[:len(cohort)]
		for i, idx := range cohort {
			if idx < 0 || idx >= r.src.NumClients() {
				return nil, nil, 0, fmt.Errorf("core: scheduler %s returned unknown client %d in round %d",
					r.cfg.Scheduler.Name(), idx, round)
			}
			cohortTimes[i] = times[idx]
		}
	}

	if r.cfg.Scheduler == nil {
		// cohort and cohortTimes still alias the allIDs/projCost caches
		// here; hand the straggler policy reused copies so an
		// implementation that mutates its arguments cannot corrupt them.
		if cap(r.timesScratch) < len(cohortTimes) {
			r.timesScratch = make([]float64, len(cohortTimes))
		}
		if cap(r.idsScratch) < len(cohort) {
			r.idsScratch = make([]int, len(cohort))
		}
		r.timesScratch = r.timesScratch[:len(cohortTimes)]
		copy(r.timesScratch, cohortTimes)
		cohortTimes = r.timesScratch
		r.idsScratch = r.idsScratch[:len(cohort)]
		copy(r.idsScratch, cohort)
		cohort = r.idsScratch
	}
	rng := tensor.NewRand(uint64(r.cfg.Seed), uint64(round), 0xFACADE)
	chosen := r.cfg.Straggler.Complete(cohort, cohortTimes, rng)
	if len(chosen) == 0 {
		return nil, nil, 0, fmt.Errorf("core: straggler policy left no participants in round %d", round)
	}
	out, err := r.src.Acquire(chosen, r.partScratch)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: acquiring round %d participants: %w", round, err)
	}
	r.partScratch = out
	return out, chosen, len(cohort), nil
}

// projectedSelected mirrors the selector's targetCount for cost projection.
func projectedSelected(n int, fraction float64) int {
	k := int(math.Ceil(fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// slotMask returns participant slot's layer mask for the current round (nil
// on legacy whole-state rounds, which skips every masked code path).
func (r *Runner) slotMask(slot int) []string {
	if !r.maskActive {
		return nil
	}
	return r.maskScratch[slot]
}

// trainParticipants runs the participants' local rounds on a bounded worker
// pool of reusable client replicas. Results are ordered by participant
// position, so aggregation is deterministic regardless of scheduling; each
// replica is rebound bit-identically per client, so which worker trains
// which client does not matter either.
func (r *Runner) trainParticipants(participants []*Client, round int) ([]clientResult, error) {
	n := len(participants)
	if cap(r.results) < n {
		r.results = make([]clientResult, n)
		r.errs = make([]error, n)
	}
	results, errs := r.results[:n], r.errs[:n]
	if cap(r.stateBufs) < n {
		r.stateBufs = append(r.stateBufs[:len(r.stateBufs)], make([][]*tensor.Tensor, n-len(r.stateBufs))...)
	}
	stateBufs := r.stateBufs[:n]

	if !useReplicaPath {
		// Legacy path: a fresh model clone, optimizer and batch copies per
		// client-round. Kept as the reference the fast path is pinned to.
		sem := make(chan struct{}, r.cfg.Parallelism)
		var wg sync.WaitGroup
		for i, cl := range participants {
			wg.Add(1)
			sem <- struct{}{}
			go func(slot int, cl *Client) {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := runClientRound(r.cfg, r.global, cl, round, r.slotMask(slot))
				results[slot] = res
				errs[slot] = err
			}(i, cl)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	workers := r.cfg.Parallelism
	if workers > n {
		workers = n
	}
	for len(r.replicas) < workers {
		rep, err := newReplica(r.global, r.cfg)
		if err != nil {
			return nil, err
		}
		r.replicas = append(r.replicas, rep)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			for {
				slot := int(next.Add(1)) - 1
				if slot >= n {
					return
				}
				res, err := runReplicaRound(r.cfg, r.global, rep, participants[slot], round, r.slotMask(slot), &stateBufs[slot])
				results[slot] = res
				errs[slot] = err
			}
		}(r.replicas[w])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// aggregate fuses client states into the weighted average of paper Eq. 5 —
// weighted by the strategy's WeighUpdates rule — and hands it to the
// strategy's server optimizer, which folds it into the global model's
// communicated groups (the default fedavg strategy overwrites, reproducing
// the pre-strategy engine bit for bit). The weighted average accumulates in
// reused runner scratch tensors in participant order, so the arithmetic —
// and therefore every result bit — is independent of the strategy applying
// it. globalState holds the live communicated tensors, resolved once per
// Run. lambdas, when non-nil, multiplies each strategy weight by that
// update's staleness discount (buffered-async runs); nil keeps the
// synchronous arithmetic untouched.
func (r *Runner) aggregate(results []clientResult, globalState []*tensor.Tensor, lambdas []float64) error {
	if len(results) == 0 {
		return fmt.Errorf("core: aggregate with no results")
	}
	n := len(results)
	if cap(r.updScratch) < n {
		r.updScratch = make([]strategy.Update, n)
		r.weightScratch = make([]float64, n)
	}
	ups, weights := r.updScratch[:n], r.weightScratch[:n]
	for i, res := range results {
		ups[i] = strategy.Update{
			ClientID:    res.clientID,
			NumSelected: res.numSelected,
			LocalSize:   res.localSize,
		}
	}
	if err := r.strat.WeighUpdates(ups, weights); err != nil {
		return fmt.Errorf("core: weighting updates: %w", err)
	}
	if lambdas != nil {
		if len(lambdas) != n {
			return fmt.Errorf("core: %d staleness discounts for %d updates", len(lambdas), n)
		}
		for i := range weights {
			weights[i] *= lambdas[i]
		}
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: strategy %s weighed client %d with %v", r.strat.Name(), ups[i].ClientID, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("core: aggregate weights sum to %v", total)
	}

	if len(r.avgScratch) < len(globalState) {
		r.avgScratch = append(r.avgScratch, make([]*tensor.Tensor, len(globalState)-len(r.avgScratch))...)
	}
	avg := r.avgScratch[:len(globalState)]
	if r.maskActive {
		return r.aggregateMasked(results, globalState, avg, weights)
	}
	for ti, dst := range globalState {
		if avg[ti] == nil || !avg[ti].SameShape(dst) {
			avg[ti] = tensor.Ensure(avg[ti], dst.Shape()...)
		}
		acc := avg[ti]
		acc.Zero()
		for ri, res := range results {
			if ti >= len(res.state) {
				return fmt.Errorf("core: client %d returned %d state tensors, want %d",
					res.clientID, len(res.state), len(globalState))
			}
			if err := acc.Axpy(float32(weights[ri]/total), res.state[ti]); err != nil {
				return fmt.Errorf("core: aggregating tensor %d from client %d: %w", ti, res.clientID, err)
			}
		}
	}
	if err := r.strat.ApplyAggregate(globalState, avg); err != nil {
		return fmt.Errorf("core: strategy %s: %w", r.strat.Name(), err)
	}
	return nil
}

// aggregateMasked is the per-layer variant of the weighted average: every
// communicated tensor is averaged — with its own weight total — only over the
// participants whose mask covered it, via the round's cover maps. A tensor
// nobody covered keeps the global value (its "average" is the current state,
// so a strategy's server optimizer sees a zero delta). When every participant
// covers every group, the per-tensor totals accumulate the same weights in
// the same order as the legacy path's global total, so a full-mask tiered run
// is bit-identical to an untiered one.
func (r *Runner) aggregateMasked(results []clientResult, globalState, avg []*tensor.Tensor, weights []float64) error {
	covers := r.coverScratch[:len(results)]
	for ti, dst := range globalState {
		if avg[ti] == nil || !avg[ti].SameShape(dst) {
			avg[ti] = tensor.Ensure(avg[ti], dst.Shape()...)
		}
		acc := avg[ti]
		var total float64
		for ri := range results {
			if covers[ri][ti] >= 0 {
				total += weights[ri]
			}
		}
		if total <= 0 {
			if err := acc.CopyFrom(dst); err != nil {
				return fmt.Errorf("core: carrying uncovered tensor %d: %w", ti, err)
			}
			continue
		}
		acc.Zero()
		for ri, res := range results {
			ci := covers[ri][ti]
			if ci < 0 {
				continue
			}
			if ci >= len(res.state) {
				return fmt.Errorf("core: client %d returned %d state tensors, want ≥%d for its mask",
					res.clientID, len(res.state), ci+1)
			}
			if err := acc.Axpy(float32(weights[ri]/total), res.state[ci]); err != nil {
				return fmt.Errorf("core: aggregating tensor %d from client %d: %w", ti, res.clientID, err)
			}
		}
	}
	if err := r.strat.ApplyAggregate(globalState, avg); err != nil {
		return fmt.Errorf("core: strategy %s: %w", r.strat.Name(), err)
	}
	return nil
}

// stateBytes returns the wire size of the communicated model state.
func (r *Runner) stateBytes(groups []string) (int64, error) {
	ts, err := r.global.GroupStateTensors(groups)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, t := range ts {
		n += int64(t.EncodedSize())
	}
	return n, nil
}
