package core

import (
	"math"
	"testing"

	"fedfteds/internal/models"
	"fedfteds/internal/selection"
)

func TestWeightByLocalSizeEndToEnd(t *testing.T) {
	// A full run with local-size weighting must complete and learn; this
	// exercises the non-default aggregation path through Run.
	clients, _, test, spec := testFederation(t, 4, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 4, LocalEpochs: 2, LR: 0.1, Momentum: 0.5,
		Selector: selection.Random{}, SelectFraction: 0.5,
		AggWeighting: WeightByLocalSize, Seed: 31,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.BestAccuracy <= 0.2 {
		t.Fatalf("local-size weighting run did not learn: %v", hist.BestAccuracy)
	}
}

func TestFinalRoundAlwaysEvaluated(t *testing.T) {
	// EvalEvery larger than the round count: only the final round evaluates.
	clients, _, test, spec := testFederation(t, 3, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Rounds: 3, LocalEpochs: 1, LR: 0.1, EvalEvery: 100, Seed: 32,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	curve := hist.Curve()
	if !math.IsNaN(curve[0]) || !math.IsNaN(curve[1]) {
		t.Fatalf("intermediate rounds evaluated: %v", curve)
	}
	if math.IsNaN(curve[2]) {
		t.Fatal("final round not evaluated")
	}
	if hist.FinalAccuracy != curve[2] {
		t.Fatalf("FinalAccuracy %v != last curve point %v", hist.FinalAccuracy, curve[2])
	}
}

func TestAggWeightingStrings(t *testing.T) {
	for w, want := range map[AggWeighting]string{
		WeightBySelected:  "selected",
		WeightByLocalSize: "local-size",
		WeightUniform:     "uniform",
		AggWeighting(9):   "AggWeighting(9)",
	} {
		if got := w.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", w, got, want)
		}
	}
}

func TestCommunicationScalesWithParticipants(t *testing.T) {
	run := func(n int) int64 {
		clients, _, test, spec := testFederation(t, n, 0.5)
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(Config{Rounds: 2, LocalEpochs: 1, LR: 0.1, Seed: 33}, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return hist.TotalUplinkBytes
	}
	if two, four := run(2), run(4); four != 2*two {
		t.Fatalf("uplink for 4 clients %d, want exactly 2× the 2-client %d", four, two)
	}
}
