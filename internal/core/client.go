package core

import (
	"fmt"
	"math"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/nn"
	"fedfteds/internal/opt"
	"fedfteds/internal/seeds"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
	"fedfteds/internal/tensor"
)

// Client is one federated participant: a local dataset and a device profile.
type Client struct {
	// ID is the client's index in the federation.
	ID int
	// Data is the client's private local dataset.
	Data *data.Dataset
	// Device models the client's compute speed.
	Device simtime.Device
	// Cluster is the client's similarity-cluster index (0 when unclustered),
	// surfaced to cluster-stratified schedulers via ClientSource.Describe.
	Cluster int
}

// LocalOutcome is the result of one client-side local round.
type LocalOutcome struct {
	// State is the updated state of the trainable groups (cloned tensors).
	State []*tensor.Tensor
	// NumSelected is |D_select|, the number of samples trained on.
	NumSelected int
	// Cost is the simulated device time of the round.
	Cost simtime.RoundCost
	// TrainLoss is the final epoch's mean training loss.
	TrainLoss float64
	// MeanEntropy is the mean EDS entropy over the client's full local
	// dataset, reported from the selection scoring pass at no extra cost;
	// NaN when the selector has no utility signal. The server's cohort
	// scheduler uses it as the client-level utility.
	MeanEntropy float64
}

// clientResult carries one client's round outcome back to the server.
type clientResult struct {
	clientID    int
	state       []*tensor.Tensor
	numSelected int
	localSize   int
	cost        simtime.RoundCost
	trainLoss   float64
	meanEntropy float64
}

// LocalUpdate executes one local round on a clone of the global model: data
// selection, E epochs of SGD on the selected subset, and cost accounting.
// It is the client-side primitive shared by the in-process simulator and the
// distributed fedclient binary. cfg must already have defaults applied when
// called outside the Runner; NewLocalConfig does that.
func LocalUpdate(cfg Config, global *models.Model, cl *Client, round int) (LocalOutcome, error) {
	local, err := global.Clone()
	if err != nil {
		return LocalOutcome{}, fmt.Errorf("core: client %d: clone: %w", cl.ID, err)
	}
	if err := local.SetFinetunePart(cfg.FinetunePart); err != nil {
		return LocalOutcome{}, fmt.Errorf("core: client %d: %w", cl.ID, err)
	}
	if len(cfg.TrainGroups) > 0 {
		// The client's layer mask: only these groups train, and only their
		// state is returned (and shipped) below.
		if err := local.SetTrainableGroups(cfg.TrainGroups); err != nil {
			return LocalOutcome{}, fmt.Errorf("core: client %d: mask: %w", cl.ID, err)
		}
	}
	rng := seeds.ClientRound(cfg.Seed, round, cl.ID)

	var (
		selIdx      []int
		meanEntropy = math.NaN()
	)
	if us, ok := cfg.Selector.(selection.UtilityScorer); ok {
		selIdx, meanEntropy, err = us.SelectWithUtility(local, cl.Data, cfg.SelectFraction, rng)
	} else {
		selIdx, err = cfg.Selector.Select(local, cl.Data, cfg.SelectFraction, rng)
	}
	if err != nil {
		return LocalOutcome{}, fmt.Errorf("core: client %d: selection: %w", cl.ID, err)
	}
	selected, err := cl.Data.Subset(selIdx)
	if err != nil {
		return LocalOutcome{}, fmt.Errorf("core: client %d: subset: %w", cl.ID, err)
	}

	// The strategy's local hook carries the per-round objective twist
	// (FedProx tunes μ into the optimizer and snapshots the proximal anchor
	// at bind time); plain strategies leave the optimizer untouched.
	hook := cfg.localHook()
	sgdCfg := opt.SGDConfig{
		LR:          cfg.LR,
		Momentum:    cfg.Momentum,
		WeightDecay: cfg.WeightDecay,
	}
	if hook != nil {
		hook.TuneSGD(&sgdCfg)
	}
	sgd, err := opt.NewSGD(sgdCfg, local.TrainableParams())
	if err != nil {
		return LocalOutcome{}, fmt.Errorf("core: client %d: %w", cl.ID, err)
	}
	if hook != nil {
		if err := hook.OnBind(sgd); err != nil {
			return LocalOutcome{}, fmt.Errorf("core: client %d: hook %s: %w", cl.ID, hook.Name(), err)
		}
	}

	loss := nn.SoftmaxCrossEntropy{}
	var ls nn.LossScratch
	var lastLoss float64
	for epoch := 0; epoch < cfg.LocalEpochs; epoch++ {
		batches, err := selected.Batches(cfg.BatchSize, rng)
		if err != nil {
			return LocalOutcome{}, fmt.Errorf("core: client %d: batches: %w", cl.ID, err)
		}
		var epochLoss float64
		for _, b := range batches {
			logits := local.Forward(b.X, true)
			v, dl, err := loss.LossInto(&ls, logits, b.Y)
			if err != nil {
				return LocalOutcome{}, fmt.Errorf("core: client %d: loss: %w", cl.ID, err)
			}
			local.Backward(dl)
			sgd.Step()
			epochLoss += v * float64(len(b.Y))
		}
		lastLoss = epochLoss / float64(selected.Len())
	}

	cost, err := simtime.ClientRoundCost(local, cl.Device,
		cl.Data.Len(), selected.Len(), cfg.LocalEpochs, cfg.Selector.ScoringPasses())
	if err != nil {
		return LocalOutcome{}, fmt.Errorf("core: client %d: cost: %w", cl.ID, err)
	}

	live, err := local.GroupStateTensors(local.TrainableGroupNames())
	if err != nil {
		return LocalOutcome{}, fmt.Errorf("core: client %d: state: %w", cl.ID, err)
	}
	state := make([]*tensor.Tensor, len(live))
	for i, ts := range live {
		state[i] = ts.Clone()
	}
	return LocalOutcome{
		State:       state,
		NumSelected: selected.Len(),
		Cost:        cost,
		TrainLoss:   lastLoss,
		MeanEntropy: meanEntropy,
	}, nil
}

// NewLocalConfig applies defaults and validates a config for standalone
// LocalUpdate use (the distributed fedclient path, where no Runner exists).
// Cohort scheduling and the uplink codec are server-side concerns, so any
// CohortSize/Scheduler/Codec settings are stripped rather than defaulted: a
// standalone client must not silently grow a scheduler it can never invoke,
// and it encodes its wire update itself (the negotiated codec lives in the
// transport layer, not in the local-training config).
func NewLocalConfig(cfg Config) (Config, error) {
	cfg.CohortSize = 0
	cfg.Scheduler = nil
	cfg.Codec = ""
	cfg = cfg.withDefaults()
	if cfg.Rounds == 0 {
		cfg.Rounds = 1 // standalone clients do not drive the round count
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// runClientRound adapts LocalUpdate to the Runner's internal result type,
// narrowing the trainable groups to the client's layer mask when one is set.
func runClientRound(cfg Config, global *models.Model, cl *Client, round int, mask []string) (clientResult, error) {
	if mask != nil {
		cfg.TrainGroups = mask
	}
	out, err := LocalUpdate(cfg, global, cl, round)
	if err != nil {
		return clientResult{}, err
	}
	return clientResult{
		clientID:    cl.ID,
		state:       out.State,
		numSelected: out.NumSelected,
		localSize:   cl.Data.Len(),
		cost:        out.Cost,
		trainLoss:   out.TrainLoss,
		meanEntropy: out.MeanEntropy,
	}, nil
}
