package core

import (
	"errors"
	"reflect"
	"testing"

	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/strategy"
)

// TestExplicitFedAvgBitIdenticalToLegacy is the redesign's acceptance pin:
// a run with `-strategy fedavg` (an explicitly constructed default
// strategy) must reproduce the legacy nil-Strategy engine byte for byte —
// history and final global state — across both training paths.
func TestExplicitFedAvgBitIdenticalToLegacy(t *testing.T) {
	clients, _, test, spec := testFederation(t, 5, 0.5)
	newCfg := func() Config {
		return Config{
			Rounds: 3, LocalEpochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.5,
			FinetunePart: models.FinetuneModerate,
			Selector:     selection.Entropy{Temperature: 0.1}, SelectFraction: 0.5,
			Parallelism: 2, Seed: 77,
		}
	}
	run := func(t *testing.T, cfg Config, fast bool) (History, *models.Model) {
		t.Helper()
		prev := useReplicaPath
		useReplicaPath = fast
		defer func() { useReplicaPath = prev }()
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(cfg, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return hist, m
	}
	for _, fast := range []bool{false, true} {
		legacyHist, legacyModel := run(t, newCfg(), fast)
		cfg := newCfg()
		cfg.Strategy = strategy.FedAvg()
		stratHist, stratModel := run(t, cfg, fast)
		if !reflect.DeepEqual(legacyHist, stratHist) {
			t.Fatalf("fast=%v: histories differ:\nlegacy:   %+v\nstrategy: %+v", fast, legacyHist, stratHist)
		}
		requireSameState(t, legacyModel, stratModel)
	}
}

// TestExplicitProxStrategyMatchesLegacyProxMu pins the hook migration: the
// fedprox strategy reproduces the legacy Config.ProxMu path bit for bit.
func TestExplicitProxStrategyMatchesLegacyProxMu(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)
	newCfg := func() Config {
		return Config{
			Rounds: 2, LocalEpochs: 2, BatchSize: 8, LR: 0.05, Momentum: 0.9,
			WeightDecay: 1e-4, Selector: selection.Random{}, SelectFraction: 0.7,
			Parallelism: 2, Seed: 7,
		}
	}
	run := func(t *testing.T, cfg Config) (History, *models.Model) {
		t.Helper()
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(cfg, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return hist, m
	}
	legacyCfg := newCfg()
	legacyCfg.ProxMu = 0.01
	legacyHist, legacyModel := run(t, legacyCfg)

	stratCfg := newCfg()
	prox, err := strategy.FedProx(0.01)
	if err != nil {
		t.Fatal(err)
	}
	stratCfg.Strategy = prox
	stratHist, stratModel := run(t, stratCfg)

	if !reflect.DeepEqual(legacyHist, stratHist) {
		t.Fatalf("histories differ:\nProxMu:  %+v\nfedprox: %+v", legacyHist, stratHist)
	}
	requireSameState(t, legacyModel, stratModel)
}

// TestServerOptStrategiesLearnEndToEnd: every FedOpt strategy completes a
// full run through the simulator engine and still learns.
func TestServerOptStrategiesLearnEndToEnd(t *testing.T) {
	clients, _, test, spec := testFederation(t, 5, 0.5)
	for _, spec2 := range []string{"fedavgm", "fedadam:lr=0.3", "fedyogi:lr=0.3"} {
		t.Run(spec2, func(t *testing.T) {
			strat, err := strategy.Parse(spec2)
			if err != nil {
				t.Fatal(err)
			}
			m, err := models.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRunner(Config{
				Rounds: 8, LocalEpochs: 2, LR: 0.1, Momentum: 0.5,
				Strategy: strat, Seed: 21,
			}, m, clients, test)
			if err != nil {
				t.Fatal(err)
			}
			hist, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if hist.BestAccuracy <= 0.3 {
				t.Fatalf("%s did not learn: best accuracy %v", spec2, hist.BestAccuracy)
			}
		})
	}
}

// TestStrategyConfigConflicts: the legacy knobs and an explicit strategy
// cannot be combined — the strategy owns weighting and the local objective.
func TestStrategyConfigConflicts(t *testing.T) {
	clients, _, test, spec := testFederation(t, 3, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Rounds: 1, LocalEpochs: 1, LR: 0.1, Seed: 1, Strategy: strategy.FedAvg()}

	bad := base
	bad.ProxMu = 0.1
	if _, err := NewRunner(bad, m, clients, test); !errors.Is(err, ErrConfig) {
		t.Fatalf("ProxMu + Strategy: %v", err)
	}
	bad = base
	bad.AggWeighting = WeightUniform
	if _, err := NewRunner(bad, m, clients, test); !errors.Is(err, ErrConfig) {
		t.Fatalf("AggWeighting + Strategy: %v", err)
	}
	if _, err := NewRunner(base, m, clients, test); err != nil {
		t.Fatalf("plain explicit strategy rejected: %v", err)
	}
}

// TestLocalConfigStripsSchedulerFields is the satellite bugfix regression:
// scheduler settings are meaningless on a standalone client, so
// NewLocalConfig must strip them instead of silently defaulting a
// UniformRandom scheduler via withDefaults.
func TestLocalConfigStripsSchedulerFields(t *testing.T) {
	cfg, err := NewLocalConfig(Config{
		LocalEpochs: 1, LR: 0.1, Seed: 1,
		CohortSize: 5, Scheduler: sched.EntropyUtility{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheduler != nil {
		t.Fatalf("standalone client kept scheduler %s", cfg.Scheduler.Name())
	}
	if cfg.CohortSize != 0 {
		t.Fatalf("standalone client kept cohort size %d", cfg.CohortSize)
	}
}

// TestStrategyCheckpointResumeRefusals: a checkpoint written under one
// strategy is refused under an edited or removed one.
func TestStrategyCheckpointResumeRefusals(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)
	newCfg := func(stratSpec string) Config {
		cfg := Config{
			Rounds: 3, LocalEpochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.5,
			Parallelism: 2, Seed: 42,
		}
		if stratSpec != "" {
			strat, err := strategy.Parse(stratSpec)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Strategy = strat
		}
		return cfg
	}
	newRunner := func(cfg Config) *Runner {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(cfg, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	cfg := newCfg("fedadam:lr=0.05")
	cfg.CheckpointDir = t.TempDir()
	runner := newRunner(cfg)
	if _, err := runner.Run(); err != nil {
		t.Fatal(err)
	}
	state, err := LoadLatestRunState(cfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if state.StratName == "" || len(state.StratState) == 0 {
		t.Fatalf("fedadam checkpoint carries no strategy state: %+v", state.StratName)
	}

	for _, tt := range []struct{ name, spec string }{
		{"edited lr", "fedadam:lr=0.1"},
		{"different strategy", "fedyogi:lr=0.05"},
		{"strategy removed", ""},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if err := state.RestoreInto(newRunner(newCfg(tt.spec))); !errors.Is(err, ErrConfig) {
				t.Fatalf("mismatched strategy restore: %v", err)
			}
		})
	}

	// And the matching strategy restores cleanly.
	ok := newRunner(newCfg("fedadam:lr=0.05"))
	if err := state.RestoreInto(ok); err != nil {
		t.Fatal(err)
	}

	// The reverse direction: a legacy (nil-strategy) checkpoint is refused
	// under an explicit strategy.
	legacyCfg := newCfg("")
	legacyCfg.CheckpointDir = t.TempDir()
	legacyRunner := newRunner(legacyCfg)
	if _, err := legacyRunner.Run(); err != nil {
		t.Fatal(err)
	}
	legacyState, err := LoadLatestRunState(legacyCfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if legacyState.StratName != "" || len(legacyState.StratState) != 0 {
		t.Fatal("legacy checkpoint unexpectedly carries strategy state")
	}
	if err := legacyState.RestoreInto(newRunner(newCfg("fedadam:lr=0.05"))); !errors.Is(err, ErrConfig) {
		t.Fatalf("legacy checkpoint restored under fedadam: %v", err)
	}
}
