package core

import (
	"fmt"
	"math"
	"sort"

	"fedfteds/internal/metrics"
	"fedfteds/internal/sched"
	"fedfteds/internal/simtime"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// FleetAsyncConfig shapes the fleet-backed buffered-asynchronous simulator:
// RunAsync's FedBuff semantics, but with a scheduler-driven in-flight window
// of Config.CohortSize clients instead of the whole population, so the
// engine's working set stays O(cohort) over a million-client fleet.
type FleetAsyncConfig struct {
	AsyncConfig
	// Departed, when non-nil, reports that a client left the fleet before
	// its update for the given aggregation arrived. The update is dropped —
	// its compute is accounted (the client did train) but nothing is
	// uplinked — and the vacated slot is refilled by the scheduler at the
	// next aggregation boundary.
	Departed func(round, clientID int) bool
}

// RunFleetAsync executes Config.Rounds buffered-asynchronous aggregations
// over a client source, keeping only Config.CohortSize clients in flight:
// the scheduler admits clients into the window, each trains for its projected
// cost in simulated time, and the server aggregates whenever Buffer updates
// are in hand, discounting by staleness exactly as RunAsync does. Folded (and
// departed) slots are refilled by the scheduler — over the candidates not
// currently in flight — at the next aggregation boundary, which is where
// trace-driven availability and cluster-stratified sampling plug in.
//
// With Buffer = CohortSize, no departures and no staleness discards, every
// aggregation folds exactly the window it dispatched, so the run replays the
// synchronous fleet Run bit for bit (TestFleetAsyncFullBufferMatchesRun).
//
// Like RunAsync, this mode replaces the admission machinery wholesale: it
// rejects straggler policies, tiers, codecs and in-simulator checkpointing —
// but unlike RunAsync it REQUIRES a scheduler and cohort size (the window is
// the whole point; a window of the full population is RunAsync's job).
func (r *Runner) RunFleetAsync(acfg FleetAsyncConfig) (History, error) {
	n := r.src.NumClients()
	window := r.cfg.CohortSize
	switch {
	case r.restored:
		return History{}, fmt.Errorf("%w: the async simulator does not resume from checkpoints; "+
			"checkpointed fleet days use the synchronous engine", ErrConfig)
	case r.cfg.Scheduler == nil || window <= 0:
		return History{}, fmt.Errorf("%w: RunFleetAsync needs a scheduler and CohortSize — the "+
			"scheduled window is its admission policy", ErrConfig)
	case r.cfg.TierDist != nil:
		return History{}, fmt.Errorf("%w: tiered partial training is synchronous-only; drop TierDist "+
			"for async runs", ErrConfig)
	case r.cfg.CheckpointEvery > 0:
		return History{}, fmt.Errorf("%w: the async simulator does not checkpoint; checkpointed fleet "+
			"days use the synchronous engine", ErrConfig)
	case r.cfg.Codec != "":
		return History{}, fmt.Errorf("%w: the async simulator does not simulate uplink codecs; drop "+
			"Codec for async runs", ErrConfig)
	case window > n:
		return History{}, fmt.Errorf("%w: in-flight window %d exceeds the %d-client fleet", ErrConfig, window, n)
	}
	if acfg.Buffer < 1 || acfg.Buffer > window {
		return History{}, fmt.Errorf("%w: async buffer %d must lie in [1, CohortSize=%d] — a larger "+
			"buffer could never fill from the in-flight window", ErrConfig, acfg.Buffer, window)
	}
	if _, ok := r.cfg.Straggler.(simtime.FullParticipation); !ok {
		return History{}, fmt.Errorf("%w: straggler policies do not apply in async mode — slow clients "+
			"go stale instead of dropping out", ErrConfig)
	}
	if r.maskProvider() != nil {
		return History{}, fmt.Errorf("%w: strategy %s provides per-client masks, which are "+
			"synchronous-only", ErrConfig, r.strat.Name())
	}
	weigher := acfg.Weigher
	if weigher == nil {
		weigher = strategy.IdentityStaleness()
	}

	r.hist = History{}
	r.acct = simtime.Accountant{}
	r.startRound, r.doneRound = 0, 0

	// Same preamble as Run: freeze the non-finetuned part, resolve the
	// communicated groups/tensors once, project every client's round cost
	// (descriptor-only — no datasets are touched).
	if err := r.global.SetFinetunePart(r.cfg.FinetunePart); err != nil {
		return r.hist, err
	}
	commGroups := r.global.TrainableGroupNames()
	commState, err := r.global.GroupStateTensors(commGroups)
	if err != nil {
		return r.hist, err
	}
	stateSize, err := r.stateBytes(commGroups)
	if err != nil {
		return r.hist, err
	}
	r.commGroups, r.commState = commGroups, commState
	if err := r.setupTiers(); err != nil {
		return r.hist, err
	}
	if err := r.cacheProjectedCosts(); err != nil {
		return r.hist, err
	}
	r.maskActive = false

	// In-flight state is keyed by pool position and bounded by the window:
	// the buffered update (in owned tensors from a free list), and the model
	// version it trained against.
	type flight struct {
		res     clientResult
		version int
		bufs    []*tensor.Tensor
	}
	pend := make(map[int]*flight, window)
	var bufFree [][]*tensor.Tensor
	var q simtime.EventQueue
	now := 0.0
	version := 0

	// pick asks the scheduler for k clients among those not in flight. The
	// in-flight positions are excluded from the candidate set itself (not
	// just flagged): availability wrappers overwrite the Available flag from
	// their own churn state, and a client cannot train two models at once.
	var cands []sched.Candidate
	pick := func(round, k int) []int {
		cands = cands[:0]
		for i := 0; i < n; i++ {
			if _, busy := pend[i]; busy {
				continue
			}
			d := r.src.Describe(i)
			cands = append(cands, sched.Candidate{
				ClientID:         i,
				DataSize:         d.DataSize,
				ProjectedSeconds: r.projCost[i],
				Available:        true,
				Cluster:          d.Cluster,
			})
		}
		if len(cands) == 0 {
			return nil
		}
		r.utility.Stamp(cands)
		srng := tensor.NewRand(uint64(r.cfg.Seed), uint64(round), sched.StreamTag)
		return r.cfg.Scheduler.Schedule(round, cands, k, srng)
	}

	dispatch := func(positions []int, round int, at float64) error {
		if len(positions) == 0 {
			return nil
		}
		sort.Ints(positions)
		parts, err := r.src.Acquire(positions, r.partScratch)
		if err != nil {
			return fmt.Errorf("core: acquiring aggregation %d dispatch: %w", round, err)
		}
		r.partScratch = parts
		results, err := r.trainParticipants(parts, round)
		r.src.Release(parts)
		if err != nil {
			return err
		}
		for i, pos := range positions {
			res := results[i]
			var bufs []*tensor.Tensor
			if len(bufFree) > 0 {
				bufs = bufFree[len(bufFree)-1]
				bufFree = bufFree[:len(bufFree)-1]
			}
			if cap(bufs) < len(res.state) {
				bufs = append(bufs[:len(bufs)], make([]*tensor.Tensor, len(res.state)-len(bufs))...)
			}
			bufs = bufs[:len(res.state)]
			for ti, src := range res.state {
				if bufs[ti] == nil || !bufs[ti].SameShape(src) {
					bufs[ti] = tensor.Ensure(bufs[ti], src.Shape()...)
				}
				if err := bufs[ti].CopyFrom(src); err != nil {
					return fmt.Errorf("core: buffering update from client %d: %w", res.clientID, err)
				}
			}
			res.state = bufs
			pend[pos] = &flight{res: res, version: version, bufs: bufs}
			q.Push(simtime.Event{Time: at + r.projCost[pos], ID: pos})
		}
		return nil
	}

	initial := pick(1, window)
	if len(initial) == 0 {
		return r.hist, fmt.Errorf("core: scheduler %s admitted no clients into the initial window",
			r.cfg.Scheduler.Name())
	}
	if err := dispatch(initial, 1, now); err != nil {
		return r.hist, err
	}

	var (
		foldedPos []int
		aggRes    []clientResult
		aggLam    []float64
		usedBufs  [][]*tensor.Tensor
		redisp    []int
	)
	for agg := 1; agg <= r.cfg.Rounds; agg++ {
		foldedPos, usedBufs = foldedPos[:0], usedBufs[:0]
		discarded, departed := 0, 0
		for len(foldedPos) < acfg.Buffer {
			ev, ok := q.Pop()
			if !ok {
				return r.hist, fmt.Errorf("core: fleet aggregation %d starved with %d/%d updates "+
					"buffered and %d clients in flight", agg, len(foldedPos), acfg.Buffer, len(pend))
			}
			now = ev.Time
			fl, ok := pend[ev.ID]
			if !ok {
				return r.hist, fmt.Errorf("core: arrival event for position %d with no in-flight update", ev.ID)
			}
			if acfg.Departed != nil && acfg.Departed(agg, fl.res.clientID) {
				// The client trained but left before uploading: account the
				// compute, drop the update, free the slot for the next refill.
				r.acct.AddRound(fl.res.cost)
				departed++
				delete(pend, ev.ID)
				bufFree = append(bufFree, fl.bufs)
				continue
			}
			s := version - fl.version
			if acfg.MaxStaleness >= 0 && s > acfg.MaxStaleness {
				// Computed and uplinked regardless; count the work, drop the
				// update, and hand the client the current model right away.
				r.acct.AddRound(fl.res.cost)
				r.acct.AddCommunication(stateSize, stateSize)
				discarded++
				delete(pend, ev.ID)
				bufFree = append(bufFree, fl.bufs)
				redisp = append(redisp[:0], ev.ID)
				if err := dispatch(redisp, agg, now); err != nil {
					return r.hist, err
				}
				continue
			}
			foldedPos = append(foldedPos, ev.ID)
		}

		// Fold in ascending position — the synchronous engine's participant
		// order — so the full-buffer window replays Run's arithmetic exactly.
		sort.Ints(foldedPos)
		aggRes, aggLam = aggRes[:0], aggLam[:0]
		for _, pos := range foldedPos {
			fl := pend[pos]
			s := version - fl.version
			lam := weigher.Weight(s)
			if lam <= 0 || math.IsNaN(lam) || math.IsInf(lam, 0) {
				return r.hist, fmt.Errorf("core: staleness weigher %s returned %v for staleness %d",
					weigher.Name(), lam, s)
			}
			aggRes = append(aggRes, fl.res)
			aggLam = append(aggLam, lam)
			usedBufs = append(usedBufs, fl.bufs)
			delete(pend, pos)
		}
		if err := r.aggregate(aggRes, commState, aggLam); err != nil {
			return r.hist, err
		}
		version++
		bufFree = append(bufFree, usedBufs...)

		var lossSum float64
		for i, res := range aggRes {
			r.acct.AddRound(res.cost)
			r.acct.AddCommunication(stateSize, stateSize)
			lossSum += res.trainLoss
			r.utility.ObserveUpdate(foldedPos[i], res.meanEntropy, res.trainLoss, res.cost.Total())
		}

		rec := RoundRecord{
			Round:           agg,
			CohortSize:      len(aggRes) + discarded + departed,
			SchedPolicy:     r.cfg.Scheduler.Name(),
			Participants:    len(aggRes),
			TestAccuracy:    math.NaN(),
			MeanTrainLoss:   lossSum / float64(len(aggRes)),
			CumTrainSeconds: r.acct.TotalSeconds(),
			CumUplinkBytes:  r.acct.UplinkBytes(),
		}
		if r.cfg.EvalEvery > 0 && (agg%r.cfg.EvalEvery == 0 || agg == r.cfg.Rounds) {
			acc, err := metrics.Accuracy(r.global, r.test)
			if err != nil {
				return r.hist, fmt.Errorf("core: eval aggregation %d: %w", agg, err)
			}
			rec.TestAccuracy = acc
			if acc > r.hist.BestAccuracy {
				r.hist.BestAccuracy = acc
			}
			r.hist.FinalAccuracy = acc
		}
		r.hist.Records = append(r.hist.Records, rec)
		r.doneRound = agg

		// Refill the window back to size through the scheduler — over the
		// clients not in flight, which is where trace availability decides
		// who is reachable and cluster sampling keeps the mix stratified.
		if agg < r.cfg.Rounds {
			if need := window - len(pend); need > 0 {
				if err := dispatch(pick(agg+1, need), agg+1, now); err != nil {
					return r.hist, err
				}
			}
		}
	}
	r.hist.TotalTrainSeconds = r.acct.TotalSeconds()
	r.hist.TotalUplinkBytes = r.acct.UplinkBytes()
	r.hist.TotalDownlinkBytes = r.acct.DownlinkBytes()
	return r.hist, nil
}
