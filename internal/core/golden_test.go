package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fedfteds/internal/ckpt"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/strategy"
)

// updateGolden regenerates the committed golden checkpoint fixtures:
//
//	go test ./internal/core/ -run TestGoldenCheckpoint -update-golden
var updateGolden = flag.Bool("update-golden", false, "regenerate testdata golden checkpoint fixtures")

const (
	goldenCkptFile = "testdata/golden-round2.fedckpt"
	goldenHistFile = "testdata/golden-history.json"
	goldenRounds   = 4
	goldenResumeAt = 2
)

// goldenConfig is the fixed configuration behind the committed fixture. It
// exercises the full FedFT-EDS stack: partial training, entropy selection,
// and the utility-driven cohort scheduler. EvalEvery 1 keeps every float in
// the history finite, so it survives a JSON round trip exactly (Go marshals
// float64 with shortest-round-trip precision).
func goldenConfig() Config {
	return Config{
		Rounds:         goldenRounds,
		LocalEpochs:    1,
		BatchSize:      16,
		LR:             0.1,
		Momentum:       0.5,
		FinetunePart:   models.FinetuneModerate,
		Selector:       selection.Entropy{Temperature: 0.1},
		SelectFraction: 0.5,
		Scheduler:      sched.EntropyUtility{},
		CohortSize:     3,
		EvalEvery:      1,
		Parallelism:    2,
		Seed:           1234,
	}
}

// TestGoldenCheckpoint is the CI determinism gate: decoding the committed
// checkpoint and resuming two rounds from it must reproduce the committed
// expected history exactly. It fails on silent codec/format drift (the
// fixture stops decoding, or re-encoding it changes bytes) and on
// RNG-ordering drift anywhere in the training stack (the resumed history
// diverges). Regenerate fixtures with -update-golden after an *intentional*
// format or numerics change, and say so in the commit message.
func TestGoldenCheckpoint(t *testing.T) {
	clients, _, test, spec := testFederation(t, 6, 0.5)
	build := func() *models.Model {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	if *updateGolden {
		dir := t.TempDir()
		cfg := goldenConfig()
		cfg.CheckpointDir = dir
		runner, err := NewRunner(cfg, build(), clients, test)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenCkptFile), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(ckpt.Path(dir, goldenResumeAt))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCkptFile, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		js, err := json.MarshalIndent(hist, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenHistFile, append(js, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s and %s", goldenCkptFile, goldenHistFile)
		return
	}

	js, err := os.ReadFile(goldenHistFile)
	if err != nil {
		t.Fatalf("missing golden history (regenerate with -update-golden): %v", err)
	}
	var wantHist History
	if err := json.Unmarshal(js, &wantHist); err != nil {
		t.Fatal(err)
	}

	// Gate 1: the committed file still decodes, and re-encoding its state
	// reproduces it byte for byte (codec determinism and format stability).
	blob, err := os.ReadFile(goldenCkptFile)
	if err != nil {
		t.Fatalf("missing golden checkpoint (regenerate with -update-golden): %v", err)
	}
	sections, err := ckpt.Unmarshal(blob)
	if err != nil {
		t.Fatalf("golden checkpoint no longer decodes — the codec or format drifted: %v", err)
	}
	state, err := RunStateFromSections(sections)
	if err != nil {
		t.Fatalf("golden run state no longer decodes: %v", err)
	}
	reSections, err := state.Sections()
	if err != nil {
		t.Fatal(err)
	}
	reBlob, err := ckpt.Marshal(reSections)
	if err != nil {
		t.Fatal(err)
	}
	if string(reBlob) != string(blob) {
		t.Fatalf("re-encoding the golden state changed its bytes (%d vs %d): encoding is no longer "+
			"deterministic or the format changed without a version bump", len(reBlob), len(blob))
	}

	// Gate 2: resuming 2 rounds from the fixture reproduces the committed
	// history exactly.
	if state.Round != goldenResumeAt {
		t.Fatalf("golden checkpoint is at round %d, want %d", state.Round, goldenResumeAt)
	}
	runner, err := NewRunner(goldenConfig(), build(), clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.RestoreInto(runner); err != nil {
		t.Fatal(err)
	}
	hist, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !histEqual(wantHist, hist) {
		t.Fatalf("resuming from the golden checkpoint diverged from the committed history — "+
			"RNG ordering or numerics drifted:\nwant: %+v\ngot:  %+v", wantHist, hist)
	}
}

const (
	goldenStratCkptFile = "testdata/golden-fedadam-round2.fedckpt"
	goldenStratHistFile = "testdata/golden-fedadam-history.json"
	goldenStratSpec     = "fedadam:lr=0.2"
)

// goldenStratConfig is the strategy-bearing golden fixture's configuration:
// FedAdam mid-run, so the committed checkpoint carries the optional
// "strategy" section with live server-optimizer moments.
func goldenStratConfig(t *testing.T) Config {
	strat, err := strategy.Parse(goldenStratSpec)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Rounds:         goldenRounds,
		LocalEpochs:    1,
		BatchSize:      16,
		LR:             0.1,
		Momentum:       0.5,
		FinetunePart:   models.FinetuneModerate,
		Selector:       selection.Entropy{Temperature: 0.1},
		SelectFraction: 0.5,
		Strategy:       strat,
		EvalEvery:      1,
		Parallelism:    2,
		Seed:           4321,
	}
}

// TestGoldenCheckpointFedAdam extends the determinism gate to the strategy
// layer: the committed FedAdam checkpoint (strategy section included) must
// decode, re-encode byte-identically, and resuming from it — moments
// restored mid-run — must reproduce the committed history exactly. It fails
// on drift in the strategy section format, the fingerprint rendering (which
// gates resume), or the server optimizer's numerics.
func TestGoldenCheckpointFedAdam(t *testing.T) {
	clients, _, test, spec := testFederation(t, 6, 0.5)
	build := func() *models.Model {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	if *updateGolden {
		dir := t.TempDir()
		cfg := goldenStratConfig(t)
		cfg.CheckpointDir = dir
		runner, err := NewRunner(cfg, build(), clients, test)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenStratCkptFile), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(ckpt.Path(dir, goldenResumeAt))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenStratCkptFile, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		js, err := json.MarshalIndent(hist, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenStratHistFile, append(js, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s and %s", goldenStratCkptFile, goldenStratHistFile)
		return
	}

	js, err := os.ReadFile(goldenStratHistFile)
	if err != nil {
		t.Fatalf("missing golden fedadam history (regenerate with -update-golden): %v", err)
	}
	var wantHist History
	if err := json.Unmarshal(js, &wantHist); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(goldenStratCkptFile)
	if err != nil {
		t.Fatalf("missing golden fedadam checkpoint (regenerate with -update-golden): %v", err)
	}
	sections, err := ckpt.Unmarshal(blob)
	if err != nil {
		t.Fatalf("golden fedadam checkpoint no longer decodes: %v", err)
	}
	state, err := RunStateFromSections(sections)
	if err != nil {
		t.Fatalf("golden fedadam run state no longer decodes: %v", err)
	}
	if state.StratName == "" || len(state.StratState) == 0 {
		t.Fatalf("golden fedadam checkpoint lost its strategy section: name %q, %d state tensors",
			state.StratName, len(state.StratState))
	}
	reSections, err := state.Sections()
	if err != nil {
		t.Fatal(err)
	}
	reBlob, err := ckpt.Marshal(reSections)
	if err != nil {
		t.Fatal(err)
	}
	if string(reBlob) != string(blob) {
		t.Fatalf("re-encoding the golden fedadam state changed its bytes (%d vs %d)", len(reBlob), len(blob))
	}

	if state.Round != goldenResumeAt {
		t.Fatalf("golden fedadam checkpoint is at round %d, want %d", state.Round, goldenResumeAt)
	}
	runner, err := NewRunner(goldenStratConfig(t), build(), clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.RestoreInto(runner); err != nil {
		t.Fatal(err)
	}
	hist, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !histEqual(wantHist, hist) {
		t.Fatalf("resuming from the golden fedadam checkpoint diverged from the committed history:\nwant: %+v\ngot:  %+v",
			wantHist, hist)
	}
}
