package core

import (
	"fmt"
	"math"

	"fedfteds/internal/data"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
	"fedfteds/internal/nn"
	"fedfteds/internal/opt"
	"fedfteds/internal/tensor"
)

// CentralConfig configures centralized (non-federated) training, used both
// for the paper's "Centralised" upper bound and for pretraining the global
// model on the source domain.
type CentralConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize for SGD.
	BatchSize int
	// LR is the learning rate.
	LR float64
	// Momentum for SGD.
	Momentum float64
	// WeightDecay is the optional L2 coefficient.
	WeightDecay float64
	// Seed drives batch shuffling.
	Seed int64
	// EvalEvery evaluates on the test set every this many epochs when a test
	// set is provided (default 1).
	EvalEvery int
}

// CentralHistory records centralized training progress.
type CentralHistory struct {
	// EpochLosses is the mean training loss per epoch.
	EpochLosses []float64
	// TestAccuracies is the per-epoch test accuracy (NaN when skipped).
	TestAccuracies []float64
	// BestAccuracy is the best observed test accuracy (0 without a test set).
	BestAccuracy float64
	// FinalAccuracy is the last evaluated accuracy.
	FinalAccuracy float64
}

// TrainCentralized trains m on train, optionally evaluating on test.
// It honours the model's current finetune part (frozen groups stay fixed),
// which is what Pretrain relies on to train the whole network.
func TrainCentralized(m *models.Model, train, test *data.Dataset, cfg CentralConfig) (CentralHistory, error) {
	var hist CentralHistory
	if cfg.Epochs <= 0 || cfg.LR <= 0 {
		return hist, fmt.Errorf("%w: central epochs=%d lr=%v", ErrConfig, cfg.Epochs, cfg.LR)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if cfg.EvalEvery == 0 {
		cfg.EvalEvery = 1
	}
	if train == nil || train.Len() == 0 {
		return hist, fmt.Errorf("%w: empty training set", ErrConfig)
	}
	sgd, err := opt.NewSGD(opt.SGDConfig{
		LR:          cfg.LR,
		Momentum:    cfg.Momentum,
		WeightDecay: cfg.WeightDecay,
	}, m.TrainableParams())
	if err != nil {
		return hist, err
	}
	loss := nn.SoftmaxCrossEntropy{}
	var ls nn.LossScratch
	rng := tensor.NewRand(uint64(cfg.Seed), 0xCE27)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		batches, err := train.Batches(cfg.BatchSize, rng)
		if err != nil {
			return hist, err
		}
		var epochLoss float64
		for _, b := range batches {
			logits := m.Forward(b.X, true)
			v, dl, err := loss.LossInto(&ls, logits, b.Y)
			if err != nil {
				return hist, err
			}
			m.Backward(dl)
			sgd.Step()
			epochLoss += v * float64(len(b.Y))
		}
		hist.EpochLosses = append(hist.EpochLosses, epochLoss/float64(train.Len()))

		acc := math.NaN()
		if test != nil && test.Len() > 0 && (epoch%cfg.EvalEvery == 0 || epoch == cfg.Epochs-1) {
			acc, err = metrics.Accuracy(m, test)
			if err != nil {
				return hist, err
			}
			if acc > hist.BestAccuracy {
				hist.BestAccuracy = acc
			}
			hist.FinalAccuracy = acc
		}
		hist.TestAccuracies = append(hist.TestAccuracies, acc)
	}
	return hist, nil
}

// Pretrain trains the full model on the source domain (paper Sec. III-B):
// it temporarily switches to full training, runs centralized SGD, and
// restores the previous finetune part.
func Pretrain(m *models.Model, source *data.Dataset, cfg CentralConfig) (CentralHistory, error) {
	prev := m.FinetunePart()
	if err := m.SetFinetunePart(models.FinetuneFull); err != nil {
		return CentralHistory{}, err
	}
	hist, err := TrainCentralized(m, source, nil, cfg)
	if restoreErr := m.SetFinetunePart(prev); restoreErr != nil && err == nil {
		err = restoreErr
	}
	return hist, err
}

// PretrainTransfer implements the paper's pretraining pipeline across label
// spaces: it builds a model for the source domain's classes, pretrains it,
// then builds the target model (fresh classifier head) and transfers the
// pretrained feature extractor (low, mid, up groups) into it.
func PretrainTransfer(targetSpec models.Spec, source *data.Dataset, cfg CentralConfig) (*models.Model, error) {
	srcSpec := targetSpec
	srcSpec.NumClasses = source.NumClasses
	srcModel, err := models.Build(srcSpec)
	if err != nil {
		return nil, fmt.Errorf("core: build source model: %w", err)
	}
	if _, err := Pretrain(srcModel, source, cfg); err != nil {
		return nil, fmt.Errorf("core: pretrain: %w", err)
	}
	target, err := models.Build(targetSpec)
	if err != nil {
		return nil, fmt.Errorf("core: build target model: %w", err)
	}
	extractor := []string{models.GroupLow, models.GroupMid, models.GroupUp}
	if err := target.CopyGroupStateFrom(srcModel, extractor); err != nil {
		return nil, fmt.Errorf("core: transfer feature extractor: %w", err)
	}
	return target, nil
}
