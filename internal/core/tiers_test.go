package core

import (
	"errors"
	"strings"
	"testing"

	"fedfteds/internal/device"
	"fedfteds/internal/models"
	"fedfteds/internal/strategy"
)

func mustDist(t *testing.T, spec string) *device.Distribution {
	t.Helper()
	d, err := device.ParseDistribution(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFullMaskBitIdenticalToLegacy pins the per-layer aggregation path to the
// legacy whole-state path: a tiered run where every client is in the "full"
// tier (whose mask covers every communicated group) must reproduce the
// untiered run bit for bit — same history, same accounting, same final model
// state — even though it flows through the mask/cover machinery.
func TestFullMaskBitIdenticalToLegacy(t *testing.T) {
	for _, part := range []models.FinetunePart{models.FinetuneFull, models.FinetuneModerate} {
		run := func(dist *device.Distribution) (History, *models.Model) {
			clients, _, test, spec := testFederation(t, 4, 0.5)
			m, err := models.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRunner(Config{
				Rounds: 3, LocalEpochs: 1, LR: 0.1, Momentum: 0.5,
				FinetunePart: part, TierDist: dist, Seed: 77, Parallelism: 2,
			}, m, clients, test)
			if err != nil {
				t.Fatal(err)
			}
			h, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			return h, m
		}
		legacyHist, legacyModel := run(nil)
		tierHist, tierModel := run(mustDist(t, "full:1"))

		for i := range legacyHist.Records {
			a, b := legacyHist.Records[i], tierHist.Records[i]
			if a != b {
				t.Fatalf("part %v round %d: legacy record %+v != tiered %+v", part, i+1, a, b)
			}
		}
		if legacyHist.TotalUplinkBytes != tierHist.TotalUplinkBytes {
			t.Fatalf("part %v: uplink %d != %d", part, legacyHist.TotalUplinkBytes, tierHist.TotalUplinkBytes)
		}
		want, got := legacyModel.StateTensors(), tierModel.StateTensors()
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("part %v: state tensor %d differs between legacy and full-mask tiered run", part, i)
			}
		}
	}
}

// TestTieredRunTrainsAndSavesUplink runs a mixed tier distribution end to
// end: low-tier clients ship only their affordable top groups, so the run's
// uplink traffic must undercut the homogeneous full-tier run while the
// engine still completes every round.
func TestTieredRunTrainsAndSavesUplink(t *testing.T) {
	run := func(spec string) History {
		clients, _, test, mspec := testFederation(t, 6, 0.5)
		m, err := models.Build(mspec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(Config{
			Rounds: 2, LocalEpochs: 1, LR: 0.1, Momentum: 0.5,
			TierDist: mustDist(t, spec), Seed: 31,
		}, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		h, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	full := run("full:1")
	mixed := run("low:2,mid:2,full:2")
	if mixed.TotalUplinkBytes >= full.TotalUplinkBytes {
		t.Fatalf("mixed-tier uplink %d >= full-tier uplink %d — masked layers should ship zero bytes",
			mixed.TotalUplinkBytes, full.TotalUplinkBytes)
	}
	if mixed.TotalDownlinkBytes != full.TotalDownlinkBytes {
		t.Fatalf("downlink %d != %d — the broadcast is always the full communicated state",
			mixed.TotalDownlinkBytes, full.TotalDownlinkBytes)
	}
	if len(mixed.Records) != 2 || mixed.Records[1].Participants == 0 {
		t.Fatalf("tiered run did not complete: %+v", mixed.Records)
	}
	// Lower-capability tiers must also cost less simulated compute.
	if mixed.TotalTrainSeconds >= full.TotalTrainSeconds {
		t.Fatalf("mixed-tier train time %v >= full-tier %v", mixed.TotalTrainSeconds, full.TotalTrainSeconds)
	}
}

// maskEverythingButClassifier is a strategy MaskProvider that narrows every
// client's proposal to the classifier group alone.
type classifierOnlyMasks struct{}

func (classifierOnlyMasks) MaskName() string { return "classifier-only" }
func (classifierOnlyMasks) MaskFor(round, clientID int, proposed []string) []string {
	return proposed[len(proposed)-1:]
}

// TestStrategyMaskProviderOverridesMasks exercises the strategy hook on an
// untiered run: the provider narrows every mask to the classifier, so uplink
// must shrink accordingly and lower groups must stay at initialization.
func TestStrategyMaskProviderOverridesMasks(t *testing.T) {
	clients, _, test, spec := testFederation(t, 3, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	before, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	strat := strategy.FedAvg().WithMaskProvider(classifierOnlyMasks{})
	r, err := NewRunner(Config{
		Rounds: 2, LocalEpochs: 1, LR: 0.1, Momentum: 0.5,
		Strategy: strat, Seed: 9,
	}, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.TotalUplinkBytes <= 0 {
		t.Fatal("no uplink accounted")
	}
	groups := models.GroupNames()
	for _, g := range groups[:len(groups)-1] {
		want, err := before.GroupStateTensors([]string{g})
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.GroupStateTensors([]string{g})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("group %q tensor %d changed despite classifier-only masks", g, i)
			}
		}
	}
}

// TestTieredResumeBitIdentical checkpoints a mixed-tier run mid-way, resumes
// it, and requires the continuation to match the uninterrupted run bit for
// bit — the masked paths must be as resumable as the legacy ones.
func TestTieredResumeBitIdentical(t *testing.T) {
	build := func(rounds int, dir string) *Runner {
		clients, _, test, spec := testFederation(t, 4, 0.5)
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(Config{
			Rounds: rounds, LocalEpochs: 1, LR: 0.1, Momentum: 0.5,
			TierDist: mustDist(t, "low:1,full:1"), Seed: 44, CheckpointDir: dir,
		}, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	full := build(4, "")
	wantHist, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	head := build(2, dir)
	if _, err := head.Run(); err != nil {
		t.Fatal(err)
	}
	tail := build(4, dir)
	if round, err := tail.ResumeLatest(); err != nil || round != 2 {
		t.Fatalf("resume: round %d, err %v", round, err)
	}
	gotHist, err := tail.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantHist.Records {
		if wantHist.Records[i] != gotHist.Records[i] {
			t.Fatalf("round %d: uninterrupted %+v != resumed %+v",
				i+1, wantHist.Records[i], gotHist.Records[i])
		}
	}
	want, got := full.GlobalModel().StateTensors(), tail.GlobalModel().StateTensors()
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("state tensor %d differs after resume", i)
		}
	}
}

// TestTierResumeRefusedUnderEditedDistribution pins the refusal rule: a
// checkpoint written under one tier distribution must not restore into a
// runner configured with another — neither through the config fingerprint
// nor, for a hypothetical tag collision, through the explicit tier-spec
// check.
func TestTierResumeRefusedUnderEditedDistribution(t *testing.T) {
	clients, _, test, spec := testFederation(t, 4, 0.5)
	build := func(dist string) *Runner {
		m, err := models.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Rounds: 2, LocalEpochs: 1, LR: 0.1, Momentum: 0.5, Seed: 44}
		if dist != "" {
			cfg.TierDist = mustDist(t, dist)
		}
		r, err := NewRunner(cfg, m, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	tiered := build("low:1,full:1")
	if _, err := tiered.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := tiered.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.TierSpec != "full:1,low:1" {
		t.Fatalf("snapshot tier spec %q, want canonical \"full:1,low:1\"", snap.TierSpec)
	}

	for _, dist := range []string{"full:1", "low:1,full:2", ""} {
		edited := build(dist)
		if err := snap.RestoreInto(edited); !errors.Is(err, ErrConfig) {
			t.Fatalf("restore under edited distribution %q: err %v, want ErrConfig", dist, err)
		}
	}
	// Same rule set as strategy edits: even with an identical config tag the
	// explicit tier-spec comparison must refuse a drifted distribution.
	same := build("low:1,full:1")
	if err := snap.ValidateFor(same.cfg.Seed, same.cfg.Rounds, same.runTag(),
		same.cfg.Scheduler, same.cfg.Strategy, "full:2,low:1", "", ""); err == nil ||
		!strings.Contains(err.Error(), "tier distribution") {
		t.Fatalf("tier-spec mismatch not refused explicitly: %v", err)
	}
	// And the happy path restores.
	if err := snap.RestoreInto(same); err != nil {
		t.Fatalf("restore under the identical distribution failed: %v", err)
	}
}
