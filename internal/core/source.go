package core

import (
	"fmt"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/simtime"
)

// ClientDesc is the cheap per-client metadata a ClientSource exposes without
// materializing the client's dataset: everything cohort scheduling and cost
// projection need. For a virtual fleet this is derived from the client's seed
// at registration; for the legacy eager pool it is read off the held client.
type ClientDesc struct {
	// DataSize is the client's local sample count.
	DataSize int
	// Device is the client's simulated compute capability.
	Device simtime.Device
	// Cluster is the client's similarity-cluster index (0 when the source
	// does not cluster), consumed by the sched cluster:<inner> policy.
	Cluster int
}

// ClientSource abstracts where a Runner's clients come from. The legacy path
// holds every *Client in memory for the whole run; a virtual fleet holds only
// descriptors and materializes clients on Acquire, bounding resident memory by
// the cohort (plus a reuse pool), not the population.
//
// The contract the Runner depends on:
//   - Describe(pos) must agree exactly with the client Acquire returns for pos
//     (same DataSize, same Device) — projected costs and scheduling candidates
//     are computed from descriptors alone.
//   - Acquire must return clients in the order of positions, appended into
//     dst[:0] (the caller reuses the backing array across rounds).
//   - Acquired clients stay valid until Release; Release may evict them.
//   - Materialization must be deterministic: acquiring the same position twice
//     yields bit-identical datasets.
type ClientSource interface {
	// NumClients is the population size.
	NumClients() int
	// Describe returns the descriptor for pool position pos in [0, NumClients).
	Describe(pos int) ClientDesc
	// Acquire materializes (or retrieves) the clients at positions, appending
	// them to dst[:0] in order.
	Acquire(positions []int, dst []*Client) ([]*Client, error)
	// Release returns acquired clients to the source.
	Release(clients []*Client)
	// Fingerprint identifies the population's construction (seeds, sizes,
	// clustering) for checkpoint validation. The legacy eager source returns
	// "" and checkpoints fall back to hashing every client's identity; a
	// virtual fleet returns a stable non-empty fingerprint so million-client
	// checkpoints do not pay a per-client hash.
	Fingerprint() string
}

// eagerSource adapts the legacy in-memory client slice to ClientSource. Every
// descriptor and acquisition reads the held clients directly, so a Runner
// driven through it is bit-identical to the pre-source engine.
type eagerSource struct {
	clients []*Client
}

func (s eagerSource) NumClients() int { return len(s.clients) }

func (s eagerSource) Describe(pos int) ClientDesc {
	cl := s.clients[pos]
	return ClientDesc{DataSize: cl.Data.Len(), Device: cl.Device, Cluster: cl.Cluster}
}

func (s eagerSource) Acquire(positions []int, dst []*Client) ([]*Client, error) {
	dst = dst[:0]
	for _, p := range positions {
		if p < 0 || p >= len(s.clients) {
			return nil, fmt.Errorf("core: acquire position %d outside pool of %d", p, len(s.clients))
		}
		dst = append(dst, s.clients[p])
	}
	return dst, nil
}

func (s eagerSource) Release([]*Client) {}

func (s eagerSource) Fingerprint() string { return "" }

// NewRunnerWithSource constructs a runner whose clients come from a
// ClientSource instead of an in-memory slice. Synchronous Run acquires each
// round's participants from the source and releases them after aggregation,
// so resident client memory is bounded by the cohort and the source's reuse
// pool. RunAsync requires the eager pool (its in-flight set is the whole
// population's worst case); fleet-backed overlapping rounds use RunFleetAsync.
func NewRunnerWithSource(cfg Config, global *models.Model, src ClientSource, test *data.Dataset) (*Runner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if global == nil {
		return nil, fmt.Errorf("%w: nil global model", ErrConfig)
	}
	if src == nil {
		return nil, fmt.Errorf("%w: nil client source", ErrConfig)
	}
	if src.NumClients() <= 0 {
		return nil, fmt.Errorf("%w: client source holds no clients", ErrConfig)
	}
	if test == nil || test.Len() == 0 {
		return nil, fmt.Errorf("%w: empty test set", ErrConfig)
	}
	if len(cfg.TrainGroups) > 0 {
		return nil, fmt.Errorf("%w: TrainGroups is a standalone-client setting; in-process runs "+
			"derive per-client masks from TierDist", ErrConfig)
	}
	for pos := 0; pos < src.NumClients(); pos++ {
		d := src.Describe(pos)
		if d.DataSize <= 0 {
			return nil, fmt.Errorf("%w: client %d has no data", ErrConfig, pos)
		}
		if d.Device.FLOPSRate <= 0 {
			return nil, fmt.Errorf("%w: client %d device rate %v", ErrConfig, pos, d.Device.FLOPSRate)
		}
	}
	strat, err := cfg.resolveStrategy()
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, global: global, src: src, test: test,
		utility: sched.NewTracker(), strat: strat}, nil
}
