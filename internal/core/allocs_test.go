package core

import (
	"testing"

	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// newWarmRunner builds a runner, runs it once to warm every scratch buffer
// (replicas, candidate/weight/average scratch, state buffers), and returns
// it with the live communicated tensors.
func newWarmRunner(t *testing.T, cfg Config) (*Runner, []*tensor.Tensor) {
	t.Helper()
	clients, _, test, spec := testFederation(t, 6, 0.5)
	m, err := models.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	commState, err := r.global.GroupStateTensors(r.global.TrainableGroupNames())
	if err != nil {
		t.Fatal(err)
	}
	return r, commState
}

// TestScheduledSamplingSteadyStateAllocs guards the satellite perf fix: the
// per-round candidate slice, cohort times, and participant list are runner
// scratch, so a scheduled round's sampling allocates only what the policy
// itself draws (its rng and cohort slices), independent of the pool size.
func TestScheduledSamplingSteadyStateAllocs(t *testing.T) {
	r, _ := newWarmRunner(t, Config{
		Rounds: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.1,
		Selector: selection.Entropy{Temperature: 0.1}, SelectFraction: 0.5,
		CohortSize: 3, EvalEvery: 10, Parallelism: 2, Seed: 5,
	})
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, _, err := r.sampleParticipants(1); err != nil {
			t.Fatal(err)
		}
	})
	// The uniform policy's fixed footprint: the derived rng (2), the
	// availability/permutation/cohort slices (4), the straggler rng (2) and
	// the chosen copy. Anything above 12 means a per-round buffer stopped
	// being reused.
	if allocs > 12 {
		t.Fatalf("scheduled sampling allocates %v times per round, want <= 12", allocs)
	}
}

// TestAggregateSteadyStateAllocs: once the weight/update/average scratch and
// the server-optimizer state are warm, aggregation must not allocate — for
// the bit-identical fedavg path and for a stateful server optimizer alike.
func TestAggregateSteadyStateAllocs(t *testing.T) {
	for _, tt := range []struct {
		name string
		cfg  Config
	}{
		{
			name: "fedavg-legacy",
			cfg: Config{
				Rounds: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.1,
				Selector: selection.Entropy{Temperature: 0.1}, SelectFraction: 0.5,
				EvalEvery: 10, Parallelism: 2, Seed: 6,
			},
		},
		{
			name: "fedadam",
			cfg: func() Config {
				strat, err := strategy.Parse("fedadam")
				if err != nil {
					panic(err)
				}
				return Config{
					Rounds: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.1,
					Selector: selection.Entropy{Temperature: 0.1}, SelectFraction: 0.5,
					Strategy: strat, EvalEvery: 10, Parallelism: 2, Seed: 6,
				}
			}(),
		},
	} {
		t.Run(tt.name, func(t *testing.T) {
			r, commState := newWarmRunner(t, tt.cfg)
			participants, _, _, err := r.sampleParticipants(1)
			if err != nil {
				t.Fatal(err)
			}
			results, err := r.trainParticipants(participants, 1)
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if err := r.aggregate(results, commState, nil); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Fatalf("aggregate allocates %v times in steady state, want 0", allocs)
			}
		})
	}
}
