package models

import (
	"fmt"
	"math/rand"

	"fedfteds/internal/nn"
	"fedfteds/internal/tensor"
)

// buildMLP constructs the block MLP: three hidden blocks (low, mid, up),
// each Dense→BatchNorm→ReLU, plus a linear classifier. The mid and up blocks
// are residual so that freezing lower blocks leaves useful refinement
// capacity above, mirroring the WRN's structure.
func buildMLP(spec Spec) ([]*nn.Sequential, error) {
	if len(spec.InputShape) != 1 || spec.InputShape[0] <= 0 {
		return nil, fmt.Errorf("%w: MLP input shape %v, want [features]", ErrSpec, spec.InputShape)
	}
	if spec.Hidden <= 0 {
		return nil, fmt.Errorf("%w: MLP hidden width %d", ErrSpec, spec.Hidden)
	}
	in := spec.InputShape[0]
	h := spec.Hidden
	rng := rand.New(rand.NewSource(spec.InitSeed))

	low, err := mlpStem("low", in, h, rng)
	if err != nil {
		return nil, err
	}
	mid, err := mlpResBlock("mid", h, spec.DropoutRate, spec.InitSeed+1, rng)
	if err != nil {
		return nil, err
	}
	up, err := mlpResBlock("up", h, spec.DropoutRate, spec.InitSeed+2, rng)
	if err != nil {
		return nil, err
	}
	head, err := nn.NewDense("classifier", h, spec.NumClasses, rng)
	if err != nil {
		return nil, err
	}
	return []*nn.Sequential{
		low,
		mid,
		up,
		nn.NewSequential(GroupClassifier, head),
	}, nil
}

// mlpStem is Dense→BN→ReLU projecting the input into the hidden width.
func mlpStem(name string, in, h int, rng *rand.Rand) (*nn.Sequential, error) {
	fc, err := nn.NewDense(name+".fc", in, h, rng)
	if err != nil {
		return nil, err
	}
	bn, err := nn.NewBatchNorm(name+".bn", h)
	if err != nil {
		return nil, err
	}
	return nn.NewSequential(name, fc, bn, nn.NewReLU(name+".relu")), nil
}

// mlpResBlock is a residual block: x + (Dense→BN→ReLU[→Dropout])(x),
// followed by a ReLU on the sum.
func mlpResBlock(name string, h int, dropout float64, dropSeed int64, rng *rand.Rand) (*nn.Sequential, error) {
	fc, err := nn.NewDense(name+".fc", h, h, rng)
	if err != nil {
		return nil, err
	}
	bn, err := nn.NewBatchNorm(name+".bn", h)
	if err != nil {
		return nil, err
	}
	layers := []nn.Layer{fc, bn, nn.NewReLU(name + ".relu")}
	if dropout > 0 {
		d, err := nn.NewDropout(name+".drop", dropout, tensor.DeriveSeed(uint64(dropSeed)))
		if err != nil {
			return nil, err
		}
		layers = append(layers, d)
	}
	body := nn.NewSequential(name+".body", layers...)
	res := nn.NewResidual(name+".res", body, nil)
	return nn.NewSequential(name, res, nn.NewReLU(name+".out")), nil
}
