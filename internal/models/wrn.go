package models

import (
	"fmt"
	"math/rand"

	"fedfteds/internal/nn"
	"fedfteds/internal/tensor"
)

// buildWRN constructs the Wide ResNet WRN-d-k of Zagoruyko & Komodakis with
// pre-activation residual blocks, as used in the paper (WRN-16-1).
//
// Layout for depth d = 6n+4 and width factor k:
//
//	conv3×3(inC→16)                                  — stem (in "low")
//	group1: n blocks, width 16k, stride 1            — "low"
//	group2: n blocks, width 32k, stride 2            — "mid"
//	group3: n blocks, width 64k, stride 2, BN-ReLU-GAP — "up"
//	linear(64k → classes)                            — "classifier"
func buildWRN(spec Spec) ([]*nn.Sequential, error) {
	if len(spec.InputShape) != 3 {
		return nil, fmt.Errorf("%w: WRN input shape %v, want [C H W]", ErrSpec, spec.InputShape)
	}
	if spec.Depth < 10 || (spec.Depth-4)%6 != 0 {
		return nil, fmt.Errorf("%w: WRN depth %d, want 6n+4 (n>=1)", ErrSpec, spec.Depth)
	}
	k := spec.WidthFactor
	if k <= 0 {
		return nil, fmt.Errorf("%w: WRN width factor %d", ErrSpec, k)
	}
	n := (spec.Depth - 4) / 6
	inC := spec.InputShape[0]
	rng := rand.New(rand.NewSource(spec.InitSeed))
	widths := []int{16, 16 * k, 32 * k, 64 * k}

	stem, err := nn.NewConv2D("stem.conv", inC, widths[0], 3, nn.ConvOpts{Padding: 1, NoBias: true}, rng)
	if err != nil {
		return nil, err
	}

	g1, err := wrnGroup("low.g1", n, widths[0], widths[1], 1, spec, rng)
	if err != nil {
		return nil, err
	}
	low := nn.NewSequential(GroupLow, append([]nn.Layer{stem}, g1...)...)

	g2, err := wrnGroup("mid.g2", n, widths[1], widths[2], 2, spec, rng)
	if err != nil {
		return nil, err
	}
	mid := nn.NewSequential(GroupMid, g2...)

	g3, err := wrnGroup("up.g3", n, widths[2], widths[3], 2, spec, rng)
	if err != nil {
		return nil, err
	}
	bnFinal, err := nn.NewBatchNorm("up.bn", widths[3])
	if err != nil {
		return nil, err
	}
	upLayers := append(g3, bnFinal, nn.NewReLU("up.relu"), nn.NewGlobalAvgPool("up.gap"))
	up := nn.NewSequential(GroupUp, upLayers...)

	head, err := nn.NewDense("classifier", widths[3], spec.NumClasses, rng)
	if err != nil {
		return nil, err
	}
	return []*nn.Sequential{low, mid, up, nn.NewSequential(GroupClassifier, head)}, nil
}

// wrnGroup builds n pre-activation residual blocks; the first may change
// width/stride and then uses a 1×1 projection shortcut.
func wrnGroup(name string, n, inC, outC, stride int, spec Spec, rng *rand.Rand) ([]nn.Layer, error) {
	layers := make([]nn.Layer, 0, n)
	for b := 0; b < n; b++ {
		blkIn, blkStride := outC, 1
		if b == 0 {
			blkIn, blkStride = inC, stride
		}
		blk, err := wrnBlock(fmt.Sprintf("%s.b%d", name, b), blkIn, outC, blkStride, spec, rng)
		if err != nil {
			return nil, err
		}
		layers = append(layers, blk)
	}
	return layers, nil
}

// wrnBlock is a pre-activation basic block:
// BN-ReLU-conv3×3[-dropout]-BN-ReLU-conv3×3, plus identity or 1×1 projection.
func wrnBlock(name string, inC, outC, stride int, spec Spec, rng *rand.Rand) (nn.Layer, error) {
	bn1, err := nn.NewBatchNorm(name+".bn1", inC)
	if err != nil {
		return nil, err
	}
	conv1, err := nn.NewConv2D(name+".conv1", inC, outC, 3, nn.ConvOpts{Stride: stride, Padding: 1, NoBias: true}, rng)
	if err != nil {
		return nil, err
	}
	bn2, err := nn.NewBatchNorm(name+".bn2", outC)
	if err != nil {
		return nil, err
	}
	conv2, err := nn.NewConv2D(name+".conv2", outC, outC, 3, nn.ConvOpts{Padding: 1, NoBias: true}, rng)
	if err != nil {
		return nil, err
	}
	bodyLayers := []nn.Layer{bn1, nn.NewReLU(name + ".relu1"), conv1}
	if spec.DropoutRate > 0 {
		d, err := nn.NewDropout(name+".drop", spec.DropoutRate, tensor.DeriveSeed(uint64(spec.InitSeed), uint64(len(name))))
		if err != nil {
			return nil, err
		}
		bodyLayers = append(bodyLayers, d)
	}
	bodyLayers = append(bodyLayers, bn2, nn.NewReLU(name+".relu2"), conv2)
	body := nn.NewSequential(name+".body", bodyLayers...)

	var shortcut *nn.Sequential
	if inC != outC || stride != 1 {
		proj, err := nn.NewConv2D(name+".proj", inC, outC, 1, nn.ConvOpts{Stride: stride, NoBias: true}, rng)
		if err != nil {
			return nil, err
		}
		shortcut = nn.NewSequential(name+".shortcut", proj)
	}
	return nn.NewResidual(name, body, shortcut), nil
}
