// Package models provides the model zoo used in the paper's experiments — a
// Wide ResNet (WRN-16-k) and a block-structured MLP — together with the
// machinery FedFT-EDS needs on top of a bare network: named layer groups
// (low / mid / up / classifier), partial freezing for fine-tuning, state
// (de)serialization for server↔client communication, deterministic cloning,
// and FLOP accounting split by group for the device-time model.
package models

import (
	"errors"
	"fmt"

	"fedfteds/internal/nn"
	"fedfteds/internal/tensor"
)

// Group names, ordered bottom (input side) to top (output side). They mirror
// the paper's WRN layer levels: layer1 (low), layer2 (mid), layer3 (up), and
// the classifier head.
const (
	GroupLow        = "low"
	GroupMid        = "mid"
	GroupUp         = "up"
	GroupClassifier = "classifier"
)

// groupOrder is the canonical bottom-to-top group ordering.
var groupOrder = []string{GroupLow, GroupMid, GroupUp, GroupClassifier}

// FinetunePart selects how much of the model clients train, matching the
// paper's ablation in Fig. 10a. The remainder of the model is frozen.
type FinetunePart int

const (
	// FinetuneFull trains the entire model (no frozen feature extractor).
	FinetuneFull FinetunePart = iota + 1
	// FinetuneLarge freezes only the low group.
	FinetuneLarge
	// FinetuneModerate freezes low and mid groups; this is the paper's
	// default ("fine-tuned from layer 3").
	FinetuneModerate
	// FinetuneClassifier trains only the classifier head.
	FinetuneClassifier
)

// String implements fmt.Stringer.
func (f FinetunePart) String() string {
	switch f {
	case FinetuneFull:
		return "full"
	case FinetuneLarge:
		return "large"
	case FinetuneModerate:
		return "moderate"
	case FinetuneClassifier:
		return "classifier"
	default:
		return fmt.Sprintf("FinetunePart(%d)", int(f))
	}
}

// trainableGroups returns the names of groups trained under f.
func (f FinetunePart) trainableGroups() ([]string, error) {
	switch f {
	case FinetuneFull:
		return []string{GroupLow, GroupMid, GroupUp, GroupClassifier}, nil
	case FinetuneLarge:
		return []string{GroupMid, GroupUp, GroupClassifier}, nil
	case FinetuneModerate:
		return []string{GroupUp, GroupClassifier}, nil
	case FinetuneClassifier:
		return []string{GroupClassifier}, nil
	default:
		return nil, fmt.Errorf("models: unknown finetune part %d", int(f))
	}
}

// ErrSpec reports an invalid model specification.
var ErrSpec = errors.New("models: invalid spec")

// Arch identifies a model architecture.
type Arch string

const (
	// ArchMLP is the block-structured multilayer perceptron used by the
	// experiment harness (see DESIGN.md for why it stands in for the WRN).
	ArchMLP Arch = "mlp"
	// ArchWRN is the Wide ResNet 16-k from the paper.
	ArchWRN Arch = "wrn"
)

// Spec fully determines a model so that clones can be rebuilt from scratch.
type Spec struct {
	// Arch selects the architecture.
	Arch Arch
	// InputShape is the per-sample input shape: [features] for the MLP,
	// [channels, height, width] for the WRN.
	InputShape []int
	// NumClasses is the classifier output width.
	NumClasses int
	// Hidden is the MLP hidden width (ignored by WRN).
	Hidden int
	// Depth is the WRN depth (e.g. 16); must satisfy depth = 6n+4.
	Depth int
	// WidthFactor is the WRN width multiplier k.
	WidthFactor int
	// DropoutRate is the optional dropout inside WRN blocks / between MLP
	// blocks; zero disables it.
	DropoutRate float64
	// InitSeed seeds weight initialization deterministically.
	InitSeed int64
}

// Model is a network organized into the four named groups.
type Model struct {
	spec   Spec
	groups []*nn.Sequential // parallel to groupOrder
	part   FinetunePart
	mask   []string // trainable groups, canonical order; mirrors frozen state
}

// Build constructs a model from its spec with deterministic initialization.
func Build(spec Spec) (*Model, error) {
	if spec.NumClasses <= 1 {
		return nil, fmt.Errorf("%w: NumClasses %d", ErrSpec, spec.NumClasses)
	}
	var (
		groups []*nn.Sequential
		err    error
	)
	switch spec.Arch {
	case ArchMLP:
		groups, err = buildMLP(spec)
	case ArchWRN:
		groups, err = buildWRN(spec)
	default:
		return nil, fmt.Errorf("%w: unknown arch %q", ErrSpec, spec.Arch)
	}
	if err != nil {
		return nil, err
	}
	m := &Model{spec: spec, groups: groups, part: FinetuneFull, mask: GroupNames()}
	// Validate the chain end to end.
	if _, err := m.OutputShape(); err != nil {
		return nil, err
	}
	return m, nil
}

// Spec returns the model's build specification.
func (m *Model) Spec() Spec { return m.spec }

// Group returns the named group's layer container.
func (m *Model) Group(name string) (*nn.Sequential, error) {
	for i, g := range groupOrder {
		if g == name {
			return m.groups[i], nil
		}
	}
	return nil, fmt.Errorf("models: unknown group %q", name)
}

// GroupNames returns the canonical group ordering.
func GroupNames() []string { return append([]string(nil), groupOrder...) }

// Forward runs the full network on a batch.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, g := range m.groups {
		x = g.Forward(x, train)
	}
	return x
}

// ForwardCollectGroups runs a forward pass and returns the activation after
// each group, flattened to (N, features). Used for CKA. The returned tensors
// are snapshots (clones): layer outputs are reused workspaces, so references
// into them would be overwritten by the next forward pass.
func (m *Model) ForwardCollectGroups(x *tensor.Tensor, train bool) map[string]*tensor.Tensor {
	outs := make(map[string]*tensor.Tensor, len(m.groups))
	for i, g := range m.groups {
		x = g.Forward(x, train)
		n := x.Dim(0)
		outs[groupOrder[i]] = x.Clone().MustReshape(n, x.Len()/max(n, 1))
	}
	return outs
}

// ResetTransientRNGs rewinds every dropout layer's RNG to its build-time
// seed, restoring the exact mask streams a freshly built model would draw.
// The pooled client-replica engine calls this when rebinding a replica to a
// client so that replica reuse stays bit-identical to cloning.
func (m *Model) ResetTransientRNGs() {
	for _, g := range m.groups {
		g.VisitLayers(func(l nn.Layer) {
			if d, ok := l.(*nn.Dropout); ok {
				d.ResetRNG()
			}
		})
	}
}

// Backward backpropagates dlogits through the network, honouring frozen
// groups (backprop stops below the lowest trainable group).
func (m *Model) Backward(dlogits *tensor.Tensor) {
	lowest := len(m.groups)
	for i, g := range m.groups {
		if !g.Frozen() {
			lowest = i
			break
		}
	}
	dy := dlogits
	for i := len(m.groups) - 1; i >= 0; i-- {
		need := i > lowest
		dy = m.groups[i].Backward(dy, need)
		if !need {
			return
		}
	}
}

// SetFinetunePart freezes groups according to part.
func (m *Model) SetFinetunePart(part FinetunePart) error {
	trainable, err := part.trainableGroups()
	if err != nil {
		return err
	}
	if err := m.SetTrainableGroups(trainable); err != nil {
		return err
	}
	m.part = part
	return nil
}

// SetTrainableGroups freezes everything except the named groups — the
// per-client layer-mask generalization of SetFinetunePart, accepting any
// non-empty subset of the model's groups (gaps included: Backward already
// traverses frozen groups above the lowest trainable one). The mask is
// stored in canonical group order and reported by TrainableGroupNames.
// FinetunePart keeps its last value; tier masks and finetune parts compose
// by applying the part first and the (narrower) mask second.
func (m *Model) SetTrainableGroups(names []string) error {
	set, err := groupSet(names)
	if err != nil {
		return err
	}
	mask := make([]string, 0, len(set))
	for i, name := range groupOrder {
		m.groups[i].SetFrozen(!set[name])
		if set[name] {
			mask = append(mask, name)
		}
	}
	m.mask = mask
	return nil
}

// groupSet validates names as a non-empty duplicate-free subset of the
// model's groups and returns it as a set.
func groupSet(names []string) (map[string]bool, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("models: empty group mask")
	}
	known := make(map[string]bool, len(groupOrder))
	for _, g := range groupOrder {
		known[g] = true
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		if !known[n] {
			return nil, fmt.Errorf("models: unknown group %q", n)
		}
		if set[n] {
			return nil, fmt.Errorf("models: duplicate group %q in mask", n)
		}
		set[n] = true
	}
	return set, nil
}

// FinetunePart returns the current partial-training setting.
func (m *Model) FinetunePart() FinetunePart { return m.part }

// Params returns all parameters, bottom to top.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, g := range m.groups {
		ps = append(ps, g.Params()...)
	}
	return ps
}

// TrainableParams returns parameters of non-frozen layers only.
func (m *Model) TrainableParams() []*nn.Param {
	var ps []*nn.Param
	for _, g := range m.groups {
		ps = append(ps, g.TrainableParams()...)
	}
	return ps
}

// ZeroGrads zeroes every parameter gradient.
func (m *Model) ZeroGrads() {
	for _, g := range m.groups {
		g.ZeroGrads()
	}
}

// StateTensors returns the full model state — every parameter followed by
// every buffer, in deterministic bottom-to-top order. The returned tensors
// are the live ones; callers clone if they need snapshots.
func (m *Model) StateTensors() []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, g := range m.groups {
		for _, p := range g.Params() {
			ts = append(ts, p.W)
		}
	}
	for _, g := range m.groups {
		ts = append(ts, g.Buffers()...)
	}
	return ts
}

// GroupStateTensors returns the live state tensors (params then buffers) of
// the named groups only, in canonical order. This is what FedFT ships over
// the wire: only the trainable upper part.
func (m *Model) GroupStateTensors(names []string) ([]*tensor.Tensor, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var ts []*tensor.Tensor
	for i, name := range groupOrder {
		if !want[name] {
			continue
		}
		for _, p := range m.groups[i].Params() {
			ts = append(ts, p.W)
		}
	}
	for i, name := range groupOrder {
		if !want[name] {
			continue
		}
		ts = append(ts, m.groups[i].Buffers()...)
	}
	if len(names) > 0 && len(ts) == 0 {
		return nil, fmt.Errorf("models: no state for groups %v", names)
	}
	return ts, nil
}

// TrainableGroupNames returns the currently trainable group names in
// canonical order — the finetune part's groups, or the last mask set by
// SetTrainableGroups.
func (m *Model) TrainableGroupNames() []string {
	return append([]string(nil), m.mask...)
}

// GroupStateLayout returns, parallel to GroupStateTensors(names), the group
// each state tensor belongs to. Engines use it to align a client's masked
// state with the server's full layout during per-layer aggregation.
func (m *Model) GroupStateLayout(names []string) ([]string, error) {
	want, err := groupSet(names)
	if err != nil {
		return nil, err
	}
	var layout []string
	for i, name := range groupOrder {
		if !want[name] {
			continue
		}
		for range m.groups[i].Params() {
			layout = append(layout, name)
		}
	}
	for i, name := range groupOrder {
		if !want[name] {
			continue
		}
		for range m.groups[i].Buffers() {
			layout = append(layout, name)
		}
	}
	if len(layout) == 0 {
		return nil, fmt.Errorf("models: no state for groups %v", names)
	}
	return layout, nil
}

// CopyStateFrom copies all state tensors from src into m. The models must
// share a spec.
func (m *Model) CopyStateFrom(src *Model) error {
	dst := m.StateTensors()
	srcTs := src.StateTensors()
	if len(dst) != len(srcTs) {
		return fmt.Errorf("models: state mismatch: %d vs %d tensors", len(dst), len(srcTs))
	}
	for i := range dst {
		if err := dst[i].CopyFrom(srcTs[i]); err != nil {
			return fmt.Errorf("models: state tensor %d: %w", i, err)
		}
	}
	return nil
}

// CopyGroupStateFrom copies the named groups' state (params and buffers)
// from src into m. The groups must be architecturally identical in both
// models; other groups (typically the classifier head, when transferring a
// pretrained feature extractor across label spaces) are untouched.
func (m *Model) CopyGroupStateFrom(src *Model, groups []string) error {
	dst, err := m.GroupStateTensors(groups)
	if err != nil {
		return err
	}
	srcTs, err := src.GroupStateTensors(groups)
	if err != nil {
		return err
	}
	if len(dst) != len(srcTs) {
		return fmt.Errorf("models: group state mismatch: %d vs %d tensors", len(dst), len(srcTs))
	}
	for i := range dst {
		if err := dst[i].CopyFrom(srcTs[i]); err != nil {
			return fmt.Errorf("models: group state tensor %d: %w", i, err)
		}
	}
	return nil
}

// Clone builds a fresh model from the same spec and copies all state.
// The clone is independent: training it does not affect m. The clone
// preserves the finetune part and the trainable-group mask.
func (m *Model) Clone() (*Model, error) {
	c, err := Build(m.spec)
	if err != nil {
		return nil, err
	}
	if err := c.CopyStateFrom(m); err != nil {
		return nil, err
	}
	if err := c.SetFinetunePart(m.part); err != nil {
		return nil, err
	}
	if err := c.SetTrainableGroups(m.mask); err != nil {
		return nil, err
	}
	return c, nil
}

// OutputShape returns the per-sample output shape.
func (m *Model) OutputShape() ([]int, error) {
	in := m.spec.InputShape
	var err error
	for i, g := range m.groups {
		in, err = g.OutputShape(in)
		if err != nil {
			return nil, fmt.Errorf("models: group %q: %w", groupOrder[i], err)
		}
	}
	return in, nil
}

// ParamCount returns the total number of parameter elements.
func (m *Model) ParamCount() int {
	var n int
	for _, p := range m.Params() {
		n += p.W.Len()
	}
	return n
}

// TrainableParamCount returns the number of trainable parameter elements.
func (m *Model) TrainableParamCount() int {
	var n int
	for _, p := range m.TrainableParams() {
		n += p.W.Len()
	}
	return n
}

// GroupFLOPs returns the forward FLOPs per sample of each group, in group
// order, plus the total.
func (m *Model) GroupFLOPs() (perGroup []int64, total int64) {
	in := m.spec.InputShape
	perGroup = make([]int64, len(m.groups))
	for i, g := range m.groups {
		f := g.FLOPsPerSample(in)
		perGroup[i] = f
		total += f
		next, err := g.OutputShape(in)
		if err != nil {
			panic(err) // validated at Build time
		}
		in = next
	}
	return perGroup, total
}

// ForwardFLOPsPerSample returns the forward cost of the full network.
func (m *Model) ForwardFLOPsPerSample() int64 {
	_, total := m.GroupFLOPs()
	return total
}

// TrainFLOPsPerSample models one training step on one sample: a full forward
// pass plus a backward pass over the groups at or above the lowest trainable
// group (backward ≈ 2× forward for the traversed region). This is the
// quantity the paper's partial fine-tuning reduces.
func (m *Model) TrainFLOPsPerSample() int64 {
	perGroup, total := m.GroupFLOPs()
	lowest := len(m.groups)
	for i, g := range m.groups {
		if !g.Frozen() {
			lowest = i
			break
		}
	}
	return total + backFLOPs(perGroup, lowest)
}

// TrainFLOPsPerSampleFor models a training step with the given group mask
// trainable instead of the model's current frozen state: full forward plus
// backward from the top down to the lowest masked group (the backward pass
// traverses frozen groups sitting above it). Projecting per-tier costs this
// way avoids mutating the shared global model.
func (m *Model) TrainFLOPsPerSampleFor(names []string) (int64, error) {
	want, err := groupSet(names)
	if err != nil {
		return 0, err
	}
	perGroup, total := m.GroupFLOPs()
	lowest := len(m.groups)
	for i, name := range groupOrder {
		if want[name] {
			lowest = i
			break
		}
	}
	return total + backFLOPs(perGroup, lowest), nil
}

// backFLOPs models the backward cost over groups lowest..top as 2× their
// forward cost.
func backFLOPs(perGroup []int64, lowest int) int64 {
	var back int64
	for i := lowest; i < len(perGroup); i++ {
		back += 2 * perGroup[i]
	}
	return back
}
