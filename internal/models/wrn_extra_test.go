package models

import (
	"math/rand"
	"testing"

	"fedfteds/internal/tensor"
)

func TestWRNWithDropoutBuildsAndRuns(t *testing.T) {
	spec := wrnSpec()
	spec.DropoutRate = 0.3
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 3, 8, 8)
	x.FillNormal(rng, 0, 1)
	// Train mode applies dropout; eval mode must be deterministic.
	m.Forward(x, true)
	y1 := m.Forward(x, false)
	y2 := m.Forward(x, false)
	if !y1.AllClose(y2, 1e-6) {
		t.Fatal("eval-mode WRN with dropout not deterministic")
	}
}

func TestWRNDeeperDepth(t *testing.T) {
	// depth 22 = 6*3+4: three blocks per group.
	m, err := Build(Spec{
		Arch:        ArchWRN,
		InputShape:  []int{1, 8, 8},
		NumClasses:  3,
		Depth:       22,
		WidthFactor: 2,
		InitSeed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 {
		t.Fatalf("output %v", out)
	}
	// Width factor 2 → final features 128.
	head, err := m.Group(GroupClassifier)
	if err != nil {
		t.Fatal(err)
	}
	if got := head.Params()[0].W.Dim(1); got != 128 {
		t.Fatalf("classifier input width %d, want 128", got)
	}
}

func TestWRNCloneAgreesOnForward(t *testing.T) {
	m, err := Build(wrnSpec())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(2, 3, 8, 8)
	x.FillNormal(rng, 0, 1)
	// Move BN running stats off their defaults before cloning.
	m.Forward(x, true)
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	y1 := m.Forward(x, false)
	y2 := c.Forward(x, false)
	if !y1.AllClose(y2, 1e-6) {
		t.Fatal("WRN clone eval output differs")
	}
}

func TestGroupFLOPsSumToTotal(t *testing.T) {
	for _, spec := range []Spec{mlpSpec(), wrnSpec()} {
		m, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		perGroup, total := m.GroupFLOPs()
		var sum int64
		for _, f := range perGroup {
			sum += f
		}
		if sum != total {
			t.Fatalf("%s: group FLOPs %d != total %d", spec.Arch, sum, total)
		}
		if total <= 0 {
			t.Fatalf("%s: non-positive FLOPs", spec.Arch)
		}
	}
}

func TestCopyGroupStateAcrossLabelSpaces(t *testing.T) {
	// The pretraining transfer: same architecture, different class counts.
	src := mlpSpec()
	src.NumClasses = 20
	srcM, err := Build(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := mlpSpec() // 5 classes
	dstM, err := Build(dst)
	if err != nil {
		t.Fatal(err)
	}
	extractor := []string{GroupLow, GroupMid, GroupUp}
	if err := dstM.CopyGroupStateFrom(srcM, extractor); err != nil {
		t.Fatal(err)
	}
	srcLow, err := srcM.GroupStateTensors([]string{GroupLow})
	if err != nil {
		t.Fatal(err)
	}
	dstLow, err := dstM.GroupStateTensors([]string{GroupLow})
	if err != nil {
		t.Fatal(err)
	}
	for i := range srcLow {
		if !srcLow[i].Equal(dstLow[i]) {
			t.Fatal("extractor state not transferred")
		}
	}
	// Classifier must not transfer: widths differ.
	if err := dstM.CopyGroupStateFrom(srcM, []string{GroupClassifier}); err == nil {
		t.Fatal("expected error transferring mismatched classifier")
	}
}

func TestFinetunePartString(t *testing.T) {
	tests := map[FinetunePart]string{
		FinetuneFull:       "full",
		FinetuneLarge:      "large",
		FinetuneModerate:   "moderate",
		FinetuneClassifier: "classifier",
		FinetunePart(42):   "FinetunePart(42)",
	}
	for part, want := range tests {
		if got := part.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestSetFinetunePartRejectsUnknown(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFinetunePart(FinetunePart(0)); err == nil {
		t.Fatal("expected error for unknown part")
	}
}
