package models

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fedfteds/internal/nn"
	"fedfteds/internal/opt"
	"fedfteds/internal/tensor"
)

func mlpSpec() Spec {
	return Spec{
		Arch:       ArchMLP,
		InputShape: []int{16},
		NumClasses: 5,
		Hidden:     24,
		InitSeed:   1,
	}
}

func wrnSpec() Spec {
	return Spec{
		Arch:        ArchWRN,
		InputShape:  []int{3, 8, 8},
		NumClasses:  4,
		Depth:       16,
		WidthFactor: 1,
		InitSeed:    2,
	}
}

func TestBuildMLPShapes(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("OutputShape = %v, want [5]", out)
	}
	x := tensor.New(3, 16)
	y := m.Forward(x, false)
	if y.Dim(0) != 3 || y.Dim(1) != 5 {
		t.Fatalf("Forward shape %v", y.Shape())
	}
}

func TestBuildWRN16Shapes(t *testing.T) {
	m, err := Build(wrnSpec())
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 4 {
		t.Fatalf("OutputShape = %v, want [4]", out)
	}
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 3, 8, 8)
	x.FillNormal(rng, 0, 1)
	y := m.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 4 {
		t.Fatalf("Forward shape %v", y.Shape())
	}
	if !y.IsFinite() {
		t.Fatal("WRN forward produced non-finite values")
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
	}{
		{name: "unknown arch", spec: Spec{Arch: "cnn", InputShape: []int{4}, NumClasses: 2, Hidden: 4}},
		{name: "one class", spec: Spec{Arch: ArchMLP, InputShape: []int{4}, NumClasses: 1, Hidden: 4}},
		{name: "mlp bad input", spec: Spec{Arch: ArchMLP, InputShape: []int{3, 2, 2}, NumClasses: 2, Hidden: 4}},
		{name: "mlp no hidden", spec: Spec{Arch: ArchMLP, InputShape: []int{4}, NumClasses: 2}},
		{name: "wrn bad depth", spec: Spec{Arch: ArchWRN, InputShape: []int{3, 8, 8}, NumClasses: 2, Depth: 15, WidthFactor: 1}},
		{name: "wrn no width", spec: Spec{Arch: ArchWRN, InputShape: []int{3, 8, 8}, NumClasses: 2, Depth: 16}},
		{name: "wrn vector input", spec: Spec{Arch: ArchWRN, InputShape: []int{8}, NumClasses: 2, Depth: 16, WidthFactor: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Build(tt.spec); !errors.Is(err, ErrSpec) {
				t.Fatalf("expected ErrSpec, got %v", err)
			}
		})
	}
}

func TestWRN16ParamCountPlausible(t *testing.T) {
	// WRN-16-1 on 3×32×32 with 10 classes has ~0.22M parameters (the paper's
	// model). Our conv weights exclude biases (NoBias before BN), so accept a
	// range around the canonical count.
	m, err := Build(Spec{
		Arch:        ArchWRN,
		InputShape:  []int{3, 32, 32},
		NumClasses:  10,
		Depth:       16,
		WidthFactor: 1,
		InitSeed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := m.ParamCount()
	if n < 150_000 || n > 300_000 {
		t.Fatalf("WRN-16-1 param count %d outside plausible range", n)
	}
}

func TestFinetunePartFreezing(t *testing.T) {
	tests := []struct {
		part     FinetunePart
		trainGrp []string
	}{
		{part: FinetuneFull, trainGrp: []string{"low", "mid", "up", "classifier"}},
		{part: FinetuneLarge, trainGrp: []string{"mid", "up", "classifier"}},
		{part: FinetuneModerate, trainGrp: []string{"up", "classifier"}},
		{part: FinetuneClassifier, trainGrp: []string{"classifier"}},
	}
	for _, tt := range tests {
		t.Run(tt.part.String(), func(t *testing.T) {
			m, err := Build(mlpSpec())
			if err != nil {
				t.Fatal(err)
			}
			if err := m.SetFinetunePart(tt.part); err != nil {
				t.Fatal(err)
			}
			want := map[string]bool{}
			for _, g := range tt.trainGrp {
				want[g] = true
			}
			for _, name := range GroupNames() {
				g, err := m.Group(name)
				if err != nil {
					t.Fatal(err)
				}
				if g.Frozen() == want[name] {
					t.Fatalf("group %q frozen=%v, want trainable=%v", name, g.Frozen(), want[name])
				}
			}
		})
	}
}

func TestFrozenGroupsDoNotTrain(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFinetunePart(FinetuneModerate); err != nil {
		t.Fatal(err)
	}
	low, err := m.Group(GroupLow)
	if err != nil {
		t.Fatal(err)
	}
	before := low.Params()[0].W.Clone()

	sgd, err := opt.NewSGD(opt.SGDConfig{LR: 0.1, Momentum: 0.5}, m.TrainableParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(8, 16)
	x.FillNormal(rng, 0, 1)
	labels := []int{0, 1, 2, 3, 4, 0, 1, 2}
	loss := nn.SoftmaxCrossEntropy{}
	for i := 0; i < 5; i++ {
		logits := m.Forward(x, true)
		_, dl, err := loss.Loss(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		m.Backward(dl)
		sgd.Step()
	}
	if !low.Params()[0].W.Equal(before) {
		t.Fatal("frozen low group weights changed during training")
	}
	// Training should still reduce loss through the upper part.
	logits := m.Forward(x, false)
	v, err := loss.Value(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if v >= math.Log(5) {
		t.Fatalf("loss %v did not improve from uniform %v", v, math.Log(5))
	}
}

func TestTrainableParamCountsShrink(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for _, part := range []FinetunePart{FinetuneFull, FinetuneLarge, FinetuneModerate, FinetuneClassifier} {
		if err := m.SetFinetunePart(part); err != nil {
			t.Fatal(err)
		}
		counts = append(counts, m.TrainableParamCount())
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] >= counts[i-1] {
			t.Fatalf("trainable params not strictly decreasing: %v", counts)
		}
	}
	if counts[0] != m.ParamCount() {
		t.Fatalf("full part trains %d of %d params", counts[0], m.ParamCount())
	}
}

func TestCloneIndependence(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Same outputs initially.
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(2, 16)
	x.FillNormal(rng, 0, 1)
	y1 := m.Forward(x, false)
	y2 := c.Forward(x, false)
	if !y1.AllClose(y2, 1e-6) {
		t.Fatal("clone differs from original before training")
	}
	// Mutating the clone leaves the original untouched.
	c.Params()[0].W.AddScalar(1)
	y3 := m.Forward(x, false)
	if !y1.AllClose(y3, 1e-6) {
		t.Fatal("mutating clone changed original")
	}
}

func TestClonePreservesFinetunePart(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFinetunePart(FinetuneClassifier); err != nil {
		t.Fatal(err)
	}
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c.FinetunePart() != FinetuneClassifier {
		t.Fatalf("clone part = %v", c.FinetunePart())
	}
	if got := len(c.TrainableParams()); got != 2 {
		t.Fatalf("clone TrainableParams = %d, want 2", got)
	}
}

func TestCopyStateIncludesBatchNormBuffers(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Run training forwards to move running stats away from defaults.
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(16, 16)
	x.FillNormal(rng, 3, 2)
	m.Forward(x, true)

	c, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CopyStateFrom(m); err != nil {
		t.Fatal(err)
	}
	// Eval outputs must match exactly (requires running stats copied).
	y1 := m.Forward(x, false)
	y2 := c.Forward(x, false)
	if !y1.AllClose(y2, 1e-6) {
		t.Fatal("eval outputs differ: batch-norm buffers not copied")
	}
}

func TestGroupStateTensorsUpperOnly(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFinetunePart(FinetuneModerate); err != nil {
		t.Fatal(err)
	}
	upper, err := m.GroupStateTensors(m.TrainableGroupNames())
	if err != nil {
		t.Fatal(err)
	}
	all := m.StateTensors()
	if len(upper) == 0 || len(upper) >= len(all) {
		t.Fatalf("upper state %d tensors of %d total", len(upper), len(all))
	}
	var upperElems, allElems int
	for _, ts := range upper {
		upperElems += ts.Len()
	}
	for _, ts := range all {
		allElems += ts.Len()
	}
	if upperElems >= allElems {
		t.Fatal("upper state not smaller than full state")
	}
}

func TestGroupStateTensorsUnknownGroup(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.GroupStateTensors([]string{"nope"}); err == nil {
		t.Fatal("expected error for unknown group")
	}
}

func TestForwardCollectGroupsShapes(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 16)
	outs := m.ForwardCollectGroups(x, false)
	if len(outs) != 4 {
		t.Fatalf("collected %d groups", len(outs))
	}
	for name, o := range outs {
		if o.Rank() != 2 || o.Dim(0) != 4 {
			t.Fatalf("group %q activation shape %v", name, o.Shape())
		}
	}
	if outs[GroupClassifier].Dim(1) != 5 {
		t.Fatalf("classifier activation width %d", outs[GroupClassifier].Dim(1))
	}
}

func TestTrainFLOPsDecreaseWithFreezing(t *testing.T) {
	m, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = 1 << 62
	for _, part := range []FinetunePart{FinetuneFull, FinetuneLarge, FinetuneModerate, FinetuneClassifier} {
		if err := m.SetFinetunePart(part); err != nil {
			t.Fatal(err)
		}
		f := m.TrainFLOPsPerSample()
		if f >= prev {
			t.Fatalf("part %v: train FLOPs %d not below previous %d", part, f, prev)
		}
		if f <= m.ForwardFLOPsPerSample() {
			t.Fatalf("part %v: train FLOPs %d not above forward-only %d", part, f, m.ForwardFLOPsPerSample())
		}
		prev = f
	}
}

func TestWRNFinetuneModerateTrains(t *testing.T) {
	// Smoke test: the WRN trains end to end with frozen low/mid groups.
	m, err := Build(wrnSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFinetunePart(FinetuneModerate); err != nil {
		t.Fatal(err)
	}
	sgd, err := opt.NewSGD(opt.SGDConfig{LR: 0.05, Momentum: 0.5}, m.TrainableParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(4, 3, 8, 8)
	x.FillNormal(rng, 0, 1)
	labels := []int{0, 1, 2, 3}
	loss := nn.SoftmaxCrossEntropy{}
	first := -1.0
	var last float64
	for i := 0; i < 8; i++ {
		logits := m.Forward(x, true)
		v, dl, err := loss.Loss(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = v
		}
		last = v
		m.Backward(dl)
		sgd.Step()
	}
	if last >= first {
		t.Fatalf("WRN loss did not decrease: %v -> %v", first, last)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(mlpSpec())
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.StateTensors(), b.StateTensors()
	for i := range as {
		if !as[i].Equal(bs[i]) {
			t.Fatalf("state tensor %d differs between identical builds", i)
		}
	}
}
