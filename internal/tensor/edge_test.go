package tensor

import (
	"errors"
	"math/rand"
	"testing"
)

func TestSlicePanicsOutOfRange(t *testing.T) {
	x := New(4, 2)
	for _, tt := range []struct {
		name   string
		lo, hi int
	}{
		{name: "negative lo", lo: -1, hi: 2},
		{name: "hi beyond", lo: 0, hi: 5},
		{name: "inverted", lo: 3, hi: 1},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			x.Slice(tt.lo, tt.hi)
		})
	}
}

func TestRowPanicsOnNonMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2, 2).Row(0)
}

func TestAtPanicsOnBadIndex(t *testing.T) {
	x := New(2, 3)
	for _, idx := range [][]int{{0}, {0, 3}, {-1, 0}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for index %v", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestCopyFromShapeMismatch(t *testing.T) {
	a := New(2, 3)
	b := New(7)
	if err := a.CopyFrom(b); !errors.Is(err, ErrShape) {
		t.Fatalf("expected ErrShape, got %v", err)
	}
	// Equal volume with different shape copies flat data.
	c := New(6)
	c.Fill(3)
	if err := a.CopyFrom(c); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 2) != 3 {
		t.Fatal("flat copy failed")
	}
}

func TestMatMulTransShapeErrors(t *testing.T) {
	a := New(3, 2)
	b := New(4, 5)
	dst := New(2, 5)
	if err := MatMulTransA(dst, a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("TransA: expected ErrShape, got %v", err)
	}
	if err := MatMulTransB(dst, a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("TransB: expected ErrShape, got %v", err)
	}
	if _, err := New(3).Transpose(); !errors.Is(err, ErrShape) {
		t.Fatalf("Transpose: expected ErrShape, got %v", err)
	}
}

func TestMatMulZeroSkipConsistency(t *testing.T) {
	// A sparse matrix must multiply exactly like a dense one regardless of
	// kernel shortcuts.
	rng := rand.New(rand.NewSource(9))
	a := New(10, 10)
	b := New(10, 10)
	b.FillNormal(rng, 0, 1)
	// Half the rows of a are zero.
	for i := 0; i < 10; i += 2 {
		for j := 0; j < 10; j++ {
			a.Set(float32(rng.NormFloat64()), i, j)
		}
	}
	got, err := MatMulNew(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reference computation in float64.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			var want float64
			for k := 0; k < 10; k++ {
				want += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			if diff := float64(got.At(i, j)) - want; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("(%d,%d): got %v want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestFillKaimingStdScales(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	big := New(10000)
	big.FillKaiming(rng, 50)
	var sq float64
	for _, v := range big.Data() {
		sq += float64(v) * float64(v)
	}
	std := sq / float64(big.Len())
	want := 2.0 / 50.0
	if std < want*0.9 || std > want*1.1 {
		t.Fatalf("kaiming variance %v, want ~%v", std, want)
	}
	// Degenerate fan-in falls back to 1.
	small := New(10)
	small.FillKaiming(rng, 0)
	if !small.IsFinite() {
		t.Fatal("kaiming with fanIn 0 produced non-finite values")
	}
}

func TestEncodedSizeMatchesWrite(t *testing.T) {
	for _, shape := range [][]int{{}, {1}, {3, 4}, {2, 2, 2, 2}} {
		x := New(shape...)
		want := 1 + 4*len(shape) + 4*x.Len()
		if got := x.EncodedSize(); got != want {
			t.Fatalf("shape %v: EncodedSize %d, want %d", shape, got, want)
		}
	}
}
