//go:build amd64 && !noasm

#include "textflag.h"

// func gemmRowSSE(dst, a, b *float32, k, n int)
//
// dst[j] += sum over p in [0,k) of a[p] * b[p*n + j], for j in [0,n).
//
// The output row is processed in chunks of 16, 4 and 1 lanes. For each chunk
// the accumulators live in XMM registers across the whole reduction loop, so
// the only streaming traffic is a[p] (broadcast) and the b rows. Lanes are
// independent output elements: each accumulates its K terms in ascending-p
// order with one MULPS/ADDPS rounding pair per term, bit-identical to the
// scalar kernel. SSE only (amd64 baseline); unaligned loads throughout.
//
// Register use: DI=dst, SI=a, DX=b, CX=k, R8=n, R9=row stride in bytes,
// R10=jj (current lane index), AX=lanes remaining, BX=dst chunk pointer,
// R11=b chunk pointer, R12=p countdown, R13=a cursor.
TEXT ·gemmRowSSE(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ k+24(FP), CX
	MOVQ n+32(FP), R8

	TESTQ CX, CX
	JZ   done
	MOVQ R8, R9
	SHLQ $2, R9       // stride = n * sizeof(float32)
	XORQ R10, R10     // jj = 0

chunk16:
	MOVQ R8, AX
	SUBQ R10, AX      // lanes remaining
	CMPQ AX, $16
	JLT  chunk4
	LEAQ (DI)(R10*4), BX
	MOVUPS 0(BX), X1
	MOVUPS 16(BX), X2
	MOVUPS 32(BX), X3
	MOVUPS 48(BX), X4
	LEAQ (DX)(R10*4), R11
	MOVQ CX, R12
	MOVQ SI, R13

ploop16:
	MOVSS  (R13), X0
	SHUFPS $0, X0, X0
	MOVUPS 0(R11), X5
	MULPS  X0, X5
	ADDPS  X5, X1
	MOVUPS 16(R11), X6
	MULPS  X0, X6
	ADDPS  X6, X2
	MOVUPS 32(R11), X7
	MULPS  X0, X7
	ADDPS  X7, X3
	MOVUPS 48(R11), X8
	MULPS  X0, X8
	ADDPS  X8, X4
	ADDQ   $4, R13
	ADDQ   R9, R11
	DECQ   R12
	JNZ    ploop16

	MOVUPS X1, 0(BX)
	MOVUPS X2, 16(BX)
	MOVUPS X3, 32(BX)
	MOVUPS X4, 48(BX)
	ADDQ   $16, R10
	JMP    chunk16

chunk4:
	CMPQ AX, $4
	JLT  scalar
	LEAQ (DI)(R10*4), BX
	MOVUPS (BX), X1
	LEAQ (DX)(R10*4), R11
	MOVQ CX, R12
	MOVQ SI, R13

ploop4:
	MOVSS  (R13), X0
	SHUFPS $0, X0, X0
	MOVUPS (R11), X5
	MULPS  X0, X5
	ADDPS  X5, X1
	ADDQ   $4, R13
	ADDQ   R9, R11
	DECQ   R12
	JNZ    ploop4

	MOVUPS X1, (BX)
	ADDQ   $4, R10
	SUBQ   $4, AX
	JMP    chunk4

scalar:
	TESTQ AX, AX
	JZ    done
	LEAQ  (DI)(R10*4), BX
	MOVSS (BX), X1
	LEAQ  (DX)(R10*4), R11
	MOVQ  CX, R12
	MOVQ  SI, R13

ploop1:
	MOVSS (R13), X0
	MULSS (R11), X0
	ADDSS X0, X1
	ADDQ  $4, R13
	ADDQ  R9, R11
	DECQ  R12
	JNZ   ploop1

	MOVSS X1, (BX)
	ADDQ  $1, R10
	DECQ  AX
	JMP   scalar

done:
	RET
