//go:build amd64 && !noasm

#include "textflag.h"

// func gemmRow4AVX2(dst *float32, dstStride int, a *float32, aStride int, b *float32, k, n int)
//
// dst[r*dstStride + j] += sum over p in [0,k) of a[r*aStride + p] * b[p*n + j]
// for r in [0,4), j in [0,n). Strides are in elements.
//
// Four output rows are accumulated together so that even for narrow n the
// multiply/add ports see 4x the independent work — a single row's
// accumulator chain is latency-bound below ~32 lanes. Lanes are independent
// output elements and every element accumulates its K terms in ascending-p
// order with one VMULPS and one VADDPS rounding per term: bit-identical to
// the scalar kernel. Deliberately no VFMADD — fusing would single-round the
// multiply-add and break cross-tier bit-identity (see kernel.go).
//
// The output row is processed in chunks of 16, 8, 4 and 1 lanes. Register
// use: DI=dst, SI=a, DX=b, CX=k, R8=n, R9=b row stride bytes, R13=aStride
// bytes, R14=dstStride bytes, R10=jj (current lane index), AX=lanes
// remaining, BX=dst cursor at chunk edges / a row-3 cursor inside p-loops,
// R11=b cursor, R12=p countdown, R15=a row-0 cursor.
TEXT ·gemmRow4AVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ dstStride+8(FP), R14
	MOVQ a+16(FP), SI
	MOVQ aStride+24(FP), R13
	MOVQ b+32(FP), DX
	MOVQ k+40(FP), CX
	MOVQ n+48(FP), R8

	TESTQ CX, CX
	JZ    done
	SHLQ  $2, R14     // dst stride in bytes
	SHLQ  $2, R13     // a stride in bytes
	MOVQ  R8, R9
	SHLQ  $2, R9      // b row stride in bytes
	XORQ  R10, R10    // jj = 0

chunk16:
	MOVQ R8, AX
	SUBQ R10, AX      // lanes remaining
	CMPQ AX, $16
	JLT  chunk8
	LEAQ (DI)(R10*4), BX
	VMOVUPS (BX), Y0
	VMOVUPS 32(BX), Y1
	ADDQ R14, BX
	VMOVUPS (BX), Y2
	VMOVUPS 32(BX), Y3
	ADDQ R14, BX
	VMOVUPS (BX), Y4
	VMOVUPS 32(BX), Y5
	ADDQ R14, BX
	VMOVUPS (BX), Y6
	VMOVUPS 32(BX), Y7
	LEAQ (DX)(R10*4), R11
	MOVQ CX, R12
	MOVQ SI, R15
	LEAQ (SI)(R13*2), BX
	ADDQ R13, BX      // a row-3 cursor

ploop16:
	VMOVUPS (R11), Y14
	VMOVUPS 32(R11), Y15
	VBROADCASTSS (R15), Y12
	VMULPS Y14, Y12, Y13
	VADDPS Y13, Y0, Y0
	VMULPS Y15, Y12, Y13
	VADDPS Y13, Y1, Y1
	VBROADCASTSS (R15)(R13*1), Y12
	VMULPS Y14, Y12, Y13
	VADDPS Y13, Y2, Y2
	VMULPS Y15, Y12, Y13
	VADDPS Y13, Y3, Y3
	VBROADCASTSS (R15)(R13*2), Y12
	VMULPS Y14, Y12, Y13
	VADDPS Y13, Y4, Y4
	VMULPS Y15, Y12, Y13
	VADDPS Y13, Y5, Y5
	VBROADCASTSS (BX), Y12
	VMULPS Y14, Y12, Y13
	VADDPS Y13, Y6, Y6
	VMULPS Y15, Y12, Y13
	VADDPS Y13, Y7, Y7
	ADDQ $4, R15
	ADDQ $4, BX
	ADDQ R9, R11
	DECQ R12
	JNZ  ploop16

	LEAQ (DI)(R10*4), BX
	VMOVUPS Y0, (BX)
	VMOVUPS Y1, 32(BX)
	ADDQ R14, BX
	VMOVUPS Y2, (BX)
	VMOVUPS Y3, 32(BX)
	ADDQ R14, BX
	VMOVUPS Y4, (BX)
	VMOVUPS Y5, 32(BX)
	ADDQ R14, BX
	VMOVUPS Y6, (BX)
	VMOVUPS Y7, 32(BX)
	ADDQ $16, R10
	JMP  chunk16

chunk8:
	CMPQ AX, $8
	JLT  chunk4
	LEAQ (DI)(R10*4), BX
	VMOVUPS (BX), Y0
	ADDQ R14, BX
	VMOVUPS (BX), Y1
	ADDQ R14, BX
	VMOVUPS (BX), Y2
	ADDQ R14, BX
	VMOVUPS (BX), Y3
	LEAQ (DX)(R10*4), R11
	MOVQ CX, R12
	MOVQ SI, R15
	LEAQ (SI)(R13*2), BX
	ADDQ R13, BX

ploop8:
	VMOVUPS (R11), Y14
	VBROADCASTSS (R15), Y12
	VMULPS Y14, Y12, Y13
	VADDPS Y13, Y0, Y0
	VBROADCASTSS (R15)(R13*1), Y12
	VMULPS Y14, Y12, Y13
	VADDPS Y13, Y1, Y1
	VBROADCASTSS (R15)(R13*2), Y12
	VMULPS Y14, Y12, Y13
	VADDPS Y13, Y2, Y2
	VBROADCASTSS (BX), Y12
	VMULPS Y14, Y12, Y13
	VADDPS Y13, Y3, Y3
	ADDQ $4, R15
	ADDQ $4, BX
	ADDQ R9, R11
	DECQ R12
	JNZ  ploop8

	LEAQ (DI)(R10*4), BX
	VMOVUPS Y0, (BX)
	ADDQ R14, BX
	VMOVUPS Y1, (BX)
	ADDQ R14, BX
	VMOVUPS Y2, (BX)
	ADDQ R14, BX
	VMOVUPS Y3, (BX)
	ADDQ $8, R10
	SUBQ $8, AX
	JMP  chunk8

chunk4:
	CMPQ AX, $4
	JLT  scalar
	LEAQ (DI)(R10*4), BX
	VMOVUPS (BX), X0
	ADDQ R14, BX
	VMOVUPS (BX), X1
	ADDQ R14, BX
	VMOVUPS (BX), X2
	ADDQ R14, BX
	VMOVUPS (BX), X3
	LEAQ (DX)(R10*4), R11
	MOVQ CX, R12
	MOVQ SI, R15
	LEAQ (SI)(R13*2), BX
	ADDQ R13, BX

ploop4:
	VMOVUPS (R11), X14
	VBROADCASTSS (R15), X12
	VMULPS X14, X12, X13
	VADDPS X13, X0, X0
	VBROADCASTSS (R15)(R13*1), X12
	VMULPS X14, X12, X13
	VADDPS X13, X1, X1
	VBROADCASTSS (R15)(R13*2), X12
	VMULPS X14, X12, X13
	VADDPS X13, X2, X2
	VBROADCASTSS (BX), X12
	VMULPS X14, X12, X13
	VADDPS X13, X3, X3
	ADDQ $4, R15
	ADDQ $4, BX
	ADDQ R9, R11
	DECQ R12
	JNZ  ploop4

	LEAQ (DI)(R10*4), BX
	VMOVUPS X0, (BX)
	ADDQ R14, BX
	VMOVUPS X1, (BX)
	ADDQ R14, BX
	VMOVUPS X2, (BX)
	ADDQ R14, BX
	VMOVUPS X3, (BX)
	ADDQ $4, R10
	SUBQ $4, AX
	JMP  chunk4

scalar:
	TESTQ AX, AX
	JZ    done
	LEAQ  (DI)(R10*4), BX
	VMOVSS (BX), X0
	ADDQ  R14, BX
	VMOVSS (BX), X1
	ADDQ  R14, BX
	VMOVSS (BX), X2
	ADDQ  R14, BX
	VMOVSS (BX), X3
	LEAQ  (DX)(R10*4), R11
	MOVQ  CX, R12
	MOVQ  SI, R15
	LEAQ  (SI)(R13*2), BX
	ADDQ  R13, BX

ploop1:
	VMOVSS (R11), X14
	VMOVSS (R15), X12
	VMULSS X14, X12, X13
	VADDSS X13, X0, X0
	VMOVSS (R15)(R13*1), X12
	VMULSS X14, X12, X13
	VADDSS X13, X1, X1
	VMOVSS (R15)(R13*2), X12
	VMULSS X14, X12, X13
	VADDSS X13, X2, X2
	VMOVSS (BX), X12
	VMULSS X14, X12, X13
	VADDSS X13, X3, X3
	ADDQ  $4, R15
	ADDQ  $4, BX
	ADDQ  R9, R11
	DECQ  R12
	JNZ   ploop1

	LEAQ  (DI)(R10*4), BX
	VMOVSS X0, (BX)
	ADDQ  R14, BX
	VMOVSS X1, (BX)
	ADDQ  R14, BX
	VMOVSS X2, (BX)
	ADDQ  R14, BX
	VMOVSS X3, (BX)
	ADDQ  $1, R10
	DECQ  AX
	JMP   scalar

done:
	VZEROUPPER
	RET
