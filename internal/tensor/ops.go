package tensor

import (
	"fmt"
	"math"
)

// Add computes t += o element-wise.
func (t *Tensor) Add(o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: add %v to %v", ErrShape, o.shape, t.shape)
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return nil
}

// Sub computes t -= o element-wise.
func (t *Tensor) Sub(o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: sub %v from %v", ErrShape, o.shape, t.shape)
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
	return nil
}

// Mul computes t *= o element-wise (Hadamard product).
func (t *Tensor) Mul(o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: mul %v with %v", ErrShape, o.shape, t.shape)
	}
	for i, v := range o.data {
		t.data[i] *= v
	}
	return nil
}

// Scale computes t *= a.
func (t *Tensor) Scale(a float32) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// ScaleFrom sets t = x*a element-wise, overwriting t. The multiplication
// order matches Scale applied to a copy of x, so the result is bit-identical
// to Clone-then-Scale without the allocation.
func (t *Tensor) ScaleFrom(a float32, x *Tensor) error {
	if len(t.data) != len(x.data) {
		return fmt.Errorf("%w: scale %v into %v", ErrShape, x.shape, t.shape)
	}
	for i, v := range x.data {
		t.data[i] = v * a
	}
	return nil
}

// AddScalar computes t += a element-wise.
func (t *Tensor) AddScalar(a float32) {
	for i := range t.data {
		t.data[i] += a
	}
}

// Axpy computes t += a*x element-wise.
func (t *Tensor) Axpy(a float32, x *Tensor) error {
	if len(t.data) != len(x.data) {
		return fmt.Errorf("%w: axpy %v into %v", ErrShape, x.shape, t.shape)
	}
	for i, v := range x.data {
		t.data[i] += a * v
	}
	return nil
}

// Lerp computes t = (1-a)*t + a*x element-wise (linear interpolation).
func (t *Tensor) Lerp(a float32, x *Tensor) error {
	if len(t.data) != len(x.data) {
		return fmt.Errorf("%w: lerp %v into %v", ErrShape, x.shape, t.shape)
	}
	for i, v := range x.data {
		t.data[i] = (1-a)*t.data[i] + a*v
	}
	return nil
}

// Dot returns the inner product of t and o viewed as flat vectors,
// accumulated in float64 for stability.
func (t *Tensor) Dot(o *Tensor) (float64, error) {
	if len(t.data) != len(o.data) {
		return 0, fmt.Errorf("%w: dot %v with %v", ErrShape, o.shape, t.shape)
	}
	var s float64
	for i, v := range o.data {
		s += float64(t.data[i]) * float64(v)
	}
	return s, nil
}

// Sum returns the sum of all elements, accumulated in float64.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxIndex returns the index and value of the maximum element of a flat
// tensor. Ties resolve to the lowest index. It panics on an empty tensor.
func (t *Tensor) MaxIndex() (int, float32) {
	if len(t.data) == 0 {
		panic("tensor: MaxIndex on empty tensor")
	}
	best, bv := 0, t.data[0]
	for i, v := range t.data[1:] {
		if v > bv {
			best, bv = i+1, v
		}
	}
	return best, bv
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Clamp limits every element to [lo, hi].
func (t *Tensor) Clamp(lo, hi float32) {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}

// AddRowVector adds vector v (length C) to every row of a (N, C) tensor.
func (t *Tensor) AddRowVector(v *Tensor) error {
	if len(t.shape) != 2 {
		return fmt.Errorf("%w: AddRowVector on rank-%d tensor", ErrShape, len(t.shape))
	}
	n, c := t.shape[0], t.shape[1]
	if len(v.data) != c {
		return fmt.Errorf("%w: row vector %v for matrix %v", ErrShape, v.shape, t.shape)
	}
	for i := 0; i < n; i++ {
		row := t.data[i*c : (i+1)*c]
		for j := range row {
			row[j] += v.data[j]
		}
	}
	return nil
}

// SumRows writes the column-wise sum of a (N, C) tensor into dst (length C).
func (t *Tensor) SumRows(dst *Tensor) error {
	if len(t.shape) != 2 {
		return fmt.Errorf("%w: SumRows on rank-%d tensor", ErrShape, len(t.shape))
	}
	n, c := t.shape[0], t.shape[1]
	if len(dst.data) != c {
		return fmt.Errorf("%w: dst %v for matrix %v", ErrShape, dst.shape, t.shape)
	}
	dst.Zero()
	for i := 0; i < n; i++ {
		row := t.data[i*c : (i+1)*c]
		for j := range row {
			dst.data[j] += row[j]
		}
	}
	return nil
}

// Equal reports whether t and o have the same shape and identical elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and o have the same shape and element-wise
// absolute differences no greater than tol.
func (t *Tensor) AllClose(o *Tensor, tol float32) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.data {
		d := v - o.data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}
