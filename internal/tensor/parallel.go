package tensor

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// The kernel worker pool: long-lived goroutines that execute row-range
// slices of the matmul kernels (and, via ParallelFor, other row-partitioned
// hot loops such as conv's im2col). Three properties matter for the
// training hot path:
//
//   - Steady-state dispatch is allocation-free: tasks are plain values on a
//     buffered channel and completion WaitGroups come from a sync.Pool.
//   - The pool never deadlocks and callers never idle: a caller runs its
//     first chunk inline, enqueues the rest (running them inline itself when
//     the queue is full), then helps drain the queue — executing anyone's
//     queued tasks — until its own WaitGroup clears. Concurrent client
//     replicas therefore share cores instead of convoying behind one
//     caller's tasks on the global queue.
//   - Parallelism follows runtime.GOMAXPROCS(0) at every dispatch. Workers
//     are started lazily up to the current target (they never exit; idle
//     workers just block on the queue), so raising GOMAXPROCS mid-process —
//     as the multicore benchmarks do — recruits more workers instead of
//     being pinned to the value seen at first use. FEDFTEDS_KERNEL_THREADS
//     overrides the target explicitly; it is read once, at the first
//     parallel dispatch, and latched for the life of the process.
//
// Work is split into roughly gemmChunksPerWorker chunks per worker (not one)
// so an OS-preempted worker stalls one small chunk, not 1/Wth of the matmul.

// gemmTask is one unit of pool work: a row-range accumulate through the
// active dispatch tier (fn == nil), or an arbitrary row-range callback.
type gemmTask struct {
	// Accumulate form: dst/a are pre-offset to the task's first row.
	dst, a, b []float32
	rows      int
	n         int
	dstStride int
	k         int
	// Callback form (ParallelFor).
	fn     func(lo, hi int)
	lo, hi int

	wg *sync.WaitGroup
}

func (t *gemmTask) run() {
	if t.fn != nil {
		t.fn(t.lo, t.hi)
		return
	}
	gemmAccImpl(t.dst, t.a, t.b, t.rows, t.n, t.dstStride, t.k)
}

const (
	// gemmChunksPerWorker over-decomposes row ranges for load balance.
	gemmChunksPerWorker = 4
	// minChunkDstElems keeps a chunk's output large enough to amortize
	// dispatch (one channel send + one WaitGroup count) over real work.
	minChunkDstElems = 1024
	// taskQueueLen decouples queue capacity from worker count; a full
	// queue degrades to inline execution by the caller, never blocks.
	taskQueueLen = 256
)

var (
	taskCh         = make(chan gemmTask, taskQueueLen)
	workersStarted atomic.Int32

	threadsOnce sync.Once
	threadsEnv  int // 0 = follow GOMAXPROCS
)

var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// scratchPool recycles packing buffers (transposes, B panels).
var scratchPool = sync.Pool{New: func() any { return new([]float32) }}

func getScratch(n int) *[]float32 {
	sp := scratchPool.Get().(*[]float32)
	if cap(*sp) < n {
		*sp = make([]float32, n)
	}
	*sp = (*sp)[:n]
	return sp
}

func putScratch(sp *[]float32) { scratchPool.Put(sp) }

// parseKernelThreads validates a FEDFTEDS_KERNEL_THREADS value: a positive
// integer thread count, or empty to follow GOMAXPROCS.
func parseKernelThreads(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("tensor: FEDFTEDS_KERNEL_THREADS=%q: want a positive integer thread count", s)
	}
	return v, nil
}

// maxWorkers returns the parallelism target for this dispatch: the latched
// FEDFTEDS_KERNEL_THREADS override when set, else GOMAXPROCS right now.
func maxWorkers() int {
	threadsOnce.Do(func() {
		v, err := parseKernelThreads(os.Getenv("FEDFTEDS_KERNEL_THREADS"))
		if err != nil {
			panic(err) // fail fast: a typoed thread count must not silently serialize
		}
		threadsEnv = v
	})
	if threadsEnv > 0 {
		return threadsEnv
	}
	return runtime.GOMAXPROCS(0)
}

// ensureWorkers lazily brings the started-worker count up to want.
func ensureWorkers(want int) {
	for {
		cur := workersStarted.Load()
		if int(cur) >= want {
			return
		}
		if workersStarted.CompareAndSwap(cur, cur+1) {
			go func() {
				for t := range taskCh {
					t.run()
					t.wg.Done()
				}
			}()
		}
	}
}

// dispatch enqueues t for the pool, or runs it inline when the queue is
// full. wg must already count it.
func dispatch(t gemmTask) {
	select {
	case taskCh <- t:
	default:
		t.run()
		t.wg.Done()
	}
}

// helpUntilDone drains queued tasks — any caller's — until wg clears.
func helpUntilDone(wg *sync.WaitGroup) {
	for {
		select {
		case t := <-taskCh:
			t.run()
			t.wg.Done()
		default:
			wg.Wait()
			wgPool.Put(wg)
			return
		}
	}
}

// parallelGemmAcc accumulates rows [0, rows) of dst (+= a @ b) across the
// pool: dst row r starts at dst[r*dstStride] and spans n lanes; b rows are
// contiguous with stride n. Row partitioning never changes the per-element
// accumulation order, so results are bit-identical to the serial kernel
// regardless of worker count or chunk shape.
func parallelGemmAcc(dst, a, b []float32, rows, n, dstStride, k int) {
	w := maxWorkers()
	if w <= 1 || rows < 2 {
		gemmAccImpl(dst, a, b, rows, n, dstStride, k)
		return
	}
	chunk := (rows + w*gemmChunksPerWorker - 1) / (w * gemmChunksPerWorker)
	chunk = (chunk + 3) &^ 3 // whole 4-row blocks keep the wide kernels full
	if chunk*n < minChunkDstElems {
		chunk = (minChunkDstElems/n + 4) &^ 3
	}
	if chunk >= rows {
		gemmAccImpl(dst, a, b, rows, n, dstStride, k)
		return
	}
	ensureWorkers(w - 1) // the caller is the w-th lane
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		dispatch(gemmTask{
			dst: dst[lo*dstStride:], a: a[lo*k:], b: b,
			rows: hi - lo, n: n, dstStride: dstStride, k: k, wg: wg,
		})
	}
	gemmAccImpl(dst, a, b, chunk, n, dstStride, k)
	helpUntilDone(wg)
}

// ParallelFor runs fn over [0, total) split into contiguous [lo, hi)
// chunks of at least minChunk, using the kernel worker pool. fn is called
// concurrently on disjoint ranges and must be safe for that; it must not
// itself dispatch pool work (no nested ParallelFor or large matmuls).
// Callers that need zero steady-state allocations should pass a cached
// closure. Serial execution (one call covering everything) happens when
// the pool has no parallelism or total is small; either way every index is
// covered exactly once.
func ParallelFor(total, minChunk int, fn func(lo, hi int)) {
	if total <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	w := maxWorkers()
	chunk := (total + w*gemmChunksPerWorker - 1) / (w * gemmChunksPerWorker)
	if chunk < minChunk {
		chunk = minChunk
	}
	if w <= 1 || chunk >= total {
		fn(0, total)
		return
	}
	ensureWorkers(w - 1)
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := chunk; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		dispatch(gemmTask{fn: fn, lo: lo, hi: hi, wg: wg})
	}
	fn(0, chunk)
	helpUntilDone(wg)
}
