package tensor

import (
	"runtime"
	"sync"
)

// The kernel worker pool: a fixed set of long-lived goroutines that execute
// row-range slices of the matmul kernels. Spawning goroutines per call (the
// previous design) costs a closure allocation and scheduler churn on every
// multiply; the pool makes parallel dispatch allocation-free in steady state
// and naturally shares cores between concurrently-training clients instead of
// oversubscribing them.
//
// Tasks are plain values sent over a buffered channel, so enqueueing does not
// allocate. Completion is tracked by a sync.WaitGroup drawn from a pool. The
// caller always executes the first chunk inline, so the pool can never
// deadlock even when every worker is busy with other callers' tasks.

// gemmTask is one row-range slice of dst = a @ b (see gemmRows).
type gemmTask struct {
	dd, ad, bd []float32
	lo, hi     int
	n, k       int
	wg         *sync.WaitGroup
}

var (
	poolOnce sync.Once
	taskCh   chan gemmTask
	poolSize int
)

var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// scratchPool recycles the packing buffers used by MatMul/MatMulTransA.
var scratchPool = sync.Pool{New: func() any { return new([]float32) }}

func getScratch(n int) *[]float32 {
	sp := scratchPool.Get().(*[]float32)
	if cap(*sp) < n {
		*sp = make([]float32, n)
	}
	*sp = (*sp)[:n]
	return sp
}

func putScratch(sp *[]float32) { scratchPool.Put(sp) }

func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	taskCh = make(chan gemmTask, 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for t := range taskCh {
				gemmRows(t.dd, t.ad, t.bd, t.lo, t.hi, t.n, t.k)
				t.wg.Done()
			}
		}()
	}
}

// parallelGemm computes dst rows [0, m) of dst = a @ b, splitting rows
// across the worker pool. Row partitioning never changes the per-element
// accumulation order, so results are bit-identical to the serial kernel
// regardless of worker count.
func parallelGemm(dd, ad, bd []float32, m, n, k int) {
	poolOnce.Do(startPool)
	workers := poolSize
	if w := runtime.GOMAXPROCS(0); w < workers {
		workers = w
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		gemmRows(dd, ad, bd, 0, m, n, k)
		return
	}
	chunk := (m + workers - 1) / workers
	wg := wgPool.Get().(*sync.WaitGroup)
	for w := 1; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		taskCh <- gemmTask{dd: dd, ad: ad, bd: bd, lo: lo, hi: hi, n: n, k: k, wg: wg}
	}
	hi0 := chunk
	if hi0 > m {
		hi0 = m
	}
	gemmRows(dd, ad, bd, 0, hi0, n, k)
	wg.Wait()
	wgPool.Put(wg)
}
