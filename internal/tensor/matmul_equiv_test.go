package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Reference kernels: the straightforward triple loops the optimized kernels
// must match bit for bit (same per-element accumulation order).

func refMatMul(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[i*k+p] * b.data[p*n+j]
			}
			dst.data[i*n+j] = s
		}
	}
}

func refMatMulTransA(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[p*m+i] * b.data[p*n+j]
			}
			dst.data[i*n+j] = s
		}
	}
}

func refMatMulTransB(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[i*k+p] * b.data[j*k+p]
			}
			dst.data[i*n+j] = s
		}
	}
}

func randT(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	t.FillNormal(rng, 0, 1)
	return t
}

// forEachTier runs f once per dispatch tier available on this machine and
// build (always at least portable; on amd64 also sse, and avx2/avx512 when
// the CPU has them), restoring the configured tier afterwards. Swapping is
// safe here because no matmul is in flight between operations and pool
// workers synchronize on the task channel.
func forEachTier(t *testing.T, f func(t *testing.T)) {
	orig := activeTier
	defer setTier(orig)
	for _, tier := range detectedFeatures.tiers() {
		setTier(tier)
		t.Run("tier="+tier.String(), f)
	}
	setTier(orig)
}

// dims cover 4-row block boundaries, every lane-tail combination below and
// across each tier's chunk widths (32/16/8/4/1), and degenerate single
// row/column cases, plus sizes past the parallel threshold.
var equivDims = [][3]int{
	{1, 1, 1}, {1, 5, 3}, {4, 4, 4}, {5, 7, 9}, {8, 16, 12},
	{3, 2, 31}, {17, 13, 6}, {32, 64, 1}, {1, 1, 128}, {6, 3, 5},
	{7, 9, 23}, {9, 5, 37}, {64, 64, 10}, {70, 65, 33}, {128, 96, 17},
	{66, 40, 130}, {5, 7, 100},
}

func TestMatMulBitIdenticalToReference(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for _, d := range equivDims {
			m, k, n := d[0], d[1], d[2]
			a, b := randT(rng, m, k), randT(rng, k, n)
			got, want := New(m, n), New(m, n)
			if err := MatMul(got, a, b); err != nil {
				t.Fatal(err)
			}
			refMatMul(want, a, b)
			if !got.Equal(want) {
				t.Fatalf("MatMul %dx%dx%d differs from reference", m, k, n)
			}
		}
	})
}

func TestMatMulTransABitIdenticalToReference(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(12))
		for _, d := range equivDims {
			m, k, n := d[0], d[1], d[2]
			a, b := randT(rng, k, m), randT(rng, k, n)
			got, want := New(m, n), New(m, n)
			if err := MatMulTransA(got, a, b); err != nil {
				t.Fatal(err)
			}
			refMatMulTransA(want, a, b)
			if !got.Equal(want) {
				t.Fatalf("MatMulTransA %dx%dx%d differs from reference", m, k, n)
			}
		}
	})
}

func TestMatMulTransBBitIdenticalToReference(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(13))
		for _, d := range equivDims {
			m, k, n := d[0], d[1], d[2]
			a, b := randT(rng, m, k), randT(rng, n, k)
			got, want := New(m, n), New(m, n)
			if err := MatMulTransB(got, a, b); err != nil {
				t.Fatal(err)
			}
			refMatMulTransB(want, a, b)
			if !got.Equal(want) {
				t.Fatalf("MatMulTransB %dx%dx%d differs from reference", m, k, n)
			}
		}
	})
}

// TestGemmAccMatchesPortableEveryTier drives each tier's row-block
// accumulator directly (including the strided-dst form the blocked panel
// path uses) against the portable kernel, on every row-remainder and
// lane-tail combination.
func TestGemmAccMatchesPortableEveryTier(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, tier := range detectedFeatures.tiers() {
		acc := gemmAccForTier(tier)
		for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 11} {
			for _, k := range []int{1, 2, 3, 7, 32} {
				for n := 1; n <= 70; n += 3 {
					stride := n + 5 // strided dst: panel writes into a wider matrix
					a := randT(rng, rows, k)
					got := randT(rng, rows, stride)
					want := got.Clone()
					b := randT(rng, k, n)
					acc(got.data, a.data, b.data, rows, n, stride, k)
					gemmAccGo(want.data, a.data, b.data, rows, n, stride, k)
					if !got.Equal(want) {
						t.Fatalf("tier %v rows=%d k=%d n=%d differs from portable kernel", tier, rows, k, n)
					}
				}
			}
		}
	}
}

// TestBlockedGemmBitIdentical forces the cache-blocked panel path on small
// shapes (shrinking the thresholds) and checks it against the reference on
// every tier, including a non-multiple-of-panel tail.
func TestBlockedGemmBitIdentical(t *testing.T) {
	origBlock, origPanel := gemmBlockBytes, gemmPanelBytes
	gemmBlockBytes, gemmPanelBytes = 1<<10, 2400 // B > 1KiB blocks; panels near the 64-col floor
	defer func() { gemmBlockBytes, gemmPanelBytes = origBlock, origPanel }()

	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(16))
		for _, d := range [][3]int{{5, 9, 70}, {33, 20, 150}, {64, 64, 192}, {3, 128, 65}} {
			m, k, n := d[0], d[1], d[2]
			if 4*k*n <= gemmBlockBytes || n <= gemmPanelCols(n, k) {
				t.Fatalf("dims %v do not exercise the blocked path", d)
			}
			a, b := randT(rng, m, k), randT(rng, k, n)
			got, want := New(m, n), New(m, n)
			if err := MatMul(got, a, b); err != nil {
				t.Fatal(err)
			}
			refMatMul(want, a, b)
			if !got.Equal(want) {
				t.Fatalf("blocked MatMul %dx%dx%d differs from reference", m, k, n)
			}
		}
	})
}

// withGOMAXPROCS runs f under a temporary GOMAXPROCS so the worker pool
// engages (and recruits workers) even on single-core machines.
func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Well past matmulParallelThreshold so the worker pool engages; forced
	// GOMAXPROCS so parallel dispatch happens even on a 1-core machine.
	rng := rand.New(rand.NewSource(14))
	a, b := randT(rng, 200, 150), randT(rng, 150, 180)
	par, ser := New(200, 180), New(200, 180)
	withGOMAXPROCS(4, func() {
		if err := MatMul(par, a, b); err != nil {
			t.Fatal(err)
		}
	})
	refMatMul(ser, a, b)
	if !par.Equal(ser) {
		t.Fatal("parallel MatMul differs from serial reference")
	}
}

func TestEnsureReusesStorage(t *testing.T) {
	t1 := New(8, 4)
	t1.Fill(3)
	t2 := Ensure(t1, 4, 4)
	if t2 != t1 {
		t.Fatal("Ensure did not reuse sufficient storage")
	}
	if t2.Dim(0) != 4 || t2.Dim(1) != 4 || t2.Len() != 16 {
		t.Fatalf("Ensure shape %v len %d", t2.Shape(), t2.Len())
	}
	// Growing past capacity allocates fresh storage.
	t3 := Ensure(t2, 16, 16)
	if t3 == t2 {
		t.Fatal("Ensure reused insufficient storage")
	}
	if got := Ensure(nil, 2, 3); got.Len() != 6 {
		t.Fatalf("Ensure(nil) len %d", got.Len())
	}
	// Rank changes rewrite the shape correctly.
	t4 := Ensure(New(2, 3, 4), 6, 4)
	if t4.Rank() != 2 || t4.Dim(0) != 6 || t4.Dim(1) != 4 {
		t.Fatalf("Ensure rank change shape %v", t4.Shape())
	}
}

func BenchmarkGemmRows128(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	a, bb := randT(rng, 128, 128), randT(rng, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemmRows(dst.data, a.data, bb.data, 0, 128, 128, 128)
	}
}

// BenchmarkGemmRowsParallel measures worker-pool scaling of a 256³ matmul
// at 1/2/4/8 cores (GOMAXPROCS; on machines with fewer physical cores the
// extra lanes oversubscribe and the curve flattens — the recorded multicore
// table in BENCH_perf.json names the core count it was measured on).
func BenchmarkGemmRowsParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	a, bb := randT(rng, 256, 256), randT(rng, 256, 256)
	dst := New(256, 256)
	for _, cores := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			withGOMAXPROCS(cores, func() {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := MatMul(dst, a, bb); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
