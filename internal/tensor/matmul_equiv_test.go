package tensor

import (
	"math/rand"
	"testing"
)

// Reference kernels: the straightforward triple loops the optimized kernels
// must match bit for bit (same per-element accumulation order).

func refMatMul(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[i*k+p] * b.data[p*n+j]
			}
			dst.data[i*n+j] = s
		}
	}
}

func refMatMulTransA(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[p*m+i] * b.data[p*n+j]
			}
			dst.data[i*n+j] = s
		}
	}
}

func refMatMulTransB(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[i*k+p] * b.data[j*k+p]
			}
			dst.data[i*n+j] = s
		}
	}
}

func randT(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	t.FillNormal(rng, 0, 1)
	return t
}

// dims covers tile boundaries (multiples of 4), every tail combination, and
// degenerate single-row/column cases, plus sizes past the parallel threshold.
var equivDims = [][3]int{
	{1, 1, 1}, {1, 5, 3}, {4, 4, 4}, {5, 7, 9}, {8, 16, 12},
	{3, 2, 31}, {17, 13, 6}, {32, 64, 1}, {1, 1, 128},
	{64, 64, 10}, {70, 65, 33}, {128, 96, 17},
}

func TestMatMulBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range equivDims {
		m, k, n := d[0], d[1], d[2]
		a, b := randT(rng, m, k), randT(rng, k, n)
		got, want := New(m, n), New(m, n)
		if err := MatMul(got, a, b); err != nil {
			t.Fatal(err)
		}
		refMatMul(want, a, b)
		if !got.Equal(want) {
			t.Fatalf("MatMul %dx%dx%d differs from reference", m, k, n)
		}
	}
}

func TestMatMulTransABitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, d := range equivDims {
		m, k, n := d[0], d[1], d[2]
		a, b := randT(rng, k, m), randT(rng, k, n)
		got, want := New(m, n), New(m, n)
		if err := MatMulTransA(got, a, b); err != nil {
			t.Fatal(err)
		}
		refMatMulTransA(want, a, b)
		if !got.Equal(want) {
			t.Fatalf("MatMulTransA %dx%dx%d differs from reference", m, k, n)
		}
	}
}

func TestMatMulTransBBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, d := range equivDims {
		m, k, n := d[0], d[1], d[2]
		a, b := randT(rng, m, k), randT(rng, n, k)
		got, want := New(m, n), New(m, n)
		if err := MatMulTransB(got, a, b); err != nil {
			t.Fatal(err)
		}
		refMatMulTransB(want, a, b)
		if !got.Equal(want) {
			t.Fatalf("MatMulTransB %dx%dx%d differs from reference", m, k, n)
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Well past matmulParallelThreshold so the worker pool engages.
	rng := rand.New(rand.NewSource(14))
	a, b := randT(rng, 200, 150), randT(rng, 150, 180)
	par, ser := New(200, 180), New(200, 180)
	if err := MatMul(par, a, b); err != nil {
		t.Fatal(err)
	}
	refMatMul(ser, a, b)
	if !par.Equal(ser) {
		t.Fatal("parallel MatMul differs from serial reference")
	}
}

func TestEnsureReusesStorage(t *testing.T) {
	t1 := New(8, 4)
	t1.Fill(3)
	t2 := Ensure(t1, 4, 4)
	if t2 != t1 {
		t.Fatal("Ensure did not reuse sufficient storage")
	}
	if t2.Dim(0) != 4 || t2.Dim(1) != 4 || t2.Len() != 16 {
		t.Fatalf("Ensure shape %v len %d", t2.Shape(), t2.Len())
	}
	// Growing past capacity allocates fresh storage.
	t3 := Ensure(t2, 16, 16)
	if t3 == t2 {
		t.Fatal("Ensure reused insufficient storage")
	}
	if got := Ensure(nil, 2, 3); got.Len() != 6 {
		t.Fatalf("Ensure(nil) len %d", got.Len())
	}
	// Rank changes rewrite the shape correctly.
	t4 := Ensure(New(2, 3, 4), 6, 4)
	if t4.Rank() != 2 || t4.Dim(0) != 6 || t4.Dim(1) != 4 {
		t.Fatalf("Ensure rank change shape %v", t4.Shape())
	}
}

func TestGemmRowKernelMatchesPortable(t *testing.T) {
	// The architecture row kernel (SSE on amd64) must agree bit for bit with
	// the portable Go kernel on every chunk-width combination.
	rng := rand.New(rand.NewSource(15))
	for _, k := range []int{1, 2, 3, 7, 32} {
		for n := 1; n <= 40; n++ {
			a := randT(rng, k)
			b := randT(rng, k, n)
			got := randT(rng, n) // nonzero start: kernel accumulates
			want := got.Clone()
			gemmRowKernel(got.data, a.data, b.data, k, n)
			gemmRowGo(want.data, a.data, b.data, k, n)
			if !got.Equal(want) {
				t.Fatalf("row kernel k=%d n=%d differs from portable kernel", k, n)
			}
		}
	}
}

func BenchmarkGemmRows128(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	a, bb := randT(rng, 128, 128), randT(rng, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemmRows(dst.data, a.data, bb.data, 0, 128, 128, 128)
	}
}
