package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestTiersOrderedBestFirst(t *testing.T) {
	cases := []struct {
		f    cpuFeatures
		want []KernelTier
	}{
		{cpuFeatures{}, []KernelTier{TierPortable}},
		{cpuFeatures{sse: true}, []KernelTier{TierSSE, TierPortable}},
		{cpuFeatures{sse: true, avx2: true}, []KernelTier{TierAVX2, TierSSE, TierPortable}},
		{cpuFeatures{sse: true, avx2: true, avx512: true},
			[]KernelTier{TierAVX512, TierAVX2, TierSSE, TierPortable}},
	}
	for _, c := range cases {
		got := c.f.tiers()
		if len(got) != len(c.want) {
			t.Fatalf("tiers(%+v) = %v, want %v", c.f, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("tiers(%+v) = %v, want %v", c.f, got, c.want)
			}
		}
	}
}

func TestChooseTier(t *testing.T) {
	full := cpuFeatures{sse: true, avx2: true, avx512: true}
	avx2Only := cpuFeatures{sse: true, avx2: true}
	sseOnly := cpuFeatures{sse: true}
	none := cpuFeatures{}

	ok := []struct {
		f    cpuFeatures
		env  string
		want KernelTier
	}{
		{full, "", TierAVX512},
		{full, "auto", TierAVX512},
		{full, " AVX2 ", TierAVX2}, // case/space insensitive
		{full, "sse", TierSSE},
		{full, "portable", TierPortable},
		{full, "go", TierPortable},
		{avx2Only, "", TierAVX2},
		{avx2Only, "avx2", TierAVX2},
		{sseOnly, "", TierSSE},
		{none, "", TierPortable}, // noasm / non-amd64 build
		{none, "portable", TierPortable},
	}
	for _, c := range ok {
		got, err := chooseTier(c.f, c.env)
		if err != nil || got != c.want {
			t.Fatalf("chooseTier(%+v, %q) = %v, %v; want %v", c.f, c.env, got, err, c.want)
		}
	}

	bad := []struct {
		f   cpuFeatures
		env string
	}{
		{avx2Only, "avx512"}, // CPU lacks the tier
		{sseOnly, "avx2"},
		{none, "sse"}, // forced SSE on a noasm build must fail, not downgrade
		{full, "avx-512"},
		{full, "fast"},
	}
	for _, c := range bad {
		if _, err := chooseTier(c.f, c.env); err == nil {
			t.Fatalf("chooseTier(%+v, %q) should error", c.f, c.env)
		}
	}
}

func TestActiveKernelListed(t *testing.T) {
	avail := AvailableKernels()
	if len(avail) == 0 || avail[len(avail)-1] != "portable" {
		t.Fatalf("AvailableKernels() = %v: portable must always be last", avail)
	}
	active := ActiveKernel()
	for _, k := range avail {
		if k == active {
			return
		}
	}
	t.Fatalf("active kernel %q not in available set %v", active, avail)
}

func TestParseKernelThreads(t *testing.T) {
	for s, want := range map[string]int{"": 0, "1": 1, "4": 4, "64": 64} {
		got, err := parseKernelThreads(s)
		if err != nil || got != want {
			t.Fatalf("parseKernelThreads(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	for _, s := range []string{"0", "-2", "two", "4.5", " 4"} {
		if _, err := parseKernelThreads(s); err == nil {
			t.Fatalf("parseKernelThreads(%q) should error", s)
		}
	}
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, cores := range []int{1, 4} {
		withGOMAXPROCS(cores, func() {
			for _, total := range []int{0, 1, 7, 100, 1023} {
				hits := make([]int32, total)
				var mu sync.Mutex
				ranges := 0
				ParallelFor(total, 8, func(lo, hi int) {
					mu.Lock()
					ranges++
					mu.Unlock()
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("cores=%d total=%d: index %d covered %d times", cores, total, i, h)
					}
				}
				if total > 0 && ranges == 0 {
					t.Fatalf("cores=%d total=%d: fn never called", cores, total)
				}
			}
		})
	}
}

func TestParallelForRespectsMinChunk(t *testing.T) {
	withGOMAXPROCS(8, func() {
		var mu sync.Mutex
		min := 1 << 30
		ParallelFor(100, 40, func(lo, hi int) {
			mu.Lock()
			if hi-lo < min {
				min = hi - lo
			}
			mu.Unlock()
		})
		// The final chunk may be a remainder, but no chunk may be smaller
		// than both minChunk and the remainder (100 = 2×40 + 20).
		if min < 20 {
			t.Fatalf("smallest chunk %d; minChunk 40 over total 100 allows no chunk under 20", min)
		}
	})
}
