package tensor

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{name: "scalar", shape: nil, want: 1},
		{name: "vector", shape: []int{7}, want: 7},
		{name: "matrix", shape: []int{3, 4}, want: 12},
		{name: "rank4", shape: []int{2, 3, 4, 5}, want: 120},
		{name: "zero dim", shape: []int{0, 5}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if got := x.Len(); got != tt.want {
				t.Fatalf("Len() = %d, want %d", got, tt.want)
			}
			if got := x.Rank(); got != len(tt.shape) {
				t.Fatalf("Rank() = %d, want %d", got, len(tt.shape))
			}
		})
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	x, err := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	if _, err := FromSlice([]float32{1, 2}, 3); !errors.Is(err, ErrShape) {
		t.Fatalf("expected ErrShape, got %v", err)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	// Row-major order: offset of (1,2,3) in (2,3,4) is 1*12 + 2*4 + 3 = 23.
	if got := x.Data()[23]; got != 42 {
		t.Fatalf("flat[23] = %v, want 42", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3}, 3)
	y := x.Clone()
	y.Set(9, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	v, err := x.Reshape(4)
	if err != nil {
		t.Fatalf("Reshape: %v", err)
	}
	v.Set(99, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape view does not share storage")
	}
	if _, err := x.Reshape(5); !errors.Is(err, ErrShape) {
		t.Fatalf("expected ErrShape, got %v", err)
	}
}

func TestRowAndSliceViews(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	r := x.Row(1)
	if r.At(0) != 3 || r.At(1) != 4 {
		t.Fatalf("Row(1) = %v,%v want 3,4", r.At(0), r.At(1))
	}
	s := x.Slice(1, 3)
	if s.Dim(0) != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 6 {
		t.Fatalf("Slice(1,3) wrong: %v", s.Data())
	}
	s.Set(-1, 0, 0)
	if x.At(1, 0) != -1 {
		t.Fatal("Slice view does not share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	b := MustFromSlice([]float32{4, 5, 6}, 3)
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 7, 9}
	for i, w := range want {
		if a.At(i) != w {
			t.Fatalf("Add: a[%d] = %v, want %v", i, a.At(i), w)
		}
	}
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0) != 1 || a.At(2) != 3 {
		t.Fatalf("Sub did not invert Add: %v", a.Data())
	}
	if err := a.Mul(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1) != 10 {
		t.Fatalf("Mul: got %v, want 10", a.At(1))
	}
	a.Scale(0.5)
	if a.At(1) != 5 {
		t.Fatalf("Scale: got %v, want 5", a.At(1))
	}
	c := New(2)
	if err := a.Add(c); !errors.Is(err, ErrShape) {
		t.Fatalf("expected ErrShape on mismatched Add, got %v", err)
	}
}

func TestAxpyAndLerp(t *testing.T) {
	a := MustFromSlice([]float32{1, 1}, 2)
	x := MustFromSlice([]float32{2, 4}, 2)
	if err := a.Axpy(0.5, x); err != nil {
		t.Fatal(err)
	}
	if a.At(0) != 2 || a.At(1) != 3 {
		t.Fatalf("Axpy: %v", a.Data())
	}
	b := MustFromSlice([]float32{0, 0}, 2)
	if err := b.Lerp(0.25, x); err != nil {
		t.Fatal(err)
	}
	if b.At(0) != 0.5 || b.At(1) != 1 {
		t.Fatalf("Lerp: %v", b.Data())
	}
}

func TestReductions(t *testing.T) {
	x := MustFromSlice([]float32{3, -1, 4, 1}, 4)
	if got := x.Sum(); got != 7 {
		t.Fatalf("Sum = %v", got)
	}
	if got := x.Mean(); got != 1.75 {
		t.Fatalf("Mean = %v", got)
	}
	idx, v := x.MaxIndex()
	if idx != 2 || v != 4 {
		t.Fatalf("MaxIndex = %d,%v", idx, v)
	}
	d, err := x.Dot(x)
	if err != nil || d != 27 {
		t.Fatalf("Dot = %v, %v", d, err)
	}
	if got := x.Norm2(); math.Abs(got-math.Sqrt(27)) > 1e-12 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestRowVectorOps(t *testing.T) {
	m := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	v := MustFromSlice([]float32{10, 20}, 2)
	if err := m.AddRowVector(v); err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 13, 24}
	for i, w := range want {
		if m.Data()[i] != w {
			t.Fatalf("AddRowVector[%d] = %v, want %v", i, m.Data()[i], w)
		}
	}
	sum := New(2)
	if err := m.SumRows(sum); err != nil {
		t.Fatal(err)
	}
	if sum.At(0) != 24 || sum.At(1) != 46 {
		t.Fatalf("SumRows = %v", sum.Data())
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got, err := MatMulNew(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got.Data(), want.Data())
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 5)
	a.FillNormal(rng, 0, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	got, err := MatMulNew(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(a, 1e-6) {
		t.Fatal("A @ I != A")
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	dst := New(2, 2)
	if err := MatMul(dst, a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("expected ErrShape, got %v", err)
	}
}

func TestMatMulTransposedVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(4, 6)
	b := New(6, 5)
	a.FillNormal(rng, 0, 1)
	b.FillNormal(rng, 0, 1)

	want, err := MatMulNew(a, b)
	if err != nil {
		t.Fatal(err)
	}

	at, err := a.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	gotTA := New(4, 5)
	if err := MatMulTransA(gotTA, at, b); err != nil {
		t.Fatal(err)
	}
	if !gotTA.AllClose(want, 1e-4) {
		t.Fatal("MatMulTransA(aᵀ, b) != a @ b")
	}

	bt, err := b.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	gotTB := New(4, 5)
	if err := MatMulTransB(gotTB, a, bt); err != nil {
		t.Fatal(err)
	}
	if !gotTB.AllClose(want, 1e-4) {
		t.Fatal("MatMulTransB(a, bᵀ) != a @ b")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(3, 7)
	a.FillNormal(rng, 0, 1)
	at, err := a.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	att, err := at.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	if !att.Equal(a) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
	}{
		{name: "scalar", shape: nil},
		{name: "vector", shape: []int{13}},
		{name: "matrix", shape: []int{4, 5}},
		{name: "rank4", shape: []int{2, 3, 2, 2}},
		{name: "empty", shape: []int{0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			x := New(tt.shape...)
			x.FillNormal(rng, 0, 2)
			var buf bytes.Buffer
			n, err := x.WriteTo(&buf)
			if err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if int(n) != x.EncodedSize() {
				t.Fatalf("wrote %d bytes, EncodedSize says %d", n, x.EncodedSize())
			}
			var y Tensor
			if _, err := y.ReadFrom(&buf); err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			if !y.Equal(x) {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

func TestReadFromRejectsHugeVolume(t *testing.T) {
	// rank=2, dims = 1<<20 x 1<<20 would be 4 TiB; must be rejected.
	var buf bytes.Buffer
	buf.WriteByte(2)
	for i := 0; i < 2; i++ {
		buf.Write([]byte{0, 0, 16, 0}) // 1<<20 little endian
	}
	var y Tensor
	if _, err := y.ReadFrom(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestReadFromTruncated(t *testing.T) {
	x := New(3, 3)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	var y Tensor
	if _, err := y.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

func TestIsFinite(t *testing.T) {
	x := MustFromSlice([]float32{1, 2}, 2)
	if !x.IsFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	x.Set(float32(math.NaN()), 0)
	if x.IsFinite() {
		t.Fatal("NaN not detected")
	}
	x.Set(float32(math.Inf(1)), 0)
	if x.IsFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestClampAndApply(t *testing.T) {
	x := MustFromSlice([]float32{-2, 0.5, 3}, 3)
	x.Clamp(-1, 1)
	if x.At(0) != -1 || x.At(1) != 0.5 || x.At(2) != 1 {
		t.Fatalf("Clamp: %v", x.Data())
	}
	x.Apply(func(v float32) float32 { return v * v })
	if x.At(0) != 1 || x.At(2) != 1 || x.At(1) != 0.25 {
		t.Fatalf("Apply: %v", x.Data())
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for run := uint64(0); run < 4; run++ {
		for round := uint64(0); round < 8; round++ {
			for client := uint64(0); client < 8; client++ {
				s := DeriveSeed(run, round, client)
				if seen[s] {
					t.Fatalf("duplicate seed for (%d,%d,%d)", run, round, client)
				}
				seen[s] = true
			}
		}
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(3, 2, 1) {
		t.Fatal("DeriveSeed ignores argument order")
	}
}

// Property-based tests.

func TestQuickAddCommutes(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		a := MustFromSlice(vals, len(vals))
		b := a.Clone()
		b.Scale(2)
		ab := a.Clone()
		if err := ab.Add(b); err != nil {
			return false
		}
		ba := b.Clone()
		if err := ba.Add(a); err != nil {
			return false
		}
		return ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		x := MustFromSlice(vals, len(vals))
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			return false
		}
		var y Tensor
		if _, err := y.ReadFrom(&buf); err != nil {
			return false
		}
		if len(vals) == 0 {
			return y.Len() == 0
		}
		// NaN != NaN, so compare bit patterns.
		for i, v := range x.Data() {
			if math.Float32bits(v) != math.Float32bits(y.Data()[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScaleLinearity(t *testing.T) {
	f := func(raw []float32) bool {
		vals := make([]float32, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) && math.Abs(float64(v)) < 1e6 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		a := MustFromSlice(vals, len(vals))
		x2 := a.Clone()
		x2.Scale(2)
		sum := a.Clone()
		if err := sum.Add(a); err != nil {
			return false
		}
		return x2.AllClose(sum, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(128, 128)
	y := New(128, 128)
	x.FillNormal(rng, 0, 1)
	y.FillNormal(rng, 0, 1)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMul(dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}
