// Package tensor implements dense float32 tensors and the numerical kernels
// used by the neural-network substrate: element-wise arithmetic, reductions,
// a parallel blocked matrix multiply, random fills, and a compact binary
// serialization format used by the communication layer.
//
// Tensors are always contiguous in row-major order. The package favours
// explicit, allocation-conscious APIs: most operations have an in-place or
// destination-passing form so hot training loops can avoid garbage.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape reports an operation applied to tensors with incompatible shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a dense, contiguous, row-major float32 tensor.
//
// The zero value is an empty tensor. Tensors created by New share no storage
// with their inputs; views created by Reshape and Row share storage with the
// receiver.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative; a tensor with zero dimensions is a
// scalar with one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panicNegativeDim(shape)
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// panicNegativeDim reports an invalid shape. It copies the shape before
// boxing it for the panic message so that New's and Ensure's shape parameter
// does not leak — otherwise every variadic call site would heap-allocate its
// shape slice, breaking the zero-allocation hot path.
//
//go:noinline
func panicNegativeDim(shape []int) {
	panic(fmt.Sprintf("tensor: negative dimension in shape %v", append([]int(nil), shape...)))
}

// Ensure returns a tensor with exactly the given shape, reusing t's storage
// when its capacity suffices and allocating a fresh tensor otherwise. The
// returned tensor's contents are unspecified; callers that need zeros must
// call Zero. Ensure is the workhorse of the layer workspace caches: in steady
// state (shapes stable across training steps) it never allocates.
//
// t may be nil. When storage is reused the returned tensor is t itself with
// its shape rewritten, so any views previously derived from t are invalidated.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panicNegativeDim(shape)
		}
		n *= d
	}
	if t == nil || cap(t.data) < n {
		return New(shape...)
	}
	t.data = t.data[:n]
	if len(t.shape) == len(shape) {
		copy(t.shape, shape)
	} else {
		s := make([]int, len(shape))
		copy(s, shape)
		t.shape = s
	}
	return t
}

// FromSlice returns a tensor with the given shape whose storage is a copy of
// data. It returns an error if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("%w: negative dimension in %v", ErrShape, shape)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: shape %v needs %d elements, got %d", ErrShape, shape, n, len(data))
	}
	t := New(shape...)
	copy(t.data, data)
	return t, nil
}

// MustFromSlice is FromSlice that panics on error. Intended for tests and
// literals with statically known shapes.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice is a copy.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor; callers at
// package boundaries should copy (see CopyData).
func (t *Tensor) Data() []float32 { return t.data }

// CopyData returns a copy of the backing slice.
func (t *Tensor) CopyData() []float32 {
	out := make([]float32, len(t.data))
	copy(out, t.data)
	return out
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. The shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) error {
	if len(t.data) != len(src.data) {
		return fmt.Errorf("%w: copy %v into %v", ErrShape, src.shape, t.shape)
	}
	copy(t.data, src.data)
	return nil
}

// Reshape returns a view of t with a new shape of equal volume. The view
// shares storage with t.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: reshape %v to %v", ErrShape, t.shape, shape)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}, nil
}

// MustReshape is Reshape that panics on error.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	v, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return v
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d for shape %v", len(idx), t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Row returns a view of row i of a rank-2 tensor.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	cols := t.shape[1]
	return &Tensor{shape: []int{cols}, data: t.data[i*cols : (i+1)*cols]}
}

// Slice returns a view of rows [lo, hi) along the first dimension.
func (t *Tensor) Slice(lo, hi int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: Slice on scalar")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: slice [%d,%d) out of range for shape %v", lo, hi, t.shape))
	}
	stride := 1
	for _, d := range t.shape[1:] {
		stride *= d
	}
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	s[0] = hi - lo
	return &Tensor{shape: s, data: t.data[lo*stride : hi*stride]}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	clear(t.data)
}

// String renders a short human-readable description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

// IsFinite reports whether all elements are finite (no NaN or Inf).
func (t *Tensor) IsFinite() bool {
	for _, v := range t.data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}

// Volume returns the number of elements implied by shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
