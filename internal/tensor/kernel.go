package tensor

import (
	"fmt"
	"strings"
)

// Kernel dispatch: the row kernels come in tiers (portable Go, SSE, AVX2,
// AVX-512), selected once at package init from runtime CPUID feature
// detection, best tier first. The FEDFTEDS_KERNEL environment variable
// forces a tier for tests, CI matrix legs and debugging; requesting a tier
// the CPU (or build) cannot run fails fast at init rather than silently
// downgrading.
//
// Every tier obeys the accumulation-order contract (see matmul.go): SIMD
// only across independent output lanes j, each output element accumulating
// its K terms in ascending-p order with one multiply rounding and one add
// rounding per term. In particular the AVX2/AVX-512 kernels deliberately do
// NOT use fused multiply-add: a single-rounding VFMADD would produce
// different bits than the portable kernel and break every cross-tier
// bit-identity gate (golden checkpoints, resume, relay-vs-flat). The win of
// the wide tiers comes from lane width and 4-row register blocking, not
// from fusing.

// KernelTier identifies one row-kernel implementation tier.
type KernelTier int

const (
	// TierPortable is the pure-Go reference kernel, available everywhere.
	TierPortable KernelTier = iota
	// TierSSE is the 4-lane amd64 baseline assembly kernel.
	TierSSE
	// TierAVX2 is the 8-lane, 4-row-blocked assembly kernel.
	TierAVX2
	// TierAVX512 is the 16-lane, 4-row-blocked assembly kernel.
	TierAVX512
)

// String returns the tier's canonical FEDFTEDS_KERNEL value.
func (t KernelTier) String() string {
	switch t {
	case TierPortable:
		return "portable"
	case TierSSE:
		return "sse"
	case TierAVX2:
		return "avx2"
	case TierAVX512:
		return "avx512"
	}
	return fmt.Sprintf("KernelTier(%d)", int(t))
}

// cpuFeatures is the subset of CPUID feature detection the dispatch chain
// consults. The zero value (nothing available) describes non-amd64 builds.
type cpuFeatures struct {
	sse    bool // amd64 baseline assembly compiled in
	avx2   bool // AVX2 + OS YMM state support
	avx512 bool // AVX-512F + OS ZMM/opmask state support
}

// tiers returns the available tiers, best first. Portable is always last.
func (f cpuFeatures) tiers() []KernelTier {
	out := make([]KernelTier, 0, 4)
	if f.avx512 {
		out = append(out, TierAVX512)
	}
	if f.avx2 {
		out = append(out, TierAVX2)
	}
	if f.sse {
		out = append(out, TierSSE)
	}
	return append(out, TierPortable)
}

// chooseTier resolves the FEDFTEDS_KERNEL override against the detected
// features: empty or "auto" picks the best available tier; naming a tier
// demands exactly it, erroring when the CPU or build cannot run it. It is a
// pure function so tests can drive it with forced feature sets.
func chooseTier(f cpuFeatures, env string) (KernelTier, error) {
	switch strings.ToLower(strings.TrimSpace(env)) {
	case "", "auto":
		return f.tiers()[0], nil
	case "portable", "go":
		return TierPortable, nil
	case "sse":
		if !f.sse {
			return 0, fmt.Errorf("tensor: FEDFTEDS_KERNEL=sse: SSE kernel not available (non-amd64 or noasm build)")
		}
		return TierSSE, nil
	case "avx2":
		if !f.avx2 {
			return 0, fmt.Errorf("tensor: FEDFTEDS_KERNEL=avx2: AVX2 not supported by this CPU/OS or build")
		}
		return TierAVX2, nil
	case "avx512":
		if !f.avx512 {
			return 0, fmt.Errorf("tensor: FEDFTEDS_KERNEL=avx512: AVX-512 not supported by this CPU/OS or build")
		}
		return TierAVX512, nil
	}
	return 0, fmt.Errorf("tensor: FEDFTEDS_KERNEL=%q: want auto, portable, sse, avx2 or avx512", env)
}

// detectedFeatures is filled at init by the architecture file (it stays the
// zero value — portable only — on non-amd64 and noasm builds).
var detectedFeatures cpuFeatures

// activeTier is the tier gemmAcc currently dispatches to.
var activeTier = TierPortable

// gemmAccImpl accumulates dst[r*dstStride+j] += Σ_p a[r*k+p]·b[p*n+j] for
// r in [0,rows), j in [0,n); b rows are contiguous with stride n (the full
// B when n is the output width, or a packed panel). Rebound by setTier.
var gemmAccImpl = gemmAccGo

// ActiveKernel reports the dispatch tier in use ("avx512", "avx2", "sse" or
// "portable"), for logs and diagnostics.
func ActiveKernel() string { return activeTier.String() }

// AvailableKernels lists the tiers this process can run, best first.
func AvailableKernels() []string {
	ts := detectedFeatures.tiers()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

// setTier rebinds the dispatch. Only init and tests call it; callers must
// ensure no matmul is in flight (tests swap tiers between operations, which
// the worker pool's channel synchronization makes safe).
func setTier(t KernelTier) {
	activeTier = t
	gemmAccImpl = gemmAccForTier(t)
}

// gemmAccGo is the portable tier: every row through the reference kernel.
func gemmAccGo(dst, a, b []float32, rows, n, dstStride, k int) {
	for r := 0; r < rows; r++ {
		gemmRowGo(dst[r*dstStride:r*dstStride+n], a[r*k:r*k+k], b[:k*n], k, n)
	}
}
