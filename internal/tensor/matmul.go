package tensor

import (
	"fmt"
	"runtime"
)

// matmulParallelThreshold is the minimum number of result elements before the
// matmul kernels fan work out to the worker pool. Below this, dispatch
// overhead dominates.
const matmulParallelThreshold = 64 * 64

// All three multiplies reduce to one row kernel: dst[i, 0:n] = Σ_p A'[i,p] ·
// B'[p, 0:n], where A' (M, K) is row-major with contiguous reduction axis and
// B' (K, N) is row-major with contiguous output axis. Operands that do not
// already have the required layout are transposed into pooled scratch first
// (pure data movement). The kernel vectorizes across output lanes j, never
// across the reduction: every output element accumulates its K terms strictly
// in ascending-p order with one rounding per multiply-add, so results are
// bit-identical to the straightforward triple loop, to the pre-SIMD kernels,
// and to any level of row-partitioned parallelism.

// MatMul computes dst = a @ b for rank-2 tensors a (M, K) and b (K, N),
// writing into dst (M, N). dst must not alias a or b. Large products are
// split across the persistent worker pool by row blocks; the result is
// identical regardless of parallelism.
func MatMul(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("%w: matmul wants rank-2, got %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	runGemm(dst.data, a.data, b.data, m, n, k)
	return nil
}

// MatMulNew is MatMul allocating its destination.
func MatMulNew(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmul wants rank-2, got %v @ %v", ErrShape, a.shape, b.shape)
	}
	dst := New(a.shape[0], b.shape[1])
	if err := MatMul(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// MatMulTransA computes dst = aᵀ @ b for a (K, M) and b (K, N) into dst (M, N).
// Used by backward passes to avoid materializing transposes. a's columns are
// packed into pooled scratch so the kernel reduces over contiguous memory.
func MatMulTransA(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("%w: matmulTA wants rank-2, got %v,%v,%v", ErrShape, a.shape, b.shape, dst.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTA %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	at := getScratch(k * m)
	packTranspose(*at, a.data, k, m)
	runGemm(dst.data, *at, b.data, m, n, k)
	putScratch(at)
	return nil
}

// MatMulTransB computes dst = a @ bᵀ for a (M, K) and b (N, K) into dst (M, N).
// b is transposed into pooled scratch so the kernel streams contiguous rows.
func MatMulTransB(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("%w: matmulTB wants rank-2, got %v,%v,%v", ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTB %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	bt := getScratch(k * n)
	packTranspose(*bt, b.data, n, k)
	runGemm(dst.data, a.data, *bt, m, n, k)
	putScratch(bt)
	return nil
}

// runGemm picks serial or pooled-parallel execution of gemmRows.
func runGemm(dd, ad, bd []float32, m, n, k int) {
	if m*n >= matmulParallelThreshold && m > 1 && runtime.GOMAXPROCS(0) > 1 {
		parallelGemm(dd, ad, bd, m, n, k)
		return
	}
	gemmRows(dd, ad, bd, 0, m, n, k)
}

// gemmRows computes rows [lo, hi) of dst (M, N) = a (M, K) @ b (K, N), all
// row-major and contiguous. Each row is cleared and then accumulated by the
// architecture's row kernel.
func gemmRows(dd, ad, bd []float32, lo, hi, n, k int) {
	if n == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		drow := dd[i*n : i*n+n]
		clear(drow)
		if k == 0 {
			continue
		}
		gemmRowKernel(drow, ad[i*k:i*k+k], bd, k, n)
	}
}

// gemmRowGo is the portable row kernel: dst[j] += Σ_p a[p]·b[p*n+j], the
// reference the assembly kernels must match bit for bit. Every term is
// accumulated — no zero-multiplier shortcut — so amd64 and non-amd64 produce
// identical bits even on non-finite data (0·Inf must yield NaN on both).
func gemmRowGo(dst, a, b []float32, k, n int) {
	for p := 0; p < k; p++ {
		av := a[p]
		brow := b[p*n : p*n+n]
		for j, bv := range brow {
			dst[j] += av * bv
		}
	}
}

// packTranspose writes the transpose of src (rows, cols) into dst (cols, rows).
func packTranspose(dst, src []float32, rows, cols int) {
	for r := 0; r < rows; r++ {
		row := src[r*cols : r*cols+cols]
		for c, v := range row {
			dst[c*rows+r] = v
		}
	}
}

// Transpose returns a new tensor that is the transpose of a rank-2 tensor.
func (t *Tensor) Transpose() (*Tensor, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("%w: transpose on rank-%d", ErrShape, t.Rank())
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	packTranspose(out.data, t.data, m, n)
	return out, nil
}
