package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// matmulParallelThreshold is the minimum number of result elements before
// MatMul fans work out to multiple goroutines. Below this, goroutine overhead
// dominates.
const matmulParallelThreshold = 64 * 64

// MatMul computes dst = a @ b for rank-2 tensors a (M, K) and b (K, N),
// writing into dst (M, N). dst must not alias a or b. Large products are
// split across GOMAXPROCS goroutines by row blocks; the result is identical
// regardless of parallelism.
func MatMul(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("%w: matmul wants rank-2, got %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	if m*n >= matmulParallelThreshold && runtime.GOMAXPROCS(0) > 1 {
		matmulParallel(dst, a, b, m, k, n)
		return nil
	}
	matmulRows(dst, a, b, 0, m, k, n)
	return nil
}

// MatMulNew is MatMul allocating its destination.
func MatMulNew(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmul wants rank-2, got %v @ %v", ErrShape, a.shape, b.shape)
	}
	dst := New(a.shape[0], b.shape[1])
	if err := MatMul(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

func matmulParallel(dst, a, b *Tensor, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(dst, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulRows computes rows [lo,hi) of dst = a @ b using an ikj loop order so
// the inner loop streams through contiguous rows of b and dst.
func matmulRows(dst, a, b *Tensor, lo, hi, k, n int) {
	ad, bd, dd := a.data, b.data, dst.data
	for i := lo; i < hi; i++ {
		drow := dd[i*n : (i+1)*n]
		clear(drow)
		arow := ad[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes dst = aᵀ @ b for a (K, M) and b (K, N) into dst (M, N).
// Used by backward passes to avoid materializing transposes.
func MatMulTransA(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("%w: matmulTA wants rank-2, got %v,%v,%v", ErrShape, a.shape, b.shape, dst.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTA %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	dst.Zero()
	ad, bd, dd := a.data, b.data, dst.data
	// Accumulate rank-1 updates: for each shared row p, dst += a[p,:]ᵀ ⊗ b[p,:].
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dd[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return nil
}

// MatMulTransB computes dst = a @ bᵀ for a (M, K) and b (N, K) into dst (M, N).
func MatMulTransB(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("%w: matmulTB wants rank-2, got %v,%v,%v", ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTB %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	ad, bd, dd := a.data, b.data, dst.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		drow := dd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
	return nil
}

// Transpose returns a new tensor that is the transpose of a rank-2 tensor.
func (t *Tensor) Transpose() (*Tensor, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("%w: transpose on rank-%d", ErrShape, t.Rank())
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out, nil
}
