package tensor

import "fmt"

// matmulParallelThreshold is the minimum number of result elements before the
// matmul kernels fan work out to the worker pool. Below this, dispatch
// overhead dominates.
const matmulParallelThreshold = 64 * 64

// All three multiplies reduce to one row kernel: dst[i, 0:n] = Σ_p A'[i,p] ·
// B'[p, 0:n], where A' (M, K) is row-major with contiguous reduction axis and
// B' (K, N) is row-major with contiguous output axis. Operands that do not
// already have the required layout are transposed into pooled scratch first
// (pure data movement). The kernel vectorizes across output lanes j, never
// across the reduction: every output element accumulates its K terms strictly
// in ascending-p order with one rounding per multiply-add, so results are
// bit-identical to the straightforward triple loop, to the pre-SIMD kernels,
// and to any level of row-partitioned parallelism.

// MatMul computes dst = a @ b for rank-2 tensors a (M, K) and b (K, N),
// writing into dst (M, N). dst must not alias a or b. Large products are
// split across the persistent worker pool by row blocks; the result is
// identical regardless of parallelism.
func MatMul(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("%w: matmul wants rank-2, got %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	runGemm(dst.data, a.data, b.data, m, n, k)
	return nil
}

// MatMulNew is MatMul allocating its destination.
func MatMulNew(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmul wants rank-2, got %v @ %v", ErrShape, a.shape, b.shape)
	}
	dst := New(a.shape[0], b.shape[1])
	if err := MatMul(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// MatMulTransA computes dst = aᵀ @ b for a (K, M) and b (K, N) into dst (M, N).
// Used by backward passes to avoid materializing transposes. a's columns are
// packed into pooled scratch so the kernel reduces over contiguous memory.
func MatMulTransA(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("%w: matmulTA wants rank-2, got %v,%v,%v", ErrShape, a.shape, b.shape, dst.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTA %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	at := getScratch(k * m)
	packTranspose(*at, a.data, k, m)
	runGemm(dst.data, *at, b.data, m, n, k)
	putScratch(at)
	return nil
}

// MatMulTransB computes dst = a @ bᵀ for a (M, K) and b (N, K) into dst (M, N).
// b is transposed into pooled scratch so the kernel streams contiguous rows.
func MatMulTransB(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("%w: matmulTB wants rank-2, got %v,%v,%v", ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTB %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	bt := getScratch(k * n)
	packTranspose(*bt, b.data, n, k)
	runGemm(dst.data, a.data, *bt, m, n, k)
	putScratch(bt)
	return nil
}

// Cache blocking: when B (K, N) is far larger than a core's L2, the row
// kernels re-stream it from L3/DRAM for every block of output rows. Past
// gemmBlockBytes, runGemm instead packs B into column panels of at most
// gemmPanelBytes (sized to sit in L2 with room for A rows and dst) and
// reuses each packed panel across every output row before moving on.
// Panels split only the output columns j — each dst element still
// accumulates its full K reduction in one ascending-p pass — so blocking
// never changes a single result bit. Both knobs are vars so tests can force
// the blocked path on small shapes.
var (
	gemmBlockBytes = 2 << 20
	gemmPanelBytes = 192 << 10
)

// gemmPanelCols returns the panel width for a blocked (k × n) B.
func gemmPanelCols(n, k int) int {
	nc := gemmPanelBytes / (4 * k)
	nc &^= 15 // whole 16-lane chunks
	if nc < 64 {
		nc = 64 // below this, packing overhead dominates reuse
	}
	if nc > n {
		nc = n
	}
	return nc
}

// runGemm computes dst (m, n) = a (m, k) @ b (k, n), picking between the
// flat path (serial or row-parallel) and the cache-blocked panel path.
func runGemm(dd, ad, bd []float32, m, n, k int) {
	if n == 0 || m == 0 {
		return
	}
	clear(dd[: m*n : m*n])
	if k == 0 {
		return
	}
	if 4*k*n > gemmBlockBytes && n > gemmPanelCols(n, k) {
		gemmBlocked(dd, ad, bd, m, n, k)
		return
	}
	if m*n >= matmulParallelThreshold && m > 1 {
		parallelGemmAcc(dd, ad, bd, m, n, n, k)
		return
	}
	gemmAccImpl(dd, ad, bd, m, n, n, k)
}

// gemmBlocked is the panel path of runGemm: dst is already cleared, k >= 1.
func gemmBlocked(dd, ad, bd []float32, m, n, k int) {
	nc := gemmPanelCols(n, k)
	sp := getScratch(k * nc)
	panel := *sp
	for j0 := 0; j0 < n; j0 += nc {
		w := nc
		if j0+w > n {
			w = n - j0
		}
		for p := 0; p < k; p++ {
			copy(panel[p*w:p*w+w], bd[p*n+j0:p*n+j0+w])
		}
		if m*w >= matmulParallelThreshold && m > 1 {
			parallelGemmAcc(dd[j0:], ad, panel[:k*w], m, w, n, k)
		} else {
			gemmAccImpl(dd[j0:], ad, panel[:k*w], m, w, n, k)
		}
	}
	putScratch(sp)
}

// gemmRows clears and computes rows [lo, hi) of dst (M, N) = a (M, K) @
// b (K, N), all row-major and contiguous, through the active dispatch tier.
func gemmRows(dd, ad, bd []float32, lo, hi, n, k int) {
	if n == 0 || hi <= lo {
		return
	}
	clear(dd[lo*n : hi*n])
	if k == 0 {
		return
	}
	gemmAccImpl(dd[lo*n:], ad[lo*k:], bd, hi-lo, n, n, k)
}

// gemmRowGo is the portable row kernel: dst[j] += Σ_p a[p]·b[p*n+j], the
// reference the assembly kernels must match bit for bit. Every term is
// accumulated — no zero-multiplier shortcut — so amd64 and non-amd64 produce
// identical bits even on non-finite data (0·Inf must yield NaN on both).
func gemmRowGo(dst, a, b []float32, k, n int) {
	for p := 0; p < k; p++ {
		av := a[p]
		brow := b[p*n : p*n+n]
		for j, bv := range brow {
			dst[j] += av * bv
		}
	}
}

// packTranspose writes the transpose of src (rows, cols) into dst (cols, rows).
func packTranspose(dst, src []float32, rows, cols int) {
	for r := 0; r < rows; r++ {
		row := src[r*cols : r*cols+cols]
		for c, v := range row {
			dst[c*rows+r] = v
		}
	}
}

// Transpose returns a new tensor that is the transpose of a rank-2 tensor.
func (t *Tensor) Transpose() (*Tensor, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("%w: transpose on rank-%d", ErrShape, t.Rank())
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	packTranspose(out.data, t.data, m, n)
	return out, nil
}
