//go:build amd64 && !noasm

package tensor

import "os"

// The amd64 tier implementations. All of them honour the accumulation-order
// contract: lanes are independent output elements j, each accumulating its
// K terms in ascending-p order with exactly one multiply rounding and one
// add rounding per term — the same float32 operation sequence as the
// portable kernel, so all tiers produce identical bits.

func init() {
	detectedFeatures = detectCPU()
	t, err := chooseTier(detectedFeatures, os.Getenv("FEDFTEDS_KERNEL"))
	if err != nil {
		// Fail fast: a forced tier the CPU cannot run must not silently
		// downgrade — CI matrix legs and reproducibility checks depend on
		// getting exactly the tier they asked for.
		panic(err)
	}
	setTier(t)
}

// gemmAccForTier maps a tier to its row-block accumulator.
func gemmAccForTier(t KernelTier) func(dst, a, b []float32, rows, n, dstStride, k int) {
	switch t {
	case TierAVX512:
		return gemmAccAVX512
	case TierAVX2:
		return gemmAccAVX2
	case TierSSE:
		return gemmAccSSE
	}
	return gemmAccGo
}

// gemmAccSSE runs every row through the 4-lane SSE row kernel.
func gemmAccSSE(dst, a, b []float32, rows, n, dstStride, k int) {
	for r := 0; r < rows; r++ {
		gemmRowSSE(&dst[r*dstStride], &a[r*k], &b[0], k, n)
	}
}

// gemmAccAVX2 processes 4 output rows at a time (8 YMM accumulators, so the
// multiply/add ports stay saturated even for narrow n) and finishes
// leftover rows with the SSE row kernel — bit-identical either way.
func gemmAccAVX2(dst, a, b []float32, rows, n, dstStride, k int) {
	r := 0
	for ; r+4 <= rows; r += 4 {
		gemmRow4AVX2(&dst[r*dstStride], dstStride, &a[r*k], k, &b[0], k, n)
	}
	for ; r < rows; r++ {
		gemmRowSSE(&dst[r*dstStride], &a[r*k], &b[0], k, n)
	}
}

// gemmAccAVX512 is gemmAccAVX2 with 16-lane ZMM chunks.
func gemmAccAVX512(dst, a, b []float32, rows, n, dstStride, k int) {
	r := 0
	for ; r+4 <= rows; r += 4 {
		gemmRow4AVX512(&dst[r*dstStride], dstStride, &a[r*k], k, &b[0], k, n)
	}
	for ; r < rows; r++ {
		gemmRowSSE(&dst[r*dstStride], &a[r*k], &b[0], k, n)
	}
}

// gemmRowSSE accumulates one output row: dst[j] += Σ_p a[p]·b[p*n+j].
// Implemented in matmul_amd64.s. Callers guarantee k >= 1, n >= 1.
//
//go:noescape
func gemmRowSSE(dst, a, b *float32, k, n int)

// gemmRow4AVX2 accumulates four output rows r in [0,4):
// dst[r*dstStride+j] += Σ_p a[r*aStride+p]·b[p*n+j]. Implemented in
// matmul_avx2_amd64.s. Callers guarantee k >= 1, n >= 1.
//
//go:noescape
func gemmRow4AVX2(dst *float32, dstStride int, a *float32, aStride int, b *float32, k, n int)

// gemmRow4AVX512 is gemmRow4AVX2 with 512-bit vectors (matmul_avx512_amd64.s).
//
//go:noescape
func gemmRow4AVX512(dst *float32, dstStride int, a *float32, aStride int, b *float32, k, n int)
