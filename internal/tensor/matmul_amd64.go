//go:build amd64 && !noasm

package tensor

// gemmRowKernel accumulates one output row via the SSE kernel. Callers
// guarantee k >= 1, n >= 1, len(dst) == n, len(a) == k, len(b) == k*n.
//
// SIMD here is safe for bit-identity: the vector lanes are independent output
// elements j, so each element still accumulates its K terms sequentially in
// ascending-p order with exactly one rounding per multiply and per add —
// the same float32 operation sequence as the portable kernel.
func gemmRowKernel(dst, a, b []float32, k, n int) {
	gemmRowSSE(&dst[0], &a[0], &b[0], k, n)
}

// gemmRowSSE is implemented in matmul_amd64.s.
//
//go:noescape
func gemmRowSSE(dst, a, b *float32, k, n int)
