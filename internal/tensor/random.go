package tensor

import (
	"math"
	"math/rand"
)

// FillUniform fills t with samples from U[lo, hi) drawn from rng.
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float32) {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*rng.Float32()
	}
}

// FillNormal fills t with samples from N(mean, std²) drawn from rng.
func (t *Tensor) FillNormal(rng *rand.Rand, mean, std float32) {
	for i := range t.data {
		t.data[i] = mean + std*float32(rng.NormFloat64())
	}
}

// FillKaiming fills t with the He-normal initialization used for layers
// followed by ReLU: N(0, sqrt(2/fanIn)).
func (t *Tensor) FillKaiming(rng *rand.Rand, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	t.FillNormal(rng, 0, std)
}

// FillXavier fills t with Glorot-uniform initialization:
// U[-sqrt(6/(fanIn+fanOut)), +sqrt(6/(fanIn+fanOut))].
func (t *Tensor) FillXavier(rng *rand.Rand, fanIn, fanOut int) {
	if fanIn+fanOut <= 0 {
		fanIn, fanOut = 1, 1
	}
	bound := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	t.FillUniform(rng, -bound, bound)
}

// Splitmix64 derives a well-mixed 64-bit value from a seed, suitable for
// building independent rand.Source seeds from (run, round, client) tuples.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed mixes parts into a single deterministic int64 seed.
func DeriveSeed(parts ...uint64) int64 {
	acc := uint64(0x243f6a8885a308d3)
	for _, p := range parts {
		acc = Splitmix64(acc ^ p)
	}
	return int64(acc)
}

// NewRand returns a deterministic *rand.Rand derived from parts.
func NewRand(parts ...uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(parts...)))
}
