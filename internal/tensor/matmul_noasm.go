//go:build !amd64 || noasm

package tensor

import "os"

// Builds without the assembly kernels (non-amd64, or the noasm tag CI uses
// to exercise the portable path natively) have exactly one tier. The
// FEDFTEDS_KERNEL override is still honoured so a forced-SSE run against a
// noasm binary fails loudly instead of silently testing the wrong kernel.

func init() {
	// detectedFeatures stays the zero value: portable only.
	t, err := chooseTier(detectedFeatures, os.Getenv("FEDFTEDS_KERNEL"))
	if err != nil {
		panic(err)
	}
	setTier(t)
}

// gemmAccForTier maps a tier to its accumulator; only portable exists here.
func gemmAccForTier(KernelTier) func(dst, a, b []float32, rows, n, dstStride, k int) {
	return gemmAccGo
}
