//go:build !amd64 || noasm

package tensor

// gemmRowKernel falls back to the portable row kernel on architectures
// without an assembly implementation, and under the noasm build tag — which
// is how CI tests the portable path natively on amd64
// (go test -tags noasm ./internal/tensor/ ./internal/nn/).
func gemmRowKernel(dst, a, b []float32, k, n int) {
	gemmRowGo(dst, a, b, k, n)
}
