//go:build !amd64

package tensor

// gemmRowKernel falls back to the portable row kernel on architectures
// without an assembly implementation.
func gemmRowKernel(dst, a, b []float32, k, n int) {
	gemmRowGo(dst, a, b, k, n)
}
