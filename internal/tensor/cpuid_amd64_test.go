//go:build amd64 && !noasm

package tensor

import "testing"

// TestFeaturesFromCPUID drives the feature derivation with forced CPUID
// values, covering OS-support gating that cannot be exercised on a real
// host (e.g. AVX2 CPU with an OS that does not save YMM state).
func TestFeaturesFromCPUID(t *testing.T) {
	const (
		ecxAVXOS = cpuid1ECXOSXSAVE | cpuid1ECXAVX
		ebxBoth  = cpuid7EBXAVX2 | cpuid7EBXAVX512F
		xcrFull  = xcr0SSEAVX | xcr0AVX512
	)
	cases := []struct {
		name                     string
		maxLeaf, ecx1, ebx7, xcr uint32
		want                     cpuFeatures
	}{
		{"ancient cpu, no leaf 7", 1, ecxAVXOS, ebxBoth, xcrFull,
			cpuFeatures{sse: true}},
		{"no osxsave", 7, cpuid1ECXAVX, ebxBoth, xcrFull,
			cpuFeatures{sse: true}},
		{"no avx bit", 7, cpuid1ECXOSXSAVE, ebxBoth, xcrFull,
			cpuFeatures{sse: true}},
		{"os does not save ymm", 7, ecxAVXOS, ebxBoth, 0x1,
			cpuFeatures{sse: true}},
		{"avx os ok but no avx2 bit", 7, ecxAVXOS, cpuid7EBXAVX512F, xcrFull,
			cpuFeatures{sse: true, avx512: true}},
		{"avx2 only", 7, ecxAVXOS, cpuid7EBXAVX2, xcr0SSEAVX,
			cpuFeatures{sse: true, avx2: true}},
		{"avx512 cpu, os saves only ymm", 7, ecxAVXOS, ebxBoth, xcr0SSEAVX,
			cpuFeatures{sse: true, avx2: true}},
		{"full avx512", 7, ecxAVXOS, ebxBoth, xcrFull,
			cpuFeatures{sse: true, avx2: true, avx512: true}},
	}
	for _, c := range cases {
		if got := featuresFromCPUID(c.maxLeaf, c.ecx1, c.ebx7, c.xcr); got != c.want {
			t.Errorf("%s: featuresFromCPUID = %+v, want %+v", c.name, got, c.want)
		}
	}
}

// TestDetectCPUMatchesInit checks the probe is stable and consistent with
// what init detected.
func TestDetectCPUMatchesInit(t *testing.T) {
	if got := detectCPU(); got != detectedFeatures {
		t.Fatalf("detectCPU() = %+v, init detected %+v", got, detectedFeatures)
	}
	if !detectedFeatures.sse {
		t.Fatal("amd64 asm build must always have the SSE tier")
	}
}
