//go:build amd64 && !noasm

package tensor

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended state mask.
func xgetbv0() (eax, edx uint32)

// CPUID feature bits consulted by detectCPU.
const (
	cpuid1ECXOSXSAVE = 1 << 27 // leaf 1 ECX: OS uses XSAVE/XRSTOR
	cpuid1ECXAVX     = 1 << 28 // leaf 1 ECX: AVX instructions
	cpuid7EBXAVX2    = 1 << 5  // leaf 7 EBX: AVX2 instructions
	cpuid7EBXAVX512F = 1 << 16 // leaf 7 EBX: AVX-512 Foundation

	xcr0SSEAVX = 0x6  // XCR0 bits 1-2: XMM + YMM state saved by the OS
	xcr0AVX512 = 0xe0 // XCR0 bits 5-7: opmask + upper-ZMM + hi16-ZMM state
)

// featuresFromCPUID derives the dispatch features from raw CPUID leaves.
// Split out from detectCPU as a pure function so the forced-feature unit
// tests can drive every branch without controlling the host CPU.
func featuresFromCPUID(maxLeaf, ecx1, ebx7, xcr0 uint32) cpuFeatures {
	f := cpuFeatures{sse: true} // amd64 baseline: SSE2 is always present
	if maxLeaf < 7 {
		return f
	}
	// AVX needs both the instruction-set bit and the OS actually saving
	// YMM state across context switches (OSXSAVE + XCR0[2:1] == 11).
	if ecx1&cpuid1ECXOSXSAVE == 0 || ecx1&cpuid1ECXAVX == 0 || xcr0&xcr0SSEAVX != xcr0SSEAVX {
		return f
	}
	f.avx2 = ebx7&cpuid7EBXAVX2 != 0
	// AVX-512 additionally needs ZMM and opmask state enabled by the OS.
	f.avx512 = ebx7&cpuid7EBXAVX512F != 0 && xcr0&xcr0AVX512 == xcr0AVX512
	return f
}

// detectCPU probes the host CPU for the dispatchable kernel tiers.
func detectCPU() cpuFeatures {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return cpuFeatures{sse: true}
	}
	_, _, ecx1, _ := cpuid(1, 0)
	_, ebx7, _, _ := cpuid(7, 0)
	var xcr0 uint32
	if ecx1&cpuid1ECXOSXSAVE != 0 {
		xcr0, _ = xgetbv0()
	}
	return featuresFromCPUID(maxLeaf, ecx1, ebx7, xcr0)
}
