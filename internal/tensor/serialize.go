package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary wire format (little endian):
//
//	u8  rank
//	u32 × rank  dims
//	f32 × volume  data
//
// The format is deliberately minimal: it is the payload of the FL model
// messages, where compactness matters (the paper's FedFT only ships the
// upper part of the model each round).

// ErrCorrupt reports a malformed serialized tensor.
var ErrCorrupt = errors.New("tensor: corrupt serialized data")

// maxSerializedDims bounds decoded tensor volume (1 GiB of float32) so a
// corrupt or hostile stream cannot trigger an enormous allocation.
const maxSerializedVolume = 1 << 28

// WriteTo serializes t to w in the binary wire format.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	if len(t.shape) > 255 {
		return 0, fmt.Errorf("tensor: rank %d exceeds wire format limit", len(t.shape))
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(len(t.shape))); err != nil {
		return n, fmt.Errorf("tensor: write rank: %w", err)
	}
	n++
	for _, d := range t.shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return n, fmt.Errorf("tensor: write dim: %w", err)
		}
		n += 4
	}
	buf := make([]byte, 4*len(t.data))
	for i, v := range t.data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	wn, err := w.Write(buf)
	n += int64(wn)
	if err != nil {
		return n, fmt.Errorf("tensor: write data: %w", err)
	}
	return n, nil
}

// ReadFrom deserializes a tensor from r, replacing t's shape and storage.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	var rank uint8
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return n, fmt.Errorf("tensor: read rank: %w", err)
	}
	n++
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return n, fmt.Errorf("tensor: read dim: %w", err)
		}
		n += 4
		shape[i] = int(d)
		vol *= int(d)
		if vol > maxSerializedVolume {
			return n, fmt.Errorf("%w: volume exceeds limit", ErrCorrupt)
		}
	}
	buf := make([]byte, 4*vol)
	rn, err := io.ReadFull(r, buf)
	n += int64(rn)
	if err != nil {
		return n, fmt.Errorf("tensor: read data: %w", err)
	}
	data := make([]float32, vol)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	t.shape = shape
	t.data = data
	return n, nil
}

// DecodeFrom parses one wire-format tensor from the front of b into t,
// reusing t's existing shape and data storage when large enough, and
// returns the number of bytes consumed. It is the zero-allocation
// steady-state decode used by the streaming aggregators: unlike ReadFrom it
// needs no intermediate byte buffer and, after the first round, no fresh
// tensor storage.
func (t *Tensor) DecodeFrom(b []byte) (int, error) {
	if len(b) < 1 {
		return 0, fmt.Errorf("%w: missing rank", ErrCorrupt)
	}
	rank := int(b[0])
	n := 1
	if len(b) < n+4*rank {
		return n, fmt.Errorf("%w: truncated dims", ErrCorrupt)
	}
	if cap(t.shape) >= rank {
		t.shape = t.shape[:rank]
	} else {
		t.shape = make([]int, rank)
	}
	vol := 1
	for i := range t.shape {
		d := int(binary.LittleEndian.Uint32(b[n:]))
		n += 4
		t.shape[i] = d
		vol *= d
		if vol > maxSerializedVolume {
			return n, fmt.Errorf("%w: volume exceeds limit", ErrCorrupt)
		}
	}
	if len(b) < n+4*vol {
		return n, fmt.Errorf("%w: truncated data", ErrCorrupt)
	}
	if cap(t.data) >= vol {
		t.data = t.data[:vol]
	} else {
		t.data = make([]float32, vol)
	}
	for i := range t.data {
		t.data[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[n+4*i:]))
	}
	return n + 4*vol, nil
}

// EncodedSize returns the number of bytes WriteTo will produce.
func (t *Tensor) EncodedSize() int {
	return 1 + 4*len(t.shape) + 4*len(t.data)
}
