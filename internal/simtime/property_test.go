package simtime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fedfteds/internal/models"
)

// costModel builds a model once for the property tests.
func costModel(t *testing.T) *models.Model {
	t.Helper()
	m, err := models.Build(models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{32},
		NumClasses: 8,
		Hidden:     24,
		InitSeed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuickCostMonotoneInEpochs(t *testing.T) {
	m := costModel(t)
	dev := Device{FLOPSRate: 1e9}
	f := func(rawEpochs, rawSel uint8) bool {
		epochs := int(rawEpochs%10) + 1
		sel := int(rawSel%50) + 1
		a, err := ClientRoundCost(m, dev, 100, sel, epochs, 0)
		if err != nil {
			return false
		}
		b, err := ClientRoundCost(m, dev, 100, sel, epochs+1, 0)
		if err != nil {
			return false
		}
		return b.TrainSeconds > a.TrainSeconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCostMonotoneInSelectedSize(t *testing.T) {
	m := costModel(t)
	dev := Device{FLOPSRate: 1e9}
	f := func(raw uint8) bool {
		sel := int(raw%99) + 1
		a, err := ClientRoundCost(m, dev, 100, sel, 3, 1)
		if err != nil {
			return false
		}
		b, err := ClientRoundCost(m, dev, 100, sel-1, 3, 1)
		if sel-1 == 0 {
			return err == nil && b.TrainSeconds == 0
		}
		if err != nil {
			return false
		}
		// Selection cost is identical (same full-set pass); training shrinks.
		return a.SelectionSeconds == b.SelectionSeconds && a.TrainSeconds > b.TrainSeconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFasterDeviceNeverSlower(t *testing.T) {
	m := costModel(t)
	f := func(raw uint8) bool {
		rate := 1e8 * float64(raw%50+1)
		slow, err := ClientRoundCost(m, Device{FLOPSRate: rate}, 80, 40, 2, 1)
		if err != nil {
			return false
		}
		fast, err := ClientRoundCost(m, Device{FLOPSRate: 2 * rate}, 80, 40, 2, 1)
		if err != nil {
			return false
		}
		return fast.Total() < slow.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFractionParticipationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(rawN, rawFrac uint8) bool {
		n := int(rawN%40) + 1
		frac := float64(rawFrac%100+1) / 100
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		got := FractionParticipation{Fraction: frac}.Complete(ids, nil, rng)
		if len(got) < 1 || len(got) > n {
			return false
		}
		seen := map[int]bool{}
		for _, id := range got {
			if id < 0 || id >= n || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeadlineNeverEmpty(t *testing.T) {
	f := func(rawDeadline uint8, rawTimes []uint8) bool {
		if len(rawTimes) == 0 {
			return true
		}
		ids := make([]int, len(rawTimes))
		times := make([]float64, len(rawTimes))
		for i, r := range rawTimes {
			ids[i] = i
			times[i] = float64(r)
		}
		deadline := float64(rawDeadline)
		got := DeadlineStraggler{DeadlineSeconds: deadline}.Complete(ids, times, nil)
		if len(got) == 0 {
			return false
		}
		for _, id := range got {
			if id < 0 || id >= len(ids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
