package simtime

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fedfteds/internal/models"
)

func testModel(t *testing.T) *models.Model {
	t.Helper()
	m, err := models.Build(models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{16},
		NumClasses: 5,
		Hidden:     32,
		InitSeed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewDevices(t *testing.T) {
	devs, err := NewHomogeneousDevices(5, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 5 || devs[3].FLOPSRate != 1e9 {
		t.Fatalf("devices %+v", devs)
	}
	if _, err := NewHomogeneousDevices(0, 1e9); !errors.Is(err, ErrSim) {
		t.Fatalf("expected ErrSim, got %v", err)
	}
	if _, err := NewHeterogeneousDevices(3, -1, 0.5, rand.New(rand.NewSource(1))); !errors.Is(err, ErrSim) {
		t.Fatalf("expected ErrSim, got %v", err)
	}
}

func TestHeterogeneousDevicesSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	devs, err := NewHeterogeneousDevices(2000, 1e9, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	var logs []float64
	for _, d := range devs {
		if d.FLOPSRate <= 0 {
			t.Fatal("non-positive device rate")
		}
		logs = append(logs, math.Log(d.FLOPSRate/1e9))
	}
	var mean float64
	for _, l := range logs {
		mean += l
	}
	mean /= float64(len(logs))
	if math.Abs(mean) > 0.05 {
		t.Fatalf("log-space mean %v, want ~0 (median preserved)", mean)
	}
}

func TestClientRoundCostScalesWithWork(t *testing.T) {
	m := testModel(t)
	dev := Device{FLOPSRate: 1e9}

	full, err := ClientRoundCost(m, dev, 100, 100, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	tenth, err := ClientRoundCost(m, dev, 100, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tenth.TrainSeconds >= full.TrainSeconds {
		t.Fatal("training 10% of data not cheaper than 100%")
	}
	ratio := full.TrainSeconds / tenth.TrainSeconds
	if math.Abs(ratio-10) > 1e-9 {
		t.Fatalf("train time ratio %v, want 10", ratio)
	}
}

func TestClientRoundCostSelectionOverhead(t *testing.T) {
	m := testModel(t)
	dev := Device{FLOPSRate: 1e9}
	eds, err := ClientRoundCost(m, dev, 100, 10, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rds, err := ClientRoundCost(m, dev, 100, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eds.SelectionSeconds <= 0 {
		t.Fatal("EDS selection pass has no cost")
	}
	if rds.SelectionSeconds != 0 {
		t.Fatal("RDS charged for a scoring pass")
	}
	if eds.Total() <= rds.Total() {
		t.Fatal("EDS total not above RDS total with equal training")
	}
	// The overhead is one forward pass: much cheaper than 5 training epochs.
	if eds.SelectionSeconds > rds.TrainSeconds {
		t.Fatalf("selection %vs exceeds full training %vs", eds.SelectionSeconds, rds.TrainSeconds)
	}
}

func TestClientRoundCostPartialFinetuneCheaper(t *testing.T) {
	m := testModel(t)
	dev := Device{FLOPSRate: 1e9}
	if err := m.SetFinetunePart(models.FinetuneFull); err != nil {
		t.Fatal(err)
	}
	full, err := ClientRoundCost(m, dev, 100, 100, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFinetunePart(models.FinetuneModerate); err != nil {
		t.Fatal(err)
	}
	part, err := ClientRoundCost(m, dev, 100, 100, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if part.TrainSeconds >= full.TrainSeconds {
		t.Fatal("partial fine-tuning not cheaper than full training")
	}
}

func TestClientRoundCostValidation(t *testing.T) {
	m := testModel(t)
	dev := Device{FLOPSRate: 1e9}
	if _, err := ClientRoundCost(m, dev, 10, 20, 5, 0); !errors.Is(err, ErrSim) {
		t.Fatalf("expected ErrSim for selected > local, got %v", err)
	}
	if _, err := ClientRoundCost(m, Device{}, 10, 5, 5, 0); !errors.Is(err, ErrSim) {
		t.Fatalf("expected ErrSim for zero-rate device, got %v", err)
	}
}

func TestFullParticipation(t *testing.T) {
	ids := []int{3, 1, 4}
	got := FullParticipation{}.Complete(ids, []float64{1, 2, 3}, nil)
	if len(got) != 3 {
		t.Fatalf("full participation dropped clients: %v", got)
	}
}

func TestFractionParticipation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ids := make([]int, 100)
	for i := range ids {
		ids[i] = i
	}
	got := FractionParticipation{Fraction: 0.2}.Complete(ids, nil, rng)
	if len(got) != 20 {
		t.Fatalf("fraction 0.2 kept %d of 100", len(got))
	}
	seen := map[int]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatal("duplicate client id")
		}
		seen[id] = true
	}
	// At least one client always survives.
	one := FractionParticipation{Fraction: 0.001}.Complete(ids[:3], nil, rng)
	if len(one) != 1 {
		t.Fatalf("tiny fraction kept %d, want 1", len(one))
	}
}

func TestDeadlineStraggler(t *testing.T) {
	ids := []int{0, 1, 2, 3}
	times := []float64{1, 10, 2, 20}
	got := DeadlineStraggler{DeadlineSeconds: 5}.Complete(ids, times, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("deadline survivors %v, want [0 2]", got)
	}
	// All too slow: fastest survives.
	slow := DeadlineStraggler{DeadlineSeconds: 0.5}.Complete(ids, times, nil)
	if len(slow) != 1 || slow[0] != 0 {
		t.Fatalf("fastest-survivor fallback %v, want [0]", slow)
	}
}

func TestAccountantAccumulates(t *testing.T) {
	var a Accountant
	a.AddRound(RoundCost{SelectionSeconds: 1, TrainSeconds: 10})
	a.AddRound(RoundCost{SelectionSeconds: 2, TrainSeconds: 20})
	a.AddCommunication(100, 200)
	a.AddCommunication(50, 75)
	if a.SelectionSeconds() != 3 || a.TrainSeconds() != 30 || a.TotalSeconds() != 33 {
		t.Fatalf("accountant times %v %v %v", a.SelectionSeconds(), a.TrainSeconds(), a.TotalSeconds())
	}
	if a.UplinkBytes() != 150 || a.DownlinkBytes() != 275 {
		t.Fatalf("accountant bytes %d %d", a.UplinkBytes(), a.DownlinkBytes())
	}
}
