// Package simtime models client device compute time. The paper's
// learning-efficiency results (Figs. 6, 7) divide accuracy by total client
// training seconds on the authors' testbed; we reproduce the *ratios* with a
// FLOP-derived cost model over a heterogeneous device population, as argued
// in DESIGN.md. The package also implements the straggler policies used in
// Table III.
package simtime

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fedfteds/internal/models"
)

// ErrSim reports an invalid simulation configuration.
var ErrSim = errors.New("simtime: invalid configuration")

// Device models one client's compute capability.
type Device struct {
	// FLOPSRate is the sustained throughput in FLOP/s.
	FLOPSRate float64
}

// NewHomogeneousDevices returns n identical devices.
func NewHomogeneousDevices(n int, flopsRate float64) ([]Device, error) {
	if n <= 0 || flopsRate <= 0 {
		return nil, fmt.Errorf("%w: n=%d rate=%v", ErrSim, n, flopsRate)
	}
	out := make([]Device, n)
	for i := range out {
		out[i] = Device{FLOPSRate: flopsRate}
	}
	return out, nil
}

// NewHeterogeneousDevices draws n device speeds from a lognormal
// distribution with the given median FLOP/s and log-space sigma — the usual
// model for consumer-device populations. sigma 0 yields identical devices.
func NewHeterogeneousDevices(n int, medianFLOPS, sigma float64, rng *rand.Rand) ([]Device, error) {
	if n <= 0 || medianFLOPS <= 0 || sigma < 0 {
		return nil, fmt.Errorf("%w: n=%d median=%v sigma=%v", ErrSim, n, medianFLOPS, sigma)
	}
	out := make([]Device, n)
	for i := range out {
		out[i] = Device{FLOPSRate: medianFLOPS * math.Exp(sigma*rng.NormFloat64())}
	}
	return out, nil
}

// RoundCost itemizes the simulated client time of one local round.
type RoundCost struct {
	// SelectionSeconds covers the data-selection forward pass(es).
	SelectionSeconds float64
	// TrainSeconds covers the local update epochs.
	TrainSeconds float64
}

// Total returns the round's total client seconds.
func (c RoundCost) Total() float64 { return c.SelectionSeconds + c.TrainSeconds }

// ClientRoundCost computes the simulated time of one client round:
// scoringPasses forward passes over the full local dataset (the selector's
// cost) plus epochs passes of forward+partial-backward over the selected
// subset. The model's current finetune part determines the backward cost.
func ClientRoundCost(m *models.Model, dev Device, localSize, selectedSize, epochs, scoringPasses int) (RoundCost, error) {
	return clientRoundCost(float64(m.ForwardFLOPsPerSample()), float64(m.TrainFLOPsPerSample()),
		dev, localSize, selectedSize, epochs, scoringPasses)
}

// ClientRoundCostFor is ClientRoundCost with the training cost projected for
// the given trainable-group mask instead of the model's current frozen
// state. Per-client partial training uses it to cost each tier's mask
// without mutating the shared global model.
func ClientRoundCostFor(m *models.Model, groups []string, dev Device, localSize, selectedSize, epochs, scoringPasses int) (RoundCost, error) {
	train, err := m.TrainFLOPsPerSampleFor(groups)
	if err != nil {
		return RoundCost{}, fmt.Errorf("%w: %v", ErrSim, err)
	}
	return clientRoundCost(float64(m.ForwardFLOPsPerSample()), float64(train),
		dev, localSize, selectedSize, epochs, scoringPasses)
}

func clientRoundCost(fwd, train float64, dev Device, localSize, selectedSize, epochs, scoringPasses int) (RoundCost, error) {
	if localSize < 0 || selectedSize < 0 || selectedSize > localSize || epochs < 0 || scoringPasses < 0 {
		return RoundCost{}, fmt.Errorf("%w: local=%d selected=%d epochs=%d passes=%d",
			ErrSim, localSize, selectedSize, epochs, scoringPasses)
	}
	if dev.FLOPSRate <= 0 {
		return RoundCost{}, fmt.Errorf("%w: device rate %v", ErrSim, dev.FLOPSRate)
	}
	return RoundCost{
		SelectionSeconds: float64(scoringPasses) * fwd * float64(localSize) / dev.FLOPSRate,
		TrainSeconds:     float64(epochs) * train * float64(selectedSize) / dev.FLOPSRate,
	}, nil
}

// StragglerPolicy decides which of the sampled clients actually complete a
// round.
type StragglerPolicy interface {
	// Complete returns the subset of clientIDs that finish the round, given
	// each client's projected round time in seconds (parallel to clientIDs).
	Complete(clientIDs []int, roundSeconds []float64, rng *rand.Rand) []int
}

// FullParticipation lets every sampled client finish.
type FullParticipation struct{}

var _ StragglerPolicy = FullParticipation{}

// Complete implements StragglerPolicy.
func (FullParticipation) Complete(clientIDs []int, _ []float64, _ *rand.Rand) []int {
	return append([]int(nil), clientIDs...)
}

// FractionParticipation keeps a uniform random fraction fn of clients each
// round, matching Table III's fn sweep. The rest are stragglers that drop.
type FractionParticipation struct {
	// Fraction is the participating share in (0, 1].
	Fraction float64
}

var _ StragglerPolicy = FractionParticipation{}

// Complete implements StragglerPolicy.
func (f FractionParticipation) Complete(clientIDs []int, _ []float64, rng *rand.Rand) []int {
	k := int(math.Round(f.Fraction * float64(len(clientIDs))))
	if k < 1 {
		k = 1
	}
	if k > len(clientIDs) {
		k = len(clientIDs)
	}
	perm := rng.Perm(len(clientIDs))
	out := make([]int, 0, k)
	for _, p := range perm[:k] {
		out = append(out, clientIDs[p])
	}
	return out
}

// DeadlineStraggler drops clients whose projected round time exceeds the
// deadline — the mechanism by which heavy workloads create stragglers. At
// least one client always survives (the fastest), so rounds cannot stall.
type DeadlineStraggler struct {
	// DeadlineSeconds is the per-round completion budget.
	DeadlineSeconds float64
}

var _ StragglerPolicy = DeadlineStraggler{}

// Complete implements StragglerPolicy.
func (d DeadlineStraggler) Complete(clientIDs []int, roundSeconds []float64, _ *rand.Rand) []int {
	var out []int
	fastest, fastestTime := -1, math.Inf(1)
	for i, id := range clientIDs {
		if roundSeconds[i] <= d.DeadlineSeconds {
			out = append(out, id)
		}
		if roundSeconds[i] < fastestTime {
			fastest, fastestTime = id, roundSeconds[i]
		}
	}
	if len(out) == 0 && fastest >= 0 {
		out = append(out, fastest)
	}
	return out
}

// Accountant accumulates simulated cost over a run.
type Accountant struct {
	totalSelectionSeconds float64
	totalTrainSeconds     float64
	totalUplinkBytes      int64
	totalDownlinkBytes    int64
}

// AddRound records one client's round cost.
func (a *Accountant) AddRound(c RoundCost) {
	a.totalSelectionSeconds += c.SelectionSeconds
	a.totalTrainSeconds += c.TrainSeconds
}

// AddCommunication records bytes moved for one client round.
func (a *Accountant) AddCommunication(uplink, downlink int64) {
	a.totalUplinkBytes += uplink
	a.totalDownlinkBytes += downlink
}

// TrainSeconds returns cumulative training seconds across all clients.
func (a *Accountant) TrainSeconds() float64 { return a.totalTrainSeconds }

// SelectionSeconds returns cumulative selection-scoring seconds.
func (a *Accountant) SelectionSeconds() float64 { return a.totalSelectionSeconds }

// TotalSeconds returns all client compute seconds.
func (a *Accountant) TotalSeconds() float64 {
	return a.totalTrainSeconds + a.totalSelectionSeconds
}

// UplinkBytes returns cumulative client→server bytes.
func (a *Accountant) UplinkBytes() int64 { return a.totalUplinkBytes }

// DownlinkBytes returns cumulative server→client bytes.
func (a *Accountant) DownlinkBytes() int64 { return a.totalDownlinkBytes }

// AccountantState is an Accountant's complete exported state. Restoring the
// exact float64 accumulator values (not recomputing them) keeps a resumed
// run's cost accounting bit-identical to an uninterrupted one: floating-point
// accumulation continues from the same representable values.
type AccountantState struct {
	// SelectionSeconds and TrainSeconds are the cumulative simulated
	// client-compute accumulators.
	SelectionSeconds, TrainSeconds float64
	// UplinkBytes and DownlinkBytes are the cumulative traffic volumes.
	UplinkBytes, DownlinkBytes int64
}

// State exports the accountant's accumulators for checkpointing.
func (a *Accountant) State() AccountantState {
	return AccountantState{
		SelectionSeconds: a.totalSelectionSeconds,
		TrainSeconds:     a.totalTrainSeconds,
		UplinkBytes:      a.totalUplinkBytes,
		DownlinkBytes:    a.totalDownlinkBytes,
	}
}

// Restore replaces the accountant's accumulators, reversing State.
func (a *Accountant) Restore(s AccountantState) {
	a.totalSelectionSeconds = s.SelectionSeconds
	a.totalTrainSeconds = s.TrainSeconds
	a.totalUplinkBytes = s.UplinkBytes
	a.totalDownlinkBytes = s.DownlinkBytes
}
