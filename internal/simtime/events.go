package simtime

import "container/heap"

// Event is one pending completion in simulated time: a client (or any
// actor, keyed by ID) finishing its in-flight work at Time.
type Event struct {
	// Time is the simulated completion instant, in seconds.
	Time float64
	// ID keys the actor; ties on Time pop in ascending ID order, so the
	// queue is deterministic for identical push sequences.
	ID int
}

// EventQueue is a deterministic min-queue over simulated time, the engine
// behind overlapping in-flight client updates in the buffered-asynchronous
// simulator: dispatches push completion events, the server loop pops the
// earliest. Earlier Time pops first; equal Times pop in ascending ID order.
// The zero value is an empty queue.
type EventQueue struct {
	h eventHeap
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Push adds one pending completion.
func (q *EventQueue) Push(e Event) { heap.Push(&q.h, e) }

// Pop removes and returns the earliest pending completion; ok is false on
// an empty queue.
func (q *EventQueue) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return heap.Pop(&q.h).(Event), true
}

// Peek returns the earliest pending completion without removing it; ok is
// false on an empty queue.
func (q *EventQueue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// eventHeap implements heap.Interface ordered by (Time, ID).
type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].Time != h[b].Time {
		return h[a].Time < h[b].Time
	}
	return h[a].ID < h[b].ID
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
