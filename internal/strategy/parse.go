package strategy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Names lists the flag-constructible strategy identifiers in display order.
func Names() []string {
	return []string{"fedavg", "fedprox", "fedavgm", "fedadam", "fedyogi"}
}

// Parse maps a CLI strategy spec to a Strategy. The spec is a name with
// optional comma-separated key=value parameters after a colon, e.g.
//
//	fedavg
//	fedprox:mu=0.1
//	fedavgm:lr=1,beta1=0.9
//	fedadam:lr=0.05,beta1=0.9,beta2=0.99,tau=0.001
//	fedyogi:lr=0.1
//
// Omitted parameters keep their defaults. The names are shared by
// `fedsim -strategy` and `fedserver -strategy`; each call constructs a
// fresh strategy (stateful server optimizers are never shared across runs).
func Parse(spec string) (Strategy, error) {
	name, rest, _ := strings.Cut(spec, ":")
	p, err := parseParams(name, rest)
	if err != nil {
		return nil, err
	}
	var s Strategy
	switch name {
	case "fedavg":
		s, err = FedAvg(), nil
	case "fedprox":
		s, err = FedProx(p.take("mu", DefaultProxMu))
	case "fedavgm":
		s, err = FedAvgM(p.take("lr", DefaultMomentumLR), p.take("beta1", DefaultBeta1))
	case "fedadam":
		s, err = FedAdam(p.take("lr", DefaultAdaptiveLR), p.take("beta1", DefaultBeta1),
			p.take("beta2", DefaultBeta2), p.take("tau", DefaultTau))
	case "fedyogi":
		s, err = FedYogi(p.take("lr", DefaultAdaptiveLR), p.take("beta1", DefaultBeta1),
			p.take("beta2", DefaultBeta2), p.take("tau", DefaultTau))
	default:
		return nil, fmt.Errorf("%w: unknown strategy %q (want one of %s)",
			ErrStrategy, name, strings.Join(Names(), ", "))
	}
	if err != nil {
		return nil, err
	}
	if err := p.drained(); err != nil {
		return nil, err
	}
	return s, nil
}

// params is a parsed parameter list that tracks which keys were consumed,
// so a typo ("beta=0.9" for "beta1") fails instead of silently keeping the
// default.
type params struct {
	name   string
	values map[string]float64
}

// parseParams splits "k1=v1,k2=v2" into float parameters.
func parseParams(name, rest string) (*params, error) {
	p := &params{name: name, values: make(map[string]float64)}
	if rest == "" {
		return p, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || key == "" {
			return nil, fmt.Errorf("%w: strategy %s: malformed parameter %q (want key=value)",
				ErrStrategy, name, kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: strategy %s: parameter %s=%q is not a number",
				ErrStrategy, name, key, val)
		}
		if _, dup := p.values[key]; dup {
			return nil, fmt.Errorf("%w: strategy %s: duplicate parameter %q", ErrStrategy, name, key)
		}
		p.values[key] = f
	}
	return p, nil
}

// take consumes a parameter, falling back to def.
func (p *params) take(key string, def float64) float64 {
	if v, ok := p.values[key]; ok {
		delete(p.values, key)
		return v
	}
	return def
}

// drained errors when unconsumed (unknown) parameters remain.
func (p *params) drained() error {
	if len(p.values) == 0 {
		return nil
	}
	keys := make([]string, 0, len(p.values))
	for k := range p.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Errorf("%w: strategy %s does not take parameter(s) %s",
		ErrStrategy, p.name, strings.Join(keys, ", "))
}
