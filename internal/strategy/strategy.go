// Package strategy decomposes the federated-optimization algorithm into a
// pluggable two-sided API, so the engines (the in-process simulator's
// core.Runner and the distributed comm.RoundEngine server) orchestrate
// rounds without hardcoding any particular algorithm.
//
// Server side, a Strategy owns how client updates are weighted
// (WeighUpdates, the former core.AggWeighting switch) and how their
// weighted average moves the global model (ApplyAggregate, delegating to a
// pluggable opt.ServerOpt — overwrite for FedAvg, momentum for FedAvgM,
// adaptive moments for FedAdam/FedYogi). Client side, an optional LocalHook
// carries the per-round local-objective twist (FedProx's proximal anchor)
// into the shared local-update primitive. Server optimizers live entirely
// on the server, so strategies change nothing on the wire.
//
// Strategies are named and flag-constructible ("fedadam:lr=0.05,beta1=0.9",
// see Parse), deterministic, and checkpointable: stateful strategies expose
// their optimizer state through the Stateful interface and their full
// configuration through Fingerprint, so a run checkpoint refuses to resume
// under an edited strategy.
package strategy

import (
	"errors"
	"fmt"

	"fedfteds/internal/opt"
	"fedfteds/internal/tensor"
)

// ErrStrategy reports an invalid strategy configuration.
var ErrStrategy = errors.New("strategy: invalid configuration")

// Update describes one client update for aggregation weighting. It carries
// only round metadata — the state tensors stay with the engine, which is
// what lets the distributed server weigh updates as they stream in.
type Update struct {
	// ClientID is the sender's federation index.
	ClientID int
	// NumSelected is |D_select|, the number of samples the client trained on.
	NumSelected int
	// LocalSize is |D_k|, the client's full local dataset size.
	LocalSize int
}

// Weighting selects the aggregation weights p_k, mirroring the legacy
// core.AggWeighting values.
type Weighting int

const (
	// WeightBySelected weights each client by |D_select| (paper Eq. 5).
	WeightBySelected Weighting = iota + 1
	// WeightByLocalSize weights each client by its full |D_k|.
	WeightByLocalSize
	// WeightUniform gives every participating client equal weight.
	WeightUniform
)

// String implements fmt.Stringer.
func (w Weighting) String() string {
	switch w {
	case WeightBySelected:
		return "selected"
	case WeightByLocalSize:
		return "local-size"
	case WeightUniform:
		return "uniform"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// LocalHook is the client-side half of a strategy: a per-round twist on the
// local objective, applied by both engines' local-update paths (the
// simulator's pooled replicas and the standalone LocalUpdate used by
// fedclient).
type LocalHook interface {
	// Name renders the hook canonically for fingerprints ("prox(mu=0.1)").
	Name() string
	// TuneSGD amends the client optimizer's configuration before it is
	// constructed (FedProx sets the proximal coefficient μ).
	TuneSGD(cfg *opt.SGDConfig)
	// OnBind runs once per local round, after the local model is bound to
	// the received global state and the optimizer reset, before training
	// (FedProx snapshots the proximal anchor here).
	OnBind(sgd *opt.SGD) error
}

// Strategy is the server-side algorithm plugin the engines orchestrate.
// Implementations must be deterministic: identical inputs yield bitwise
// identical outputs.
type Strategy interface {
	// Name is the strategy's CLI identifier ("fedavg", "fedadam", ...).
	Name() string
	// Fingerprint renders the complete configuration canonically (name,
	// server-optimizer parameters, weighting, hook). Checkpoints store it
	// and TagConfig hashes it, so resuming under an edited strategy is
	// refused rather than silently blended.
	Fingerprint() string
	// WeighUpdates fills w[i] with the aggregation weight of ups[i]; w and
	// ups are parallel. Weights must be non-negative with a positive sum
	// (the engine validates and normalizes).
	WeighUpdates(ups []Update, w []float64) error
	// ApplyAggregate folds the weighted client average into the global
	// tensors in place, through the strategy's server optimizer.
	ApplyAggregate(global, avg []*tensor.Tensor) error
	// LocalHook returns the client-side objective hook, nil when the local
	// objective is plain SGD.
	LocalHook() LocalHook
}

// MaskProvider is the optional strategy hook for per-client partial
// training: before each local round the engine proposes the layer mask a
// client's device tier affords, and the strategy may narrow or replace it.
// The engine aggregates each group only over the clients whose final mask
// contained it.
type MaskProvider interface {
	// MaskName renders the provider canonically for fingerprints; a strategy
	// with a provider refuses to resume checkpoints taken without one.
	MaskName() string
	// MaskFor returns the layer mask client clientID trains in round round,
	// given the engine's tier-derived proposal (bottom-to-top group order).
	// Returning nil keeps the proposal. A returned mask must be a non-empty
	// subset of the model's groups; implementations must be deterministic.
	MaskFor(round, clientID int, proposed []string) []string
}

// Stateful is implemented by strategies whose ApplyAggregate evolves
// server-optimizer state across rounds (FedAvgM's velocity, FedAdam's
// moments). A run checkpoint captures this state so a resumed run applies
// aggregates bit-identically to an uninterrupted one.
type Stateful interface {
	Strategy
	// StateTensors returns the live server-optimizer state in canonical
	// order (empty for fresh stateless members like fedavg).
	StateTensors() []*tensor.Tensor
	// RestoreStateTensors replaces the state from a StateTensors snapshot.
	RestoreStateTensors(ts []*tensor.Tensor) error
}

// Composite is the shipped Strategy implementation: a weighting rule, a
// server optimizer, and an optional local hook. All named strategies
// (fedavg, fedprox, fedavgm, fedadam, fedyogi) are Composite instances;
// callers needing a custom mix construct one with New.
type Composite struct {
	name      string
	weighting Weighting
	server    opt.ServerOpt
	hook      LocalHook
	masks     MaskProvider
}

var _ Stateful = (*Composite)(nil)

// New composes a strategy from its parts.
func New(name string, weighting Weighting, server opt.ServerOpt, hook LocalHook) (*Composite, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty strategy name", ErrStrategy)
	}
	switch weighting {
	case WeightBySelected, WeightByLocalSize, WeightUniform:
	default:
		return nil, fmt.Errorf("%w: aggregation weighting %v", ErrStrategy, weighting)
	}
	if server == nil {
		return nil, fmt.Errorf("%w: nil server optimizer", ErrStrategy)
	}
	return &Composite{name: name, weighting: weighting, server: server, hook: hook}, nil
}

// Name implements Strategy.
func (c *Composite) Name() string { return c.name }

// Fingerprint implements Strategy. The mask-provider part is appended only
// when one is set, so every pre-existing fingerprint (and the checkpoints
// hashing it) stays byte-identical.
func (c *Composite) Fingerprint() string {
	hook := ""
	if c.hook != nil {
		hook = c.hook.Name()
	}
	fp := fmt.Sprintf("%s{server=%s(%s),weight=%s,hook=%s}",
		c.name, c.server.Name(), c.server.Params(), c.weighting, hook)
	if c.masks != nil {
		fp += fmt.Sprintf("{masks=%s}", c.masks.MaskName())
	}
	return fp
}

// WithMaskProvider attaches a per-client mask hook, returning c for
// chaining.
func (c *Composite) WithMaskProvider(mp MaskProvider) *Composite {
	c.masks = mp
	return c
}

// MaskFor implements MaskProvider, delegating to the attached provider; with
// none attached the engine's tier proposal stands.
func (c *Composite) MaskFor(round, clientID int, proposed []string) []string {
	if c.masks == nil {
		return nil
	}
	return c.masks.MaskFor(round, clientID, proposed)
}

// MaskName implements MaskProvider.
func (c *Composite) MaskName() string {
	if c.masks == nil {
		return ""
	}
	return c.masks.MaskName()
}

// WeighUpdates implements Strategy, absorbing the legacy AggWeighting switch.
func (c *Composite) WeighUpdates(ups []Update, w []float64) error {
	if len(w) != len(ups) {
		return fmt.Errorf("%w: %d weights for %d updates", ErrStrategy, len(w), len(ups))
	}
	for i, u := range ups {
		switch c.weighting {
		case WeightBySelected:
			w[i] = float64(u.NumSelected)
		case WeightByLocalSize:
			w[i] = float64(u.LocalSize)
		case WeightUniform:
			w[i] = 1
		default:
			return fmt.Errorf("%w: aggregation weighting %v", ErrStrategy, c.weighting)
		}
	}
	return nil
}

// ApplyAggregate implements Strategy.
func (c *Composite) ApplyAggregate(global, avg []*tensor.Tensor) error {
	return c.server.Apply(global, avg)
}

// LocalHook implements Strategy.
func (c *Composite) LocalHook() LocalHook { return c.hook }

// StateTensors implements Stateful.
func (c *Composite) StateTensors() []*tensor.Tensor { return c.server.StateTensors() }

// RestoreStateTensors implements Stateful.
func (c *Composite) RestoreStateTensors(ts []*tensor.Tensor) error {
	return c.server.RestoreStateTensors(ts)
}

// Prox is the FedProx local hook: it sets the client optimizer's proximal
// coefficient μ and snapshots the received global state as the proximal
// anchor at every local-round bind, exactly what the pre-strategy engine
// hardcoded behind Config.ProxMu.
type Prox struct {
	// Mu is the proximal coefficient μ; must be positive.
	Mu float64
}

var _ LocalHook = Prox{}

// Name implements LocalHook.
func (p Prox) Name() string { return fmt.Sprintf("prox(mu=%g)", p.Mu) }

// TuneSGD implements LocalHook.
func (p Prox) TuneSGD(cfg *opt.SGDConfig) { cfg.ProxMu = p.Mu }

// OnBind implements LocalHook.
func (p Prox) OnBind(sgd *opt.SGD) error {
	sgd.SnapshotProxAnchor()
	return nil
}

// Default server-optimizer parameters, following the FedOpt reference
// settings (and lr = 1 for FedAvgM, whose β = 0 limit is plain FedAvg).
const (
	// DefaultProxMu is the FedProx proximal coefficient.
	DefaultProxMu = 0.1
	// DefaultMomentumLR is the FedAvgM server learning rate.
	DefaultMomentumLR = 1.0
	// DefaultAdaptiveLR is the FedAdam/FedYogi server learning rate.
	DefaultAdaptiveLR = 0.1
	// DefaultBeta1 and DefaultBeta2 are the moment decay rates.
	DefaultBeta1 = 0.9
	DefaultBeta2 = 0.99
	// DefaultTau is the adaptivity floor τ.
	DefaultTau = 1e-3
)

// FedAvg returns the default strategy: selected-size weighting, overwrite
// server, plain local SGD. The engines are pinned bit-identical to their
// pre-strategy behavior through it.
func FedAvg() *Composite {
	s, err := New("fedavg", WeightBySelected, opt.Overwrite{}, nil)
	if err != nil {
		panic(err) // fixed, valid composition
	}
	return s
}

// FedAvgWith is FedAvg with an explicit weighting and local hook — the
// composition core.Config's legacy AggWeighting/ProxMu fields map onto.
func FedAvgWith(weighting Weighting, hook LocalHook) (*Composite, error) {
	return New("fedavg", weighting, opt.Overwrite{}, hook)
}

// FedProx returns FedAvg with the proximal local hook.
func FedProx(mu float64) (*Composite, error) {
	if mu <= 0 {
		return nil, fmt.Errorf("%w: fedprox mu %v must be positive", ErrStrategy, mu)
	}
	return New("fedprox", WeightBySelected, opt.Overwrite{}, Prox{Mu: mu})
}

// FedAvgM returns the server-momentum strategy.
func FedAvgM(lr, beta1 float64) (*Composite, error) {
	srv, err := opt.NewServerMomentum(lr, beta1)
	if err != nil {
		return nil, fmt.Errorf("%w: fedavgm: %v", ErrStrategy, err)
	}
	return New("fedavgm", WeightBySelected, srv, nil)
}

// FedAdam returns the adaptive-moments strategy.
func FedAdam(lr, beta1, beta2, tau float64) (*Composite, error) {
	srv, err := opt.NewServerAdam(lr, beta1, beta2, tau, false)
	if err != nil {
		return nil, fmt.Errorf("%w: fedadam: %v", ErrStrategy, err)
	}
	return New("fedadam", WeightBySelected, srv, nil)
}

// FedYogi returns the Yogi-variant adaptive strategy, whose second-moment
// update is additive and therefore less sensitive to heavy-tailed
// pseudo-gradients than FedAdam's multiplicative one.
func FedYogi(lr, beta1, beta2, tau float64) (*Composite, error) {
	srv, err := opt.NewServerAdam(lr, beta1, beta2, tau, true)
	if err != nil {
		return nil, fmt.Errorf("%w: fedyogi: %v", ErrStrategy, err)
	}
	return New("fedyogi", WeightBySelected, srv, nil)
}

// IsDefault reports whether s is exactly the default FedAvg composition —
// the one configuration whose checkpoints interoperate with runs that never
// set a strategy at all.
func IsDefault(s Strategy) bool {
	return s != nil && s.Fingerprint() == FedAvg().Fingerprint()
}
