package strategy

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fedfteds/internal/opt"
	"fedfteds/internal/tensor"
)

// randomState builds a random tensor list with shapes drawn from rng.
func randomState(rng *rand.Rand) []*tensor.Tensor {
	n := 1 + rng.Intn(5)
	out := make([]*tensor.Tensor, n)
	for i := range out {
		var t *tensor.Tensor
		switch rng.Intn(3) {
		case 0:
			t = tensor.New(1 + rng.Intn(7))
		case 1:
			t = tensor.New(1+rng.Intn(5), 1+rng.Intn(5))
		default:
			t = tensor.New(1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3))
		}
		t.FillNormal(rng, 0, 1)
		out[i] = t
	}
	return out
}

// cloneState deep-copies a tensor list.
func cloneState(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// shippedSpecs is every flag-constructible strategy with its defaults.
var shippedSpecs = []string{"fedavg", "fedprox", "fedavgm", "fedadam", "fedyogi"}

// TestParseRoundTrip pins the flag syntax: every shipped name parses, keeps
// its short name, and renders a stable fingerprint that embeds the
// parameters.
func TestParseRoundTrip(t *testing.T) {
	for _, spec := range shippedSpecs {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if s.Name() != spec {
			t.Fatalf("Parse(%q).Name() = %q", spec, s.Name())
		}
		if s.Fingerprint() == "" {
			t.Fatalf("%s: empty fingerprint", spec)
		}
	}

	s, err := Parse("fedadam:lr=0.05,beta1=0.9")
	if err != nil {
		t.Fatal(err)
	}
	fp := s.Fingerprint()
	for _, want := range []string{"fedadam", "lr=0.05", "beta1=0.9", "beta2=0.99", "tau=0.001", "weight=selected"} {
		if !strings.Contains(fp, want) {
			t.Fatalf("fingerprint %q missing %q", fp, want)
		}
	}
	// Edited parameters must change the fingerprint (the resume refusal key).
	s2, err := Parse("fedadam:lr=0.1,beta1=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Fingerprint() == fp {
		t.Fatal("different lr, same fingerprint")
	}
	// Identical specs must agree bit for bit.
	s3, err := Parse("fedadam:lr=0.05,beta1=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if s3.Fingerprint() != fp {
		t.Fatal("same spec, different fingerprint")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",
		"sgd",
		"fedadam:lr",
		"fedadam:lr=abc",
		"fedadam:lr=0.1,lr=0.2",
		"fedadam:gamma=1",
		"fedavg:lr=1",
		"fedprox:mu=0",
		"fedprox:mu=-1",
		"fedavgm:lr=0",
		"fedavgm:beta1=1",
		"fedadam:beta2=1.5",
		"fedadam:tau=0",
	} {
		if _, err := Parse(spec); !errors.Is(err, ErrStrategy) {
			t.Fatalf("spec %q: got %v, want ErrStrategy", spec, err)
		}
	}
}

func TestIsDefault(t *testing.T) {
	if !IsDefault(FedAvg()) {
		t.Fatal("FedAvg() is not the default")
	}
	for _, spec := range []string{"fedprox", "fedavgm", "fedadam", "fedyogi"} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		if IsDefault(s) {
			t.Fatalf("%s claims to be the default", spec)
		}
	}
	if IsDefault(nil) {
		t.Fatal("nil claims to be the default")
	}
	nonDefaultWeighting, err := FedAvgWith(WeightUniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	if IsDefault(nonDefaultWeighting) {
		t.Fatal("uniform-weighted fedavg claims to be the default")
	}
}

// TestWeighUpdates pins the weighting rules the legacy AggWeighting switch
// implemented.
func TestWeighUpdates(t *testing.T) {
	ups := []Update{
		{ClientID: 0, NumSelected: 3, LocalSize: 10},
		{ClientID: 1, NumSelected: 7, LocalSize: 20},
	}
	w := make([]float64, 2)
	for _, tt := range []struct {
		weighting Weighting
		want      [2]float64
	}{
		{WeightBySelected, [2]float64{3, 7}},
		{WeightByLocalSize, [2]float64{10, 20}},
		{WeightUniform, [2]float64{1, 1}},
	} {
		s, err := FedAvgWith(tt.weighting, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WeighUpdates(ups, w); err != nil {
			t.Fatal(err)
		}
		if w[0] != tt.want[0] || w[1] != tt.want[1] {
			t.Fatalf("%v: got %v, want %v", tt.weighting, w, tt.want)
		}
	}
	s := FedAvg()
	if err := s.WeighUpdates(ups, w[:1]); err == nil {
		t.Fatal("mismatched weight slice accepted")
	}
}

// TestApplyAggregateProperties is the shipped-strategy property test: for
// random shapes and seeds, ApplyAggregate preserves every tensor shape, is
// deterministic for a fixed seed (two fresh strategies fed the same
// sequence agree bit for bit), and fedavg reproduces plain averaging
// exactly.
func TestApplyAggregateProperties(t *testing.T) {
	for _, spec := range shippedSpecs {
		t.Run(spec, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				seed := int64(1000*trial + 7)
				rng := rand.New(rand.NewSource(seed))
				global := randomState(rng)
				rounds := 1 + rng.Intn(4)
				avgs := make([][]*tensor.Tensor, rounds)
				for r := range avgs {
					avgs[r] = make([]*tensor.Tensor, len(global))
					for i, g := range global {
						a := tensor.New(g.Shape()...)
						a.FillNormal(rng, 0, 1)
						avgs[r][i] = a
					}
				}

				run := func() []*tensor.Tensor {
					s, err := Parse(spec)
					if err != nil {
						t.Fatal(err)
					}
					st := cloneState(global)
					for r := 0; r < rounds; r++ {
						if err := s.ApplyAggregate(st, avgs[r]); err != nil {
							t.Fatalf("trial %d round %d: %v", trial, r, err)
						}
					}
					return st
				}
				a, b := run(), run()
				for i := range a {
					if !a[i].SameShape(global[i]) {
						t.Fatalf("trial %d: tensor %d shape %v, want %v",
							trial, i, a[i].Shape(), global[i].Shape())
					}
					if !a[i].Equal(b[i]) {
						t.Fatalf("trial %d: nondeterministic aggregate at tensor %d", trial, i)
					}
					if spec == "fedavg" || spec == "fedprox" {
						// The overwrite server must reproduce the plain
						// average of the last round exactly.
						if !a[i].Equal(avgs[rounds-1][i]) {
							t.Fatalf("trial %d: %s tensor %d is not the plain average", trial, spec, i)
						}
					}
				}
			}
		})
	}
}

// TestFedAdamOneStepReference pins fedadam's first ApplyAggregate against a
// hand-computed reference: with w = [2], avg = [1], lr = 0.5, β₁ = 0.5,
// β₂ = 0.75, τ = 0.1 and zero-initialized moments,
//
//	g  = 2 − 1            = 1
//	m  = 0.5·0 + 0.5·1    = 0.5
//	v  = 0.75·0 + 0.25·1  = 0.25
//	w' = 2 − 0.5·0.5/(√0.25 + 0.1) = 2 − 0.25/0.6 = 2 − 5/12
func TestFedAdamOneStepReference(t *testing.T) {
	s, err := FedAdam(0.5, 0.5, 0.75, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	global := []*tensor.Tensor{tensor.New(1)}
	global[0].Data()[0] = 2
	avg := []*tensor.Tensor{tensor.New(1)}
	avg[0].Data()[0] = 1
	if err := s.ApplyAggregate(global, avg); err != nil {
		t.Fatal(err)
	}
	want := float32(2) - float32(0.5)*float32(0.5)/(float32(math.Sqrt(0.25))+float32(0.1))
	if got := global[0].Data()[0]; got != want {
		t.Fatalf("fedadam one-step output %v, want %v", got, want)
	}

	// And the same setting under yogi: v starts at 0, so
	// v' = 0 − 0.25·g²·sign(0 − g²) = +0.25 — identical to adam here.
	y, err := FedYogi(0.5, 0.5, 0.75, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	global[0].Data()[0] = 2
	if err := y.ApplyAggregate(global, avg); err != nil {
		t.Fatal(err)
	}
	if got := global[0].Data()[0]; got != want {
		t.Fatalf("fedyogi one-step output %v, want %v", got, want)
	}
}

// TestFedAvgMOneStepReference pins server momentum: lr = 1, β = 0 must
// reproduce the overwrite exactly, and β > 0 accumulates velocity.
func TestFedAvgMOneStepReference(t *testing.T) {
	s, err := FedAvgM(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	global := []*tensor.Tensor{tensor.New(2)}
	copy(global[0].Data(), []float32{3, -1})
	avg := []*tensor.Tensor{tensor.New(2)}
	copy(avg[0].Data(), []float32{1, 1})
	if err := s.ApplyAggregate(global, avg); err != nil {
		t.Fatal(err)
	}
	if d := global[0].Data(); d[0] != 1 || d[1] != 1 {
		t.Fatalf("lr=1, beta=0 did not overwrite: %v", d)
	}

	// Two identical pseudo-gradients under β = 0.5: v₁ = g, v₂ = 1.5·g.
	m, err := FedAvgM(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// w₀=4, avg=3 ⇒ g=1, v=1, w=3; then avg=2 ⇒ g=1, v=1.5, w=1.5.
	g2 := []*tensor.Tensor{tensor.New(1)}
	g2[0].Data()[0] = 4
	avg1 := []*tensor.Tensor{tensor.New(1)}
	avg1[0].Data()[0] = 3
	if err := m.ApplyAggregate(g2, avg1); err != nil {
		t.Fatal(err)
	}
	if got := g2[0].Data()[0]; got != 3 {
		t.Fatalf("after round 1: %v, want 3", got)
	}
	avg2 := []*tensor.Tensor{tensor.New(1)}
	avg2[0].Data()[0] = 2
	if err := m.ApplyAggregate(g2, avg2); err != nil {
		t.Fatal(err)
	}
	if got := g2[0].Data()[0]; got != 1.5 {
		t.Fatalf("after round 2: %v, want 1.5", got)
	}
}

// TestStatefulRoundTrip pins the checkpoint contract: StateTensors after a
// few rounds restores into a fresh strategy that then continues
// bit-identically — including a restore before the fresh strategy ever saw
// the model shapes (the warm-start path).
func TestStatefulRoundTrip(t *testing.T) {
	for _, spec := range []string{"fedavgm", "fedadam", "fedyogi"} {
		t.Run(spec, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			global := randomState(rng)
			mkAvg := func() []*tensor.Tensor {
				out := make([]*tensor.Tensor, len(global))
				for i, g := range global {
					a := tensor.New(g.Shape()...)
					a.FillNormal(rng, 0, 1)
					out[i] = a
				}
				return out
			}
			avgs := [][]*tensor.Tensor{mkAvg(), mkAvg(), mkAvg()}

			full, err := Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			fullState := cloneState(global)
			if err := full.ApplyAggregate(fullState, avgs[0]); err != nil {
				t.Fatal(err)
			}
			snapshotModel := cloneState(fullState)
			snap := cloneState(full.(Stateful).StateTensors())
			if len(snap) == 0 {
				t.Fatalf("%s: no state after one aggregate", spec)
			}
			for _, a := range avgs[1:] {
				if err := full.ApplyAggregate(fullState, a); err != nil {
					t.Fatal(err)
				}
			}

			resumed, err := Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.(Stateful).RestoreStateTensors(snap); err != nil {
				t.Fatal(err)
			}
			resumedState := snapshotModel
			for _, a := range avgs[1:] {
				if err := resumed.ApplyAggregate(resumedState, a); err != nil {
					t.Fatal(err)
				}
			}
			for i := range fullState {
				if !fullState[i].Equal(resumedState[i]) {
					t.Fatalf("%s: resumed aggregate diverged at tensor %d", spec, i)
				}
			}

			// A wrong-shaped restore is refused at the next apply.
			bad, err := Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := bad.(Stateful).RestoreStateTensors(snap[:len(snap)-1]); err == nil {
				if err := bad.ApplyAggregate(cloneState(global), avgs[0]); err == nil {
					t.Fatal("truncated state accepted")
				}
			}
		})
	}
}

// TestProxHook pins the FedProx local hook: it tunes μ into the optimizer
// configuration and snapshots the proximal anchor at bind.
func TestProxHook(t *testing.T) {
	s, err := Parse("fedprox:mu=0.25")
	if err != nil {
		t.Fatal(err)
	}
	hook := s.LocalHook()
	if hook == nil {
		t.Fatal("fedprox has no local hook")
	}
	cfg := opt.SGDConfig{LR: 0.1}
	hook.TuneSGD(&cfg)
	if cfg.ProxMu != 0.25 {
		t.Fatalf("hook tuned ProxMu to %v", cfg.ProxMu)
	}
	for _, other := range []string{"fedavg", "fedavgm", "fedadam", "fedyogi"} {
		o, err := Parse(other)
		if err != nil {
			t.Fatal(err)
		}
		if o.LocalHook() != nil {
			t.Fatalf("%s unexpectedly carries a local hook", other)
		}
	}
}

// TestNewValidation covers the composite constructor's refusals.
func TestNewValidation(t *testing.T) {
	if _, err := New("", WeightBySelected, opt.Overwrite{}, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New("x", Weighting(0), opt.Overwrite{}, nil); err == nil {
		t.Fatal("invalid weighting accepted")
	}
	if _, err := New("x", WeightBySelected, nil, nil); err == nil {
		t.Fatal("nil server optimizer accepted")
	}
}
