package strategy

import (
	"fmt"
	"math"
	"strings"
)

// StalenessWeigher discounts a buffered-asynchronous update by its
// staleness s — how many aggregations the global model advanced while the
// client trained. Weight must return a multiplier in (0, 1] for every
// s >= 0 and 1 at s == 0, so a fresh update is never discounted and the
// synchronous special case (every staleness zero) is arithmetically exact.
type StalenessWeigher interface {
	// Name identifies the weigher for logs and config fingerprints.
	Name() string
	// Weight returns λ(s), the multiplicative discount for staleness s.
	Weight(staleness int) float64
}

// StalenessNames lists the flag-constructible staleness weigher
// identifiers in display order.
func StalenessNames() []string {
	return []string{"identity", "invsqrt", "poly"}
}

// identityWeigher never discounts: λ(s) = 1. It is the synchronous
// equivalence anchor — buffered mode with a full-federation buffer and this
// weigher reproduces the synchronous engine bit for bit.
type identityWeigher struct{}

func (identityWeigher) Name() string         { return "identity" }
func (identityWeigher) Weight(_ int) float64 { return 1 }

// IdentityStaleness returns the no-discount weigher.
func IdentityStaleness() StalenessWeigher { return identityWeigher{} }

// polyWeigher implements λ(s) = (1+s)^(-alpha), the polynomial family from
// the FedBuff line of work; alpha = 0.5 is the canonical 1/sqrt(1+s).
type polyWeigher struct {
	name  string
	alpha float64
}

func (p polyWeigher) Name() string { return p.name }
func (p polyWeigher) Weight(s int) float64 {
	if s <= 0 {
		return 1
	}
	return math.Pow(1+float64(s), -p.alpha)
}

// DefaultStalenessAlpha is the polynomial exponent of the default
// inverse-square-root discount.
const DefaultStalenessAlpha = 0.5

// InvSqrtStaleness returns the default discount λ(s) = 1/sqrt(1+s).
func InvSqrtStaleness() StalenessWeigher {
	return polyWeigher{name: "invsqrt", alpha: DefaultStalenessAlpha}
}

// PolyStaleness returns λ(s) = (1+s)^(-alpha). alpha must be positive (use
// IdentityStaleness for no discount).
func PolyStaleness(alpha float64) (StalenessWeigher, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("%w: poly staleness exponent alpha=%v, need > 0", ErrStrategy, alpha)
	}
	return polyWeigher{name: fmt.Sprintf("poly:alpha=%v", alpha), alpha: alpha}, nil
}

// ParseStaleness maps a CLI staleness spec to a weigher, mirroring Parse:
//
//	identity
//	invsqrt
//	poly:alpha=1
//
// The empty spec means the default, invsqrt.
func ParseStaleness(spec string) (StalenessWeigher, error) {
	if spec == "" {
		return InvSqrtStaleness(), nil
	}
	name, rest, _ := strings.Cut(spec, ":")
	p, err := parseParams(name, rest)
	if err != nil {
		return nil, err
	}
	var w StalenessWeigher
	switch name {
	case "identity":
		w = IdentityStaleness()
	case "invsqrt":
		w = InvSqrtStaleness()
	case "poly":
		w, err = PolyStaleness(p.take("alpha", DefaultStalenessAlpha))
	default:
		return nil, fmt.Errorf("%w: unknown staleness weigher %q (want one of %s)",
			ErrStrategy, name, strings.Join(StalenessNames(), ", "))
	}
	if err != nil {
		return nil, err
	}
	if err := p.drained(); err != nil {
		return nil, err
	}
	return w, nil
}
