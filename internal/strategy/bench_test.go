package strategy

import (
	"testing"

	"fedfteds/internal/models"
	"fedfteds/internal/tensor"
)

// wrnState builds the WRN-10-1 communicated state (the trainable groups'
// tensors) plus a matching aggregate, the realistic ApplyAggregate workload.
func wrnState(b *testing.B) (global, avg []*tensor.Tensor) {
	b.Helper()
	m, err := models.Build(models.Spec{
		Arch:        models.ArchWRN,
		InputShape:  []int{3, 16, 16},
		NumClasses:  10,
		Depth:       10,
		WidthFactor: 1,
		InitSeed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	global, err = m.GroupStateTensors(m.TrainableGroupNames())
	if err != nil {
		b.Fatal(err)
	}
	avg = make([]*tensor.Tensor, len(global))
	for i, g := range global {
		avg[i] = g.Clone()
		avg[i].Scale(0.99)
	}
	return global, avg
}

// BenchmarkApplyAggregateWRN measures each server optimizer's aggregate
// application on the WRN state size. CI gates the -benchmem allocation
// count: after the first call sizes the optimizer state, ApplyAggregate
// must not allocate.
func BenchmarkApplyAggregateWRN(b *testing.B) {
	for _, spec := range shippedSpecs {
		b.Run(spec, func(b *testing.B) {
			global, avg := wrnState(b)
			s, err := Parse(spec)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.ApplyAggregate(global, avg); err != nil { // size the state
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.ApplyAggregate(global, avg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWeighUpdatesLargeCohort measures the weighting pass at fleet
// scale (N = 1e5 updates), mirroring the sched package's cohort benchmarks.
func BenchmarkWeighUpdatesLargeCohort(b *testing.B) {
	const n = 100_000
	ups := make([]Update, n)
	for i := range ups {
		ups[i] = Update{ClientID: i, NumSelected: 1 + i%37, LocalSize: 1 + i%101}
	}
	w := make([]float64, n)
	s := FedAvg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WeighUpdates(ups, w); err != nil {
			b.Fatal(err)
		}
	}
}
