// Package metrics implements the evaluation metrics reported in the paper:
// top-1/top-k accuracy, confusion matrices, linear Centered Kernel Alignment
// (CKA) between model representations, entropy histograms, and the paper's
// learning-efficiency metric (best accuracy per unit of client training
// time).
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/tensor"
)

// ErrMetrics reports an invalid metrics computation.
var ErrMetrics = errors.New("metrics: invalid input")

// evalBatchSize is the batch size used for evaluation forward passes.
const evalBatchSize = 128

// Accuracy returns top-1 accuracy of m on ds in [0, 1].
func Accuracy(m *models.Model, ds *data.Dataset) (float64, error) {
	return TopKAccuracy(m, ds, 1)
}

// TopKAccuracy returns the fraction of samples whose true label is within
// the k highest-scoring predictions.
func TopKAccuracy(m *models.Model, ds *data.Dataset, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("%w: k=%d", ErrMetrics, k)
	}
	if ds.Len() == 0 {
		return 0, fmt.Errorf("%w: empty dataset", ErrMetrics)
	}
	batches, err := ds.Batches(evalBatchSize, nil)
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, b := range batches {
		logits := m.Forward(b.X, false)
		n, c := logits.Dim(0), logits.Dim(1)
		if k > c {
			return 0, fmt.Errorf("%w: k=%d for %d classes", ErrMetrics, k, c)
		}
		for i := 0; i < n; i++ {
			row := logits.Data()[i*c : (i+1)*c]
			trueScore := row[b.Y[i]]
			// A NaN score compares false against everything, which would
			// leave rank at 0 and count the sample as a top-1 hit; a model
			// emitting NaN must score as wrong, not perfect.
			if math.IsNaN(float64(trueScore)) {
				continue
			}
			rank := 0
			for j, v := range row {
				if v > trueScore || (v == trueScore && j < b.Y[i]) {
					rank++
				}
			}
			if rank < k {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// ConfusionMatrix returns counts[trueClass][predictedClass].
func ConfusionMatrix(m *models.Model, ds *data.Dataset) ([][]int, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrMetrics)
	}
	cm := make([][]int, ds.NumClasses)
	for i := range cm {
		cm[i] = make([]int, ds.NumClasses)
	}
	batches, err := ds.Batches(evalBatchSize, nil)
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		logits := m.Forward(b.X, false)
		n := logits.Dim(0)
		for i := 0; i < n; i++ {
			pred, _ := logits.Row(i).MaxIndex()
			cm[b.Y[i]][pred]++
		}
	}
	return cm, nil
}

// LinearCKA computes the linear Centered Kernel Alignment between two
// representation matrices X (n×p) and Y (n×q) over the same n examples
// (Kornblith et al. 2019):
//
//	CKA(X, Y) = ‖Yᶜᵀ Xᶜ‖²_F / (‖Xᶜᵀ Xᶜ‖_F · ‖Yᶜᵀ Yᶜ‖_F)
//
// where ᶜ denotes column centering. The result is in [0, 1]; 1 means the
// representations are identical up to isotropic scaling and rotation.
func LinearCKA(x, y *tensor.Tensor) (float64, error) {
	if x.Rank() != 2 || y.Rank() != 2 {
		return 0, fmt.Errorf("%w: CKA wants rank-2, got %v and %v", ErrMetrics, x.Shape(), y.Shape())
	}
	n := x.Dim(0)
	if y.Dim(0) != n || n < 2 {
		return 0, fmt.Errorf("%w: CKA rows %d vs %d", ErrMetrics, n, y.Dim(0))
	}
	xc := centerColumns(x)
	yc := centerColumns(y)
	cross := frobTransProduct(yc, xc) // ‖Ycᵀ Xc‖²_F
	xx := frobTransProduct(xc, xc)    // ‖Xcᵀ Xc‖²_F
	yy := frobTransProduct(yc, yc)    // ‖Ycᵀ Yc‖²_F
	denom := math.Sqrt(xx) * math.Sqrt(yy)
	if denom == 0 {
		return 0, fmt.Errorf("%w: CKA on constant representations", ErrMetrics)
	}
	return cross / denom, nil
}

// centerColumns returns a float64 copy of t with column means removed,
// stored row-major as [][]float64 for precision.
func centerColumns(t *tensor.Tensor) [][]float64 {
	n, p := t.Dim(0), t.Dim(1)
	out := make([][]float64, n)
	means := make([]float64, p)
	for i := 0; i < n; i++ {
		row := t.Data()[i*p : (i+1)*p]
		for j, v := range row {
			means[j] += float64(v)
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := t.Data()[i*p : (i+1)*p]
		o := make([]float64, p)
		for j, v := range row {
			o[j] = float64(v) - means[j]
		}
		out[i] = o
	}
	return out
}

// frobTransProduct computes ‖Aᵀ B‖²_F for row-major A (n×p), B (n×q) without
// materializing the p×q product: Σ_{j,k} (Σ_i A[i][j]·B[i][k])² is computed
// via the Gram identity ‖AᵀB‖²_F = Σ_{i,i'} (A_i·A_{i'})(B_i·B_{i'}).
func frobTransProduct(a, b [][]float64) float64 {
	n := len(a)
	// Gram matrices are n×n; n is the (small) evaluation batch count.
	ga := make([][]float64, n)
	gb := make([][]float64, n)
	for i := 0; i < n; i++ {
		ga[i] = make([]float64, n)
		gb[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			var sa, sb float64
			for k := range a[i] {
				sa += a[i][k] * a[j][k]
			}
			for k := range b[i] {
				sb += b[i][k] * b[j][k]
			}
			ga[i][j] = sa
			gb[i][j] = sb
		}
	}
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := ga[i][j] * gb[i][j]
			if i == j {
				total += v
			} else {
				total += 2 * v
			}
		}
	}
	return total
}

// PairwiseCKA computes the symmetric matrix of LinearCKA values between the
// representations in reps (each n×p over the same samples).
func PairwiseCKA(reps []*tensor.Tensor) ([][]float64, error) {
	k := len(reps)
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, k)
		out[i][i] = 1
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			v, err := LinearCKA(reps[i], reps[j])
			if err != nil {
				return nil, fmt.Errorf("metrics: CKA(%d,%d): %w", i, j, err)
			}
			out[i][j] = v
			out[j][i] = v
		}
	}
	return out, nil
}

// MeanOffDiagonal averages the off-diagonal entries of a square matrix —
// the paper's "averaged CKA similarity" (Fig. 4).
func MeanOffDiagonal(m [][]float64) float64 {
	k := len(m)
	if k < 2 {
		return 0
	}
	var sum float64
	var cnt int
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				sum += m[i][j]
				cnt++
			}
		}
	}
	return sum / float64(cnt)
}

// Histogram bins values into bins equal-width buckets over [lo, hi]; values
// outside clamp to the edge buckets. It returns the counts.
func Histogram(values []float64, bins int, lo, hi float64) ([]int, error) {
	if bins <= 0 || hi <= lo {
		return nil, fmt.Errorf("%w: histogram bins=%d range [%v,%v]", ErrMetrics, bins, lo, hi)
	}
	out := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, v := range values {
		b := int((v - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		out[b]++
	}
	return out, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of values using linear
// interpolation. It copies and sorts internally.
func Quantile(values []float64, q float64) (float64, error) {
	if len(values) == 0 || q < 0 || q > 1 {
		return 0, fmt.Errorf("%w: quantile q=%v over %d values", ErrMetrics, q, len(values))
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// LearningEfficiency is the paper's metric: best test accuracy (percent)
// divided by total client training time (seconds). Higher is better.
func LearningEfficiency(bestAccuracy float64, totalTrainSeconds float64) (float64, error) {
	if totalTrainSeconds <= 0 {
		return 0, fmt.Errorf("%w: training time %v", ErrMetrics, totalTrainSeconds)
	}
	return 100 * bestAccuracy / totalTrainSeconds, nil
}
