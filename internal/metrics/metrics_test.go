package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/tensor"
)

func testModel(t *testing.T, seed int64) *models.Model {
	t.Helper()
	m, err := models.Build(models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{6},
		NumClasses: 3,
		Hidden:     12,
		InitSeed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testDataset(t *testing.T, n int) *data.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(n, 6)
	x.FillNormal(rng, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = i % 3
	}
	ds, err := data.NewDataset(x, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAccuracyBounds(t *testing.T) {
	m := testModel(t, 1)
	ds := testDataset(t, 60)
	acc, err := Accuracy(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v outside [0,1]", acc)
	}
}

func TestTopKAccuracyMonotone(t *testing.T) {
	m := testModel(t, 2)
	ds := testDataset(t, 60)
	a1, err := TopKAccuracy(m, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := TopKAccuracy(m, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := TopKAccuracy(m, ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(a1 <= a2 && a2 <= a3) {
		t.Fatalf("top-k accuracy not monotone: %v %v %v", a1, a2, a3)
	}
	if a3 != 1 {
		t.Fatalf("top-C accuracy %v, want 1", a3)
	}
}

func TestTopKValidation(t *testing.T) {
	m := testModel(t, 3)
	ds := testDataset(t, 10)
	if _, err := TopKAccuracy(m, ds, 0); !errors.Is(err, ErrMetrics) {
		t.Fatalf("expected ErrMetrics for k=0, got %v", err)
	}
	if _, err := TopKAccuracy(m, ds, 7); !errors.Is(err, ErrMetrics) {
		t.Fatalf("expected ErrMetrics for k>C, got %v", err)
	}
}

func TestConfusionMatrixRowSums(t *testing.T) {
	m := testModel(t, 4)
	ds := testDataset(t, 30)
	cm, err := ConfusionMatrix(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	hist := ds.ClassHistogram()
	for c, row := range cm {
		var sum int
		for _, v := range row {
			sum += v
		}
		if sum != hist[c] {
			t.Fatalf("confusion row %d sums to %d, want %d", c, sum, hist[c])
		}
	}
}

func TestCKASelfSimilarityIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(20, 8)
	x.FillNormal(rng, 0, 1)
	v, err := LinearCKA(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Fatalf("CKA(X,X) = %v, want 1", v)
	}
}

func TestCKAInvariantToIsotropicScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(15, 5)
	y := tensor.New(15, 7)
	x.FillNormal(rng, 0, 1)
	y.FillNormal(rng, 0, 1)
	v1, err := LinearCKA(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ys := y.Clone()
	ys.Scale(3.7)
	v2, err := LinearCKA(x, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-9 {
		t.Fatalf("CKA changed under scaling: %v vs %v", v1, v2)
	}
}

func TestCKASymmetricAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.New(12, 4)
	y := tensor.New(12, 9)
	x.FillNormal(rng, 0, 1)
	y.FillNormal(rng, 0, 1)
	xy, err := LinearCKA(x, y)
	if err != nil {
		t.Fatal(err)
	}
	yx, err := LinearCKA(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xy-yx) > 1e-9 {
		t.Fatalf("CKA asymmetric: %v vs %v", xy, yx)
	}
	if xy < 0 || xy > 1+1e-9 {
		t.Fatalf("CKA %v outside [0,1]", xy)
	}
}

func TestCKADetectsSharedStructure(t *testing.T) {
	// Y = X @ R (random rotation/mixing) has CKA(X, Y) near 1; independent
	// noise has much lower CKA.
	rng := rand.New(rand.NewSource(8))
	x := tensor.New(30, 6)
	x.FillNormal(rng, 0, 1)
	r := tensor.New(6, 6)
	r.FillNormal(rng, 0, 1)
	y, err := tensor.MatMulNew(x, r)
	if err != nil {
		t.Fatal(err)
	}
	related, err := LinearCKA(x, y)
	if err != nil {
		t.Fatal(err)
	}
	noise := tensor.New(30, 6)
	noise.FillNormal(rng, 0, 1)
	unrelated, err := LinearCKA(x, noise)
	if err != nil {
		t.Fatal(err)
	}
	if related <= unrelated {
		t.Fatalf("CKA related %v <= unrelated %v", related, unrelated)
	}
	if related < 0.5 {
		t.Fatalf("CKA of linearly related representations %v, want high", related)
	}
}

func TestCKAValidation(t *testing.T) {
	x := tensor.New(5, 3)
	y := tensor.New(6, 3)
	if _, err := LinearCKA(x, y); !errors.Is(err, ErrMetrics) {
		t.Fatalf("expected ErrMetrics for row mismatch, got %v", err)
	}
	constant := tensor.New(5, 3) // all zeros → centered to zero
	if _, err := LinearCKA(constant, constant); !errors.Is(err, ErrMetrics) {
		t.Fatalf("expected ErrMetrics for constant reps, got %v", err)
	}
}

func TestPairwiseCKAMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	reps := make([]*tensor.Tensor, 4)
	for i := range reps {
		r := tensor.New(10, 5)
		r.FillNormal(rng, 0, 1)
		reps[i] = r
	}
	m, err := PairwiseCKA(reps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Fatalf("diagonal [%d] = %v", i, m[i][i])
		}
		for j := range m {
			if math.Abs(m[i][j]-m[j][i]) > 1e-12 {
				t.Fatal("pairwise CKA not symmetric")
			}
		}
	}
	if mo := MeanOffDiagonal(m); mo <= 0 || mo >= 1 {
		t.Fatalf("mean off-diagonal %v implausible for random reps", mo)
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{0.05, 0.15, 0.15, 0.95, -1, 2}
	h, err := Histogram(vals, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 2 { // 0.05 and clamped -1
		t.Fatalf("bin 0 = %d, want 2", h[0])
	}
	if h[1] != 2 {
		t.Fatalf("bin 1 = %d, want 2", h[1])
	}
	if h[9] != 2 { // 0.95 and clamped 2
		t.Fatalf("bin 9 = %d, want 2", h[9])
	}
	if _, err := Histogram(vals, 0, 0, 1); !errors.Is(err, ErrMetrics) {
		t.Fatalf("expected ErrMetrics, got %v", err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	q, err := Quantile(vals, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 3 {
		t.Fatalf("median %v, want 3", q)
	}
	q0, err := Quantile(vals, 0)
	if err != nil || q0 != 1 {
		t.Fatalf("q0 = %v, %v", q0, err)
	}
	q1, err := Quantile(vals, 1)
	if err != nil || q1 != 5 {
		t.Fatalf("q1 = %v, %v", q1, err)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrMetrics) {
		t.Fatalf("expected ErrMetrics, got %v", err)
	}
}

func TestLearningEfficiency(t *testing.T) {
	e, err := LearningEfficiency(0.8, 400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.2) > 1e-12 {
		t.Fatalf("efficiency %v, want 0.2 %%/s", e)
	}
	if _, err := LearningEfficiency(0.8, 0); !errors.Is(err, ErrMetrics) {
		t.Fatalf("expected ErrMetrics, got %v", err)
	}
}
