package comm

import (
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"fedfteds/internal/tensor"
)

// ErrQuorum reports a round that finished with fewer client updates than
// the configured quorum requires.
var ErrQuorum = errors.New("comm: quorum not met")

// EngineConfig tunes the fault tolerance of a RoundEngine.
type EngineConfig struct {
	// RoundDeadline bounds one full round per client: the broadcast write
	// and the update read must both finish inside it. A client that blows
	// the deadline is dropped for the round but keeps its connection and
	// may rejoin at the next round. Zero means no deadline: the engine
	// waits indefinitely (a hung client then blocks the round, as the
	// plain ServerSession.RunRound always did).
	RoundDeadline time.Duration
	// Quorum is the fraction of the round's live clients, in (0, 1], whose
	// updates must arrive for the round to succeed. Zero defaults to 1
	// (every live client must report) unless MinUpdates is set, in which
	// case the absolute floor alone is the requirement. At least one update
	// is always required.
	Quorum float64
	// MinUpdates is an absolute floor on folded updates per round: alone
	// (Quorum zero) it is the requirement itself, otherwise it compounds the
	// fractional Quorum. Unlike the fraction it is NOT clamped to the
	// round's client count: a floor the cohort can never meet fails the
	// round explicitly instead of silently deadlining forever, and fedserver
	// rejects such configurations at startup.
	MinUpdates int
}

// Validate checks the configuration bounds.
func (c EngineConfig) Validate() error {
	if c.Quorum < 0 || c.Quorum > 1 {
		return fmt.Errorf("%w: quorum %v outside [0, 1]", ErrProtocol, c.Quorum)
	}
	if c.MinUpdates < 0 {
		return fmt.Errorf("%w: negative min updates %d", ErrProtocol, c.MinUpdates)
	}
	if c.RoundDeadline < 0 {
		return fmt.Errorf("%w: negative round deadline %v", ErrProtocol, c.RoundDeadline)
	}
	return nil
}

// RoundEngine drives fault-tolerant federated rounds over a ServerSession.
// It broadcasts concurrently, bounds each round with a deadline, folds
// updates into the caller's aggregate as they arrive (O(state) server
// memory, decode overlapped with network wait), and completes the round as
// long as a quorum of clients reported.
//
// Failed clients fall in two classes, mirroring the straggler semantics of
// the in-process simulator (internal/simtime): a deadline timeout is a
// straggler — it is dropped for the round but stays registered and may
// rejoin at the next round (its stale update is discarded by the round
// check) — while a connection or protocol error is a crash: the connection
// is closed and the client leaves the federation for good.
type RoundEngine struct {
	sess *ServerSession
	cfg  EngineConfig
}

// NewRoundEngine validates the configuration and wraps a session.
func NewRoundEngine(sess *ServerSession, cfg EngineConfig) (*RoundEngine, error) {
	if sess == nil {
		return nil, fmt.Errorf("%w: nil session", ErrProtocol)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RoundEngine{sess: sess, cfg: cfg}, nil
}

// RoundOutcome reports one round's participation, the distributed analogue
// of the simulator's per-round participant count.
type RoundOutcome struct {
	// Round is the 1-based round index.
	Round int
	// Reported lists the clients whose updates were folded, ascending.
	Reported []int
	// TimedOut lists clients dropped at the deadline; they stay registered
	// and may rejoin at the next round.
	TimedOut []int
	// Dropped lists clients removed from the federation (dead connection,
	// protocol violation, or a rejected update).
	Dropped []int
	// LateDiscarded counts stale updates from earlier rounds that were
	// received and discarded during this round.
	LateDiscarded int
	// Failures maps each failed client to its error.
	Failures map[int]error
}

// RunRound executes one round against every live client: concurrent
// broadcast of rs, then one update per client, each folded via fold as it
// arrives. fold is called from a single goroutine, never concurrently. A
// fold error counts as that client's failure (the fold must then have left
// the aggregate untouched, as StreamAggregator.Add guarantees), so one bad
// update cannot poison the round.
//
// The round succeeds when at least quorum·(live clients) updates were
// folded; otherwise the joined per-client errors are returned.
func (e *RoundEngine) RunRound(rs RoundStart, fold func(ClientUpdate) error) (RoundOutcome, error) {
	return e.sess.runRound(rs, e.sess.ClientIDs(), e.cfg, fold)
}

// RunCohort executes one round against only the scheduled cohort (a subset
// of the live client IDs). Clients outside the cohort are not contacted at
// all: no broadcast reaches them, their connections stay registered and
// deadline-free, and they simply block waiting for the next RoundStart —
// rejoining whenever a later cohort includes them. Quorum applies to the
// cohort, not the full federation.
func (e *RoundEngine) RunCohort(rs RoundStart, cohort []int, fold func(ClientUpdate) error) (RoundOutcome, error) {
	return e.sess.runRound(rs, cohort, e.cfg, fold)
}

// RunRegionRound executes one round against mid-tier relays instead of leaf
// clients: the broadcast is identical, but each participant answers with a
// pre-folded RegionUpdate rather than a ClientUpdate. Straggler and crash
// semantics match RunRound, with quorum counted over regions.
func (e *RoundEngine) RunRegionRound(rs RoundStart, relayIDs []int, fold func(RegionUpdate) error) (RoundOutcome, error) {
	return runEngineRound(e.sess, rs, relayIDs, e.cfg, MsgRegionUpdate, fold)
}

// roundReply is implemented by the per-round answer frames — ClientUpdate
// from leaf clients, RegionUpdate from relays — so one engine core drives
// both tiers of a relay tree.
type roundReply interface {
	senderID() int
	roundIndex() int
}

func (u ClientUpdate) senderID() int   { return u.ClientID }
func (u ClientUpdate) roundIndex() int { return u.Round }
func (u RegionUpdate) senderID() int   { return u.RelayID }
func (u RegionUpdate) roundIndex() int { return u.Round }

// runRound is the shared engine core; see RoundEngine.RunRound.
func (s *ServerSession) runRound(rs RoundStart, clientIDs []int, cfg EngineConfig, fold func(ClientUpdate) error) (RoundOutcome, error) {
	return runEngineRound(s, rs, clientIDs, cfg, MsgClientUpdate, fold)
}

// runEngineRound is the message-type-generic engine core; see
// RoundEngine.RunRound for the contract.
func runEngineRound[T roundReply](s *ServerSession, rs RoundStart, clientIDs []int, cfg EngineConfig, expect MsgType, fold func(T) error) (RoundOutcome, error) {
	out := RoundOutcome{Round: rs.Round, Failures: make(map[int]error)}
	if len(clientIDs) == 0 {
		return out, fmt.Errorf("%w: round %d: no clients remain", ErrQuorum, rs.Round)
	}
	conns := make(map[int]Conn, len(clientIDs))
	for _, id := range clientIDs {
		conn, ok := s.conns[id]
		if !ok {
			return out, fmt.Errorf("%w: unknown client %d", ErrProtocol, id)
		}
		if _, dup := conns[id]; dup {
			// A duplicated cohort entry would silently inflate the quorum
			// denominator; reject it instead.
			return out, fmt.Errorf("%w: duplicate client %d in cohort", ErrProtocol, id)
		}
		conns[id] = conn
	}
	env, err := EncodeBody(MsgRoundStart, rs)
	if err != nil {
		return out, err
	}

	// Arm (or clear) every connection's deadline for the whole round.
	var deadline time.Time
	if cfg.RoundDeadline > 0 {
		deadline = time.Now().Add(cfg.RoundDeadline)
	}
	for _, conn := range conns {
		if dc, ok := conn.(DeadlineConn); ok {
			_ = dc.SetDeadline(deadline)
		}
	}

	// One goroutine per client sends the broadcast and reads the reply, so
	// broadcast wall time is the slowest single send, not the sum, and slow
	// clients never delay fast ones. Goroutines only touch their captured
	// conn — the conns map stays single-writer (this goroutine).
	type result struct {
		id  int
		u   T
		err error
	}
	results := make(chan result, len(conns))
	var late atomic.Int64
	for id, conn := range conns {
		go func(id int, conn Conn) {
			if err := conn.Send(env); err != nil {
				results <- result{id: id, err: fmt.Errorf("comm: round %d to client %d: %w", rs.Round, id, err)}
				return
			}
			for {
				env, err := conn.Recv()
				if err != nil {
					results <- result{id: id, err: fmt.Errorf("comm: update from client %d: %w", id, err)}
					return
				}
				if env.Type != expect {
					results <- result{id: id, err: fmt.Errorf("%w: expected %v from %d, got %v", ErrProtocol, expect, id, env.Type)}
					return
				}
				var u T
				if err := DecodeBody(env, &u); err != nil {
					results <- result{id: id, err: err}
					return
				}
				if u.roundIndex() < rs.Round {
					// Stale work from a round this client missed: discard
					// it and keep waiting for the current round's update.
					late.Add(1)
					continue
				}
				if u.roundIndex() != rs.Round || u.senderID() != id {
					results <- result{id: id, err: fmt.Errorf("%w: client %d answered round %d as client %d during round %d",
						ErrProtocol, id, u.roundIndex(), u.senderID(), rs.Round)}
					return
				}
				results <- result{id: id, u: u}
				return
			}
		}(id, conn)
	}

	// Fold updates in arrival order: the aggregate stays O(state) and each
	// decode overlaps the remaining clients' network wait.
	for range conns {
		r := <-results
		if r.err == nil {
			if err := fold(r.u); err != nil {
				r.err = fmt.Errorf("comm: folding update from client %d: %w", r.id, err)
			}
		}
		if r.err != nil {
			out.Failures[r.id] = r.err
			if isTimeout(r.err) {
				out.TimedOut = append(out.TimedOut, r.id)
			} else {
				out.Dropped = append(out.Dropped, r.id)
				_ = conns[r.id].Close()
				delete(s.conns, r.id)
			}
			continue
		}
		out.Reported = append(out.Reported, r.id)
	}
	out.LateDiscarded = int(late.Load())
	sort.Ints(out.Reported)
	sort.Ints(out.TimedOut)
	sort.Ints(out.Dropped)

	// Disarm the round deadline on surviving connections so the gap before
	// the next round (or the shutdown frames) is not bounded by this one.
	if !deadline.IsZero() {
		for id, conn := range conns {
			if _, alive := s.conns[id]; !alive {
				continue
			}
			if dc, ok := conn.(DeadlineConn); ok {
				_ = dc.SetDeadline(time.Time{})
			}
		}
	}

	need := quorumCount(cfg.Quorum, len(clientIDs))
	if cfg.Quorum == 0 && cfg.MinUpdates > 0 {
		// An explicit absolute floor with no fraction set is the requirement
		// itself; the zero-quorum default (all clients) would swallow it.
		need = cfg.MinUpdates
	} else if cfg.MinUpdates > need {
		need = cfg.MinUpdates
	}
	if len(out.Reported) < need {
		errs := []error{fmt.Errorf("%w: round %d: %d of %d clients reported, need %d",
			ErrQuorum, rs.Round, len(out.Reported), len(clientIDs), need)}
		for _, id := range out.TimedOut {
			errs = append(errs, out.Failures[id])
		}
		for _, id := range out.Dropped {
			errs = append(errs, out.Failures[id])
		}
		return out, errors.Join(errs...)
	}
	return out, nil
}

// quorumCount converts a quorum fraction into a required update count.
func quorumCount(q float64, n int) int {
	if q <= 0 {
		q = 1
	}
	need := int(math.Ceil(q * float64(n)))
	if need < 1 {
		need = 1
	}
	if need > n {
		need = n
	}
	return need
}

// isTimeout distinguishes a straggler (deadline exceeded, client may
// recover) from a dead or misbehaving connection.
func isTimeout(err error) bool {
	if errors.Is(err, ErrTimeout) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// WeightFunc maps one client update to its aggregation weight. It runs
// before the update touches the aggregate, so an error (or a non-positive
// weight) rejects the update without poisoning the round.
type WeightFunc func(ClientUpdate) (float64, error)

// StreamAggregator folds client updates into a weighted sum as they arrive
// — by default the selected-size weighting of paper Eq. 5, or any
// strategy-supplied WeightFunc. Only the running sum is retained, so server
// memory is O(state) regardless of federation size — the buffered
// alternative holds all N decoded states at once.
type StreamAggregator struct {
	weigh WeightFunc
	acc   []*tensor.Tensor
	total float64
	count int

	codec Codec            // session uplink codec; nil is the legacy identity path
	ref   []*tensor.Tensor // broadcast state, the delta codecs' decode reference
	dec   []*tensor.Tensor // codec decode scratch, reused across Adds
}

// NewStreamAggregator returns an empty aggregator for one round with the
// default selected-size weighting.
func NewStreamAggregator() *StreamAggregator { return &StreamAggregator{} }

// NewWeightedStreamAggregator returns an empty aggregator whose per-update
// weights come from weigh (nil falls back to selected-size weighting). The
// strategy layer uses this to route its WeighUpdates rule into the
// streaming path.
func NewWeightedStreamAggregator(weigh WeightFunc) *StreamAggregator {
	return &StreamAggregator{weigh: weigh}
}

// SetCodec routes the aggregator through the session's negotiated uplink
// codec: updates decode via codec (against ref, the broadcast state the
// round shipped, for delta codecs) and an update whose codec echo
// disagrees with the session codec is rejected before its bytes are
// touched. A nil codec is the legacy identity path, byte-for-byte
// unchanged. Call before the round's first Add.
func (a *StreamAggregator) SetCodec(c Codec, ref []*tensor.Tensor) {
	a.codec, a.ref = c, ref
}

// Add decodes one update and folds it into the running sum under the
// aggregator's weighting. The fold is atomic: every validation happens
// before the sum is touched, so on error the aggregate is unchanged and the
// caller can drop the client yet keep the round.
func (a *StreamAggregator) Add(u ClientUpdate) error {
	if u.NumSelected <= 0 {
		return fmt.Errorf("%w: client %d reports %d selected samples", ErrProtocol, u.ClientID, u.NumSelected)
	}
	w64 := float64(u.NumSelected)
	if a.weigh != nil {
		var err error
		if w64, err = a.weigh(u); err != nil {
			return fmt.Errorf("comm: weighing update from client %d: %w", u.ClientID, err)
		}
		if w64 <= 0 || math.IsNaN(w64) || math.IsInf(w64, 0) {
			return fmt.Errorf("%w: client %d weighed %v", ErrProtocol, u.ClientID, w64)
		}
	}
	if err := checkCodecEcho(a.codec, u.Codec, u.ClientID); err != nil {
		return err
	}
	if a.codec != nil {
		return a.addCodec(u, w64)
	}
	ts, err := DecodeTensors(u.State)
	if err != nil {
		return fmt.Errorf("comm: aggregate client %d: %w", u.ClientID, err)
	}
	w := float32(w64)
	if a.acc == nil {
		for _, t := range ts {
			t.Scale(w)
		}
		a.acc = ts
	} else {
		if len(ts) != len(a.acc) {
			return fmt.Errorf("%w: client %d sent %d tensors, want %d", ErrProtocol, u.ClientID, len(ts), len(a.acc))
		}
		for i := range ts {
			if !a.acc[i].SameShape(ts[i]) {
				return fmt.Errorf("%w: client %d tensor %d shape mismatch", ErrProtocol, u.ClientID, i)
			}
		}
		for i := range ts {
			if err := a.acc[i].Axpy(w, ts[i]); err != nil {
				return err
			}
		}
	}
	a.total += w64
	a.count++
	return nil
}

// addCodec is the codec decode-and-fold path of Add. The decode scratch
// is owned by the aggregator and reused, so the accumulator holds clones
// of the first update rather than taking ownership of its tensors.
func (a *StreamAggregator) addCodec(u ClientUpdate, w64 float64) error {
	ts, err := a.codec.Decode(a.ref, a.dec, u.State)
	if err != nil {
		return fmt.Errorf("comm: aggregate client %d: %w", u.ClientID, err)
	}
	a.dec = ts[:cap(ts)]
	if a.acc != nil {
		if len(ts) != len(a.acc) {
			return fmt.Errorf("%w: client %d sent %d tensors, want %d", ErrProtocol, u.ClientID, len(ts), len(a.acc))
		}
		for i := range ts {
			if !a.acc[i].SameShape(ts[i]) {
				return fmt.Errorf("%w: client %d tensor %d shape mismatch", ErrProtocol, u.ClientID, i)
			}
		}
	}
	w := float32(w64)
	if a.acc == nil {
		a.acc = make([]*tensor.Tensor, len(ts))
		for i, t := range ts {
			a.acc[i] = t.Clone()
			a.acc[i].Scale(w)
		}
	} else {
		for i := range ts {
			if err := a.acc[i].Axpy(w, ts[i]); err != nil {
				return err
			}
		}
	}
	a.total += w64
	a.count++
	return nil
}

// checkCodecEcho rejects an update whose codec echo disagrees with the
// session codec, before any payload byte is interpreted. Empty echoes and
// a nil session codec both mean identity, so pre-codec peers and codec-
// aware ones running identity validate interchangeably.
func checkCodecEcho(codec Codec, echo string, clientID int) error {
	want := CodecIdentity
	if codec != nil {
		want = codec.Name()
	}
	got := echo
	if got == "" {
		got = CodecIdentity
	}
	if got != want {
		return fmt.Errorf("%w: client %d sent codec %q, session runs %q", ErrProtocol, clientID, got, want)
	}
	return nil
}

// Updates returns how many updates have been folded so far.
func (a *StreamAggregator) Updates() int { return a.count }

// Total returns the summed aggregation weight folded so far. A relay reads
// it before Finish to stamp the outgoing RegionUpdate with the region's
// weight mass.
func (a *StreamAggregator) Total() float64 { return a.total }

// Finish normalizes the sum into the aggregated state and resets the
// aggregator. It fails when no update was folded.
func (a *StreamAggregator) Finish() ([]*tensor.Tensor, error) {
	if a.count == 0 || a.total <= 0 {
		return nil, fmt.Errorf("comm: aggregate: no client updates")
	}
	inv := float32(1 / a.total)
	for _, t := range a.acc {
		t.Scale(inv)
	}
	out := a.acc
	a.acc, a.total, a.count = nil, 0, 0
	return out, nil
}
