package comm

// StreamAggregator benchmark at a realistic federation round size: 32
// client updates, each carrying an MLP-upper-part-sized state (~80k
// parameters across 4 tensors). One iteration folds a full round and
// normalizes, the aggregator's whole per-round life cycle. Results feed
// BENCH_sched.json.

import (
	"math/rand"
	"testing"

	"fedfteds/internal/tensor"
)

func BenchmarkStreamAggregatorRound(b *testing.B) {
	const numUpdates = 32
	shapes := [][]int{{256, 256}, {256}, {256, 64}, {64}}
	rng := rand.New(rand.NewSource(1))
	updates := make([]ClientUpdate, numUpdates)
	var bytes int64
	for c := range updates {
		ts := make([]*tensor.Tensor, len(shapes))
		for i, sh := range shapes {
			ts[i] = tensor.New(sh...)
			ts[i].FillNormal(rng, 0, 1)
		}
		blob, err := EncodeTensors(ts)
		if err != nil {
			b.Fatal(err)
		}
		bytes += int64(len(blob))
		updates[c] = ClientUpdate{ClientID: c, Round: 1, State: blob, NumSelected: 10 + c}
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewStreamAggregator()
		for _, u := range updates {
			if err := agg.Add(u); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := agg.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// regionBenchUpdates builds a region's worth of leaf updates plus the
// broadcast they answer, shared by the region-delta benchmarks.
func regionBenchUpdates(b *testing.B, numUpdates int) (RoundStart, []ClientUpdate, int64) {
	b.Helper()
	shapes := [][]int{{256, 256}, {256}, {256, 64}, {64}}
	rng := rand.New(rand.NewSource(1))
	state := make([]*tensor.Tensor, len(shapes))
	for i, sh := range shapes {
		state[i] = tensor.New(sh...)
		state[i].FillNormal(rng, 0, 1)
	}
	blob, err := EncodeTensors(state)
	if err != nil {
		b.Fatal(err)
	}
	rs := RoundStart{Round: 1, State: blob, SelectFraction: 1, LocalEpochs: 1}
	updates := make([]ClientUpdate, numUpdates)
	var bytes int64
	for c := range updates {
		ts := make([]*tensor.Tensor, len(shapes))
		for i, sh := range shapes {
			ts[i] = tensor.New(sh...)
			ts[i].FillNormal(rng, 0, 1)
		}
		ub, err := EncodeTensors(ts)
		if err != nil {
			b.Fatal(err)
		}
		bytes += int64(len(ub))
		updates[c] = ClientUpdate{ClientID: c, Round: 1, State: ub,
			NumSelected: 10 + c, TrainSeconds: 0.5, TrainLoss: 1.5}
	}
	return rs, updates, bytes
}

// BenchmarkRegionDeltaFold measures the relay's per-round hot path: folding
// a region of leaf updates into one weighted delta — the same
// StreamAggregator life cycle a relay runs between NextRound and SendRegion.
// Results feed BENCH_comm.json.
func BenchmarkRegionDeltaFold(b *testing.B) {
	_, updates, bytes := regionBenchUpdates(b, 32)
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewStreamAggregator()
		for _, u := range updates {
			if err := agg.Add(u); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := agg.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegionDeltaEncode measures the upstream half: packaging a folded
// region state as the RegionUpdate wire frame (tensor encode plus envelope),
// the bytes a relay pushes to the root each round. Results feed
// BENCH_comm.json.
func BenchmarkRegionDeltaEncode(b *testing.B) {
	_, updates, _ := regionBenchUpdates(b, 32)
	agg := NewStreamAggregator()
	for _, u := range updates {
		if err := agg.Add(u); err != nil {
			b.Fatal(err)
		}
	}
	fused, err := agg.Finish()
	if err != nil {
		b.Fatal(err)
	}
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := EncodeTensors(fused)
		if err != nil {
			b.Fatal(err)
		}
		env, err := EncodeBody(MsgRegionUpdate, RegionUpdate{
			RelayID: 0, Round: 1, State: blob, Weight: agg.Total(),
			Clients: len(updates), NumSelected: 32 * 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		if bytes == 0 {
			bytes = int64(len(env.Body))
			b.SetBytes(bytes)
		}
	}
}

// codecBenchSpecs is the lineup the codec benchmarks and the
// BENCH_comm.json regression gate cover.
var codecBenchSpecs = []string{"identity", "float16", "int8", "topk:0.05"}

// codecBenchState builds the ~80k-parameter state the other comm
// benchmarks use, plus a broadcast reference for the delta codecs.
func codecBenchState(b *testing.B) (ref, ts []*tensor.Tensor, denseBytes int64) {
	b.Helper()
	shapes := [][]int{{256, 256}, {256}, {256, 64}, {64}}
	rng := rand.New(rand.NewSource(1))
	for _, sh := range shapes {
		r := tensor.New(sh...)
		r.FillNormal(rng, 0, 1)
		ref = append(ref, r)
		t := tensor.New(sh...)
		t.FillNormal(rng, 0, 1)
		ts = append(ts, t)
		denseBytes += int64(t.EncodedSize())
	}
	return ref, ts, denseBytes + 4
}

// BenchmarkCodecEncode measures one client's per-round uplink encode for
// each codec on the standard ~80k-parameter state. SetBytes is the dense
// state size, so mb_per_s reads as dense-state throughput and stays
// comparable across codecs. Results feed BENCH_comm.json.
func BenchmarkCodecEncode(b *testing.B) {
	for _, spec := range codecBenchSpecs {
		b.Run(spec, func(b *testing.B) {
			c, err := ParseCodec(spec)
			if err != nil {
				b.Fatal(err)
			}
			ref, ts, denseBytes := codecBenchState(b)
			b.SetBytes(denseBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(ref, ts, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCodecDecode measures the server's per-update decode for each
// codec, scratch reused across iterations like the streaming aggregators
// do. Results feed BENCH_comm.json.
func BenchmarkCodecDecode(b *testing.B) {
	for _, spec := range codecBenchSpecs {
		b.Run(spec, func(b *testing.B) {
			c, err := ParseCodec(spec)
			if err != nil {
				b.Fatal(err)
			}
			ref, ts, denseBytes := codecBenchState(b)
			blob, err := c.Encode(ref, ts, 1)
			if err != nil {
				b.Fatal(err)
			}
			var scratch []*tensor.Tensor
			b.SetBytes(denseBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := c.Decode(ref, scratch, blob)
				if err != nil {
					b.Fatal(err)
				}
				scratch = dec[:cap(dec)]
			}
		})
	}
}
