package comm

// StreamAggregator benchmark at a realistic federation round size: 32
// client updates, each carrying an MLP-upper-part-sized state (~80k
// parameters across 4 tensors). One iteration folds a full round and
// normalizes, the aggregator's whole per-round life cycle. Results feed
// BENCH_sched.json.

import (
	"math/rand"
	"testing"

	"fedfteds/internal/tensor"
)

func BenchmarkStreamAggregatorRound(b *testing.B) {
	const numUpdates = 32
	shapes := [][]int{{256, 256}, {256}, {256, 64}, {64}}
	rng := rand.New(rand.NewSource(1))
	updates := make([]ClientUpdate, numUpdates)
	var bytes int64
	for c := range updates {
		ts := make([]*tensor.Tensor, len(shapes))
		for i, sh := range shapes {
			ts[i] = tensor.New(sh...)
			ts[i].FillNormal(rng, 0, 1)
		}
		blob, err := EncodeTensors(ts)
		if err != nil {
			b.Fatal(err)
		}
		bytes += int64(len(blob))
		updates[c] = ClientUpdate{ClientID: c, Round: 1, State: blob, NumSelected: 10 + c}
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewStreamAggregator()
		for _, u := range updates {
			if err := agg.Add(u); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := agg.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}
