package comm

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// StalenessFunc maps an update's staleness s — the number of aggregations
// the global model advanced while the client was training, s >= 0 — to a
// multiplicative weight discount λ(s) in (0, 1]. The engine is agnostic to
// the rule; internal/strategy provides the flag-constructible family
// (identity, 1/sqrt(1+s), polynomial).
type StalenessFunc func(staleness int) float64

// AsyncConfig tunes the buffered asynchronous (FedBuff-style) engine.
type AsyncConfig struct {
	// Buffer is M, the aggregation goal: the server applies an aggregate as
	// soon as M updates have been buffered. Buffer equal to the federation
	// size with an identity Weigh reduces the engine to the synchronous
	// round loop bit for bit.
	Buffer int
	// MaxStaleness discards updates whose staleness exceeds it; the sending
	// client simply receives the fresh model at the next dispatch. Negative
	// means no limit (every update is folded, however stale).
	MaxStaleness int
	// Weigh is λ(s); nil means identity (no staleness discount).
	Weigh StalenessFunc
	// AggDeadline bounds the wait for one aggregation's worth of updates.
	// Zero means wait indefinitely.
	AggDeadline time.Duration
}

// Validate checks the configuration bounds.
func (c AsyncConfig) Validate() error {
	if c.Buffer < 1 {
		return fmt.Errorf("%w: buffer %d, need at least 1", ErrProtocol, c.Buffer)
	}
	if c.AggDeadline < 0 {
		return fmt.Errorf("%w: negative aggregation deadline %v", ErrProtocol, c.AggDeadline)
	}
	return nil
}

// asyncResult is one reader goroutine event: an update or a terminal error.
type asyncResult struct {
	id  int
	u   ClientUpdate
	err error
}

// AsyncEngine drives FedBuff-style buffered asynchronous aggregation over a
// ServerSession. Each connected client trains continuously against the
// newest model version it has seen; the server buffers version-tagged
// updates as they arrive and applies an aggregate whenever Buffer of them
// accumulated, discounting stale contributions by λ(staleness). Clients are
// re-dispatched the fresh model only at aggregation boundaries, so with
// Buffer equal to the federation size the engine degenerates to exactly the
// synchronous round loop: every client trains version v, the buffer fills
// once, and the fold order is arrival order — the same arithmetic the
// RoundEngine performs.
//
// One reader goroutine per client owns the connection's receive side for
// the engine's whole lifetime; dispatch sends happen from the caller's
// goroutine (Conn implementations serialize sends and receives
// independently). A connection error drops the client permanently, exactly
// like the synchronous engine's crash class; there is no per-client timeout
// class because a slow client never gates an aggregation — it just goes
// stale.
type AsyncEngine struct {
	sess    *ServerSession
	cfg     AsyncConfig
	version int
	// inflight maps each client currently training to the version it was
	// dispatched. Clients absent from inflight are idle: they reported (or
	// were never dispatched) and wait for the next aggregation's dispatch.
	inflight map[int]int
	// dead remembers dropped clients so a lingering reader event (the
	// connection-closed error following a rejected update) is not
	// re-reported in a later aggregation.
	dead    map[int]bool
	buffer  []ClientUpdate
	results chan asyncResult
	started bool
}

// NewAsyncEngine validates the configuration and wraps a session.
func NewAsyncEngine(sess *ServerSession, cfg AsyncConfig) (*AsyncEngine, error) {
	if sess == nil {
		return nil, fmt.Errorf("%w: nil session", ErrProtocol)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &AsyncEngine{
		sess:     sess,
		cfg:      cfg,
		inflight: make(map[int]int),
		dead:     make(map[int]bool),
		results:  make(chan asyncResult, 2*len(sess.conns)+2),
	}, nil
}

// Restore warm-starts the engine from checkpointed async state: the model
// version counter and any updates that were buffered but not yet
// aggregated when the checkpoint was taken. Restored updates keep their
// original version tags, so their staleness is re-measured against the
// current version at fold time. Must be called before the first
// RunAggregation.
func (e *AsyncEngine) Restore(version int, buffered []ClientUpdate) error {
	if e.started {
		return fmt.Errorf("%w: async restore after first aggregation", ErrProtocol)
	}
	if version < 0 {
		return fmt.Errorf("%w: negative model version %d", ErrProtocol, version)
	}
	e.version = version
	e.buffer = append([]ClientUpdate(nil), buffered...)
	return nil
}

// Version returns the current model version — the number of aggregations
// applied since version zero (checkpoints preserve the counter).
func (e *AsyncEngine) Version() int { return e.version }

// Buffered returns a copy of the updates received but not yet aggregated,
// in arrival order, for checkpointing mid-buffer.
func (e *AsyncEngine) Buffered() []ClientUpdate {
	return append([]ClientUpdate(nil), e.buffer...)
}

// AggOutcome reports one buffered aggregation, the asynchronous analogue of
// RoundOutcome.
type AggOutcome struct {
	// Agg is the 1-based aggregation index (the async "round").
	Agg int
	// Version is the model version after this aggregation.
	Version int
	// Reported lists the clients whose updates were folded, ascending. A
	// client restored from a checkpointed buffer can coincide with a live
	// update of the same client within one aggregation, so entries may
	// repeat.
	Reported []int
	// Staleness maps each folded client to the staleness of its (latest)
	// folded update.
	Staleness map[int]int
	// Discarded counts updates rejected as too stale this aggregation.
	Discarded int
	// Dropped lists clients removed from the federation (dead connection or
	// protocol violation), ascending.
	Dropped []int
	// Failures maps each dropped client to its error.
	Failures map[int]error
}

// RunAggregation performs one buffered aggregation: it dispatches rs
// (stamped with the current model version) to every idle client, then folds
// buffered and arriving updates — each weighted by λ(staleness) — until
// Buffer of them accumulated. fold runs on the caller's goroutine, never
// concurrently; a fold error rejects that update without poisoning the
// aggregation (the fold must leave the aggregate untouched on error, as
// StreamAggregator.Add guarantees). The engine advances its version only
// after the buffer goal was met.
func (e *AsyncEngine) RunAggregation(agg int, rs RoundStart, fold func(u ClientUpdate, lambda float64) error) (AggOutcome, error) {
	out := AggOutcome{Agg: agg, Version: e.version, Staleness: make(map[int]int), Failures: make(map[int]error)}
	if !e.started {
		// The engine owns every connection's receive side from the first
		// aggregation on: one long-lived reader per client.
		for id, conn := range e.sess.conns {
			go e.read(id, conn)
		}
		e.started = true
	}

	rs.Round = agg
	rs.Version = e.version
	env, err := EncodeBody(MsgRoundStart, rs)
	if err != nil {
		return out, err
	}
	// Dispatch the current model to every idle client. Clients still
	// training keep their stale version; their eventual updates are
	// discounted, not awaited.
	for _, id := range e.sess.ClientIDs() {
		if _, busy := e.inflight[id]; busy {
			continue
		}
		if err := e.sess.conns[id].Send(env); err != nil {
			e.drop(&out, id, fmt.Errorf("comm: async dispatch v%d to client %d: %w", e.version, id, err))
			continue
		}
		e.inflight[id] = e.version
	}

	var deadline <-chan time.Time
	if e.cfg.AggDeadline > 0 {
		t := time.NewTimer(e.cfg.AggDeadline)
		defer t.Stop()
		deadline = t.C
	}

	folded := 0
	for folded < e.cfg.Buffer {
		// Drain the carried-over buffer first (checkpoint restores and
		// overflow beyond a previous aggregation's goal), then wait.
		if len(e.buffer) > 0 {
			u := e.buffer[0]
			e.buffer = e.buffer[1:]
			if e.foldOne(&out, u, fold) {
				folded++
			}
			continue
		}
		if e.capacity() < e.cfg.Buffer-folded {
			return e.fail(out, fmt.Errorf("%w: aggregation %d: %d of %d updates buffered, %d clients remain",
				ErrQuorum, agg, folded, e.cfg.Buffer, len(e.sess.conns)))
		}
		select {
		case r := <-e.results:
			if e.dead[r.id] {
				continue
			}
			if r.err != nil {
				e.drop(&out, r.id, r.err)
				continue
			}
			v, busy := e.inflight[r.id]
			if !busy || r.u.Version != v || r.u.ClientID != r.id {
				e.drop(&out, r.id, fmt.Errorf("%w: client %d answered version %d as client %d while dispatched v%d",
					ErrProtocol, r.id, r.u.Version, r.u.ClientID, v))
				continue
			}
			delete(e.inflight, r.id)
			if e.foldOne(&out, r.u, fold) {
				folded++
			}
		case <-deadline:
			return e.fail(out, fmt.Errorf("%w: aggregation %d: %d of %d updates buffered within %v",
				ErrQuorum, agg, folded, e.cfg.Buffer, e.cfg.AggDeadline))
		}
	}
	e.version++
	out.Version = e.version
	sort.Ints(out.Reported)
	sort.Ints(out.Dropped)
	return out, nil
}

// foldOne weighs one buffered update by its staleness and folds it.
// Too-stale updates are counted and discarded; a fold error drops the
// client. Reports whether the update was folded.
func (e *AsyncEngine) foldOne(out *AggOutcome, u ClientUpdate, fold func(ClientUpdate, float64) error) bool {
	s := e.version - u.Version
	if s < 0 {
		e.drop(out, u.ClientID, fmt.Errorf("%w: client %d update from future version %d (current %d)",
			ErrProtocol, u.ClientID, u.Version, e.version))
		return false
	}
	if e.cfg.MaxStaleness >= 0 && s > e.cfg.MaxStaleness {
		out.Discarded++
		return false
	}
	lambda := 1.0
	if e.cfg.Weigh != nil {
		lambda = e.cfg.Weigh(s)
		if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
			e.drop(out, u.ClientID, fmt.Errorf("%w: staleness weigher produced %v for staleness %d", ErrProtocol, lambda, s))
			return false
		}
	}
	if err := fold(u, lambda); err != nil {
		e.drop(out, u.ClientID, fmt.Errorf("comm: folding async update from client %d: %w", u.ClientID, err))
		return false
	}
	out.Reported = append(out.Reported, u.ClientID)
	out.Staleness[u.ClientID] = s
	return true
}

// capacity is the number of updates that can still possibly arrive or be
// drained this aggregation: the clients currently training (each holds at
// most one outstanding update), plus the carried-over buffer. A client that
// already reported is idle until the next dispatch and cannot contribute
// again, so counting it would turn an unmeetable buffer goal into a silent
// hang instead of ErrQuorum.
func (e *AsyncEngine) capacity() int {
	return len(e.inflight) + len(e.buffer)
}

// drop removes a client from the federation, mirroring the synchronous
// engine's crash class.
func (e *AsyncEngine) drop(out *AggOutcome, id int, err error) {
	if _, live := e.sess.conns[id]; live {
		_ = e.sess.conns[id].Close()
		delete(e.sess.conns, id)
	}
	e.dead[id] = true
	delete(e.inflight, id)
	if _, seen := out.Failures[id]; !seen {
		out.Dropped = append(out.Dropped, id)
	}
	out.Failures[id] = err
}

// fail finalizes a failed aggregation's outcome.
func (e *AsyncEngine) fail(out AggOutcome, err error) (AggOutcome, error) {
	sort.Ints(out.Reported)
	sort.Ints(out.Dropped)
	errs := []error{err}
	for _, id := range out.Dropped {
		errs = append(errs, out.Failures[id])
	}
	return out, errors.Join(errs...)
}

// read is the per-client reader goroutine: it forwards every ClientUpdate
// to the engine loop and exits on the first error or foreign frame.
func (e *AsyncEngine) read(id int, conn Conn) {
	for {
		env, err := conn.Recv()
		if err != nil {
			e.results <- asyncResult{id: id, err: fmt.Errorf("comm: update from client %d: %w", id, err)}
			return
		}
		if env.Type != MsgClientUpdate {
			e.results <- asyncResult{id: id, err: fmt.Errorf("%w: expected client-update from %d, got %v", ErrProtocol, id, env.Type)}
			return
		}
		var u ClientUpdate
		if err := DecodeBody(env, &u); err != nil {
			e.results <- asyncResult{id: id, err: err}
			return
		}
		e.results <- asyncResult{id: id, u: u}
	}
}
