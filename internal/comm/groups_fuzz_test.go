package comm

import (
	"reflect"
	"strings"
	"testing"

	"fedfteds/internal/tensor"
)

// canonicalGroups is the model's canonical communicated group list for the
// fuzz harness (mirrors models.GroupNames without the import cycle).
var canonicalGroups = []string{"low", "mid", "up", "classifier"}

// decodeGroupSpec maps a fuzz bitmask onto a canonical-order subset.
func decodeGroupSpec(mask uint8) []string {
	var out []string
	for i, g := range canonicalGroups {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, g)
		}
	}
	return out
}

// FuzzGroupsSubsetRoundTrip round-trips ClientUpdate.Groups declarations
// through the gob envelope and validates them against the masked
// aggregator: every canonical subset must survive encode/decode byte-exact
// and be accepted, while empty subsets and unknown group names must be
// rejected after the round trip (never silently repaired).
func FuzzGroupsSubsetRoundTrip(f *testing.F) {
	f.Add(uint8(0b1111), "", 4)    // full mask
	f.Add(uint8(0b1000), "", 1)    // classifier only
	f.Add(uint8(0b1010), "", 2)    // gap mask: mid + classifier
	f.Add(uint8(0), "", 1)         // empty subset → rejected
	f.Add(uint8(0b1000), "gpu", 1) // unknown extra group → rejected

	layout := []string{"low", "mid", "mid", "up", "classifier"}
	tensorsFor := func(groups []string) []*tensor.Tensor {
		covered := make(map[string]bool, len(groups))
		for _, g := range groups {
			covered[g] = true
		}
		var ts []*tensor.Tensor
		for _, g := range layout {
			if covered[g] {
				ts = append(ts, tensor.New(2))
			}
		}
		return ts
	}

	f.Fuzz(func(t *testing.T, mask uint8, extra string, nsel int) {
		groups := decodeGroupSpec(mask & 0b1111)
		extra = strings.TrimSpace(extra)
		if extra != "" {
			groups = append(groups, extra)
		}
		if nsel <= 0 || nsel > 1<<20 {
			nsel = 1
		}
		blob, err := EncodeTensors(tensorsFor(groups))
		if err != nil {
			t.Fatal(err)
		}
		u := ClientUpdate{ClientID: 3, Round: 1, State: blob, Groups: groups, NumSelected: nsel}

		env, err := EncodeBody(MsgClientUpdate, u)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		var got ClientUpdate
		if err := DecodeBody(env, &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Gob encodes empty slices as nil; both mean "no declaration".
		if len(groups) != 0 && !reflect.DeepEqual(got.Groups, groups) {
			t.Fatalf("groups round-trip: sent %v, got %v", groups, got.Groups)
		}
		if len(groups) == 0 && len(got.Groups) != 0 {
			t.Fatalf("empty groups decoded as %v", got.Groups)
		}

		agg, err := NewMaskedStreamAggregator(nil, canonicalGroups, layout)
		if err != nil {
			t.Fatal(err)
		}
		addErr := agg.Add(got)
		valid := isCanonicalSubset(groups)
		if valid && addErr != nil {
			t.Fatalf("canonical subset %v rejected: %v", groups, addErr)
		}
		if !valid && addErr == nil {
			t.Fatalf("invalid declaration %v accepted", groups)
		}
	})
}

// isCanonicalSubset reports whether groups is a non-empty duplicate-free
// subsequence of canonicalGroups — exactly what the aggregator accepts.
func isCanonicalSubset(groups []string) bool {
	if len(groups) == 0 {
		return false
	}
	i := 0
	for _, g := range groups {
		for i < len(canonicalGroups) && canonicalGroups[i] != g {
			i++
		}
		if i == len(canonicalGroups) {
			return false
		}
		i++ // consume: duplicates and out-of-order names fail the scan
	}
	return true
}

// TestGroupsRoundTripSeeds runs the fuzz seeds as a deterministic unit test
// so CI exercises them without -fuzz.
func TestGroupsRoundTripSeeds(t *testing.T) {
	for _, mask := range []uint8{0b1111, 0b1000, 0b1100, 0b1010, 0b0110} {
		groups := decodeGroupSpec(mask)
		u := ClientUpdate{ClientID: 1, Round: 2, Groups: groups, NumSelected: 5,
			State: mustEncode(t, []*tensor.Tensor{tensor.New(1)})}
		env, err := EncodeBody(MsgClientUpdate, u)
		if err != nil {
			t.Fatal(err)
		}
		var got ClientUpdate
		if err := DecodeBody(env, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Groups, groups) {
			t.Fatalf("mask %04b: sent %v, got %v", mask, groups, got.Groups)
		}
	}
}

func mustEncode(t *testing.T, ts []*tensor.Tensor) []byte {
	t.Helper()
	b, err := EncodeTensors(ts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
