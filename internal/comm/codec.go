package comm

import (
	"fmt"
	"strconv"
	"strings"

	"fedfteds/internal/seeds"
	"fedfteds/internal/tensor"
)

// Codec compresses a tensor list into an uplink payload and reverses it.
// The identity codec's Encode output is pinned byte-for-byte to
// EncodeTensors, so a session that never negotiates a codec produces
// exactly today's frames; the other codecs trade bits for bandwidth.
//
// Encode and Decode both take ref, the broadcast global state the update
// was trained from, tensor-parallel to ts. Value codecs (identity,
// float16) ignore it and report NeedsReference false — they encode
// absolute values, which is what lets the buffered asynchronous engine
// decode stale updates whose broadcast reference is long gone. Delta
// codecs (int8, topk) encode against ref and refuse to run without it:
// one local round moves weights by a small fraction of their magnitude,
// so quantization steps sized to the delta are far finer than steps
// sized to the weights.
//
// Codec instances are cheap and NOT safe for concurrent use: topk carries
// per-client error-feedback residuals across Encode calls, and decoders
// reuse the scratch the caller passes. Hold one instance per encoding
// client and one per decoding aggregator.
type Codec interface {
	// Name is the canonical spec string (ParseCodec(Name()) reproduces the
	// codec, parameters included). It is what Welcome advertises and what
	// ClientUpdate echoes.
	Name() string
	// NeedsReference reports whether Encode/Decode require ref. Reference-
	// free codecs work under the buffered asynchronous engine; delta codecs
	// do not and are refused at flag parsing.
	NeedsReference() bool
	// Encode serializes ts into one payload. seed drives stochastic
	// rounding; the same (ref, ts, seed) always yields the same bytes.
	Encode(ref, ts []*tensor.Tensor, seed uint64) ([]byte, error)
	// Decode reverses Encode, reusing scratch — slice and tensor storage —
	// like DecodeTensorsReuse. The returned tensors alias scratch's and are
	// valid only until the next Decode with the same scratch.
	Decode(ref, scratch []*tensor.Tensor, b []byte) ([]*tensor.Tensor, error)
}

// ResidualCarrier is implemented by codecs that keep client-side state
// across rounds (topk's error-feedback residuals). The simulator
// checkpoints the state through RunState so resume reproduces the run bit
// for bit; fedclient keeps it in process memory.
type ResidualCarrier interface {
	// ResidualState returns the carried residual tensors (nil before the
	// first Encode). The tensors are owned by the codec; callers clone
	// before mutating.
	ResidualState() []*tensor.Tensor
	// RestoreResidualState replaces the carried residuals, taking
	// ownership of the given tensors.
	RestoreResidualState(ts []*tensor.Tensor) error
}

// CodecIdentity is the canonical name of the identity codec.
const CodecIdentity = "identity"

// defaultTopKFraction is the fraction of entries topk keeps when the spec
// names no parameter.
const defaultTopKFraction = 0.05

// CodecNames lists the accepted -codec spec forms, for flag help and
// fail-fast error messages.
func CodecNames() []string {
	return []string{"identity", "float16", "int8", "topk", "topk:<fraction>"}
}

// ParseCodec builds a fresh codec instance from a spec string. Accepted
// specs: "identity" (or ""), "float16", "int8", "topk" and
// "topk:<fraction>" with fraction in (0, 1]. Each call returns a new
// instance, so per-client residual state never aliases.
func ParseCodec(spec string) (Codec, error) {
	name, param := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, param = spec[:i], spec[i+1:]
	}
	switch name {
	case "", CodecIdentity:
		if param != "" {
			return nil, fmt.Errorf("%w: codec %q takes no parameter", ErrProtocol, name)
		}
		return identityCodec{}, nil
	case "float16":
		if param != "" {
			return nil, fmt.Errorf("%w: codec %q takes no parameter", ErrProtocol, name)
		}
		return float16Codec{}, nil
	case "int8":
		if param != "" {
			return nil, fmt.Errorf("%w: codec %q takes no parameter", ErrProtocol, name)
		}
		return int8Codec{}, nil
	case "topk":
		frac := defaultTopKFraction
		if param != "" {
			f, err := strconv.ParseFloat(param, 64)
			if err != nil || f <= 0 || f > 1 {
				return nil, fmt.Errorf("%w: topk fraction %q must be in (0, 1]", ErrProtocol, param)
			}
			frac = f
		}
		return &topKCodec{frac: frac}, nil
	default:
		return nil, fmt.Errorf("%w: unknown codec %q (known: %s)",
			ErrProtocol, spec, strings.Join(CodecNames(), ", "))
	}
}

// PickCodec resolves the client side of the Hello/Welcome negotiation:
// advertised is Welcome.Codecs (empty means the server runs identity) and
// want the client's -codec flag. "auto" (or "") adopts whatever the server
// advertises; an explicit spec must match the advertisement exactly, and a
// mismatch fails fast with both sides' positions so the operator can fix
// either flag.
func PickCodec(advertised []string, want string) (Codec, error) {
	if want == "" || want == "auto" {
		if len(advertised) == 0 {
			return identityCodec{}, nil
		}
		c, err := ParseCodec(advertised[0])
		if err != nil {
			return nil, fmt.Errorf("comm: server advertises codec %q this client does not support: %w",
				advertised[0], err)
		}
		return c, nil
	}
	c, err := ParseCodec(want)
	if err != nil {
		return nil, err
	}
	serverName := CodecIdentity
	if len(advertised) > 0 {
		serverName = advertised[0]
	}
	if c.Name() != serverName {
		return nil, fmt.Errorf("%w: client wants codec %q but server advertises %q (run both sides with the same -codec, or use -codec auto)",
			ErrProtocol, c.Name(), serverName)
	}
	return c, nil
}

// CodecSeed derives the stochastic-rounding seed for one client's update
// in one round. Every encoder — fedclient, the relay's upstream leg, the
// simulator's wire round-trip — uses it so a run is reproducible from
// (base seed, round, sender) alone. The derivation is the shared seeds
// chain under TagCodec; the seeds package test pins it to the historic
// inline spelling.
func CodecSeed(base uint64, round, id int) uint64 {
	return seeds.Chain(base, seeds.TagCodec, uint64(round), uint64(id))
}

// identityCodec is the no-op codec: Encode is exactly EncodeTensors and
// Decode exactly DecodeTensorsReuse. Tests pin this equivalence —
// sessions negotiated to identity ship byte-identical frames to sessions
// that predate codecs entirely.
type identityCodec struct{}

func (identityCodec) Name() string         { return CodecIdentity }
func (identityCodec) NeedsReference() bool { return false }

func (identityCodec) Encode(_, ts []*tensor.Tensor, _ uint64) ([]byte, error) {
	return EncodeTensors(ts)
}

func (identityCodec) Decode(_, scratch []*tensor.Tensor, b []byte) ([]*tensor.Tensor, error) {
	return DecodeTensorsReuse(scratch, b)
}

// reuseTensorSlice sizes scratch to count tensors, reusing the slice and
// any tensors it already holds, mirroring DecodeTensorsReuse's policy.
func reuseTensorSlice(scratch []*tensor.Tensor, count int) []*tensor.Tensor {
	out := scratch
	if cap(out) >= count {
		out = out[:count]
	} else {
		out = make([]*tensor.Tensor, count)
		copy(out, scratch)
	}
	for i := range out {
		if out[i] == nil {
			out[i] = new(tensor.Tensor)
		}
	}
	return out
}
