package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"fedfteds/internal/tensor"
)

// Quantizing codec payloads keep the tensor blob's outer structure — a
// 4-byte little-endian tensor count, then per tensor a u8 rank and
// u32 × rank dims — and replace the f32 data with the codec's element
// encoding: u16 IEEE half floats for float16, or blocks of an f32 scale
// followed by up to int8BlockSize i8 quantized values for int8. Keeping
// the header layout means the byte-level frame spec in DESIGN.md
// describes every codec with one table.

// appendTensorHeader appends t's u8 rank + u32 dims header to buf.
func appendTensorHeader(buf []byte, t *tensor.Tensor) ([]byte, error) {
	shape := t.Shape()
	if len(shape) > 255 {
		return nil, fmt.Errorf("%w: rank %d exceeds wire format limit", ErrProtocol, len(shape))
	}
	buf = append(buf, byte(len(shape)))
	for _, d := range shape {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	return buf, nil
}

// readTensorHeader parses a u8 rank + u32 dims header from the front of b,
// returning the shape, its volume and the bytes consumed. It enforces the
// same volume cap as the tensor wire format.
func readTensorHeader(b []byte) (shape []int, vol, n int, err error) {
	if len(b) < 1 {
		return nil, 0, 0, fmt.Errorf("%w: missing tensor rank", ErrProtocol)
	}
	rank := int(b[0])
	n = 1
	if len(b) < n+4*rank {
		return nil, 0, n, fmt.Errorf("%w: truncated tensor dims", ErrProtocol)
	}
	shape = make([]int, rank)
	vol = 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(b[n:]))
		n += 4
		vol *= shape[i]
		if vol > 1<<28 {
			return nil, 0, n, fmt.Errorf("%w: tensor volume exceeds limit", ErrProtocol)
		}
	}
	return shape, vol, n, nil
}

// readBlobCount parses the 4-byte tensor count every codec blob leads with.
func readBlobCount(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("%w: tensor blob too short", ErrProtocol)
	}
	count := int(binary.LittleEndian.Uint32(b))
	if count > 1<<20 {
		return 0, fmt.Errorf("%w: tensor count %d", ErrProtocol, count)
	}
	return count, nil
}

// quantRNG is the deterministic stochastic-rounding stream: a Splitmix64
// chain seeded per tensor, yielding 32 fresh bits per element.
type quantRNG struct{ state uint64 }

func newQuantRNG(seed uint64, tensorIndex int) quantRNG {
	return quantRNG{state: tensor.Splitmix64(seed ^ (uint64(tensorIndex)+1)*0x9e3779b97f4a7c15)}
}

func (r *quantRNG) next32() uint32 {
	r.state = tensor.Splitmix64(r.state)
	return uint32(r.state >> 32)
}

// f16FromF32Stoch converts v to an IEEE binary16 with stochastic rounding
// driven by the random bits u: the value rounds to each of its two
// enclosing halves with probability proportional to proximity, so the
// quantization is unbiased in expectation. Overflow clamps to the largest
// finite half (ML states prefer saturation over infinities); values too
// small for even a stochastic promotion flush to signed zero.
func f16FromF32Stoch(v float32, u uint32) uint16 {
	bits := math.Float32bits(v)
	sign := uint16(bits>>16) & 0x8000
	exp := int(bits>>23) & 0xff
	man := bits & 0x7fffff
	if exp == 0xff { // Inf and NaN pass through
		if man != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	}
	e := exp - 112 // re-biased binary16 exponent
	if e >= 0x1f {
		return sign | 0x7bff
	}
	if e > 0 { // normal half: 13 discarded mantissa bits drive the coin
		hm := uint32(e)<<10 + man>>13
		if u&0x1fff < man&0x1fff {
			hm++ // mantissa carry rolls into the exponent
		}
		if hm >= 0x7c00 {
			hm = 0x7bff
		}
		return sign | uint16(hm)
	}
	// Subnormal half: the exact mantissa is (2^23|man) · 2^(e-14).
	shift := uint(14 - e)
	if shift > 32 {
		return sign
	}
	m := man | 0x800000
	var hm uint32
	if shift < 32 {
		hm = m >> shift
	}
	if uint64(u)&(1<<shift-1) < uint64(m)&(1<<shift-1) {
		hm++
	}
	return sign | uint16(hm)
}

// f16ToF32 widens an IEEE binary16 to float32 exactly.
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)
	switch exp {
	case 0x1f:
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	case 0:
		v := float32(man) * 0x1p-24
		if sign != 0 {
			return -v
		}
		return v
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}

// float16Codec ships every element as an IEEE half float: exactly half
// the data bytes of identity, no reference needed, stochastic rounding
// keeps the aggregate unbiased.
type float16Codec struct{}

func (float16Codec) Name() string         { return "float16" }
func (float16Codec) NeedsReference() bool { return false }

func (float16Codec) Encode(_, ts []*tensor.Tensor, seed uint64) ([]byte, error) {
	size := 4
	for _, t := range ts {
		size += 1 + 4*len(t.Shape()) + 2*t.Len()
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts)))
	for ti, t := range ts {
		var err error
		if buf, err = appendTensorHeader(buf, t); err != nil {
			return nil, err
		}
		rng := newQuantRNG(seed, ti)
		for _, v := range t.Data() {
			buf = binary.LittleEndian.AppendUint16(buf, f16FromF32Stoch(v, rng.next32()))
		}
	}
	return buf, nil
}

func (float16Codec) Decode(_, scratch []*tensor.Tensor, b []byte) ([]*tensor.Tensor, error) {
	count, err := readBlobCount(b)
	if err != nil {
		return nil, err
	}
	out := reuseTensorSlice(scratch, count)
	off := 4
	for i := range out {
		shape, vol, n, err := readTensorHeader(b[off:])
		if err != nil {
			return nil, fmt.Errorf("comm: float16 decode tensor %d: %w", i, err)
		}
		off += n
		if len(b) < off+2*vol {
			return nil, fmt.Errorf("%w: float16 tensor %d truncated", ErrProtocol, i)
		}
		out[i] = tensor.Ensure(out[i], shape...)
		data := out[i].Data()
		for j := range data {
			data[j] = f16ToF32(binary.LittleEndian.Uint16(b[off+2*j:]))
		}
		off += 2 * vol
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after tensors", ErrProtocol, len(b)-off)
	}
	return out, nil
}

// int8BlockSize is the quantization-group length of the int8 codec: each
// block of up to 64 consecutive elements gets its own absolute-max scale.
// Blockwise scales isolate magnitude outliers — a tensor-wide scale lets
// one large weight coarsen the step for every element, which measurably
// hurts accuracy over many federated rounds — at 4 bytes per 64 elements
// (~6% overhead, keeping the codec comfortably above 3× vs identity).
const int8BlockSize = 64

// int8Codec quantizes each tensor's delta against the broadcast reference
// to signed bytes blockwise: per block of int8BlockSize elements an f32
// scale (block maxabs/127) followed by the i8 quantized values, ~3.8×
// smaller than identity on realistic shapes. Quantizing the delta rather
// than the state is what keeps the noise harmless: one local round moves
// weights by a small fraction of their magnitude, so a step sized to the
// delta is orders of magnitude finer than a step sized to the weights.
// Stochastic rounding, seeded and deterministic, keeps the expectation
// exact. Because the payload is a delta, int8 — like topk — needs the
// reference on both ends and is refused under the buffered asynchronous
// engine; float16 is the async-safe quantizer.
type int8Codec struct{}

func (int8Codec) Name() string         { return "int8" }
func (int8Codec) NeedsReference() bool { return true }

func (int8Codec) Encode(ref, ts []*tensor.Tensor, seed uint64) ([]byte, error) {
	if len(ref) != len(ts) {
		return nil, fmt.Errorf("%w: int8 codec needs the broadcast reference (%d ref tensors for %d state tensors)",
			ErrProtocol, len(ref), len(ts))
	}
	size := 4
	for _, t := range ts {
		blocks := (t.Len() + int8BlockSize - 1) / int8BlockSize
		size += 1 + 4*len(t.Shape()) + 4*blocks + t.Len()
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts)))
	for ti, t := range ts {
		if !ref[ti].SameShape(t) {
			return nil, fmt.Errorf("%w: int8 reference tensor %d shape mismatch", ErrProtocol, ti)
		}
		var err error
		if buf, err = appendTensorHeader(buf, t); err != nil {
			return nil, err
		}
		rng := newQuantRNG(seed, ti)
		data, rdata := t.Data(), ref[ti].Data()
		for len(data) > 0 {
			blk, rblk := data, rdata
			if len(blk) > int8BlockSize {
				blk, rblk = blk[:int8BlockSize], rblk[:int8BlockSize]
			}
			data, rdata = data[len(blk):], rdata[len(blk):]
			var maxAbs float32
			for j, v := range blk {
				if a := float32(math.Abs(float64(v - rblk[j]))); a > maxAbs {
					maxAbs = a
				}
			}
			scale := maxAbs / 127
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(scale))
			if scale == 0 {
				buf = append(buf, make([]byte, len(blk))...)
				continue
			}
			inv := 1 / float64(scale)
			for j, v := range blk {
				q := float64(v-rblk[j]) * inv
				lo := math.Floor(q)
				if float64(rng.next32()) < (q-lo)*4294967296.0 {
					lo++
				}
				if lo > 127 {
					lo = 127
				} else if lo < -127 {
					lo = -127
				}
				buf = append(buf, byte(int8(lo)))
			}
		}
	}
	return buf, nil
}

func (int8Codec) Decode(ref, scratch []*tensor.Tensor, b []byte) ([]*tensor.Tensor, error) {
	count, err := readBlobCount(b)
	if err != nil {
		return nil, err
	}
	if len(ref) != count {
		return nil, fmt.Errorf("%w: int8 codec needs the broadcast reference (%d ref tensors for %d payload tensors)",
			ErrProtocol, len(ref), count)
	}
	out := reuseTensorSlice(scratch, count)
	off := 4
	for i := range out {
		shape, vol, n, err := readTensorHeader(b[off:])
		if err != nil {
			return nil, fmt.Errorf("comm: int8 decode tensor %d: %w", i, err)
		}
		off += n
		blocks := (vol + int8BlockSize - 1) / int8BlockSize
		if len(b) < off+4*blocks+vol {
			return nil, fmt.Errorf("%w: int8 tensor %d truncated", ErrProtocol, i)
		}
		out[i] = tensor.Ensure(out[i], shape...)
		if !out[i].SameShape(ref[i]) {
			return nil, fmt.Errorf("%w: int8 reference tensor %d shape mismatch", ErrProtocol, i)
		}
		data, rdata := out[i].Data(), ref[i].Data()
		for len(data) > 0 {
			blk, rblk := data, rdata
			if len(blk) > int8BlockSize {
				blk, rblk = blk[:int8BlockSize], rblk[:int8BlockSize]
			}
			data, rdata = data[len(blk):], rdata[len(blk):]
			scale := math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			for j := range blk {
				blk[j] = rblk[j] + scale*float32(int8(b[off+j]))
			}
			off += len(blk)
		}
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after tensors", ErrProtocol, len(b)-off)
	}
	return out, nil
}
