package comm

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrameBytes bounds a single message frame (64 MiB) so a corrupt length
// prefix cannot trigger an enormous allocation.
const maxFrameBytes = 64 << 20

// Envelope is one framed message: a type tag and a gob-encoded body.
type Envelope struct {
	// Type identifies the body's Go type.
	Type MsgType
	// Body is the gob-encoded message struct.
	Body []byte
}

// EncodeBody gob-encodes a message struct into an envelope.
func EncodeBody(t MsgType, v any) (Envelope, error) {
	var buf bytesBuffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return Envelope{}, fmt.Errorf("comm: encode %v: %w", t, err)
	}
	return Envelope{Type: t, Body: buf.b}, nil
}

// DecodeBody gob-decodes an envelope body into v (a pointer).
func DecodeBody(e Envelope, v any) error {
	if err := gob.NewDecoder(&byteReader{b: e.Body}).Decode(v); err != nil {
		return fmt.Errorf("comm: decode %v: %w", e.Type, err)
	}
	return nil
}

// bytesBuffer is a minimal io.Writer over a growing byte slice (avoids
// pulling in bytes.Buffer's unused machinery in hot paths).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// byteReader is a minimal io.Reader over a byte slice.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

// Conn is a bidirectional, message-oriented connection between one client
// and the server. Send and Recv are each safe for one goroutine at a time.
type Conn interface {
	// Send writes one envelope.
	Send(Envelope) error
	// Recv reads the next envelope, blocking until one arrives.
	Recv() (Envelope, error)
	// Close releases the connection; pending Recv calls fail.
	Close() error
}

// TCPConn frames envelopes over a net.Conn:
// 4-byte little-endian length, 1-byte type, body.
type TCPConn struct {
	conn net.Conn

	sendMu sync.Mutex
	recvMu sync.Mutex
}

var _ Conn = (*TCPConn)(nil)

// NewTCPConn wraps an established net.Conn.
func NewTCPConn(conn net.Conn) *TCPConn { return &TCPConn{conn: conn} }

// Send implements Conn.
func (c *TCPConn) Send(e Envelope) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if len(e.Body) > maxFrameBytes {
		return fmt.Errorf("%w: frame %d bytes exceeds limit", ErrProtocol, len(e.Body))
	}
	header := make([]byte, 5)
	binary.LittleEndian.PutUint32(header, uint32(len(e.Body)))
	header[4] = byte(e.Type)
	if _, err := c.conn.Write(header); err != nil {
		return fmt.Errorf("comm: write header: %w", err)
	}
	if _, err := c.conn.Write(e.Body); err != nil {
		return fmt.Errorf("comm: write body: %w", err)
	}
	return nil
}

// Recv implements Conn.
func (c *TCPConn) Recv() (Envelope, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	header := make([]byte, 5)
	if _, err := io.ReadFull(c.conn, header); err != nil {
		return Envelope{}, fmt.Errorf("comm: read header: %w", err)
	}
	size := binary.LittleEndian.Uint32(header)
	if size > maxFrameBytes {
		return Envelope{}, fmt.Errorf("%w: frame %d bytes exceeds limit", ErrProtocol, size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(c.conn, body); err != nil {
		return Envelope{}, fmt.Errorf("comm: read body: %w", err)
	}
	return Envelope{Type: MsgType(header[4]), Body: body}, nil
}

// Close implements Conn.
func (c *TCPConn) Close() error { return c.conn.Close() }

// SetDeadline bounds both read and write operations.
func (c *TCPConn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Listener accepts federated clients.
type Listener interface {
	// Accept blocks for the next client connection.
	Accept() (Conn, error)
	// Addr returns the listen address.
	Addr() string
	// Close stops accepting.
	Close() error
}

// TCPListener adapts net.Listener to the comm.Listener interface.
type TCPListener struct {
	l net.Listener
}

var _ Listener = (*TCPListener)(nil)

// ListenTCP starts a listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (*TCPListener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	return &TCPListener{l: l}, nil
}

// Accept implements Listener.
func (t *TCPListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("comm: accept: %w", err)
	}
	return NewTCPConn(c), nil
}

// Addr implements Listener.
func (t *TCPListener) Addr() string { return t.l.Addr().String() }

// Close implements Listener.
func (t *TCPListener) Close() error { return t.l.Close() }

// DialTCP connects to a fedserver.
func DialTCP(addr string, timeout time.Duration) (*TCPConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("comm: dial %s: %w", addr, err)
	}
	return NewTCPConn(c), nil
}

// Pipe returns a connected in-process transport pair, used by tests and the
// single-process distributed example. Each side's Send delivers to the other
// side's Recv through a buffered channel.
func Pipe() (Conn, Conn) {
	a2b := make(chan Envelope, 1)
	b2a := make(chan Envelope, 1)
	done := make(chan struct{})
	var once sync.Once
	closeDone := func() { once.Do(func() { close(done) }) }
	a := &pipeConn{send: a2b, recv: b2a, done: done, close: closeDone}
	b := &pipeConn{send: b2a, recv: a2b, done: done, close: closeDone}
	return a, b
}

// pipeConn is one side of an in-process connection.
type pipeConn struct {
	send  chan Envelope
	recv  chan Envelope
	done  chan struct{}
	close func()
}

var _ Conn = (*pipeConn)(nil)

// Send implements Conn.
func (p *pipeConn) Send(e Envelope) error {
	select {
	case p.send <- e:
		return nil
	case <-p.done:
		return fmt.Errorf("%w: connection closed", ErrProtocol)
	}
}

// Recv implements Conn.
func (p *pipeConn) Recv() (Envelope, error) {
	select {
	case e := <-p.recv:
		return e, nil
	case <-p.done:
		// Drain anything already queued before reporting closure.
		select {
		case e := <-p.recv:
			return e, nil
		default:
		}
		return Envelope{}, fmt.Errorf("%w: connection closed", ErrProtocol)
	}
}

// Close implements Conn.
func (p *pipeConn) Close() error {
	p.close()
	return nil
}
