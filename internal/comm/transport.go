package comm

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxFrameBytes bounds a single message frame (64 MiB) so a corrupt length
// prefix cannot trigger an enormous allocation.
const maxFrameBytes = 64 << 20

// Envelope is one framed message: a type tag and a gob-encoded body.
type Envelope struct {
	// Type identifies the body's Go type.
	Type MsgType
	// Body is the gob-encoded message struct.
	Body []byte
}

// EncodeBody gob-encodes a message struct into an envelope.
func EncodeBody(t MsgType, v any) (Envelope, error) {
	var buf bytesBuffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return Envelope{}, fmt.Errorf("comm: encode %v: %w", t, err)
	}
	return Envelope{Type: t, Body: buf.b}, nil
}

// DecodeBody gob-decodes an envelope body into v (a pointer).
func DecodeBody(e Envelope, v any) error {
	if err := gob.NewDecoder(&byteReader{b: e.Body}).Decode(v); err != nil {
		return fmt.Errorf("comm: decode %v: %w", e.Type, err)
	}
	return nil
}

// bytesBuffer is a minimal io.Writer over a growing byte slice (avoids
// pulling in bytes.Buffer's unused machinery in hot paths).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// byteReader is a minimal io.Reader over a byte slice.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

// Conn is a bidirectional, message-oriented connection between one client
// and the server. Send and Recv are each safe for one goroutine at a time.
type Conn interface {
	// Send writes one envelope.
	Send(Envelope) error
	// Recv reads the next envelope, blocking until one arrives.
	Recv() (Envelope, error)
	// Close releases the connection; pending Recv calls fail.
	Close() error
}

// DeadlineConn is a Conn whose blocking Send and Recv calls can be bounded
// in time. Both transports implement it; the RoundEngine uses it to turn a
// hung client into a timeout instead of a wedged server.
type DeadlineConn interface {
	Conn
	// SetDeadline bounds all future Send and Recv calls. The zero time
	// clears the deadline.
	SetDeadline(time.Time) error
}

// TCPConn frames envelopes over a net.Conn:
// 4-byte little-endian length, 1-byte type, body.
//
// A deadline that expires between frames is a clean timeout: the stream
// stays aligned and the connection remains usable (the round engine's
// straggler-rejoin path relies on this). A deadline that expires mid-frame
// leaves the stream desynchronized, so the connection marks itself broken
// and every later call fails with ErrProtocol — never a timeout — which
// makes the engine drop the client instead of reusing a corrupt stream.
type TCPConn struct {
	conn net.Conn

	sendMu sync.Mutex
	recvMu sync.Mutex
	broken atomic.Bool
}

var _ Conn = (*TCPConn)(nil)

// NewTCPConn wraps an established net.Conn.
func NewTCPConn(conn net.Conn) *TCPConn { return &TCPConn{conn: conn} }

// DesyncError reports a frame operation that failed mid-frame, leaving the
// stream desynchronized. It matches ErrProtocol under errors.Is but
// deliberately does NOT unwrap to its cause: a mid-frame deadline expiry
// must classify as a protocol error (drop the corrupt connection), never as
// a recoverable timeout. Callers that need the cause — e.g. fedclient
// telling a severed connection from a local fault — read Cause directly.
type DesyncError struct {
	// Op names the failed frame operation ("write body", "read header", ...).
	Op string
	// Cause is the underlying transport error. Not part of the Is/As chain.
	Cause error
}

// Error implements error.
func (e *DesyncError) Error() string {
	return fmt.Sprintf("%v: %s failed mid-frame, stream desynchronized: %v", ErrProtocol, e.Op, e.Cause)
}

// Is reports ErrProtocol, the class every desynchronized stream belongs to.
func (e *DesyncError) Is(target error) bool { return target == ErrProtocol }

// desync marks the stream unusable and returns the wrapping error.
func (c *TCPConn) desync(op string, err error) error {
	c.broken.Store(true)
	return &DesyncError{Op: op, Cause: err}
}

// Send implements Conn.
func (c *TCPConn) Send(e Envelope) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.broken.Load() {
		return fmt.Errorf("%w: connection desynchronized", ErrProtocol)
	}
	if len(e.Body) > maxFrameBytes {
		return fmt.Errorf("%w: frame %d bytes exceeds limit", ErrProtocol, len(e.Body))
	}
	header := make([]byte, 5)
	binary.LittleEndian.PutUint32(header, uint32(len(e.Body)))
	header[4] = byte(e.Type)
	if n, err := c.conn.Write(header); err != nil {
		if n > 0 {
			return c.desync("write header", err)
		}
		return fmt.Errorf("comm: write header: %w", err)
	}
	if _, err := c.conn.Write(e.Body); err != nil {
		// The header is already on the wire; the frame is incomplete.
		return c.desync("write body", err)
	}
	return nil
}

// Recv implements Conn.
func (c *TCPConn) Recv() (Envelope, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.broken.Load() {
		return Envelope{}, fmt.Errorf("%w: connection desynchronized", ErrProtocol)
	}
	header := make([]byte, 5)
	if n, err := io.ReadFull(c.conn, header); err != nil {
		if n > 0 {
			return Envelope{}, c.desync("read header", err)
		}
		return Envelope{}, fmt.Errorf("comm: read header: %w", err)
	}
	size := binary.LittleEndian.Uint32(header)
	if size > maxFrameBytes {
		return Envelope{}, fmt.Errorf("%w: frame %d bytes exceeds limit", ErrProtocol, size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(c.conn, body); err != nil {
		return Envelope{}, c.desync("read body", err)
	}
	return Envelope{Type: MsgType(header[4]), Body: body}, nil
}

// Close implements Conn.
func (c *TCPConn) Close() error { return c.conn.Close() }

// SetDeadline bounds both read and write operations.
func (c *TCPConn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Listener accepts federated clients.
type Listener interface {
	// Accept blocks for the next client connection.
	Accept() (Conn, error)
	// Addr returns the listen address.
	Addr() string
	// Close stops accepting.
	Close() error
}

// TCPListener adapts net.Listener to the comm.Listener interface.
type TCPListener struct {
	l net.Listener
}

var _ Listener = (*TCPListener)(nil)

// ListenTCP starts a listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (*TCPListener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	return &TCPListener{l: l}, nil
}

// Accept implements Listener.
func (t *TCPListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("comm: accept: %w", err)
	}
	return NewTCPConn(c), nil
}

// Addr implements Listener.
func (t *TCPListener) Addr() string { return t.l.Addr().String() }

// Close implements Listener.
func (t *TCPListener) Close() error { return t.l.Close() }

// DialTCP connects to a fedserver.
func DialTCP(addr string, timeout time.Duration) (*TCPConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("comm: dial %s: %w", addr, err)
	}
	return NewTCPConn(c), nil
}

// dialRetryBase is the first backoff delay of DialTCPRetry; each further
// attempt doubles it, capped at dialRetryCap. Package variables so tests
// can compress the schedule.
var (
	dialRetryBase = 100 * time.Millisecond
	dialRetryCap  = 5 * time.Second
)

// DialTCPRetry is DialTCP with a bounded exponential-backoff retry loop for
// transient startup races (a client or relay launched moments before its
// server listens): after a failed dial it sleeps base, 2·base, 4·base, ...
// (capped) and redials, up to retries additional attempts. retries <= 0
// behaves exactly like DialTCP. The last dial error is returned, wrapped
// with the attempt count.
func DialTCPRetry(addr string, timeout time.Duration, retries int) (*TCPConn, error) {
	conn, err := DialTCP(addr, timeout)
	if err == nil || retries <= 0 {
		return conn, err
	}
	backoff := dialRetryBase
	for attempt := 1; attempt <= retries; attempt++ {
		time.Sleep(backoff)
		if backoff *= 2; backoff > dialRetryCap {
			backoff = dialRetryCap
		}
		if conn, err = DialTCP(addr, timeout); err == nil {
			return conn, nil
		}
	}
	return nil, fmt.Errorf("comm: dial %s failed after %d attempts: %w", addr, retries+1, err)
}

// Pipe returns a connected in-process transport pair, used by tests and the
// single-process distributed example. Each side's Send delivers to the other
// side's Recv through a buffered channel.
func Pipe() (Conn, Conn) {
	a2b := make(chan Envelope, 1)
	b2a := make(chan Envelope, 1)
	done := make(chan struct{})
	var once sync.Once
	closeDone := func() { once.Do(func() { close(done) }) }
	a := &pipeConn{send: a2b, recv: b2a, done: done, close: closeDone}
	b := &pipeConn{send: b2a, recv: a2b, done: done, close: closeDone}
	return a, b
}

// pipeConn is one side of an in-process connection.
type pipeConn struct {
	send  chan Envelope
	recv  chan Envelope
	done  chan struct{}
	close func()

	mu       sync.Mutex
	deadline time.Time
}

var _ DeadlineConn = (*pipeConn)(nil)

// SetDeadline implements DeadlineConn.
func (p *pipeConn) SetDeadline(t time.Time) error {
	p.mu.Lock()
	p.deadline = t
	p.mu.Unlock()
	return nil
}

// expiry returns a channel that fires at the current deadline, or a nil
// channel (blocks forever) when no deadline is set. The returned error is
// non-nil when the deadline has already passed.
func (p *pipeConn) expiry() (<-chan time.Time, *time.Timer, error) {
	p.mu.Lock()
	d := p.deadline
	p.mu.Unlock()
	if d.IsZero() {
		return nil, nil, nil
	}
	rem := time.Until(d)
	if rem <= 0 {
		return nil, nil, fmt.Errorf("comm: pipe: %w", ErrTimeout)
	}
	timer := time.NewTimer(rem)
	return timer.C, timer, nil
}

// Send implements Conn.
func (p *pipeConn) Send(e Envelope) error {
	expired, timer, err := p.expiry()
	if err != nil {
		return err
	}
	if timer != nil {
		defer timer.Stop()
	}
	// Fail deterministically once closed: with buffer space free, the
	// select below could otherwise pick the send case at random.
	select {
	case <-p.done:
		return fmt.Errorf("%w: connection closed", ErrProtocol)
	default:
	}
	select {
	case p.send <- e:
		return nil
	case <-p.done:
		return fmt.Errorf("%w: connection closed", ErrProtocol)
	case <-expired:
		return fmt.Errorf("comm: pipe send: %w", ErrTimeout)
	}
}

// Recv implements Conn.
func (p *pipeConn) Recv() (Envelope, error) {
	expired, timer, err := p.expiry()
	if err != nil {
		return Envelope{}, err
	}
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case e := <-p.recv:
		return e, nil
	case <-p.done:
		// Drain anything already queued before reporting closure.
		select {
		case e := <-p.recv:
			return e, nil
		default:
		}
		return Envelope{}, fmt.Errorf("%w: connection closed", ErrProtocol)
	case <-expired:
		return Envelope{}, fmt.Errorf("comm: pipe recv: %w", ErrTimeout)
	}
}

// Close implements Conn.
func (p *pipeConn) Close() error {
	p.close()
	return nil
}

// PipeListener serves the server halves of pre-created in-process pipe
// pairs, so a ServerSession and its clients can run the full wire protocol
// inside one process (tests and the examples/straggler distributed demo).
type PipeListener struct {
	mu     sync.Mutex
	server []Conn
	client []Conn
	next   int
}

var _ Listener = (*PipeListener)(nil)

// NewPipeListener creates n connected pipe pairs. The server halves are
// handed out by Accept; ClientSide returns the matching client halves.
func NewPipeListener(n int) *PipeListener {
	l := &PipeListener{server: make([]Conn, n), client: make([]Conn, n)}
	for i := range l.server {
		l.server[i], l.client[i] = Pipe()
	}
	return l
}

// ClientSide returns the client half of pair i.
func (l *PipeListener) ClientSide(i int) Conn { return l.client[i] }

// Accept implements Listener.
func (l *PipeListener) Accept() (Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next >= len(l.server) {
		return nil, fmt.Errorf("%w: all %d pipe clients accepted", ErrProtocol, len(l.server))
	}
	c := l.server[l.next]
	l.next++
	return c, nil
}

// Addr implements Listener.
func (l *PipeListener) Addr() string { return "pipe" }

// Close implements Listener.
func (l *PipeListener) Close() error { return nil }
