package comm

import (
	"errors"
	"math"
	"net"
	"reflect"
	"testing"

	"fedfteds/internal/tensor"
)

// regionEqual compares RegionUpdates with a NaN-tolerant MeanEntropy (NaN
// is the wire value for "no leaf reported an entropy").
func regionEqual(a, b RegionUpdate) bool {
	ea, eb := a.MeanEntropy, b.MeanEntropy
	a.MeanEntropy, b.MeanEntropy = 0, 0
	if !reflect.DeepEqual(a, b) {
		return false
	}
	if math.IsNaN(ea) || math.IsNaN(eb) {
		return math.IsNaN(ea) && math.IsNaN(eb)
	}
	return ea == eb
}

// FuzzRegionUpdateRoundTrip round-trips the hierarchical tier's upstream
// frame through the gob envelope: every field — including the NaN entropy
// sentinel and the version stamp — must survive byte-exact, and every strict
// prefix of the encoded body must be rejected by DecodeBody rather than
// decode into a silently-truncated region delta.
func FuzzRegionUpdateRoundTrip(f *testing.F) {
	f.Add(0, 1, 0, 48.0, 3, 48, 1.5, 0.25, 0.9, false, 10)
	f.Add(7, 12, 11, 0.5, 1, 1, 0.0, 4.0, 0.0, true, 1)    // stale + NaN entropy
	f.Add(1, 1, 1, 16.0, 2, 16, 2.25, 1.0, 1.25, false, 0) // zero-length prefix

	f.Fuzz(func(t *testing.T, relayID, round, version int, weight float64,
		clients, nsel int, secs, loss, entropy float64, nanEntropy bool, cut int) {
		if nanEntropy {
			entropy = math.NaN()
		}
		if math.IsNaN(weight) || math.IsNaN(secs) || math.IsNaN(loss) {
			t.Skip("NaN is only meaningful in MeanEntropy")
		}
		ru := RegionUpdate{
			RelayID: relayID, Round: round, Version: version,
			State:  mustEncode(t, []*tensor.Tensor{tensor.New(2, 2), tensor.New(3)}),
			Weight: weight, Clients: clients, NumSelected: nsel,
			TrainSeconds: secs, TrainLoss: loss, MeanEntropy: entropy,
		}
		env, err := EncodeBody(MsgRegionUpdate, ru)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		var got RegionUpdate
		if err := DecodeBody(env, &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !regionEqual(ru, got) {
			t.Fatalf("round-trip: sent %+v, got %+v", ru, got)
		}

		// A strict prefix is a torn frame: gob's internal length delimiting
		// must reject it, never hand back a partially-filled struct.
		if n := len(env.Body); n > 0 {
			idx := cut % n
			if idx < 0 {
				idx += n
			}
			var cutGot RegionUpdate
			if err := DecodeBody(Envelope{Type: env.Type, Body: env.Body[:idx]}, &cutGot); err == nil {
				t.Fatalf("truncated body (%d of %d bytes) decoded silently", idx, n)
			}
		}
	})
}

// TestRegionFrameTruncationRejected sweeps every strict prefix of one
// encoded RegionUpdate — the deterministic CI companion to the fuzz target.
func TestRegionFrameTruncationRejected(t *testing.T) {
	ru := RegionUpdate{
		RelayID: 1, Round: 3, Version: 2,
		State:  mustEncode(t, []*tensor.Tensor{tensor.New(4)}),
		Weight: 32, Clients: 2, NumSelected: 32,
		TrainSeconds: 1.5, TrainLoss: 0.75, MeanEntropy: 1.25,
	}
	env, err := EncodeBody(MsgRegionUpdate, ru)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(env.Body); cut++ {
		var got RegionUpdate
		if err := DecodeBody(Envelope{Type: env.Type, Body: env.Body[:cut]}, &got); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded silently", cut, len(env.Body))
		}
	}
}

// TestVersionStampedFramesRoundTrip pins the async additions to the legacy
// frames: RoundStart's version stamp and relay layout, and ClientUpdate's
// version echo, round-trip exactly — including the zero values legacy peers
// send, which gob omits from the wire entirely.
func TestVersionStampedFramesRoundTrip(t *testing.T) {
	for _, rs := range []RoundStart{
		{Round: 1, SelectFraction: 0.5, LocalEpochs: 1},                               // legacy sync frame
		{Round: 4, SelectFraction: 0.5, LocalEpochs: 2, Version: 3},                   // async dispatch
		{Round: 2, SelectFraction: 1, LocalEpochs: 1, Layout: []string{"low", "mid"}}, // relay broadcast
		{Round: 9, SelectFraction: 0.25, LocalEpochs: 1, Version: 8, Layout: []string{"up"}},
	} {
		env, err := EncodeBody(MsgRoundStart, rs)
		if err != nil {
			t.Fatal(err)
		}
		var got RoundStart
		if err := DecodeBody(env, &got); err != nil {
			t.Fatal(err)
		}
		if got.Version != rs.Version || !reflect.DeepEqual(got.Layout, rs.Layout) {
			t.Fatalf("sent %+v, got %+v", rs, got)
		}
	}
	for _, version := range []int{0, 1, 41} {
		u := ClientUpdate{ClientID: 2, Round: 5, NumSelected: 7, Version: version,
			State: mustEncode(t, []*tensor.Tensor{tensor.New(1)})}
		env, err := EncodeBody(MsgClientUpdate, u)
		if err != nil {
			t.Fatal(err)
		}
		var got ClientUpdate
		if err := DecodeBody(env, &got); err != nil {
			t.Fatal(err)
		}
		if got.Version != version {
			t.Fatalf("version %d decoded as %d", version, got.Version)
		}
	}
}

// TestTCPFrameLengthCorruptionRejected corrupts the transport-level length
// prefix: a frame claiming more than the 64 MiB cap must be refused before
// any allocation, classified as a protocol error.
func TestTCPFrameLengthCorruptionRejected(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		// 5-byte header: little-endian length (cap + 1), then the type tag.
		header := []byte{0x01, 0x00, 0x00, 0x04, byte(MsgRegionUpdate)}
		_, _ = client.Write(header)
	}()
	if _, err := NewTCPConn(server).Recv(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized frame length: got %v, want ErrProtocol", err)
	}
}
