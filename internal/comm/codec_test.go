package comm

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fedfteds/internal/tensor"
)

// randomTensors builds a deterministic random tensor list: count tensors of
// random rank ≤ 3 and random dims, values in [-2, 2].
func randomTensors(rng *rand.Rand, count int) []*tensor.Tensor {
	ts := make([]*tensor.Tensor, count)
	for i := range ts {
		rank := 1 + rng.Intn(3)
		shape := make([]int, rank)
		for d := range shape {
			shape[d] = 1 + rng.Intn(7)
		}
		ts[i] = tensor.New(shape...)
		ts[i].FillUniform(rng, -2, 2)
	}
	return ts
}

func cloneAll(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// TestIdentityCodecBitIdenticalToLegacyFrames pins the identity codec to
// the legacy tensor blob: Encode must equal EncodeTensors byte for byte and
// Decode must accept legacy blobs, for any shapes. This is the contract
// that keeps golden checkpoints, resume and the relay/async equivalence
// gates valid on codec-aware builds.
func TestIdentityCodecBitIdenticalToLegacyFrames(t *testing.T) {
	c, err := ParseCodec("identity")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		ts := randomTensors(rng, 1+rng.Intn(6))
		legacy, err := EncodeTensors(ts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Encode(nil, ts, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, legacy) {
			t.Fatalf("trial %d: identity Encode diverges from EncodeTensors", trial)
		}
		dec, err := c.Decode(nil, nil, legacy)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ts {
			if !ts[i].Equal(dec[i]) {
				t.Fatalf("trial %d: identity Decode tensor %d mismatch", trial, i)
			}
		}
	}
}

// TestCodecRoundTripProperty fuzzes Encode/Decode for every codec over
// random shapes: shapes must survive exactly, values within the codec's
// quantization tolerance, and the same (ref, ts, seed) must reproduce the
// same bytes (determinism is what makes runs resumable).
func TestCodecRoundTripProperty(t *testing.T) {
	specs := []struct {
		spec string
		tol  func(maxAbs float64) float64
	}{
		{"identity", func(float64) float64 { return 0 }},
		// Half precision resolves ~2^-11 of the value's scale; stochastic
		// rounding can land one ulp either way.
		{"float16", func(maxAbs float64) float64 { return math.Max(maxAbs/1024, 1e-6) }},
		// int8 quantizes the delta against ref in blocks; the worst-case step
		// is delta-maxabs/127, and stochastic rounding stays within one step.
		{"int8", func(maxAbs float64) float64 { return maxAbs / 127 * 1.01 }},
		// topk:1 keeps every entry, so delta coding must be exact.
		{"topk:1", func(float64) float64 { return 1e-6 }},
	}
	for _, s := range specs {
		t.Run(s.spec, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			var scratch []*tensor.Tensor
			for trial := 0; trial < 40; trial++ {
				c, err := ParseCodec(s.spec)
				if err != nil {
					t.Fatal(err)
				}
				ts := randomTensors(rng, 1+rng.Intn(5))
				ref := make([]*tensor.Tensor, len(ts))
				for i := range ref {
					ref[i] = tensor.New(ts[i].Shape()...)
					ref[i].FillUniform(rng, -2, 2)
				}
				seed := uint64(trial) * 1337
				blob, err := c.Encode(ref, ts, seed)
				if err != nil {
					t.Fatal(err)
				}
				// Fresh instance, same inputs, same bytes.
				c2, _ := ParseCodec(s.spec)
				blob2, err := c2.Encode(ref, cloneAll(ts), seed)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(blob, blob2) {
					t.Fatalf("trial %d: encode not deterministic", trial)
				}
				dec, err := c.Decode(ref, scratch, blob)
				if err != nil {
					t.Fatal(err)
				}
				scratch = dec[:cap(dec)]
				if len(dec) != len(ts) {
					t.Fatalf("trial %d: decoded %d tensors, want %d", trial, len(dec), len(ts))
				}
				for i := range ts {
					if !ts[i].SameShape(dec[i]) {
						t.Fatalf("trial %d: tensor %d shape mismatch", trial, i)
					}
					// Delta codecs quantize ts - ref, so their tolerance
					// scales with the delta's magnitude, not the value's.
					var maxAbs float64
					for j, v := range ts[i].Data() {
						x := float64(v)
						if c.NeedsReference() {
							x = float64(v - ref[i].Data()[j])
						}
						if a := math.Abs(x); a > maxAbs {
							maxAbs = a
						}
					}
					tol := float32(s.tol(maxAbs))
					if !ts[i].AllClose(dec[i], tol) {
						t.Fatalf("trial %d: tensor %d outside tolerance %v", trial, i, tol)
					}
				}
			}
		})
	}
}

// TestQuantizationUnbiased checks the stochastic rounding is unbiased: the
// mean of many independently seeded quantizations of one value converges
// to the value itself, for both quantizers.
func TestQuantizationUnbiased(t *testing.T) {
	for _, spec := range []string{"float16", "int8"} {
		t.Run(spec, func(t *testing.T) {
			c, err := ParseCodec(spec)
			if err != nil {
				t.Fatal(err)
			}
			// A value deliberately between quantization points, plus an
			// extreme to fix int8's scale. The zero reference makes int8's
			// delta equal the value itself (float16 ignores it).
			src := tensor.MustFromSlice([]float32{0.337731, 1.0}, 2)
			ref := []*tensor.Tensor{tensor.New(2)}
			var sum float64
			const trials = 4000
			for i := 0; i < trials; i++ {
				blob, err := c.Encode(ref, []*tensor.Tensor{src}, uint64(i))
				if err != nil {
					t.Fatal(err)
				}
				dec, err := c.Decode(ref, nil, blob)
				if err != nil {
					t.Fatal(err)
				}
				sum += float64(dec[0].Data()[0])
			}
			mean := sum / trials
			if math.Abs(mean-0.337731) > 3e-4 {
				t.Fatalf("stochastic rounding biased: mean %v, want ≈0.337731", mean)
			}
		})
	}
}

// TestFloat16Widening pins the half-precision conversion pair on exact and
// edge values.
func TestFloat16Widening(t *testing.T) {
	cases := []float32{0, 1, -1, 0.5, 2, 65504, -65504, 6.1035156e-05, 5.9604645e-08}
	for _, v := range cases {
		h := f16FromF32Stoch(v, 0)
		if got := f16ToF32(h); got != v {
			t.Fatalf("f16 round trip of exactly-representable %v gave %v", v, got)
		}
	}
	if got := f16ToF32(f16FromF32Stoch(1e9, 0)); got != 65504 {
		t.Fatalf("overflow should clamp to 65504, got %v", got)
	}
	if h := f16FromF32Stoch(float32(math.NaN()), 0); h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Fatalf("NaN must stay NaN, got %#x", h)
	}
}

// TestTopKCompressionAndResiduals checks topk ships only k entries per
// tensor and that the dropped delta mass lands in the residual: sent plus
// residual must reconstruct the dense delta exactly.
func TestTopKCompressionAndResiduals(t *testing.T) {
	c, err := ParseCodec("topk:0.1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	ts := []*tensor.Tensor{tensor.New(10, 10)}
	ref := []*tensor.Tensor{tensor.New(10, 10)}
	ts[0].FillUniform(rng, -1, 1)
	ref[0].FillUniform(rng, -1, 1)
	blob, err := c.Encode(ref, ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 4-byte count + rank/dims header (9) + u32 k + 10 entries of 8 bytes.
	if want := 4 + 9 + 4 + 10*8; len(blob) != want {
		t.Fatalf("topk:0.1 blob is %d bytes, want %d", len(blob), want)
	}
	dec, err := c.Decode(ref, nil, blob)
	if err != nil {
		t.Fatal(err)
	}
	res := c.(ResidualCarrier).ResidualState()
	if len(res) != 1 {
		t.Fatalf("expected 1 residual tensor, got %d", len(res))
	}
	// decoded - ref + residual == ts - ref  (what was sent plus what was
	// withheld is the whole delta).
	for j, want := range ts[0].Data() {
		got := dec[0].Data()[j] + res[0].Data()[j]
		if math.Abs(float64(got-want)) > 1e-6 {
			t.Fatalf("entry %d: sent+residual %v, dense %v", j, got, want)
		}
	}
}

// TestTopKErrorFeedbackConvergence drives R rounds of the case error
// feedback exists for: a persistent dense gradient field where most
// coordinates are individually too small to ever make the top-k cut. With
// residual carry-over, withheld mass accumulates until every coordinate
// periodically ships, so the server tracks the dense trajectory R·g within
// a bounded (O(1/frac) rounds' worth) error. With residuals discarded the
// same below-threshold coordinates are suppressed forever and the server
// diverges from the dense run.
func TestTopKErrorFeedbackConvergence(t *testing.T) {
	const rounds = 400
	rng := rand.New(rand.NewSource(11))
	grad := tensor.New(20, 20)
	grad.FillUniform(rng, 0.1, 1)
	run := func(keepResiduals bool) float64 {
		c, _ := ParseCodec("topk:0.05")
		server := tensor.New(20, 20)
		client := tensor.New(20, 20)
		var scratch []*tensor.Tensor
		for r := 0; r < rounds; r++ {
			// The FL loop: client starts at the broadcast, trains one step
			// of the fixed gradient field, ships a sparse delta.
			if err := client.CopyFrom(server); err != nil {
				t.Fatal(err)
			}
			if err := client.Add(grad); err != nil {
				t.Fatal(err)
			}
			ref := []*tensor.Tensor{server}
			if !keepResiduals {
				if err := c.(ResidualCarrier).RestoreResidualState(nil); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := c.Encode(ref, []*tensor.Tensor{client}, uint64(r))
			if err != nil {
				t.Fatal(err)
			}
			dec, err := c.Decode(ref, scratch, blob)
			if err != nil {
				t.Fatal(err)
			}
			scratch = dec[:cap(dec)]
			if err := server.CopyFrom(dec[0]); err != nil {
				t.Fatal(err)
			}
		}
		// Relative tracking error against the dense trajectory R·g.
		var num, den float64
		for j, g := range grad.Data() {
			want := float64(g) * rounds
			diff := float64(server.Data()[j]) - want
			num += diff * diff
			den += want * want
		}
		return math.Sqrt(num / den)
	}
	withEF := run(true)
	withoutEF := run(false)
	if withEF > 0.25 {
		t.Fatalf("topk with error feedback drifted %.1f%% from the dense run, want ≤ 25%%", 100*withEF)
	}
	if withoutEF < 2*withEF {
		t.Fatalf("control failed: without residuals drift %.1f%% should dwarf the EF drift %.1f%%",
			100*withoutEF, 100*withEF)
	}
}

// TestParseCodecSpecs exercises the registry: canonical names round-trip
// and malformed specs fail with actionable errors.
func TestParseCodecSpecs(t *testing.T) {
	good := map[string]string{
		"":          "identity",
		"identity":  "identity",
		"float16":   "float16",
		"int8":      "int8",
		"topk":      "topk:0.05",
		"topk:0.25": "topk:0.25",
	}
	for spec, want := range good {
		c, err := ParseCodec(spec)
		if err != nil {
			t.Fatalf("ParseCodec(%q): %v", spec, err)
		}
		if c.Name() != want {
			t.Fatalf("ParseCodec(%q).Name() = %q, want %q", spec, c.Name(), want)
		}
		// Canonical names must reparse to themselves.
		c2, err := ParseCodec(c.Name())
		if err != nil || c2.Name() != c.Name() {
			t.Fatalf("canonical name %q does not round-trip: %v", c.Name(), err)
		}
	}
	for _, spec := range []string{"gzip", "topk:0", "topk:1.5", "topk:x", "int8:7", "identity:x"} {
		if _, err := ParseCodec(spec); err == nil {
			t.Fatalf("ParseCodec(%q) should fail", spec)
		}
	}
}

// TestPickCodecNegotiation exercises the client side of the Hello/Welcome
// negotiation, including the actionable-mismatch contract.
func TestPickCodecNegotiation(t *testing.T) {
	if c, err := PickCodec(nil, "auto"); err != nil || c.Name() != "identity" {
		t.Fatalf("auto against a silent server should pick identity, got %v, %v", c, err)
	}
	if c, err := PickCodec([]string{"int8"}, ""); err != nil || c.Name() != "int8" {
		t.Fatalf("auto should adopt the advertisement, got %v, %v", c, err)
	}
	if c, err := PickCodec([]string{"topk:0.05"}, "topk"); err != nil || c.Name() != "topk:0.05" {
		t.Fatalf("matching explicit spec should succeed, got %v, %v", c, err)
	}
	_, err := PickCodec([]string{"int8"}, "float16")
	if err == nil || !strings.Contains(err.Error(), "int8") || !strings.Contains(err.Error(), "float16") {
		t.Fatalf("mismatch error must name both sides, got %v", err)
	}
	if _, err := PickCodec(nil, "gzip"); err == nil {
		t.Fatal("unknown explicit codec should fail")
	}
	if _, err := PickCodec([]string{"gzip"}, "auto"); err == nil {
		t.Fatal("auto against an unsupported advertisement should fail")
	}
}

// TestAggregatorCodecPaths checks both streaming aggregators fold
// codec-encoded updates to the same result as their identity paths (int8:
// within quantization tolerance) and reject a codec-echo mismatch without
// touching the aggregate.
func TestAggregatorCodecPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := []*tensor.Tensor{tensor.New(4, 4), tensor.New(4)}
	for _, r := range ref {
		r.FillUniform(rng, -1, 1)
	}
	mkUpdate := func(c Codec, id int) ClientUpdate {
		ts := []*tensor.Tensor{tensor.New(4, 4), tensor.New(4)}
		rng2 := rand.New(rand.NewSource(int64(100 + id)))
		for _, s := range ts {
			s.FillUniform(rng2, -1, 1)
		}
		blob, err := c.Encode(ref, ts, CodecSeed(9, 1, id))
		if err != nil {
			t.Fatal(err)
		}
		name := ""
		if c.Name() != CodecIdentity {
			name = c.Name()
		}
		return ClientUpdate{ClientID: id, Round: 1, State: blob, NumSelected: 10 + id, Codec: name}
	}
	for _, spec := range []string{"identity", "int8", "topk:0.5"} {
		t.Run("stream/"+spec, func(t *testing.T) {
			server, _ := ParseCodec(spec)
			agg := NewStreamAggregator()
			agg.SetCodec(server, ref)
			for id := 0; id < 3; id++ {
				enc, _ := ParseCodec(spec)
				if err := agg.Add(mkUpdate(enc, id)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := agg.Finish(); err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("echo-mismatch", func(t *testing.T) {
		server, _ := ParseCodec("int8")
		agg := NewStreamAggregator()
		agg.SetCodec(server, ref)
		enc, _ := ParseCodec("int8")
		u := mkUpdate(enc, 0)
		u.Codec = "float16"
		if err := agg.Add(u); err == nil {
			t.Fatal("codec echo mismatch must be rejected")
		}
		if agg.Updates() != 0 {
			t.Fatal("rejected update must leave the aggregate untouched")
		}
		// Legacy aggregator (no codec) must refuse codec-stamped frames.
		legacy := NewStreamAggregator()
		if err := legacy.Add(u); err == nil {
			t.Fatal("legacy aggregator must reject a codec-stamped update")
		}
	})
	t.Run("masked", func(t *testing.T) {
		groups, layout := []string{"g0", "g1"}, []string{"g0", "g0", "g1"}
		full := []*tensor.Tensor{tensor.New(3, 3), tensor.New(3), tensor.New(5)}
		for _, r := range full {
			r.FillUniform(rng, -1, 1)
		}
		build := func(codec string) []*tensor.Tensor {
			a, err := NewMaskedStreamAggregator(nil, groups, layout)
			if err != nil {
				t.Fatal(err)
			}
			var server Codec
			if codec != "" {
				server, _ = ParseCodec(codec)
			}
			if err := a.SetCodec(server, full); err != nil {
				t.Fatal(err)
			}
			for id := 0; id < 2; id++ {
				// Client 0 covers only g0; client 1 covers both.
				var sub []*tensor.Tensor
				var declared []string
				if id == 0 {
					sub, declared = full[:2], []string{"g0"}
				} else {
					sub, declared = full, []string{"g0", "g1"}
				}
				ts := make([]*tensor.Tensor, len(sub))
				rng2 := rand.New(rand.NewSource(int64(200 + id)))
				for i := range ts {
					ts[i] = tensor.New(sub[i].Shape()...)
					ts[i].FillUniform(rng2, -1, 1)
				}
				enc, _ := ParseCodec(codec)
				blob, err := enc.Encode(sub, ts, CodecSeed(9, 1, id))
				if err != nil {
					t.Fatal(err)
				}
				name := ""
				if enc.Name() != CodecIdentity {
					name = enc.Name()
				}
				err = a.Add(ClientUpdate{ClientID: id, Round: 1, State: blob,
					Groups: declared, NumSelected: 5, Codec: name})
				if err != nil {
					t.Fatal(err)
				}
			}
			out, err := a.Finish(full)
			if err != nil {
				t.Fatal(err)
			}
			return cloneAll(out)
		}
		// topk:1 is lossless, so the masked fold must match the identity
		// fold exactly.
		id := build("")
		tk := build("topk:1")
		for i := range id {
			if !id[i].AllClose(tk[i], 1e-6) {
				t.Fatalf("masked topk:1 fold diverges from identity at tensor %d", i)
			}
		}
	})
}

// TestCodecSeedDistinct spot-checks the seed derivation separates rounds
// and senders.
func TestCodecSeedDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for r := 0; r < 8; r++ {
		for id := 0; id < 8; id++ {
			s := CodecSeed(123, r, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between (%d,%d) and %s", r, id, prev)
			}
			seen[s] = fmt.Sprintf("(%d,%d)", r, id)
		}
	}
}

// TestCodecCompressionRatios pins each codec's headline compression on a
// realistic mixed-shape state: int8 must clear the 3× acceptance bar.
func TestCodecCompressionRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ts := []*tensor.Tensor{tensor.New(256, 64), tensor.New(64), tensor.New(64, 10), tensor.New(10)}
	ref := make([]*tensor.Tensor, len(ts))
	for i, s := range ts {
		s.FillUniform(rng, -1, 1)
		ref[i] = tensor.New(s.Shape()...)
		ref[i].FillUniform(rng, -1, 1)
	}
	base, err := EncodeTensors(ts)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"float16": 1.9, "int8": 3.0, "topk:0.05": 8.0}
	for spec, minRatio := range want {
		c, _ := ParseCodec(spec)
		blob, err := c.Encode(ref, ts, 1)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(len(base)) / float64(len(blob))
		if ratio < minRatio {
			t.Fatalf("%s compresses %.2f×, want ≥ %.1f×", spec, ratio, minRatio)
		}
	}
}
