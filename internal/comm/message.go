// Package comm implements the federated-learning wire protocol: compact
// tensor encoding, typed messages, and Transport implementations for
// in-process testing and real TCP deployments (length-prefixed frames, gob
// payloads). It is what cmd/fedserver and cmd/fedclient speak.
package comm

import (
	"bytes"
	"errors"
	"fmt"

	"fedfteds/internal/tensor"
)

// ErrProtocol reports a malformed or unexpected message.
var ErrProtocol = errors.New("comm: protocol error")

// ErrTimeout reports a Send or Recv that exceeded the connection deadline.
// TCP connections surface the equivalent os.ErrDeadlineExceeded instead;
// isTimeout recognizes both.
var ErrTimeout = errors.New("comm: deadline exceeded")

// MsgType identifies a message on the wire.
type MsgType uint8

const (
	// MsgHello is the client's registration message.
	MsgHello MsgType = iota + 1
	// MsgWelcome is the server's registration reply.
	MsgWelcome
	// MsgRoundStart carries the global state for one training round.
	MsgRoundStart
	// MsgClientUpdate carries a client's trained state back to the server.
	MsgClientUpdate
	// MsgShutdown ends the session.
	MsgShutdown
	// MsgRegionUpdate carries a relay's folded regional delta upstream.
	MsgRegionUpdate
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgRoundStart:
		return "round-start"
	case MsgClientUpdate:
		return "client-update"
	case MsgShutdown:
		return "shutdown"
	case MsgRegionUpdate:
		return "region-update"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Hello registers a client with the server.
type Hello struct {
	// ClientID is the federation index the client claims.
	ClientID int
	// LocalSize is the client's local dataset size.
	LocalSize int
	// Tier names the client's device capability tier (see internal/device);
	// empty on untiered federations. Gob omits empty strings, so legacy
	// clients and servers interoperate unchanged.
	Tier string
	// Relay marks a mid-tier aggregator registering on behalf of a region
	// rather than a single device. Relays answer RoundStarts with
	// RegionUpdate frames instead of ClientUpdates. Gob omits false, so
	// legacy peers interoperate unchanged.
	Relay bool
	// Clients is the number of downstream leaf clients a relay speaks for
	// (zero for plain clients). The root's scheduler uses it to weigh a
	// region candidate by its population rather than as a single device.
	Clients int
}

// Welcome acknowledges registration and shares run parameters.
type Welcome struct {
	// NumClients is the expected federation size.
	NumClients int
	// Rounds is the planned number of communication rounds.
	Rounds int
	// Codecs advertises the uplink codec the session runs, by canonical
	// name (see ParseCodec). A server running the identity codec
	// advertises nothing — gob omits the empty slice, so identity
	// handshakes are byte-identical to pre-codec ones and legacy clients
	// interoperate unchanged. Clients adopt the advertisement (-codec
	// auto) or fail fast on a mismatch (PickCodec).
	Codecs []string
}

// RoundStart instructs a client to run one local round.
type RoundStart struct {
	// Round is the 1-based round index.
	Round int
	// State is the encoded global model state for the communicated groups.
	State []byte
	// Groups names the model groups State covers (FedFT ships only the
	// trainable upper part).
	Groups []string
	// SelectFraction is P_ds for this round.
	SelectFraction float64
	// LocalEpochs is E.
	LocalEpochs int
	// Version stamps the global model state with the number of aggregations
	// applied since run start. Synchronous servers leave it zero (gob omits
	// it); the buffered asynchronous engine uses the echo to measure an
	// update's staleness.
	Version int
	// Layout names, per tensor of State, the group it belongs to (the
	// models.GroupStateLayout of the broadcast). The root sets it in relay
	// mode so a relay — which has no model of its own — can aggregate
	// masked tier updates per layer. Empty otherwise; gob omits it, so
	// legacy peers interoperate unchanged.
	Layout []string
}

// ClientUpdate returns a client's trained state.
type ClientUpdate struct {
	// ClientID identifies the sender.
	ClientID int
	// Round echoes the round index.
	Round int
	// State is the encoded updated state for the communicated groups.
	State []byte
	// Groups names the model groups State covers, in canonical bottom-to-top
	// order. Empty means the client trained every group the server
	// broadcast (the legacy whole-state contract); a tiered client reports
	// the subset its layer mask afforded, and groups outside it ship zero
	// bytes. Gob omits empty slices, keeping legacy peers compatible.
	Groups []string
	// NumSelected is |D_select|, the aggregation weight numerator.
	NumSelected int
	// TrainSeconds is the client's reported local compute time.
	TrainSeconds float64
	// TrainLoss is the final epoch's mean training loss, so the server can
	// report rounds the same way the in-process simulator does.
	TrainLoss float64
	// MeanEntropy is the mean EDS entropy over the client's full local
	// dataset (NaN when the client's selector has no utility signal). The
	// server feeds it to the cohort scheduler as the client-level utility.
	MeanEntropy float64
	// Version echoes RoundStart.Version — the model version this update was
	// trained against. The buffered asynchronous engine discounts the update
	// by its staleness (current version minus Version); synchronous peers
	// leave it zero.
	Version int
	// Codec names the codec State is encoded with, echoing the session
	// codec negotiated at Hello/Welcome. Empty means identity — gob omits
	// it, so identity updates are byte-identical to pre-codec frames. The
	// server's aggregators reject an echo that disagrees with the session
	// codec before touching State.
	Codec string
}

// RegionUpdate is a relay's pre-folded aggregate of its region's client
// updates, sent upstream in place of the individual ClientUpdates. The root
// treats a region like one heavyweight client: State already holds the
// weighted average over the region's reporting leaves, and the summary
// fields let the root's strategy weigh the region by its population.
type RegionUpdate struct {
	// RelayID identifies the sending relay in the root's ID space.
	RelayID int
	// Round echoes the round index.
	Round int
	// Version echoes RoundStart.Version (see ClientUpdate.Version).
	Version int
	// State is the encoded weighted-average state over the region's
	// reporting leaves, covering every group the root broadcast (a relay
	// resolves leaf layer masks locally, falling back to the broadcast
	// state for uncovered layers).
	State []byte
	// Weight is the summed aggregation weight the relay folded, so the root
	// can reproduce the flat federation's arithmetic exactly:
	// sum_r W_r * regionAvg_r / sum_r W_r == the flat weighted average.
	Weight float64
	// Clients is how many leaf clients reported into this delta.
	Clients int
	// NumSelected is the summed |D_select| over reporting leaves; under the
	// default selected-size weighting it equals Weight.
	NumSelected int
	// TrainSeconds is the summed local compute time across the region.
	TrainSeconds float64
	// TrainLoss is the weight-averaged training loss across the region.
	TrainLoss float64
	// MeanEntropy is the weight-averaged EDS entropy over the leaves that
	// reported one (NaN when none did), the region-level scheduler utility.
	MeanEntropy float64
	// Codec names the codec State is encoded with on the upstream leg
	// (the root's session codec, which may differ from the codec the
	// relay negotiated with its leaves). Empty means identity; gob omits
	// it, keeping legacy relays compatible.
	Codec string
}

// Shutdown ends the session.
type Shutdown struct {
	// Reason is a human-readable explanation.
	Reason string
}

// EncodeTensors serializes tensors into one buffer using the tensor wire
// format, prefixed with a count.
func EncodeTensors(ts []*tensor.Tensor) ([]byte, error) {
	var buf bytes.Buffer
	count := uint32(len(ts))
	buf.Write([]byte{byte(count), byte(count >> 8), byte(count >> 16), byte(count >> 24)})
	for i, t := range ts {
		if _, err := t.WriteTo(&buf); err != nil {
			return nil, fmt.Errorf("comm: encode tensor %d: %w", i, err)
		}
	}
	return buf.Bytes(), nil
}

// DecodeTensors reverses EncodeTensors.
func DecodeTensors(b []byte) ([]*tensor.Tensor, error) {
	return DecodeTensorsReuse(nil, b)
}

// DecodeTensorsReuse decodes b like DecodeTensors but reuses scratch — the
// slice and the storage of any tensors it holds — when capacities allow.
// The streaming aggregators pass their previous round's decode buffer so
// steady-state folds allocate nothing. The returned tensors alias scratch's;
// the caller owns both and must not use them past the next reuse.
func DecodeTensorsReuse(scratch []*tensor.Tensor, b []byte) ([]*tensor.Tensor, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: tensor blob too short", ErrProtocol)
	}
	count := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if count > 1<<20 {
		return nil, fmt.Errorf("%w: tensor count %d", ErrProtocol, count)
	}
	out := scratch
	if cap(out) >= count {
		out = out[:count]
	} else {
		out = make([]*tensor.Tensor, count)
		copy(out, scratch)
	}
	off := 4
	for i := range out {
		if out[i] == nil {
			out[i] = new(tensor.Tensor)
		}
		n, err := out[i].DecodeFrom(b[off:])
		if err != nil {
			return nil, fmt.Errorf("comm: decode tensor %d: %w", i, err)
		}
		off += n
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after tensors", ErrProtocol, len(b)-off)
	}
	return out, nil
}
