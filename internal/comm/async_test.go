package comm

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

// asyncEchoClient answers every dispatch with a valid update echoing the
// dispatched model version, until the server shuts the session down. gates,
// when non-nil, is read before the n-th reply (1-based): the test controls
// exactly when this client's update reaches the engine.
func asyncEchoClient(conn Conn, id int, gates map[int]chan struct{}) {
	sess, _, err := Join(conn, id, 10)
	if err != nil {
		return
	}
	n := 0
	for {
		rs, ok, err := sess.NextRound()
		if err != nil || !ok {
			_ = sess.Close()
			return
		}
		n++
		if gate, gated := gates[n]; gated {
			<-gate
		}
		if err := sess.SendUpdate(ClientUpdate{
			ClientID: id, Round: rs.Round, Version: rs.Version, NumSelected: 1 + id,
		}); err != nil {
			return
		}
	}
}

// TestAsyncEngineFullBufferIsSyncRound pins the degenerate case the
// equivalence gates build on: with Buffer equal to the federation size and no
// weigher, every aggregation folds exactly one fresh update per client at
// lambda 1, and the version counter advances one per aggregation — the
// synchronous round loop in async clothing.
func TestAsyncEngineFullBufferIsSyncRound(t *testing.T) {
	const numClients = 3
	lst := NewPipeListener(numClients)
	for i := 0; i < numClients; i++ {
		go asyncEchoClient(lst.ClientSide(i), i, nil)
	}
	sess, err := AcceptClients(lst, numClients, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewAsyncEngine(sess, AsyncConfig{Buffer: numClients})
	if err != nil {
		t.Fatal(err)
	}
	for agg := 1; agg <= 2; agg++ {
		var lambdas []float64
		out, err := eng.RunAggregation(agg, RoundStart{}, func(u ClientUpdate, lambda float64) error {
			lambdas = append(lambdas, lambda)
			return nil
		})
		if err != nil {
			t.Fatalf("aggregation %d: %v", agg, err)
		}
		if !reflect.DeepEqual(out.Reported, []int{0, 1, 2}) {
			t.Fatalf("aggregation %d reported %v", agg, out.Reported)
		}
		if out.Version != agg {
			t.Fatalf("aggregation %d advanced to version %d", agg, out.Version)
		}
		for id, s := range out.Staleness {
			if s != 0 {
				t.Fatalf("aggregation %d: client %d staleness %d, want 0", agg, id, s)
			}
		}
		for _, l := range lambdas {
			if l != 1.0 {
				t.Fatalf("aggregation %d: lambda %v, want exactly 1", agg, l)
			}
		}
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncEngineStaleUpdateDiscounted drives the FedBuff semantics: a
// client that trained against version v and reports after the model advanced
// to v+1 is folded at staleness 1 with the weigher's discount, not dropped
// and not awaited.
func TestAsyncEngineStaleUpdateDiscounted(t *testing.T) {
	lst := NewPipeListener(2)
	gate0 := make(chan struct{}) // holds client 0's second reply
	gate1 := make(chan struct{}) // holds client 1's first reply
	hold1 := make(chan struct{}) // parks client 1 after its first reply
	t.Cleanup(func() { close(hold1) })
	go asyncEchoClient(lst.ClientSide(0), 0, map[int]chan struct{}{2: gate0})
	go asyncEchoClient(lst.ClientSide(1), 1, map[int]chan struct{}{1: gate1, 2: hold1})
	sess, err := AcceptClients(lst, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewAsyncEngine(sess, AsyncConfig{
		Buffer:       1,
		MaxStaleness: -1,
		Weigh:        func(s int) float64 { return 1 / math.Sqrt(1+float64(s)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	fold := func(lambdas *[]float64) func(ClientUpdate, float64) error {
		return func(u ClientUpdate, lambda float64) error {
			*lambdas = append(*lambdas, lambda)
			return nil
		}
	}

	// Aggregation 1: both clients get version 0; only client 0 replies.
	var l1 []float64
	out, err := eng.RunAggregation(1, RoundStart{}, fold(&l1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Reported, []int{0}) || out.Staleness[0] != 0 || l1[0] != 1.0 {
		t.Fatalf("aggregation 1: %+v lambdas %v", out, l1)
	}

	// Aggregation 2: client 0 is re-dispatched version 1 but gated; client 1's
	// version-0 update arrives one aggregation late — folded at staleness 1.
	close(gate1)
	var l2 []float64
	out, err = eng.RunAggregation(2, RoundStart{}, fold(&l2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Reported, []int{1}) || out.Staleness[1] != 1 {
		t.Fatalf("aggregation 2: %+v", out)
	}
	if want := 1 / math.Sqrt(2); l2[0] != want {
		t.Fatalf("aggregation 2: lambda %v, want %v", l2[0], want)
	}

	// Aggregation 3: releasing client 0 delivers its version-1 update while
	// the model sits at version 2 — staleness 1 again.
	close(gate0)
	var l3 []float64
	out, err = eng.RunAggregation(3, RoundStart{}, fold(&l3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Reported, []int{0}) || out.Staleness[0] != 1 {
		t.Fatalf("aggregation 3: %+v", out)
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncEngineMaxStalenessDiscards pins the discard path: a buffered
// update staler than the cap is counted and thrown away, its sender is not
// dropped, and the aggregation keeps going until fresh work fills the
// buffer. A restored buffer makes the ordering deterministic — carried
// updates always drain before live arrivals.
func TestAsyncEngineMaxStalenessDiscards(t *testing.T) {
	lst := NewPipeListener(1)
	go asyncEchoClient(lst.ClientSide(0), 0, nil)
	sess, err := AcceptClients(lst, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewAsyncEngine(sess, AsyncConfig{Buffer: 1, MaxStaleness: 1})
	if err != nil {
		t.Fatal(err)
	}
	// An update trained against version 3, restored at version 5: staleness 2
	// exceeds the cap of 1.
	if err := eng.Restore(5, []ClientUpdate{{ClientID: 9, Round: 1, Version: 3}}); err != nil {
		t.Fatal(err)
	}
	out, err := eng.RunAggregation(1, RoundStart{}, func(ClientUpdate, float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if out.Discarded != 1 {
		t.Fatalf("discarded %d, want 1", out.Discarded)
	}
	if !reflect.DeepEqual(out.Reported, []int{0}) || out.Staleness[0] != 0 || len(out.Dropped) != 0 {
		t.Fatalf("outcome %+v", out)
	}
	if out.Version != 6 {
		t.Fatalf("version %d, want 6", out.Version)
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncEngineRestoreRoundTrip covers the checkpoint path: a restored
// version counter and buffered update survive, the buffered update is
// drained before any live one with staleness measured against the restored
// version, and a second Restore after the engine started is refused.
func TestAsyncEngineRestoreRoundTrip(t *testing.T) {
	lst := NewPipeListener(1)
	go func() { // joins, receives dispatches, never replies
		sess, _, err := Join(lst.ClientSide(0), 0, 10)
		if err != nil {
			return
		}
		for {
			if _, ok, err := sess.NextRound(); err != nil || !ok {
				return
			}
		}
	}()
	sess, err := AcceptClients(lst, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewAsyncEngine(sess, AsyncConfig{Buffer: 1, MaxStaleness: -1})
	if err != nil {
		t.Fatal(err)
	}
	buffered := []ClientUpdate{{ClientID: 7, Round: 3, Version: 3, NumSelected: 5}}
	if err := eng.Restore(5, buffered); err != nil {
		t.Fatal(err)
	}
	if eng.Version() != 5 {
		t.Fatalf("restored version %d", eng.Version())
	}
	if got := eng.Buffered(); !reflect.DeepEqual(got, buffered) {
		t.Fatalf("buffered %+v", got)
	}

	out, err := eng.RunAggregation(1, RoundStart{}, func(ClientUpdate, float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Reported, []int{7}) || out.Staleness[7] != 2 || out.Version != 6 {
		t.Fatalf("restored aggregation: %+v", out)
	}
	if err := eng.Restore(9, nil); err == nil {
		t.Fatal("restore after first aggregation accepted")
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncEngineDropsWrongVersionEcho: a client answering with a version it
// was never dispatched is a protocol violation — dropped, and with no client
// left the aggregation fails loudly instead of hanging.
func TestAsyncEngineDropsWrongVersionEcho(t *testing.T) {
	lst := NewPipeListener(1)
	go func() {
		sess, _, err := Join(lst.ClientSide(0), 0, 10)
		if err != nil {
			return
		}
		for {
			rs, ok, err := sess.NextRound()
			if err != nil || !ok {
				return
			}
			_ = sess.SendUpdate(ClientUpdate{ClientID: 0, Round: rs.Round, Version: rs.Version + 41, NumSelected: 1})
		}
	}()
	sess, err := AcceptClients(lst, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewAsyncEngine(sess, AsyncConfig{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.RunAggregation(1, RoundStart{}, func(ClientUpdate, float64) error { return nil })
	if err == nil || !errors.Is(err, ErrQuorum) {
		t.Fatalf("expected quorum failure after the drop, got %v", err)
	}
	if !reflect.DeepEqual(out.Dropped, []int{0}) || !errors.Is(out.Failures[0], ErrProtocol) {
		t.Fatalf("outcome %+v", out)
	}
}

// TestAsyncEngineDeadline bounds an aggregation that can never fill its
// buffer: the configured deadline turns a silent hang into ErrQuorum.
func TestAsyncEngineDeadline(t *testing.T) {
	lst := NewPipeListener(1)
	go func() {
		sess, _, err := Join(lst.ClientSide(0), 0, 10)
		if err != nil {
			return
		}
		for {
			if _, ok, err := sess.NextRound(); err != nil || !ok {
				return
			}
		}
	}()
	sess, err := AcceptClients(lst, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewAsyncEngine(sess, AsyncConfig{Buffer: 1, AggDeadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAggregation(1, RoundStart{}, func(ClientUpdate, float64) error { return nil }); !errors.Is(err, ErrQuorum) {
		t.Fatalf("expected deadline quorum failure, got %v", err)
	}
}

// TestAsyncEngineConfigRejections pins the fail-fast construction surface.
func TestAsyncEngineConfigRejections(t *testing.T) {
	lst := NewPipeListener(1)
	go asyncEchoClient(lst.ClientSide(0), 0, nil)
	sess, err := AcceptClients(lst, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAsyncEngine(nil, AsyncConfig{Buffer: 1}); err == nil {
		t.Fatal("nil session accepted")
	}
	if _, err := NewAsyncEngine(sess, AsyncConfig{Buffer: 0}); err == nil {
		t.Fatal("zero buffer accepted")
	}
	if _, err := NewAsyncEngine(sess, AsyncConfig{Buffer: 1, AggDeadline: -time.Second}); err == nil {
		t.Fatal("negative deadline accepted")
	}
	eng, err := NewAsyncEngine(sess, AsyncConfig{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Restore(-1, nil); err == nil {
		t.Fatal("negative restored version accepted")
	}
}
