package comm

import (
	"log"
)

// admission is one completed Hello/Welcome handshake waiting to be drained
// into a ServerSession.
type admission struct {
	hello Hello
	conn  Conn
}

// Admitter keeps a listener open after the initial accept phase and
// handshakes late arrivals in the background, so a crashed peer (a relay
// region, or a client) can re-register mid-run. The session itself stays
// single-writer: handshaked connections queue here and the serving loop
// folds them in with Drain at a round boundary, never mid-round.
type Admitter struct {
	ch      chan admission
	welcome Envelope
}

// NewAdmitter starts accepting re-registrations on l. numClients and rounds
// fill the Welcome frame (matching the initial AcceptClients handshake).
// Closing the listener stops the background acceptor.
func NewAdmitter(l Listener, numClients, rounds int) (*Admitter, error) {
	return NewAdmitterCodec(l, numClients, rounds, "")
}

// NewAdmitterCodec is NewAdmitter with an uplink-codec advertisement, so a
// re-registering peer negotiates the same session codec the initial accept
// phase advertised.
func NewAdmitterCodec(l Listener, numClients, rounds int, codec string) (*Admitter, error) {
	welcome, err := EncodeBody(MsgWelcome, Welcome{NumClients: numClients, Rounds: rounds, Codecs: advertiseCodecs(codec)})
	if err != nil {
		return nil, err
	}
	a := &Admitter{ch: make(chan admission, 64), welcome: welcome}
	go a.acceptLoop(l)
	return a, nil
}

// acceptLoop accepts until the listener closes, handshaking each arrival in
// its own goroutine so one wedged dialer cannot block later rejoins.
func (a *Admitter) acceptLoop(l Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go a.handshake(conn)
	}
}

// handshake performs the server half of the registration exchange and
// queues the connection for the next Drain. On any error, or when the queue
// is full, the connection is closed — the peer retries with its usual
// backoff.
func (a *Admitter) handshake(conn Conn) {
	env, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	if env.Type != MsgHello {
		_ = conn.Close()
		return
	}
	var hello Hello
	if err := DecodeBody(env, &hello); err != nil {
		_ = conn.Close()
		return
	}
	if err := conn.Send(a.welcome); err != nil {
		_ = conn.Close()
		return
	}
	select {
	case a.ch <- admission{hello: hello, conn: conn}:
	default:
		_ = conn.Close()
	}
}

// Drain folds every queued re-registration into the session and returns the
// re-admitted IDs. Non-blocking; call it at a round boundary. A duplicate
// of a still-live ID is rejected and its connection closed.
func (a *Admitter) Drain(s *ServerSession) []int {
	var ids []int
	for {
		select {
		case adm := <-a.ch:
			if err := s.Admit(adm.hello, adm.conn); err != nil {
				log.Printf("comm: rejecting re-registration of client %d: %v", adm.hello.ClientID, err)
				_ = adm.conn.Close()
				continue
			}
			ids = append(ids, adm.hello.ClientID)
		default:
			return ids
		}
	}
}
