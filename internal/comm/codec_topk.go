package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"fedfteds/internal/tensor"
)

// topKCodec ships, per tensor, only the k = ceil(frac·volume) largest-
// magnitude entries of the delta against the broadcast reference, as
// (u32 index, f32 value) pairs; rank-0/1 tensors (biases, norm running
// statistics) ship their full delta instead — see topkKeep. What it
// drops is not lost: the unsent
// delta mass is carried as a client-side error-feedback residual and
// added back into the next round's delta, so every gradient contribution
// eventually reaches the server — the standard trick that lets aggressive
// sparsification converge like dense updates.
//
// Because the payload is a delta, both Encode and Decode need the
// broadcast state (NeedsReference reports true), which is exactly why
// topk is refused under the buffered asynchronous engine: a stale
// update's reference version is gone by the time it folds.
type topKCodec struct {
	frac float64
	res  []*tensor.Tensor // error-feedback residuals, parallel to ts
	idx  []int32          // selection scratch, reused across tensors
	d    []float32        // dense delta scratch, reused across tensors
}

func (c *topKCodec) Name() string         { return fmt.Sprintf("topk:%g", c.frac) }
func (c *topKCodec) NeedsReference() bool { return true }

// ResidualState returns the carried error-feedback residuals (nil before
// the first Encode). Implements ResidualCarrier.
func (c *topKCodec) ResidualState() []*tensor.Tensor { return c.res }

// RestoreResidualState replaces the carried residuals, taking ownership.
// Implements ResidualCarrier.
func (c *topKCodec) RestoreResidualState(ts []*tensor.Tensor) error {
	c.res = ts
	return nil
}

// ensureResiduals (re)builds the residual list to match ts, preserving
// carried state when shapes line up and resetting to zeros when they do
// not (a tier-mask change altered which tensors the client ships).
func (c *topKCodec) ensureResiduals(ts []*tensor.Tensor) {
	match := len(c.res) == len(ts)
	for i := 0; match && i < len(ts); i++ {
		match = c.res[i] != nil && c.res[i].SameShape(ts[i])
	}
	if match {
		return
	}
	c.res = make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		c.res[i] = tensor.New(t.Shape()...)
	}
}

func (c *topKCodec) Encode(ref, ts []*tensor.Tensor, _ uint64) ([]byte, error) {
	if len(ref) != len(ts) {
		return nil, fmt.Errorf("%w: topk codec needs the broadcast reference (%d ref tensors for %d state tensors)",
			ErrProtocol, len(ref), len(ts))
	}
	c.ensureResiduals(ts)
	size := 4
	for _, t := range ts {
		size += 1 + 4*len(t.Shape()) + 4 + 8*topkKeep(c.frac, t)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts)))
	for ti, t := range ts {
		if !ref[ti].SameShape(t) {
			return nil, fmt.Errorf("%w: topk reference tensor %d shape mismatch", ErrProtocol, ti)
		}
		var err error
		if buf, err = appendTensorHeader(buf, t); err != nil {
			return nil, err
		}
		vol := t.Len()
		if cap(c.d) < vol {
			c.d = make([]float32, vol)
		}
		d := c.d[:vol]
		x, r, e := t.Data(), ref[ti].Data(), c.res[ti].Data()
		for j := range d {
			d[j] = x[j] - r[j] + e[j]
		}
		k := topkKeep(c.frac, t)
		if cap(c.idx) < vol {
			c.idx = make([]int32, vol)
		}
		idx := c.idx[:vol]
		for j := range idx {
			idx[j] = int32(j)
		}
		if k < vol {
			selectTopK(d, idx, k)
		}
		sel := idx[:k]
		sort.Slice(sel, func(a, b int) bool { return sel[a] < sel[b] })
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
		for _, j := range sel {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(j))
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(d[j]))
		}
		// The residual keeps exactly the delta mass the payload dropped.
		copy(e, d)
		for _, j := range sel {
			e[j] = 0
		}
	}
	return buf, nil
}

func (c *topKCodec) Decode(ref, scratch []*tensor.Tensor, b []byte) ([]*tensor.Tensor, error) {
	count, err := readBlobCount(b)
	if err != nil {
		return nil, err
	}
	if len(ref) != count {
		return nil, fmt.Errorf("%w: topk codec needs the broadcast reference (%d ref tensors for %d payload tensors)",
			ErrProtocol, len(ref), count)
	}
	out := reuseTensorSlice(scratch, count)
	off := 4
	for i := range out {
		shape, vol, n, err := readTensorHeader(b[off:])
		if err != nil {
			return nil, fmt.Errorf("comm: topk decode tensor %d: %w", i, err)
		}
		off += n
		if len(b) < off+4 {
			return nil, fmt.Errorf("%w: topk tensor %d truncated", ErrProtocol, i)
		}
		k := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if k > vol {
			return nil, fmt.Errorf("%w: topk tensor %d keeps %d of %d entries", ErrProtocol, i, k, vol)
		}
		if len(b) < off+8*k {
			return nil, fmt.Errorf("%w: topk tensor %d truncated", ErrProtocol, i)
		}
		out[i] = tensor.Ensure(out[i], shape...)
		if !out[i].SameShape(ref[i]) {
			return nil, fmt.Errorf("%w: topk reference tensor %d shape mismatch", ErrProtocol, i)
		}
		if err := out[i].CopyFrom(ref[i]); err != nil {
			return nil, err
		}
		data := out[i].Data()
		for e := 0; e < k; e++ {
			j := int(binary.LittleEndian.Uint32(b[off:]))
			v := math.Float32frombits(binary.LittleEndian.Uint32(b[off+4:]))
			off += 8
			if j >= vol {
				return nil, fmt.Errorf("%w: topk tensor %d index %d out of range", ErrProtocol, i, j)
			}
			data[j] += v
		}
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after tensors", ErrProtocol, len(b)-off)
	}
	return out, nil
}

// selectTopK partially orders idx so its first k entries index the k
// largest-magnitude values of d. The ordering is a strict total order —
// magnitude descending, index ascending on ties — so the selected SET is
// uniquely determined and the payload deterministic no matter how the
// partitions fall. Iterative quickselect with a middle pivot: O(vol)
// expected, against the O(vol·log vol) of sorting everything.
func selectTopK(d []float32, idx []int32, k int) {
	greater := func(a, b int32) bool {
		da := math.Abs(float64(d[a]))
		db := math.Abs(float64(d[b]))
		if da != db {
			return da > db
		}
		return a < b
	}
	lo, hi := 0, len(idx)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		idx[mid], idx[hi] = idx[hi], idx[mid]
		pivot := idx[hi]
		store := lo
		for i := lo; i < hi; i++ {
			if greater(idx[i], pivot) {
				idx[i], idx[store] = idx[store], idx[i]
				store++
			}
		}
		idx[store], idx[hi] = idx[hi], idx[store]
		if store == k-1 {
			return
		}
		if store > k-1 {
			hi = store - 1
		} else {
			lo = store + 1
		}
	}
}

// topkKeep is the kept-entry count for one tensor. Rank-0/1 tensors —
// biases and the norm layers' running statistics — ship dense (k = vol):
// they are a sliver of the byte budget next to the weight matrices, and
// sparsifying running statistics is actively harmful, because the delayed
// error-feedback jumps can drive an aggregated running variance negative.
// Everything else keeps ceil(frac·vol) entries.
func topkKeep(frac float64, t *tensor.Tensor) int {
	vol := t.Len()
	if len(t.Shape()) <= 1 {
		return vol
	}
	return topkCount(frac, vol)
}

// topkCount is the kept-entry count for a tensor volume: ceil(frac·vol),
// at least one so every tensor makes progress.
func topkCount(frac float64, vol int) int {
	if vol == 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(vol)))
	if k < 1 {
		k = 1
	}
	if k > vol {
		k = vol
	}
	return k
}
