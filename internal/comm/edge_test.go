package comm

import (
	"errors"
	"strings"
	"testing"
)

func TestTCPSendRejectsOversizedFrame(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := l.Accept()
		if err == nil {
			defer conn.Close()
		}
	}()
	client, err := DialTCP(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	<-done

	huge := Envelope{Type: MsgHello, Body: make([]byte, maxFrameBytes+1)}
	if err := client.Send(huge); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol for oversized frame, got %v", err)
	}
}

func TestDecodeBodyRejectsGarbage(t *testing.T) {
	env := Envelope{Type: MsgHello, Body: []byte{0xde, 0xad, 0xbe, 0xef}}
	var h Hello
	if err := DecodeBody(env, &h); err == nil {
		t.Fatal("expected gob decode error")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for typ, want := range map[MsgType]string{
		MsgHello:        "hello",
		MsgWelcome:      "welcome",
		MsgRoundStart:   "round-start",
		MsgClientUpdate: "client-update",
		MsgShutdown:     "shutdown",
		MsgType(200):    "MsgType(200)",
	} {
		if got := typ.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", typ, got, want)
		}
	}
}

func TestJoinRejectsNonWelcomeReply(t *testing.T) {
	server, client := Pipe()
	go func() {
		if _, err := server.Recv(); err != nil {
			return
		}
		env, _ := EncodeBody(MsgShutdown, Shutdown{Reason: "nope"})
		_ = server.Send(env)
	}()
	_, _, err := Join(client, 0, 1)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol, got %v", err)
	}
}

func TestAcceptClientsValidation(t *testing.T) {
	if _, err := AcceptClients(&staticListener{}, 0, 1); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol for zero clients, got %v", err)
	}
}

func TestClientSessionUnexpectedMessage(t *testing.T) {
	server, client := Pipe()
	sess := &ClientSession{conn: client, ID: 0}
	go func() {
		env, _ := EncodeBody(MsgWelcome, Welcome{})
		_ = server.Send(env)
	}()
	_, _, err := sess.NextRound()
	if err == nil || !strings.Contains(err.Error(), "unexpected") {
		t.Fatalf("expected unexpected-message error, got %v", err)
	}
}
