package comm

import (
	"math"
	"testing"

	"fedfteds/internal/tensor"
)

// maskedFixture builds a two-group layout ("up" with two tensors,
// "classifier" with one) and helpers to encode per-client states.
type maskedFixture struct {
	groups []string
	layout []string
	full   []*tensor.Tensor // one full state, the fallback
}

func newMaskedFixture(t *testing.T) *maskedFixture {
	t.Helper()
	mk := func(vals ...float32) *tensor.Tensor {
		ts := tensor.New(len(vals))
		for i, v := range vals {
			ts.Set(v, i)
		}
		return ts
	}
	return &maskedFixture{
		groups: []string{"up", "classifier"},
		layout: []string{"up", "up", "classifier"},
		full:   []*tensor.Tensor{mk(1, 1), mk(2, 2), mk(3, 3)},
	}
}

// update encodes the tensors of the covered groups only.
func (f *maskedFixture) update(t *testing.T, id, nsel int, groups []string, ts []*tensor.Tensor) ClientUpdate {
	t.Helper()
	blob, err := EncodeTensors(ts)
	if err != nil {
		t.Fatal(err)
	}
	return ClientUpdate{ClientID: id, Round: 1, State: blob, Groups: groups, NumSelected: nsel}
}

func TestMaskedAggregatorPerLayerAverage(t *testing.T) {
	f := newMaskedFixture(t)
	agg, err := NewMaskedStreamAggregator(nil, f.groups, f.layout)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(vals ...float32) *tensor.Tensor {
		ts := tensor.New(len(vals))
		for i, v := range vals {
			ts.Set(v, i)
		}
		return ts
	}
	// Client 0 (weight 1) trained both groups; client 1 (weight 3) only the
	// classifier.
	full := f.update(t, 0, 1, []string{"up", "classifier"},
		[]*tensor.Tensor{mk(10, 10), mk(20, 20), mk(30, 30)})
	headOnly := f.update(t, 1, 3, []string{"classifier"},
		[]*tensor.Tensor{mk(70, 70)})
	if err := agg.Add(full); err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(headOnly); err != nil {
		t.Fatal(err)
	}
	if agg.Updates() != 2 {
		t.Fatalf("Updates() = %d", agg.Updates())
	}
	out, err := agg.Finish(f.full)
	if err != nil {
		t.Fatal(err)
	}
	// "up" tensors averaged over client 0 alone; classifier over both:
	// (1·30 + 3·70) / 4 = 60.
	if got := out[0].At(0); got != 10 {
		t.Fatalf("up tensor 0 = %v, want 10", got)
	}
	if got := out[1].At(0); got != 20 {
		t.Fatalf("up tensor 1 = %v, want 20", got)
	}
	if got := out[2].At(0); math.Abs(float64(got-60)) > 1e-5 {
		t.Fatalf("classifier tensor = %v, want 60", got)
	}
}

func TestMaskedAggregatorFallbackForUncoveredGroup(t *testing.T) {
	f := newMaskedFixture(t)
	agg, err := NewMaskedStreamAggregator(nil, f.groups, f.layout)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v float32) *tensor.Tensor {
		ts := tensor.New(2)
		ts.Set(v, 0)
		ts.Set(v, 1)
		return ts
	}
	if err := agg.Add(f.update(t, 1, 2, []string{"classifier"}, []*tensor.Tensor{mk(5)})); err != nil {
		t.Fatal(err)
	}
	out, err := agg.Finish(f.full)
	if err != nil {
		t.Fatal(err)
	}
	// Nobody covered "up": both tensors fall back to the global values.
	if out[0].At(0) != 1 || out[1].At(0) != 2 {
		t.Fatalf("uncovered group = %v/%v, want global 1/2", out[0].At(0), out[1].At(0))
	}
	if out[0] == f.full[0] {
		t.Fatal("fallback aliases the global tensor instead of cloning")
	}
	if out[2].At(0) != 5 {
		t.Fatalf("classifier = %v, want 5", out[2].At(0))
	}
}

// TestMaskedUpdateShipsZeroBytesForMaskedLayer pins the wire contract the
// tiers sweep reports: a group outside the client's mask contributes zero
// bytes to ClientUpdate.State — the blob is exactly the count prefix plus
// the covered groups' tensors.
func TestMaskedUpdateShipsZeroBytesForMaskedLayer(t *testing.T) {
	up1 := tensor.New(64, 64)
	up2 := tensor.New(64)
	head := tensor.New(10, 64)

	fullBlob, err := EncodeTensors([]*tensor.Tensor{up1, up2, head})
	if err != nil {
		t.Fatal(err)
	}
	maskedBlob, err := EncodeTensors([]*tensor.Tensor{head})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 + head.EncodedSize(); len(maskedBlob) != want {
		t.Fatalf("masked blob is %d bytes, want exactly %d (count prefix + head)", len(maskedBlob), want)
	}
	saved := len(fullBlob) - len(maskedBlob)
	if want := up1.EncodedSize() + up2.EncodedSize(); saved != want {
		t.Fatalf("masking the up group saved %d bytes, want %d", saved, want)
	}
}

func TestMaskedAggregatorRejections(t *testing.T) {
	f := newMaskedFixture(t)
	mk := func(v float32) *tensor.Tensor {
		ts := tensor.New(2)
		ts.Set(v, 0)
		return ts
	}
	good := f.update(t, 0, 1, []string{"classifier"}, []*tensor.Tensor{mk(9)})

	cases := []struct {
		name string
		u    ClientUpdate
	}{
		{"empty groups", f.update(t, 1, 1, nil, []*tensor.Tensor{mk(1)})},
		{"unknown group", f.update(t, 1, 1, []string{"warp"}, []*tensor.Tensor{mk(1)})},
		{"duplicate group", f.update(t, 1, 1, []string{"classifier", "classifier"}, []*tensor.Tensor{mk(1), mk(1)})},
		{"non-canonical order", f.update(t, 1, 1, []string{"classifier", "up"}, []*tensor.Tensor{mk(1), mk(1), mk(1)})},
		{"tensor count mismatch", f.update(t, 1, 1, []string{"up"}, []*tensor.Tensor{mk(1)})},
		{"zero selected", func() ClientUpdate {
			u := f.update(t, 1, 1, []string{"classifier"}, []*tensor.Tensor{mk(1)})
			u.NumSelected = 0
			return u
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			agg, err := NewMaskedStreamAggregator(nil, f.groups, f.layout)
			if err != nil {
				t.Fatal(err)
			}
			if err := agg.Add(good); err != nil {
				t.Fatal(err)
			}
			if err := agg.Add(tc.u); err == nil {
				t.Fatal("bad update accepted")
			}
			// The failed add must not have touched the aggregate.
			out, err := agg.Finish(f.full)
			if err != nil {
				t.Fatal(err)
			}
			if out[2].At(0) != 9 {
				t.Fatalf("aggregate poisoned: classifier = %v, want 9", out[2].At(0))
			}
		})
	}
}

func TestMaskedAggregatorShapeMismatchAtomic(t *testing.T) {
	f := newMaskedFixture(t)
	agg, err := NewMaskedStreamAggregator(nil, f.groups, f.layout)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(n int, v float32) *tensor.Tensor {
		ts := tensor.New(n)
		ts.Set(v, 0)
		return ts
	}
	if err := agg.Add(f.update(t, 0, 1, []string{"up", "classifier"},
		[]*tensor.Tensor{mk(2, 1), mk(2, 2), mk(2, 3)})); err != nil {
		t.Fatal(err)
	}
	// Client 1's second "up" tensor has the wrong shape; the whole update
	// must be rejected without perturbing any tensor's total.
	bad := f.update(t, 1, 5, []string{"up", "classifier"},
		[]*tensor.Tensor{mk(2, 100), mk(3, 100), mk(2, 100)})
	if err := agg.Add(bad); err == nil {
		t.Fatal("shape-mismatched update accepted")
	}
	out, err := agg.Finish(f.full)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float32{1, 2, 3} {
		if out[i].At(0) != want {
			t.Fatalf("tensor %d = %v, want %v", i, out[i].At(0), want)
		}
	}
}

func TestNewMaskedStreamAggregatorValidation(t *testing.T) {
	if _, err := NewMaskedStreamAggregator(nil, nil, nil); err == nil {
		t.Fatal("empty construction accepted")
	}
	if _, err := NewMaskedStreamAggregator(nil, []string{"a", "a"}, []string{"a"}); err == nil {
		t.Fatal("duplicate group accepted")
	}
	if _, err := NewMaskedStreamAggregator(nil, []string{"a"}, []string{"b"}); err == nil {
		t.Fatal("layout with unknown group accepted")
	}
	if _, err := NewMaskedStreamAggregator(nil, []string{"a", "b"}, []string{"a"}); err == nil {
		t.Fatal("group without tensors accepted")
	}
	agg, err := NewMaskedStreamAggregator(nil, []string{"a"}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Finish([]*tensor.Tensor{tensor.New(1)}); err == nil {
		t.Fatal("Finish with no updates succeeded")
	}
}
