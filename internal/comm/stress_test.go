package comm

import (
	"fmt"
	"sync"
	"testing"

	"fedfteds/internal/tensor"
)

// TestManyClientManyRoundStress drives the full protocol with 8 concurrent
// clients over in-process pipes for 20 rounds, shipping real tensor payloads
// each way, verifying ordering and integrity under concurrency.
func TestManyClientManyRoundStress(t *testing.T) {
	const (
		numClients = 8
		rounds     = 20
	)
	serverConns := make([]Conn, numClients)
	clientConns := make([]Conn, numClients)
	for i := range serverConns {
		serverConns[i], clientConns[i] = Pipe()
	}
	lst := &staticListener{conns: serverConns}

	payload := tensor.New(32, 16)
	for i := range payload.Data() {
		payload.Data()[i] = float32(i)
	}
	stateBlob, err := EncodeTensors([]*tensor.Tensor{payload})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	clientErrs := make([]error, numClients)
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			clientErrs[id] = stressClient(clientConns[id], id)
		}(i)
	}

	sess, err := AcceptClients(lst, numClients, rounds)
	if err != nil {
		t.Fatal(err)
	}
	ids := sess.ClientIDs()
	for round := 1; round <= rounds; round++ {
		updates, err := sess.RunRound(RoundStart{
			Round:          round,
			State:          stateBlob,
			Groups:         []string{"up", "classifier"},
			SelectFraction: 0.5,
			LocalEpochs:    1,
		}, ids)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(updates) != numClients {
			t.Fatalf("round %d: %d updates", round, len(updates))
		}
		for i, u := range updates {
			if u.ClientID != i {
				t.Fatalf("round %d: updates out of order: %d at slot %d", round, u.ClientID, i)
			}
			ts, err := DecodeTensors(u.State)
			if err != nil {
				t.Fatalf("round %d client %d: %v", round, i, err)
			}
			// The stress client echoes the state scaled by its id+1.
			want := payload.Clone()
			want.Scale(float32(i + 1))
			if !ts[0].AllClose(want, 1e-6) {
				t.Fatalf("round %d client %d: payload corrupted", round, i)
			}
		}
	}
	if err := sess.Shutdown("stress complete"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for id, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
}

// stressClient echoes each round's state scaled by (id+1).
func stressClient(conn Conn, id int) error {
	sess, _, err := Join(conn, id, 100)
	if err != nil {
		return err
	}
	for {
		rs, ok, err := sess.NextRound()
		if err != nil {
			return err
		}
		if !ok {
			return sess.Close()
		}
		ts, err := DecodeTensors(rs.State)
		if err != nil {
			return err
		}
		for _, x := range ts {
			x.Scale(float32(id + 1))
		}
		blob, err := EncodeTensors(ts)
		if err != nil {
			return err
		}
		if err := sess.SendUpdate(ClientUpdate{
			ClientID:    id,
			Round:       rs.Round,
			State:       blob,
			NumSelected: 10 + id,
		}); err != nil {
			return fmt.Errorf("round %d: %w", rs.Round, err)
		}
	}
}
