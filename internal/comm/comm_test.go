package comm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"fedfteds/internal/tensor"
)

func TestEncodeDecodeTensors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := []*tensor.Tensor{
		tensor.New(3, 4),
		tensor.New(7),
		tensor.New(2, 2, 2),
	}
	for _, x := range ts {
		x.FillNormal(rng, 0, 1)
	}
	blob, err := EncodeTensors(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTensors(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("decoded %d tensors", len(got))
	}
	for i := range ts {
		if !got[i].Equal(ts[i]) {
			t.Fatalf("tensor %d mismatch", i)
		}
	}
}

func TestDecodeTensorsRejectsGarbage(t *testing.T) {
	if _, err := DecodeTensors([]byte{1, 2}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol, got %v", err)
	}
	// Valid count but trailing junk.
	blob, err := EncodeTensors([]*tensor.Tensor{tensor.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, 0xFF)
	if _, err := DecodeTensors(blob); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol for trailing bytes, got %v", err)
	}
}

func TestEnvelopeBodyRoundTrip(t *testing.T) {
	in := RoundStart{Round: 3, State: []byte{1, 2, 3}, Groups: []string{"up", "classifier"}, SelectFraction: 0.5, LocalEpochs: 5}
	env, err := EncodeBody(MsgRoundStart, in)
	if err != nil {
		t.Fatal(err)
	}
	var out RoundStart
	if err := DecodeBody(env, &out); err != nil {
		t.Fatal(err)
	}
	if out.Round != 3 || out.SelectFraction != 0.5 || len(out.Groups) != 2 || out.Groups[0] != "up" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestPipeSendRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	env, err := EncodeBody(MsgHello, Hello{ClientID: 7, LocalSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Send(env) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var hello Hello
	if err := DecodeBody(got, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.ClientID != 7 {
		t.Fatalf("client id %d", hello.ClientID)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errCh <- err
	}()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol on closed recv, got %v", err)
	}
}

func TestTCPConnRoundTrip(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		env, err := conn.Recv()
		if err != nil {
			serverErr = err
			return
		}
		serverErr = conn.Send(env) // echo
	}()

	client, err := DialTCP(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(2))
	payload := tensor.New(16, 16)
	payload.FillNormal(rng, 0, 1)
	blob, err := EncodeTensors([]*tensor.Tensor{payload})
	if err != nil {
		t.Fatal(err)
	}
	env, err := EncodeBody(MsgClientUpdate, ClientUpdate{ClientID: 1, Round: 2, State: blob, NumSelected: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(env); err != nil {
		t.Fatal(err)
	}
	echo, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
	var u ClientUpdate
	if err := DecodeBody(echo, &u); err != nil {
		t.Fatal(err)
	}
	ts, err := DecodeTensors(u.State)
	if err != nil {
		t.Fatal(err)
	}
	if !ts[0].Equal(payload) {
		t.Fatal("tensor corrupted over TCP")
	}
}

func TestServerClientSessionOverPipe(t *testing.T) {
	// Full protocol exercise with 2 clients over in-process pipes.
	const numClients = 2
	serverConns := make([]Conn, numClients)
	clientConns := make([]Conn, numClients)
	for i := 0; i < numClients; i++ {
		serverConns[i], clientConns[i] = Pipe()
	}
	lst := &staticListener{conns: serverConns}

	var wg sync.WaitGroup
	results := make([]error, numClients)
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = runFakeClient(clientConns[id], id)
		}(i)
	}

	sess, err := AcceptClients(lst, numClients, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := sess.ClientIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("client ids %v", ids)
	}
	for round := 1; round <= 2; round++ {
		updates, err := sess.RunRound(RoundStart{
			Round: round, State: []byte{9}, Groups: []string{"up"},
			SelectFraction: 0.5, LocalEpochs: 1,
		}, ids)
		if err != nil {
			t.Fatal(err)
		}
		if len(updates) != 2 {
			t.Fatalf("round %d: %d updates", round, len(updates))
		}
		for i, u := range updates {
			if u.ClientID != i || u.Round != round {
				t.Fatalf("update %d: %+v", i, u)
			}
		}
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for id, err := range results {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
}

// runFakeClient joins, answers every round with a trivial update, and exits
// on shutdown.
func runFakeClient(conn Conn, id int) error {
	sess, welcome, err := Join(conn, id, 10)
	if err != nil {
		return err
	}
	if welcome.NumClients != 2 {
		return errors.New("bad welcome")
	}
	for {
		rs, ok, err := sess.NextRound()
		if err != nil {
			return err
		}
		if !ok {
			return sess.Close()
		}
		if err := sess.SendUpdate(ClientUpdate{
			ClientID: id, Round: rs.Round, State: rs.State, NumSelected: 5,
		}); err != nil {
			return err
		}
	}
}

// staticListener serves a fixed set of pre-connected conns.
type staticListener struct {
	conns []Conn
	next  int
}

var _ Listener = (*staticListener)(nil)

func (s *staticListener) Accept() (Conn, error) {
	if s.next >= len(s.conns) {
		return nil, errors.New("no more conns")
	}
	c := s.conns[s.next]
	s.next++
	return c, nil
}

func (s *staticListener) Addr() string { return "static" }
func (s *staticListener) Close() error { return nil }

func TestAcceptClientsRejectsDuplicateIDs(t *testing.T) {
	sA, cA := Pipe()
	sB, cB := Pipe()
	lst := &staticListener{conns: []Conn{sA, sB}}

	go func() {
		env, _ := EncodeBody(MsgHello, Hello{ClientID: 3})
		_ = cA.Send(env)
		_, _ = cA.Recv()
		env2, _ := EncodeBody(MsgHello, Hello{ClientID: 3})
		_ = cB.Send(env2)
	}()
	if _, err := AcceptClients(lst, 2, 1); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol for duplicate id, got %v", err)
	}
}

func TestRunRoundRejectsWrongRoundEcho(t *testing.T) {
	sConn, cConn := Pipe()
	sess := &ServerSession{conns: map[int]Conn{0: sConn}}
	go func() {
		_, _, _ = (&ClientSession{conn: cConn, ID: 0}).NextRound()
		env, _ := EncodeBody(MsgClientUpdate, ClientUpdate{ClientID: 0, Round: 99})
		_ = cConn.Send(env)
	}()
	if _, err := sess.RunRound(RoundStart{Round: 1}, []int{0}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol for wrong round, got %v", err)
	}
}
