package comm

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestAdmitterReadmitsDroppedClient covers the relay-rejoin path: a peer
// whose connection died re-registers through the background Admitter and is
// folded back into the session at the next Drain, with its registration
// metadata (relay role, leaf count, local size) intact.
func TestAdmitterReadmitsDroppedClient(t *testing.T) {
	lst := NewPipeListener(2)
	go func() {
		if _, _, err := Join(lst.ClientSide(0), 0, 5); err != nil {
			t.Error(err)
		}
	}()
	sess, err := AcceptClients(lst, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	adm, err := NewAdmitter(lst, 1, 7)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: the server loses client 0's connection.
	_ = sess.conns[0].Close()
	delete(sess.conns, 0)
	delete(sess.relays, 0)
	delete(sess.leaves, 0)

	// The peer comes back as a relay this time, on a fresh connection.
	joined := make(chan error, 1)
	go func() {
		_, w, err := JoinRelay(lst.ClientSide(1), 0, 40, 4)
		if err == nil && w.Rounds != 7 {
			t.Errorf("re-admission welcome advertises %d rounds, want 7", w.Rounds)
		}
		joined <- err
	}()
	if err := <-joined; err != nil {
		t.Fatalf("rejoin: %v", err)
	}

	// The handshake runs in a background goroutine; poll the round-boundary
	// drain until the admission lands.
	deadline := time.Now().Add(5 * time.Second)
	var ids []int
	for len(ids) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-admission never drained")
		}
		ids = adm.Drain(sess)
		time.Sleep(time.Millisecond)
	}
	if !reflect.DeepEqual(ids, []int{0}) {
		t.Fatalf("drained %v, want [0]", ids)
	}
	if !sess.IsRelay(0) || sess.DownstreamClients(0) != 4 || sess.LocalSize(0) != 40 {
		t.Fatalf("re-admitted metadata lost: relay=%v leaves=%d size=%d",
			sess.IsRelay(0), sess.DownstreamClients(0), sess.LocalSize(0))
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitterRejectsLiveDuplicate: an impostor registering under a
// still-connected ID is refused at Drain and its connection closed; the
// original connection stays in the session.
func TestAdmitterRejectsLiveDuplicate(t *testing.T) {
	lst := NewPipeListener(2)
	go func() {
		if _, _, err := Join(lst.ClientSide(0), 0, 5); err != nil {
			t.Error(err)
		}
	}()
	sess, err := AcceptClients(lst, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	adm, err := NewAdmitter(lst, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	original := sess.conns[0]

	// The duplicate handshake itself succeeds (the Admitter cannot know
	// liveness); rejection happens at Drain, which closes the connection.
	dup, _, err := Join(lst.ClientSide(1), 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() {
		_, _, err := dup.NextRound()
		closed <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ids := adm.Drain(sess); len(ids) != 0 {
			t.Fatalf("live duplicate admitted: %v", ids)
		}
		select {
		case err := <-closed:
			if err == nil {
				t.Fatal("duplicate connection served a round instead of closing")
			}
			if sess.conns[0] != original {
				t.Fatal("original connection replaced by the duplicate")
			}
			if err := sess.Shutdown("done"); err != nil {
				t.Fatal(err)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("duplicate connection never closed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDialTCPRetryConnectsLateListener pins the startup-race contract: a
// dialer launched before its server listens succeeds once the listener
// appears within the backoff schedule.
func TestDialTCPRetryConnectsLateListener(t *testing.T) {
	restoreBase, restoreCap := dialRetryBase, dialRetryCap
	dialRetryBase, dialRetryCap = 5*time.Millisecond, 20*time.Millisecond
	defer func() { dialRetryBase, dialRetryCap = restoreBase, restoreCap }()

	// Reserve a port, then free it so the first dial attempts are refused.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	ready := make(chan Listener, 1)
	go func() {
		time.Sleep(15 * time.Millisecond)
		l, err := ListenTCP(addr)
		if err != nil {
			t.Error(err)
			close(ready)
			return
		}
		ready <- l
		// Complete the dialer's handshake so the TCP connect is accepted.
		conn, err := l.Accept()
		if err == nil {
			_ = conn.Close()
		}
	}()

	conn, err := DialTCPRetry(addr, time.Second, 10)
	if err != nil {
		t.Fatalf("retry dial never connected: %v", err)
	}
	_ = conn.Close()
	if l, ok := <-ready; ok {
		_ = l.Close()
	}
}

// TestDialTCPRetryExhaustsAttempts: with no listener ever appearing, the
// loop reports the attempt count and the final cause.
func TestDialTCPRetryExhaustsAttempts(t *testing.T) {
	restoreBase, restoreCap := dialRetryBase, dialRetryCap
	dialRetryBase, dialRetryCap = time.Millisecond, 2*time.Millisecond
	defer func() { dialRetryBase, dialRetryCap = restoreBase, restoreCap }()

	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	if _, err := DialTCPRetry(addr, 100*time.Millisecond, 3); err == nil {
		t.Fatal("dial to a dead address succeeded")
	} else if !strings.Contains(err.Error(), "after 4 attempts") {
		t.Fatalf("error %q does not report the attempt count", err)
	}

	// retries <= 0 must behave exactly like a single DialTCP: no backoff
	// sleep, and the error is the bare dial error without the retry wrapper.
	start := time.Now()
	if _, err := DialTCPRetry(addr, 100*time.Millisecond, 0); err == nil {
		t.Fatal("dial to a dead address succeeded")
	} else if strings.Contains(err.Error(), "attempts") {
		t.Fatalf("zero-retry dial wrapped its error: %q", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("zero-retry dial took %v", elapsed)
	}
}
