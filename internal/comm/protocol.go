package comm

import (
	"fmt"
	"sort"
	"sync"
)

// ServerSession coordinates a registered set of federated clients over any
// Transport. It implements the server half of the wire protocol.
type ServerSession struct {
	conns map[int]Conn // by client ID
}

// AcceptClients blocks until numClients clients have registered, answering
// each Hello with a Welcome.
func AcceptClients(l Listener, numClients, rounds int) (*ServerSession, error) {
	if numClients <= 0 {
		return nil, fmt.Errorf("%w: numClients %d", ErrProtocol, numClients)
	}
	s := &ServerSession{conns: make(map[int]Conn, numClients)}
	for len(s.conns) < numClients {
		conn, err := l.Accept()
		if err != nil {
			return nil, fmt.Errorf("comm: accepting client %d of %d: %w", len(s.conns)+1, numClients, err)
		}
		env, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("comm: reading hello: %w", err)
		}
		if env.Type != MsgHello {
			return nil, fmt.Errorf("%w: expected hello, got %v", ErrProtocol, env.Type)
		}
		var hello Hello
		if err := DecodeBody(env, &hello); err != nil {
			return nil, err
		}
		if _, dup := s.conns[hello.ClientID]; dup {
			return nil, fmt.Errorf("%w: duplicate client id %d", ErrProtocol, hello.ClientID)
		}
		welcome, err := EncodeBody(MsgWelcome, Welcome{NumClients: numClients, Rounds: rounds})
		if err != nil {
			return nil, err
		}
		if err := conn.Send(welcome); err != nil {
			return nil, fmt.Errorf("comm: sending welcome to %d: %w", hello.ClientID, err)
		}
		s.conns[hello.ClientID] = conn
	}
	return s, nil
}

// ClientIDs returns the registered client IDs in ascending order.
func (s *ServerSession) ClientIDs() []int {
	ids := make([]int, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// RunRound broadcasts a RoundStart to the given clients and collects one
// ClientUpdate from each. Updates return ordered by client ID.
func (s *ServerSession) RunRound(rs RoundStart, clientIDs []int) ([]ClientUpdate, error) {
	env, err := EncodeBody(MsgRoundStart, rs)
	if err != nil {
		return nil, err
	}
	for _, id := range clientIDs {
		conn, ok := s.conns[id]
		if !ok {
			return nil, fmt.Errorf("%w: unknown client %d", ErrProtocol, id)
		}
		if err := conn.Send(env); err != nil {
			return nil, fmt.Errorf("comm: round %d to client %d: %w", rs.Round, id, err)
		}
	}

	updates := make([]ClientUpdate, len(clientIDs))
	errs := make([]error, len(clientIDs))
	var wg sync.WaitGroup
	for i, id := range clientIDs {
		wg.Add(1)
		go func(slot, id int) {
			defer wg.Done()
			env, err := s.conns[id].Recv()
			if err != nil {
				errs[slot] = fmt.Errorf("comm: update from client %d: %w", id, err)
				return
			}
			if env.Type != MsgClientUpdate {
				errs[slot] = fmt.Errorf("%w: expected update from %d, got %v", ErrProtocol, id, env.Type)
				return
			}
			var u ClientUpdate
			if err := DecodeBody(env, &u); err != nil {
				errs[slot] = err
				return
			}
			if u.Round != rs.Round {
				errs[slot] = fmt.Errorf("%w: client %d answered round %d during round %d",
					ErrProtocol, id, u.Round, rs.Round)
				return
			}
			updates[slot] = u
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(updates, func(a, b int) bool { return updates[a].ClientID < updates[b].ClientID })
	return updates, nil
}

// Shutdown notifies every client and closes all connections.
func (s *ServerSession) Shutdown(reason string) error {
	env, err := EncodeBody(MsgShutdown, Shutdown{Reason: reason})
	if err != nil {
		return err
	}
	var firstErr error
	for id, conn := range s.conns {
		if err := conn.Send(env); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("comm: shutdown to %d: %w", id, err)
		}
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ClientSession is the client half of the wire protocol.
type ClientSession struct {
	conn Conn
	// ID is the client's federation index.
	ID int
}

// Join registers with the server and returns the session plus the server's
// Welcome.
func Join(conn Conn, clientID, localSize int) (*ClientSession, Welcome, error) {
	env, err := EncodeBody(MsgHello, Hello{ClientID: clientID, LocalSize: localSize})
	if err != nil {
		return nil, Welcome{}, err
	}
	if err := conn.Send(env); err != nil {
		return nil, Welcome{}, fmt.Errorf("comm: hello: %w", err)
	}
	reply, err := conn.Recv()
	if err != nil {
		return nil, Welcome{}, fmt.Errorf("comm: welcome: %w", err)
	}
	if reply.Type != MsgWelcome {
		return nil, Welcome{}, fmt.Errorf("%w: expected welcome, got %v", ErrProtocol, reply.Type)
	}
	var w Welcome
	if err := DecodeBody(reply, &w); err != nil {
		return nil, Welcome{}, err
	}
	return &ClientSession{conn: conn, ID: clientID}, w, nil
}

// NextRound blocks for the next instruction. ok is false when the server
// shut the session down.
func (c *ClientSession) NextRound() (rs RoundStart, ok bool, err error) {
	env, err := c.conn.Recv()
	if err != nil {
		return RoundStart{}, false, err
	}
	switch env.Type {
	case MsgRoundStart:
		if err := DecodeBody(env, &rs); err != nil {
			return RoundStart{}, false, err
		}
		return rs, true, nil
	case MsgShutdown:
		return RoundStart{}, false, nil
	default:
		return RoundStart{}, false, fmt.Errorf("%w: unexpected %v", ErrProtocol, env.Type)
	}
}

// SendUpdate returns the client's trained state to the server.
func (c *ClientSession) SendUpdate(u ClientUpdate) error {
	env, err := EncodeBody(MsgClientUpdate, u)
	if err != nil {
		return err
	}
	return c.conn.Send(env)
}

// Close releases the client connection.
func (c *ClientSession) Close() error { return c.conn.Close() }
