package comm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// shutdownTimeout bounds each shutdown send, so a hung client that stopped
// reading cannot wedge the server at exit.
const shutdownTimeout = 10 * time.Second

// ServerSession coordinates a registered set of federated clients over any
// Transport. It implements the server half of the wire protocol.
type ServerSession struct {
	conns  map[int]Conn   // by client ID
	sizes  map[int]int    // local dataset sizes reported at Hello, by client ID
	tiers  map[int]string // device tiers reported at Hello, by client ID
	relays map[int]bool   // relay role reported at Hello, by client ID
	leaves map[int]int    // downstream leaf counts reported at Hello, by client ID
}

// AcceptClients blocks until numClients clients have registered, answering
// each Hello with a Welcome. On error every accepted connection — including
// the one mid-handshake — is closed before returning, so no descriptor
// leaks.
func AcceptClients(l Listener, numClients, rounds int) (*ServerSession, error) {
	return AcceptClientsCodec(l, numClients, rounds, "")
}

// AcceptClientsCodec is AcceptClients with an uplink-codec advertisement:
// codec is the canonical name the Welcome carries (see advertiseCodecs —
// identity advertises nothing, keeping the handshake byte-identical to
// pre-codec sessions).
func AcceptClientsCodec(l Listener, numClients, rounds int, codec string) (*ServerSession, error) {
	if numClients <= 0 {
		return nil, fmt.Errorf("%w: numClients %d", ErrProtocol, numClients)
	}
	adverts := advertiseCodecs(codec)
	s := &ServerSession{
		conns:  make(map[int]Conn, numClients),
		sizes:  make(map[int]int, numClients),
		tiers:  make(map[int]string, numClients),
		relays: make(map[int]bool, numClients),
		leaves: make(map[int]int, numClients),
	}
	fail := func(conn Conn, err error) (*ServerSession, error) {
		if conn != nil {
			_ = conn.Close()
		}
		for _, c := range s.conns {
			_ = c.Close()
		}
		return nil, err
	}
	for len(s.conns) < numClients {
		conn, err := l.Accept()
		if err != nil {
			return fail(nil, fmt.Errorf("comm: accepting client %d of %d: %w", len(s.conns)+1, numClients, err))
		}
		env, err := conn.Recv()
		if err != nil {
			return fail(conn, fmt.Errorf("comm: reading hello: %w", err))
		}
		if env.Type != MsgHello {
			return fail(conn, fmt.Errorf("%w: expected hello, got %v", ErrProtocol, env.Type))
		}
		var hello Hello
		if err := DecodeBody(env, &hello); err != nil {
			return fail(conn, err)
		}
		if _, dup := s.conns[hello.ClientID]; dup {
			return fail(conn, fmt.Errorf("%w: duplicate client id %d", ErrProtocol, hello.ClientID))
		}
		welcome, err := EncodeBody(MsgWelcome, Welcome{NumClients: numClients, Rounds: rounds, Codecs: adverts})
		if err != nil {
			return fail(conn, err)
		}
		if err := conn.Send(welcome); err != nil {
			return fail(conn, fmt.Errorf("comm: sending welcome to %d: %w", hello.ClientID, err))
		}
		s.admit(hello, conn)
	}
	return s, nil
}

// advertiseCodecs renders a session codec name as the Welcome.Codecs
// advertisement: identity (or empty) advertises nothing — gob then omits
// the field and the Welcome stays byte-identical to pre-codec frames —
// and anything else advertises exactly that one name.
func advertiseCodecs(codec string) []string {
	if codec == "" || codec == CodecIdentity {
		return nil
	}
	return []string{codec}
}

// admit registers one handshaked connection.
func (s *ServerSession) admit(hello Hello, conn Conn) {
	s.conns[hello.ClientID] = conn
	s.sizes[hello.ClientID] = hello.LocalSize
	s.tiers[hello.ClientID] = hello.Tier
	s.relays[hello.ClientID] = hello.Relay
	s.leaves[hello.ClientID] = hello.Clients
}

// Admit registers a handshaked connection after the initial accept phase —
// the re-admission path for a crashed-and-restarted relay or client. The
// Welcome must already have been sent (the Admitter does). A duplicate of a
// still-live ID is rejected; the caller keeps ownership of the rejected
// connection.
func (s *ServerSession) Admit(hello Hello, conn Conn) error {
	if _, dup := s.conns[hello.ClientID]; dup {
		return fmt.Errorf("%w: duplicate client id %d", ErrProtocol, hello.ClientID)
	}
	s.admit(hello, conn)
	return nil
}

// LocalSize returns the local dataset size the client reported at
// registration (zero for unknown clients) — the scheduler's |D_i| signal.
func (s *ServerSession) LocalSize(id int) int { return s.sizes[id] }

// Tier returns the device tier the client reported at registration (empty
// for untiered or unknown clients) — the scheduler's tier signal.
func (s *ServerSession) Tier(id int) string { return s.tiers[id] }

// IsRelay reports whether the registered peer declared itself a mid-tier
// relay (it answers rounds with RegionUpdate frames).
func (s *ServerSession) IsRelay(id int) bool { return s.relays[id] }

// DownstreamClients returns the number of leaf clients a registered relay
// speaks for (zero for plain clients and unknown IDs) — the scheduler's
// region-population signal.
func (s *ServerSession) DownstreamClients(id int) int { return s.leaves[id] }

// ClientIDs returns the registered client IDs in ascending order.
func (s *ServerSession) ClientIDs() []int {
	ids := make([]int, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// RunRound broadcasts a RoundStart to the given clients and collects one
// ClientUpdate from each. Updates return ordered by client ID. It is the
// fail-stop special case of the RoundEngine: full quorum, no deadline, all
// updates buffered — any client failure fails the round. Use a RoundEngine
// for partial participation.
func (s *ServerSession) RunRound(rs RoundStart, clientIDs []int) ([]ClientUpdate, error) {
	var updates []ClientUpdate
	_, err := s.runRound(rs, clientIDs, EngineConfig{}, func(u ClientUpdate) error {
		updates = append(updates, u)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(updates, func(a, b int) bool { return updates[a].ClientID < updates[b].ClientID })
	return updates, nil
}

// Shutdown notifies every client concurrently, closes every connection even
// when sends fail, and returns the joined errors in client-ID order.
func (s *ServerSession) Shutdown(reason string) error {
	env, err := EncodeBody(MsgShutdown, Shutdown{Reason: reason})
	if err != nil {
		return err
	}
	ids := s.ClientIDs()
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i, id int, conn Conn) {
			defer wg.Done()
			if dc, ok := conn.(DeadlineConn); ok {
				_ = dc.SetDeadline(time.Now().Add(shutdownTimeout))
			}
			var sendErr, closeErr error
			if err := conn.Send(env); err != nil {
				sendErr = fmt.Errorf("comm: shutdown to %d: %w", id, err)
			}
			if err := conn.Close(); err != nil {
				closeErr = fmt.Errorf("comm: closing %d: %w", id, err)
			}
			errs[i] = errors.Join(sendErr, closeErr)
		}(i, id, s.conns[id])
	}
	wg.Wait()
	clear(s.conns)
	return errors.Join(errs...)
}

// ClientSession is the client half of the wire protocol.
type ClientSession struct {
	conn Conn
	// ID is the client's federation index.
	ID int
}

// Join registers with the server and returns the session plus the server's
// Welcome.
func Join(conn Conn, clientID, localSize int) (*ClientSession, Welcome, error) {
	return JoinTiered(conn, clientID, localSize, "")
}

// JoinTiered is Join with a device-tier declaration; tiered clients report
// their capability class so the server can balance cohorts and expect
// masked updates.
func JoinTiered(conn Conn, clientID, localSize int, tier string) (*ClientSession, Welcome, error) {
	return join(conn, Hello{ClientID: clientID, LocalSize: localSize, Tier: tier})
}

// JoinRelay registers a mid-tier relay with the root: localSize is the
// summed leaf dataset size and clients the region's leaf count, so the root
// can schedule and weigh the region by its population.
func JoinRelay(conn Conn, relayID, localSize, clients int) (*ClientSession, Welcome, error) {
	return join(conn, Hello{ClientID: relayID, LocalSize: localSize, Relay: true, Clients: clients})
}

// join performs the Hello/Welcome handshake for any registration role.
func join(conn Conn, hello Hello) (*ClientSession, Welcome, error) {
	env, err := EncodeBody(MsgHello, hello)
	if err != nil {
		return nil, Welcome{}, err
	}
	if err := conn.Send(env); err != nil {
		return nil, Welcome{}, fmt.Errorf("comm: hello: %w", err)
	}
	reply, err := conn.Recv()
	if err != nil {
		return nil, Welcome{}, fmt.Errorf("comm: welcome: %w", err)
	}
	if reply.Type != MsgWelcome {
		return nil, Welcome{}, fmt.Errorf("%w: expected welcome, got %v", ErrProtocol, reply.Type)
	}
	var w Welcome
	if err := DecodeBody(reply, &w); err != nil {
		return nil, Welcome{}, err
	}
	return &ClientSession{conn: conn, ID: hello.ClientID}, w, nil
}

// NextRound blocks for the next instruction. ok is false when the server
// shut the session down.
func (c *ClientSession) NextRound() (rs RoundStart, ok bool, err error) {
	env, err := c.conn.Recv()
	if err != nil {
		return RoundStart{}, false, err
	}
	switch env.Type {
	case MsgRoundStart:
		if err := DecodeBody(env, &rs); err != nil {
			return RoundStart{}, false, err
		}
		return rs, true, nil
	case MsgShutdown:
		return RoundStart{}, false, nil
	default:
		return RoundStart{}, false, fmt.Errorf("%w: unexpected %v", ErrProtocol, env.Type)
	}
}

// SendUpdate returns the client's trained state to the server.
func (c *ClientSession) SendUpdate(u ClientUpdate) error {
	env, err := EncodeBody(MsgClientUpdate, u)
	if err != nil {
		return err
	}
	return c.conn.Send(env)
}

// SendRegion returns a relay's folded regional delta to the root.
func (c *ClientSession) SendRegion(ru RegionUpdate) error {
	env, err := EncodeBody(MsgRegionUpdate, ru)
	if err != nil {
		return err
	}
	return c.conn.Send(env)
}

// Close releases the client connection.
func (c *ClientSession) Close() error { return c.conn.Close() }
