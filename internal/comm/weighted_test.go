package comm

import (
	"errors"
	"testing"

	"fedfteds/internal/tensor"
)

// mkUpdate builds a ClientUpdate whose single state tensor is filled with v.
func mkUpdate(t *testing.T, id, nsel int, v float32) ClientUpdate {
	t.Helper()
	ts := tensor.New(3)
	ts.Fill(v)
	blob, err := EncodeTensors([]*tensor.Tensor{ts})
	if err != nil {
		t.Fatal(err)
	}
	return ClientUpdate{ClientID: id, Round: 1, State: blob, NumSelected: nsel}
}

// TestWeightedAggregatorMatchesDefault pins the strategy-weighting hook: a
// WeightFunc returning NumSelected reproduces the default aggregator bit
// for bit.
func TestWeightedAggregatorMatchesDefault(t *testing.T) {
	ups := []ClientUpdate{mkUpdate(t, 0, 1, 0), mkUpdate(t, 1, 3, 1)}

	def := NewStreamAggregator()
	custom := NewWeightedStreamAggregator(func(u ClientUpdate) (float64, error) {
		return float64(u.NumSelected), nil
	})
	for _, u := range ups {
		if err := def.Add(u); err != nil {
			t.Fatal(err)
		}
		if err := custom.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	a, err := def.Finish()
	if err != nil {
		t.Fatal(err)
	}
	b, err := custom.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("weighted aggregate diverged from default at tensor %d", i)
		}
	}
	if got := a[0].Data()[0]; got != 0.75 {
		t.Fatalf("selected-size aggregate %v, want 0.75", got)
	}
}

// TestWeightedAggregatorUniform: a uniform WeightFunc averages plainly.
func TestWeightedAggregatorUniform(t *testing.T) {
	agg := NewWeightedStreamAggregator(func(ClientUpdate) (float64, error) { return 1, nil })
	if err := agg.Add(mkUpdate(t, 0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(mkUpdate(t, 1, 3, 1)); err != nil {
		t.Fatal(err)
	}
	out, err := agg.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0].Data()[0]; got != 0.5 {
		t.Fatalf("uniform aggregate %v, want 0.5", got)
	}
}

// TestWeightedAggregatorRejections: weigh errors and degenerate weights are
// atomic — the running sum stays untouched and the round survives.
func TestWeightedAggregatorRejections(t *testing.T) {
	boom := errors.New("boom")
	agg := NewWeightedStreamAggregator(func(u ClientUpdate) (float64, error) {
		switch u.ClientID {
		case 1:
			return 0, boom
		case 2:
			return 0, nil // non-positive weight
		default:
			return 1, nil
		}
	})
	if err := agg.Add(mkUpdate(t, 0, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(mkUpdate(t, 1, 2, 9)); !errors.Is(err, boom) {
		t.Fatalf("weigh error not surfaced: %v", err)
	}
	if err := agg.Add(mkUpdate(t, 2, 2, 9)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("non-positive weight accepted: %v", err)
	}
	out, err := agg.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0].Data()[0]; got != 4 {
		t.Fatalf("rejected updates leaked into the aggregate: %v", got)
	}
}
