package comm

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"fedfteds/internal/tensor"
)

// echoClient joins and answers every round with a trivial valid update,
// until the server shuts the session down.
func echoClient(conn Conn, id int) {
	sess, _, err := Join(conn, id, 10)
	if err != nil {
		return
	}
	for {
		rs, ok, err := sess.NextRound()
		if err != nil || !ok {
			_ = sess.Close()
			return
		}
		if err := sess.SendUpdate(ClientUpdate{ClientID: id, Round: rs.Round, NumSelected: 1 + id}); err != nil {
			return
		}
	}
}

func TestEngineQuorumSurvivesKilledClient(t *testing.T) {
	const numClients = 3
	lst := NewPipeListener(numClients)
	for i := 0; i < numClients; i++ {
		go func(id int) {
			conn := lst.ClientSide(id)
			sess, _, err := Join(conn, id, 10)
			if err != nil {
				return
			}
			for {
				rs, ok, err := sess.NextRound()
				if err != nil || !ok {
					return
				}
				if id == 2 && rs.Round == 2 {
					// Crash mid-round: vanish without replying.
					_ = conn.Close()
					return
				}
				if err := sess.SendUpdate(ClientUpdate{ClientID: id, Round: rs.Round, NumSelected: 1}); err != nil {
					return
				}
			}
		}(i)
	}

	sess, err := AcceptClients(lst, numClients, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewRoundEngine(sess, EngineConfig{Quorum: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		var got []int
		out, err := eng.RunRound(RoundStart{Round: round}, func(u ClientUpdate) error {
			got = append(got, u.ClientID)
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		switch round {
		case 1:
			if !reflect.DeepEqual(out.Reported, []int{0, 1, 2}) {
				t.Fatalf("round 1 reported %v", out.Reported)
			}
		case 2:
			if !reflect.DeepEqual(out.Reported, []int{0, 1}) || !reflect.DeepEqual(out.Dropped, []int{2}) {
				t.Fatalf("round 2 reported %v dropped %v", out.Reported, out.Dropped)
			}
			if out.Failures[2] == nil {
				t.Fatal("round 2: expected a failure recorded for client 2")
			}
		case 3:
			if !reflect.DeepEqual(out.Reported, []int{0, 1}) || len(out.Dropped) != 0 {
				t.Fatalf("round 3 reported %v dropped %v", out.Reported, out.Dropped)
			}
		}
	}
	if ids := sess.ClientIDs(); !reflect.DeepEqual(ids, []int{0, 1}) {
		t.Fatalf("surviving clients %v", ids)
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
}

// TestEngineCohortIdleClientsSurviveAndRejoin drives scheduled cohorts: a
// round broadcast to cohort {0, 1} must never touch client 2 — it receives
// no frame, keeps its connection, and counts toward no quorum — and a later
// cohort that includes it gets its update as if nothing happened.
func TestEngineCohortIdleClientsSurviveAndRejoin(t *testing.T) {
	const numClients = 3
	lst := NewPipeListener(numClients)
	rounds := make([]chan int, numClients) // the round indices each client served
	for i := 0; i < numClients; i++ {
		rounds[i] = make(chan int, 8)
		go func(id int) {
			sess, _, err := Join(lst.ClientSide(id), id, 10+id)
			if err != nil {
				return
			}
			for {
				rs, ok, err := sess.NextRound()
				if err != nil || !ok {
					close(rounds[id])
					return
				}
				rounds[id] <- rs.Round
				if err := sess.SendUpdate(ClientUpdate{ClientID: id, Round: rs.Round, NumSelected: 1}); err != nil {
					return
				}
			}
		}(i)
	}

	sess, err := AcceptClients(lst, numClients, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A short deadline: if the engine waited on the idle client, the round
	// would stall to the deadline and report a timeout.
	eng, err := NewRoundEngine(sess, EngineConfig{RoundDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	fold := func(ClientUpdate) error { return nil }
	out, err := eng.RunCohort(RoundStart{Round: 1}, []int{0, 1}, fold)
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if !reflect.DeepEqual(out.Reported, []int{0, 1}) || len(out.TimedOut) != 0 || len(out.Dropped) != 0 {
		t.Fatalf("round 1 outcome %+v", out)
	}
	// The idle client stays registered with its Hello metadata intact.
	if ids := sess.ClientIDs(); !reflect.DeepEqual(ids, []int{0, 1, 2}) {
		t.Fatalf("live clients %v, want all three", ids)
	}
	if got := sess.LocalSize(2); got != 12 {
		t.Fatalf("idle client's local size %d, want 12", got)
	}

	// The formerly idle client serves the next cohort; client 0 now idles.
	out, err = eng.RunCohort(RoundStart{Round: 2}, []int{1, 2}, fold)
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if !reflect.DeepEqual(out.Reported, []int{1, 2}) {
		t.Fatalf("round 2 reported %v", out.Reported)
	}

	// Duplicate cohort entries must be rejected, not silently collapsed.
	if _, err := eng.RunCohort(RoundStart{Round: 3}, []int{1, 1}, fold); !errors.Is(err, ErrProtocol) {
		t.Fatalf("duplicate cohort: %v, want ErrProtocol", err)
	}

	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
	// Per-client service log: client 0 served only round 1, client 1 both
	// rounds, client 2 only round 2 — idle rounds left no trace.
	want := [][]int{{1}, {1, 2}, {2}}
	for id := range rounds {
		var got []int
		for r := range rounds[id] {
			got = append(got, r)
		}
		if !reflect.DeepEqual(got, want[id]) {
			t.Fatalf("client %d served rounds %v, want %v", id, got, want[id])
		}
	}
}

func TestEngineDeadlineDropsStalledClientThenRejoins(t *testing.T) {
	lst := NewPipeListener(2)
	go echoClient(lst.ClientSide(0), 0)
	go func() {
		sess, _, err := Join(lst.ClientSide(1), 1, 10)
		if err != nil {
			return
		}
		for {
			rs, ok, err := sess.NextRound()
			if err != nil || !ok {
				return
			}
			if rs.Round == 1 {
				// Hang silently through round 1; recover afterwards.
				continue
			}
			if err := sess.SendUpdate(ClientUpdate{ClientID: 1, Round: rs.Round, NumSelected: 1}); err != nil {
				return
			}
		}
	}()

	sess, err := AcceptClients(lst, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewRoundEngine(sess, EngineConfig{RoundDeadline: 150 * time.Millisecond, Quorum: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	fold := func(ClientUpdate) error { return nil }
	out, err := eng.RunRound(RoundStart{Round: 1}, fold)
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if !reflect.DeepEqual(out.Reported, []int{0}) || !reflect.DeepEqual(out.TimedOut, []int{1}) {
		t.Fatalf("round 1 reported %v timed out %v", out.Reported, out.TimedOut)
	}
	if !errors.Is(out.Failures[1], ErrTimeout) {
		t.Fatalf("round 1: client 1 failure %v, want ErrTimeout", out.Failures[1])
	}
	// The stalled client kept its connection and rejoins in round 2.
	out, err = eng.RunRound(RoundStart{Round: 2}, fold)
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if !reflect.DeepEqual(out.Reported, []int{0, 1}) {
		t.Fatalf("round 2 reported %v", out.Reported)
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDiscardsLateUpdate(t *testing.T) {
	lst := NewPipeListener(1)
	go func() {
		sess, _, err := Join(lst.ClientSide(0), 0, 10)
		if err != nil {
			return
		}
		rs, ok, err := sess.NextRound()
		if err != nil || !ok {
			return
		}
		// A leftover update from the round this client missed, then the
		// real one.
		_ = sess.SendUpdate(ClientUpdate{ClientID: 0, Round: rs.Round - 1, NumSelected: 1})
		_ = sess.SendUpdate(ClientUpdate{ClientID: 0, Round: rs.Round, NumSelected: 1})
		_, _, _ = sess.NextRound() // wait for shutdown
	}()

	sess, err := AcceptClients(lst, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewRoundEngine(sess, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var folded int
	out, err := eng.RunRound(RoundStart{Round: 7}, func(u ClientUpdate) error {
		folded++
		if u.Round != 7 {
			t.Errorf("folded round-%d update", u.Round)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.LateDiscarded != 1 {
		t.Fatalf("late discarded %d, want 1", out.LateDiscarded)
	}
	if folded != 1 || !reflect.DeepEqual(out.Reported, []int{0}) {
		t.Fatalf("folded %d, reported %v", folded, out.Reported)
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
}

func TestEngineQuorumNotMet(t *testing.T) {
	lst := NewPipeListener(2)
	for i := 0; i < 2; i++ {
		go func(id int) {
			sess, _, err := Join(lst.ClientSide(id), id, 10)
			if err != nil {
				return
			}
			_, _, _ = sess.NextRound()
			_ = sess.Close() // every client dies instead of reporting
		}(i)
	}
	sess, err := AcceptClients(lst, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewRoundEngine(sess, EngineConfig{Quorum: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.RunRound(RoundStart{Round: 1}, func(ClientUpdate) error { return nil })
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("expected ErrQuorum, got %v", err)
	}
	if len(out.Reported) != 0 || len(out.Dropped) != 2 {
		t.Fatalf("reported %v dropped %v", out.Reported, out.Dropped)
	}
}

// TestStreamAggregatorMatchesBuffered verifies the O(state) streaming fold
// against an O(N·state) buffered reference, bit-for-bit, and against the
// normalize-first weighting within float tolerance.
func TestStreamAggregatorMatchesBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 6
	shapes := [][]int{{4, 3}, {7}, {2, 5}}

	updates := make([]ClientUpdate, n)
	states := make([][]*tensor.Tensor, n) // the buffered reference's O(N·state) copy
	var total float64
	for c := 0; c < n; c++ {
		ts := make([]*tensor.Tensor, len(shapes))
		for i, sh := range shapes {
			ts[i] = tensor.New(sh...)
			ts[i].FillNormal(rng, 0, 1)
		}
		blob, err := EncodeTensors(ts)
		if err != nil {
			t.Fatal(err)
		}
		num := 5 + 3*c
		updates[c] = ClientUpdate{ClientID: c, Round: 1, State: blob, NumSelected: num}
		states[c] = ts
		total += float64(num)
	}

	agg := NewStreamAggregator()
	for _, u := range updates {
		if err := agg.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	if agg.Updates() != n {
		t.Fatalf("folded %d updates", agg.Updates())
	}
	got, err := agg.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Buffered reference: all states held in memory, folded in the same
	// order, normalized at the end.
	buffered := make([]*tensor.Tensor, len(shapes))
	for i, sh := range shapes {
		buffered[i] = tensor.New(sh...)
	}
	for c := range states {
		for i := range buffered {
			if err := buffered[i].Axpy(float32(updates[c].NumSelected), states[c][i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, b := range buffered {
		b.Scale(float32(1 / total))
	}
	for i := range buffered {
		if !got[i].Equal(buffered[i]) {
			t.Fatalf("tensor %d: streaming differs from buffered aggregate", i)
		}
	}

	// Normalize-first weighting (the historical fedserver aggregate) agrees
	// within float32 tolerance.
	ref := make([]*tensor.Tensor, len(shapes))
	for i, sh := range shapes {
		ref[i] = tensor.New(sh...)
	}
	for c := range states {
		w := float32(float64(updates[c].NumSelected) / total)
		for i := range ref {
			if err := ref[i].Axpy(w, states[c][i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range ref {
		if !got[i].AllClose(ref[i], 1e-5) {
			t.Fatalf("tensor %d: streaming diverges from normalize-first weighting", i)
		}
	}
}

func TestStreamAggregatorRejectsBadUpdateAtomically(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	good := tensor.New(3, 3)
	good.FillNormal(rng, 0, 1)
	blob, err := EncodeTensors([]*tensor.Tensor{good})
	if err != nil {
		t.Fatal(err)
	}
	agg := NewStreamAggregator()
	if err := agg.Add(ClientUpdate{ClientID: 0, Round: 1, State: blob, NumSelected: 4}); err != nil {
		t.Fatal(err)
	}
	// Wrong shape: must not disturb the running sum.
	wrong := tensor.New(2, 2)
	wrongBlob, err := EncodeTensors([]*tensor.Tensor{wrong})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(ClientUpdate{ClientID: 1, Round: 1, State: wrongBlob, NumSelected: 4}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol for shape mismatch, got %v", err)
	}
	if err := agg.Add(ClientUpdate{ClientID: 2, Round: 1, State: blob, NumSelected: 0}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol for zero selected, got %v", err)
	}
	out, err := agg.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Equal(good) {
		t.Fatal("single-client aggregate must equal its state")
	}
}

func TestPipeDeadline(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	dc, ok := a.(DeadlineConn)
	if !ok {
		t.Fatal("pipe conn must implement DeadlineConn")
	}
	if err := dc.SetDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
	// Clearing the deadline unbounds the next Recv.
	if err := dc.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	env, err := EncodeBody(MsgHello, Hello{ClientID: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = b.Send(env) }()
	if _, err := a.Recv(); err != nil {
		t.Fatalf("recv after clearing deadline: %v", err)
	}
}

// TestTCPTimeoutClassification pins the soft/hard drop boundary on the TCP
// transport: a deadline expiring between frames is a recoverable timeout
// (the straggler-rejoin path), while one expiring mid-frame desynchronizes
// the stream and must read as a protocol error so the engine drops the
// client instead of reusing a corrupt connection.
func TestTCPTimeoutClassification(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	srv := (<-accepted).(DeadlineConn)
	defer srv.Close()

	// Between frames: nothing sent, deadline expires → a clean timeout and
	// the connection stays usable.
	if err := srv.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); !isTimeout(err) {
		t.Fatalf("between-frames expiry must classify as timeout, got %v", err)
	}
	if err := srv.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	env, err := EncodeBody(MsgHello, Hello{ClientID: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 5)
	binary.LittleEndian.PutUint32(frame, uint32(len(env.Body)))
	frame[4] = byte(env.Type)
	if _, err := raw.Write(append(frame, env.Body...)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); err != nil {
		t.Fatalf("recv after clean timeout: %v", err)
	}

	// Mid-frame: a header promising 100 body bytes, only 10 delivered,
	// deadline expires → protocol error, never a timeout, and the
	// connection refuses further use even after the rest arrives.
	partial := make([]byte, 5)
	binary.LittleEndian.PutUint32(partial, 100)
	partial[4] = byte(MsgClientUpdate)
	if _, err := raw.Write(append(partial, make([]byte, 10)...)); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err = srv.Recv()
	if err == nil || isTimeout(err) {
		t.Fatalf("mid-frame expiry must not classify as timeout, got %v", err)
	}
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol for desynchronized stream, got %v", err)
	}
	if _, err := raw.Write(make([]byte, 90)); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("desynchronized conn must fail fast, got %v", err)
	}
}

func TestShutdownClosesAllAndJoinsErrors(t *testing.T) {
	sA, cA := Pipe()
	sB, cB := Pipe()
	sess := &ServerSession{conns: map[int]Conn{0: sA, 1: sB}}
	_ = cA.Close() // client 0 is already gone; its shutdown send must fail

	if err := sess.Shutdown("bye"); err == nil {
		t.Fatal("expected an error for the dead client")
	}
	// Client 1 still received its shutdown frame despite client 0's error.
	env, err := cB.Recv()
	if err != nil {
		t.Fatalf("client 1 never got shutdown: %v", err)
	}
	if env.Type != MsgShutdown {
		t.Fatalf("client 1 got %v, want shutdown", env.Type)
	}
	if len(sess.ClientIDs()) != 0 {
		t.Fatal("shutdown must clear the session")
	}
}

func TestAcceptClientsClosesConnOnProtocolError(t *testing.T) {
	lst := NewPipeListener(2)
	go func() {
		env, _ := EncodeBody(MsgShutdown, Shutdown{Reason: "not a hello"})
		_ = lst.ClientSide(0).Send(env)
	}()
	if _, err := AcceptClients(lst, 2, 1); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected ErrProtocol, got %v", err)
	}
	// The mid-handshake connection was closed, which the client observes.
	if _, err := lst.ClientSide(0).Recv(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected closed connection, got %v", err)
	}
}
