package comm

import (
	"fmt"
	"math"

	"fedfteds/internal/tensor"
)

// MaskedStreamAggregator folds partially-trained client updates into
// per-layer weighted sums: each state tensor is averaged with weights only
// over the clients whose declared Groups subset covered it. Like
// StreamAggregator it retains O(state) memory and folds updates as they
// arrive; unlike it, every tensor carries its own weight total, and groups a
// client's layer mask excluded simply never contribute (they also shipped
// zero bytes — the update's State holds only the covered groups' tensors).
//
// The aggregator is built to be reused round after round with zero
// steady-state allocations: decode buffers, accumulators, the coverage
// mask and the result slice all persist across rounds. Consequently the
// tensors returned by Finish are owned by the aggregator and stay valid
// only until the next Add — callers copy them into the model (or encode
// them onto the wire) before starting the next round, which every current
// consumer already does.
type MaskedStreamAggregator struct {
	weigh  WeightFunc
	groups []string       // canonical communicated group list, bottom to top
	gIndex map[string]int // group name → canonical position
	layout []string       // group owning each tensor of the full layout
	acc    []*tensor.Tensor
	totals []float64
	sumW   float64
	count  int

	covered []bool           // per-group coverage of the update being folded
	scratch []*tensor.Tensor // decode buffer, reused across Adds
	out     []*tensor.Tensor // Finish result slice, reused across rounds
	fb      []*tensor.Tensor // fallback copies for uncovered tensors

	codec      Codec            // session uplink codec; nil is the legacy identity path
	ref        []*tensor.Tensor // broadcast state, parallel to the full layout
	refScratch []*tensor.Tensor // covered subset of ref, rebuilt per Add without allocating
}

// NewMaskedStreamAggregator builds an aggregator for one or more rounds over
// the given full communicated layout: groups is the canonical communicated
// group list (RoundStart.Groups) and layout names, per tensor of the full
// state blob, the group it belongs to (models.GroupStateLayout). weigh may
// be nil for the default selected-size weighting.
func NewMaskedStreamAggregator(weigh WeightFunc, groups, layout []string) (*MaskedStreamAggregator, error) {
	if len(groups) == 0 || len(layout) == 0 {
		return nil, fmt.Errorf("%w: masked aggregator needs groups and a layout", ErrProtocol)
	}
	gIndex := make(map[string]int, len(groups))
	for i, g := range groups {
		if _, dup := gIndex[g]; dup {
			return nil, fmt.Errorf("%w: duplicate group %q", ErrProtocol, g)
		}
		gIndex[g] = i
	}
	seen := make(map[string]bool, len(groups))
	for _, g := range layout {
		if _, ok := gIndex[g]; !ok {
			return nil, fmt.Errorf("%w: layout group %q not in group list", ErrProtocol, g)
		}
		seen[g] = true
	}
	for _, g := range groups {
		if !seen[g] {
			return nil, fmt.Errorf("%w: group %q has no tensors in the layout", ErrProtocol, g)
		}
	}
	return &MaskedStreamAggregator{
		weigh:   weigh,
		groups:  append([]string(nil), groups...),
		gIndex:  gIndex,
		layout:  append([]string(nil), layout...),
		acc:     make([]*tensor.Tensor, len(layout)),
		totals:  make([]float64, len(layout)),
		covered: make([]bool, len(groups)),
	}, nil
}

// SetCodec routes the aggregator through the session's negotiated uplink
// codec. ref is the broadcast state, tensor-parallel to the full layout;
// delta codecs decode each masked update against the covered subset of it
// (the exact reference the client encoded against). A nil codec is the
// legacy identity path — DecodeTensorsReuse, byte-for-byte unchanged. The
// codec decode reuses the same persistent scratch, so the zero-allocation
// steady state survives. Call before the first Add; the ref tensors may be
// live views into the server's model, which is safe because every consumer
// applies the aggregate only after Finish.
func (a *MaskedStreamAggregator) SetCodec(c Codec, ref []*tensor.Tensor) error {
	if c != nil && ref != nil && len(ref) != len(a.layout) {
		return fmt.Errorf("%w: codec reference has %d tensors, layout %d", ErrProtocol, len(ref), len(a.layout))
	}
	if c != nil && c.NeedsReference() && ref == nil {
		return fmt.Errorf("%w: codec %s needs the broadcast reference", ErrProtocol, c.Name())
	}
	a.codec, a.ref = c, ref
	return nil
}

// setCovered validates an update's Groups declaration — non-empty, known
// names only, no duplicates, canonical (ascending) order — and records it in
// the reusable a.covered mask, indexed by canonical group position. Order is
// enforced so a subset's tensor layout is exactly the full layout filtered
// by membership.
func (a *MaskedStreamAggregator) setCovered(clientID int, declared []string) error {
	if len(declared) == 0 {
		return fmt.Errorf("%w: client %d declared an empty group subset", ErrProtocol, clientID)
	}
	for i := range a.covered {
		a.covered[i] = false
	}
	prev := -1
	for _, g := range declared {
		gi, ok := a.gIndex[g]
		if !ok {
			return fmt.Errorf("%w: client %d declared unknown group %q", ErrProtocol, clientID, g)
		}
		if a.covered[gi] {
			return fmt.Errorf("%w: client %d declared group %q twice", ErrProtocol, clientID, g)
		}
		if gi <= prev {
			return fmt.Errorf("%w: client %d declared groups out of canonical order", ErrProtocol, clientID)
		}
		prev = gi
		a.covered[gi] = true
	}
	return nil
}

// Add decodes one masked update and folds its covered tensors into the
// per-layer sums. The fold is atomic: every validation (weight, group
// declaration, tensor count, shapes) happens before any sum is touched, so
// on error the aggregate is unchanged and the caller can drop the client
// yet keep the round. Decoding reuses the aggregator's scratch tensors, so
// a warmed-up aggregator folds without allocating.
func (a *MaskedStreamAggregator) Add(u ClientUpdate) error {
	if u.NumSelected <= 0 {
		return fmt.Errorf("%w: client %d reports %d selected samples", ErrProtocol, u.ClientID, u.NumSelected)
	}
	w64 := float64(u.NumSelected)
	if a.weigh != nil {
		var err error
		if w64, err = a.weigh(u); err != nil {
			return fmt.Errorf("comm: weighing update from client %d: %w", u.ClientID, err)
		}
		if w64 <= 0 || math.IsNaN(w64) || math.IsInf(w64, 0) {
			return fmt.Errorf("%w: client %d weighed %v", ErrProtocol, u.ClientID, w64)
		}
	}
	if err := a.setCovered(u.ClientID, u.Groups); err != nil {
		return err
	}
	if err := checkCodecEcho(a.codec, u.Codec, u.ClientID); err != nil {
		return err
	}
	var ts []*tensor.Tensor
	var err error
	if a.codec != nil {
		ts, err = a.codec.Decode(a.coveredRef(), a.scratch, u.State)
	} else {
		ts, err = DecodeTensorsReuse(a.scratch, u.State)
	}
	if err != nil {
		return fmt.Errorf("comm: aggregate client %d: %w", u.ClientID, err)
	}
	a.scratch = ts[:cap(ts)]
	wantN := 0
	for _, g := range a.layout {
		if a.covered[a.gIndex[g]] {
			wantN++
		}
	}
	if len(ts) != wantN {
		return fmt.Errorf("%w: client %d sent %d tensors for groups %v, want %d",
			ErrProtocol, u.ClientID, len(ts), u.Groups, wantN)
	}
	// Validate every shape before folding anything.
	ci := 0
	for ti, g := range a.layout {
		if !a.covered[a.gIndex[g]] {
			continue
		}
		if a.acc[ti] != nil && !a.acc[ti].SameShape(ts[ci]) {
			return fmt.Errorf("%w: client %d tensor %d shape mismatch", ErrProtocol, u.ClientID, ti)
		}
		ci++
	}
	w := float32(w64)
	ci = 0
	for ti, g := range a.layout {
		if !a.covered[a.gIndex[g]] {
			continue
		}
		switch {
		case a.acc[ti] == nil:
			// First contribution ever: allocate the accumulator once for
			// the aggregator's lifetime.
			a.acc[ti] = ts[ci].Clone()
			a.acc[ti].Scale(w)
		case a.totals[ti] == 0:
			// First contribution this round: overwrite the retained
			// accumulator. Same bits as Clone-then-Scale.
			if err := a.acc[ti].ScaleFrom(w, ts[ci]); err != nil {
				return err
			}
		default:
			if err := a.acc[ti].Axpy(w, ts[ci]); err != nil {
				return err
			}
		}
		a.totals[ti] += w64
		ci++
	}
	a.sumW += w64
	a.count++
	return nil
}

// coveredRef filters the codec reference down to the tensors the current
// a.covered mask ships — exactly the subset the client encoded against.
// The slice is reused across Adds; nil when no reference was set (the
// reference-free codecs ignore it).
func (a *MaskedStreamAggregator) coveredRef() []*tensor.Tensor {
	if a.ref == nil {
		return nil
	}
	if cap(a.refScratch) < len(a.layout) {
		a.refScratch = make([]*tensor.Tensor, 0, len(a.layout))
	}
	rs := a.refScratch[:0]
	for ti, g := range a.layout {
		if a.covered[a.gIndex[g]] {
			rs = append(rs, a.ref[ti])
		}
	}
	a.refScratch = rs
	return rs
}

// Updates returns how many updates have been folded so far.
func (a *MaskedStreamAggregator) Updates() int { return a.count }

// Total returns the summed per-client aggregation weight folded so far
// (each client counted once, regardless of how many layers it covered). A
// relay reads it before Finish to stamp the outgoing RegionUpdate.
func (a *MaskedStreamAggregator) Total() float64 { return a.sumW }

// Finish normalizes each tensor by its own weight total and resets the
// aggregator for the next round. Tensors no reporting client covered fall
// back to a copy of the current global state (fallback, parallel to the
// full layout) — averaging nothing leaves the layer where it was. It fails
// when no update at all was folded. The returned tensors are owned by the
// aggregator and valid only until the next Add.
func (a *MaskedStreamAggregator) Finish(fallback []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if a.count == 0 {
		return nil, fmt.Errorf("comm: masked aggregate: no client updates")
	}
	if len(fallback) != len(a.layout) {
		return nil, fmt.Errorf("%w: fallback has %d tensors, layout %d", ErrProtocol, len(fallback), len(a.layout))
	}
	if cap(a.out) < len(a.layout) {
		a.out = make([]*tensor.Tensor, len(a.layout))
	}
	out := a.out[:len(a.layout)]
	for ti := range a.layout {
		if a.totals[ti] > 0 {
			a.acc[ti].Scale(float32(1 / a.totals[ti]))
			out[ti] = a.acc[ti]
			a.totals[ti] = 0
			continue
		}
		if a.fb == nil {
			a.fb = make([]*tensor.Tensor, len(a.layout))
		}
		a.fb[ti] = tensor.Ensure(a.fb[ti], fallback[ti].Shape()...)
		if err := a.fb[ti].CopyFrom(fallback[ti]); err != nil {
			return nil, err
		}
		out[ti] = a.fb[ti]
	}
	a.sumW = 0
	a.count = 0
	return out, nil
}
