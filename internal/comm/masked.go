package comm

import (
	"fmt"
	"math"

	"fedfteds/internal/tensor"
)

// MaskedStreamAggregator folds partially-trained client updates into
// per-layer weighted sums: each state tensor is averaged with weights only
// over the clients whose declared Groups subset covered it. Like
// StreamAggregator it retains O(state) memory and folds updates as they
// arrive; unlike it, every tensor carries its own weight total, and groups a
// client's layer mask excluded simply never contribute (they also shipped
// zero bytes — the update's State holds only the covered groups' tensors).
type MaskedStreamAggregator struct {
	weigh  WeightFunc
	groups []string       // canonical communicated group list, bottom to top
	gIndex map[string]int // group name → canonical position
	layout []string       // group owning each tensor of the full layout
	acc    []*tensor.Tensor
	totals []float64
	sumW   float64
	count  int
}

// NewMaskedStreamAggregator builds an aggregator for one round over the
// given full communicated layout: groups is the canonical communicated group
// list (RoundStart.Groups) and layout names, per tensor of the full state
// blob, the group it belongs to (models.GroupStateLayout). weigh may be nil
// for the default selected-size weighting.
func NewMaskedStreamAggregator(weigh WeightFunc, groups, layout []string) (*MaskedStreamAggregator, error) {
	if len(groups) == 0 || len(layout) == 0 {
		return nil, fmt.Errorf("%w: masked aggregator needs groups and a layout", ErrProtocol)
	}
	gIndex := make(map[string]int, len(groups))
	for i, g := range groups {
		if _, dup := gIndex[g]; dup {
			return nil, fmt.Errorf("%w: duplicate group %q", ErrProtocol, g)
		}
		gIndex[g] = i
	}
	seen := make(map[string]bool, len(groups))
	for _, g := range layout {
		if _, ok := gIndex[g]; !ok {
			return nil, fmt.Errorf("%w: layout group %q not in group list", ErrProtocol, g)
		}
		seen[g] = true
	}
	for _, g := range groups {
		if !seen[g] {
			return nil, fmt.Errorf("%w: group %q has no tensors in the layout", ErrProtocol, g)
		}
	}
	return &MaskedStreamAggregator{
		weigh:  weigh,
		groups: append([]string(nil), groups...),
		gIndex: gIndex,
		layout: append([]string(nil), layout...),
		acc:    make([]*tensor.Tensor, len(layout)),
		totals: make([]float64, len(layout)),
	}, nil
}

// coveredSet validates an update's Groups declaration — non-empty, known
// names only, no duplicates, canonical (ascending) order — and returns it
// as a set. Order is enforced so a subset's tensor layout is exactly the
// full layout filtered by membership.
func (a *MaskedStreamAggregator) coveredSet(clientID int, declared []string) (map[string]bool, error) {
	if len(declared) == 0 {
		return nil, fmt.Errorf("%w: client %d declared an empty group subset", ErrProtocol, clientID)
	}
	covered := make(map[string]bool, len(declared))
	prev := -1
	for _, g := range declared {
		gi, ok := a.gIndex[g]
		if !ok {
			return nil, fmt.Errorf("%w: client %d declared unknown group %q", ErrProtocol, clientID, g)
		}
		if covered[g] {
			return nil, fmt.Errorf("%w: client %d declared group %q twice", ErrProtocol, clientID, g)
		}
		if gi <= prev {
			return nil, fmt.Errorf("%w: client %d declared groups out of canonical order", ErrProtocol, clientID)
		}
		prev = gi
		covered[g] = true
	}
	return covered, nil
}

// Add decodes one masked update and folds its covered tensors into the
// per-layer sums. The fold is atomic: every validation (weight, group
// declaration, tensor count, shapes) happens before any sum is touched, so
// on error the aggregate is unchanged and the caller can drop the client
// yet keep the round.
func (a *MaskedStreamAggregator) Add(u ClientUpdate) error {
	if u.NumSelected <= 0 {
		return fmt.Errorf("%w: client %d reports %d selected samples", ErrProtocol, u.ClientID, u.NumSelected)
	}
	w64 := float64(u.NumSelected)
	if a.weigh != nil {
		var err error
		if w64, err = a.weigh(u); err != nil {
			return fmt.Errorf("comm: weighing update from client %d: %w", u.ClientID, err)
		}
		if w64 <= 0 || math.IsNaN(w64) || math.IsInf(w64, 0) {
			return fmt.Errorf("%w: client %d weighed %v", ErrProtocol, u.ClientID, w64)
		}
	}
	covered, err := a.coveredSet(u.ClientID, u.Groups)
	if err != nil {
		return err
	}
	ts, err := DecodeTensors(u.State)
	if err != nil {
		return fmt.Errorf("comm: aggregate client %d: %w", u.ClientID, err)
	}
	wantN := 0
	for _, g := range a.layout {
		if covered[g] {
			wantN++
		}
	}
	if len(ts) != wantN {
		return fmt.Errorf("%w: client %d sent %d tensors for groups %v, want %d",
			ErrProtocol, u.ClientID, len(ts), u.Groups, wantN)
	}
	// Validate every shape before folding anything.
	ci := 0
	for ti, g := range a.layout {
		if !covered[g] {
			continue
		}
		if a.acc[ti] != nil && !a.acc[ti].SameShape(ts[ci]) {
			return fmt.Errorf("%w: client %d tensor %d shape mismatch", ErrProtocol, u.ClientID, ti)
		}
		ci++
	}
	w := float32(w64)
	ci = 0
	for ti, g := range a.layout {
		if !covered[g] {
			continue
		}
		if a.acc[ti] == nil {
			ts[ci].Scale(w)
			a.acc[ti] = ts[ci]
		} else if err := a.acc[ti].Axpy(w, ts[ci]); err != nil {
			return err
		}
		a.totals[ti] += w64
		ci++
	}
	a.sumW += w64
	a.count++
	return nil
}

// Updates returns how many updates have been folded so far.
func (a *MaskedStreamAggregator) Updates() int { return a.count }

// Total returns the summed per-client aggregation weight folded so far
// (each client counted once, regardless of how many layers it covered). A
// relay reads it before Finish to stamp the outgoing RegionUpdate.
func (a *MaskedStreamAggregator) Total() float64 { return a.sumW }

// Finish normalizes each tensor by its own weight total and resets the
// aggregator. Tensors no reporting client covered fall back to the current
// global state (fallback, parallel to the full layout, cloned) — averaging
// nothing leaves the layer where it was. It fails when no update at all was
// folded.
func (a *MaskedStreamAggregator) Finish(fallback []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if a.count == 0 {
		return nil, fmt.Errorf("comm: masked aggregate: no client updates")
	}
	if len(fallback) != len(a.layout) {
		return nil, fmt.Errorf("%w: fallback has %d tensors, layout %d", ErrProtocol, len(fallback), len(a.layout))
	}
	out := make([]*tensor.Tensor, len(a.layout))
	for ti := range a.layout {
		if a.totals[ti] > 0 {
			a.acc[ti].Scale(float32(1 / a.totals[ti]))
			out[ti] = a.acc[ti]
		} else {
			out[ti] = fallback[ti].Clone()
		}
	}
	a.acc = make([]*tensor.Tensor, len(a.layout))
	a.totals = make([]float64, len(a.layout))
	a.sumW = 0
	a.count = 0
	return out, nil
}
