package seeds_test

import (
	"math/rand"
	"testing"

	"fedfteds/internal/comm"
	"fedfteds/internal/seeds"
	"fedfteds/internal/tensor"
)

// refSplitmix is an independent spelling of Splitmix64. The derivation
// helpers are re-verified against it (not against the tensor package) so a
// drive-by "simplification" of either copy fails loudly instead of silently
// rewriting every recorded stream.
func refSplitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func refDerive(parts ...uint64) int64 {
	acc := uint64(0x243f6a8885a308d3)
	for _, p := range parts {
		acc = refSplitmix(acc ^ p)
	}
	return int64(acc)
}

func TestDerivePinned(t *testing.T) {
	cases := [][]uint64{{}, {0}, {7}, {1, 2, 3}, {0xFACADE, 42, 1 << 40}}
	for _, parts := range cases {
		if got, want := seeds.Derive(parts...), refDerive(parts...); got != want {
			t.Errorf("Derive(%v) = %d, want %d", parts, got, want)
		}
	}
}

func TestChainPinned(t *testing.T) {
	ref := func(base uint64, parts ...uint64) uint64 {
		x := base
		for _, p := range parts {
			x = refSplitmix(x ^ p)
		}
		return x
	}
	if got, want := seeds.Chain(5), ref(5); got != want {
		t.Errorf("Chain(5) = %d, want %d", got, want)
	}
	if got, want := seeds.Chain(9, 1, 2), ref(9, 1, 2); got != want {
		t.Errorf("Chain(9,1,2) = %d, want %d", got, want)
	}
}

// TestCodecSeedMatchesChain pins the cross-package contract: the comm
// package's stochastic-rounding seed is exactly the seeds chain with
// TagCodec, so simulator, fedclient and relay all reproduce the same
// quantization noise from (base, round, sender).
func TestCodecSeedMatchesChain(t *testing.T) {
	for _, c := range []struct {
		base      uint64
		round, id int
	}{
		{0, 0, 0}, {7, 3, 11}, {1 << 60, 999, 123456},
	} {
		got := comm.CodecSeed(c.base, c.round, c.id)
		want := seeds.Chain(c.base, seeds.TagCodec, uint64(c.round), uint64(c.id))
		if got != want {
			t.Errorf("CodecSeed(%d,%d,%d) = %d, want Chain = %d", c.base, c.round, c.id, got, want)
		}
		// And against the raw reference formula, the historic spelling.
		x := refSplitmix(c.base ^ 0xC0DEC51D)
		x = refSplitmix(x ^ uint64(c.round))
		x = refSplitmix(x ^ uint64(c.id))
		if got != x {
			t.Errorf("CodecSeed(%d,%d,%d) = %d, want reference %d", c.base, c.round, c.id, got, x)
		}
	}
}

// TestStreamsMatchLegacyDerivations pins every stream constructor to the
// hand-rolled construction it replaced.
func TestStreamsMatchLegacyDerivations(t *testing.T) {
	drawSome := func(r *rand.Rand) [4]float64 {
		return [4]float64{r.Float64(), float64(r.Int63()), r.NormFloat64(), float64(r.Intn(1 << 20))}
	}

	// Stream == tensor.NewRand == rand.New(rand.NewSource(Derive(...))).
	if got, want := drawSome(seeds.Stream(3, 1, 4)), drawSome(tensor.NewRand(3, 1, 4)); got != want {
		t.Errorf("Stream(3,1,4) draws %v, want %v", got, want)
	}
	if got, want := drawSome(seeds.Stream(3, 1, 4)), drawSome(rand.New(rand.NewSource(refDerive(3, 1, 4)))); got != want {
		t.Errorf("Stream(3,1,4) draws %v, want reference %v", got, want)
	}

	// Source == the legacy direct construction.
	if got, want := drawSome(seeds.Source(-17)), drawSome(rand.New(rand.NewSource(-17))); got != want {
		t.Errorf("Source(-17) draws %v, want %v", got, want)
	}

	// ClientRound == the (seed, round, client) training stream.
	negSeed := int64(-9)
	if got, want := drawSome(seeds.ClientRound(negSeed, 4, 21)), drawSome(tensor.NewRand(uint64(negSeed), 4, 21)); got != want {
		t.Errorf("ClientRound(-9,4,21) draws %v, want %v", got, want)
	}

	// FleetClient == the tagged (seed, TagFleetClient, id) stream. The tag
	// sits in the round slot of the tuple, far above any realistic round
	// count, which is what keeps fleet streams disjoint from training
	// streams.
	if got, want := drawSome(seeds.FleetClient(5, 2)), drawSome(tensor.NewRand(5, seeds.TagFleetClient, 2)); got != want {
		t.Errorf("FleetClient(5,2) draws %v, want %v", got, want)
	}
}

// TestFleetClientStable freezes the fleet registration stream's first draws:
// fleet descriptors and datasets are derived from this stream, so any change
// here silently regenerates every virtual client.
func TestFleetClientStable(t *testing.T) {
	r := seeds.FleetClient(42, 7)
	want := rand.New(rand.NewSource(refDerive(42, 0xF1EE7C71, 7)))
	for i := 0; i < 16; i++ {
		if g, w := r.Uint64(), want.Uint64(); g != w {
			t.Fatalf("FleetClient(42,7) draw %d = %d, want %d", i, g, w)
		}
	}
}
