// Package seeds centralizes the simulator's deterministic RNG-stream
// derivations. Every subsystem that needs an independent random stream —
// client-local training, cohort scheduling, codec stochastic rounding,
// synthetic-domain rendering, fleet client registration — derives it from a
// (seed, tags...) tuple through the Splitmix64 mixing chain defined here, so
// two processes given the same tuple observe the same sequence and no two
// subsystems ever share a stream by accident.
//
// The helpers are thin: they delegate to the tensor package's Splitmix64 /
// DeriveSeed / NewRand primitives (which predate this package) and are pinned
// bit-identical to the hand-rolled derivations they replaced. Changing any
// formula here invalidates every recorded run, golden checkpoint, and wire
// trace — the package test pins the exact outputs.
package seeds

import (
	"math/rand"

	"fedfteds/internal/tensor"
)

// Stream tags partition the derivation space between subsystems. A tag is
// folded into the Splitmix64 chain ahead of the variable parts (round,
// client, ...) so streams with equal variable parts but different owners
// never collide. Values are frozen: they are part of the reproducibility
// contract.
const (
	// TagCodec scopes the uplink codecs' stochastic-rounding streams
	// (historically spelled inline in comm.CodecSeed).
	TagCodec uint64 = 0xC0DEC51D
	// TagFleetClient scopes a virtual-fleet client's registration +
	// materialization stream: one stream per (fleet seed, client ID) that
	// first yields the client's descriptor draws and then, on lazy
	// materialization, continues into its dataset draws.
	TagFleetClient uint64 = 0xF1EE7C71
)

// Derive mixes parts into one deterministic int64 seed (the tensor-package
// chain: acc = Splitmix64(acc ^ part) from a fixed pi-derived start).
func Derive(parts ...uint64) int64 { return tensor.DeriveSeed(parts...) }

// Stream returns a deterministic *rand.Rand for the given derivation parts.
// This is the standard stream constructor: callers pass (seed, tag,
// variables...) and get an independent sequence.
func Stream(parts ...uint64) *rand.Rand { return tensor.NewRand(parts...) }

// Source returns a *rand.Rand seeded directly with seed, without mixing —
// the legacy construction (rand.New(rand.NewSource(seed))) used by the
// synthetic-data universes and the experiment harness's federation builder.
// New code should prefer Stream; Source exists so those call sites share one
// spelling while staying bit-identical to their recorded histories.
func Source(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Chain folds parts into base with the raw Splitmix64 chain
// x = Splitmix64(x ^ part) and returns the final 64-bit value. Unlike
// Derive it starts from the caller's base, matching derivations (the codec
// seed) that predate the fixed-start chain.
func Chain(base uint64, parts ...uint64) uint64 {
	x := base
	for _, p := range parts {
		x = tensor.Splitmix64(x ^ p)
	}
	return x
}

// ClientRound returns the client-local training stream for one client in one
// round: selection draws, batch shuffling and any dropout all come from it.
// Both the legacy clone-per-client path and the pooled replica path use this
// derivation, which is why they are bit-identical.
func ClientRound(runSeed int64, round, clientID int) *rand.Rand {
	return tensor.NewRand(uint64(runSeed), uint64(round), uint64(clientID))
}

// FleetClient returns a virtual-fleet client's registration stream. The
// fleet draws the client's descriptor (label distribution, dataset size,
// device speed) from the stream's prefix at registration and re-derives the
// same stream on materialization, so the descriptor and the lazily generated
// dataset always agree.
func FleetClient(fleetSeed int64, clientID int) *rand.Rand {
	return tensor.NewRand(uint64(fleetSeed), TagFleetClient, uint64(clientID))
}
