package partition

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// balancedLabels returns n labels cycling through numClasses.
func balancedLabels(n, numClasses int) []int {
	y := make([]int, n)
	for i := range y {
		y[i] = i % numClasses
	}
	return y
}

// assertExactCover fails unless parts form a partition of [0, n).
func assertExactCover(t *testing.T, parts [][]int, n int) {
	t.Helper()
	seen := make([]bool, n)
	total := 0
	for _, part := range parts {
		for _, idx := range part {
			if idx < 0 || idx >= n {
				t.Fatalf("index %d out of range", idx)
			}
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("assigned %d of %d samples", total, n)
	}
}

func TestIIDCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	parts, err := IID(103, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Fatalf("%d parts", len(parts))
	}
	assertExactCover(t, parts, 103)
	for _, p := range parts {
		if len(p) < 10 || len(p) > 11 {
			t.Fatalf("IID part size %d", len(p))
		}
	}
}

func TestIIDValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := IID(5, 10, rng); !errors.Is(err, ErrPartition) {
		t.Fatalf("expected ErrPartition, got %v", err)
	}
	if _, err := IID(0, 1, rng); !errors.Is(err, ErrPartition) {
		t.Fatalf("expected ErrPartition, got %v", err)
	}
}

func TestDirichletCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := balancedLabels(500, 10)
	parts, err := Dirichlet(labels, 10, 0.5, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	assertExactCover(t, parts, 500)
	for i, p := range parts {
		if len(p) < 5 {
			t.Fatalf("client %d has %d samples, below minSize", i, len(p))
		}
	}
}

func TestDirichletHeterogeneityOrdering(t *testing.T) {
	// Smaller alpha must yield stronger label skew (higher MeanMaxClassShare).
	labels := balancedLabels(2000, 10)
	share := func(alpha float64) float64 {
		rng := rand.New(rand.NewSource(3))
		parts, err := Dirichlet(labels, 10, alpha, 10, rng)
		if err != nil {
			t.Fatalf("alpha %v: %v", alpha, err)
		}
		return ComputeStats(labels, parts, 10).MeanMaxClassShare
	}
	s01, s05, s5 := share(0.1), share(0.5), share(5.0)
	if !(s01 > s05 && s05 > s5) {
		t.Fatalf("heterogeneity not monotone in alpha: %v %v %v", s01, s05, s5)
	}
	// IID-ish at large alpha: max share near 1/10 (loose bound 0.3).
	if s5 > 0.3 {
		t.Fatalf("alpha=5 max share %v, want near 0.1", s5)
	}
	// Strong skew at alpha=0.1.
	if s01 < 0.4 {
		t.Fatalf("alpha=0.1 max share %v, want > 0.4", s01)
	}
}

func TestDirichletValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	labels := balancedLabels(100, 5)
	tests := []struct {
		name    string
		labels  []int
		clients int
		alpha   float64
		minSize int
	}{
		{name: "zero alpha", labels: labels, clients: 5, alpha: 0, minSize: 0},
		{name: "no labels", labels: nil, clients: 5, alpha: 1, minSize: 0},
		{name: "too many clients", labels: labels, clients: 200, alpha: 1, minSize: 0},
		{name: "infeasible minsize", labels: labels, clients: 5, alpha: 1, minSize: 50},
		{name: "negative label", labels: []int{0, -1, 2}, clients: 2, alpha: 1, minSize: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Dirichlet(tt.labels, tt.clients, tt.alpha, tt.minSize, rng); !errors.Is(err, ErrPartition) {
				t.Fatalf("expected ErrPartition, got %v", err)
			}
		})
	}
}

func TestDirichletDeterministic(t *testing.T) {
	labels := balancedLabels(300, 10)
	p1, err := Dirichlet(labels, 5, 0.5, 5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Dirichlet(labels, 5, 0.5, 5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for c := range p1 {
		if len(p1[c]) != len(p2[c]) {
			t.Fatalf("client %d sizes differ", c)
		}
		for i := range p1[c] {
			if p1[c][i] != p2[c][i] {
				t.Fatalf("client %d index %d differs", c, i)
			}
		}
	}
}

func TestShardsCoverAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	labels := balancedLabels(200, 10)
	parts, err := Shards(labels, 10, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	assertExactCover(t, parts, 200)
	// Shard partition is pathologically non-IID: each client should hold few
	// classes.
	st := ComputeStats(labels, parts, 10)
	if st.MeanMaxClassShare < 0.4 {
		t.Fatalf("shard partition too uniform: %v", st.MeanMaxClassShare)
	}
}

func TestShardsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := Shards(balancedLabels(10, 2), 5, 4, rng); !errors.Is(err, ErrPartition) {
		t.Fatalf("expected ErrPartition, got %v", err)
	}
}

func TestComputeStatsSingleClassClients(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	parts := [][]int{{0, 1}, {2, 3}}
	st := ComputeStats(labels, parts, 2)
	if st.MeanMaxClassShare != 1.0 {
		t.Fatalf("single-class clients share %v, want 1", st.MeanMaxClassShare)
	}
	if st.Sizes[0] != 2 || st.Sizes[1] != 2 {
		t.Fatalf("sizes %v", st.Sizes)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	// Gamma(k, 1) has mean k and variance k.
	rng := rand.New(rand.NewSource(6))
	for _, shape := range []float64{0.1, 0.5, 1.0, 3.0} {
		n := 20000
		var sum, sq float64
		for i := 0; i < n; i++ {
			g := gammaSample(shape, rng)
			if g < 0 {
				t.Fatalf("negative gamma sample %v at shape %v", g, shape)
			}
			sum += g
			sq += g * g
		}
		mean := sum / float64(n)
		variance := sq/float64(n) - mean*mean
		if mean < shape*0.9 || mean > shape*1.1 {
			t.Fatalf("shape %v: mean %v", shape, mean)
		}
		if variance < shape*0.8 || variance > shape*1.25 {
			t.Fatalf("shape %v: variance %v", shape, variance)
		}
	}
}

func TestQuickDirichletAlwaysPartitions(t *testing.T) {
	f := func(seed int64, alphaRaw uint8) bool {
		alpha := 0.05 + float64(alphaRaw%40)/10 // [0.05, 4.0]
		labels := balancedLabels(200, 5)
		parts, err := Dirichlet(labels, 4, alpha, 1, rand.New(rand.NewSource(seed)))
		if err != nil {
			// Acceptable only when resampling exhausted; treat as failure to
			// surface flakiness.
			return false
		}
		seen := make([]bool, 200)
		total := 0
		for _, p := range parts {
			for _, idx := range p {
				if seen[idx] {
					return false
				}
				seen[idx] = true
				total++
			}
		}
		return total == 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
