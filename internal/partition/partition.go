// Package partition splits a dataset's sample indices across federated
// clients. It implements the Dirichlet non-IID partitioner used throughout
// the paper (Diri(α), after Hsu et al.), plus IID and shard partitioners and
// heterogeneity statistics.
package partition

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrPartition reports an invalid partitioning request.
var ErrPartition = errors.New("partition: invalid request")

// maxDirichletRetries bounds the resampling loop that enforces the minimum
// per-client size.
const maxDirichletRetries = 200

// IID splits n sample indices uniformly at random across numClients.
func IID(n, numClients int, rng *rand.Rand) ([][]int, error) {
	if n <= 0 || numClients <= 0 || numClients > n {
		return nil, fmt.Errorf("%w: IID n=%d clients=%d", ErrPartition, n, numClients)
	}
	perm := rng.Perm(n)
	out := make([][]int, numClients)
	for i, idx := range perm {
		c := i % numClients
		out[c] = append(out[c], idx)
	}
	return out, nil
}

// Dirichlet partitions samples across clients with label-distribution skew:
// for each class, client shares are drawn from Dir(alpha). Smaller alpha
// yields stronger heterogeneity. Every client is guaranteed at least minSize
// samples (resampling as needed); minSize <= n/numClients must hold.
func Dirichlet(labels []int, numClients int, alpha float64, minSize int, rng *rand.Rand) ([][]int, error) {
	n := len(labels)
	if n == 0 || numClients <= 0 || numClients > n {
		return nil, fmt.Errorf("%w: dirichlet n=%d clients=%d", ErrPartition, n, numClients)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("%w: alpha %v must be positive", ErrPartition, alpha)
	}
	if minSize < 0 || minSize*numClients > n {
		return nil, fmt.Errorf("%w: minSize %d infeasible for n=%d clients=%d", ErrPartition, minSize, n, numClients)
	}
	numClasses := 0
	for _, c := range labels {
		if c < 0 {
			return nil, fmt.Errorf("%w: negative label", ErrPartition)
		}
		if c+1 > numClasses {
			numClasses = c + 1
		}
	}
	byClass := make([][]int, numClasses)
	for i, c := range labels {
		byClass[c] = append(byClass[c], i)
	}

	for attempt := 0; attempt < maxDirichletRetries; attempt++ {
		out := make([][]int, numClients)
		for _, idxs := range byClass {
			if len(idxs) == 0 {
				continue
			}
			shuffled := append([]int(nil), idxs...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			props := dirichletDraw(numClients, alpha, rng)
			// Convert proportions to cumulative cut points.
			cuts := make([]int, numClients)
			var cum float64
			for c := 0; c < numClients; c++ {
				cum += props[c]
				cuts[c] = int(math.Round(cum * float64(len(shuffled))))
			}
			cuts[numClients-1] = len(shuffled)
			lo := 0
			for c := 0; c < numClients; c++ {
				hi := cuts[c]
				if hi < lo {
					hi = lo
				}
				out[c] = append(out[c], shuffled[lo:hi]...)
				lo = hi
			}
		}
		ok := true
		for _, part := range out {
			if len(part) < minSize {
				ok = false
				break
			}
		}
		if ok {
			for _, part := range out {
				sort.Ints(part)
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: could not satisfy minSize=%d after %d attempts (alpha=%v too skewed for %d clients)",
		ErrPartition, minSize, maxDirichletRetries, alpha, numClients)
}

// dirichletDraw samples a point from Dir(alpha, ..., alpha) over k outcomes
// using normalized Gamma(alpha, 1) draws.
func dirichletDraw(k int, alpha float64, rng *rand.Rand) []float64 {
	out := make([]float64, k)
	var sum float64
	for i := range out {
		g := gammaSample(alpha, rng)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Extremely small alpha can underflow every draw; fall back to a
		// one-hot split, which is the alpha→0 limit.
		out[rng.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) with the Marsaglia–Tsang method,
// boosting shape < 1 via the standard power transform.
func gammaSample(shape float64, rng *rand.Rand) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(shape+1, rng) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Shards assigns each client shardsPerClient contiguous label-sorted shards
// (the McMahan et al. pathological non-IID split).
func Shards(labels []int, numClients, shardsPerClient int, rng *rand.Rand) ([][]int, error) {
	n := len(labels)
	if n == 0 || numClients <= 0 || shardsPerClient <= 0 {
		return nil, fmt.Errorf("%w: shards n=%d clients=%d spc=%d", ErrPartition, n, numClients, shardsPerClient)
	}
	numShards := numClients * shardsPerClient
	if numShards > n {
		return nil, fmt.Errorf("%w: %d shards for %d samples", ErrPartition, numShards, n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if labels[idx[a]] != labels[idx[b]] {
			return labels[idx[a]] < labels[idx[b]]
		}
		return idx[a] < idx[b]
	})
	shardSize := n / numShards
	order := rng.Perm(numShards)
	out := make([][]int, numClients)
	for s, shard := range order {
		client := s / shardsPerClient
		lo := shard * shardSize
		hi := lo + shardSize
		if shard == numShards-1 {
			hi = n
		}
		out[client] = append(out[client], idx[lo:hi]...)
	}
	for _, part := range out {
		sort.Ints(part)
	}
	return out, nil
}

// Stats summarizes the heterogeneity of a partition.
type Stats struct {
	// Sizes is the per-client sample count.
	Sizes []int
	// MaxClassShare is, per client, the share of its most frequent class;
	// 1.0 means the client holds a single class.
	MaxClassShare []float64
	// MeanMaxClassShare averages MaxClassShare over clients, a scalar
	// heterogeneity measure (1/numClasses for IID, →1 under strong skew).
	MeanMaxClassShare float64
}

// ComputeStats summarizes parts against the full label slice.
func ComputeStats(labels []int, parts [][]int, numClasses int) Stats {
	st := Stats{
		Sizes:         make([]int, len(parts)),
		MaxClassShare: make([]float64, len(parts)),
	}
	var total float64
	for i, part := range parts {
		st.Sizes[i] = len(part)
		hist := make([]int, numClasses)
		for _, idx := range part {
			hist[labels[idx]]++
		}
		best := 0
		for _, c := range hist {
			if c > best {
				best = c
			}
		}
		if len(part) > 0 {
			st.MaxClassShare[i] = float64(best) / float64(len(part))
		}
		total += st.MaxClassShare[i]
	}
	if len(parts) > 0 {
		st.MeanMaxClassShare = total / float64(len(parts))
	}
	return st
}
