package fleet

import (
	"fmt"
	"hash/fnv"
	"os"
	"strings"

	"fedfteds/internal/sched"
)

// ErrTrace reports a malformed fleet availability trace.
var ErrTrace = fmt.Errorf("fleet: invalid trace")

// Parser hard limits. A trace is untrusted input (fedsim -trace), so the
// parser bounds everything it allocates and rejects anything outside the
// format instead of guessing.
const (
	maxTraceBytes   = 16 << 20
	maxTraceLines   = 1 << 20
	maxTraceEntries = 1 << 20
	maxTraceID      = 1<<31 - 2
	maxTraceSlot    = 1 << 20
)

// traceEntry is one parsed availability rule: clients [idLo, idHi] are
// up/down during slots [slotLo, slotHi].
type traceEntry struct {
	idLo, idHi     int
	slotLo, slotHi int
	up             bool
}

// Trace is a replayed fleet availability schedule, the file-driven
// generalization of the avail: Markov churn wrapper.
//
// The "fleettrace v1" text format, line by line ('#' starts a comment, blank
// lines are skipped):
//
//	fleettrace v1            header, required first
//	period 24                optional: slots wrap, slot = (round-1) mod period
//	default up               optional: status when no entry matches (default up)
//	0-99 down 0-7            entry: <id|lo-hi> <up|down> <slot|lo-hi>...
//	100 up 3-5 9             ...with one or more slot ranges
//
// Directives (period, default) must precede entries and appear at most once.
// Later entries override earlier ones where they overlap. Slots are 0-based;
// round r falls in slot (r-1), wrapped by period when one is set.
type Trace struct {
	// Period is the slot wrap length; 0 means slots index rounds directly.
	Period int
	// Default is the status when no entry matches (true = up).
	Default bool

	entries []traceEntry
}

// ParseTrace parses the fleettrace v1 text format.
func ParseTrace(text string) (*Trace, error) {
	if len(text) > maxTraceBytes {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrTrace, len(text), maxTraceBytes)
	}
	t := &Trace{Default: true}
	sawHeader, sawPeriod, sawDefault := false, false, false
	lines := strings.Split(text, "\n")
	if len(lines) > maxTraceLines {
		return nil, fmt.Errorf("%w: %d lines (limit %d)", ErrTrace, len(lines), maxTraceLines)
	}
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if !sawHeader {
			if len(fields) != 2 || fields[0] != "fleettrace" || fields[1] != "v1" {
				return nil, fmt.Errorf("%w: line %d: expected header \"fleettrace v1\", got %q",
					ErrTrace, ln+1, strings.TrimSpace(line))
			}
			sawHeader = true
			continue
		}
		switch fields[0] {
		case "period":
			if sawPeriod || len(t.entries) > 0 {
				return nil, fmt.Errorf("%w: line %d: period must appear once, before entries", ErrTrace, ln+1)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: period takes one value", ErrTrace, ln+1)
			}
			p, err := parseTraceInt(fields[1], maxTraceSlot)
			if err != nil || p < 1 {
				return nil, fmt.Errorf("%w: line %d: period %q", ErrTrace, ln+1, fields[1])
			}
			t.Period, sawPeriod = p, true
		case "default":
			if sawDefault || len(t.entries) > 0 {
				return nil, fmt.Errorf("%w: line %d: default must appear once, before entries", ErrTrace, ln+1)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: default takes up|down", ErrTrace, ln+1)
			}
			up, err := parseStatus(fields[1])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrTrace, ln+1, err)
			}
			t.Default, sawDefault = up, true
		default:
			if len(fields) < 3 {
				return nil, fmt.Errorf("%w: line %d: entry needs <ids> <up|down> <slots>...", ErrTrace, ln+1)
			}
			idLo, idHi, err := parseTraceRange(fields[0], maxTraceID)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: client range %q: %v", ErrTrace, ln+1, fields[0], err)
			}
			up, err := parseStatus(fields[1])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrTrace, ln+1, err)
			}
			for _, fs := range fields[2:] {
				slotMax := maxTraceSlot
				if t.Period > 0 {
					slotMax = t.Period - 1
				}
				slotLo, slotHi, err := parseTraceRange(fs, slotMax)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: slot range %q: %v", ErrTrace, ln+1, fs, err)
				}
				if len(t.entries) >= maxTraceEntries {
					return nil, fmt.Errorf("%w: more than %d entries", ErrTrace, maxTraceEntries)
				}
				t.entries = append(t.entries, traceEntry{
					idLo: idLo, idHi: idHi, slotLo: slotLo, slotHi: slotHi, up: up,
				})
			}
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("%w: missing \"fleettrace v1\" header", ErrTrace)
	}
	return t, nil
}

// LoadTrace reads and parses a trace file.
func LoadTrace(path string) (*Trace, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: trace %s: %w", path, err)
	}
	if info.Size() > maxTraceBytes {
		return nil, fmt.Errorf("%w: %s is %d bytes (limit %d)", ErrTrace, path, info.Size(), maxTraceBytes)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: trace %s: %w", path, err)
	}
	t, err := ParseTrace(string(blob))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// parseStatus maps up/down to a boolean.
func parseStatus(s string) (bool, error) {
	switch s {
	case "up":
		return true, nil
	case "down":
		return false, nil
	}
	return false, fmt.Errorf("status %q (want up or down)", s)
}

// parseTraceInt parses a plain non-negative decimal with no signs, spaces or
// leading zeros games — the strictness is what makes the fuzz target useful.
func parseTraceInt(s string, max int) (int, error) {
	if s == "" || len(s) > 10 {
		return 0, fmt.Errorf("number %q", s)
	}
	v := 0
	for _, c := range []byte(s) {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("number %q", s)
		}
		v = v*10 + int(c-'0')
		if v > max {
			return 0, fmt.Errorf("%q exceeds limit %d", s, max)
		}
	}
	return v, nil
}

// parseTraceRange parses "n" or "lo-hi" with lo <= hi <= max.
func parseTraceRange(s string, max int) (lo, hi int, err error) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		lo, err = parseTraceInt(s[:i], max)
		if err != nil {
			return 0, 0, err
		}
		hi, err = parseTraceInt(s[i+1:], max)
		if err != nil {
			return 0, 0, err
		}
		if lo > hi {
			return 0, 0, fmt.Errorf("range %q is reversed", s)
		}
		return lo, hi, nil
	}
	lo, err = parseTraceInt(s, max)
	return lo, lo, err
}

// Up reports whether clientID is available in round (1-based). Entries are
// scanned in order with the last match winning; with no match the trace's
// default applies. The scan is linear in the entry count, which real traces
// keep small (they describe cohorts of clients, not individuals).
func (t *Trace) Up(round, clientID int) bool {
	slot := round - 1
	if slot < 0 {
		slot = 0
	}
	if t.Period > 0 {
		slot %= t.Period
	}
	up := t.Default
	for _, e := range t.entries {
		if clientID >= e.idLo && clientID <= e.idHi && slot >= e.slotLo && slot <= e.slotHi {
			up = e.up
		}
	}
	return up
}

// Render writes the trace back in canonical form: header, directives, then
// entries in parse order with one slot range per entry. Parsing a rendered
// trace yields an identical trace (and therefore an identical Fingerprint).
func (t *Trace) Render() string {
	var b strings.Builder
	b.WriteString("fleettrace v1\n")
	if t.Period > 0 {
		fmt.Fprintf(&b, "period %d\n", t.Period)
	}
	if !t.Default {
		b.WriteString("default down\n")
	}
	for _, e := range t.entries {
		status := "down"
		if e.up {
			status = "up"
		}
		fmt.Fprintf(&b, "%d-%d %s %d-%d\n", e.idLo, e.idHi, status, e.slotLo, e.slotHi)
	}
	return b.String()
}

// Fingerprint hashes the canonical rendering, identifying the trace's content
// (not its formatting or comments) for checkpoint validation: the fingerprint
// rides the scheduler name as trace[<fp>]:<inner>, so a run checkpointed
// under one trace refuses to resume under an edited one.
func (t *Trace) Fingerprint() string {
	h := fnv.New64a()
	h.Write([]byte(t.Render()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// NumEntries returns the parsed entry count (diagnostics).
func (t *Trace) NumEntries() int { return len(t.entries) }

// Scheduler wraps an inner cohort policy with this trace's replayed
// availability, the file-driven counterpart of the avail: Markov wrapper. The
// trace's fingerprint becomes part of the scheduler's name — and therefore of
// every checkpoint's scheduler record.
func (t *Trace) Scheduler(inner sched.Scheduler) *sched.Availability {
	return &sched.Availability{Inner: inner, Trace: t.Up, TraceName: t.Fingerprint()}
}

// DiurnalTraceText renders the built-in day/night trace for an n-client
// fleet over a 24-slot period: the first third of clients sleeps during
// slots 0–7 ("night shift"), the middle third during 12–19, and the rest is
// always up. It exercises trace replay without shipping a fixture file.
func DiurnalTraceText(n int) string {
	if n < 3 {
		return "fleettrace v1\nperiod 24\n"
	}
	third := n / 3
	return fmt.Sprintf("fleettrace v1\nperiod 24\n%d-%d down 0-7\n%d-%d down 12-19\n",
		0, third-1, third, 2*third-1)
}
