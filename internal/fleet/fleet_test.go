package fleet

import (
	"errors"
	"testing"

	"fedfteds/internal/data"
)

func testDomain(t *testing.T) *data.Domain {
	t.Helper()
	suite, err := data.NewStandardSuite(11)
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	return suite.Target10
}

func testSpec(t *testing.T, n int) Spec {
	return Spec{
		Clients: n, Seed: 42, Domain: testDomain(t),
		MinSamples: 12, MaxSamples: 30, Alpha: 0.5,
		MedianFLOPS: 1e9, Sigma: 0.35, PoolSize: 8,
	}
}

func sameClient(t *testing.T, label string, a, b interface {
	Len() int
}, ax, bx []float32, ay, by []int) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: sizes %d vs %d", label, a.Len(), b.Len())
	}
	for i := range ay {
		if ay[i] != by[i] {
			t.Fatalf("%s: label %d differs: %d vs %d", label, i, ay[i], by[i])
		}
	}
	for i := range ax {
		if ax[i] != bx[i] {
			t.Fatalf("%s: feature %d differs: %v vs %v", label, i, ax[i], bx[i])
		}
	}
}

// TestLazyMatchesEager pins the tentpole's determinism contract: a client
// materialized lazily on selection is bit-identical to the same client built
// by the eager O(N) twin.
func TestLazyMatchesEager(t *testing.T) {
	f, err := New(testSpec(t, 24))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eager, err := f.MaterializeAll()
	if err != nil {
		t.Fatalf("MaterializeAll: %v", err)
	}
	// Acquire in a scattered order, exercising the pool, not client order.
	order := []int{17, 3, 0, 23, 9, 3, 17, 11}
	got, err := f.Acquire(order, nil)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	for i, cl := range got {
		want := eager[order[i]]
		if cl.ID != want.ID {
			t.Fatalf("slot %d: ID %d, want %d", i, cl.ID, want.ID)
		}
		sameClient(t, "client", cl.Data, want.Data,
			cl.Data.X.Data(), want.Data.X.Data(), cl.Data.Y, want.Data.Y)
		if cl.Device.FLOPSRate != want.Device.FLOPSRate {
			t.Fatalf("client %d: device %v vs %v", cl.ID, cl.Device.FLOPSRate, want.Device.FLOPSRate)
		}
	}
	f.Release(got)
}

// TestRematerializeDeterministic evicts a client and re-acquires it: the
// regenerated dataset must be bit-identical to the first materialization.
func TestRematerializeDeterministic(t *testing.T) {
	spec := testSpec(t, 16)
	spec.PoolSize = 1
	f, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	first, err := f.Acquire([]int{5}, nil)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	firstX := append([]float32(nil), first[0].Data.X.Data()...)
	firstY := append([]int(nil), first[0].Data.Y...)
	f.Release(first)
	// Acquiring another client evicts 5 (pool of 1).
	other, err := f.Acquire([]int{6}, nil)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	f.Release(other)
	again, err := f.Acquire([]int{5}, nil)
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	sameClient(t, "rematerialized", again[0].Data, again[0].Data, again[0].Data.X.Data(), firstX, again[0].Data.Y, firstY)
	f.Release(again)
	if st := f.Stats(); st.Materializations != 3 || st.Evictions < 2 {
		t.Errorf("stats %+v: want 3 materializations, >=2 evictions", st)
	}
}

// TestDescribeMatchesMaterialized pins the source contract the Runner's cost
// projection depends on: descriptors agree exactly with materialized clients.
func TestDescribeMatchesMaterialized(t *testing.T) {
	f, err := New(testSpec(t, 32))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for id := 0; id < f.NumClients(); id++ {
		d := f.Describe(id)
		cl, err := f.materialize(id)
		if err != nil {
			t.Fatalf("materialize %d: %v", id, err)
		}
		if d.DataSize != cl.Data.Len() {
			t.Fatalf("client %d: descriptor size %d vs materialized %d", id, d.DataSize, cl.Data.Len())
		}
		if d.Device.FLOPSRate != cl.Device.FLOPSRate {
			t.Fatalf("client %d: descriptor rate %v vs materialized %v", id, d.Device.FLOPSRate, cl.Device.FLOPSRate)
		}
		if d.DataSize < 12 || d.DataSize > 30 {
			t.Fatalf("client %d: size %d outside spec range", id, d.DataSize)
		}
	}
}

// TestPoolBounds exercises the LRU: the pool never exceeds PoolSize after
// release, pinned clients survive over-subscription, and repeat acquisitions
// hit the cache.
func TestPoolBounds(t *testing.T) {
	spec := testSpec(t, 64)
	spec.PoolSize = 8
	f, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for round := 0; round < 6; round++ {
		cohort := make([]int, 16) // cohort twice the pool size
		for i := range cohort {
			cohort[i] = (round*7 + i*3) % 64
		}
		got, err := f.Acquire(cohort, nil)
		if err != nil {
			t.Fatalf("round %d acquire: %v", round, err)
		}
		// While pinned, every cohort member must be resident even though the
		// cohort exceeds PoolSize.
		if r := f.Resident(); r < len(uniq(cohort)) {
			t.Fatalf("round %d: resident %d < pinned cohort %d", round, r, len(uniq(cohort)))
		}
		f.Release(got)
		if r := f.Resident(); r > spec.PoolSize {
			t.Fatalf("round %d: resident %d exceeds pool size %d after release", round, r, spec.PoolSize)
		}
	}
	// A cohort that fits the pool is fully retained: re-acquiring it must be
	// all hits.
	small := []int{1, 2, 3, 4}
	for pass := 0; pass < 2; pass++ {
		got, err := f.Acquire(small, nil)
		if err != nil {
			t.Fatalf("small acquire: %v", err)
		}
		f.Release(got)
	}
	st := f.Stats()
	if st.Hits < int64(len(small)) {
		t.Errorf("re-acquired retained cohort produced %d hits, want >= %d (%+v)", st.Hits, len(small), st)
	}
	if st.PeakResident > 16+spec.PoolSize {
		t.Errorf("peak resident %d implausibly high", st.PeakResident)
	}
}

func uniq(ids []int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// TestClusterDeterminism: same spec, same assignments; multi-cluster specs
// actually split heterogeneous sketches.
func TestClusterDeterminism(t *testing.T) {
	spec := testSpec(t, 60)
	spec.Alpha = 0.1 // strongly non-IID: sketches differ a lot
	spec.Clusters = 4
	a, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	seen := map[int]bool{}
	for id := 0; id < spec.Clients; id++ {
		if a.Cluster(id) != b.Cluster(id) {
			t.Fatalf("client %d: cluster %d vs %d across identical builds", id, a.Cluster(id), b.Cluster(id))
		}
		if c := a.Cluster(id); c < 0 || c >= spec.Clusters {
			t.Fatalf("client %d: cluster %d outside [0,%d)", id, c, spec.Clusters)
		}
		seen[a.Cluster(id)] = true
	}
	if len(seen) < 2 {
		t.Errorf("clustering produced %d distinct clusters from skewed sketches, want >= 2", len(seen))
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical specs fingerprint differently: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if d := a.Describe(0); d.Cluster != a.Cluster(0) {
		t.Errorf("Describe cluster %d vs Cluster() %d", d.Cluster, a.Cluster(0))
	}
}

// TestFingerprintDiscriminates: any population-shaping change moves the
// fingerprint; pure capacity does not.
func TestFingerprintDiscriminates(t *testing.T) {
	base := testSpec(t, 20)
	ref, err := New(base)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	edits := map[string]func(*Spec){
		"clients": func(s *Spec) { s.Clients = 21 },
		"seed":    func(s *Spec) { s.Seed = 43 },
		"samples": func(s *Spec) { s.MaxSamples = 31 },
		"alpha":   func(s *Spec) { s.Alpha = 0.4 },
		"flops":   func(s *Spec) { s.MedianFLOPS = 2e9 },
		"cluster": func(s *Spec) { s.Clusters = 3 },
	}
	for name, edit := range edits {
		s := base
		edit(&s)
		f, err := New(s)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if f.Fingerprint() == ref.Fingerprint() {
			t.Errorf("edit %q did not change the fingerprint", name)
		}
	}
	s := base
	s.PoolSize = 99
	f, err := New(s)
	if err != nil {
		t.Fatalf("New(pool): %v", err)
	}
	if f.Fingerprint() != ref.Fingerprint() {
		t.Errorf("PoolSize changed the fingerprint: capacity must not affect results")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Clients = 0 },
		func(s *Spec) { s.Domain = nil },
		func(s *Spec) { s.MinSamples, s.MaxSamples = 10, 5 },
		func(s *Spec) { s.Alpha = -1 },
		func(s *Spec) { s.MedianFLOPS = -1 },
		func(s *Spec) { s.Clusters = 999 },
		func(s *Spec) { s.PoolSize = -1 },
	}
	for i, edit := range bad {
		s := testSpec(t, 10)
		edit(&s)
		if _, err := New(s); !errors.Is(err, ErrFleet) {
			t.Errorf("bad spec %d: err %v, want ErrFleet", i, err)
		}
	}
	if _, err := (&Fleet{spec: Spec{Clients: 4}}).Acquire([]int{9}, nil); err == nil {
		t.Errorf("out-of-range acquire not refused")
	}
}

func TestEstimateEagerBytes(t *testing.T) {
	small := EstimateEagerBytes(100, 20, 60, 64)
	big := EstimateEagerBytes(1_000_000, 20, 60, 64)
	if small <= 0 || big <= small {
		t.Fatalf("estimates not monotone: %d vs %d", small, big)
	}
	// A million clients at ~40 samples × 64 float32 dims is >10 GB — the
	// fail-fast in fedsim depends on the estimate being in that ballpark.
	if big < 10<<30 {
		t.Errorf("1M-client estimate %d bytes implausibly small", big)
	}
}
