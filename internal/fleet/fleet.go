// Package fleet implements the virtual client pool: a population of
// federated clients that exists as per-client seeds plus cheap descriptors
// (data size, device rate, label-distribution sketch), with datasets
// materialized lazily and deterministically when a client is selected for a
// round and returned to a bounded reuse pool afterwards. Resident memory is
// O(cohort + pool), not O(population), which is what makes million-client
// simulated days feasible in a single process.
//
// Determinism contract: every per-client draw comes from the client's own
// stream seeds.FleetClient(Spec.Seed, id), and registration and
// materialization share one prefix (label proportions, then sample count,
// then device rate) before materialization continues the same stream into
// label assignment and data generation. Acquiring a client twice — or
// acquiring it lazily versus building the whole population eagerly — yields
// bit-identical datasets, which TestLazyMatchesEager pins.
package fleet

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/seeds"
	"fedfteds/internal/simtime"
)

// ErrFleet reports an invalid fleet configuration or operation.
var ErrFleet = fmt.Errorf("fleet: invalid configuration")

// Spec describes a virtual client population. Every field except PoolSize
// shapes the derived clients and therefore the fleet's Fingerprint; PoolSize
// is a capacity knob that must not (and does not) affect results.
type Spec struct {
	// Clients is the population size N.
	Clients int
	// Seed roots every per-client stream (seeds.FleetClient(Seed, id)).
	Seed int64
	// Domain is the synthetic task clients draw their local data from.
	Domain *data.Domain
	// MinSamples/MaxSamples bound the per-client local dataset size; the
	// size is uniform on [MinSamples, MaxSamples]. Defaults 20/60.
	MinSamples, MaxSamples int
	// Alpha is the Dirichlet concentration of each client's label
	// proportions — the paper's non-IID knob (small alpha, skewed clients).
	// Default 0.5.
	Alpha float64
	// MedianFLOPS and Sigma shape the lognormal device-rate distribution,
	// matching simtime.NewHeterogeneousDevices. Defaults 1e9 and 0.35.
	MedianFLOPS, Sigma float64
	// Clusters is the similarity-cluster count for the cluster:<inner>
	// scheduling policy; 0 or 1 disables clustering.
	Clusters int
	// PoolSize bounds how many materialized clients stay resident between
	// rounds (an LRU reuse pool). The cohort itself may transiently exceed
	// it — pinned clients are never evicted. Default 256.
	PoolSize int
}

func (s Spec) withDefaults() Spec {
	if s.MinSamples == 0 && s.MaxSamples == 0 {
		s.MinSamples, s.MaxSamples = 20, 60
	}
	if s.Alpha == 0 {
		s.Alpha = 0.5
	}
	if s.MedianFLOPS == 0 {
		s.MedianFLOPS = 1e9
	}
	if s.Sigma == 0 {
		s.Sigma = 0.35
	}
	if s.PoolSize == 0 {
		s.PoolSize = 256
	}
	return s
}

func (s Spec) validate() error {
	switch {
	case s.Clients <= 0 || s.Clients > 1<<31-1:
		return fmt.Errorf("%w: %d clients", ErrFleet, s.Clients)
	case s.Domain == nil:
		return fmt.Errorf("%w: nil domain", ErrFleet)
	case s.MinSamples < 1 || s.MaxSamples < s.MinSamples:
		return fmt.Errorf("%w: sample range [%d, %d]", ErrFleet, s.MinSamples, s.MaxSamples)
	case s.Alpha <= 0:
		return fmt.Errorf("%w: dirichlet alpha %v", ErrFleet, s.Alpha)
	case s.MedianFLOPS <= 0 || s.Sigma < 0:
		return fmt.Errorf("%w: device distribution median %v sigma %v", ErrFleet, s.MedianFLOPS, s.Sigma)
	case s.Clusters < 0 || s.Clusters > s.Clients:
		return fmt.Errorf("%w: %d clusters for %d clients", ErrFleet, s.Clusters, s.Clients)
	case s.PoolSize < 1:
		return fmt.Errorf("%w: pool size %d", ErrFleet, s.PoolSize)
	}
	return nil
}

// Stats counts the pool's materialization traffic.
type Stats struct {
	// Materializations is how many times a client's dataset was generated.
	Materializations int64
	// Hits is how many acquisitions were served from the resident pool.
	Hits int64
	// Evictions is how many resident clients were dropped to honor PoolSize.
	Evictions int64
	// PeakResident is the largest number of simultaneously materialized
	// clients (pinned cohort plus pool).
	PeakResident int
}

// entry is one resident materialized client.
type entry struct {
	cl      *core.Client
	pins    int
	lastUse uint64
}

// Fleet is a virtual client population implementing core.ClientSource.
// Descriptors for all N clients are derived at construction (O(N) small
// scalars); datasets exist only while acquired or cached in the bounded pool.
type Fleet struct {
	spec Spec
	// Per-client descriptors, fixed at registration.
	sizes  []int32
	flops  []float64
	sketch []float32 // N × sketchDim label-distribution sketches
	dim    int
	// clusters holds the k-means assignment per client (nil unclustered);
	// clusterHash fingerprints the assignment.
	clusters    []int32
	clusterHash uint64
	fingerprint string

	mu    sync.Mutex
	pool  map[int]*entry
	clock uint64
	stats Stats
}

var _ core.ClientSource = (*Fleet)(nil)

// New registers a fleet: one pass deriving every client's descriptor from its
// seed stream, then (when Spec.Clusters > 1) a deterministic k-means over the
// label-distribution sketches. No datasets are generated.
func New(spec Spec) (*Fleet, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	n := spec.Clients
	classes := spec.Domain.Spec.NumClasses
	f := &Fleet{
		spec:   spec,
		sizes:  make([]int32, n),
		flops:  make([]float64, n),
		sketch: make([]float32, n*(classes+1)),
		dim:    classes + 1,
		pool:   make(map[int]*entry),
	}
	props := make([]float64, classes)
	for id := 0; id < n; id++ {
		rng := seeds.FleetClient(spec.Seed, id)
		size, rate := f.drawPrefix(rng, props)
		f.sizes[id] = int32(size)
		f.flops[id] = rate
		row := f.sketch[id*f.dim : (id+1)*f.dim]
		var h float64
		for c, p := range props {
			row[c] = float32(p)
			if p > 0 {
				h -= p * math.Log(p)
			}
		}
		// Normalized label entropy: 1 for a uniform client, → 0 for a
		// single-class one. It gives the sketch a "how non-IID" axis on top
		// of "which classes".
		row[classes] = float32(h / math.Log(float64(classes)))
	}
	if spec.Clusters > 1 {
		f.clusters = kmeans(f.sketch, n, f.dim, spec.Clusters)
		h := fnv.New64a()
		var b [4]byte
		for _, c := range f.clusters {
			b[0], b[1], b[2], b[3] = byte(c), byte(c>>8), byte(c>>16), byte(c>>24)
			h.Write(b[:])
		}
		f.clusterHash = h.Sum64()
	}
	f.fingerprint = f.computeFingerprint()
	return f, nil
}

// drawPrefix makes the descriptor draws — label proportions, local sample
// count, device rate, in that fixed order — from a client's stream. It is the
// shared prefix of registration and materialization: both call it on a fresh
// seeds.FleetClient stream, so the dataset draws that follow during
// materialization always see the same stream position.
func (f *Fleet) drawPrefix(rng *rand.Rand, props []float64) (size int, flopsRate float64) {
	dirichlet(rng, f.spec.Alpha, props)
	size = f.spec.MinSamples + rng.Intn(f.spec.MaxSamples-f.spec.MinSamples+1)
	flopsRate = f.spec.MedianFLOPS * math.Exp(f.spec.Sigma*rng.NormFloat64())
	return size, flopsRate
}

// dirichlet fills props with a Dirichlet(alpha) draw via per-class Gamma
// variates (Marsaglia–Tsang), normalized.
func dirichlet(rng *rand.Rand, alpha float64, props []float64) {
	var sum float64
	for i := range props {
		g := gammaDraw(rng, alpha)
		props[i] = g
		sum += g
	}
	if sum <= 0 {
		// All draws underflowed (tiny alpha): fall back to uniform rather
		// than divide by zero. Deterministic, since it depends only on draws.
		for i := range props {
			props[i] = 1 / float64(len(props))
		}
		return
	}
	for i := range props {
		props[i] /= sum
	}
}

// gammaDraw samples Gamma(a, 1) with the Marsaglia–Tsang method; shapes below
// 1 use the boosting identity Gamma(a) = Gamma(a+1) · U^(1/a).
func gammaDraw(rng *rand.Rand, a float64) float64 {
	if a < 1 {
		u := rng.Float64()
		return gammaDraw(rng, a+1) * math.Pow(u, 1/a)
	}
	d := a - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// categorical returns the class index for u ∈ [0, 1) under props.
func categorical(props []float64, u float64) int {
	var cum float64
	for c, p := range props {
		cum += p
		if u < cum {
			return c
		}
	}
	return len(props) - 1 // float roundoff: cum summed to slightly under 1
}

// materialize derives client id's full state: the descriptor prefix redrawn
// from the same stream, then the local labels ~ Categorical(props), then the
// dataset through the domain's generator on the same stream.
func (f *Fleet) materialize(id int) (*core.Client, error) {
	rng := seeds.FleetClient(f.spec.Seed, id)
	props := make([]float64, f.spec.Domain.Spec.NumClasses)
	size, rate := f.drawPrefix(rng, props)
	labels := make([]int, size)
	for i := range labels {
		labels[i] = categorical(props, rng.Float64())
	}
	ds, err := f.spec.Domain.GenerateWithLabels(labels, rng)
	if err != nil {
		return nil, fmt.Errorf("fleet: materializing client %d: %w", id, err)
	}
	return &core.Client{ID: id, Data: ds, Device: simtime.Device{FLOPSRate: rate}, Cluster: f.Cluster(id)}, nil
}

// NumClients implements core.ClientSource.
func (f *Fleet) NumClients() int { return f.spec.Clients }

// Describe implements core.ClientSource from the registration descriptors —
// no dataset is touched.
func (f *Fleet) Describe(pos int) core.ClientDesc {
	d := core.ClientDesc{
		DataSize: int(f.sizes[pos]),
		Device:   simtime.Device{FLOPSRate: f.flops[pos]},
	}
	if f.clusters != nil {
		d.Cluster = int(f.clusters[pos])
	}
	return d
}

// Cluster returns client pos's similarity-cluster index (0 unclustered).
func (f *Fleet) Cluster(pos int) int {
	if f.clusters == nil {
		return 0
	}
	return int(f.clusters[pos])
}

// Acquire implements core.ClientSource: each position is served from the
// resident pool when cached, materialized otherwise, and pinned until the
// matching Release.
func (f *Fleet) Acquire(positions []int, dst []*core.Client) ([]*core.Client, error) {
	dst = dst[:0]
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, pos := range positions {
		if pos < 0 || pos >= f.spec.Clients {
			return nil, fmt.Errorf("fleet: acquire position %d outside population of %d", pos, f.spec.Clients)
		}
		f.clock++
		e, ok := f.pool[pos]
		if ok {
			f.stats.Hits++
		} else {
			cl, err := f.materialize(pos)
			if err != nil {
				return nil, err
			}
			e = &entry{cl: cl}
			f.pool[pos] = e
			f.stats.Materializations++
			if len(f.pool) > f.stats.PeakResident {
				f.stats.PeakResident = len(f.pool)
			}
		}
		e.pins++
		e.lastUse = f.clock
		dst = append(dst, e.cl)
	}
	f.evictLocked()
	return dst, nil
}

// Release implements core.ClientSource: unpin the clients and shrink the pool
// back under PoolSize, evicting the least recently used unpinned entries.
func (f *Fleet) Release(clients []*core.Client) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, cl := range clients {
		if cl == nil {
			continue
		}
		if e, ok := f.pool[cl.ID]; ok && e.pins > 0 {
			e.pins--
			f.clock++
			e.lastUse = f.clock
		}
	}
	f.evictLocked()
}

// evictLocked drops least-recently-used unpinned entries until the pool fits
// PoolSize. Pinned entries never leave, so a cohort larger than the pool
// over-subscribes transiently instead of invalidating live clients.
func (f *Fleet) evictLocked() {
	for len(f.pool) > f.spec.PoolSize {
		victim, oldest := -1, uint64(math.MaxUint64)
		for id, e := range f.pool {
			if e.pins > 0 {
				continue
			}
			// Strict ordering on (lastUse, id) keeps eviction deterministic
			// under Go's randomized map iteration.
			if e.lastUse < oldest || (e.lastUse == oldest && id < victim) {
				victim, oldest = id, e.lastUse
			}
		}
		if victim < 0 {
			return // everything is pinned
		}
		delete(f.pool, victim)
		f.stats.Evictions++
	}
}

// Stats returns a snapshot of the pool counters.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Resident returns how many materialized clients are currently held.
func (f *Fleet) Resident() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pool)
}

// Fingerprint implements core.ClientSource: a stable hash of everything that
// shapes the derived population — seeds, sizes, the domain's identity, the
// device distribution and the clustering — but not PoolSize, which is pure
// capacity. Checkpoints record it and refuse restores under an edited fleet.
func (f *Fleet) Fingerprint() string { return f.fingerprint }

func (f *Fleet) computeFingerprint() string {
	h := fnv.New64a()
	ds := f.spec.Domain.Spec
	fmt.Fprintf(h, "fleet/v1;n=%d;seed=%d;domain=%s/%d/%d;samples=%d-%d;alpha=%v;flops=%v/%v;clusters=%d;chash=%#x",
		f.spec.Clients, f.spec.Seed, ds.Name, ds.Seed, ds.NumClasses,
		f.spec.MinSamples, f.spec.MaxSamples, f.spec.Alpha,
		f.spec.MedianFLOPS, f.spec.Sigma, f.spec.Clusters, f.clusterHash)
	return fmt.Sprintf("%016x", h.Sum64())
}

// MaterializeAll eagerly builds every client — the fleet's O(N)-memory twin,
// used by equivalence tests and small comparison runs. It bypasses the pool.
func (f *Fleet) MaterializeAll() ([]*core.Client, error) {
	out := make([]*core.Client, f.spec.Clients)
	for id := range out {
		cl, err := f.materialize(id)
		if err != nil {
			return nil, err
		}
		out[id] = cl
	}
	return out, nil
}

// EstimateEagerBytes approximates the resident memory an eager build of this
// population would need: per client, the dataset's feature tensor
// (float32 × obsDim × samples), its labels, and fixed object overhead. It is
// the capacity guard fedsim consults before attempting an eager -clients run.
func EstimateEagerBytes(clients, minSamples, maxSamples, obsDim int) int64 {
	const perClientOverhead = 512 // Client + Dataset + tensor headers, slices
	avg := (int64(minSamples) + int64(maxSamples) + 1) / 2
	perSample := int64(obsDim)*4 + 8 // float32 features + int label
	return int64(clients) * (avg*perSample + perClientOverhead)
}
