package fleet_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/fleet"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
)

// fixture builds a fleet spec, a shared test set, and the model builder used
// by every integration test. The fleet is deliberately larger than the cohort
// and the pool smaller than the fleet, so every run exercises lazy
// materialization, eviction, and re-materialization.
func fixture(t *testing.T, n int) (fleet.Spec, *data.Dataset, func() *models.Model) {
	t.Helper()
	suite, err := data.NewStandardSuite(11)
	if err != nil {
		t.Fatal(err)
	}
	test, err := suite.Target10.GenerateBalanced(200, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	spec := fleet.Spec{
		Clients: n, Seed: 42, Domain: suite.Target10,
		MinSamples: 12, MaxSamples: 30, Alpha: 0.5,
		MedianFLOPS: 1e9, Sigma: 0.35, PoolSize: 4,
	}
	mspec := models.Spec{
		Arch: models.ArchMLP, InputShape: []int{64}, NumClasses: 10,
		Hidden: 16, InitSeed: 13,
	}
	build := func() *models.Model {
		m, err := models.Build(mspec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return spec, test, build
}

func fleetCfg(rounds, cohort int) core.Config {
	return core.Config{
		Rounds: rounds, LocalEpochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.5,
		FinetunePart: models.FinetuneFull, Selector: selection.All{},
		Scheduler: sched.UniformRandom{}, CohortSize: cohort,
		Parallelism: 2, Seed: 42,
	}
}

// histEqual compares histories with bitwise float semantics (NaN == NaN for
// unevaluated rounds).
func histEqual(a, b core.History) bool {
	f64 := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if len(a.Records) != len(b.Records) ||
		!f64(a.BestAccuracy, b.BestAccuracy) || !f64(a.FinalAccuracy, b.FinalAccuracy) ||
		!f64(a.TotalTrainSeconds, b.TotalTrainSeconds) ||
		a.TotalUplinkBytes != b.TotalUplinkBytes || a.TotalDownlinkBytes != b.TotalDownlinkBytes {
		return false
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Round != rb.Round || ra.CohortSize != rb.CohortSize || ra.SchedPolicy != rb.SchedPolicy ||
			ra.Participants != rb.Participants || ra.CumUplinkBytes != rb.CumUplinkBytes ||
			!f64(ra.TestAccuracy, rb.TestAccuracy) || !f64(ra.MeanTrainLoss, rb.MeanTrainLoss) ||
			!f64(ra.CumTrainSeconds, rb.CumTrainSeconds) {
			return false
		}
	}
	return true
}

func requireSameState(t *testing.T, a, b *models.Model) {
	t.Helper()
	as, bs := a.StateTensors(), b.StateTensors()
	if len(as) != len(bs) {
		t.Fatalf("state tensor count differs: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if !as[i].Equal(bs[i]) {
			t.Fatalf("global state tensor %d differs", i)
		}
	}
}

// TestFleetRunMatchesEager is the tentpole acceptance test: a fleet-backed
// run — clients materialized lazily on selection, evicted after each round —
// produces a History and final model bit-identical to the same run over the
// fully materialized eager client slice.
func TestFleetRunMatchesEager(t *testing.T) {
	spec, test, build := fixture(t, 12)
	f, err := fleet.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := f.MaterializeAll()
	if err != nil {
		t.Fatal(err)
	}

	cfg := fleetCfg(4, 4)
	lazyModel := build()
	lazyRunner, err := core.NewRunnerWithSource(cfg, lazyModel, f, test)
	if err != nil {
		t.Fatal(err)
	}
	lazyHist, err := lazyRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	eagerModel := build()
	eagerRunner, err := core.NewRunner(cfg, eagerModel, eager, test)
	if err != nil {
		t.Fatal(err)
	}
	eagerHist, err := eagerRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !histEqual(lazyHist, eagerHist) {
		t.Fatalf("lazy fleet diverged from eager:\nlazy:  %+v\neager: %+v", lazyHist, eagerHist)
	}
	requireSameState(t, lazyModel, eagerModel)

	// The run must actually have exercised the pool: 4 cohort slots over a
	// 12-client fleet with a 4-entry pool cannot avoid evictions.
	if st := f.Stats(); st.Evictions == 0 || st.PeakResident > 2*spec.PoolSize {
		t.Errorf("pool stats %+v: expected evictions with bounded residency", st)
	}
}

// TestFleetClusterScheduler runs the similarity-aware policy end to end over
// a clustered fleet and pins its determinism.
func TestFleetClusterScheduler(t *testing.T) {
	spec, test, build := fixture(t, 18)
	spec.Alpha = 0.1
	spec.Clusters = 3

	run := func() (core.History, *models.Model) {
		f, err := fleet.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fleetCfg(3, 6)
		cfg.Scheduler = sched.ClusterSampling{Inner: sched.UniformRandom{}}
		m := build()
		r, err := core.NewRunnerWithSource(cfg, m, f, test)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return hist, m
	}
	histA, modelA := run()
	histB, modelB := run()
	if !histEqual(histA, histB) {
		t.Fatalf("cluster-scheduled fleet run not deterministic:\nA: %+v\nB: %+v", histA, histB)
	}
	requireSameState(t, modelA, modelB)
	for _, rec := range histA.Records {
		if rec.SchedPolicy != "cluster:uniform" {
			t.Fatalf("record policy %q, want cluster:uniform", rec.SchedPolicy)
		}
		if rec.Participants != 6 {
			t.Fatalf("round %d: %d participants, want 6", rec.Round, rec.Participants)
		}
	}
}

// TestFleetCheckpointResume pins the headline experiment's resumability: a
// fleet-backed run killed mid-day resumes from its latest checkpoint
// bit-identically to the uninterrupted run — re-deriving every virtual client
// it needs from seeds.
func TestFleetCheckpointResume(t *testing.T) {
	spec, test, build := fixture(t, 12)
	const total, killAt = 5, 2

	newRunner := func(cfg core.Config) (*core.Runner, *models.Model) {
		f, err := fleet.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		m := build()
		r, err := core.NewRunnerWithSource(cfg, m, f, test)
		if err != nil {
			t.Fatal(err)
		}
		return r, m
	}

	fullRunner, fullModel := newRunner(fleetCfg(total, 4))
	fullHist, err := fullRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	killedCfg := fleetCfg(killAt, 4)
	killedCfg.CheckpointDir = dir
	killedRunner, _ := newRunner(killedCfg)
	if _, err := killedRunner.Run(); err != nil {
		t.Fatal(err)
	}

	resumedCfg := fleetCfg(total, 4)
	resumedCfg.CheckpointDir = dir
	resumedRunner, resumedModel := newRunner(resumedCfg)
	round, err := resumedRunner.ResumeLatest()
	if err != nil {
		t.Fatal(err)
	}
	if round != killAt {
		t.Fatalf("resumed from round %d, want %d", round, killAt)
	}
	resumedHist, err := resumedRunner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !histEqual(fullHist, resumedHist) {
		t.Fatalf("fleet resume diverged:\nfull:    %+v\nresumed: %+v", fullHist, resumedHist)
	}
	requireSameState(t, fullModel, resumedModel)
}

// TestFleetFingerprintMismatchRefused: a checkpoint written under one fleet
// refuses to restore under another — whether the spec changed (different
// configuration tag) or only the recorded fingerprint was tampered with.
func TestFleetFingerprintMismatchRefused(t *testing.T) {
	spec, test, build := fixture(t, 12)
	f, err := fleet.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(2, 4)
	runner, err := core.NewRunnerWithSource(cfg, build(), f, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(); err != nil {
		t.Fatal(err)
	}
	state, err := runner.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if state.FleetSpec != f.Fingerprint() {
		t.Fatalf("snapshot fleet spec %q, want %q", state.FleetSpec, f.Fingerprint())
	}

	// An edited fleet (different seed → different population) is refused.
	edited := spec
	edited.Seed = 43
	f2, err := fleet.New(edited)
	if err != nil {
		t.Fatal(err)
	}
	other, err := core.NewRunnerWithSource(cfg, build(), f2, test)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.RestoreInto(other); err == nil {
		t.Fatal("restore under an edited fleet accepted")
	}

	// A tampered fingerprint alone — everything else intact — is refused with
	// the fleet-specific message.
	same, err := core.NewRunnerWithSource(cfg, build(), f, test)
	if err != nil {
		t.Fatal(err)
	}
	tampered := *state
	tampered.FleetSpec = "0000000000000000"
	err = tampered.RestoreInto(same)
	if err == nil || !strings.Contains(err.Error(), "fleet fingerprint") {
		t.Fatalf("tampered fingerprint: err %v, want fleet fingerprint refusal", err)
	}
}

// TestFleetAsyncFullBufferMatchesRun pins the async engine's baseline: with
// Buffer = CohortSize, no staleness and no departures, every aggregation
// folds exactly its dispatched window, so RunFleetAsync replays the
// synchronous engine bit for bit.
func TestFleetAsyncFullBufferMatchesRun(t *testing.T) {
	spec, test, build := fixture(t, 12)

	f1, err := fleet.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	syncModel := build()
	syncRunner, err := core.NewRunnerWithSource(fleetCfg(4, 4), syncModel, f1, test)
	if err != nil {
		t.Fatal(err)
	}
	syncHist, err := syncRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	f2, err := fleet.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	asyncModel := build()
	asyncRunner, err := core.NewRunnerWithSource(fleetCfg(4, 4), asyncModel, f2, test)
	if err != nil {
		t.Fatal(err)
	}
	asyncHist, err := asyncRunner.RunFleetAsync(core.FleetAsyncConfig{
		AsyncConfig: core.AsyncConfig{Buffer: 4, MaxStaleness: -1},
	})
	if err != nil {
		t.Fatal(err)
	}

	if !histEqual(syncHist, asyncHist) {
		t.Fatalf("full-buffer async diverged from sync:\nsync:  %+v\nasync: %+v", syncHist, asyncHist)
	}
	requireSameState(t, syncModel, asyncModel)
}

// TestFleetAsyncTraceDepartures drives the event-driven engine with replayed
// trace availability, a partial buffer, and mid-flight departures — and pins
// that the whole composition is deterministic.
func TestFleetAsyncTraceDepartures(t *testing.T) {
	spec, test, build := fixture(t, 18)

	run := func() (core.History, *models.Model) {
		tr, err := fleet.ParseTrace(fleet.DiurnalTraceText(18))
		if err != nil {
			t.Fatal(err)
		}
		f, err := fleet.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fleetCfg(6, 6)
		cfg.Scheduler = tr.Scheduler(sched.UniformRandom{})
		m := build()
		r, err := core.NewRunnerWithSource(cfg, m, f, test)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := r.RunFleetAsync(core.FleetAsyncConfig{
			AsyncConfig: core.AsyncConfig{Buffer: 3, MaxStaleness: 2},
			Departed:    func(round, clientID int) bool { return round == 3 && clientID%5 == 2 },
		})
		if err != nil {
			t.Fatal(err)
		}
		return hist, m
	}

	histA, modelA := run()
	histB, modelB := run()
	if !histEqual(histA, histB) {
		t.Fatalf("trace-driven async fleet not deterministic:\nA: %+v\nB: %+v", histA, histB)
	}
	requireSameState(t, modelA, modelB)
	if len(histA.Records) != 6 {
		t.Fatalf("%d records, want 6", len(histA.Records))
	}
	for _, rec := range histA.Records {
		if rec.Participants != 3 {
			t.Fatalf("aggregation %d folded %d updates, want Buffer=3", rec.Round, rec.Participants)
		}
		if rec.CohortSize < rec.Participants {
			t.Fatalf("aggregation %d: cohort %d < participants %d", rec.Round, rec.CohortSize, rec.Participants)
		}
		if !strings.HasPrefix(rec.SchedPolicy, "trace[") {
			t.Fatalf("aggregation %d: policy %q not trace-wrapped", rec.Round, rec.SchedPolicy)
		}
	}
}

// TestRunFleetAsyncValidation pins the mode's fail-fast surface, including
// the complementary guard: RunAsync's O(pool) engine refuses fleet-backed
// runners outright.
func TestRunFleetAsyncValidation(t *testing.T) {
	spec, test, build := fixture(t, 8)

	newRunner := func(mutate func(*core.Config)) *core.Runner {
		f, err := fleet.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fleetCfg(2, 4)
		if mutate != nil {
			mutate(&cfg)
		}
		r, err := core.NewRunnerWithSource(cfg, build(), f, test)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	acfg := func(buffer int) core.FleetAsyncConfig {
		return core.FleetAsyncConfig{AsyncConfig: core.AsyncConfig{Buffer: buffer, MaxStaleness: -1}}
	}

	cases := []struct {
		name   string
		mutate func(*core.Config)
		acfg   core.FleetAsyncConfig
	}{
		{"no scheduler", func(c *core.Config) { c.Scheduler, c.CohortSize = nil, 0 }, acfg(1)},
		{"zero buffer", nil, acfg(0)},
		{"buffer exceeds window", nil, acfg(5)},
		{"window exceeds fleet", func(c *core.Config) { c.CohortSize = 9 }, acfg(1)},
		{"codec", func(c *core.Config) { c.Codec = "float16" }, acfg(2)},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := newRunner(tt.mutate).RunFleetAsync(tt.acfg); err == nil {
				t.Fatal("accepted")
			}
		})
	}

	t.Run("runasync refuses fleet source", func(t *testing.T) {
		r := newRunner(func(c *core.Config) { c.Scheduler, c.CohortSize = nil, 0 })
		_, err := r.RunAsync(core.AsyncConfig{Buffer: 2, MaxStaleness: -1})
		if err == nil || !strings.Contains(err.Error(), "RunFleetAsync") {
			t.Fatalf("err %v, want RunFleetAsync redirect", err)
		}
	})
}
