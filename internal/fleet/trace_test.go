package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleTrace = `# weekday fleet trace
fleettrace v1
period 24
default up

0-99 down 0-7      # night shift offline overnight
100-199 down 12-19
50 up 0-7          # except client 50, always reachable
`

func TestParseTraceValid(t *testing.T) {
	tr, err := ParseTrace(sampleTrace)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if tr.Period != 24 || !tr.Default || tr.NumEntries() != 3 {
		t.Fatalf("parsed %+v entries=%d, want period 24 default up 3 entries", tr, tr.NumEntries())
	}
	cases := []struct {
		round, id int
		up        bool
	}{
		{1, 0, false},    // slot 0: night shift down
		{1, 50, true},    // later entry overrides: 50 stays up
		{9, 0, true},     // slot 8: night shift back
		{13, 150, false}, // slot 12: afternoon group down
		{13, 0, true},
		{25, 0, false}, // slot (25-1) mod 24 = 0: wraps into night
		{5, 5000, true},
	}
	for _, c := range cases {
		if got := tr.Up(c.round, c.id); got != c.up {
			t.Errorf("Up(round=%d, id=%d) = %v, want %v", c.round, c.id, got, c.up)
		}
	}
}

func TestParseTraceNoPeriod(t *testing.T) {
	tr, err := ParseTrace("fleettrace v1\ndefault down\n3 up 0-2\n")
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if tr.Up(1, 4) {
		t.Errorf("default down ignored")
	}
	if !tr.Up(2, 3) {
		t.Errorf("slot 1 for client 3 should be up")
	}
	if tr.Up(10, 3) {
		t.Errorf("without a period, slot 9 must not wrap into 0-2")
	}
}

func TestParseTraceMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"missing header":      "period 24\n0 up 0\n",
		"wrong version":       "fleettrace v2\n",
		"period after entry":  "fleettrace v1\n0 up 0\nperiod 24\n",
		"duplicate period":    "fleettrace v1\nperiod 4\nperiod 4\n",
		"duplicate default":   "fleettrace v1\ndefault up\ndefault down\n",
		"period zero":         "fleettrace v1\nperiod 0\n",
		"period junk":         "fleettrace v1\nperiod -4\n",
		"entry short":         "fleettrace v1\n0 up\n",
		"bad status":          "fleettrace v1\n0 sideways 0\n",
		"reversed id range":   "fleettrace v1\n9-3 up 0\n",
		"reversed slot range": "fleettrace v1\n0 up 9-3\n",
		"slot past period":    "fleettrace v1\nperiod 8\n0 up 8\n",
		"negative id":         "fleettrace v1\n-3 up 0\n",
		"hex id":              "fleettrace v1\n0x10 up 0\n",
		"huge id":             "fleettrace v1\n99999999999 up 0\n",
		"plus sign":           "fleettrace v1\n+3 up 0\n",
	}
	for name, text := range cases {
		if _, err := ParseTrace(text); !errors.Is(err, ErrTrace) {
			t.Errorf("%s: err %v, want ErrTrace", name, err)
		}
	}
}

func TestTraceFingerprint(t *testing.T) {
	a, err := ParseTrace(sampleTrace)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Comments and whitespace must not move the fingerprint...
	b, err := ParseTrace("fleettrace v1\nperiod 24\n0-99 down 0-7\n100-199 down 12-19\n50-50 up 0-7\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("formatting changed the fingerprint: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	// ...but any content edit must.
	c, err := ParseTrace(strings.Replace(sampleTrace, "0-7", "0-6", 1))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Errorf("content edit kept the fingerprint %s", a.Fingerprint())
	}
	// Render round-trips.
	again, err := ParseTrace(a.Render())
	if err != nil {
		t.Fatalf("reparse rendered trace: %v", err)
	}
	if a.Fingerprint() != again.Fingerprint() {
		t.Errorf("render/reparse moved the fingerprint")
	}
}

func TestLoadTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "day.trace")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(path)
	if err != nil {
		t.Fatalf("LoadTrace: %v", err)
	}
	if tr.Period != 24 {
		t.Fatalf("period %d", tr.Period)
	}
	if _, err := LoadTrace(filepath.Join(dir, "missing.trace")); err == nil {
		t.Errorf("missing file not reported")
	}
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(bad); !errors.Is(err, ErrTrace) {
		t.Errorf("malformed file: err %v, want ErrTrace", err)
	}
}

func TestTraceScheduler(t *testing.T) {
	tr, err := ParseTrace(sampleTrace)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s := tr.Scheduler(nil)
	want := "trace[" + tr.Fingerprint() + "]:uniform"
	if s.Name() != want {
		t.Errorf("scheduler name %q, want %q", s.Name(), want)
	}
}

func TestDiurnalTraceText(t *testing.T) {
	tr, err := ParseTrace(DiurnalTraceText(300))
	if err != nil {
		t.Fatalf("built-in diurnal trace does not parse: %v", err)
	}
	if tr.Period != 24 {
		t.Fatalf("period %d", tr.Period)
	}
	if tr.Up(1, 0) {
		t.Errorf("first third should sleep in slot 0")
	}
	if !tr.Up(1, 299) {
		t.Errorf("last third should always be up")
	}
	if _, err := ParseTrace(DiurnalTraceText(2)); err != nil {
		t.Errorf("degenerate tiny fleet trace does not parse: %v", err)
	}
}

// FuzzParseTrace asserts the parser never panics on arbitrary input and that
// anything it accepts round-trips through Render with a stable fingerprint.
func FuzzParseTrace(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("fleettrace v1\n")
	f.Add("fleettrace v1\nperiod 24\ndefault down\n0-5 up 0-23\n")
	f.Add("fleettrace v1\n0 up 0 1 2 5-9\n")
	f.Add("period 24\n")
	f.Add("fleettrace v1\n9-3 up 0\n")
	f.Add(strings.Repeat("fleettrace v1\n# x\n", 3))
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := ParseTrace(text)
		if err != nil {
			return
		}
		again, err := ParseTrace(tr.Render())
		if err != nil {
			t.Fatalf("accepted trace fails to reparse its own rendering: %v\nrender:\n%s", err, tr.Render())
		}
		if tr.Fingerprint() != again.Fingerprint() {
			t.Fatalf("render/reparse moved fingerprint: %s vs %s", tr.Fingerprint(), again.Fingerprint())
		}
		tr.Up(1, 0)
		tr.Up(1<<30, 1<<30)
	})
}
