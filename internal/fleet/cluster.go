package fleet

// kmeans clusters n sketch rows of the given dimension into k groups with
// plain Lloyd iterations, fully deterministically: centers initialize from
// evenly spaced clients ((i·n)/k), assignment ties break toward the lower
// center index, an emptied cluster keeps its previous center, and the
// iteration count is fixed. The sketches are cheap label-distribution
// summaries, so a handful of iterations is plenty — the goal is stable
// similarity grouping for stratified cohort sampling, not optimal clustering.
func kmeans(sketch []float32, n, dim, k int) []int32 {
	const iters = 8
	if k > n {
		k = n
	}
	centers := make([]float64, k*dim)
	for c := 0; c < k; c++ {
		row := sketch[(c*n/k)*dim : (c*n/k+1)*dim]
		for j, v := range row {
			centers[c*dim+j] = float64(v)
		}
	}
	assign := make([]int32, n)
	sums := make([]float64, k*dim)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			row := sketch[i*dim : (i+1)*dim]
			best, bestD := 0, distSq(row, centers[:dim])
			for c := 1; c < k; c++ {
				if d := distSq(row, centers[c*dim:(c+1)*dim]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = int32(best)
		}
		for i := range sums {
			sums[i] = 0
		}
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := int(assign[i])
			counts[c]++
			row := sketch[i*dim : (i+1)*dim]
			for j, v := range row {
				sums[c*dim+j] += float64(v)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue // empty cluster keeps its center
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < dim; j++ {
				centers[c*dim+j] = sums[c*dim+j] * inv
			}
		}
	}
	return assign
}

func distSq(row []float32, center []float64) float64 {
	var d float64
	for j, v := range row {
		diff := float64(v) - center[j]
		d += diff * diff
	}
	return d
}
