package fleet

import (
	"testing"

	"fedfteds/internal/core"
	"fedfteds/internal/data"
)

// BenchmarkFleetCohortMaterialize measures one round's pool churn at scale: a
// 100k-client fleet (descriptors only — built outside the timer) serving a
// rotating 256-client cohort, so every iteration is 256 misses through
// materialize plus the LRU bookkeeping. This is the per-round overhead a
// fleet run pays over an eager one, and the number the CI perf gate watches.
func BenchmarkFleetCohortMaterialize(b *testing.B) {
	suite, err := data.NewStandardSuite(11)
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(Spec{
		Clients: 100_000, Seed: 42, Domain: suite.Target10,
		MinSamples: 12, MaxSamples: 30, Alpha: 0.5,
		MedianFLOPS: 1e9, Sigma: 0.35, Clusters: 8, PoolSize: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	const cohortSize = 256
	cohort := make([]int, cohortSize)
	var scratch []*core.Client
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cohort {
			// Stride past the pool so every acquisition materializes.
			cohort[j] = (i*cohortSize + j*391) % 100_000
		}
		got, err := f.Acquire(cohort, scratch)
		if err != nil {
			b.Fatal(err)
		}
		f.Release(got)
		scratch = got
	}
}
