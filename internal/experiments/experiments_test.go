package experiments

import (
	"errors"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"fedfteds/internal/models"
	"fedfteds/internal/selection"
)

// smokeEnv returns a shared tiny environment. Experiments under ScaleSmoke
// verify structure and plumbing; orderings are asserted only where robust.
func smokeEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(ScaleSmoke, 3)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func assertAcc(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || v < 0 || v > 1 {
		t.Fatalf("%s: accuracy %v outside [0,1]", name, v)
	}
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(Scale(99), 1); !errors.Is(err, ErrExperiment) {
		t.Fatalf("expected ErrExperiment, got %v", err)
	}
}

func TestParseScale(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Scale
	}{{in: "smoke", want: ScaleSmoke}, {in: "fast", want: ScaleFast}, {in: "full", want: ScaleFull}} {
		got, err := ParseScale(tt.in)
		if err != nil || got != tt.want {
			t.Fatalf("ParseScale(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := ParseScale("huge"); !errors.Is(err, ErrExperiment) {
		t.Fatalf("expected ErrExperiment, got %v", err)
	}
}

func TestTarget100ScaledClassCount(t *testing.T) {
	env := smokeEnv(t)
	d, err := env.Target100()
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.NumClasses != env.Dims.Target100Classes {
		t.Fatalf("target100 classes %d, want %d", d.Spec.NumClasses, env.Dims.Target100Classes)
	}
	// Cached on second call.
	d2, err := env.Target100()
	if err != nil || d2 != d {
		t.Fatal("Target100 not cached")
	}
}

func TestBuildFederationStructure(t *testing.T) {
	env := smokeEnv(t)
	fed, err := env.BuildFederation(env.Suite.Target10, 4, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Clients) != 4 {
		t.Fatalf("%d clients", len(fed.Clients))
	}
	total := 0
	for _, cl := range fed.Clients {
		total += cl.Data.Len()
		if cl.Device.FLOPSRate <= 0 {
			t.Fatal("client without device speed")
		}
	}
	if total != fed.Pool.Len() {
		t.Fatalf("clients hold %d of %d pool samples", total, fed.Pool.Len())
	}
}

func TestPretrainedModelCachedAndIndependent(t *testing.T) {
	env := smokeEnv(t)
	m1, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("PretrainedModel returned the same instance twice")
	}
	// Feature extractors must be identical, classifiers freshly initialized.
	e1, err := m1.GroupStateTensors([]string{models.GroupLow})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m2.GroupStateTensors([]string{models.GroupLow})
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if !e1[i].Equal(e2[i]) {
			t.Fatal("cached pretrained extractors differ")
		}
	}
	// Mutating one copy must not affect the other.
	e1[0].AddScalar(1)
	if e1[0].Equal(e2[0]) {
		t.Fatal("pretrained copies share storage")
	}
}

func TestRunTable1Structure(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunTable1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		assertAcc(t, row.Pretraining, row.AccAlpha01)
		assertAcc(t, row.Pretraining, row.AccAlpha05)
	}
	out := res.Render()
	if !strings.Contains(out, "Diri(0.1)") || !strings.Contains(out, "none") {
		t.Fatalf("render missing expected columns:\n%s", out)
	}
}

func TestRunTable2Structure(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunTable2(env)
	if err != nil {
		t.Fatal(err)
	}
	// 7 methods + centralized, 2 datasets, 2 alphas.
	if len(res.Cells) != 8*2*2 {
		t.Fatalf("%d cells, want 32", len(res.Cells))
	}
	for _, c := range res.Cells {
		assertAcc(t, c.Method, c.BestAccuracy)
		if c.Method != "Centralised" && len(c.Curve) != env.Dims.Rounds {
			t.Fatalf("%s: curve length %d", c.Method, len(c.Curve))
		}
	}
	if _, ok := res.Get("FedFT-EDS (10%)", "synthc10", 0.1); !ok {
		t.Fatal("missing FedFT-EDS cell")
	}
	// FedFT must communicate less than FedAvg.
	eds, _ := res.Get("FedFT-EDS (10%)", "synthc10", 0.1)
	avg, _ := res.Get("FedAvg", "synthc10", 0.1)
	if eds.UplinkBytes >= avg.UplinkBytes {
		t.Fatalf("FedFT uplink %d >= FedAvg %d", eds.UplinkBytes, avg.UplinkBytes)
	}
	// And train for far less simulated time.
	if eds.TrainSeconds >= avg.TrainSeconds {
		t.Fatalf("FedFT train seconds %v >= FedAvg %v", eds.TrainSeconds, avg.TrainSeconds)
	}
	for _, render := range []string{
		res.Render(),
		res.RenderFigure5("synthc10", 0.1),
		res.RenderFigure6("synthc10", 0.1),
	} {
		if render == "" {
			t.Fatal("empty render")
		}
	}
}

func TestRunTable3Structure(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunTable3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 9*2*2 {
		t.Fatalf("%d cells, want 36", len(res.Cells))
	}
	// The fn=10% FedAvg row must involve fewer participants; proxy: its
	// simulated time is lower than full participation.
	full, ok1 := res.Get("FedAvg 100% c.p.", "synthc10", 0.1)
	ten, ok2 := res.Get("FedAvg 10% c.p.", "synthc10", 0.1)
	if !ok1 || !ok2 {
		t.Fatal("missing FedAvg rows")
	}
	if ten.TrainSeconds >= full.TrainSeconds {
		t.Fatalf("10%% participation time %v >= 100%% time %v", ten.TrainSeconds, full.TrainSeconds)
	}
	for _, render := range []string{
		res.Render(),
		res.RenderFigure7("synthc10", 0.1),
		res.RenderFigure8("synthc10", 0.1),
		res.RenderFigure9("synthc10", 0.5),
	} {
		if render == "" {
			t.Fatal("empty render")
		}
	}
}

func TestRunTable4Structure(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunTable4(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(res.Rows))
	}
	for _, row := range res.Rows {
		assertAcc(t, row.Method, row.Accuracy)
	}
	if _, ok := res.Get("Centralised"); !ok {
		t.Fatal("missing centralized row")
	}
	if out := res.Render(); !strings.Contains(out, "FedFT-EDS") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunFig1Shape(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunFig1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Temperatures) != 3 || len(res.Histograms) != 3 {
		t.Fatalf("temperatures %v", res.Temperatures)
	}
	// The paper's Fig. 1 claim: hardening (smaller ρ) pushes the median
	// entropy down. This ordering is robust even at smoke scale.
	if !(res.Medians[2] <= res.Medians[1] && res.Medians[1] <= res.Medians[0]) {
		t.Fatalf("medians not decreasing with ρ: %v", res.Medians)
	}
	// Histograms count every sample.
	var want int
	for _, c := range res.Histograms[0] {
		want += c
	}
	for ti := 1; ti < 3; ti++ {
		var got int
		for _, c := range res.Histograms[ti] {
			got += c
		}
		if got != want {
			t.Fatalf("histogram %d counts %d vs %d", ti, got, want)
		}
	}
	if out := res.Render(); !strings.Contains(out, "ρ=0.1") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunCKAShape(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunCKA(env, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	n := env.Dims.SmallClients
	for pi := 0; pi < 2; pi++ {
		for _, layer := range res.Layers {
			m := res.Heatmaps[pi][layer]
			if len(m) != n {
				t.Fatalf("heatmap size %d, want %d", len(m), n)
			}
			for i := range m {
				if math.Abs(m[i][i]-1) > 1e-9 {
					t.Fatalf("diagonal CKA %v", m[i][i])
				}
				for j := range m {
					if m[i][j] < -1e-9 || m[i][j] > 1+1e-9 {
						t.Fatalf("CKA %v outside [0,1]", m[i][j])
					}
				}
			}
			avg := res.Averages[pi][layer]
			if avg <= 0 || avg > 1 {
				t.Fatalf("average CKA %v", avg)
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "Fig. 4") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunFig10aStructure(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunFig10a(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 4 || len(res.EDS) != 4 || len(res.RDS) != 4 {
		t.Fatalf("parts %v", res.Parts)
	}
	for i := range res.Parts {
		assertAcc(t, res.Parts[i].String(), res.EDS[i])
		assertAcc(t, res.Parts[i].String(), res.RDS[i])
	}
	if out := res.Render(); !strings.Contains(out, "classifier") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunFig10bStructure(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunFig10b(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alphas) != 5 {
		t.Fatalf("alphas %v", res.Alphas)
	}
	for i := range res.Alphas {
		assertAcc(t, "eds", res.EDS[i])
		assertAcc(t, "rds", res.RDS[i])
	}
}

func TestRunFig10cStructure(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunFig10c(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Temperatures) != 7 || len(res.EDS) != 7 {
		t.Fatalf("temperatures %v", res.Temperatures)
	}
	assertAcc(t, "rds baseline", res.RDSBaseline)
	if out := res.Render(); !strings.Contains(out, "ρ") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunAblations(t *testing.T) {
	env := smokeEnv(t)
	for _, run := range []struct {
		name string
		fn   func(*Env) (*AblationResult, error)
		rows int
	}{
		{name: "batch-entropy", fn: RunAblationBatchEntropy, rows: 3},
		{name: "agg-weighting", fn: RunAblationAggWeighting, rows: 3},
		{name: "acquisition", fn: RunAblationAcquisition, rows: 6},
	} {
		t.Run(run.name, func(t *testing.T) {
			res, err := run.fn(env)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != run.rows {
				t.Fatalf("%d rows, want %d", len(res.Rows), run.rows)
			}
			for _, row := range res.Rows {
				assertAcc(t, row.Name, row.BestAccuracy)
			}
			if res.Render() == "" {
				t.Fatal("empty render")
			}
		})
	}
}

func TestRunMethodSelectionOverheadAccounted(t *testing.T) {
	// EDS must cost more simulated time than RDS at equal fraction: the
	// scoring pass is charged. Robust at any scale.
	env := smokeEnv(t)
	fed, err := env.BuildFederation(env.Suite.Target10, 4, 0.5, 900)
	if err != nil {
		t.Fatal(err)
	}
	eds := Method{Name: "eds", Pretrained: false, Part: models.FinetuneModerate,
		Selector: selection.Entropy{Temperature: 0.1}, Fraction: 0.5}
	rds := Method{Name: "rds", Pretrained: false, Part: models.FinetuneModerate,
		Selector: selection.Random{}, Fraction: 0.5}
	he, err := env.RunMethod(eds, fed, env.Suite.Target10, env.Suite.Source, 91)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := env.RunMethod(rds, fed, env.Suite.Target10, env.Suite.Source, 91)
	if err != nil {
		t.Fatal(err)
	}
	if he.TotalTrainSeconds <= hr.TotalTrainSeconds {
		t.Fatalf("EDS time %v <= RDS time %v: scoring pass not charged",
			he.TotalTrainSeconds, hr.TotalTrainSeconds)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("T", "a", "bb")
	tbl.AddRow("1", "2")
	tbl.AddRow("333") // short row padded
	out := tbl.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Fatalf("table:\n%s", out)
	}
	if Pct(math.NaN()) != "n/a" || Pct(0.5) != "50.00" {
		t.Fatal("Pct formatting")
	}
	s := Series{Name: "x", Values: []float64{math.NaN(), 0.25}}
	if s.LastFinite() != 0.25 {
		t.Fatal("LastFinite")
	}
	if RenderCurves("c", []Series{s}) == "" {
		t.Fatal("empty curves")
	}
}

// TestCheckpointArtifactStore: with a checkpoint policy installed, an
// experiment persists each run into its own subdirectory, and a re-launched
// sweep with Resume reloads the finished runs bit-identically instead of
// re-training them.
func TestCheckpointArtifactStore(t *testing.T) {
	dir := t.TempDir()

	env1, err := NewEnv(ScaleSmoke, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := env1.SetCheckpointPolicy(CheckpointPolicy{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	res1, err := RunSchedCompare(env1, []string{"uniform"}, 2)
	if err != nil {
		t.Fatal(err)
	}

	// The run landed in its own artifact subdirectory.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].IsDir() {
		t.Fatalf("artifact store contents: %v", entries)
	}

	// A fresh environment resumes the stored run: identical history.
	env2, err := NewEnv(ScaleSmoke, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := env2.SetCheckpointPolicy(CheckpointPolicy{Dir: dir, Resume: true}); err != nil {
		t.Fatal(err)
	}
	res2, err := RunSchedCompare(env2, []string{"uniform"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Rows, res2.Rows) {
		t.Fatalf("resumed sweep differs:\nfirst:   %+v\nresumed: %+v", res1.Rows, res2.Rows)
	}
}

// TestSetCheckpointPolicyValidation pins the fail-fast rules.
func TestSetCheckpointPolicyValidation(t *testing.T) {
	env, err := NewEnv(ScaleSmoke, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.SetCheckpointPolicy(CheckpointPolicy{Dir: "x", Every: -1}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if err := env.SetCheckpointPolicy(CheckpointPolicy{Resume: true}); err == nil {
		t.Fatal("resume without dir accepted")
	}
	if err := env.SetCheckpointPolicy(CheckpointPolicy{}); err != nil {
		t.Fatalf("disabled policy rejected: %v", err)
	}
}

// TestRunNameSanitization keeps artifact directory names filesystem-safe.
func TestRunNameSanitization(t *testing.T) {
	got := sanitizeRunName("FedFT-EDS (50%)/moderate a=0.1")
	for _, r := range got {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '.' || r == '_' || r == '-'
		if !ok {
			t.Fatalf("unsafe rune %q in %q", r, got)
		}
	}
}
