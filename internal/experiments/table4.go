package experiments

import (
	"fmt"

	"fedfteds/internal/models"
	"fedfteds/internal/selection"
)

// Table4Row is one cross-domain method outcome.
type Table4Row struct {
	// Method is the paper's label.
	Method string
	// Pds is the selection fraction.
	Pds float64
	// Accuracy is the best test accuracy on the far domain.
	Accuracy float64
}

// Table4Result reproduces Table IV: cross-domain evaluation on the
// speech-commands analogue under strong heterogeneity.
type Table4Result struct {
	// Rows holds the method outcomes in paper order.
	Rows []Table4Row
}

// RunTable4 executes the cross-domain experiment (far target, Diri(0.1),
// full participation on the large client pool).
func RunTable4(env *Env) (*Table4Result, error) {
	target := env.Suite.Far
	fed, err := env.BuildFederation(target, env.Dims.LargeClients, 0.1, 9000)
	if err != nil {
		return nil, err
	}
	methods := []struct {
		Method
		pds float64
	}{
		{Method: Method{Name: "FedAvg w/o pt", Pretrained: false, Part: models.FinetuneFull, Selector: selection.All{}, Fraction: 1}, pds: 1},
		{Method: Method{Name: "FedAvg w/ pt", Pretrained: true, Part: models.FinetuneFull, Selector: selection.All{}, Fraction: 1}, pds: 1},
		{Method: Method{Name: "FedFT-RDS (10%)", Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Random{}, Fraction: 0.1}, pds: 0.1},
		{Method: Method{Name: "FedFT-EDS (10%)", Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Entropy{Temperature: paperTemperature}, Fraction: 0.1}, pds: 0.1},
		{Method: Method{Name: "FedFT-RDS (50%)", Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Random{}, Fraction: 0.5}, pds: 0.5},
		{Method: Method{Name: "FedFT-EDS (50%)", Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Entropy{Temperature: paperTemperature}, Fraction: 0.5}, pds: 0.5},
	}
	res := &Table4Result{}
	for _, m := range methods {
		hist, err := env.RunMethod(m.Method, fed, target, env.Suite.Source, 4)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table4Row{Method: m.Name, Pds: m.pds, Accuracy: hist.BestAccuracy})
	}
	central, err := env.RunCentralized(fed, target, env.Suite.Source)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table4Row{Method: "Centralised", Pds: 1, Accuracy: central.BestAccuracy})
	return res, nil
}

// Get returns the row for a method, or false.
func (r *Table4Result) Get(method string) (Table4Row, bool) {
	for _, row := range r.Rows {
		if row.Method == method {
			return row, true
		}
	}
	return Table4Row{}, false
}

// Render prints the table in the paper's shape.
func (r *Table4Result) Render() string {
	tbl := NewTable("Table IV — cross-domain top-1 accuracy (%) on the speech-command analogue, Diri(0.1)",
		"Method", "Pds", "Top-1 Acc")
	for _, row := range r.Rows {
		tbl.AddRow(row.Method, pdsLabel(row.Pds), Pct(row.Accuracy))
	}
	return tbl.String()
}

// pdsLabel formats a selection fraction as a percentage label.
func pdsLabel(p float64) string {
	return fmt.Sprintf("%.0f%%", 100*p)
}
