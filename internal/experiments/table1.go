package experiments

import (
	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
)

// Table1Result reproduces Table I: FedAvg on the 10-class target with no
// pretraining, close-source pretraining and broad-source pretraining, under
// two heterogeneity levels.
type Table1Result struct {
	// Rows maps pretraining regime → alpha → final accuracy.
	Rows []Table1Row
}

// Table1Row is one pretraining regime's accuracies.
type Table1Row struct {
	// Pretraining names the regime ("none", source domain name).
	Pretraining string
	// AccAlpha01 and AccAlpha05 are the best accuracies under Diri(0.1) and
	// Diri(0.5).
	AccAlpha01 float64
	AccAlpha05 float64
}

// RunTable1 executes the Table I experiment.
func RunTable1(env *Env) (*Table1Result, error) {
	target := env.Suite.Target10
	regimes := []struct {
		name   string
		source *data.Domain // nil means no pretraining
	}{
		{name: "none", source: nil},
		{name: env.Suite.SourceClose.Spec.Name, source: env.Suite.SourceClose},
		{name: env.Suite.Source.Spec.Name, source: env.Suite.Source},
	}
	res := &Table1Result{}
	for _, regime := range regimes {
		row := Table1Row{Pretraining: regime.name}
		for _, alpha := range []float64{0.1, 0.5} {
			// Data-scarce clients: pretraining's benefit concentrates where
			// local data cannot train a feature extractor from scratch.
			fed, err := env.BuildFederationSized(target, env.Dims.SmallClients,
				env.Dims.SamplesPerClient, alpha, int64(alpha*100))
			if err != nil {
				return nil, err
			}
			m := Method{
				Name:       "FedAvg",
				Pretrained: regime.source != nil,
				Part:       models.FinetuneFull,
				Selector:   selection.All{},
				Fraction:   1,
			}
			source := regime.source
			if source == nil {
				source = env.Suite.Source // unused when Pretrained is false
			}
			hist, err := env.RunMethod(m, fed, target, source, 1)
			if err != nil {
				return nil, err
			}
			if alpha == 0.1 {
				row.AccAlpha01 = hist.BestAccuracy
			} else {
				row.AccAlpha05 = hist.BestAccuracy
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the table in the paper's shape.
func (r *Table1Result) Render() string {
	tbl := NewTable("Table I — pretraining improves FL top-1 accuracy (%) on the downstream task",
		"Pretraining", "Diri(0.1)", "Diri(0.5)")
	for _, row := range r.Rows {
		tbl.AddRow(row.Pretraining, Pct(row.AccAlpha01), Pct(row.AccAlpha05))
	}
	return tbl.String()
}
