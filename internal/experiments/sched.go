package experiments

import (
	"fmt"
	"strings"

	"fedfteds/internal/core"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/tensor"
)

// SchedPolicyNames is the scheduler-comparison lineup: every shipped policy
// plus the churn wrapper around the baseline, so the comparison covers the
// exploitation, speed, size and availability axes at once.
var SchedPolicyNames = []string{"uniform", "size", "entropy", "powerd", "avail:uniform"}

// SchedRow is one policy's outcome at the shared cohort size.
type SchedRow struct {
	// Policy is the scheduler's CLI name.
	Policy string
	// CohortSize is K, identical across rows by construction.
	CohortSize int
	// Hist is the policy's full run history; its records carry the per-round
	// cohort size, participants and cumulative client-seconds.
	Hist core.History
}

// SchedCompareResult compares cohort-scheduling policies at a fixed K on
// one federation: accuracy against cumulative client-seconds, the same
// trade-off the paper's learning-efficiency metric captures, now driven by
// who is scheduled rather than what each client trains on.
type SchedCompareResult struct {
	// Rows holds one entry per policy, in SchedPolicyNames order.
	Rows []SchedRow
	// NumClients is the federation size the cohort is drawn from.
	NumClients int
}

// RunSchedCompare runs every policy in policyNames (nil means the standard
// SchedPolicyNames lineup) on one shared federation with cohort size K
// (k <= 0 picks a scale-appropriate default of roughly a third of the
// pool). All policies see the same clients, model initialization and seed;
// only the cohort choice differs.
func RunSchedCompare(env *Env, policyNames []string, k int) (*SchedCompareResult, error) {
	if len(policyNames) == 0 {
		policyNames = SchedPolicyNames
	}
	numClients := env.Dims.LargeClients
	if k <= 0 {
		k = numClients / 3
	}
	if k < 2 {
		k = 2
	}
	if k > numClients {
		k = numClients
	}

	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 4242)
	if err != nil {
		return nil, err
	}
	res := &SchedCompareResult{NumClients: numClients}
	for _, name := range policyNames {
		policy, err := sched.Parse(name)
		if err != nil {
			return nil, err
		}
		global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Rounds:         env.Dims.Rounds,
			LocalEpochs:    env.Dims.LocalEpochs,
			LR:             paperLR,
			Momentum:       paperMomentum,
			FinetunePart:   models.FinetuneModerate,
			Selector:       selection.Entropy{Temperature: paperTemperature},
			SelectFraction: 0.5,
			Scheduler:      policy,
			CohortSize:     k,
			// Every policy shares one seed: the comparison isolates the
			// cohort choice, not the run randomness.
			Seed: tensor.DeriveSeed(uint64(env.Seed), sched.StreamTag),
		}
		hist, err := env.RunFL(fmt.Sprintf("sched-%s-k%d-c%d", name, k, numClients),
			cfg, global, fed.Clients, fed.Test)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, SchedRow{Policy: name, CohortSize: k, Hist: hist})
	}
	return res, nil
}

// Render prints the comparison as a table: per policy the best and final
// accuracy, total simulated client-seconds, and the mean participants per
// round (the straggler survivors within the cohort).
func (r *SchedCompareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduler comparison: cohort K of %d clients, FedFT-EDS locals\n", r.NumClients)
	fmt.Fprintf(&b, "%-14s %3s %9s %9s %14s %13s\n",
		"policy", "K", "best acc", "final acc", "client-seconds", "participants")
	for _, row := range r.Rows {
		var partSum float64
		for _, rec := range row.Hist.Records {
			partSum += float64(rec.Participants)
		}
		meanPart := partSum / float64(len(row.Hist.Records))
		fmt.Fprintf(&b, "%-14s %3d %8.2f%% %8.2f%% %14.4g %13.1f\n",
			row.Policy, row.CohortSize,
			100*row.Hist.BestAccuracy, 100*row.Hist.FinalAccuracy,
			row.Hist.TotalTrainSeconds, meanPart)
	}
	return b.String()
}
