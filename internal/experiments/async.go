package experiments

import (
	"fmt"
	"strings"

	"fedfteds/internal/core"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// AsyncWeigherNames is the staleness-discount lineup of the async
// comparison: no discount, the FedBuff-style inverse square root, and a
// harsher linear decay.
var AsyncWeigherNames = []string{"identity", "invsqrt", "poly:alpha=1"}

// AsyncRow is one configuration's outcome in the async comparison.
type AsyncRow struct {
	// Label names the row ("sync" for the baseline, else the weigher spec).
	Label string
	// Buffer is the aggregation trigger M (0 for the synchronous baseline).
	Buffer int
	// Discarded counts updates dropped for exceeding the staleness cap.
	Discarded int
	// Hist is the run's full history.
	Hist core.History
}

// AsyncCompareResult compares the synchronous engine against buffered
// asynchronous aggregation at one buffer size across staleness weighers, on
// a shared device-heterogeneous federation. Async rounds complete as soon as
// the M fastest updates arrive, so the same aggregation budget costs fewer
// cumulative client-seconds; the weighers control how much stale gradients
// from slow clients are allowed to pull the model.
type AsyncCompareResult struct {
	// Rows holds the sync baseline first, then one row per weigher.
	Rows []AsyncRow
	// NumClients is the federation size.
	NumClients int
	// MaxStaleness echoes the discard cap (negative = unlimited).
	MaxStaleness int
}

// RunAsyncCompare runs the async comparison: one synchronous baseline plus
// one buffered-async run per weigher in weigherNames (nil means the standard
// AsyncWeigherNames lineup), all from the same pretrained initialization and
// seed. buffer <= 0 picks roughly a third of the pool; maxStaleness < 0
// disables discards. The async simulator does not checkpoint, so the
// environment's artifact-store policy does not apply to this sweep.
func RunAsyncCompare(env *Env, buffer, maxStaleness int, weigherNames []string) (*AsyncCompareResult, error) {
	if len(weigherNames) == 0 {
		weigherNames = AsyncWeigherNames
	}
	numClients := env.Dims.LargeClients
	if buffer <= 0 {
		buffer = numClients / 3
	}
	if buffer < 2 {
		buffer = 2
	}
	if buffer > numClients {
		buffer = numClients
	}

	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 6464)
	if err != nil {
		return nil, err
	}
	baseCfg := core.Config{
		Rounds:         env.Dims.Rounds,
		LocalEpochs:    env.Dims.LocalEpochs,
		LR:             paperLR,
		Momentum:       paperMomentum,
		FinetunePart:   models.FinetuneModerate,
		Selector:       selection.Entropy{Temperature: paperTemperature},
		SelectFraction: 0.5,
		// Async and sync share one seed: the comparison isolates the
		// aggregation discipline, not the run randomness.
		Seed: tensor.DeriveSeed(uint64(env.Seed), 0xA21C),
	}

	res := &AsyncCompareResult{NumClients: numClients, MaxStaleness: maxStaleness}
	launch := func(label string, acfg *core.AsyncConfig) error {
		global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
		if err != nil {
			return err
		}
		runner, err := core.NewRunner(baseCfg, global, fed.Clients, fed.Test)
		if err != nil {
			return fmt.Errorf("experiments: async %s: %w", label, err)
		}
		var hist core.History
		if acfg == nil {
			hist, err = runner.Run()
		} else {
			hist, err = runner.RunAsync(*acfg)
		}
		if err != nil {
			return fmt.Errorf("experiments: async %s: run: %w", label, err)
		}
		row := AsyncRow{Label: label, Hist: hist}
		if acfg != nil {
			row.Buffer = acfg.Buffer
			for _, rec := range hist.Records {
				row.Discarded += rec.CohortSize - rec.Participants
			}
		}
		res.Rows = append(res.Rows, row)
		return nil
	}

	if err := launch("sync", nil); err != nil {
		return nil, err
	}
	for _, name := range weigherNames {
		weigher, err := strategy.ParseStaleness(name)
		if err != nil {
			return nil, err
		}
		acfg := core.AsyncConfig{Buffer: buffer, MaxStaleness: maxStaleness, Weigher: weigher}
		if err := launch(weigher.Name(), &acfg); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render prints the comparison as a table: per row the best and final
// accuracy, total simulated client-seconds, learning efficiency, and the
// number of discarded (over-stale) updates.
func (r *AsyncCompareResult) Render() string {
	var b strings.Builder
	capStr := "unlimited"
	if r.MaxStaleness >= 0 {
		capStr = fmt.Sprintf("%d", r.MaxStaleness)
	}
	fmt.Fprintf(&b, "Buffered-async comparison: %d clients, staleness cap %s\n", r.NumClients, capStr)
	fmt.Fprintf(&b, "%-14s %6s %9s %9s %14s %11s %9s\n",
		"mode", "buffer", "best acc", "final acc", "client-seconds", "efficiency", "discarded")
	for _, row := range r.Rows {
		buffer := "-"
		if row.Buffer > 0 {
			buffer = fmt.Sprintf("%d", row.Buffer)
		}
		eff, err := row.Hist.LearningEfficiency()
		effStr := "n/a"
		if err == nil {
			effStr = fmt.Sprintf("%.4g", eff)
		}
		fmt.Fprintf(&b, "%-14s %6s %8.2f%% %8.2f%% %14.4g %11s %9d\n",
			row.Label, buffer,
			100*row.Hist.BestAccuracy, 100*row.Hist.FinalAccuracy,
			row.Hist.TotalTrainSeconds, effStr, row.Discarded)
	}
	return b.String()
}
